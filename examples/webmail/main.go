// Webmail: the paper's concurrent small-object workload — "webmail or
// http servers … typically have to retrieve small quantities of
// information at a time … in a highly random fashion (depending on the
// desires of an arbitrary set of users)".
//
// Many goroutines issue Zipf-distributed reads against one dictionary
// concurrently (the structures and the simulated machine are safe for
// concurrent readers), while a writer goroutine delivers new messages.
// The example also demonstrates the real-time angle the paper raises:
// the deterministic structure's per-op worst case holds for every
// single user request, not just on average.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"
	"sync/atomic"

	"pdmdict"
)

const (
	mailboxes   = 100
	msgsPerBox  = 50
	messageSize = 16 // words
	readers     = 8
	readsEach   = 2000
)

func msgKey(box, msg int) pdmdict.Word {
	return pdmdict.Word(box)<<20 | pdmdict.Word(msg)
}

func message(box, msg int) []pdmdict.Word {
	sat := make([]pdmdict.Word, messageSize)
	for i := range sat {
		sat[i] = pdmdict.Word(box*1_000_000 + msg*1_000 + i)
	}
	return sat
}

func main() {
	n := mailboxes * msgsPerBox
	dict, err := pdmdict.NewDynamic(pdmdict.Options{
		Capacity: 2 * n, // headroom for the writer
		SatWords: messageSize,
		Seed:     99,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Load the mail store.
	for box := 0; box < mailboxes; box++ {
		for msg := 0; msg < msgsPerBox; msg++ {
			if err := dict.Insert(msgKey(box, msg), message(box, msg)); err != nil {
				log.Fatal(err)
			}
		}
	}
	dict.ResetIOStats()

	// A writers-exclusive lock keeps reads concurrent with each other:
	// "no piece of data is ever moved, once inserted … simplifies
	// concurrency control mechanisms such as locking" (paper §1.1).
	var mu sync.RWMutex
	var served, misses atomic.Int64

	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(r)))
			zipf := rand.NewZipf(rng, 1.3, 1, mailboxes-1)
			for i := 0; i < readsEach; i++ {
				box := int(zipf.Uint64()) // hot mailboxes, like real mail
				msg := rng.Intn(msgsPerBox)
				mu.RLock()
				sat, ok := dict.Lookup(msgKey(box, msg))
				mu.RUnlock()
				if !ok {
					misses.Add(1)
					continue
				}
				if sat[0] != pdmdict.Word(box*1_000_000+msg*1_000) {
					log.Fatalf("message (%d,%d) corrupted", box, msg)
				}
				served.Add(1)
			}
		}(r)
	}

	// Concurrent deliveries.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 500; i++ {
			box := i % mailboxes
			msg := msgsPerBox + i/mailboxes
			mu.Lock()
			err := dict.Insert(msgKey(box, msg), message(box, msg))
			mu.Unlock()
			if err != nil {
				log.Fatal(err)
			}
		}
	}()
	wg.Wait()

	total := served.Load() + misses.Load()
	ios := dict.IOStats().ParallelIOs
	fmt.Printf("served %d reads (%d hits) from %d readers + 500 concurrent deliveries\n",
		total, served.Load(), readers)
	fmt.Printf("store now holds %d messages across levels %v\n", dict.Len(), dict.LevelCounts())
	fmt.Printf("total parallel I/Os: %d (%.3f per operation; Theorem 7 bounds reads by 1+ɛ)\n",
		ios, float64(ios)/float64(total+500))
}

// Persistence: snapshot a dictionary to disk and restore it — including
// an in-progress global rebuild. Determinism makes this exact: the
// restored structure answers every query with the identical parallel
// I/O pattern the original would have used.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"pdmdict"
)

func main() {
	dict, err := pdmdict.New(pdmdict.Options{Capacity: 64, SatWords: 1, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}

	// Grow past the initial capacity so a migration is running when we
	// snapshot.
	for i := pdmdict.Word(0); i < 96; i++ {
		if err := dict.Insert(i+1, []pdmdict.Word{i * i}); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("before snapshot: %d keys, %d rebuilds completed, worst op %d I/Os\n",
		dict.Len(), dict.Rebuilds(), dict.WorstOpIOs())

	path := filepath.Join(os.TempDir(), "pdmdict.snapshot")
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := dict.Save(f); err != nil {
		log.Fatal(err)
	}
	f.Close()
	info, _ := os.Stat(path)
	fmt.Printf("snapshot written: %s (%d bytes)\n", path, info.Size())

	// Restore into a fresh process-equivalent.
	g, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	restored, err := pdmdict.OpenDict(g)
	g.Close()
	os.Remove(path)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("after restore:  %d keys\n", restored.Len())
	for i := pdmdict.Word(0); i < 96; i++ {
		sat, ok := restored.Lookup(i + 1)
		if !ok || sat[0] != i*i {
			log.Fatalf("key %d corrupted by the round trip", i+1)
		}
	}
	// The restored dictionary keeps working — and keeps its guarantees.
	for i := pdmdict.Word(96); i < 160; i++ {
		if err := restored.Insert(i+1, []pdmdict.Word{i * i}); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("after more inserts: %d keys, worst op still %d parallel I/Os\n",
		restored.Len(), restored.WorstOpIOs())
}

// Loadbalance: the Section 3 scheme on its own — deterministic d-choice
// balls-into-bins on an expander, against the classic randomized
// baselines of Azar et al. The demo places n = 8·v items and prints the
// resulting load profiles and the Lemma 3 bound.
package main

import (
	"fmt"
	"math/rand"
	"strings"

	"pdmdict/internal/expander"
	"pdmdict/internal/loadbalance"
)

func bar(n int) string { return strings.Repeat("█", n) }

func main() {
	const (
		d = 16
		v = 2048
		u = uint64(1) << 40
	)
	n := 8 * v // heavily loaded: average load 8
	items := expander.SampleSet(u, n, rand.New(rand.NewSource(2)))

	schemes := []struct {
		name string
		bal  *loadbalance.Balancer
	}{
		{"expander greedy (d=16)", loadbalance.New(expander.NewFamily(u, d, v/d, 3), 1)},
		{"two-choice random", loadbalance.New(expander.NewUnstriped(u, 2, v, 4), 1)},
		{"single choice", loadbalance.New(expander.NewUnstriped(u, 1, v, 5), 1)},
	}

	fmt.Printf("placing %d items into %d buckets (average load %.1f)\n\n", n, v, float64(n)/float64(v))
	for _, s := range schemes {
		max := s.bal.PlaceAll(items)
		hist := s.bal.Histogram()
		fmt.Printf("%-24s max load %d\n", s.name, max)
		for load, count := range hist {
			if count == 0 {
				continue
			}
			fmt.Printf("  load %2d: %5d buckets %s\n", load, count, bar(count/40))
		}
		fmt.Println()
	}

	bound := loadbalance.Lemma3Bound(n, v, d, 1, 0.25, 0.5)
	fmt.Printf("Lemma 3 bound for the expander scheme: %.1f (measured %d)\n",
		bound, schemes[0].bal.MaxLoad())
	fmt.Println("the deterministic scheme needs no randomness at placement time: the graph is fixed.")
}

// Adversary: the paper's case for determinism, § 1.1 — "randomized
// solutions never give firm guarantees on performance … all hashing
// based dictionaries we are aware of may use n/B^O(1) I/Os for a single
// operation in the worst case."
//
// This demo plays the adversary: it inspects a hash table's (public)
// hash function, brute-forces a key set that all collides, and feeds
// the same keys to both the hash table and the deterministic
// dictionary. The hash table collapses into a chain; the deterministic
// structure — although the adversary can inspect ITS structure too —
// cannot be hurt, because its worst case is a proven bound, not a
// probabilistic event.
package main

import (
	"fmt"
	"log"

	"pdmdict"
	"pdmdict/internal/core"
	"pdmdict/internal/hashing"
	"pdmdict/internal/pdm"
	"pdmdict/internal/workload"
)

func main() {
	const (
		d = 16
		b = 8 // small blocks: realistic bucket capacity vs n
		n = 1024
	)

	// The victim: a striped hash table, and the adversary's key set
	// against it.
	m := pdm.NewMachine(pdm.Config{D: d, B: b})
	table, err := hashing.NewTable(m, hashing.TableConfig{Capacity: n, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("brute-forcing keys that collide under the hash table's function …")
	evil := workload.CollidingKeys(table.BucketOf, 1, n, 1<<44, 7)

	// The defender: the Section 4.1 deterministic dictionary — same
	// machine geometry.
	m2 := pdm.NewMachine(pdm.Config{D: d, B: b})
	dict, err := core.NewBasic(m2, core.BasicConfig{Capacity: n, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}

	worst := func(f func(k pdmdict.Word), stats func() int64, keys []pdmdict.Word) (avg float64, max int64) {
		var total int64
		for _, k := range keys {
			before := stats()
			f(k)
			c := stats() - before
			total += c
			if c > max {
				max = c
			}
		}
		return float64(total) / float64(len(keys)), max
	}

	avgT, maxT := worst(func(k pdmdict.Word) {
		if err := table.Insert(k, nil); err != nil {
			log.Fatal(err)
		}
	}, func() int64 { return m.Stats().ParallelIOs }, evil)

	avgD, maxD := worst(func(k pdmdict.Word) {
		if err := dict.Insert(k, nil); err != nil {
			log.Fatal(err)
		}
	}, func() int64 { return m2.Stats().ParallelIOs }, evil)

	fmt.Printf("\ninserting the same %d adversarial keys:\n", n)
	fmt.Printf("  hash table:               avg %6.2f I/Os, worst %3d I/Os  (one long chain)\n", avgT, maxT)
	fmt.Printf("  deterministic dictionary: avg %6.2f I/Os, worst %3d I/Os  (provably 2)\n", avgD, maxD)

	lavgT, lmaxT := worst(func(k pdmdict.Word) { table.Contains(k) },
		func() int64 { return m.Stats().ParallelIOs }, evil[len(evil)-200:])
	lavgD, lmaxD := worst(func(k pdmdict.Word) { dict.Contains(k) },
		func() int64 { return m2.Stats().ParallelIOs }, evil[len(evil)-200:])
	fmt.Printf("\nlooking the last 200 of them back up:\n")
	fmt.Printf("  hash table:               avg %6.2f I/Os, worst %3d I/Os\n", lavgT, lmaxT)
	fmt.Printf("  deterministic dictionary: avg %6.2f I/Os, worst %3d I/Os  (provably 1)\n", lavgD, lmaxD)

	fmt.Println("\nthe adversary had full knowledge of both structures; only one of them cared.")
}

// Quickstart: create the fully dynamic deterministic dictionary, store
// and retrieve a few records, and look at the parallel-I/O accounting.
package main

import (
	"fmt"
	"log"

	"pdmdict"
)

func main() {
	// A dictionary with room for 1024 keys initially (it grows without
	// bound), 2 satellite words per key. Everything is deterministic
	// given the seed: rerunning this program performs bit-identical I/O.
	dict, err := pdmdict.New(pdmdict.Options{
		Capacity: 1024,
		SatWords: 2,
		Seed:     42,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Insert a handful of records.
	for i := pdmdict.Word(0); i < 10; i++ {
		if err := dict.Insert(1000+i, []pdmdict.Word{i * i, i * i * i}); err != nil {
			log.Fatal(err)
		}
	}

	// Lookups return a copy of the satellite data.
	sat, ok := dict.Lookup(1003)
	fmt.Printf("lookup 1003: ok=%v square=%d cube=%d\n", ok, sat[0], sat[1])

	// Absent keys cost exactly one parallel I/O to rule out.
	before := dict.IOStats().ParallelIOs
	_, ok = dict.Lookup(9999)
	fmt.Printf("lookup 9999: ok=%v (cost: %d parallel I/O)\n", ok, dict.IOStats().ParallelIOs-before)

	// Updates replace in place; deletes reclaim space.
	dict.Insert(1003, []pdmdict.Word{7, 7})
	dict.Delete(1004)
	fmt.Printf("after update+delete: len=%d\n", dict.Len())

	// The I/O ledger — the quantity every bound in the paper is about.
	fmt.Printf("total parallel I/Os: %d over %d ops (worst single op: %d)\n",
		dict.IOStats().ParallelIOs, dict.Ops(), dict.WorstOpIOs())
}

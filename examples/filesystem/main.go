// Filesystem: the paper's Section 1.2 motivation, end to end.
//
// A dictionary implements the basic functionality of a file system: keys
// are (inode, block#) pairs and the satellite is the block contents,
// giving random access to any position of any file in ONE parallel I/O —
// versus the ~3 accesses of the B-tree indirection real file systems
// use. This example stores a synthetic volume in both structures and
// compares the measured I/O cost of random reads.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"pdmdict"
)

const (
	files         = 64
	blocksPerFile = 64
	payloadWords  = 8
)

func fsKey(inode, block int) pdmdict.Word {
	return pdmdict.Word(inode)<<32 | pdmdict.Word(block)
}

func payload(inode, block int) []pdmdict.Word {
	sat := make([]pdmdict.Word, payloadWords)
	for i := range sat {
		sat[i] = pdmdict.Word(inode*1_000_000 + block*1_000 + i)
	}
	return sat
}

func main() {
	n := files * blocksPerFile
	opts := pdmdict.Options{Capacity: n, SatWords: payloadWords, Degree: 12, Seed: 7}

	dict, err := pdmdict.NewBasic(pdmdict.BasicOptions{Options: opts})
	if err != nil {
		log.Fatal(err)
	}
	tree, err := pdmdict.NewBTree(pdmdict.BTreeOptions{Options: opts})
	if err != nil {
		log.Fatal(err)
	}

	// Write the volume into both structures.
	for f := 0; f < files; f++ {
		for b := 0; b < blocksPerFile; b++ {
			if err := dict.Insert(fsKey(f, b), payload(f, b)); err != nil {
				log.Fatal(err)
			}
			if err := tree.Insert(fsKey(f, b), payload(f, b)); err != nil {
				log.Fatal(err)
			}
		}
	}

	// Random access pattern: "webmail or http servers … retrieve small
	// quantities of information at a time … in a highly random fashion".
	rng := rand.New(rand.NewSource(1))
	reads := 5000
	dict.ResetIOStats()
	tree.ResetIOStats()
	for i := 0; i < reads; i++ {
		f, b := rng.Intn(files), rng.Intn(blocksPerFile)
		want := payload(f, b)
		for _, s := range [](interface {
			Lookup(pdmdict.Word) ([]pdmdict.Word, bool)
		}){dict, tree} {
			sat, ok := s.Lookup(fsKey(f, b))
			if !ok || sat[0] != want[0] {
				log.Fatalf("block (%d,%d) corrupted", f, b)
			}
		}
	}

	dIOs := dict.IOStats().ParallelIOs
	tIOs := tree.IOStats().ParallelIOs
	fmt.Printf("volume: %d files × %d blocks = %d records of %d words\n",
		files, blocksPerFile, n, payloadWords)
	fmt.Printf("%d random block reads:\n", reads)
	fmt.Printf("  deterministic dictionary: %5d parallel I/Os (%.2f per read)\n",
		dIOs, float64(dIOs)/float64(reads))
	fmt.Printf("  B-tree (height %d):       %5d parallel I/Os (%.2f per read)\n",
		tree.Height(), tIOs, float64(tIOs)/float64(reads))
	fmt.Printf("  speedup: %.1fx — \"making just one disk read instead of %d\"\n",
		float64(tIOs)/float64(dIOs), tree.Height())
}

package pdmdict

import (
	"math/rand"
	"testing"
)

// All public constructors must satisfy Dictionary.
var (
	_ Dictionary = (*Dict)(nil)
	_ Dictionary = (*Basic)(nil)
	_ Dictionary = (*Static)(nil)
	_ Dictionary = (*Dynamic)(nil)
	_ Dictionary = (*HashTable)(nil)
	_ Dictionary = (*Cuckoo)(nil)
	_ Dictionary = (*TwoLevel)(nil)
	_ Dictionary = (*BTree)(nil)
	_ Dictionary = (*OneProbe)(nil)
	_ Dictionary = (*Direct)(nil)
)

func TestPublicHeadModelBasic(t *testing.T) {
	d, err := NewBasic(BasicOptions{
		Options:   Options{Capacity: 100, SatWords: 1, Seed: 12},
		HeadModel: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := d.Insert(Word(i*3+1), []Word{Word(i)}); err != nil {
			t.Fatal(err)
		}
	}
	before := d.IOStats().ParallelIOs
	for i := 0; i < 100; i++ {
		if !d.Contains(Word(i*3 + 1)) {
			t.Fatal("key lost in head model")
		}
	}
	if got := d.IOStats().ParallelIOs - before; got != 100 {
		t.Errorf("100 head-model lookups cost %d parallel I/Os, want 100", got)
	}
}

func TestPublicOneProbeUnbounded(t *testing.T) {
	d, err := NewOneProbeUnbounded(Options{Capacity: 64, SatWords: 1, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		if err := d.Insert(Word(i*5+1), []Word{Word(i)}); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	if d.Len() != 300 {
		t.Fatalf("Len = %d", d.Len())
	}
	// Lookups stay 1 parallel I/O across growth under the wrapper's
	// parallel cost model.
	before := d.IOStats().ParallelIOs
	for i := 0; i < 300; i++ {
		if !d.Contains(Word(i*5 + 1)) {
			t.Fatal("key lost")
		}
	}
	if got := d.IOStats().ParallelIOs - before; got != 300 {
		t.Errorf("300 lookups cost %d parallel I/Os, want 300", got)
	}
}

func TestPublicDirectAndBatch(t *testing.T) {
	d, err := NewDirect(Options{Universe: 512, SatWords: 1, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Insert(100, []Word{1}); err != nil {
		t.Fatal(err)
	}
	if sat, ok := d.Lookup(100); !ok || sat[0] != 1 {
		t.Fatalf("direct lookup = %v %v", sat, ok)
	}
	if _, err := NewDirect(Options{SatWords: 1}); err == nil {
		t.Error("NewDirect without Universe accepted")
	}

	b, err := NewBasic(BasicOptions{Options: Options{Capacity: 100, SatWords: 1, Seed: 10}})
	if err != nil {
		t.Fatal(err)
	}
	b.Insert(5, []Word{55})
	b.Insert(6, []Word{66})
	sats, oks := b.LookupBatch([]Word{5, 6, 7, 5})
	if !oks[0] || !oks[1] || oks[2] || !oks[3] {
		t.Fatalf("batch oks = %v", oks)
	}
	if sats[0][0] != 55 || sats[3][0] != 55 || sats[1][0] != 66 {
		t.Fatalf("batch sats = %v", sats)
	}
}

func TestPublicAPISmoke(t *testing.T) {
	opts := Options{Capacity: 500, SatWords: 2, Seed: 1}
	dicts := map[string]Dictionary{}

	if d, err := New(opts); err != nil {
		t.Fatalf("New: %v", err)
	} else {
		dicts["dict"] = d
	}
	if d, err := NewBasic(BasicOptions{Options: opts}); err != nil {
		t.Fatalf("NewBasic: %v", err)
	} else {
		dicts["basic"] = d
	}
	if d, err := NewDynamic(opts); err != nil {
		t.Fatalf("NewDynamic: %v", err)
	} else {
		dicts["dynamic"] = d
	}
	if d, err := NewHashTable(opts); err != nil {
		t.Fatalf("NewHashTable: %v", err)
	} else {
		dicts["hash"] = d
	}
	if d, err := NewCuckoo(opts); err != nil {
		t.Fatalf("NewCuckoo: %v", err)
	} else {
		dicts["cuckoo"] = d
	}
	if d, err := NewTwoLevel(opts); err != nil {
		t.Fatalf("NewTwoLevel: %v", err)
	} else {
		dicts["twolevel"] = d
	}
	if d, err := NewBTree(BTreeOptions{Options: opts}); err != nil {
		t.Fatalf("NewBTree: %v", err)
	} else {
		dicts["btree"] = d
	}

	rng := rand.New(rand.NewSource(2))
	keys := make([]Word, 300)
	vals := make([][]Word, 300)
	for i := range keys {
		keys[i] = rng.Uint64() % (1 << 40)
		vals[i] = []Word{Word(i), Word(i * 2)}
	}
	for name, d := range dicts {
		for i, k := range keys {
			if err := d.Insert(k, vals[i]); err != nil {
				t.Fatalf("%s: insert %d: %v", name, i, err)
			}
		}
		for i, k := range keys {
			sat, ok := d.Lookup(k)
			if !ok || sat[0] != vals[i][0] || sat[1] != vals[i][1] {
				t.Fatalf("%s: key %d = %v %v", name, k, sat, ok)
			}
		}
		if d.Contains(1 << 50) {
			t.Fatalf("%s: phantom key", name)
		}
		if !d.Delete(keys[0]) || d.Contains(keys[0]) {
			t.Fatalf("%s: delete failed", name)
		}
		if d.IOStats().ParallelIOs == 0 {
			t.Fatalf("%s: no I/O recorded", name)
		}
	}
}

func TestPublicStatic(t *testing.T) {
	recs := make([]Record, 200)
	rng := rand.New(rand.NewSource(3))
	for i := range recs {
		recs[i] = Record{Key: rng.Uint64() % (1 << 40), Sat: []Word{Word(i)}}
	}
	for _, caseA := range []bool{false, true} {
		s, err := BuildStatic(StaticOptions{
			Options: Options{Capacity: 200, SatWords: 1, Degree: 12, Seed: 4},
			CaseA:   caseA,
		}, recs)
		if err != nil {
			t.Fatalf("BuildStatic(caseA=%v): %v", caseA, err)
		}
		for i, r := range recs {
			if sat, ok := s.Lookup(r.Key); !ok || sat[0] != Word(i) {
				t.Fatalf("caseA=%v: key %d = %v %v", caseA, r.Key, sat, ok)
			}
		}
		if s.ConstructionIOs() == 0 {
			t.Error("no construction I/Os recorded")
		}
		if err := s.Insert(1, []Word{1}); err == nil {
			t.Error("static Insert succeeded")
		}
		if s.Delete(recs[0].Key) {
			t.Error("static Delete succeeded")
		}
	}
}

func TestDictWorstCaseAccessors(t *testing.T) {
	d, err := New(Options{Capacity: 64, SatWords: 0, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 400; i++ {
		if err := d.Insert(Word(i*13+1), nil); err != nil {
			t.Fatal(err)
		}
	}
	if d.Ops() != 400 {
		t.Errorf("Ops = %d", d.Ops())
	}
	if d.Rebuilds() == 0 {
		t.Error("no rebuilds after 6x growth")
	}
	if d.WorstOpIOs() == 0 || d.WorstOpIOs() > 60 {
		t.Errorf("WorstOpIOs = %d", d.WorstOpIOs())
	}
}

func TestPublicBulkLoad(t *testing.T) {
	b, err := NewBasic(BasicOptions{Options: Options{Capacity: 500, SatWords: 1, Seed: 7}})
	if err != nil {
		t.Fatal(err)
	}
	recs := make([]Record, 500)
	for i := range recs {
		recs[i] = Record{Key: Word(i*17 + 1), Sat: []Word{Word(i)}}
	}
	if err := b.BulkLoad(recs); err != nil {
		t.Fatalf("BulkLoad: %v", err)
	}
	if b.Len() != 500 {
		t.Fatalf("Len = %d", b.Len())
	}
	bulkIOs := b.IOStats().ParallelIOs
	for i, r := range recs {
		if sat, ok := b.Lookup(r.Key); !ok || sat[0] != Word(i) {
			t.Fatalf("key %d = %v %v", r.Key, sat, ok)
		}
	}
	// Sanity: the load was far cheaper than 2 I/Os per key.
	if bulkIOs >= 2*500 {
		t.Errorf("bulk load cost %d I/Os for 500 keys", bulkIOs)
	}
}

func TestDictionariesBalanceDiskTraffic(t *testing.T) {
	// The striped layout must spread lookup traffic evenly: every disk
	// serves exactly one block per one-probe lookup.
	b, err := NewBasic(BasicOptions{Options: Options{Capacity: 300, SatWords: 1, Seed: 8}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		b.Insert(Word(i*13+5), []Word{1})
	}
	b.ResetIOStats()
	for i := 0; i < 300; i++ {
		b.Contains(Word(i*13 + 5))
	}
	per := b.Machine().PerDiskIOs()
	for i := 1; i < len(per); i++ {
		if per[i] != per[0] {
			t.Fatalf("lookup traffic skewed across disks: %v", per)
		}
	}
	if per[0] != 300 {
		t.Errorf("disk 0 served %d transfers, want 300", per[0])
	}
}

func TestResetIOStats(t *testing.T) {
	b, err := NewBasic(BasicOptions{Options: Options{Capacity: 10, Seed: 6}})
	if err != nil {
		t.Fatal(err)
	}
	b.Insert(1, nil)
	b.ResetIOStats()
	if b.IOStats().ParallelIOs != 0 {
		t.Error("reset did not zero the counters")
	}
	if !b.Contains(1) {
		t.Error("reset destroyed data")
	}
}

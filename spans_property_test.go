package pdmdict_test

// Property test for the span protocol: whatever randomized mix of
// operations a dictionary runs, the event stream its machines emit must
// be a well-formed span forest — begins and ends balance, spans nest
// LIFO (the parent recorded on a begin is exactly the innermost open
// span), batch events are attributed to the innermost open span, and
// every span tag is a member of the internal/obs tag registry, so the
// per-tag accounting partitions are closed under any workload.

import (
	"math/rand"
	"strings"
	"testing"

	"pdmdict"
	"pdmdict/internal/obs"
	"pdmdict/internal/pdm"
	"pdmdict/internal/workload"
)

// spanChecker is a pdm.Hook that verifies the span protocol online, as
// events arrive, and accumulates totals for the end-of-run assertions.
type spanChecker struct {
	t        *testing.T
	stack    []pdm.Event // open spans, innermost last
	begins   int
	ends     int
	batches  int
	lastID   uint64
	lastStep int64
	tags     map[string]bool
}

func (c *spanChecker) Event(e pdm.Event) {
	if e.Kind.IsSpan() {
		// Only span events sample the step counter; batch events leave
		// Step zero (blocks and steps ride the Addrs/Steps fields).
		if e.Step < c.lastStep {
			c.t.Errorf("step counter went backwards: %d after %d", e.Step, c.lastStep)
		}
		c.lastStep = e.Step
	}
	switch e.Kind {
	case pdm.EventSpanBegin:
		c.begins++
		c.tags[e.Tag] = true
		if e.Span == 0 {
			c.t.Errorf("span begin %q has zero ID", e.Tag)
		}
		if e.Span <= c.lastID {
			c.t.Errorf("span IDs not strictly increasing: %d after %d", e.Span, c.lastID)
		}
		c.lastID = e.Span
		wantParent := uint64(0)
		if n := len(c.stack); n > 0 {
			wantParent = c.stack[n-1].Span
		}
		if e.Parent != wantParent {
			c.t.Errorf("span %d (%q) has parent %d, want innermost open span %d",
				e.Span, e.Tag, e.Parent, wantParent)
		}
		c.stack = append(c.stack, e)
	case pdm.EventSpanEnd:
		c.ends++
		c.tags[e.Tag] = true
		n := len(c.stack)
		if n == 0 {
			c.t.Errorf("span end %d (%q) with no span open", e.Span, e.Tag)
			return
		}
		top := c.stack[n-1]
		if e.Span != top.Span {
			c.t.Errorf("span end %d (%q) closes out of LIFO order; innermost open is %d (%q)",
				e.Span, e.Tag, top.Span, top.Tag)
		}
		if e.Tag != top.Tag || e.Parent != top.Parent {
			c.t.Errorf("span end %d repeats tag=%q parent=%d, begin said tag=%q parent=%d",
				e.Span, e.Tag, e.Parent, top.Tag, top.Parent)
		}
		if e.Step < top.Step {
			c.t.Errorf("span %d ends at step %d before its begin step %d", e.Span, e.Step, top.Step)
		}
		if e.WallNanos != 0 {
			c.t.Errorf("span %d carries WallNanos=%d with no wall clock injected", e.Span, e.WallNanos)
		}
		c.stack = c.stack[:n-1]
	default:
		c.batches++
		wantSpan := uint64(0)
		if n := len(c.stack); n > 0 {
			wantSpan = c.stack[n-1].Span
		}
		if e.Span != wantSpan {
			c.t.Errorf("%s batch (tag %q) attributed to span %d, want innermost open span %d",
				e.Kind, e.Tag, e.Span, wantSpan)
		}
		if !strings.HasPrefix(e.Tag, pdm.FaultTagPrefix) && e.Tag != "" && len(c.stack) > 0 {
			if e.Tag != c.stack[len(c.stack)-1].Tag {
				c.t.Errorf("batch tag %q disagrees with innermost open span tag %q",
					e.Tag, c.stack[len(c.stack)-1].Tag)
			}
		}
	}
}

// hookedDict is the slice of the public surface the property needs: a
// dictionary whose single machine reports through an attachable hook.
type hookedDict interface {
	pdmdict.Dictionary
	SetHook(pdmdict.IOHook)
}

func TestSpanProtocolPropertyMixedWorkload(t *testing.T) {
	opts := func(seed int64) pdmdict.Options {
		return pdmdict.Options{Capacity: 512, SatWords: 2, Seed: uint64(seed)}
	}
	// Single-machine structures only: the checker verifies one machine's
	// LIFO protocol, and Dict/Dynamic interleave two machines' streams.
	builders := map[string]func(seed int64) (hookedDict, error){
		"basic": func(seed int64) (hookedDict, error) {
			return pdmdict.NewBasic(pdmdict.BasicOptions{Options: opts(seed)})
		},
		"hashtable": func(seed int64) (hookedDict, error) { return pdmdict.NewHashTable(opts(seed)) },
		"cuckoo":    func(seed int64) (hookedDict, error) { return pdmdict.NewCuckoo(opts(seed)) },
	}
	for name, build := range builders {
		t.Run(name, func(t *testing.T) {
			for _, seed := range []int64{1, 42, 9001} {
				dict, err := build(seed)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				rng := rand.New(rand.NewSource(seed))
				checker := &spanChecker{t: t, tags: map[string]bool{}}
				dict.SetHook(checker)

				keys := workload.Uniform(400, 1<<40, seed+1)
				ops := workload.Ops(keys, 2000, workload.Mix{Lookup: 45, Insert: 40, Delete: 15},
					0.2, seed+2)
				for i, op := range ops {
					switch op.Kind {
					case workload.OpInsert:
						if err := dict.Insert(op.Key, []pdmdict.Word{op.Key, pdmdict.Word(i)}); err != nil {
							t.Fatalf("seed %d: insert %d: %v", seed, op.Key, err)
						}
					case workload.OpLookup:
						dict.Lookup(op.Key)
					case workload.OpDelete:
						dict.Delete(op.Key)
					}
					// Interleave occasional lookups of random absent keys so
					// the mix is not purely the generator's schedule.
					if rng.Intn(16) == 0 {
						dict.Lookup(pdmdict.Word(rng.Uint64()))
					}
				}

				if checker.begins == 0 {
					t.Fatalf("seed %d: workload emitted no spans", seed)
				}
				if checker.begins != checker.ends {
					t.Errorf("seed %d: %d span begins but %d ends", seed, checker.begins, checker.ends)
				}
				if len(checker.stack) != 0 {
					t.Errorf("seed %d: %d spans still open after the workload", seed, len(checker.stack))
				}
				if checker.batches == 0 {
					t.Errorf("seed %d: no batch events observed", seed)
				}
				for tag := range checker.tags {
					if !obs.IsRegisteredTag(tag) {
						t.Errorf("seed %d: span tag %q is not in the obs registry", seed, tag)
					}
				}
			}
		})
	}
}

package pdmdict

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"

	"pdmdict/internal/obs"
	"pdmdict/internal/pdm"
)

// newSchedTestDict builds one dictionary of the named kind, loaded with
// n keys (key k → satellite {k*3, k^7}), all derived from seed.
func newSchedTestDict(t *testing.T, kind string, seed int64, n int) Dictionary {
	t.Helper()
	opts := Options{Capacity: n * 2, SatWords: 2, Seed: uint64(seed)}
	var d Dictionary
	var err error
	switch kind {
	case "basic":
		d, err = NewBasic(BasicOptions{Options: opts})
	case "dynamic":
		d, err = NewDynamic(opts)
	case "oneprobe":
		d, err = NewOneProbe(OneProbeOptions{Options: opts})
	case "dict":
		d, err = New(opts)
	default:
		t.Fatalf("unknown kind %q", kind)
	}
	if err != nil {
		t.Fatalf("build %s: %v", kind, err)
	}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		k := Word(rng.Uint64()%100_000 + 1)
		if err := d.Insert(k, []Word{k * 3, k ^ 7}); err != nil {
			t.Fatalf("load %s: %v", kind, err)
		}
	}
	return d
}

// schedWorkload gives client c its deterministic key sequence: a mix of
// present and absent keys drawn from the same universe the loader used.
func schedWorkload(seed int64, client, rounds int) []Word {
	rng := rand.New(rand.NewSource(seed*1000 + int64(client)))
	keys := make([]Word, rounds)
	for r := range keys {
		keys[r] = Word(rng.Uint64()%120_000 + 1)
	}
	return keys
}

// TestScheduledEquivalence: answers through the scheduler are byte-equal
// to direct lookups, across 3 structures × 3 seeds × 8 lockstep
// concurrent clients. Clients self-synchronize: each blocks on its
// in-flight request, so every admission window holds exactly one op per
// client and closes at MaxBatch.
func TestScheduledEquivalence(t *testing.T) {
	const clients, rounds, n = 8, 24, 400
	for _, kind := range []string{"basic", "dynamic", "oneprobe"} {
		for _, seed := range []int64{1, 42, 9001} {
			direct := newSchedTestDict(t, kind, seed, n)
			backing := newSchedTestDict(t, kind, seed, n)
			sd, err := NewScheduled(backing, SchedOptions{MaxBatch: clients})
			if err != nil {
				t.Fatalf("%s/%d: NewScheduled: %v", kind, seed, err)
			}
			sats := make([][][]Word, clients)
			oks := make([][]bool, clients)
			var wg sync.WaitGroup
			for c := 0; c < clients; c++ {
				sats[c] = make([][]Word, rounds)
				oks[c] = make([]bool, rounds)
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					keys := schedWorkload(seed, c, rounds)
					for r, k := range keys {
						sats[c][r], oks[c][r] = sd.LookupClient(c, k)
					}
				}(c)
			}
			wg.Wait()
			if err := sd.Close(); err != nil {
				t.Fatalf("%s/%d: Close: %v", kind, seed, err)
			}
			// Also exercise the batch path once for parity.
			batchKeys := schedWorkload(seed, 99, rounds)
			bSats, bOks := sd.LookupBatch(batchKeys)
			wantSats, wantOks := direct.(BatchLookuper).LookupBatch(batchKeys)
			for i := range batchKeys {
				if bOks[i] != wantOks[i] || !wordsEqual(bSats[i], wantSats[i]) {
					t.Fatalf("%s/%d: batch key %d diverged", kind, seed, batchKeys[i])
				}
			}
			for c := 0; c < clients; c++ {
				keys := schedWorkload(seed, c, rounds)
				for r, k := range keys {
					wantSat, wantOk := direct.Lookup(k)
					if oks[c][r] != wantOk || !wordsEqual(sats[c][r], wantSat) {
						t.Fatalf("%s seed %d client %d round %d key %d: scheduled (%v,%v) direct (%v,%v)",
							kind, seed, c, r, k, sats[c][r], oks[c][r], wantSat, wantOk)
					}
				}
			}
			snap := sd.Snapshot()
			if snap.Lookups != clients*rounds {
				t.Fatalf("%s/%d: %d lookups admitted, want %d", kind, seed, snap.Lookups, clients*rounds)
			}
			if snap.Rounds != rounds {
				t.Fatalf("%s/%d: %d shared rounds, want %d (full windows of %d)", kind, seed, snap.Rounds, rounds, clients)
			}
			if snap.RoundsSaved != int64((clients-1)*rounds) {
				t.Fatalf("%s/%d: rounds saved %d, want %d", kind, seed, snap.RoundsSaved, (clients-1)*rounds)
			}
		}
	}
}

func wordsEqual(a, b []Word) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// chargeHook records batch events and forwards everything to an
// accountant, so a test can compare the machine's own charges with the
// per-op charges.
type chargeHook struct {
	acct *obs.OpAccountant
	mu   sync.Mutex
	evs  []pdm.Event // guarded by mu; Addrs not retained
}

func (h *chargeHook) Event(e pdm.Event) {
	h.acct.Event(e)
	if e.Kind == pdm.EventRead || e.Kind == pdm.EventWrite {
		h.mu.Lock()
		c := e
		c.Addrs = nil
		c.Ops = append([]uint64(nil), e.Ops...)
		h.evs = append(h.evs, c)
		h.mu.Unlock()
	}
}

// TestScheduledChargeExactness: with merged rounds, (1) the machine is
// charged each shared round ONCE — its step delta equals the sum of
// distinct event charges; (2) every participant is charged its round in
// full — the accountant's per-op total equals Σ over events of
// steps × participants; (3) ops accounted equals ops submitted.
func TestScheduledChargeExactness(t *testing.T) {
	const clients, rounds, n = 8, 30, 400
	backing := newSchedTestDict(t, "basic", 7, n).(*Basic)
	sd, err := NewScheduled(backing, SchedOptions{MaxBatch: clients})
	if err != nil {
		t.Fatal(err)
	}
	h := &chargeHook{acct: obs.NewOpAccountant()}
	sd.SetHook(h)
	before := sd.IOStats().ParallelIOs

	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for _, k := range schedWorkload(7, c, rounds) {
				sd.LookupClient(c, k)
			}
		}(c)
	}
	wg.Wait()
	if err := sd.Close(); err != nil {
		t.Fatal(err)
	}
	sd.SetHook(nil)
	machineDelta := sd.IOStats().ParallelIOs - before

	var distinct, perOp int64
	h.mu.Lock()
	for _, e := range h.evs {
		distinct += int64(e.Steps)
		participants := int64(len(e.Ops))
		if e.Op != 0 {
			participants++
		}
		perOp += int64(e.Steps) * participants
	}
	h.mu.Unlock()
	if distinct != machineDelta {
		t.Fatalf("machine charged %d steps, events sum to %d", machineDelta, distinct)
	}
	ops, steps, _, _ := h.acct.Totals()
	if ops != clients*rounds {
		t.Fatalf("ops_accounted = %d, ops submitted = %d", ops, clients*rounds)
	}
	if steps != perOp {
		t.Fatalf("accountant per-op steps %d, want Σ steps×participants = %d", steps, perOp)
	}
	if perOp != machineDelta*int64(clients) {
		// Every window is full (8 lockstep clients), so every round is
		// charged to exactly 8 participants.
		t.Fatalf("per-op total %d, want machine %d × %d clients", perOp, machineDelta, clients)
	}
}

// TestScheduledTraceByteIdentity: deterministic mode produces
// byte-identical traces across two runs of the same seed — scheduler
// token IDs are a function of (client, per-client sequence) and the
// dispatcher canonicalizes batch order, so cross-client races never
// reach the trace.
func TestScheduledTraceByteIdentity(t *testing.T) {
	run := func() []byte {
		const clients, rounds, n = 8, 16, 300
		backing := newSchedTestDict(t, "basic", 11, n).(*Basic)
		sd, err := NewScheduled(backing, SchedOptions{MaxBatch: clients})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		jw := obs.NewJSONLWriter(&buf)
		sd.SetHook(jw)
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				keys := schedWorkload(11, c, rounds)
				for r, k := range keys {
					if r%5 == 4 {
						sd.InsertCtx(sd.MintOp(c, 1, obs.TagInsert), k, []Word{k, Word(c)})
					} else {
						sd.LookupClient(c, k)
					}
				}
			}(c)
		}
		wg.Wait()
		if err := sd.Close(); err != nil {
			t.Fatal(err)
		}
		sd.SetHook(nil)
		if err := jw.Close(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("empty trace")
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("traces differ between identical runs: %d vs %d bytes", len(a), len(b))
	}
}

// TestScheduledWritePath: inserts and deletes through the scheduler
// land, block until applied, and group-commit to the intent log.
func TestScheduledWritePath(t *testing.T) {
	const n = 200
	backing := newSchedTestDict(t, "dict", 3, n)
	var logBuf bytes.Buffer
	sd, err := NewScheduled(backing, SchedOptions{MaxBatch: 4, IntentLog: &logBuf})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			base := Word(1_000_000 + c*1000)
			for i := Word(0); i < 25; i++ {
				if err := sd.Insert(base+i, []Word{i, i}); err != nil {
					t.Errorf("insert: %v", err)
				}
			}
		}(c)
	}
	wg.Wait()
	if err := sd.Close(); err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 4; c++ {
		base := Word(1_000_000 + c*1000)
		for i := Word(0); i < 25; i++ {
			if _, ok := backing.Lookup(base + i); !ok {
				t.Fatalf("client %d key %d not applied", c, base+i)
			}
		}
	}
	if logBuf.Len() == 0 {
		t.Fatal("intent log empty after committed writes")
	}
	snap := sd.Snapshot()
	if snap.Writes != 100 {
		t.Fatalf("writes admitted %d, want 100", snap.Writes)
	}
	if snap.Flushes == 0 || snap.Flushes > 100 {
		t.Fatalf("flushes %d out of range", snap.Flushes)
	}
}

package pdmdict_test

// The paper's opening footnote: "the Hitachi TagmaStore USP1100 disk
// array can include up to 1152 disks". These tests run the structures
// at that scale — the regime the whole design targets (D = Ω(log u)
// with room to spare) — and at the opposite extreme of very few disks.

import (
	"testing"

	"pdmdict"
)

func TestHitachiScaleBasicDict(t *testing.T) {
	if testing.Short() {
		t.Skip("large-machine test")
	}
	// d = 1152 disks, one structure spanning all of them.
	d, err := pdmdict.NewBasic(pdmdict.BasicOptions{
		Options: pdmdict.Options{Capacity: 800, SatWords: 4, Degree: 1152, BlockSize: 16, Seed: 90},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 800; i++ {
		k := pdmdict.Word(i)*48271 + 11
		if err := d.Insert(k, []pdmdict.Word{k, k + 1, k + 2, k + 3}); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	before := d.IOStats().ParallelIOs
	for i := 0; i < 800; i++ {
		k := pdmdict.Word(i)*48271 + 11
		sat, ok := d.Lookup(k)
		if !ok || sat[0] != k {
			t.Fatalf("key %d = %v %v", k, sat, ok)
		}
	}
	if got := d.IOStats().ParallelIOs - before; got != 800 {
		t.Errorf("800 lookups on 1152 disks cost %d parallel I/Os, want 800", got)
	}
	// All 1152 disks participate in every probe.
	per := d.Machine().PerDiskIOs()
	if len(per) != 1152 {
		t.Fatalf("machine has %d disks", len(per))
	}
	for i, v := range per {
		if v == 0 {
			t.Fatalf("disk %d idle; striping broken at scale", i)
		}
	}
}

func TestHitachiScaleDynamic(t *testing.T) {
	if testing.Short() {
		t.Skip("large-machine test")
	}
	// 2d = 510 disks (d = 255, the packed head-pointer ceiling).
	d, err := pdmdict.NewDynamic(pdmdict.Options{
		Capacity: 1000, SatWords: 2, Degree: 255, BlockSize: 16, Epsilon: 0.1, Seed: 91,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if err := d.Insert(pdmdict.Word(i*7+1), []pdmdict.Word{1, 2}); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	before := d.IOStats().ParallelIOs
	for i := 0; i < 1000; i++ {
		if !d.Contains(pdmdict.Word(i*7 + 1)) {
			t.Fatal("key lost at scale")
		}
	}
	avg := float64(d.IOStats().ParallelIOs-before) / 1000
	if avg > 1.1 {
		t.Errorf("lookup avg = %.3f at d=255, ɛ=0.1; want ≤ 1.1", avg)
	}
}

func TestMinimalDiskCounts(t *testing.T) {
	// The smallest machines each structure accepts still work.
	b, err := pdmdict.NewBasic(pdmdict.BasicOptions{
		Options: pdmdict.Options{Capacity: 20, SatWords: 1, Degree: 1, BlockSize: 8, Seed: 92},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := b.Insert(pdmdict.Word(i+1), []pdmdict.Word{1}); err != nil {
			t.Fatalf("d=1 insert: %v", err)
		}
	}
	for i := 0; i < 20; i++ {
		if !b.Contains(pdmdict.Word(i + 1)) {
			t.Fatal("d=1 key lost")
		}
	}
}

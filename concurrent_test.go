package pdmdict

import (
	"sync"
	"testing"
)

// unitCosts measures the per-operation I/O deltas of a structure by
// running one op in isolation. Every Basic/OneProbe operation has an
// order-independent cost (a fixed number of read/write batches of fixed
// shape), so totals under concurrency must equal goroutine-count ×
// per-goroutine op counts × these units.
type unitCosts struct {
	pios, reads, writes int64
}

func delta(before, after IOStats) unitCosts {
	return unitCosts{
		pios:   after.ParallelIOs - before.ParallelIOs,
		reads:  after.BlockReads - before.BlockReads,
		writes: after.BlockWrites - before.BlockWrites,
	}
}

// concurrentStatsExact runs G goroutines, each inserting then looking
// up its own key range, and checks the merged machine counters against
// the measured unit costs.
func concurrentStatsExact(t *testing.T, dict interface {
	Dictionary
	IOStats() IOStats
}, machineOf func() interface{ VerifyChecksums() []Addr }) {
	t.Helper()
	const G = 8
	const perG = 40

	// Measure unit costs with two sacrificial keys outside every
	// goroutine's range.
	s0 := dict.IOStats()
	if err := dict.Insert(1_000_000, []Word{42}); err != nil {
		t.Fatal(err)
	}
	insCost := delta(s0, dict.IOStats())
	s1 := dict.IOStats()
	if _, ok := dict.Lookup(1_000_000); !ok {
		t.Fatal("warmup key missing")
	}
	lookCost := delta(s1, dict.IOStats())
	if lookCost.writes != 0 {
		t.Fatalf("lookup wrote %d blocks", lookCost.writes)
	}

	base := dict.IOStats()
	var wg sync.WaitGroup
	for g := 0; g < G; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			lo := Word(1 + g*perG)
			for k := lo; k < lo+perG; k++ {
				if err := dict.Insert(k, []Word{k * 7}); err != nil {
					t.Errorf("insert %d: %v", k, err)
					return
				}
			}
			for k := lo; k < lo+perG; k++ {
				sat, ok := dict.Lookup(k)
				if !ok || sat[0] != k*7 {
					t.Errorf("lookup %d: ok=%v sat=%v", k, ok, sat)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	got := delta(base, dict.IOStats())
	want := unitCosts{
		pios:   G * perG * (insCost.pios + lookCost.pios),
		reads:  G * perG * (insCost.reads + lookCost.reads),
		writes: G * perG * insCost.writes,
	}
	if got != want {
		t.Errorf("merged stats after %d goroutines × %d ops: got %+v, want %+v", G, perG, got, want)
	}
	if dict.Len() != G*perG+1 {
		t.Errorf("Len = %d, want %d", dict.Len(), G*perG+1)
	}
	if bad := machineOf().VerifyChecksums(); len(bad) != 0 {
		t.Errorf("VerifyChecksums reported %v", bad)
	}
}

func TestConcurrentBasicStatsExact(t *testing.T) {
	d, err := NewBasic(BasicOptions{Options: Options{Capacity: 2000, SatWords: 1, Universe: 1 << 21, Seed: 7}})
	if err != nil {
		t.Fatal(err)
	}
	concurrentStatsExact(t, d, func() interface{ VerifyChecksums() []Addr } { return d.Machine() })
}

func TestConcurrentOneProbeStatsExact(t *testing.T) {
	d, err := NewOneProbe(OneProbeOptions{Options: Options{Capacity: 2000, SatWords: 1, Universe: 1 << 21, Seed: 7}})
	if err != nil {
		t.Fatal(err)
	}
	concurrentStatsExact(t, d, func() interface{ VerifyChecksums() []Addr } { return d.Machine() })
}

// TestConcurrentDictMixed exercises the fully dynamic wrapper — which
// rebuilds itself mid-stream — under mixed concurrent traffic: the
// wrapper exposes no machine, so the assertions are data integrity and
// the exactly-counted parts of its ledger.
func TestConcurrentDictMixed(t *testing.T) {
	d, err := New(Options{Capacity: 64, SatWords: 1, Universe: 1 << 21, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	const G = 8
	const perG = 60
	var wg sync.WaitGroup
	for g := 0; g < G; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			lo := Word(1 + g*perG)
			for k := lo; k < lo+perG; k++ {
				if err := d.Insert(k, []Word{k * 3}); err != nil {
					t.Errorf("insert %d: %v", k, err)
					return
				}
				// Interleave reads of already-inserted keys from this
				// goroutine's range, single and batched.
				if sat, ok := d.Lookup(lo); !ok || sat[0] != lo*3 {
					t.Errorf("lookup %d during inserts: ok=%v sat=%v", lo, ok, sat)
					return
				}
				if k >= lo+2 {
					sats, oks := d.LookupBatch([]Word{lo, k - 1, k + 1_000_000})
					if !oks[0] || !oks[1] || oks[2] {
						t.Errorf("LookupBatch oks = %v", oks)
						return
					}
					if sats[0][0] != lo*3 || sats[1][0] != (k-1)*3 {
						t.Errorf("LookupBatch sats = %v", sats)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if d.Len() != G*perG {
		t.Errorf("Len = %d, want %d", d.Len(), G*perG)
	}
	// Every key still resolves after the dust (and the rebuilds) settle.
	keys := make([]Word, 0, G*perG)
	for g := 0; g < G; g++ {
		lo := Word(1 + g*perG)
		for k := lo; k < lo+perG; k++ {
			keys = append(keys, k)
		}
	}
	sats, oks := d.LookupBatch(keys)
	for i, k := range keys {
		if !oks[i] || sats[i][0] != k*3 {
			t.Errorf("post-run LookupBatch key %d: ok=%v sat=%v", k, oks[i], sats[i])
		}
	}
	// The ledger's Ops counter is exact even under concurrency (the cost
	// attribution is approximate, the counts are not). Each goroutine
	// did perG inserts, perG single lookups, and perG-2 batches of 3.
	wantOps := int64(G * (perG + perG + (perG-2)*3))
	if got := d.Ops(); got != wantOps+int64(len(keys)) {
		t.Errorf("Ops = %d, want %d", got, wantOps+int64(len(keys)))
	}
}

// TestConcurrentLookupBatchEquivalence checks, for every BatchLookuper,
// that concurrent batched lookups agree with single lookups.
func TestConcurrentLookupBatchEquivalence(t *testing.T) {
	mk := func() []struct {
		name string
		d    interface {
			Dictionary
			LookupBatch([]Word) ([][]Word, []bool)
		}
	} {
		basic, err := NewBasic(BasicOptions{Options: Options{Capacity: 500, SatWords: 1, Universe: 1 << 21, Seed: 3}})
		if err != nil {
			t.Fatal(err)
		}
		oneProbe, err := NewOneProbe(OneProbeOptions{Options: Options{Capacity: 500, SatWords: 1, Universe: 1 << 21, Seed: 3}})
		if err != nil {
			t.Fatal(err)
		}
		dynamic, err := NewDynamic(Options{Capacity: 500, SatWords: 1, Universe: 1 << 21, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		dict, err := New(Options{Capacity: 100, SatWords: 1, Universe: 1 << 21, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		syncd := Synchronized(dict)
		_ = syncd // SyncDict is covered via the interface below.
		return []struct {
			name string
			d    interface {
				Dictionary
				LookupBatch([]Word) ([][]Word, []bool)
			}
		}{
			{"Basic", basic}, {"OneProbe", oneProbe}, {"Dynamic", dynamic}, {"Dict", dict},
		}
	}
	for _, tc := range mk() {
		t.Run(tc.name, func(t *testing.T) {
			const n = 300
			for i := 0; i < n; i++ {
				k := Word(i*5 + 1)
				if err := tc.d.Insert(k, []Word{k + 100}); err != nil {
					t.Fatalf("insert %d: %v", k, err)
				}
			}
			var wg sync.WaitGroup
			for g := 0; g < 6; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					keys := make([]Word, 0, 64)
					for i := g; i < g+64; i++ {
						keys = append(keys, Word(i*5+1)) // mostly present
						keys = append(keys, Word(i*5+2)) // absent
					}
					sats, oks := tc.d.LookupBatch(keys)
					for i, k := range keys {
						wantOK := (k-1)%5 == 0 && k < n*5
						if oks[i] != wantOK {
							t.Errorf("key %d: batch ok=%v want %v", k, oks[i], wantOK)
							return
						}
						if wantOK && sats[i][0] != k+100 {
							t.Errorf("key %d: batch sat=%v", k, sats[i])
							return
						}
					}
				}(g)
			}
			wg.Wait()
		})
	}
}

// The public batch-lookup structures satisfy BatchLookuper.
var (
	_ BatchLookuper = (*Dict)(nil)
	_ BatchLookuper = (*Basic)(nil)
	_ BatchLookuper = (*Dynamic)(nil)
	_ BatchLookuper = (*OneProbe)(nil)
	_ BatchLookuper = (*SyncDict)(nil)
)

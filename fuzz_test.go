package pdmdict

import (
	"bytes"
	"io"
	"testing"
)

// savedCorpus produces one valid Save stream per openable structure,
// used to seed the fuzzer with well-formed inputs it can mutate.
func savedCorpus(tb testing.TB) [][]byte {
	tb.Helper()
	// Degree 20 satisfies Theorem 7's d > 6(1+1/ɛ) for the default ɛ.
	opts := Options{Capacity: 64, SatWords: 2, Degree: 20, BlockSize: 32, Seed: 3}
	fill := func(insert func(Word, []Word) error) {
		tb.Helper()
		for i := 0; i < 40; i++ {
			if err := insert(Word(i)*31+1, []Word{Word(i), 9}); err != nil {
				tb.Fatal(err)
			}
		}
	}
	snap := func(save func(io.Writer) error) []byte {
		tb.Helper()
		var buf bytes.Buffer
		if err := save(&buf); err != nil {
			tb.Fatal(err)
		}
		return buf.Bytes()
	}

	b, err := NewBasic(BasicOptions{Options: opts})
	if err != nil {
		tb.Fatal(err)
	}
	fill(b.Insert)

	dy, err := NewDynamic(opts)
	if err != nil {
		tb.Fatal(err)
	}
	fill(dy.Insert)

	recs := make([]Record, 40)
	for i := range recs {
		recs[i] = Record{Key: Word(i)*31 + 1, Sat: []Word{Word(i), 9}}
	}
	st, err := BuildStatic(StaticOptions{Options: opts}, recs)
	if err != nil {
		tb.Fatal(err)
	}

	dd, err := New(opts)
	if err != nil {
		tb.Fatal(err)
	}
	fill(dd.Insert)

	return [][]byte{snap(b.Save), snap(dy.Save), snap(st.Save), snap(dd.Save)}
}

// FuzzSnapshot feeds arbitrary bytes — seeded with valid snapshots,
// which the fuzzer truncates and bit-flips — to every Open function.
// Each must return an error or a working structure; none may panic, and
// none may allocate unboundedly off a length field.
func FuzzSnapshot(f *testing.F) {
	for _, seed := range savedCorpus(f) {
		f.Add(seed)
		// Hand the fuzzer a head start on the two interesting classes.
		if len(seed) > 8 {
			f.Add(seed[:len(seed)/2])
			flipped := append([]byte(nil), seed...)
			flipped[len(flipped)/3] ^= 0x40
			f.Add(flipped)
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		tryOpens(t, data)
	})
}

// TestSnapshotRejectsMutations is the non-fuzz subset of the same
// property, so plain `go test` exercises it even without -fuzz: every
// truncation point and a sweep of single bit flips must never panic.
func TestSnapshotRejectsMutations(t *testing.T) {
	for _, seed := range savedCorpus(t) {
		// ~256 probe points per seed keeps the sweep fast while still
		// hitting every header field and a spread of payload offsets.
		step := len(seed)/256 + 1
		for cut := 0; cut < len(seed); cut += step {
			tryOpens(t, seed[:cut])
		}
		for pos := 0; pos < len(seed); pos += step {
			mut := append([]byte(nil), seed...)
			mut[pos] ^= 1 << (pos % 8)
			tryOpens(t, mut)
		}
	}
}

func tryOpens(t *testing.T, data []byte) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("open panicked on %d-byte input: %v", len(data), r)
		}
	}()
	_, _ = OpenBasic(bytes.NewReader(data))
	_, _ = OpenDynamic(bytes.NewReader(data))
	_, _ = OpenStatic(bytes.NewReader(data))
	_, _ = OpenDict(bytes.NewReader(data))
}

package pdmdict_test

// Online/offline equivalence for the deterministic watchdog: the alert
// timeline a live obs.Monitor produces while hooked to a running
// dictionary must be byte-identical to the timeline a fresh monitor
// reconstructs from the JSONL trace of the same run. This is the
// property `pdmtrace -alerts` relies on — the watchdog's clock is the
// trace's own step counter, so replay IS the live run.

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"pdmdict"
	"pdmdict/internal/obs"
	"pdmdict/internal/pdm"
	"pdmdict/internal/workload"
)

// equivRules builds the rule set fresh for each monitor — detector
// state must never be shared between the live and offline passes.
// Thresholds are deliberately aggressive so even a short single-machine
// workload produces a non-trivial timeline.
func equivRules() []obs.Rule {
	bal := obs.BalanceRule(obs.BalanceConfig{WindowSteps: 64, MaxSkewMicro: 1, MinBlocks: 1})
	bal.EvalEvery = 16
	burn := obs.BurnRateRule(obs.BurnConfig{Target: time.Nanosecond, MinOps: 1, FastSteps: 128, SlowSteps: 256})
	burn.EvalEvery = 16
	return []obs.Rule{
		bal, burn,
		obs.HealthFlapRule(obs.FlapConfig{}),
		obs.DegradedCapacityRule(obs.DegradedConfig{}),
	}
}

func renderTimeline(mon *obs.Monitor) string {
	var sb strings.Builder
	mon.RenderTimeline(&sb)
	return sb.String()
}

func TestMonitorOnlineOfflineEquivalence(t *testing.T) {
	opts := func(seed int64) pdmdict.Options {
		return pdmdict.Options{Capacity: 512, SatWords: 2, Seed: uint64(seed)}
	}
	builders := map[string]func(seed int64) (hookedDict, error){
		"basic": func(seed int64) (hookedDict, error) {
			return pdmdict.NewBasic(pdmdict.BasicOptions{Options: opts(seed)})
		},
		"hashtable": func(seed int64) (hookedDict, error) { return pdmdict.NewHashTable(opts(seed)) },
		"cuckoo":    func(seed int64) (hookedDict, error) { return pdmdict.NewCuckoo(opts(seed)) },
	}
	for name, build := range builders {
		t.Run(name, func(t *testing.T) {
			for _, seed := range []int64{1, 42, 9001} {
				dict, err := build(seed)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}

				// Live pass: the monitor watches the run AND records it —
				// the JSONL writer downstream sees every event plus the
				// alert annotations the monitor itself synthesizes.
				var buf bytes.Buffer
				w := obs.NewJSONLWriter(&buf)
				live := obs.NewMonitor(w, equivRules()...)
				dict.SetHook(live)

				keys := workload.Uniform(400, 1<<40, seed+1)
				ops := workload.Ops(keys, 2000, workload.Mix{Lookup: 45, Insert: 40, Delete: 15},
					0.2, seed+2)
				for i, op := range ops {
					switch op.Kind {
					case workload.OpInsert:
						if err := dict.Insert(op.Key, []pdmdict.Word{op.Key, pdmdict.Word(i)}); err != nil {
							t.Fatalf("seed %d: insert %d: %v", seed, op.Key, err)
						}
					case workload.OpLookup:
						dict.Lookup(op.Key)
					case workload.OpDelete:
						dict.Delete(op.Key)
					}
				}
				if err := w.Close(); err != nil {
					t.Fatalf("seed %d: closing trace: %v", seed, err)
				}

				liveOut := renderTimeline(live)
				if liveOut == "" {
					t.Fatalf("seed %d: live monitor produced an empty timeline; the equivalence check is vacuous", seed)
				}

				// Offline pass: replay the recorded trace through a fresh
				// monitor, exactly as pdmtrace -alerts does.
				events, err := obs.ReadEvents(bytes.NewReader(buf.Bytes()))
				if err != nil {
					t.Fatalf("seed %d: reading trace back: %v", seed, err)
				}
				offline := obs.NewMonitor(nil, equivRules()...)
				alertEvents := 0
				for _, e := range events {
					if e.Kind == pdm.EventAlert {
						alertEvents++
					}
					offline.Event(e)
				}
				if got := live.Snapshot().Transitions; int64(alertEvents) != got {
					t.Errorf("seed %d: trace carries %d alert events, live monitor made %d transitions",
						seed, alertEvents, got)
				}
				if offlineOut := renderTimeline(offline); offlineOut != liveOut {
					t.Errorf("seed %d: offline timeline diverges from live\nlive:\n%s\noffline:\n%s",
						seed, liveOut, offlineOut)
				}
				if live.Now() != offline.Now() {
					t.Errorf("seed %d: clocks diverge: live %d, offline %d", seed, live.Now(), offline.Now())
				}
			}
		})
	}
}

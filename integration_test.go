package pdmdict_test

// Integration tests: drive every public structure through the same
// seeded operation streams and cross-check them against each other and
// against an in-memory oracle — the structures disagree only if one of
// them is wrong.

import (
	"fmt"
	"testing"

	"pdmdict"
	"pdmdict/internal/workload"
)

func buildAll(t *testing.T, capacity, satWords int) map[string]pdmdict.Dictionary {
	t.Helper()
	opts := pdmdict.Options{Capacity: capacity, SatWords: satWords, Seed: 77}
	dicts := map[string]pdmdict.Dictionary{}
	add := func(name string, d pdmdict.Dictionary, err error) {
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		dicts[name] = d
	}
	d1, err := pdmdict.New(opts)
	add("dict", d1, err)
	d2, err := pdmdict.NewBasic(pdmdict.BasicOptions{Options: opts})
	add("basic", d2, err)
	d3, err := pdmdict.NewDynamic(opts)
	add("dynamic", d3, err)
	d4, err := pdmdict.NewOneProbe(pdmdict.OneProbeOptions{Options: opts})
	add("oneprobe", d4, err)
	d5, err := pdmdict.NewHashTable(opts)
	add("hashtable", d5, err)
	d6, err := pdmdict.NewCuckoo(opts)
	add("cuckoo", d6, err)
	d7, err := pdmdict.NewTwoLevel(opts)
	add("twolevel", d7, err)
	d8, err := pdmdict.NewBTree(pdmdict.BTreeOptions{Options: opts})
	add("btree", d8, err)
	return dicts
}

func TestIntegrationAllStructuresAgree(t *testing.T) {
	const satWords = 2
	dicts := buildAll(t, 1500, satWords)
	keys := workload.Uniform(1200, 1<<40, 78)
	ops := workload.Ops(keys, 6000, workload.Mix{Lookup: 50, Insert: 35, Delete: 15}, 0.15, 79)

	oracle := map[pdmdict.Word][]pdmdict.Word{}
	satOf := func(k pdmdict.Word, i int) []pdmdict.Word {
		return []pdmdict.Word{k + pdmdict.Word(i), k * 3}
	}
	for i, op := range ops {
		switch op.Kind {
		case workload.OpInsert:
			sat := satOf(op.Key, i)
			for name, d := range dicts {
				if err := d.Insert(op.Key, sat); err != nil {
					t.Fatalf("op %d: %s insert: %v", i, name, err)
				}
			}
			oracle[op.Key] = sat
		case workload.OpDelete:
			_, want := oracle[op.Key]
			for name, d := range dicts {
				if got := d.Delete(op.Key); got != want {
					t.Fatalf("op %d: %s Delete(%d) = %v, oracle %v", i, name, op.Key, got, want)
				}
			}
			delete(oracle, op.Key)
		case workload.OpLookup:
			want, okWant := oracle[op.Key]
			for name, d := range dicts {
				sat, ok := d.Lookup(op.Key)
				if ok != okWant {
					t.Fatalf("op %d: %s Lookup(%d) = %v, oracle %v", i, name, op.Key, ok, okWant)
				}
				if ok && (sat[0] != want[0] || sat[1] != want[1]) {
					t.Fatalf("op %d: %s Lookup(%d) = %v, oracle %v", i, name, op.Key, sat, want)
				}
			}
		}
	}
	for name, d := range dicts {
		if d.Len() != len(oracle) {
			t.Errorf("%s: Len = %d, oracle %d", name, d.Len(), len(oracle))
		}
	}
}

func TestIntegrationDeterministicReplay(t *testing.T) {
	// Bit-exact determinism: two independent instances fed the same
	// stream must finish with identical I/O counters.
	run := func() pdmdict.IOStats {
		d, err := pdmdict.New(pdmdict.Options{Capacity: 128, SatWords: 1, Seed: 80})
		if err != nil {
			t.Fatal(err)
		}
		keys := workload.Uniform(400, 1<<40, 81)
		ops := workload.Ops(keys, 2500, workload.WriteHeavy, 0.1, 82)
		for _, op := range ops {
			switch op.Kind {
			case workload.OpInsert:
				d.Insert(op.Key, []pdmdict.Word{op.Key})
			case workload.OpLookup:
				d.Lookup(op.Key)
			case workload.OpDelete:
				d.Delete(op.Key)
			}
		}
		return d.IOStats()
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("replay diverged: %+v vs %+v", a, b)
	}
}

func TestIntegrationZipfReadPath(t *testing.T) {
	// The paper's motivating workload shape: skewed random reads over a
	// large store. Every deterministic structure must hold its lookup
	// guarantee for every single access, not on average.
	opts := pdmdict.Options{Capacity: 2000, SatWords: 4, Seed: 83}
	basic, err := pdmdict.NewBasic(pdmdict.BasicOptions{Options: opts})
	if err != nil {
		t.Fatal(err)
	}
	oneprobe, err := pdmdict.NewOneProbe(pdmdict.OneProbeOptions{Options: opts})
	if err != nil {
		t.Fatal(err)
	}
	keys := workload.Uniform(2000, 1<<40, 84)
	sat := []pdmdict.Word{1, 2, 3, 4}
	for _, k := range keys {
		if err := basic.Insert(k, sat); err != nil {
			t.Fatal(err)
		}
		if err := oneprobe.Insert(k, sat); err != nil {
			t.Fatal(err)
		}
	}
	accesses := workload.ZipfAccesses(keys, 5000, 1.3, 85)
	for _, probe := range []struct {
		name string
		d    pdmdict.Dictionary
	}{{"basic", basic}, {"oneprobe", oneprobe}} {
		before := probe.d.IOStats().ParallelIOs
		for _, k := range accesses {
			if !probe.d.Contains(k) {
				t.Fatalf("%s: hot key lost", probe.name)
			}
		}
		total := probe.d.IOStats().ParallelIOs - before
		if total != int64(len(accesses)) {
			t.Errorf("%s: %d I/Os for %d reads, want exactly 1 each", probe.name, total, len(accesses))
		}
	}
}

func TestIntegrationGrowthStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	d, err := pdmdict.New(pdmdict.Options{Capacity: 64, SatWords: 1, Seed: 86})
	if err != nil {
		t.Fatal(err)
	}
	const n = 8000 // 7 doublings
	for i := 0; i < n; i++ {
		k := pdmdict.Word(i)*2654435761 + 99
		if err := d.Insert(k, []pdmdict.Word{pdmdict.Word(i)}); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		// Spot-check earlier keys as we go.
		if i%500 == 499 {
			probe := i / 2
			pk := pdmdict.Word(probe)*2654435761 + 99
			if sat, ok := d.Lookup(pk); !ok || sat[0] != pdmdict.Word(probe) {
				t.Fatalf("at n=%d: key %d = %v %v", i, probe, sat, ok)
			}
		}
	}
	if d.Len() != n {
		t.Fatalf("Len = %d, want %d", d.Len(), n)
	}
	if w := d.WorstOpIOs(); w > 60 {
		t.Errorf("worst op across %d inserts and %d rebuilds = %d I/Os; want constant",
			n, d.Rebuilds(), w)
	}
}

func ExampleNew() {
	dict, err := pdmdict.New(pdmdict.Options{Capacity: 16, SatWords: 1, Seed: 1})
	if err != nil {
		panic(err)
	}
	dict.Insert(42, []pdmdict.Word{4242})
	sat, ok := dict.Lookup(42)
	fmt.Println(ok, sat[0])
	// Output: true 4242
}

package pdmdict

import (
	"io"

	"pdmdict/internal/core"
)

// Persistence: every structure can be written to an io.Writer and
// restored later. A snapshot contains the configuration, the counters,
// and the full contents of the simulated disks, so the restored
// structure is bit-identical — including its I/O statistics.

// Save writes a snapshot of the dictionary.
func (b *Basic) Save(w io.Writer) error { return b.d.Snapshot(w) }

// OpenBasic restores a Basic from a Save stream.
func OpenBasic(r io.Reader) (*Basic, error) {
	d, m, err := core.LoadBasic(r)
	if err != nil {
		return nil, err
	}
	return &Basic{machineStats{m}, d}, nil
}

// Save writes a snapshot of the dictionary.
func (d *Dynamic) Save(w io.Writer) error { return d.d.Snapshot(w) }

// OpenDynamic restores a Dynamic from a Save stream.
func OpenDynamic(r io.Reader) (*Dynamic, error) {
	dd, m, err := core.LoadDynamic(r)
	if err != nil {
		return nil, err
	}
	return &Dynamic{machineStats{m}, dd}, nil
}

// Save writes a snapshot of the dictionary.
func (s *Static) Save(w io.Writer) error { return s.d.Snapshot(w) }

// OpenStatic restores a Static from a Save stream.
func OpenStatic(r io.Reader) (*Static, error) {
	sd, m, err := core.LoadStatic(r)
	if err != nil {
		return nil, err
	}
	return &Static{machineStats{m}, sd}, nil
}

// Save writes a snapshot of the dictionary, including an in-progress
// migration if one is running.
func (d *Dict) Save(w io.Writer) error { return d.d.Snapshot(w) }

// OpenDict restores a Dict from a Save stream; a saved migration
// resumes where it left off.
func OpenDict(r io.Reader) (*Dict, error) {
	dd, err := core.LoadDict(r)
	if err != nil {
		return nil, err
	}
	return &Dict{d: dd}, nil
}

package pdmdict

import (
	"errors"
	"io"
	"time"

	"pdmdict/internal/obs"
	"pdmdict/internal/sched"
)

// Scheduled routes a dictionary's operations through the group-commit
// request scheduler (internal/sched): concurrent single-key lookups
// that arrive within an admission window coalesce into ONE merged,
// de-duplicated shared read round, and mutations queue behind a
// checksummed intent log that is applied and flushed once per window —
// so a burst of b independent clients pays the deepest per-disk queue
// of distinct blocks, not b sequential rounds. Per-op charges stay
// exact: every participant of a merged round is charged the round's
// full cost once (see DESIGN.md §15 for the charge convention).
//
// Two clocks, selected by SchedOptions.Window:
//
//   - Window == 0 is deterministic mode: the admission window closes
//     when MaxBatch operations are pending or the machine's step
//     counter advances StepBudget — no wall clock anywhere, so traces
//     are byte-identical run to run for a fixed seed and lockstep
//     workload. Callers must cooperate (run MaxBatch lockstep clients,
//     or Flush) — a partial window blocks until a trigger fires.
//   - Window > 0 is serving mode: a wall timer additionally closes
//     partial windows after the given duration. The timer lives out
//     here, injected into the scheduler as an opaque callback (like
//     SetWallClock), so wall time decides only WHEN a round runs —
//     never what it contains or costs — and stays out of traces by
//     construction.
//
// All methods are safe for concurrent use. A Scheduled caller must not
// also use the wrapped dictionary directly while writes are in flight.
type Scheduled struct {
	d Dictionary
	s *sched.Scheduler
}

var (
	_ Dictionary    = (*Scheduled)(nil)
	_ BatchLookuper = (*Scheduled)(nil)
	_ Hooked        = (*Scheduled)(nil)
)

// SchedSnapshot is a point-in-time view of a Scheduled's scheduler; see
// obs.SchedSnapshot for field semantics.
type SchedSnapshot = obs.SchedSnapshot

// ErrOverloaded is returned by Scheduled's write path when the write
// queue is at its configured depth, a flush is already in progress, and
// SchedOptions.Block is false — the backpressure signal.
var ErrOverloaded = sched.ErrOverloaded

// ErrSchedClosed is returned for operations submitted after Close.
var ErrSchedClosed = sched.ErrClosed

// SchedOptions configures NewScheduled. The zero value is a reasonable
// deterministic-mode default (MaxBatch 16, QueueDepth 64, non-blocking
// backpressure, no intent log).
type SchedOptions struct {
	// MaxBatch closes the admission window when this many operations
	// are pending (0 = 16). For deterministic lockstep workloads set it
	// to the client count.
	MaxBatch int
	// Window, when positive, enables serving mode: a wall timer closes
	// partial windows after this duration.
	Window time.Duration
	// StepBudget, when positive, closes the window once the machine's
	// parallel-I/O step counter has advanced this much since the window
	// opened — the deterministic partial-window clock.
	StepBudget int64
	// QueueDepth bounds the pending-write queue (0 = 64). The queue
	// never exceeds it.
	QueueDepth int
	// Block makes writers that meet a full queue wait for the in-flight
	// group commit instead of receiving ErrOverloaded.
	Block bool
	// IntentLog, when non-nil, receives the checksummed write-ahead
	// intent records; the log is flushed once per group commit, and
	// writers are acknowledged only after their group's flush. Replay
	// with sched.ReplayIntents after a crash.
	IntentLog io.Writer
}

// NewScheduled wraps d — a *Dict, *Basic, *Dynamic, or *OneProbe — in a
// group-commit scheduler.
func NewScheduled(d Dictionary, opts SchedOptions) (*Scheduled, error) {
	var be sched.Backend
	var steps func() int64
	switch v := d.(type) {
	case *Dict:
		be, steps = v.d, v.d.StepCount
	case *Basic:
		be, steps = v.d, v.m.StepCount
	case *Dynamic:
		be, steps = v.d, v.m.StepCount
	case *OneProbe:
		be, steps = v.d, v.m.StepCount
	default:
		return nil, errors.New("pdmdict: NewScheduled: unsupported dictionary type")
	}
	cfg := sched.Config{
		MaxBatch:   opts.MaxBatch,
		StepBudget: opts.StepBudget,
		Steps:      steps,
		QueueDepth: opts.QueueDepth,
		Block:      opts.Block,
	}
	if opts.IntentLog != nil {
		cfg.Log = sched.NewIntentLog(opts.IntentLog)
	}
	if opts.Window > 0 {
		window := opts.Window
		cfg.AfterFunc = func(fire func()) (stop func()) {
			t := time.AfterFunc(window, fire)
			return func() { t.Stop() }
		}
	}
	return &Scheduled{d: d, s: sched.New(be, cfg)}, nil
}

// MintOp mints a scheduler-scoped operation token for client over keys
// keys with the given root tag. Scheduler tokens encode (client,
// per-client sequence), so equal per-client workloads mint equal IDs
// regardless of cross-client races — the property deterministic-mode
// trace identity rests on.
func (s *Scheduled) MintOp(client, keys int, tag string) OpCtx {
	return OpCtx{Op: s.s.MintOp(client, keys), Tag: tag}
}

// Lookup joins the current admission window and blocks until its merged
// shared round resolves the key.
func (s *Scheduled) Lookup(key Word) ([]Word, bool) {
	return s.LookupCtx(s.MintOp(0, 1, obs.TagLookup), key)
}

// LookupClient is Lookup attributed to the given client — distinct
// clients mint independent deterministic token sequences.
func (s *Scheduled) LookupClient(client int, key Word) ([]Word, bool) {
	return s.LookupCtx(s.MintOp(client, 1, obs.TagLookup), key)
}

// LookupCtx is Lookup under an operation token.
func (s *Scheduled) LookupCtx(c OpCtx, key Word) ([]Word, bool) {
	sat, ok, err := s.s.LookupOp(c.Op, key)
	if err != nil {
		return nil, false
	}
	return sat, ok
}

// Contains reports whether key is present, via a scheduled lookup.
func (s *Scheduled) Contains(key Word) bool {
	_, ok := s.Lookup(key)
	return ok
}

// LookupBatch answers a hand-assembled batch directly on the wrapped
// dictionary — a caller who already holds b keys has already done the
// coalescing, so the batch bypasses the admission window (it would only
// add latency) and rides the dictionary's own merged-round path under
// one batch token.
func (s *Scheduled) LookupBatch(keys []Word) ([][]Word, []bool) {
	type batchCtx interface {
		LookupBatchCtx(OpCtx, []Word) ([][]Word, []bool)
	}
	if bl, ok := s.d.(batchCtx); ok {
		return bl.LookupBatchCtx(s.MintOp(0, len(keys), obs.TagLookup), keys)
	}
	bl := s.d.(BatchLookuper)
	return bl.LookupBatch(keys)
}

// Insert queues the mutation and blocks until its group commits: the
// write is applied and the intent log (if any) flushed. Returns
// ErrOverloaded under backpressure when SchedOptions.Block is false.
func (s *Scheduled) Insert(key Word, sat []Word) error {
	return s.InsertCtx(s.MintOp(0, 1, obs.TagInsert), key, sat)
}

// InsertCtx is Insert under an operation token.
func (s *Scheduled) InsertCtx(c OpCtx, key Word, sat []Word) error {
	return s.s.InsertOp(c.Op, key, sat)
}

// Delete queues the removal and blocks until its group commits,
// reporting whether the key was present. A false return under
// backpressure means the delete was NOT applied — use DeleteCtx via
// TryDelete semantics when that distinction matters.
func (s *Scheduled) Delete(key Word) bool {
	present, _ := s.DeleteCtx(s.MintOp(0, 1, obs.TagDelete), key)
	return present
}

// DeleteCtx is Delete under an operation token, surfacing the
// backpressure error.
func (s *Scheduled) DeleteCtx(c OpCtx, key Word) (bool, error) {
	return s.s.DeleteOp(c.Op, key)
}

// Len returns the wrapped dictionary's committed size. Writes still
// queued in an open window are not counted; Flush first for an exact
// answer.
func (s *Scheduled) Len() int { return s.d.Len() }

// IOStats returns the wrapped dictionary's accumulated disk traffic.
func (s *Scheduled) IOStats() IOStats { return s.d.IOStats() }

// SetHook attaches an observability hook to the wrapped dictionary's
// machine, if it supports hooks.
func (s *Scheduled) SetHook(h IOHook) {
	if hk, ok := s.d.(Hooked); ok {
		hk.SetHook(h)
	}
}

// Flush closes and dispatches the current admission window and returns
// once nothing is pending — the deterministic-mode escape hatch for
// partial windows and the shutdown drain.
func (s *Scheduled) Flush() { s.s.Flush() }

// Close drains every pending operation and shuts the scheduler down;
// later submissions fail with ErrSchedClosed. The wrapped dictionary
// remains usable directly.
func (s *Scheduled) Close() error { return s.s.Close() }

// Snapshot returns the scheduler's counters and histograms — the same
// view obs serves on /debug/sched.
func (s *Scheduled) Snapshot() SchedSnapshot { return s.s.Snapshot() }

// Unwrap returns the wrapped dictionary.
func (s *Scheduled) Unwrap() Dictionary { return s.d }

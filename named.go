package pdmdict

import (
	"errors"
	"fmt"
)

// NamedDict adapts any Dictionary to string keys — the paper's
// file-system scenario where "the name can be easily hashed as well"
// (Section 1.2), eliminating the name→inode translation step.
//
// A name is hashed to a 63-bit word key; the name itself is stored,
// length-prefixed, in front of the satellite and verified on every
// lookup, so a hash collision can never return another name's data.
// Collisions (two distinct live names with equal hashes) are instead
// surfaced as ErrNameCollision on Insert — with a 63-bit hash they are
// a < n²/2⁶³ event, but a deterministic system reports them rather than
// assuming them away.
type NamedDict struct {
	d         Dictionary
	satWords  int // user-visible satellite words
	nameWords int // reserved words for the length-prefixed name
}

// ErrNameCollision is returned when two distinct names hash to the same
// key. Rebuilding with a different underlying Seed resolves it.
var ErrNameCollision = errors.New("pdmdict: name hash collision")

// maxNameBytes is the longest name NamedDict accepts.
const maxNameBytes = 255

// NewNamed wraps d, which must have been created with SatWords equal to
// Named.SatWords(satWords) — the user satellite plus the reserved name
// region.
func NewNamed(d Dictionary, satWords int) *NamedDict {
	return &NamedDict{d: d, satWords: satWords, nameWords: nameRegionWords()}
}

// NamedSatWords returns the SatWords the underlying dictionary must be
// configured with to hold satWords user words per name.
func NamedSatWords(satWords int) int { return satWords + nameRegionWords() }

// nameRegionWords is the fixed name storage: 1 length word + 32 words
// of bytes (256 bytes).
func nameRegionWords() int { return 1 + maxNameBytes/8 + 1 }

// hashName folds a name into a 63-bit key (FNV-1a over the bytes, top
// bit cleared so keys stay inside the default universe).
func hashName(name string) Word {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return Word(h &^ (1 << 63))
}

// encodeName packs the length-prefixed name followed by the satellite.
func (nd *NamedDict) encode(name string, sat []Word) []Word {
	out := make([]Word, nd.nameWords+nd.satWords)
	out[0] = Word(len(name))
	for i := 0; i < len(name); i++ {
		out[1+i/8] |= Word(name[i]) << (8 * (i % 8))
	}
	copy(out[nd.nameWords:], sat)
	return out
}

// decodeName extracts the stored name.
func (nd *NamedDict) decodeName(raw []Word) string {
	n := int(raw[0])
	if n > maxNameBytes {
		return "" // corrupt; treated as a mismatch by callers
	}
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(raw[1+i/8] >> (8 * (i % 8)))
	}
	return string(b)
}

// Insert stores (name, sat), replacing any existing satellite for the
// same name. It returns ErrNameCollision if a different live name owns
// the same hash.
//
//lint:pdm-allow opctx: delegates to an inner Dictionary whose own entry points mint tokens
func (nd *NamedDict) Insert(name string, sat []Word) error {
	if len(name) > maxNameBytes {
		return fmt.Errorf("pdmdict: name of %d bytes exceeds %d", len(name), maxNameBytes)
	}
	if len(sat) != nd.satWords {
		return fmt.Errorf("pdmdict: satellite of %d words, config says %d", len(sat), nd.satWords)
	}
	key := hashName(name)
	if raw, ok := nd.d.Lookup(key); ok && nd.decodeName(raw) != name {
		return fmt.Errorf("%w: %q vs %q", ErrNameCollision, name, nd.decodeName(raw))
	}
	return nd.d.Insert(key, nd.encode(name, sat))
}

// Lookup returns a copy of name's satellite and whether it is present.
// The stored name is verified, so collisions read as absent, never as
// wrong data.
//
//lint:pdm-allow opctx: delegates to an inner Dictionary whose own entry points mint tokens
func (nd *NamedDict) Lookup(name string) ([]Word, bool) {
	raw, ok := nd.d.Lookup(hashName(name))
	if !ok || nd.decodeName(raw) != name {
		return nil, false
	}
	sat := make([]Word, nd.satWords)
	copy(sat, raw[nd.nameWords:])
	return sat, true
}

// TryLookuper is satisfied by structures that offer a fault-aware
// lookup path (currently Basic with Replicas ≥ 2).
type TryLookuper interface {
	LookupTry(key Word) ([]Word, bool, error)
}

// LookupTry is the fault-aware Lookup: when the underlying dictionary
// supports degraded reads it is used (surviving replicas answer even
// with failed disks), otherwise this falls back to the plain Lookup. A
// non-nil error means the result is inconclusive, never a definitive
// absence.
//
//lint:pdm-allow opctx: fault-aware Try path stays on the legacy span path
func (nd *NamedDict) LookupTry(name string) ([]Word, bool, error) {
	tl, ok := nd.d.(TryLookuper)
	if !ok {
		sat, found := nd.Lookup(name)
		return sat, found, nil
	}
	raw, found, err := tl.LookupTry(hashName(name))
	if !found {
		return nil, false, err
	}
	if nd.decodeName(raw) != name {
		return nil, false, nil
	}
	sat := make([]Word, nd.satWords)
	copy(sat, raw[nd.nameWords:])
	return sat, true, nil
}

// Contains reports whether name is present.
func (nd *NamedDict) Contains(name string) bool {
	_, ok := nd.Lookup(name)
	return ok
}

// Delete removes name, reporting whether it was present. Only the exact
// name is removed — a colliding other name is left alone.
//
//lint:pdm-allow opctx: delegates to an inner Dictionary whose own entry points mint tokens
func (nd *NamedDict) Delete(name string) bool {
	key := hashName(name)
	raw, ok := nd.d.Lookup(key)
	if !ok || nd.decodeName(raw) != name {
		return false
	}
	return nd.d.Delete(key)
}

// Len returns the number of stored names.
func (nd *NamedDict) Len() int { return nd.d.Len() }

// SetHook attaches an observability hook to the underlying dictionary,
// if it supports one (all structures in this package do).
func (nd *NamedDict) SetHook(h IOHook) {
	if hooked, ok := nd.d.(Hooked); ok {
		hooked.SetHook(h)
	}
}

// IOStats returns the underlying dictionary's traffic.
func (nd *NamedDict) IOStats() IOStats { return nd.d.IOStats() }

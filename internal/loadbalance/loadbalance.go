// Package loadbalance implements the deterministic load balancing scheme
// of Section 3 of the paper: d-choice balls-into-bins on a fixed
// unbalanced bipartite expander.
//
// There is an unknown set of n left vertices, each carrying k items; the
// set is revealed element by element and each item must be assigned
// on-line to one of the vertex's d neighboring buckets. The strategy is
// greedy: assign the k items one by one, each to a neighboring bucket
// that currently has the fewest items, breaking ties deterministically
// (lowest bucket index). Multiple items of one vertex may share a bucket.
//
// Lemma 3 bounds the maximum load when the graph is a (d, ε, δ)-expander
// and d > k:
//
//	max load ≤ (1/(1−ε)) · ⌈kn/((1−δ)v)⌉ + log_{(1−ε)d/k} v.
//
// The same scheme with k = 1 and a random left-degree-2 graph is the
// classic two-choice process of Azar et al. [2] and Berenbrink et al.
// [3]; those baselines are obtained here by running the balancer over a
// seeded random graph of degree 2 (or 1), which is how experiment
// E2-lemma3 compares the deterministic scheme against them.
package loadbalance

import (
	"fmt"
	"math"

	"pdmdict/internal/expander"
)

// Balancer runs the greedy d-choice scheme over a fixed graph. It is the
// in-memory reference implementation; the dictionaries in internal/core
// re-enact the same decision rule on disk-resident buckets.
type Balancer struct {
	g     expander.Graph
	k     int
	load  []int
	balls int
	buf   []int
}

// New returns a balancer placing k items per left vertex on graph g.
// It requires 1 ≤ k ≤ d (the scheme assigns each of the k items to one of
// the d neighbors; Lemma 3 needs d > k for a nontrivial bound, but k = d
// is still a valid process).
func New(g expander.Graph, k int) *Balancer {
	if k < 1 || k > g.Degree() {
		panic(fmt.Sprintf("loadbalance: k=%d outside [1, d=%d]", k, g.Degree()))
	}
	return &Balancer{g: g, k: k, load: make([]int, g.RightSize())}
}

// K returns the number of items placed per vertex.
func (b *Balancer) K() int { return b.k }

// Graph returns the underlying graph.
func (b *Balancer) Graph() expander.Graph { return b.g }

// Place assigns the k items of left vertex x and returns the chosen
// bucket indices (length k, possibly with repeats). The choice is the
// paper's greedy rule: each item goes to a currently least-loaded
// neighbor; ties break to the lowest bucket index, which keeps the whole
// process deterministic.
func (b *Balancer) Place(x uint64) []int {
	b.buf = b.g.Neighbors(x, b.buf[:0])
	choices := make([]int, b.k)
	for j := 0; j < b.k; j++ {
		best := b.buf[0]
		for _, y := range b.buf[1:] {
			if b.load[y] < b.load[best] || (b.load[y] == b.load[best] && y < best) {
				best = y
			}
		}
		b.load[best]++
		choices[j] = best
	}
	b.balls++
	return choices
}

// PlaceAll places every vertex of s in order and returns the final
// maximum load.
func (b *Balancer) PlaceAll(s []uint64) int {
	for _, x := range s {
		b.Place(x)
	}
	return b.MaxLoad()
}

// Loads returns the current per-bucket loads. The slice is live; callers
// must not modify it.
func (b *Balancer) Loads() []int { return b.load }

// Placed returns how many left vertices have been placed so far.
func (b *Balancer) Placed() int { return b.balls }

// MaxLoad returns the current maximum bucket load.
func (b *Balancer) MaxLoad() int {
	m := 0
	for _, l := range b.load {
		if l > m {
			m = l
		}
	}
	return m
}

// AverageLoad returns kn/v, the average load after n placements.
func (b *Balancer) AverageLoad() float64 {
	return float64(b.k*b.balls) / float64(b.g.RightSize())
}

// Histogram returns counts[i] = number of buckets with load exactly i,
// up to and including the maximum load.
func (b *Balancer) Histogram() []int {
	h := make([]int, b.MaxLoad()+1)
	for _, l := range b.load {
		h[l]++
	}
	return h
}

// Lemma3Bound evaluates the max-load bound of Lemma 3 for n placed
// vertices on a (d, ε, δ)-expander with v buckets and k items per vertex:
//
//	(1/(1−ε)) · ⌈kn/((1−δ)v)⌉ + log_{(1−ε)d/k} v.
//
// It requires (1−ε)d > k (otherwise the geometric argument of the lemma
// collapses and the function returns +Inf).
func Lemma3Bound(n, v, d, k int, eps, delta float64) float64 {
	base := (1 - eps) * float64(d) / float64(k)
	if base <= 1 {
		return math.Inf(1)
	}
	mu := math.Ceil(float64(k*n) / ((1 - delta) * float64(v)))
	return mu/(1-eps) + math.Log(float64(v))/math.Log(base)
}

// BoundHolds reports whether the balancer's current maximum load respects
// Lemma3Bound for the given expansion parameters; it is the assertion
// experiment E2-lemma3 checks after every run.
func (b *Balancer) BoundHolds(eps, delta float64) bool {
	bound := Lemma3Bound(b.balls, b.g.RightSize(), b.g.Degree(), b.k, eps, delta)
	return float64(b.MaxLoad()) <= bound
}

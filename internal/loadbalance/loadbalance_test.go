package loadbalance

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pdmdict/internal/expander"
)

func TestPlaceGreedyRule(t *testing.T) {
	// Hand-built graph: vertex 0 → {0,1}, vertex 1 → {1,2}, vertex 2 → {0,2}.
	g := &expander.Table{V: 3, Adj: [][]int{{0, 1}, {1, 2}, {0, 2}}}
	b := New(g, 1)
	if got := b.Place(0); got[0] != 0 { // tie 0/1 breaks low
		t.Errorf("Place(0) = %v, want bucket 0", got)
	}
	if got := b.Place(1); got[0] != 1 { // loads: 0→1, 1→0, 2→0; min of {1,2} is 1? both 0, tie breaks low → 1
		t.Errorf("Place(1) = %v, want bucket 1", got)
	}
	if got := b.Place(2); got[0] != 2 { // loads now 1,1,0; min of {0,2} is 2
		t.Errorf("Place(2) = %v, want bucket 2", got)
	}
	if b.MaxLoad() != 1 {
		t.Errorf("MaxLoad = %d, want 1", b.MaxLoad())
	}
}

func TestPlaceKItems(t *testing.T) {
	g := &expander.Table{V: 4, Adj: [][]int{{0, 1, 2, 3}}}
	b := New(g, 3)
	got := b.Place(0)
	// Greedy with all-zero loads: items spread 0, 1, 2.
	want := []int{0, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("choice %d = %d, want %d", i, got[i], want[i])
		}
	}
	if b.MaxLoad() != 1 {
		t.Errorf("MaxLoad = %d, want 1 (items spread)", b.MaxLoad())
	}
}

func TestKEqualDegreeAllowed(t *testing.T) {
	g := &expander.Table{V: 2, Adj: [][]int{{0, 1}}}
	b := New(g, 2)
	b.Place(0)
	if b.MaxLoad() != 1 {
		t.Errorf("k=d: MaxLoad = %d, want 1", b.MaxLoad())
	}
}

func TestNewPanicsOnBadK(t *testing.T) {
	g := &expander.Table{V: 2, Adj: [][]int{{0, 1}}}
	for _, k := range []int{0, 3, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("k=%d did not panic", k)
				}
			}()
			New(g, k)
		}()
	}
}

func TestCountersAndHistogram(t *testing.T) {
	g := expander.NewFamily(1<<20, 4, 8, 1)
	b := New(g, 2)
	s := expander.SampleSet(g.LeftSize(), 16, rand.New(rand.NewSource(1)))
	b.PlaceAll(s)
	if b.Placed() != 16 {
		t.Errorf("Placed = %d, want 16", b.Placed())
	}
	if got, want := b.AverageLoad(), float64(2*16)/32; got != want {
		t.Errorf("AverageLoad = %v, want %v", got, want)
	}
	h := b.Histogram()
	total, items := 0, 0
	for l, c := range h {
		total += c
		items += l * c
	}
	if total != g.RightSize() {
		t.Errorf("histogram covers %d buckets, want %d", total, g.RightSize())
	}
	if items != 32 {
		t.Errorf("histogram counts %d items, want 32", items)
	}
}

func TestDeterministicReplay(t *testing.T) {
	g := expander.NewFamily(1<<30, 8, 256, 42)
	s := expander.SampleSet(g.LeftSize(), 500, rand.New(rand.NewSource(7)))
	b1, b2 := New(g, 1), New(g, 1)
	for _, x := range s {
		c1, c2 := b1.Place(x), b2.Place(x)
		if c1[0] != c2[0] {
			t.Fatalf("non-deterministic placement for x=%d", x)
		}
	}
}

func TestLemma3BoundValues(t *testing.T) {
	// (1-ε)d/k ≤ 1 ⇒ +Inf.
	if got := Lemma3Bound(100, 100, 2, 2, 0.1, 0.1); !math.IsInf(got, 1) {
		t.Errorf("degenerate bound = %v, want +Inf", got)
	}
	// Sanity: bound is at least the average load.
	n, v, d, k := 10000, 1000, 16, 1
	bound := Lemma3Bound(n, v, d, k, 0.25, 0.5)
	if bound < float64(k*n)/float64(v) {
		t.Errorf("bound %v below average load", bound)
	}
	// Bound grows with n.
	if Lemma3Bound(2*n, v, d, k, 0.25, 0.5) <= bound {
		t.Error("bound not monotone in n")
	}
}

func TestMaxLoadNearAverageOnExpanderFamily(t *testing.T) {
	// The heart of Lemma 3: on a good graph the max load is the average
	// plus a logarithmic additive term — far below the naive n.
	g := expander.NewFamily(1<<40, 16, 1024, 3)
	v := g.RightSize()
	n := 8 * v // heavily loaded case: average load 8 with k=1
	s := expander.SampleSet(g.LeftSize(), n, rand.New(rand.NewSource(2)))
	b := New(g, 1)
	max := b.PlaceAll(s)
	avg := b.AverageLoad()
	if float64(max) > avg+math.Log2(float64(v)) {
		t.Errorf("max load %d exceeds average %.1f + log2(v)=%.1f", max, avg, math.Log2(float64(v)))
	}
	if !b.BoundHolds(0.25, 0.5) {
		t.Errorf("Lemma 3 bound violated: max=%d bound=%.1f", max,
			Lemma3Bound(n, v, 16, 1, 0.25, 0.5))
	}
}

func TestGreedyBeatsSingleChoice(t *testing.T) {
	// d-choice greedy must have max load well below the degree-1
	// (single-choice) process on the same workload.
	u := uint64(1 << 40)
	v := 2048
	n := 4 * v
	s := expander.SampleSet(u, n, rand.New(rand.NewSource(4)))

	multi := New(expander.NewFamily(u, 8, v/8, 5), 1)
	single := New(expander.NewUnstriped(u, 1, v, 5), 1)
	maxMulti := multi.PlaceAll(s)
	maxSingle := single.PlaceAll(s)
	if maxMulti >= maxSingle {
		t.Errorf("greedy d-choice max %d not below single-choice max %d", maxMulti, maxSingle)
	}
}

// Property: total load always equals k times the number of placements,
// and every item lands on a neighbor of its vertex.
func TestPropertyLoadConservationAndLocality(t *testing.T) {
	g := expander.NewFamily(1<<16, 5, 32, 9)
	f := func(raw []uint16, kRaw uint8) bool {
		k := int(kRaw)%g.Degree() + 1
		b := New(g, k)
		for _, r := range raw {
			x := uint64(r)
			choices := b.Place(x)
			ns := expander.NeighborSet(g, x)
			ok := func(c int) bool {
				for _, y := range ns {
					if y == c {
						return true
					}
				}
				return false
			}
			for _, c := range choices {
				if !ok(c) {
					return false
				}
			}
		}
		total := 0
		for _, l := range b.Loads() {
			total += l
		}
		return total == k*len(raw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

package heal

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"pdmdict/internal/core"
	"pdmdict/internal/fault"
	"pdmdict/internal/pdm"
)

// TestChaosSoak is the self-healing soak property: a generated chaos
// schedule rotates fail/heal outages and bit flips across the disks
// while 8 clients hammer degraded lookups and the supervisor heals in
// the background, unaided. Run with -race. The properties checked:
//
//  1. Every preloaded key answers correctly at every moment — outages,
//     corruption, and repair included. Replicas plus the retry policy
//     make "unavailable" unreachable for K−1 simultaneous failures.
//  2. The cost ledger stays exact under concurrency: the machine's
//     counters for the soak window equal the clients' token charges
//     plus the supervisor's episode charges. Recovery is attributed,
//     not smeared.
//  3. The supervisor converges: after the last scheduled event, all
//     disks return to Healthy with no outside help, and a final scrub
//     finds nothing.
func TestChaosSoak(t *testing.T) {
	shapes := []struct {
		name    string
		d, b, k int
	}{
		{"d6b64k2", 6, 64, 2},
		{"d8b64k3", 8, 64, 3},
		{"d4b32k2", 4, 32, 2},
	}
	for _, shape := range shapes {
		for _, seed := range []uint64{1, 2, 3} {
			t.Run(fmt.Sprintf("%s/seed%d", shape.name, seed), func(t *testing.T) {
				soak(t, shape.d, shape.b, shape.k, seed)
			})
		}
	}
}

func soak(t *testing.T, d, b, k int, seed uint64) {
	const n, clients = 240, 8
	m := pdm.NewMachine(pdm.Config{D: d, B: b})
	// The soak runs a constant transient drizzle; with the default 3-in-256
	// promotion every disk would sit perpetually Suspect and the schedule's
	// AwaitHealthy gates could never open. Promotion here needs a burst no
	// drizzle can produce, so Suspect stays reserved for real damage.
	m.SetSuspectThresholds(500, 64)
	bd, err := core.NewBasic(m, core.BasicConfig{
		Capacity: n, SatWords: 3, K: k, Replicate: true, Seed: seed,
	})
	if err != nil {
		t.Fatalf("NewBasic: %v", err)
	}
	key := func(i int) pdm.Word { return pdm.Word(i)*2654435761 + 1 }
	for i := 0; i < n; i++ {
		if err := bd.Insert(key(i), []pdm.Word{pdm.Word(i), key(i), key(i) ^ 0xabc}); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	// A policy deep enough that a key is effectively never unavailable
	// while any replica lives, with backoff and hedging exercised.
	bd.SetRetryPolicy(pdm.RetryPolicy{MaxRetries: 6, BackoffBase: 2, BackoffFactor: 2, Hedge: true})

	plan := fault.NewPlan(seed)
	plan.SetTransient(0.05)
	plan.SetStall(0.02, 2)
	schedule := fault.NewSchedule(plan, fault.GenerateSchedule(seed, fault.ChaosProfile{
		Disks:        d,
		Blocks:       bd.BlocksPerDisk(),
		Rounds:       4,
		Gap:          300,
		CorruptEvery: 3,
	}))
	schedule.BindMachine(m)

	base := m.Stats()
	m.SetFaultInjector(schedule)

	sup := New(m, bd, Config{ChunkRows: 4, MaxAttempts: 8})
	sup.Start()

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Patrol scrubber: a slow background sweep over healthy disks, the
	// detector for silent damage on blocks client traffic never touches.
	// Its I/O is charged to its own tokens so the attribution sum stays
	// exact.
	var patrolOps []*pdm.Op
	wg.Add(1)
	go func() {
		defer wg.Done()
		row := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			op := m.NewOp(clients, 1)
			patrolOps = append(patrolOps, op)
			wrapped := false
			for disk := 0; disk < d; disk++ {
				if m.DiskState(disk) != pdm.Healthy {
					continue // outages are the supervisor's problem
				}
				if _, _, done := bd.ScrubRange(op, disk, row, 2); done {
					wrapped = true
				}
			}
			row += 2
			if wrapped || row > 1<<16 {
				row = 0
			}
		}
	}()

	ops := make([][]*pdm.Op, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			i := c
			for {
				select {
				case <-stop:
					return
				default:
				}
				op := m.NewOp(c, 1)
				ops[c] = append(ops[c], op)
				sat, ok, err := bd.LookupTryOp(op, key(i%n))
				if err != nil || !ok || sat[1] != key(i%n) {
					t.Errorf("client %d: key %d unavailable mid-soak: ok=%v err=%v", c, i%n, ok, err)
					return
				}
				i += 5
			}
		}(c)
	}

	drained := func() bool {
		if !(schedule.Done() && m.AllDisksHealthy() && sup.Idle()) {
			return false
		}
		// A flip in the final round must not hide behind a healthy array.
		for _, e := range schedule.Events() {
			if e.Action == fault.ChaosCorrupt && !m.BlockClean(e.Addr) {
				return false
			}
		}
		return true
	}
	deadline := time.Now().Add(30 * time.Second)
	for !drained() {
		if time.Now().After(deadline) {
			t.Fatalf("soak stuck: applied %d/%d events, health %+v, sup idle=%v",
				schedule.Applied(), len(schedule.Events()), m.Health().Unhealthy(), sup.Idle())
		}
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()
	sup.Stop()
	if t.Failed() {
		return
	}

	// Property 2: exact attribution. Every parallel-I/O step, block read,
	// and block write of the soak window belongs to a client token or a
	// supervisor episode token.
	delta := m.Stats().Sub(base)
	var steps, reads, writes int64
	for c := range ops {
		for _, op := range ops[c] {
			steps += op.Steps()
			reads += op.Reads()
			writes += op.Writes()
		}
	}
	for _, op := range patrolOps {
		steps += op.Steps()
		reads += op.Reads()
		writes += op.Writes()
	}
	repairOps := sup.Ops()
	for _, op := range repairOps {
		steps += op.Steps()
		reads += op.Reads()
		writes += op.Writes()
	}
	if steps != delta.ParallelIOs {
		t.Errorf("Σ attributed steps = %d, machine = %d (unattributed recovery I/O)", steps, delta.ParallelIOs)
	}
	if reads != delta.BlockReads || writes != delta.BlockWrites {
		t.Errorf("Σ attributed transfers = %d+%d, machine = %d+%d",
			reads, writes, delta.BlockReads, delta.BlockWrites)
	}
	if len(repairOps) == 0 {
		t.Error("supervisor minted no repair episodes during the soak")
	}
	rep := m.Health()
	if rep.RepairChunks == 0 || rep.RepairRows == 0 {
		t.Errorf("no chunked recovery recorded: %+v", rep)
	}

	// Property 3: converged and verifiably clean.
	if bad := bd.Scrub(); len(bad) != 0 {
		t.Fatalf("post-soak scrub found %d bad blocks: %v", len(bad), bad)
	}
	for i := 0; i < n; i++ {
		sat, ok, err := bd.LookupTry(key(i))
		if err != nil || !ok || sat[1] != key(i) {
			t.Fatalf("key %d after soak: ok=%v err=%v", i, ok, err)
		}
	}
}

// Package heal runs the background repair supervisor: a goroutine that
// watches the machine's per-disk health state machine (pdm.Health) and
// drives incremental repair and verification scrubs in bounded chunks,
// interleaved with live traffic.
//
// The supervisor is deliberately clockless: it sleeps on the machine's
// health notification (pdm.Machine.SetHealthNotify) and paces itself by
// chunks of work, never by wall time, so a single-threaded run with a
// scripted fault schedule heals at deterministic step positions. All
// repair I/O is attributed to a per-episode operation token (client
// heal.RepairClient), so recovery cost shows up as its own rows in the
// machine's op accounting rather than polluting client operations.
//
// Per-disk episode lifecycle:
//
//	Failed (reachable)  → MarkRepairing, start an incremental RepairJob
//	Repairing           → Step the job one chunk at a time; an errored
//	                      chunk is retried (the job resumes from its
//	                      cursor) up to MaxAttempts, then the disk is
//	                      demoted back to Failed and the episode parks
//	repair done         → chunked verification scrub of the stripe
//	scrub found damage  → start another RepairJob (same attempt budget)
//	scrub clean         → MarkHealthy: the disk rejoins the array
//	Suspect             → MarkRepairing, verification scrub only; damage
//	                      escalates to a RepairJob, a clean pass clears
//	                      the suspicion
package heal

import (
	"sync"

	"pdmdict/internal/core"
	"pdmdict/internal/pdm"
)

// RepairClient is the client ID repair episodes charge their I/O to —
// negative so it can never collide with a real client.
const RepairClient = -1

// Target is the dictionary surface the supervisor drives. *core.BasicDict
// implements it (in Replicate mode).
type Target interface {
	StartRepair(disk int) (*core.RepairJob, error)
	ScrubRange(op *pdm.Op, disk, row, nRows int) (bad []pdm.Addr, next int, done bool)
}

// Config shapes a Supervisor.
type Config struct {
	// ChunkRows is how many bucket rows one repair or scrub chunk covers
	// before releasing the dictionary's lock. 0 defaults to 4.
	ChunkRows int
	// MaxAttempts bounds how many times one episode restarts or resumes a
	// failing repair before parking the disk as Failed. 0 defaults to 3.
	MaxAttempts int
}

func (c *Config) normalize() {
	if c.ChunkRows <= 0 {
		c.ChunkRows = 4
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
}

// episode is one disk's in-progress recovery.
type episode struct {
	op        *pdm.Op
	job       *core.RepairJob
	scrubRow  int
	scrubbing bool
	dirty     bool // verification scrub found bad blocks
	attempts  int
	parked    bool
}

// Supervisor watches one machine and repairs one dictionary. Create
// with New, start the background loop with Start (or drive it
// synchronously with Tick in tests), and stop with Stop.
type Supervisor struct {
	m    *pdm.Machine
	dict Target
	cfg  Config

	mu       sync.Mutex
	episodes map[int]*episode // guarded by mu
	minted   []*pdm.Op        // guarded by mu; every episode token ever minted, for cost audits

	wake chan struct{}
	stop chan struct{}
	done chan struct{}
	once sync.Once
}

// New creates a supervisor for dict on m. It does not start anything.
func New(m *pdm.Machine, dict Target, cfg Config) *Supervisor {
	cfg.normalize()
	return &Supervisor{
		m:        m,
		dict:     dict,
		cfg:      cfg,
		episodes: make(map[int]*episode),
		wake:     make(chan struct{}, 1),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// Start installs the health notification hook and launches the
// background loop. The loop drains all pending work (Tick until idle),
// then sleeps until the machine reports a health transition.
func (s *Supervisor) Start() {
	s.m.SetHealthNotify(func() {
		select {
		case s.wake <- struct{}{}:
		default:
		}
	})
	go s.run()
}

// Stop halts the background loop and removes the notification hook. It
// blocks until the loop has exited; in-progress repair jobs are left
// registered (a new supervisor can resume the disks from their health
// states).
func (s *Supervisor) Stop() {
	s.once.Do(func() { close(s.stop) })
	<-s.done
	s.m.SetHealthNotify(nil)
}

// Wake nudges the background loop to re-examine disk health without
// waiting for a machine health notification — the hook an AlertListener
// calls when a degraded-capacity alert fires. It is a non-blocking
// buffered-channel send (lock-free), safe from any goroutine, including
// inside a hook dispatch.
func (s *Supervisor) Wake() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

func (s *Supervisor) run() {
	defer close(s.done)
	for {
		for s.Tick() {
			select {
			case <-s.stop:
				return
			default:
			}
		}
		select {
		case <-s.wake:
		case <-s.stop:
			return
		}
	}
}

// Tick runs one chunk of recovery work for every disk that needs it and
// reports whether any work was done. Tests drive it synchronously for
// deterministic step-by-step assertions; the background loop calls it
// until it goes idle.
func (s *Supervisor) Tick() bool {
	rep := s.m.Health()
	worked := false
	for _, dh := range rep.Disks {
		if s.tickDisk(dh) {
			worked = true
		}
	}
	return worked
}

// tickDisk advances one disk's episode by at most one chunk.
func (s *Supervisor) tickDisk(dh pdm.DiskHealth) bool {
	s.mu.Lock()
	ep := s.episodes[dh.Disk]
	s.mu.Unlock()

	switch dh.State {
	case pdm.Healthy:
		// Nothing to do; drop any stale episode (external ClearDegraded).
		if ep != nil {
			s.clear(dh.Disk, ep)
		}
		return false
	case pdm.Failed:
		if ep != nil && ep.parked {
			return false // out of attempts; waiting for outside help
		}
		if !dh.Reachable {
			return false // drive not answering yet; traffic will tell us
		}
		if !s.m.MarkRepairing(dh.Disk) {
			return false
		}
		return s.beginEpisode(dh.Disk, ep, true)
	case pdm.Suspect:
		if ep != nil && ep.parked {
			return false
		}
		if !s.m.MarkRepairing(dh.Disk) {
			return false
		}
		// Suspicion is verified, not rebuilt: scrub first, repair only if
		// the scrub finds damage.
		return s.beginEpisode(dh.Disk, ep, false)
	case pdm.Repairing:
		if ep == nil {
			// Claimed by someone else (or a previous supervisor); adopt it
			// as a fresh verification episode.
			return s.beginEpisode(dh.Disk, nil, true)
		}
		return s.advance(dh.Disk, ep)
	}
	return false
}

// beginEpisode creates (or refreshes) a disk's episode after claiming
// it. withRepair starts a rebuild immediately; otherwise the episode
// opens with the verification scrub.
func (s *Supervisor) beginEpisode(disk int, prev *episode, withRepair bool) bool {
	ep := prev
	if ep == nil {
		ep = &episode{op: s.m.NewOp(RepairClient, 0)}
		s.mu.Lock()
		s.episodes[disk] = ep
		s.minted = append(s.minted, ep.op)
		s.mu.Unlock()
	} else if ep.job != nil {
		// The disk re-failed mid-repair: the collected snapshot may be
		// stale, so restart from scratch — against the attempt budget.
		ep.job.Close()
		ep.job = nil
		ep.attempts++
		if ep.attempts >= s.cfg.MaxAttempts {
			ep.parked = true
			s.m.MarkFailed(disk)
			return true
		}
	}
	ep.scrubbing = !withRepair
	ep.scrubRow = 0
	ep.dirty = false
	if withRepair {
		job, err := s.dict.StartRepair(disk)
		if err != nil {
			// Another disk's job holds the slot; give it back and retry on
			// a later tick.
			s.m.MarkFailed(disk)
			return false
		}
		ep.job = job
	}
	return s.advance(disk, ep)
}

// advance runs one chunk of the episode's current stage.
func (s *Supervisor) advance(disk int, ep *episode) bool {
	if ep.job != nil {
		done, err := ep.job.Step(ep.op, s.cfg.ChunkRows)
		if err != nil {
			ep.attempts++
			if ep.attempts >= s.cfg.MaxAttempts {
				ep.job.Close()
				ep.job = nil
				ep.parked = true
				s.m.MarkFailed(disk)
			}
			// Otherwise keep the job: its cursor did not advance past the
			// failing row, so the next tick resumes right there.
			return true
		}
		if done {
			ep.job = nil
			ep.scrubbing = true
			ep.scrubRow = 0
			ep.dirty = false
		}
		return true
	}
	if !ep.scrubbing {
		return false
	}
	bad, next, done := s.dict.ScrubRange(ep.op, disk, ep.scrubRow, s.cfg.ChunkRows)
	ep.scrubRow = next
	if len(bad) > 0 {
		ep.dirty = true
	}
	if !done {
		return true
	}
	if ep.dirty {
		// Verification failed: the stripe needs a rebuild after all.
		ep.attempts++
		if ep.attempts >= s.cfg.MaxAttempts {
			ep.parked = true
			s.m.MarkFailed(disk)
			return true
		}
		job, err := s.dict.StartRepair(disk)
		if err != nil {
			s.m.MarkFailed(disk)
			return true
		}
		ep.job = job
		ep.scrubbing = false
		return true
	}
	// Clean full pass: the disk rejoins the array.
	s.m.MarkHealthy(disk)
	s.clear(disk, ep)
	return true
}

// clear forgets a disk's episode.
func (s *Supervisor) clear(disk int, ep *episode) {
	if ep.job != nil {
		ep.job.Close()
		ep.job = nil
	}
	s.mu.Lock()
	delete(s.episodes, disk)
	s.mu.Unlock()
}

// Idle reports whether the supervisor currently tracks no episodes.
func (s *Supervisor) Idle() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.episodes) == 0
}

// Ops returns every operation token the supervisor has minted, one per
// repair episode — the audit trail that lets a soak harness prove the
// machine's totals are exactly the clients' charges plus the
// supervisor's (nothing unattributed, nothing double-counted).
func (s *Supervisor) Ops() []*pdm.Op {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*pdm.Op(nil), s.minted...)
}

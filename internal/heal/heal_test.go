package heal

import (
	"sync"
	"testing"
	"time"

	"pdmdict/internal/core"
	"pdmdict/internal/fault"
	"pdmdict/internal/pdm"
)

func buildReplicated(t *testing.T, d, b, n, k int) (*pdm.Machine, *core.BasicDict) {
	t.Helper()
	m := pdm.NewMachine(pdm.Config{D: d, B: b})
	bd, err := core.NewBasic(m, core.BasicConfig{Capacity: n, SatWords: 3, K: k, Replicate: true, Seed: 7})
	if err != nil {
		t.Fatalf("NewBasic: %v", err)
	}
	for i := 0; i < n; i++ {
		key := pdm.Word(i)*2654435761 + 1
		if err := bd.Insert(key, []pdm.Word{pdm.Word(i), key, key ^ 0xabc}); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	return m, bd
}

func checkAll(t *testing.T, bd *core.BasicDict, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		key := pdm.Word(i)*2654435761 + 1
		sat, ok, err := bd.LookupTry(key)
		if err != nil || !ok || sat[1] != key {
			t.Fatalf("key %d: ok=%v err=%v sat=%v", i, ok, err, sat)
		}
	}
}

func snapshotDisk(m *pdm.Machine, disk, blocks int) [][]pdm.Word {
	out := make([][]pdm.Word, blocks)
	for b := 0; b < blocks; b++ {
		out[b] = m.Peek(pdm.Addr{Disk: disk, Block: b})
	}
	return out
}

// A wiped, repairer-marked disk is rebuilt bit-identically by driving
// Tick until the supervisor goes idle — no goroutine, fully
// deterministic.
func TestTickRepairsWipedDiskBitIdentical(t *testing.T) {
	const d, b, n, disk = 6, 64, 250, 2
	m, bd := buildReplicated(t, d, b, n, 2)
	blocks := bd.BlocksPerDisk()
	before := snapshotDisk(m, disk, blocks)
	m.WipeDisk(disk)
	m.MarkFailed(disk) // reachable: the supervisor may start immediately

	s := New(m, bd, Config{ChunkRows: 3})
	steps := 0
	for s.Tick() {
		if steps++; steps > 10_000 {
			t.Fatal("supervisor did not converge")
		}
	}
	if got := m.DiskState(disk); got != pdm.Healthy {
		t.Fatalf("disk state after repair = %v", got)
	}
	if !s.Idle() {
		t.Fatal("supervisor retains an episode after healing")
	}
	after := snapshotDisk(m, disk, blocks)
	for i := range before {
		if len(before[i]) != len(after[i]) {
			t.Fatalf("block %d: length %d != %d", i, len(after[i]), len(before[i]))
		}
		for j := range before[i] {
			if before[i][j] != after[i][j] {
				t.Fatalf("block %d word %d differs after repair", i, j)
			}
		}
	}
	checkAll(t, bd, n)
}

// An unreachable failed disk is left alone; reachability (a successful
// access observed by traffic) releases the repair.
func TestTickWaitsForReachability(t *testing.T) {
	const d, b, n, disk = 4, 64, 120, 1
	m, bd := buildReplicated(t, d, b, n, 2)
	plan := fault.NewPlan(3)
	m.SetFaultInjector(plan)
	plan.FailDisk(disk)
	// Traffic observes the fail-stop: Failed, unreachable.
	for i := 0; i < n && m.DiskState(disk) != pdm.Failed; i++ {
		key := pdm.Word(i)*2654435761 + 1
		//lint:pdm-allow batcherr: error path is the point
		bd.LookupTry(key)
	}
	if m.DiskState(disk) != pdm.Failed {
		t.Fatal("fail-stop not observed")
	}
	s := New(m, bd, Config{})
	if s.Tick() {
		t.Fatal("supervisor acted on an unreachable disk")
	}
	// The drive comes back; the next access that touches it proves it.
	plan.HealDisk(disk)
	for i := 0; i < n; i++ {
		key := pdm.Word(i)*2654435761 + 1
		//lint:pdm-allow batcherr: recovery probe
		bd.LookupTry(key)
	}
	rep := m.Health()
	if !rep.Disks[disk].Reachable {
		t.Fatal("reachability not recorded")
	}
	for s.Tick() {
	}
	if got := m.DiskState(disk); got != pdm.Healthy {
		t.Fatalf("disk state = %v after recovery", got)
	}
	checkAll(t, bd, n)
}

// Updates that land while a repair is mid-flight must be honored by the
// rebuilt stripe: no resurrected deletes, no clobbered inserts.
func TestRepairUnderUpdates(t *testing.T) {
	const d, b, n, disk = 6, 64, 200, 3
	m, bd := buildReplicated(t, d, b, n, 2)
	m.WipeDisk(disk)
	m.MarkFailed(disk)

	s := New(m, bd, Config{ChunkRows: 1}) // smallest chunks: max interleaving
	key := func(i int) pdm.Word { return pdm.Word(i)*2654435761 + 1 }
	deleted := map[int]bool{}
	inserted := []pdm.Word{}
	i := 0
	steps := 0
	for s.Tick() {
		if steps++; steps > 100_000 {
			t.Fatal("supervisor did not converge")
		}
		// Interleave one delete and one insert between every chunk.
		if i < n/2 {
			if !bd.Delete(key(i)) {
				t.Fatalf("delete %d: not present", i)
			}
			deleted[i] = true
			nk := pdm.Word(0x10_0000 + i)
			if err := bd.Insert(nk, []pdm.Word{nk, nk ^ 1, nk ^ 2}); err != nil {
				t.Fatalf("insert %v: %v", nk, err)
			}
			inserted = append(inserted, nk)
			i++
		}
	}
	if got := m.DiskState(disk); got != pdm.Healthy {
		t.Fatalf("disk state = %v", got)
	}
	for j := 0; j < n; j++ {
		sat, ok := bd.Lookup(key(j))
		if deleted[j] {
			if ok {
				t.Fatalf("deleted key %d resurrected by repair", j)
			}
			continue
		}
		if !ok || sat[1] != key(j) {
			t.Fatalf("surviving key %d: ok=%v sat=%v", j, ok, sat)
		}
	}
	for _, nk := range inserted {
		sat, ok := bd.Lookup(nk)
		if !ok || sat[0] != nk {
			t.Fatalf("inserted key %v lost: ok=%v sat=%v", nk, ok, sat)
		}
	}
	if bad := bd.Scrub(); len(bad) != 0 {
		t.Fatalf("post-repair scrub found %d bad blocks", len(bad))
	}
}

// A repair that keeps failing (its survivors are unreadable) parks the
// episode after MaxAttempts and demotes the disk back to Failed.
func TestRepairParksAfterMaxAttempts(t *testing.T) {
	const d, b, n = 4, 64, 120
	m, bd := buildReplicated(t, d, b, n, 2)
	plan := fault.NewPlan(5)
	m.SetFaultInjector(plan)
	m.WipeDisk(2)
	m.MarkFailed(2)
	plan.FailDisk(1) // a survivor is down: collect chunks cannot finish

	s := New(m, bd, Config{ChunkRows: 2, MaxAttempts: 3})
	steps := 0
	for s.Tick() {
		if steps++; steps > 10_000 {
			t.Fatal("supervisor did not park")
		}
	}
	if got := m.DiskState(2); got != pdm.Failed {
		t.Fatalf("disk state = %v, want parked Failed", got)
	}
	// Ticking again does nothing: the episode is parked.
	if s.Tick() {
		t.Fatal("parked episode still working")
	}
	rep := m.Health()
	if rep.RepairChunks == 0 {
		t.Fatal("no repair chunks recorded")
	}
}

// A Suspect disk is verified by scrub only: with no actual damage it
// returns to Healthy without a rebuild.
func TestSuspectVerifiedByScrub(t *testing.T) {
	const d, b, n = 4, 64, 120
	m, bd := buildReplicated(t, d, b, n, 2)
	m.SetSuspectThresholds(1, 1<<20)
	plan := fault.NewPlan(9)
	m.SetFaultInjector(plan)
	plan.SetTransient(1)
	//lint:pdm-allow batcherr: transient burst is the point
	bd.LookupTry(pdm.Word(1)*2654435761 + 1)
	plan.SetTransient(0)
	suspects := 0
	for disk := 0; disk < d; disk++ {
		if m.DiskState(disk) == pdm.Suspect {
			suspects++
		}
	}
	if suspects == 0 {
		t.Fatal("transient burst raised no suspicion")
	}
	s := New(m, bd, Config{ChunkRows: 4})
	for s.Tick() {
	}
	if !m.AllDisksHealthy() {
		t.Fatalf("suspect disks not cleared: %+v", m.Health().Unhealthy())
	}
	if m.Health().RepairRows == 0 {
		t.Fatal("verification scrub not accounted as repair rows")
	}
}

// The notification-driven background loop heals a fail/heal episode
// under concurrent client traffic, with nothing but health transitions
// to wake it.
func TestSupervisorBackgroundHealsUnderTraffic(t *testing.T) {
	const d, b, n, disk = 6, 64, 200, 4
	m, bd := buildReplicated(t, d, b, n, 2)
	plan := fault.NewPlan(11)
	m.SetFaultInjector(plan)

	s := New(m, bd, Config{ChunkRows: 2})
	s.Start()
	defer s.Stop()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			i := c
			for {
				select {
				case <-stop:
					return
				default:
				}
				key := pdm.Word(i%n)*2654435761 + 1
				sat, ok, err := bd.LookupTry(key)
				if err == nil && ok && sat[1] != key {
					t.Errorf("client %d: wrong satellite for key %d", c, i%n)
					return
				}
				i += 7
			}
		}(c)
	}

	plan.FailDisk(disk)
	waitFor(t, "failure observed", func() bool { return m.DiskState(disk) != pdm.Healthy })
	plan.HealDisk(disk)
	waitFor(t, "disk healed", func() bool { return m.AllDisksHealthy() })
	close(stop)
	wg.Wait()
	checkAll(t, bd, n)
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

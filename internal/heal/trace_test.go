package heal

import (
	"bytes"
	"strings"
	"testing"

	"pdmdict/internal/core"
	"pdmdict/internal/fault"
	"pdmdict/internal/obs"
	"pdmdict/internal/pdm"
)

// The whole self-healing stack is deterministic when driven from one
// goroutine: a scripted chaos schedule, the retry/hedge policy, the
// patrol scrub, and a Tick-driven supervisor replayed against the same
// seed produce byte-identical JSONL traces — fault events, backoff
// charges, and repair I/O included. This is the property that makes a
// chaos failure reproducible from its seed alone.
func TestChaosTraceDeterministic(t *testing.T) {
	run := func() string {
		var buf bytes.Buffer
		w := obs.NewJSONLWriter(&buf)
		m := pdm.NewMachine(pdm.Config{D: 6, B: 32})
		m.SetHook(w)
		m.SetSuspectThresholds(500, 64) // drizzle must not churn Suspect (see soak)
		bd, err := core.NewBasic(m, core.BasicConfig{
			Capacity: 150, SatWords: 1, K: 2, Replicate: true, Seed: 9,
		})
		if err != nil {
			t.Fatal(err)
		}
		key := func(i int) pdm.Word { return pdm.Word(i)*2654435761 + 1 }
		for i := 0; i < 150; i++ {
			if err := bd.Insert(key(i), []pdm.Word{key(i)}); err != nil {
				t.Fatal(err)
			}
		}
		bd.SetRetryPolicy(pdm.RetryPolicy{MaxRetries: 4, BackoffBase: 2, BackoffFactor: 2, Hedge: true})

		plan := fault.NewPlan(21)
		plan.SetTransient(0.05)
		plan.SetStall(0.03, 2)
		schedule := fault.NewSchedule(plan, fault.GenerateSchedule(21, fault.ChaosProfile{
			Disks:        6,
			Blocks:       bd.BlocksPerDisk(),
			Rounds:       3,
			Gap:          200,
			CorruptEvery: 3,
		}))
		schedule.BindMachine(m)
		m.SetFaultInjector(schedule)

		sup := New(m, bd, Config{ChunkRows: 2, MaxAttempts: 8})
		// Drained means more than "all events fired": every scripted
		// corruption must verify clean again, or a flip in the final round
		// would leave latent damage behind a healthy-looking array.
		drained := func() bool {
			if !(schedule.Done() && m.AllDisksHealthy() && sup.Idle()) {
				return false
			}
			for _, e := range schedule.Events() {
				if e.Action == fault.ChaosCorrupt && !m.BlockClean(e.Addr) {
					return false
				}
			}
			return true
		}
		row := 0
		for i := 0; !drained(); i++ {
			if i > 200000 {
				t.Fatalf("chaos run did not converge: applied %d/%d, health %+v",
					schedule.Applied(), len(schedule.Events()), m.Health().Unhealthy())
			}
			op := m.NewOp(0, 1)
			if _, ok, err := bd.LookupTryOp(op, key(i%150)); err != nil || !ok {
				t.Fatalf("lookup %d: ok=%v err=%v", i, ok, err)
			}
			// Patrol scrub, one small chunk per iteration: the detector for
			// scripted corruption on blocks the workload never reads.
			wrapped := false
			for disk := 0; disk < 6; disk++ {
				if m.DiskState(disk) != pdm.Healthy {
					continue
				}
				if _, _, done := bd.ScrubRange(op, disk, row, 1); done {
					wrapped = true
				}
			}
			if row++; wrapped {
				row = 0
			}
			for sup.Tick() {
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	t1, t2 := run(), run()
	if t1 != t2 {
		t.Fatal("identical seed+schedule produced different chaos traces")
	}
	for _, tag := range []string{`"tag":"fault.failstop"`, `"tag":"fault.checksum"`, `"tag":"repair"`} {
		if !strings.Contains(t1, tag) {
			t.Errorf("chaos trace lacks %s events", tag)
		}
	}
}

package sched

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"pdmdict/internal/pdm"
)

// gatedBackend wraps memBackend with a gate: InsertOp blocks until the
// gate opens, simulating a slow disk so writes pile up behind an
// in-flight flush.
type gatedBackend struct {
	*memBackend
	gate    chan struct{} // receive to proceed
	blocked atomic.Int64
}

func newGatedBackend() *gatedBackend {
	return &gatedBackend{memBackend: newMemBackend(), gate: make(chan struct{})}
}

func (b *gatedBackend) InsertOp(op *pdm.Op, x pdm.Word, sat []pdm.Word) error {
	b.blocked.Add(1)
	<-b.gate
	b.blocked.Add(-1)
	return b.memBackend.InsertOp(op, x, sat)
}

func TestBackpressureBound(t *testing.T) {
	const depth = 4
	be := newGatedBackend()
	s := New(be, Config{MaxBatch: 1, QueueDepth: depth})

	// First write closes its window immediately (MaxBatch 1) and blocks
	// inside the gated backend: the scheduler is now mid-dispatch.
	first := make(chan error, 1)
	go func() { first <- s.InsertOp(nil, 1, []pdm.Word{1}) }()
	for be.blocked.Load() == 0 {
		runtime.Gosched() // until the dispatcher is inside the backend
	}

	// Fill the queue while the flush is stuck, then overfill it: the
	// queue must cap at depth and the excess must bounce.
	done := make(chan error, depth)
	for i := 0; i < depth; i++ {
		k := pdm.Word(10 + i)
		go func() { done <- s.InsertOp(nil, k, []pdm.Word{2}) }()
	}
	for {
		s.mu.Lock()
		n := len(s.writes)
		s.mu.Unlock()
		if n == depth {
			break
		}
		runtime.Gosched()
	}
	var overloaded int
	for i := 0; i < 3; i++ {
		if err := s.InsertOp(nil, pdm.Word(100+i), []pdm.Word{3}); errors.Is(err, ErrOverloaded) {
			overloaded++
		} else if err != nil {
			t.Fatalf("unexpected error: %v", err)
		}
	}
	if overloaded != 3 {
		t.Fatalf("%d of 3 over-depth writes bounced, want all", overloaded)
	}

	// Release the backend: everything queued must drain.
	close(be.gate)
	if err := <-first; err != nil {
		t.Fatalf("first write: %v", err)
	}
	for i := 0; i < depth; i++ {
		if err := <-done; err != nil {
			t.Fatalf("queued write: %v", err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	snap := s.Snapshot()
	if snap.QueuePeak > depth {
		t.Fatalf("queue peak %d exceeds configured depth %d", snap.QueuePeak, depth)
	}
	if snap.Overloads != 3 {
		t.Fatalf("overloads %d, want 3", snap.Overloads)
	}
}

func TestBackpressureBlocking(t *testing.T) {
	const depth = 2
	be := newGatedBackend()
	s := New(be, Config{MaxBatch: 1, QueueDepth: depth, Block: true})

	first := make(chan error, 1)
	go func() { first <- s.InsertOp(nil, 1, []pdm.Word{1}) }()
	for be.blocked.Load() == 0 {
		runtime.Gosched()
	}
	const writers = 8
	done := make(chan error, writers)
	for i := 0; i < writers; i++ {
		k := pdm.Word(10 + i)
		go func() { done <- s.InsertOp(nil, k, []pdm.Word{2}) }()
	}
	close(be.gate)
	if err := <-first; err != nil {
		t.Fatal(err)
	}
	for i := 0; i < writers; i++ {
		if err := <-done; err != nil {
			t.Fatalf("blocking writer got %v, want nil", err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	snap := s.Snapshot()
	if snap.Overloads != 0 {
		t.Fatalf("overloads %d in blocking mode, want 0", snap.Overloads)
	}
	if snap.QueuePeak > depth {
		t.Fatalf("queue peak %d exceeds depth %d", snap.QueuePeak, depth)
	}
	for i := 0; i < writers; i++ {
		if _, ok := be.m[pdm.Word(10+i)]; !ok {
			t.Fatalf("blocked writer %d's insert lost", i)
		}
	}
}

// TestFlushDrainsPartialWindow: a single lookup with MaxBatch 8 would
// wait forever in deterministic mode; Flush from another goroutine
// closes the partial window.
func TestFlushDrainsPartialWindow(t *testing.T) {
	be := newMemBackend()
	be.m[5] = []pdm.Word{50}
	s := New(be, Config{MaxBatch: 8})
	got := make(chan pdm.Word, 1)
	started := make(chan struct{})
	go func() {
		close(started)
		sat, ok, err := s.LookupOp(nil, 5)
		if err != nil || !ok {
			t.Errorf("lookup: ok=%v err=%v", ok, err)
			got <- 0
			return
		}
		got <- sat[0]
	}()
	<-started
	for {
		s.mu.Lock()
		n := len(s.reads)
		s.mu.Unlock()
		if n == 1 {
			break
		}
		runtime.Gosched()
	}
	s.Flush()
	if v := <-got; v != 50 {
		t.Fatalf("flushed lookup returned %d, want 50", v)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestStepBudgetClosesWindow: the deterministic step clock closes a
// partial window once the injected counter advances past the budget.
func TestStepBudgetClosesWindow(t *testing.T) {
	be := newMemBackend()
	be.m[1] = []pdm.Word{10}
	be.m[2] = []pdm.Word{20}
	var clock atomic.Int64
	s := New(be, Config{MaxBatch: 8, StepBudget: 5, Steps: clock.Load})

	// First lookup opens the window at step 0 and waits.
	got := make(chan bool, 1)
	go func() {
		_, ok, _ := s.LookupOp(nil, 1)
		got <- ok
	}()
	for {
		s.mu.Lock()
		n := len(s.reads)
		s.mu.Unlock()
		if n == 1 {
			break
		}
		runtime.Gosched()
	}
	// Advance the clock past the budget; the NEXT admission observes the
	// exhausted budget and dispatches both.
	clock.Store(6)
	if _, ok, err := s.LookupOp(nil, 2); err != nil || !ok {
		t.Fatalf("second lookup: ok=%v err=%v", ok, err)
	}
	if !<-got {
		t.Fatal("first lookup missed")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if snap := s.Snapshot(); snap.Rounds != 1 {
		t.Fatalf("rounds %d, want 1 (both lookups in the budget-closed window)", snap.Rounds)
	}
}

// TestServingModeTimer: an injected AfterFunc closes partial windows.
// The "timer" here is manual — the test fires it by hand, so no wall
// clock is involved.
func TestServingModeTimer(t *testing.T) {
	be := newMemBackend()
	be.m[9] = []pdm.Word{90}
	var mu sync.Mutex
	var pending []func()
	s := New(be, Config{
		MaxBatch: 8,
		AfterFunc: func(fire func()) (stop func()) {
			mu.Lock()
			pending = append(pending, fire)
			mu.Unlock()
			return func() {}
		},
	})
	got := make(chan bool, 1)
	go func() {
		_, ok, _ := s.LookupOp(nil, 9)
		got <- ok
	}()
	for {
		mu.Lock()
		n := len(pending)
		mu.Unlock()
		if n == 1 {
			break
		}
		runtime.Gosched()
	}
	mu.Lock()
	fire := pending[0]
	mu.Unlock()
	fire()
	if !<-got {
		t.Fatal("timer-closed lookup missed")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestMintOpDeterminism: token IDs depend only on (client, per-client
// sequence), never on interleaving.
func TestMintOpDeterminism(t *testing.T) {
	mint := func() map[uint64]bool {
		s := New(newMemBackend(), Config{})
		ids := make(chan uint64, 40)
		var wg sync.WaitGroup
		for c := 0; c < 4; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				for i := 0; i < 10; i++ {
					ids <- s.MintOp(c, 1).ID()
				}
			}(c)
		}
		wg.Wait()
		close(ids)
		set := make(map[uint64]bool)
		for id := range ids {
			if set[id] {
				t.Fatalf("duplicate token id %x", id)
			}
			set[id] = true
		}
		return set
	}
	a, b := mint(), mint()
	if len(a) != 40 || len(b) != 40 {
		t.Fatalf("minted %d and %d ids, want 40", len(a), len(b))
	}
	for id := range a {
		if !b[id] {
			t.Fatalf("id %x minted in run 1 but not run 2", id)
		}
	}
}

// TestClosedScheduler: submissions after Close fail typed.
func TestClosedScheduler(t *testing.T) {
	s := New(newMemBackend(), Config{MaxBatch: 1})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.LookupOp(nil, 1); !errors.Is(err, ErrClosed) {
		t.Fatalf("lookup after close: %v, want ErrClosed", err)
	}
	if err := s.InsertOp(nil, 1, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("insert after close: %v, want ErrClosed", err)
	}
}

package sched

import (
	"bufio"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"sync"

	"pdmdict/internal/pdm"
)

// The intent log is the scheduler's write-ahead redo log: every admitted
// mutation is encoded as one checksummed record, buffered, and flushed
// to the underlying writer by the group commit — one flush per flush
// group, which is what amortizes the sync cost across concurrent
// writers. Callers are not acknowledged until their group's commit
// marker has been flushed, so a crash can only lose writes that were
// never acknowledged. Replay re-applies every complete, checksum-clean
// record in order (inserts and deletes are idempotent redo operations);
// a torn tail — a partial or corrupt final record — is tolerated and
// truncates the replay there.
//
// Record layout (little-endian):
//
//	kind u8 | key u64 | nsat u32 | sat u64 × nsat | crc32 u32
//
// The CRC (IEEE) covers kind through the last satellite word. A commit
// marker is a record of kind intentCommit with key 0 and no satellites.

const (
	intentInsert byte = 1
	intentDelete byte = 2
	intentCommit byte = 3
)

// maxIntentSat bounds a record's satellite length on replay, so a
// corrupt length field cannot ask for gigabytes.
const maxIntentSat = 1 << 20

// Intent is one logged mutation.
type Intent struct {
	// Del selects delete (true) or insert (false).
	Del bool
	// Key is the mutated key.
	Key pdm.Word
	// Sat is the inserted satellite data (nil for deletes).
	Sat []pdm.Word
}

// IntentLog appends checksummed intent records to an io.Writer.
// Append buffers; Commit writes a commit marker and flushes the buffer
// — the group-commit point. Safe for concurrent use.
type IntentLog struct {
	mu sync.Mutex
	bw *bufio.Writer // guarded by mu
	// err latches the first write failure; once set, every subsequent
	// Append/Commit returns it (the log is poisoned, not silently short).
	err error // guarded by mu
}

// NewIntentLog returns a log writing to w.
func NewIntentLog(w io.Writer) *IntentLog {
	return &IntentLog{bw: bufio.NewWriter(w)}
}

// Append buffers one intent record. The record is not durable until the
// next Commit.
func (l *IntentLog) Append(in Intent) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return l.err
	}
	kind := intentInsert
	if in.Del {
		kind = intentDelete
	}
	l.err = writeIntentRecord(l.bw, kind, in.Key, in.Sat)
	return l.err
}

// Commit writes a commit marker and flushes every buffered record to
// the underlying writer — one flush for the whole group.
func (l *IntentLog) Commit() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return l.err
	}
	if err := writeIntentRecord(l.bw, intentCommit, 0, nil); err != nil {
		l.err = err
		return err
	}
	l.err = l.bw.Flush()
	return l.err
}

// writeIntentRecord encodes one record onto w.
func writeIntentRecord(w io.Writer, kind byte, key pdm.Word, sat []pdm.Word) error {
	buf := make([]byte, 0, 1+8+4+8*len(sat)+4)
	buf = append(buf, kind)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(key))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(sat)))
	for _, w := range sat {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(w))
	}
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
	_, err := w.Write(buf)
	return err
}

// ReplayIntents decodes every complete, checksum-clean intent record
// from r, in order, stopping (without error) at EOF, a torn record, or
// a checksum mismatch — the crash-recovery contract: everything before
// the tear replays, the tear truncates. Commit markers delimit flush
// groups and decode to no Intent. The returned error reports only
// genuine read failures, never a torn tail.
func ReplayIntents(r io.Reader) ([]Intent, error) {
	br := bufio.NewReader(r)
	var out []Intent
	for {
		head := make([]byte, 1+8+4)
		if _, err := io.ReadFull(br, head); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return out, nil // clean end or torn header
			}
			return out, err
		}
		kind := head[0]
		key := binary.LittleEndian.Uint64(head[1:9])
		nsat := binary.LittleEndian.Uint32(head[9:13])
		if kind < intentInsert || kind > intentCommit || nsat > maxIntentSat {
			return out, nil // corrupt record: treat as torn tail
		}
		body := make([]byte, 8*int(nsat)+4)
		if _, err := io.ReadFull(br, body); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return out, nil // torn body
			}
			return out, err
		}
		sum := crc32.ChecksumIEEE(head)
		sum = crc32.Update(sum, crc32.IEEETable, body[:8*int(nsat)])
		if sum != binary.LittleEndian.Uint32(body[8*int(nsat):]) {
			return out, nil // checksum mismatch: torn or corrupt tail
		}
		if kind == intentCommit {
			continue
		}
		var sat []pdm.Word
		if nsat > 0 {
			sat = make([]pdm.Word, nsat)
			for i := range sat {
				sat[i] = pdm.Word(binary.LittleEndian.Uint64(body[8*i : 8*i+8]))
			}
		}
		out = append(out, Intent{Del: kind == intentDelete, Key: pdm.Word(key), Sat: sat})
	}
}

// ApplyIntents re-applies replayed intents to a backend in log order —
// the recovery path after a crash. The applies are unattributed (nil
// tokens): recovery is not client work.
func ApplyIntents(be Backend, intents []Intent) error {
	for _, in := range intents {
		if in.Del {
			be.DeleteOp(nil, in.Key)
			continue
		}
		if err := be.InsertOp(nil, in.Key, in.Sat); err != nil {
			return err
		}
	}
	return nil
}

// Package sched is the group-commit request scheduler: it sits between
// the public dictionaries and the machine, coalescing concurrent
// single-key lookups that arrive within an admission window into ONE
// merged, de-duplicated probe round (core's LookupSharedOp over
// pdm.BatchReadShared), and queuing mutations behind a checksummed
// intent log that is group-committed — applied and flushed once per
// window. One parallel-I/O round is thereby amortized across many
// independent callers, while operation tokens keep per-op charges
// exact: every participant of a merged round is charged the round's
// full cost once, and the machine executes (and is charged) the round
// once.
//
// Two clocks close the admission window:
//
//   - Deterministic mode (Config.AfterFunc nil): the window closes when
//     MaxBatch operations are pending, when the injected machine step
//     counter has advanced StepBudget since the window opened, when the
//     write queue reaches QueueDepth, or on an explicit Flush. No wall
//     clock is read anywhere — same seed, same lockstep workload, same
//     trace bytes. Callers must cooperate: a window that never fills
//     blocks its participants until another trigger fires (run exactly
//     MaxBatch lockstep clients, or Flush).
//   - Serving mode (Config.AfterFunc set): additionally, a bounded
//     wall-time window injected from OUTSIDE the measured packages
//     (like pdm.SetWallClock) closes a partial batch. The timer only
//     decides WHEN a round runs, never what it contains or costs, so
//     wall time stays excluded from traces by construction.
//
// The write path is asynchronous with bounded queue depth: admitted
// mutations wait for the next group commit (their callers block until
// the group's intent records are applied and flushed), and when the
// queue is full while a flush is in progress, further writers either
// block or get ErrOverloaded, per Config.Block. The queue can never
// exceed QueueDepth.
//
// The scheduler runs no goroutines of its own: whichever caller closes
// a window dispatches it, and callers that merely join a window park on
// their request's done channel. The scheduler's mutex is never held
// across a dictionary call.
package sched

import (
	"errors"
	"sort"
	"sync"

	"pdmdict/internal/obs"
	"pdmdict/internal/pdm"
)

// Backend is the dictionary surface the scheduler drives. core.Dict,
// core.BasicDict, core.DynamicDict, and core.OneProbeDict all satisfy
// it.
type Backend interface {
	// LookupSharedOp resolves keys[i] on behalf of ops[i] in merged,
	// de-duplicated shared rounds; every op is charged each round it
	// rides, in full, exactly once.
	LookupSharedOp(ops []*pdm.Op, keys []pdm.Word) ([][]pdm.Word, []bool)
	// InsertOp stores (x, sat), attributed to op.
	InsertOp(op *pdm.Op, x pdm.Word, sat []pdm.Word) error
	// DeleteOp removes x, attributed to op, reporting presence.
	DeleteOp(op *pdm.Op, x pdm.Word) bool
}

// ErrOverloaded is returned by the write path when the intent queue is
// at QueueDepth, a flush is already in progress, and Config.Block is
// false — the backpressure signal.
var ErrOverloaded = errors.New("sched: write queue full")

// ErrClosed is returned for operations submitted after Close.
var ErrClosed = errors.New("sched: scheduler closed")

// schedOpBase is the high bit of every scheduler-minted token ID,
// keeping them disjoint from the machines' counter-minted IDs. The
// client rides bits 32..62 and a per-client sequence number the low 32,
// so token IDs — and with them trace bytes — are a pure function of
// each client's own submission order, immune to cross-client races.
const schedOpBase = uint64(1) << 63

// Config parameterizes a Scheduler.
type Config struct {
	// MaxBatch closes the admission window when this many operations
	// (reads + queued writes) are pending. 0 defaults to 16. In
	// deterministic lockstep workloads this is the client count.
	MaxBatch int
	// StepBudget, when positive, also closes the window once Steps()
	// has advanced this much since the window opened — the
	// deterministic "don't wait forever while other traffic makes
	// progress" clock. Requires Steps.
	StepBudget int64
	// Steps is the injected deterministic clock: the machine's parallel
	// I/O step counter (pdm.Machine.StepCount, core.Dict.StepCount).
	Steps func() int64
	// AfterFunc, when set, enables serving mode: it must start a
	// single-shot timer for the caller's chosen wall window and return
	// a stop function. It is injected from outside the measured
	// packages (cmd/, pdmdict), mirroring pdm.SetWallClock, so this
	// package never touches a wall clock.
	AfterFunc func(fire func()) (stop func())
	// QueueDepth bounds the pending-write queue. 0 defaults to 64.
	QueueDepth int
	// Block makes a writer that meets a full queue wait for the
	// in-flight flush instead of receiving ErrOverloaded.
	Block bool
	// Log, when non-nil, is the intent log group-committed on every
	// flush. Writers are acknowledged only after their group's commit.
	Log *IntentLog
}

// readReq is one admitted lookup waiting for its window's shared round.
type readReq struct {
	op   *pdm.Op
	key  pdm.Word
	sat  []pdm.Word // written by the dispatcher before done is closed
	ok   bool       // written by the dispatcher before done is closed
	done chan struct{}
}

// writeReq is one admitted mutation waiting for its group commit.
type writeReq struct {
	op      *pdm.Op
	del     bool
	key     pdm.Word
	sat     []pdm.Word
	err     error // written by the dispatcher before done is closed
	present bool  // written by the dispatcher before done is closed
	done    chan struct{}
}

// window is one closed admission window, taken from the queues and
// executed outside the lock.
type window struct {
	reads  []*readReq
	writes []*writeReq
	steps  int64 // window length on the injected step clock
}

// Scheduler coalesces concurrent operations into shared rounds and
// group-committed write flushes. Create with New; all methods are safe
// for concurrent use.
type Scheduler struct {
	cfg Config
	be  Backend

	mu      sync.Mutex
	notFull *sync.Cond // signaled whenever a dispatch completes; shares mu

	reads       []*readReq     // guarded by mu
	writes      []*writeReq    // guarded by mu
	seqs        map[int]uint64 // guarded by mu; per-client token sequences
	windowGen   uint64         // guarded by mu; increments per window open
	windowStep  int64          // guarded by mu; Steps() at window open
	force       bool           // guarded by mu; timer fired or Flush pending
	dispatching bool           // guarded by mu; a window is executing
	stopTimer   func()         // guarded by mu; serving-mode window timer
	closed      bool           // guarded by mu

	lookups     int64 // guarded by mu
	rounds      int64 // guarded by mu
	roundsSaved int64 // guarded by mu
	writesTotal int64 // guarded by mu
	flushes     int64 // guarded by mu
	overloads   int64 // guarded by mu
	queuePeak   int64 // guarded by mu
	occSum      int64 // guarded by mu
	winStepSum  int64 // guarded by mu

	occ      obs.Hist // per-round read occupancy (atomic counters)
	winSteps obs.Hist // admission-window length in machine steps
}

// New returns a scheduler over be.
func New(be Backend, cfg Config) *Scheduler {
	s := &Scheduler{cfg: cfg, be: be, seqs: make(map[int]uint64)}
	s.notFull = sync.NewCond(&s.mu)
	return s
}

func (s *Scheduler) maxBatch() int {
	if s.cfg.MaxBatch <= 0 {
		return 16
	}
	return s.cfg.MaxBatch
}

func (s *Scheduler) queueDepth() int {
	if s.cfg.QueueDepth <= 0 {
		return 64
	}
	return s.cfg.QueueDepth
}

// MintOp mints a deterministic operation token for one request by
// client over keys keys: IDs encode (client, that client's submission
// sequence), so equal per-client workloads mint equal IDs regardless of
// cross-client interleaving — the property deterministic-mode trace
// identity rests on. Tokens are machine-independent (pdm.MakeOp) and
// carry the high schedOpBase bit, disjoint from counter-minted IDs.
func (s *Scheduler) MintOp(client, keys int) *pdm.Op {
	s.mu.Lock()
	seq := s.seqs[client] + 1
	s.seqs[client] = seq
	s.mu.Unlock()
	return pdm.MakeOp(schedOpBase|uint64(uint32(client))<<32|(seq&0xFFFFFFFF), client, keys)
}

// LookupOp submits one lookup attributed to op (nil mints a client-0
// token) and blocks until its admission window's shared round resolves
// it. The error is non-nil only when the scheduler is closed.
func (s *Scheduler) LookupOp(op *pdm.Op, key pdm.Word) ([]pdm.Word, bool, error) {
	if op == nil {
		op = s.MintOp(0, 1)
	}
	r := &readReq{op: op, key: key, done: make(chan struct{})}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, false, ErrClosed
	}
	s.openWindowLocked()
	s.reads = append(s.reads, r)
	s.lookups++
	w, run := s.takeIfClosableLocked()
	s.mu.Unlock()
	if run {
		s.runWindows(w)
	}
	<-r.done
	return r.sat, r.ok, nil
}

// InsertOp submits one insert attributed to op (nil mints a client-0
// token) and blocks until its group commits: the backend applied it and
// the intent log flushed. Returns ErrOverloaded under backpressure with
// Config.Block false, ErrClosed after Close.
func (s *Scheduler) InsertOp(op *pdm.Op, key pdm.Word, sat []pdm.Word) error {
	if op == nil {
		op = s.MintOp(0, 1)
	}
	w := &writeReq{op: op, key: key, sat: append([]pdm.Word(nil), sat...), done: make(chan struct{})}
	if err := s.admitWrite(w); err != nil {
		return err
	}
	<-w.done
	return w.err
}

// DeleteOp submits one delete attributed to op (nil mints a client-0
// token) and blocks until its group commits, reporting whether the key
// was present. Errors as InsertOp.
func (s *Scheduler) DeleteOp(op *pdm.Op, key pdm.Word) (bool, error) {
	if op == nil {
		op = s.MintOp(0, 1)
	}
	w := &writeReq{op: op, del: true, key: key, done: make(chan struct{})}
	if err := s.admitWrite(w); err != nil {
		return false, err
	}
	<-w.done
	return w.present, w.err
}

// admitWrite enqueues w, enforcing the queue bound: the queue never
// holds more than QueueDepth entries. A writer that meets a full queue
// drains it itself if no dispatch is running, waits if one is (Block),
// or gets ErrOverloaded.
func (s *Scheduler) admitWrite(w *writeReq) error {
	s.mu.Lock()
	for {
		if s.closed {
			s.mu.Unlock()
			return ErrClosed
		}
		if len(s.writes) < s.queueDepth() {
			break
		}
		if !s.dispatching {
			// Queue full and nobody flushing: this writer flushes.
			if win, run := s.takeIfClosableLocked(); run {
				s.mu.Unlock()
				s.runWindows(win)
				s.mu.Lock()
				continue
			}
		}
		if !s.cfg.Block {
			s.overloads++
			s.mu.Unlock()
			return ErrOverloaded
		}
		s.notFull.Wait()
	}
	s.openWindowLocked()
	s.writes = append(s.writes, w)
	s.writesTotal++
	if d := int64(len(s.writes)); d > s.queuePeak {
		s.queuePeak = d
	}
	win, run := s.takeIfClosableLocked()
	s.mu.Unlock()
	if run {
		s.runWindows(win)
	}
	return nil
}

// openWindowLocked starts a new admission window if none is open (the
// queues are empty): records the step clock, bumps the generation, and
// arms the serving-mode timer.
func (s *Scheduler) openWindowLocked() {
	if len(s.reads)+len(s.writes) > 0 {
		return
	}
	s.windowGen++
	s.force = false
	if s.cfg.Steps != nil {
		s.windowStep = s.cfg.Steps()
	}
	if s.cfg.AfterFunc != nil {
		gen := s.windowGen
		// The fire callback hands off to a fresh goroutine so the
		// timer's thread never blocks on a dispatch (a timer-fired
		// close runs a whole I/O round) and acquires no lock while the
		// opener still holds mu.
		s.stopTimer = s.cfg.AfterFunc(func() { go s.timerFire(gen) })
	}
}

// timerFire closes the window it was armed for, if still current.
func (s *Scheduler) timerFire(gen uint64) {
	var w window
	run := false
	s.mu.Lock()
	if gen == s.windowGen {
		s.force = true
		w, run = s.takeIfClosableLocked()
	}
	s.mu.Unlock()
	if run {
		s.runWindows(w)
	}
}

// shouldCloseLocked reports whether the current window must close.
func (s *Scheduler) shouldCloseLocked() bool {
	n := len(s.reads) + len(s.writes)
	if n == 0 {
		return false
	}
	if s.force || s.closed {
		return true
	}
	if n >= s.maxBatch() {
		return true
	}
	if len(s.writes) >= s.queueDepth() {
		return true
	}
	if s.cfg.StepBudget > 0 && s.cfg.Steps != nil &&
		s.cfg.Steps()-s.windowStep >= s.cfg.StepBudget {
		return true
	}
	return false
}

// takeIfClosableLocked closes and removes the current window if it must
// close and no other dispatch is running. The caller that receives
// run=true MUST call runWindows with the window after releasing mu.
func (s *Scheduler) takeIfClosableLocked() (window, bool) {
	if s.dispatching || !s.shouldCloseLocked() {
		return window{}, false
	}
	w := window{reads: s.reads, writes: s.writes}
	if s.cfg.Steps != nil {
		w.steps = s.cfg.Steps() - s.windowStep
	}
	s.reads, s.writes = nil, nil
	s.force = false
	if s.stopTimer != nil {
		s.stopTimer()
		s.stopTimer = nil
	}
	s.dispatching = true
	return w, true
}

// runWindows executes w, then keeps dispatching any windows that became
// closable while it ran, so progress never depends on a new arrival.
// Must be called WITHOUT mu held.
func (s *Scheduler) runWindows(w window) {
	for {
		s.execute(w)
		s.mu.Lock()
		s.dispatching = false
		s.notFull.Broadcast()
		next, run := s.takeIfClosableLocked()
		s.mu.Unlock()
		if !run {
			return
		}
		w = next
	}
}

// execute runs one closed window: the write group first (logged, then
// applied in token order, then committed — the group commit), then the
// merged read round. Runs outside the scheduler lock; the dispatching
// flag guarantees at most one execute at a time, so log order equals
// apply order.
func (s *Scheduler) execute(w window) {
	if len(w.writes) > 0 {
		// Canonical order: token IDs, which for scheduler-minted tokens
		// encode (client, per-client sequence) — deterministic under
		// cross-client races.
		sort.Slice(w.writes, func(i, j int) bool { return w.writes[i].op.ID() < w.writes[j].op.ID() })
		var logErr error
		if s.cfg.Log != nil {
			for _, wr := range w.writes {
				in := Intent{Del: wr.del, Key: wr.key, Sat: wr.sat}
				if err := s.cfg.Log.Append(in); err != nil {
					logErr = err
					break
				}
			}
		}
		for _, wr := range w.writes {
			if logErr != nil {
				wr.err = logErr
				continue
			}
			if wr.del {
				wr.present = s.be.DeleteOp(wr.op, wr.key)
			} else {
				wr.err = s.be.InsertOp(wr.op, wr.key, wr.sat)
			}
		}
		if s.cfg.Log != nil && logErr == nil {
			if err := s.cfg.Log.Commit(); err != nil {
				for _, wr := range w.writes {
					if wr.err == nil {
						wr.err = err
					}
				}
			}
		}
		for _, wr := range w.writes {
			close(wr.done)
		}
	}
	if len(w.reads) > 0 {
		sort.Slice(w.reads, func(i, j int) bool { return w.reads[i].op.ID() < w.reads[j].op.ID() })
		ops := make([]*pdm.Op, len(w.reads))
		keys := make([]pdm.Word, len(w.reads))
		for i, r := range w.reads {
			ops[i], keys[i] = r.op, r.key
		}
		sats, oks := s.be.LookupSharedOp(ops, keys)
		for i, r := range w.reads {
			r.sat, r.ok = sats[i], oks[i]
		}
		for _, r := range w.reads {
			close(r.done)
		}
	}
	s.mu.Lock()
	if n := int64(len(w.reads)); n > 0 {
		s.rounds++
		s.roundsSaved += n - 1
		s.occSum += n
		s.occ.Observe(n)
	}
	if len(w.writes) > 0 {
		s.flushes++
	}
	s.winStepSum += w.steps
	s.winSteps.Observe(w.steps)
	s.mu.Unlock()
}

// Flush closes and dispatches the current window (and any windows that
// form while draining) and returns once nothing is pending — the
// deterministic-mode escape hatch for partial windows and the shutdown
// drain.
func (s *Scheduler) Flush() {
	for {
		s.mu.Lock()
		if len(s.reads)+len(s.writes) == 0 && !s.dispatching {
			s.mu.Unlock()
			return
		}
		s.force = true
		w, run := s.takeIfClosableLocked()
		if !run {
			// Another goroutine is mid-dispatch; wait for it to finish,
			// then re-check.
			s.notFull.Wait()
			s.mu.Unlock()
			continue
		}
		s.mu.Unlock()
		s.runWindows(w)
	}
}

// Close drains every pending operation and marks the scheduler closed;
// subsequent submissions return ErrClosed. Safe to call more than once.
func (s *Scheduler) Close() error {
	s.mu.Lock()
	s.closed = true
	s.notFull.Broadcast()
	s.mu.Unlock()
	s.Flush()
	return nil
}

// Snapshot returns the scheduler's counters and histograms for the
// /metrics and /debug/sched surfaces. Byte-deterministic for
// deterministic workloads.
func (s *Scheduler) Snapshot() obs.SchedSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	return obs.SchedSnapshot{
		Lookups:       s.lookups,
		Rounds:        s.rounds,
		RoundsSaved:   s.roundsSaved,
		Writes:        s.writesTotal,
		Flushes:       s.flushes,
		Overloads:     s.overloads,
		QueueDepth:    int64(len(s.writes)),
		QueuePeak:     s.queuePeak,
		PendingReads:  int64(len(s.reads)),
		OccupancySum:  s.occSum,
		Occupancy:     s.occ.Summarize("sched_batch_occupancy"),
		WindowStepSum: s.winStepSum,
		WindowSteps:   s.winSteps.Summarize("sched_window_steps"),
	}
}

package sched

import (
	"bytes"
	"testing"

	"pdmdict/internal/pdm"
)

// memBackend is a plain in-memory Backend for log tests.
type memBackend struct {
	m map[pdm.Word][]pdm.Word
}

func newMemBackend() *memBackend { return &memBackend{m: make(map[pdm.Word][]pdm.Word)} }

func (b *memBackend) LookupSharedOp(ops []*pdm.Op, keys []pdm.Word) ([][]pdm.Word, []bool) {
	sats := make([][]pdm.Word, len(keys))
	oks := make([]bool, len(keys))
	for i, k := range keys {
		s, ok := b.m[k]
		if ok {
			sats[i] = append([]pdm.Word(nil), s...)
		}
		oks[i] = ok
	}
	return sats, oks
}

func (b *memBackend) InsertOp(op *pdm.Op, x pdm.Word, sat []pdm.Word) error {
	b.m[x] = append([]pdm.Word(nil), sat...)
	return nil
}

func (b *memBackend) DeleteOp(op *pdm.Op, x pdm.Word) bool {
	_, ok := b.m[x]
	delete(b.m, x)
	return ok
}

func testIntents() []Intent {
	return []Intent{
		{Key: 1, Sat: []pdm.Word{10, 11}},
		{Key: 2, Sat: []pdm.Word{20}},
		{Del: true, Key: 1},
		{Key: 3, Sat: nil},
		{Key: 0xFFFFFFFFFFFFFFFF, Sat: []pdm.Word{1, 2, 3, 4}},
	}
}

func TestIntentLogRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	l := NewIntentLog(&buf)
	want := testIntents()
	for i, in := range want {
		if err := l.Append(in); err != nil {
			t.Fatalf("Append(%d): %v", i, err)
		}
		// Commit after each record in the first half, once at the end for
		// the rest — markers must be transparent to replay.
		if i < len(want)/2 {
			if err := l.Commit(); err != nil {
				t.Fatalf("Commit(%d): %v", i, err)
			}
		}
	}
	if err := l.Commit(); err != nil {
		t.Fatalf("final Commit: %v", err)
	}
	got, err := ReplayIntents(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReplayIntents: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d intents, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Del != want[i].Del || got[i].Key != want[i].Key || len(got[i].Sat) != len(want[i].Sat) {
			t.Fatalf("intent %d: got %+v want %+v", i, got[i], want[i])
		}
		for j := range want[i].Sat {
			if got[i].Sat[j] != want[i].Sat[j] {
				t.Fatalf("intent %d sat %d: got %d want %d", i, j, got[i].Sat[j], want[i].Sat[j])
			}
		}
	}
}

func TestIntentLogTornTail(t *testing.T) {
	var buf bytes.Buffer
	l := NewIntentLog(&buf)
	want := testIntents()
	for _, in := range want {
		if err := l.Append(in); err != nil {
			t.Fatal(err)
		}
		if err := l.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	full := buf.Bytes()
	// Every proper prefix must replay without error to some prefix of the
	// intents — a crash can tear the log at any byte.
	prev := 0
	for cut := 0; cut < len(full); cut++ {
		got, err := ReplayIntents(bytes.NewReader(full[:cut]))
		if err != nil {
			t.Fatalf("cut %d: unexpected error %v", cut, err)
		}
		if len(got) > len(want) {
			t.Fatalf("cut %d: replayed %d intents from a log of %d", cut, len(got), len(want))
		}
		if len(got) < prev {
			t.Fatalf("cut %d: replay went backwards (%d after %d)", cut, len(got), prev)
		}
		prev = len(got)
		for i := range got {
			if got[i].Key != want[i].Key || got[i].Del != want[i].Del {
				t.Fatalf("cut %d: intent %d diverged", cut, i)
			}
		}
	}
}

func TestIntentLogCorruptTail(t *testing.T) {
	var buf bytes.Buffer
	l := NewIntentLog(&buf)
	want := testIntents()
	for _, in := range want {
		if err := l.Append(in); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	full := append([]byte(nil), buf.Bytes()...)
	// Flip one bit in the LAST record's checksum region: replay must keep
	// everything before it and drop the corrupt tail, without error.
	full[len(full)-1] ^= 0x40
	got, err := ReplayIntents(bytes.NewReader(full))
	if err != nil {
		t.Fatalf("ReplayIntents: %v", err)
	}
	if len(got) != len(want) {
		// The flipped byte is in the trailing commit marker; all real
		// intents must survive.
		t.Fatalf("replayed %d intents, want %d", len(got), len(want))
	}
}

func TestIntentLogCrashReplayRestoresBackend(t *testing.T) {
	var buf bytes.Buffer
	be := newMemBackend()
	s := New(be, Config{MaxBatch: 1, Log: NewIntentLog(&buf)})
	for k := pdm.Word(1); k <= 40; k++ {
		if err := s.InsertOp(nil, k, []pdm.Word{k * 100}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.DeleteOp(nil, 7); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// "Crash": tear the last 3 bytes off the log, then recover into a
	// fresh backend.
	torn := buf.Bytes()[:buf.Len()-3]
	intents, err := ReplayIntents(bytes.NewReader(torn))
	if err != nil {
		t.Fatalf("ReplayIntents: %v", err)
	}
	fresh := newMemBackend()
	if err := ApplyIntents(fresh, intents); err != nil {
		t.Fatalf("ApplyIntents: %v", err)
	}
	// Every acknowledged group except possibly the torn tail one must be
	// present; the delete of 7 tore off only if its record was in the
	// final bytes. Check all fully-committed inserts.
	for k := pdm.Word(1); k <= 40; k++ {
		sat, ok := fresh.m[k]
		if k == 7 {
			continue // deleted later; replay state depends on the tear point
		}
		if !ok && k < 39 {
			t.Fatalf("key %d lost by replay", k)
		}
		if ok && sat[0] != k*100 {
			t.Fatalf("key %d: replayed sat %d, want %d", k, sat[0], k*100)
		}
	}
	if _, ok := fresh.m[7]; ok {
		t.Fatalf("delete of key 7 not replayed")
	}
}

// Package lint implements pdmlint, the repo-specific static-analysis
// suite that guards the invariants the paper's bounds rest on but the
// compiler cannot see:
//
//   - iocharge: all block access outside internal/pdm flows through the
//     accounted batch methods, so parallel-I/O counts stay exact.
//   - batcherr: the error result of every fault-aware access is
//     consulted, so degraded-mode correctness cannot silently rot.
//   - detrand: no unseeded randomness, wall clock, or order-unstable
//     map iteration reaches a measured or serialized path, so the same
//     seed yields byte-identical traces.
//   - hooktag: every span tag is a constant from the internal/obs tag
//     registry, so per-tag I/O sums partition the machine's total.
//   - opctx: every public Lookup/Insert/Delete entry point mints or
//     propagates an operation token, so per-op accounting has no blind
//     spots.
//   - lockorder: lock acquisitions respect the partial order declared
//     in locktable.go, and every mutex struct field is registered
//     there, so the concurrent query/repair paths cannot deadlock.
//   - guardedby: annotated struct fields are only touched with their
//     declared mutex held (see the grammar below), *Locked helpers are
//     only called with their locks held, and no field mixes atomic and
//     plain access.
//   - healthtrans: disk health states are written only through the
//     canonical transition function, and switches over state enums are
//     exhaustive.
//
// # Guarded-field grammar
//
// A struct field is declared guarded with a doc or trailing line
// comment of exactly this shape:
//
//	n     int        // guarded by mu
//	state HealthState // guarded by Machine.healthMu; prose may follow a semicolon
//
// The guard is either a sibling mutex field (`mu`) or a
// `<Type>.<field>` mutex of another type in the same package, and must
// be registered in the lock-order table (locktable.go). Reads require
// the guard held (RLock suffices); writes require it held exclusively.
// A function whose name ends in "Locked" is exempt inside its body —
// instead, every call site must hold the locks the function
// (transitively) assumes.
//
// The package is a deliberately small stand-in for golang.org/x/tools'
// go/analysis framework (which this module does not depend on): an
// Analyzer inspects one type-checked package through a Pass and reports
// Diagnostics. cmd/pdmlint drives the analyzers either standalone or as
// a `go vet -vettool` unit checker; analyzers are tested hermetically
// against fixtures under testdata/src (see atest.go).
//
// Any finding can be waived at a deliberate, documented call site with
// a trailing or preceding comment of the form
//
//	//lint:pdm-allow <rule>[,<rule>...]: reason
//
// The reason is not parsed but, by convention, mandatory. A waiver that
// suppresses nothing is itself reported (rule "unusedwaiver") whenever
// every rule it names was part of the run, so stale escape hatches
// cannot accumulate.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding, resolved to a file position.
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
}

// String formats the diagnostic the way `go vet` prints findings.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Rule, d.Message)
}

// Analyzer is one named check over a type-checked package.
type Analyzer struct {
	// Name is the rule name used in diagnostics and pdm-allow comments.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run inspects the package and reports findings via pass.Reportf.
	Run func(pass *Pass) error
}

// All returns the full pdmlint suite.
func All() []*Analyzer {
	return []*Analyzer{IOCharge, BatchErr, DetRand, HookTag, OpCtxRule, LockOrder, GuardedBy, HealthTrans}
}

// ByName returns the analyzer with the given rule name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Pass carries one package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags *[]Diagnostic
}

// Reportf records a finding anchored at n.
func (p *Pass) Reportf(n ast.Node, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:     p.Fset.Position(n.Pos()),
		Rule:    p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// IsTestFile reports whether the file containing n is a _test.go file.
func (p *Pass) IsTestFile(n ast.Node) bool {
	return strings.HasSuffix(p.Fset.Position(n.Pos()).Filename, "_test.go")
}

// Run applies the analyzers to one type-checked package and returns the
// surviving diagnostics (pdm-allow-suppressed findings are dropped),
// sorted by position.
func Run(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     fset,
			Files:    files,
			Pkg:      pkg,
			Info:     info,
			diags:    &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
	}
	waivers := collectWaivers(fset, files)
	diags = filterAllowed(waivers, diags)
	diags = append(diags, filterAllowed(waivers, staleWaivers(waivers, analyzers))...)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	return diags, nil
}

// allowKey identifies one (file, line) pair carrying a pdm-allow waiver.
type allowKey struct {
	file string
	line int
}

// waiverComment is one parsed //lint:pdm-allow comment, with its usage
// tracked so stale waivers can be reported.
type waiverComment struct {
	key   allowKey
	pos   token.Position
	rules []string // as written, for messages
	set   map[string]bool
	used  bool
}

// collectWaivers parses every pdm-allow comment of the package.
func collectWaivers(fset *token.FileSet, files []*ast.File) []*waiverComment {
	var out []*waiverComment
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rules := parseAllow(c.Text)
				if rules == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				w := &waiverComment{
					key:   allowKey{pos.Filename, pos.Line},
					pos:   pos,
					rules: rules,
					set:   map[string]bool{},
				}
				for _, r := range rules {
					w.set[r] = true
				}
				out = append(out, w)
			}
		}
	}
	return out
}

// filterAllowed drops diagnostics waived by a //lint:pdm-allow comment
// on the same line or the line directly above, marking the waivers that
// did the suppressing as used.
func filterAllowed(waivers []*waiverComment, diags []Diagnostic) []Diagnostic {
	if len(waivers) == 0 {
		return diags
	}
	byKey := map[allowKey][]*waiverComment{}
	for _, w := range waivers {
		byKey[w.key] = append(byKey[w.key], w)
	}
	kept := diags[:0]
	for _, d := range diags {
		suppressed := false
		for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
			for _, w := range byKey[allowKey{d.Pos.Filename, line}] {
				if w.set[d.Rule] {
					w.used = true
					suppressed = true
				}
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	return kept
}

// staleWaivers reports the waivers that suppressed nothing, provided
// every rule they name was part of the run (a waiver for an analyzer
// outside the suite may be load-bearing in a fuller run, so it is left
// alone). Waivers naming unusedwaiver itself are exempt: they exist to
// quiet this very check.
func staleWaivers(waivers []*waiverComment, analyzers []*Analyzer) []Diagnostic {
	suite := map[string]bool{}
	for _, a := range analyzers {
		suite[a.Name] = true
	}
	var out []Diagnostic
	for _, w := range waivers {
		if w.used || w.set["unusedwaiver"] {
			continue
		}
		all := true
		for r := range w.set {
			if !suite[r] {
				all = false
				break
			}
		}
		if !all {
			continue
		}
		out = append(out, Diagnostic{
			Pos:  w.pos,
			Rule: "unusedwaiver",
			Message: fmt.Sprintf("//lint:pdm-allow %s suppresses no diagnostic; remove the stale waiver",
				strings.Join(w.rules, ",")),
		})
	}
	return out
}

// parseAllow extracts the rule names from a //lint:pdm-allow comment,
// or returns nil if the comment is not one.
func parseAllow(text string) []string {
	text = strings.TrimPrefix(text, "//")
	text = strings.TrimSpace(text)
	const prefix = "lint:pdm-allow"
	if !strings.HasPrefix(text, prefix) {
		return nil
	}
	rest := strings.TrimSpace(text[len(prefix):])
	// Everything after a ':' is the human reason.
	if i := strings.IndexByte(rest, ':'); i >= 0 {
		rest = rest[:i]
	}
	fields := strings.FieldsFunc(rest, func(r rune) bool { return r == ',' || r == ' ' || r == '\t' })
	var rules []string
	for _, f := range fields {
		if f != "" {
			rules = append(rules, f)
		}
	}
	if len(rules) == 0 {
		return nil
	}
	return rules
}

// inspectWithStack walks root calling fn with each node and the stack of
// its ancestors (outermost first, not including n itself). If fn returns
// false the node's children are skipped.
func inspectWithStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if !fn(n, stack) {
			return false
		}
		stack = append(stack, n)
		return true
	})
}

// Package lint implements pdmlint, the repo-specific static-analysis
// suite that guards the invariants the paper's bounds rest on but the
// compiler cannot see:
//
//   - iocharge: all block access outside internal/pdm flows through the
//     accounted batch methods, so parallel-I/O counts stay exact.
//   - batcherr: the error result of every fault-aware access is
//     consulted, so degraded-mode correctness cannot silently rot.
//   - detrand: no unseeded randomness, wall clock, or order-unstable
//     map iteration reaches a measured or serialized path, so the same
//     seed yields byte-identical traces.
//   - hooktag: every span tag is a constant from the internal/obs tag
//     registry, so per-tag I/O sums partition the machine's total.
//
// The package is a deliberately small stand-in for golang.org/x/tools'
// go/analysis framework (which this module does not depend on): an
// Analyzer inspects one type-checked package through a Pass and reports
// Diagnostics. cmd/pdmlint drives the analyzers either standalone or as
// a `go vet -vettool` unit checker; analyzers are tested hermetically
// against fixtures under testdata/src (see atest.go).
//
// Any finding can be waived at a deliberate, documented call site with
// a trailing or preceding comment of the form
//
//	//lint:pdm-allow <rule>[,<rule>...]: reason
//
// The reason is not parsed but, by convention, mandatory.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding, resolved to a file position.
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
}

// String formats the diagnostic the way `go vet` prints findings.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Rule, d.Message)
}

// Analyzer is one named check over a type-checked package.
type Analyzer struct {
	// Name is the rule name used in diagnostics and pdm-allow comments.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run inspects the package and reports findings via pass.Reportf.
	Run func(pass *Pass) error
}

// All returns the full pdmlint suite.
func All() []*Analyzer {
	return []*Analyzer{IOCharge, BatchErr, DetRand, HookTag, OpCtxRule}
}

// ByName returns the analyzer with the given rule name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Pass carries one package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags *[]Diagnostic
}

// Reportf records a finding anchored at n.
func (p *Pass) Reportf(n ast.Node, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:     p.Fset.Position(n.Pos()),
		Rule:    p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// IsTestFile reports whether the file containing n is a _test.go file.
func (p *Pass) IsTestFile(n ast.Node) bool {
	return strings.HasSuffix(p.Fset.Position(n.Pos()).Filename, "_test.go")
}

// Run applies the analyzers to one type-checked package and returns the
// surviving diagnostics (pdm-allow-suppressed findings are dropped),
// sorted by position.
func Run(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     fset,
			Files:    files,
			Pkg:      pkg,
			Info:     info,
			diags:    &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
	}
	diags = filterAllowed(fset, files, diags)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	return diags, nil
}

// allowKey identifies one (file, line) pair carrying a pdm-allow waiver.
type allowKey struct {
	file string
	line int
}

// filterAllowed drops diagnostics waived by a //lint:pdm-allow comment
// on the same line or the line directly above.
func filterAllowed(fset *token.FileSet, files []*ast.File, diags []Diagnostic) []Diagnostic {
	allow := map[allowKey]map[string]bool{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rules := parseAllow(c.Text)
				if rules == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				k := allowKey{pos.Filename, pos.Line}
				if allow[k] == nil {
					allow[k] = map[string]bool{}
				}
				for _, r := range rules {
					allow[k][r] = true
				}
			}
		}
	}
	if len(allow) == 0 {
		return diags
	}
	kept := diags[:0]
	for _, d := range diags {
		sameLine := allow[allowKey{d.Pos.Filename, d.Pos.Line}]
		lineAbove := allow[allowKey{d.Pos.Filename, d.Pos.Line - 1}]
		if sameLine[d.Rule] || lineAbove[d.Rule] {
			continue
		}
		kept = append(kept, d)
	}
	return kept
}

// parseAllow extracts the rule names from a //lint:pdm-allow comment,
// or returns nil if the comment is not one.
func parseAllow(text string) []string {
	text = strings.TrimPrefix(text, "//")
	text = strings.TrimSpace(text)
	const prefix = "lint:pdm-allow"
	if !strings.HasPrefix(text, prefix) {
		return nil
	}
	rest := strings.TrimSpace(text[len(prefix):])
	// Everything after a ':' is the human reason.
	if i := strings.IndexByte(rest, ':'); i >= 0 {
		rest = rest[:i]
	}
	fields := strings.FieldsFunc(rest, func(r rune) bool { return r == ',' || r == ' ' || r == '\t' })
	var rules []string
	for _, f := range fields {
		if f != "" {
			rules = append(rules, f)
		}
	}
	if len(rules) == 0 {
		return nil
	}
	return rules
}

// inspectWithStack walks root calling fn with each node and the stack of
// its ancestors (outermost first, not including n itself). If fn returns
// false the node's children are skipped.
func inspectWithStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if !fn(n, stack) {
			return false
		}
		stack = append(stack, n)
		return true
	})
}

package lint

import (
	"bytes"
	"os/exec"
	"path/filepath"
	"testing"
)

// TestVettoolRepoIsClean builds cmd/pdmlint and runs it over the whole
// repository through `go vet -vettool`: the tree must carry zero
// diagnostics, and the run exercises the vettool protocol (version
// probe, flag probe, per-unit config with gc export data) end to end
// against the real toolchain.
func TestVettoolRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("rebuilds and re-vets the repo; skipped in -short mode")
	}
	goTool, err := exec.LookPath("go")
	if err != nil {
		t.Skipf("go tool not available: %v", err)
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	bin := filepath.Join(t.TempDir(), "pdmlint")
	build := exec.Command(goTool, "build", "-o", bin, "./cmd/pdmlint")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building pdmlint: %v\n%s", err, out)
	}
	vet := exec.Command(goTool, "vet", "-vettool="+bin, "./...")
	vet.Dir = root
	var buf bytes.Buffer
	vet.Stdout = &buf
	vet.Stderr = &buf
	if err := vet.Run(); err != nil {
		t.Errorf("pdmlint is not clean over the repository: %v\n%s", err, buf.String())
	}
}

package lint

import (
	"go/ast"
)

// IOCharge enforces the accounting boundary of the cost model: outside
// internal/pdm, every block access must flow through the accounted
// batch methods (BatchRead/BatchWrite/TryBatchRead/TryBatchWrite and
// the single-block wrappers built on them). The unaccounted escape
// hatches — Peek and VerifyChecksums, which read backing storage
// without charging a parallel I/O — are reserved for tests and
// explicitly waived diagnostics paths; silent use would make Figure 1's
// measured I/O counts undercount real work. The analyzer also rejects
// retaining an alias of Event.Addrs, which the machine only guarantees
// for the duration of the hook call.
var IOCharge = &Analyzer{
	Name: "iocharge",
	Doc: "block access outside internal/pdm must go through the accounted batch methods; " +
		"Peek/VerifyChecksums bypass parallel-I/O accounting, and retained Event.Addrs alias the machine's batch buffer",
	Run: runIOCharge,
}

// uncharged are the Machine methods that touch backing storage without
// accounting parallel I/Os.
var uncharged = map[string]bool{
	"Peek":            true,
	"VerifyChecksums": true,
}

func runIOCharge(pass *Pass) error {
	if pass.Pkg.Name() == "pdm" {
		// The machine's own package owns the backing storage.
		return nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		inspectWithStack(f, func(n ast.Node, stack []ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				fn := calleeFunc(pass.Info, n)
				if fn != nil && uncharged[fn.Name()] && isMethodOn(fn, "pdm", "Machine") {
					pass.Reportf(n, "pdm.Machine.%s reads backing storage without charging parallel I/Os; "+
						"use BatchRead/TryBatchRead, or waive a diagnostics-only path with //lint:pdm-allow iocharge", fn.Name())
				}
			case *ast.SelectorExpr:
				if n.Sel.Name == "Addrs" && isNamed(pass.Info.TypeOf(n.X), "pdm", "Event") {
					if retainsAlias(n, stack) {
						pass.Reportf(n, "retaining pdm.Event.Addrs aliases the machine's batch buffer, which is only valid "+
							"during the hook call; copy it first (append([]pdm.Addr(nil), e.Addrs...))")
					}
				}
			}
			return true
		})
	}
	return nil
}

// retainsAlias reports whether the Event.Addrs selector at the top of
// the walk is being stored somewhere that outlives the hook call: as a
// composite-literal field value, or assigned through a selector or
// index expression (a field or slot of a longer-lived object). Local
// reads — ranging, indexing, len, passing onward — are fine.
func retainsAlias(sel *ast.SelectorExpr, stack []ast.Node) bool {
	if len(stack) == 0 {
		return false
	}
	switch parent := stack[len(stack)-1].(type) {
	case *ast.KeyValueExpr:
		return parent.Value == sel
	case *ast.CompositeLit:
		for _, elt := range parent.Elts {
			if elt == sel {
				return true
			}
		}
	case *ast.AssignStmt:
		for i, rhs := range parent.Rhs {
			if rhs != sel || i >= len(parent.Lhs) {
				continue
			}
			switch parent.Lhs[i].(type) {
			case *ast.SelectorExpr, *ast.IndexExpr:
				return true
			}
		}
	}
	return false
}

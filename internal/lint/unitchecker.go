package lint

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"regexp"
	"strings"
)

// This file implements the protocol `go vet -vettool=prog` speaks to an
// analysis tool, with only the standard library (the canonical
// implementation lives in golang.org/x/tools' unitchecker, which this
// module does not depend on). The go command probes the tool three
// ways:
//
//   - `prog -V=full` must print a stable version line (hashed into the
//     build cache key);
//   - `prog -flags` must print a JSON description of the tool's flags,
//     so `go vet -vettool=prog -json ./...` knows -json is ours;
//   - `prog [flags] <unit>.cfg` analyzes one compilation unit described
//     by the JSON config file: file list, import map, and export-data
//     locations for every dependency (type-checking uses those, so no
//     source re-resolution happens).
//
// Invoked any other way, the tool re-executes itself through
// `go vet -vettool=<self>`, which is also the documented CI invocation.

// vetConfig mirrors the fields of the config file the go command writes
// for each vet unit (cmd/go/internal/work.vetConfig).
type vetConfig struct {
	ID         string
	Compiler   string
	Dir        string
	ImportPath string
	GoVersion  string
	GoFiles    []string
	NonGoFiles []string

	ImportMap   map[string]string
	PackageFile map[string]string
	Standard    map[string]bool

	PackageVetx map[string]string
	VetxOnly    bool
	VetxOutput  string

	SucceedOnTypecheckFailure bool
}

// jsonDiagnostic is the machine-readable shape -json emits, one object
// per line, for editor integration.
type jsonDiagnostic struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

// VettoolMain is the entry point of cmd/pdmlint. It returns the process
// exit code: 0 for success, 2 when diagnostics were reported (matching
// go vet's convention), 1 for operational errors.
func VettoolMain(progname string, args []string, stdout, stderr io.Writer) int {
	jsonOut := false
	rest := make([]string, 0, len(args))
	for _, a := range args {
		switch {
		case a == "-V=full" || a == "--V=full" || a == "-V":
			fmt.Fprintln(stdout, versionLine(progname))
			return 0
		case a == "-flags" || a == "--flags":
			fmt.Fprintln(stdout, `[{"Name":"json","Bool":true,"Usage":"emit one JSON diagnostic per line (file, line, col, rule, message) on stdout"}]`)
			return 0
		case a == "-json" || a == "-json=true" || a == "--json":
			jsonOut = true
		case a == "-json=false":
			jsonOut = false
		case a == "-h" || a == "-help" || a == "--help":
			usage(progname, stderr)
			return 0
		default:
			rest = append(rest, a)
		}
	}
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return analyzeUnit(rest[0], jsonOut, stdout, stderr)
	}
	if len(rest) == 0 {
		usage(progname, stderr)
		return 1
	}
	return reexecVet(jsonOut, rest, stdout, stderr)
}

func usage(progname string, w io.Writer) {
	fmt.Fprintf(w, `usage: %[1]s [-json] <packages>

%[1]s enforces the repo's I/O-accounting, determinism, and concurrency
invariants (analyzers: iocharge, batcherr, detrand, hooktag, opctx,
lockorder, guardedby, healthtrans; plus unusedwaiver, reported by the
runner for stale escape hatches). Given package patterns it runs itself
through the toolchain:

    go vet -vettool=$(which %[1]s) ./...

Waive a deliberate violation with a trailing comment:
    //lint:pdm-allow <rule>: reason
`, progname)
}

// versionLine identifies this build to the go command's cache: it must
// change whenever the binary does, so it hashes the executable.
func versionLine(progname string) string {
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			io.Copy(h, f)
			f.Close()
		}
	}
	return fmt.Sprintf("%s version devel buildID=%x", progname, h.Sum(nil)[:12])
}

// reexecVet runs the standalone invocation through go vet so the
// toolchain handles package loading and export data.
func reexecVet(jsonOut bool, patterns []string, stdout, stderr io.Writer) int {
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintf(stderr, "pdmlint: cannot locate own executable: %v\n", err)
		return 1
	}
	vetArgs := []string{"vet", "-vettool=" + self}
	if jsonOut {
		vetArgs = append(vetArgs, "-json")
	}
	vetArgs = append(vetArgs, patterns...)
	cmd := exec.Command("go", vetArgs...)
	cmd.Stdout = stdout
	cmd.Stderr = stderr
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		fmt.Fprintf(stderr, "pdmlint: running go vet: %v\n", err)
		return 1
	}
	return 0
}

// goVersionRE trims a toolchain version like "go1.24.0" to the
// language version go/types accepts.
var goVersionRE = regexp.MustCompile(`^go\d+\.\d+`)

// analyzeUnit runs the suite over one vet compilation unit.
func analyzeUnit(cfgFile string, jsonOut bool, stdout, stderr io.Writer) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintf(stderr, "pdmlint: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(stderr, "pdmlint: parsing %s: %v\n", cfgFile, err)
		return 1
	}
	// The go command expects a facts file for downstream units; pdmlint
	// keeps no cross-package facts, so a stamp suffices.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("pdmlint.vetx v1\n"), 0o666); err != nil {
			fmt.Fprintf(stderr, "pdmlint: writing facts: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		// Dependency visited only for facts; nothing to report.
		return 0
	}

	fset := token.NewFileSet()
	files := make([]*ast.File, 0, len(cfg.GoFiles))
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintf(stderr, "pdmlint: %v\n", err)
			return 1
		}
		files = append(files, f)
	}

	imp := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	tconf := types.Config{
		Importer: unsafeAware{imp},
		Sizes:    types.SizesFor(cfg.Compiler, build.Default.GOARCH),
		Error:    func(error) {}, // collect nothing; first error returned below
	}
	if v := goVersionRE.FindString(cfg.GoVersion); v != "" {
		tconf.GoVersion = v
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Instances:  map[*ast.Ident]types.Instance{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	pkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(stderr, "pdmlint: typechecking %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	diags, err := Run(fset, files, pkg, info, All())
	if err != nil {
		fmt.Fprintf(stderr, "pdmlint: %v\n", err)
		return 1
	}
	if len(diags) == 0 {
		return 0
	}
	if jsonOut {
		enc := json.NewEncoder(stdout)
		for _, d := range diags {
			enc.Encode(jsonDiagnostic{
				File:    d.Pos.Filename,
				Line:    d.Pos.Line,
				Col:     d.Pos.Column,
				Rule:    d.Rule,
				Message: d.Message,
			})
		}
		return 0
	}
	for _, d := range diags {
		fmt.Fprintf(stderr, "%s:%d:%d: %s: %s\n", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Message)
	}
	return 2
}

// unsafeAware routes the "unsafe" import to types.Unsafe; the gc
// importer's lookup path has no export data for it.
type unsafeAware struct {
	imp types.Importer
}

func (u unsafeAware) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return u.imp.Import(path)
}

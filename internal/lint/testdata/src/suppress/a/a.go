package a

import "pdmfix/pdm"

func waived(m *pdm.Machine, a pdm.Addr) {
	m.Peek(a) //lint:pdm-allow iocharge: same-line waiver
	//lint:pdm-allow iocharge: waives the next line
	m.Peek(a)
	m.Peek(a)           //lint:pdm-allow hooktag: wrong rule name // want `without charging parallel I/Os` `suppresses no diagnostic`
	m.TryBatchRead(nil) //lint:pdm-allow batcherr: deliberate fire-and-forget
	m.Peek(a)           // want `without charging parallel I/Os`
}

// Fixture for unused-waiver detection. The test runs only the
// lockorder analyzer, so waivers naming other rules are out of scope
// and must be left alone.
package unusedfix

import "sync"

type Pad struct {
	mu sync.Mutex
}

type Pad2 struct {
	mu sync.Mutex
}

// used: the waiver suppresses a real inversion (Pad ranks below Pad2),
// so it is not stale.
func used(a *Pad, b *Pad2) {
	b.mu.Lock()
	a.mu.Lock() //lint:pdm-allow lockorder: fixture inversion kept on purpose
	a.mu.Unlock()
	b.mu.Unlock()
}

// stale: nothing here trips lockorder, so the waiver is dead weight.
func stale(a *Pad) {
	a.mu.Lock() //lint:pdm-allow lockorder: stale on purpose // want `suppresses no diagnostic`
	a.mu.Unlock()
}

// foreign: detrand is not part of this run, so whether the waiver is
// load-bearing is unknowable here; nothing is reported.
func foreign(a *Pad) {
	a.mu.Lock() //lint:pdm-allow detrand: checked only under the full suite
	a.mu.Unlock()
}

// quieted: naming unusedwaiver itself opts out of staleness checking.
func quieted(a *Pad) {
	a.mu.Lock() //lint:pdm-allow lockorder, unusedwaiver: intentionally broad for the fixture
	a.mu.Unlock()
}

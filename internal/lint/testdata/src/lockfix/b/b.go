// Cross-package half of the lockorder fixture: calls into lockfix
// resolve through the declared effect table, not computed summaries.
package lockfixb

import lockfix "lockfix/a"

import "sync"

type Client struct {
	mu sync.Mutex
}

// bad: Touch is a method on a registered foreign type, so it defaults
// to "may acquire every class of its type" — which ranks far below
// Client.mu.
func (c *Client) bad(o *lockfix.Outer) {
	c.mu.Lock()
	o.Touch() // want `calls Touch, which may acquire lockfix.Outer.mu \(rank 910\), while lockfixb.Client.mu \(rank 950\) is held`
	c.mu.Unlock()
}

// ok: Poke is declared lock-free in the effect table.
func (c *Client) ok(l *lockfix.Leaf) {
	c.mu.Lock()
	l.Poke()
	c.mu.Unlock()
}

// unheld: with nothing held, foreign calls are unconstrained.
func (c *Client) unheld(o *lockfix.Outer) {
	o.Touch()
}

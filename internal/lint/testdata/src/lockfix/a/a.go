// Fixture for the lockorder analyzer. The classes Outer (rank 910),
// Middle (920), Middle.statsMu (924), and Leaf (930) are registered in
// internal/lint/locktable.go; acquisitions must follow strictly
// increasing rank.
package lockfix

import "sync"

type Outer struct {
	mu sync.Mutex
}

type Middle struct {
	mu      sync.RWMutex
	statsMu sync.Mutex
	n       int
}

type Leaf struct {
	mu sync.Mutex
}

// Rogue's mutex is not in the lock-order table.
type Rogue struct {
	mu sync.Mutex // want `mutex field lockfix.Rogue.mu is not registered in the lock-order table`
}

// Touch exercises the cross-package blanket effect (see lockfix/b).
func (o *Outer) Touch() {
	o.mu.Lock()
	o.mu.Unlock()
}

// Poke is declared lock-free in the effect table (see lockfix/b).
func (l *Leaf) Poke() {}

// good takes the three classes in declared order.
func good(o *Outer, m *Middle, l *Leaf) {
	o.mu.Lock()
	m.mu.Lock()
	l.mu.Lock()
	l.mu.Unlock()
	m.mu.Unlock()
	o.mu.Unlock()
}

// inverted acquires outermost-last.
func inverted(o *Outer, l *Leaf) {
	l.mu.Lock()
	o.mu.Lock() // want `acquires lockfix.Outer.mu \(rank 910\) while lockfix.Leaf.mu \(rank 930\) may be held`
	o.mu.Unlock()
	l.mu.Unlock()
}

// lockAB and lockBA together are the classic inversion deadlock: two
// goroutines, opposite orders. The declared order ranks Middle before
// Leaf, so lockBA is the offender.
func lockAB(m *Middle, l *Leaf) {
	m.mu.Lock()
	l.mu.Lock()
	l.mu.Unlock()
	m.mu.Unlock()
}

func lockBA(m *Middle, l *Leaf) {
	l.mu.Lock()
	m.mu.Lock() // want `acquires lockfix.Middle.mu \(rank 920\) while lockfix.Leaf.mu \(rank 930\) may be held`
	m.mu.Unlock()
	l.mu.Unlock()
}

// takeMiddle acquires Middle.mu internally; callers must not hold
// anything ranked at or above it.
func takeMiddle(m *Middle) {
	m.mu.Lock()
	m.n++
	m.mu.Unlock()
}

func viaHelper(m *Middle, l *Leaf) {
	l.mu.Lock()
	takeMiddle(m) // want `calls takeMiddle, which may acquire lockfix.Middle.mu \(rank 920\), while lockfix.Leaf.mu \(rank 930\) is held`
	l.mu.Unlock()
}

func viaHelperOK(o *Outer, m *Middle) {
	o.mu.Lock()
	takeMiddle(m)
	o.mu.Unlock()
}

// earlyReturn releases on the branch before acquiring the outer class:
// no violation on any path.
func earlyReturn(o *Outer, l *Leaf, cond bool) {
	l.mu.Lock()
	if cond {
		l.mu.Unlock()
		o.mu.Lock()
		o.mu.Unlock()
		return
	}
	l.mu.Unlock()
}

// reacquire self-deadlocks on one class.
func reacquire(l *Leaf) {
	l.mu.Lock()
	l.mu.Lock() // want `acquires lockfix.Leaf.mu while it may already be held`
	l.mu.Unlock()
	l.mu.Unlock()
}

// statsOrder: the two Middle locks are themselves ordered.
func statsOrder(m *Middle) {
	m.mu.Lock()
	m.statsMu.Lock()
	m.statsMu.Unlock()
	m.mu.Unlock()
}

func statsInverted(m *Middle) {
	m.statsMu.Lock()
	m.mu.Lock() // want `acquires lockfix.Middle.mu \(rank 920\) while lockfix.Middle.statsMu \(rank 924\) may be held`
	m.mu.Unlock()
	m.statsMu.Unlock()
}

// spawns: a new goroutine starts with nothing held, so the inversion
// inside it is not one (and is excluded from spawns' own summary).
func spawns(o *Outer, l *Leaf) {
	l.mu.Lock()
	go func() {
		o.mu.Lock()
		o.mu.Unlock()
	}()
	l.mu.Unlock()
}

// deferred: defer Unlock keeps the lock held; later higher-rank
// acquisitions are fine.
func deferred(m *Middle, l *Leaf) {
	m.mu.Lock()
	defer m.mu.Unlock()
	l.mu.Lock()
	l.mu.Unlock()
}

// waived: the escape hatch.
func waived(o *Outer, l *Leaf) {
	l.mu.Lock()
	o.mu.Lock() //lint:pdm-allow lockorder: fixture exercises the escape hatch
	o.mu.Unlock()
	l.mu.Unlock()
}

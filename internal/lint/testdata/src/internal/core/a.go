package core

import (
	crand "crypto/rand" // want `crypto/rand`
	"math/rand"
	"time"

	"pdmfix/pdm"
)

func seeded(seed int64) int {
	rng := rand.New(rand.NewSource(seed)) // ok: constructors are the sanctioned path
	return rng.Intn(10)                   // ok: method on an explicitly seeded *rand.Rand
}

func global() int {
	rand.Seed(1)       // want `process-global`
	_ = rand.Float64() // want `process-global`
	_ = rand.Perm(4)   // want `process-global`
	return rand.Intn(3) // want `process-global`
}

func clock() int64 {
	t := time.Now()   // want `wall clock`
	_ = time.Since(t) // want `wall clock`
	return t.Unix()
}

func smuggleClock(m *pdm.Machine) {
	m.SetWallClock(time.Now) // want `passed as a value`
	f := time.Since          // want `passed as a value`
	_ = f
}

func fill(b []byte) {
	crand.Read(b)
}

type enc struct{}

func (enc) Encode(v interface{}) error { return nil }

func dumpSorted(e enc, m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m { // ok: keys are collected, sorted elsewhere, then emitted
		keys = append(keys, k)
	}
	sortStrings(keys)
	for _, k := range keys {
		e.Encode(k)
	}
}

func dumpUnsorted(e enc, m map[string]int) {
	for k, v := range m { // want `map iteration order`
		_ = v
		e.Encode(k)
	}
}

func batchFromMap(m *pdm.Machine, dirty map[int]bool) []pdm.Addr {
	var addrs []pdm.Addr
	for d := range dirty { // want `map iteration order`
		addrs = append(addrs, pdm.Addr{Disk: d})
	}
	return addrs
}

func sample(name, labels string, v float64) {}

func scrapeUnsorted(tags map[string]int) {
	for tag, n := range tags { // want `map iteration order`
		sample("pdm_tag_total", tag, float64(n))
	}
}

func sortStrings([]string) {}

package core

import (
	"math/rand"
	"time"
)

// detrand exempts test files: tests may use ambient entropy and clocks.
func inTest() int {
	_ = time.Now()
	return rand.Intn(3)
}

// Package heal exercises the timer half of detrand: the repair
// supervisor and retry policies must pace themselves by modeled
// parallel-I/O steps or health notifications, never by wall time.
package heal

import "time"

func backoffByTimer() {
	time.Sleep(5)            // want `paces a measured path`
	<-time.After(5)          // want `paces a measured path`
	_ = time.Tick(1)         // want `paces a measured path`
	_ = time.NewTimer(1)     // want `paces a measured path`
	_ = time.NewTicker(1)    // want `paces a measured path`
	_ = time.AfterFunc(1, f) // want `paces a measured path`
}

func f() {}

func notifyDriven(wake chan struct{}) {
	<-wake // ok: notification-driven waiting carries no wall clock
}

// Fixture for the guardedby analyzer: sibling guards, cross-type
// guards, RLock/Lock distinction, *Locked helpers, freshness, waivers,
// and annotation-grammar diagnostics.
package guardfix

import "sync"

// Box guards its fields with a sibling RWMutex.
type Box struct {
	mu sync.RWMutex
	n  int    // guarded by mu
	s  string // guarded by mu; trailing prose after a semicolon is fine
}

func (b *Box) Get() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.n
}

func (b *Box) Set(v int) {
	b.mu.Lock()
	b.n = v
	b.mu.Unlock()
}

func (b *Box) badRead() int {
	return b.n // want `reads guardfix.Box.n without holding guardfix.Box.mu`
}

func (b *Box) badWrite(v int) {
	b.n = v // want `writes guardfix.Box.n without holding guardfix.Box.mu`
}

func (b *Box) writeUnderRLock(v int) {
	b.mu.RLock()
	b.n = v // want `writes guardfix.Box.n while holding only a read lock`
	b.mu.RUnlock()
}

// setLocked assumes b.mu is held exclusively.
func (b *Box) setLocked(v int) {
	b.n = v
}

// readLocked assumes b.mu is held (a read hold suffices).
func (b *Box) readLocked() int {
	return b.n
}

// bumpLocked chains through other *Locked helpers; its assumptions are
// the union of theirs.
func (b *Box) bumpLocked() {
	b.setLocked(b.readLocked() + 1)
}

func (b *Box) callsLockedOK(v int) {
	b.mu.Lock()
	b.setLocked(v)
	b.bumpLocked()
	b.mu.Unlock()
}

func (b *Box) callsLockedBad(v int) {
	b.setLocked(v) // want `calls setLocked without holding guardfix.Box.mu exclusively`
}

func (b *Box) callsLockedUnderRLock(v int) {
	b.mu.RLock()
	b.setLocked(v) // want `calls setLocked without holding guardfix.Box.mu exclusively`
	b.readLocked()
	b.mu.RUnlock()
}

func (b *Box) callsBumpBad() {
	b.bumpLocked() // want `calls bumpLocked without holding guardfix.Box.mu exclusively`
}

// NewBox: accesses rooted at a fresh local need no lock.
func NewBox(v int) *Box {
	b := &Box{}
	b.n = v
	b.setLocked(v + 1)
	return b
}

// waived: the escape hatch.
func (b *Box) waived() int {
	return b.n //lint:pdm-allow guardedby: fixture exercises the escape hatch
}

// Owner/Item: rows guarded by another type's mutex.
type Owner struct {
	mu    sync.Mutex
	items []Item
}

type Item struct {
	val int // guarded by Owner.mu
}

func (o *Owner) sum() int {
	total := 0
	o.mu.Lock()
	for i := range o.items {
		total += o.items[i].val
	}
	o.mu.Unlock()
	return total
}

func (o *Owner) badPeek(i int) int {
	return o.items[i].val // want `reads guardfix.Item.val without holding guardfix.Owner.mu`
}

// Bad annotations are themselves diagnosed.
type badAnnot struct {
	x int // guarded by nosuch // want `guard nosuch of this guarded-by comment is not a registered lock class`
	y int // Both guarded by mu. // want `guarded-by comment does not follow the grammar`
	z int // guarded by the mu field // want `guarded-by comment does not follow the grammar`
}

// Mixed atomic/plain access fixture for the guardedby analyzer.
package atomfix

import "sync/atomic"

type Counter struct {
	hits  int64
	total int64
}

func (c *Counter) inc() {
	atomic.AddInt64(&c.hits, 1)
}

func (c *Counter) load() int64 {
	return atomic.LoadInt64(&c.hits)
}

// bad reads hits without atomics: a race against inc.
func (c *Counter) bad() int64 {
	return c.hits // want `plain access to atomfix.Counter.hits, which is also accessed atomically`
}

// alsoPlain is not reported again: one diagnostic per field.
func (c *Counter) alsoPlain() int64 {
	return c.hits
}

// total is plain-only: no diagnostic.
func (c *Counter) sumTotal(v int64) int64 {
	c.total += v
	return c.total
}

// NewCounter: plain initialization of a fresh object is fine.
func NewCounter() *Counter {
	c := &Counter{}
	c.hits = 0
	return c
}

// Package pdmdict is a fixture-sized fake of the public API package:
// the opctx analyzer matches on package name and method names, so this
// is all it needs.
package pdmdict

type Word = uint64

type Op struct{}

type OpCtx struct {
	Op  *Op
	Tag string
}

type inner struct{}

func (in *inner) LookupOp(op *Op, key Word) ([]Word, bool)    { return nil, false }
func (in *inner) InsertOp(op *Op, key Word, sat []Word) error { return nil }
func (in *inner) Lookup(key Word) ([]Word, bool)              { return nil, false }
func (in *inner) Delete(key Word) bool                        { return false }
func (in *inner) LookupTry(key Word) ([]Word, bool, error)    { return nil, false, nil }

// Good is a structure whose entry points thread tokens correctly.
type Good struct{ d *inner }

func (g *Good) MintOp(client, keys int, tag string) OpCtx { return OpCtx{Op: &Op{}, Tag: tag} }

func (g *Good) Lookup(key Word) ([]Word, bool) { return g.LookupCtx(g.MintOp(0, 1, "lookup"), key) }

func (g *Good) LookupCtx(c OpCtx, key Word) ([]Word, bool) { return g.d.LookupOp(c.Op, key) }

func (g *Good) Insert(key Word, sat []Word) error { return g.d.InsertOp(nil, key, sat) }

// unexported entry points are not part of the public surface.
func (g *Good) lookupRaw(key Word) ([]Word, bool) { return g.d.Lookup(key) }

// Contains is not an entry-point name; it rides on Lookup.
func (g *Good) Contains(key Word) bool { _, ok := g.Lookup(key); return ok }

// Bad is a structure that reaches the machine without a token.
type Bad struct{ d *inner }

func (b *Bad) Lookup(key Word) ([]Word, bool) { return b.d.Lookup(key) } // want `neither mints nor propagates`

func (b *Bad) Delete(key Word) bool { return b.d.Delete(key) } // want `neither mints nor propagates`

// Baseline is an intentionally unattributed structure with a waiver.
type Baseline struct{ d *inner }

//lint:pdm-allow opctx: randomized baseline, intentionally unattributed
func (b *Baseline) Lookup(key Word) ([]Word, bool) { return b.d.Lookup(key) }

func (b *Baseline) LookupTry(key Word) ([]Word, bool, error) { return b.d.LookupTry(key) } // want `neither mints nor propagates`

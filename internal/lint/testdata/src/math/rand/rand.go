// Package rand fakes math/rand for the detrand fixtures (the loader
// resolves every import, stdlib paths included, under testdata/src).
package rand

type Source interface{ Int63() int64 }

type Rand struct{}

func New(src Source) *Rand        { return &Rand{} }
func NewSource(seed int64) Source { return nil }

func (r *Rand) Intn(n int) int      { return 0 }
func (r *Rand) Uint64() uint64      { return 0 }
func (r *Rand) Float64() float64    { return 0 }
func (r *Rand) Perm(n int) []int    { return nil }
func (r *Rand) Shuffle(n int, swap func(i, j int)) {}

func Int() int                            { return 0 }
func Intn(n int) int                      { return 0 }
func Uint64() uint64                      { return 0 }
func Float64() float64                    { return 0 }
func Perm(n int) []int                    { return nil }
func Shuffle(n int, swap func(i, j int))  {}
func Seed(seed int64)                     {}

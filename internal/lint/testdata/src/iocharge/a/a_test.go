package a

import "pdmfix/pdm"

// Tests may use the unaccounted accessors freely: that is what they are
// for. No diagnostics expected in this file.
func peekInTest(m *pdm.Machine, a pdm.Addr) []pdm.Word {
	m.VerifyChecksums()
	return m.Peek(a)
}

package a

import "pdmfix/pdm"

func uncharged(m *pdm.Machine, a pdm.Addr) {
	m.Peek(a)                  // want `without charging parallel I/Os`
	m.VerifyChecksums()        // want `without charging parallel I/Os`
	m.BatchRead([]pdm.Addr{a}) // ok: accounted path
	_ = m.BatchRead            // ok: method value, not a call
}

type sink struct {
	addrs []pdm.Addr
	last  pdm.Event
	byTag map[string][]pdm.Addr
}

func (s *sink) Event(e pdm.Event) {
	s.addrs = e.Addrs                              // want `aliases the machine's batch buffer`
	s.last = pdm.Event{Tag: e.Tag, Addrs: e.Addrs} // want `aliases the machine's batch buffer`
	s.byTag[e.Tag] = e.Addrs                       // want `aliases the machine's batch buffer`
	local := e.Addrs                               // ok: local read within the hook call
	_ = local
	s.addrs = append([]pdm.Addr(nil), e.Addrs...) // ok: copied
	for _, a := range e.Addrs {                   // ok: read-only iteration
		_ = a
	}
}

// Fixture for the healthtrans analyzer. The package is named pdm so it
// matches the registered enum {pdm, HealthState}; the hermetic loader
// resolves it at the import path healthfix/pdm.
package pdm

// HealthState mirrors the real enum: four states, registered in
// internal/lint/locktable.go.
type HealthState uint8

const (
	Healthy HealthState = iota
	Suspect
	Failed
	Repairing
)

type diskHealth struct {
	state  HealthState
	streak int
}

type machine struct {
	health      []diskHealth
	transitions int
}

// transitionLocked is the canonical writer; its writes are exempt.
func (m *machine) transitionLocked(d int, to HealthState) {
	if m.health[d].state == to {
		return
	}
	m.health[d].state = to
	m.transitions++
}

// rogue writes the state field directly.
func (m *machine) rogue(d int) {
	m.health[d].state = Failed // want `writes diskHealth.state outside transitionLocked`
}

// construct initializes the field in a keyed literal.
func construct() diskHealth {
	return diskHealth{state: Suspect} // want `initializes diskHealth.state outside transitionLocked`
}

// constructPositional initializes it positionally.
func constructPositional() diskHealth {
	return diskHealth{Failed, 0} // want `initializes diskHealth.state outside transitionLocked`
}

// zeroValue carries no explicit state: the zero value is Healthy by
// construction, not a transition.
func zeroValue() diskHealth {
	return diskHealth{streak: 3}
}

// aliases takes the field's address, which would let writes escape the
// canonical function.
func (m *machine) aliases(d int) *HealthState {
	return &m.health[d].state // want `takes the address of diskHealth.state outside transitionLocked`
}

// reads are unconstrained.
func (m *machine) state(d int) HealthState {
	return m.health[d].state
}

// name covers every state: no diagnostic. A default for corrupt values
// is allowed on top.
func name(s HealthState) string {
	switch s {
	case Healthy:
		return "healthy"
	case Suspect:
		return "suspect"
	case Failed:
		return "failed"
	case Repairing:
		return "repairing"
	default:
		return "?"
	}
}

// partial has a default, which does not excuse the missing states.
func partial(s HealthState) bool {
	switch s { // want `switch over pdm.HealthState does not cover Repairing, Suspect`
	case Healthy, Failed:
		return false
	default:
		return true
	}
}

// untagged switches are condition chains, not state dispatch; exempt.
func serving(s HealthState) bool {
	switch {
	case s == Healthy:
		return true
	default:
		return false
	}
}

// waived: the escape hatch.
func (m *machine) waived(d int) {
	m.health[d].state = Healthy //lint:pdm-allow healthtrans: fixture exercises the escape hatch
}

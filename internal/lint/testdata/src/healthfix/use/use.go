// Cross-package half of the healthtrans fixture: switch exhaustiveness
// is enforced wherever the enum is switched on, not just in its home
// package.
package use

import "healthfix/pdm"

// describe covers every state across multi-constant cases.
func describe(s pdm.HealthState) string {
	switch s {
	case pdm.Healthy, pdm.Suspect:
		return "serving"
	case pdm.Failed, pdm.Repairing:
		return "out"
	}
	return "?"
}

// bad covers only one state.
func bad(s pdm.HealthState) bool {
	switch s { // want `switch over pdm.HealthState does not cover Failed, Healthy, Repairing`
	case pdm.Suspect:
		return true
	}
	return false
}

// Package atomic is the hermetic fixture fake of sync/atomic: the
// guardedby analyzer matches calls by the package path "sync/atomic",
// which is exactly where the loader resolves this file.
package atomic

func AddInt64(addr *int64, delta int64) int64 { *addr += delta; return *addr }
func LoadInt64(addr *int64) int64             { return *addr }
func StoreInt64(addr *int64, val int64)       { *addr = val }

// Package sync is the hermetic fixture fake of the standard sync
// package: just the mutex surface the lockorder/guardedby analyzers
// match on (by package and type NAME, so this fake is equivalent to the
// real thing for analysis).
package sync

// Mutex is the fixture stand-in for sync.Mutex.
type Mutex struct {
	state int32
}

func (m *Mutex) Lock()   { m.state = 1 }
func (m *Mutex) Unlock() { m.state = 0 }

// RWMutex is the fixture stand-in for sync.RWMutex.
type RWMutex struct {
	state int32
}

func (m *RWMutex) Lock()    { m.state = 1 }
func (m *RWMutex) Unlock()  { m.state = 0 }
func (m *RWMutex) RLock()   { m.state++ }
func (m *RWMutex) RUnlock() { m.state-- }

// Package rand fakes crypto/rand; detrand rejects its import outright.
package rand

func Read(b []byte) (int, error) { return len(b), nil }

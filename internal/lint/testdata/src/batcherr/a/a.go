package a

import "pdmfix/pdm"

type dict struct{}

func (dict) LookupTry(k pdm.Word) ([]pdm.Word, bool, error) { return nil, false, nil }
func (dict) ContainsTry(k pdm.Word) (bool, error)           { return false, nil }
func (dict) Lookup(k pdm.Word) ([]pdm.Word, bool)           { return nil, false }

func bad(m *pdm.Machine, d dict, addrs []pdm.Addr) {
	m.TryBatchRead(addrs)      // want `discarded`
	m.TryBatchWrite(nil)       // want `discarded`
	defer m.TryBatchWrite(nil) // want `go/defer`
	go m.TryBatchRead(addrs)   // want `go/defer`

	blocks, _ := m.TryBatchRead(addrs) // want `blank identifier`
	_ = blocks
	sat, ok, _ := d.LookupTry(1) // want `blank identifier`
	_, _ = sat, ok
	has, _ := d.ContainsTry(2) // want `blank identifier`
	_ = has

	d.Lookup(1) // ok: the infallible path has no error to consult
}

func good(m *pdm.Machine, d dict, addrs []pdm.Addr) error {
	if _, err := m.TryBatchRead(addrs); err != nil {
		return err
	}
	if err := m.TryBatchWrite(nil); err != nil {
		return err
	}
	if _, _, err := d.LookupTry(1); err != nil {
		return err
	}
	return m.TryBatchWrite(nil) // ok: the error propagates to the caller
}

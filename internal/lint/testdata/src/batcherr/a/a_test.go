package a

import "pdmfix/pdm"

// batcherr applies to tests too: a degraded-mode test that drops the
// error is not testing degraded mode.
func inTest(m *pdm.Machine) {
	m.TryBatchRead(nil) // want `discarded`
}

// Package time fakes the wall-clock surface detrand rejects.
package time

type Time struct{}

type Duration int64

func Now() Time              { return Time{} }
func Since(t Time) Duration  { return 0 }
func Until(t Time) Duration  { return 0 }
func (t Time) Unix() int64   { return 0 }

// Package time fakes the wall-clock surface detrand rejects.
package time

type Time struct{}

type Duration int64

func Now() Time              { return Time{} }
func Since(t Time) Duration  { return 0 }
func Until(t Time) Duration  { return 0 }
func (t Time) Unix() int64   { return 0 }

type Timer struct{}

type Ticker struct{}

func Sleep(d Duration)                       {}
func After(d Duration) <-chan Time           { return nil }
func Tick(d Duration) <-chan Time            { return nil }
func NewTimer(d Duration) *Timer             { return &Timer{} }
func NewTicker(d Duration) *Ticker           { return &Ticker{} }
func AfterFunc(d Duration, f func()) *Timer  { return &Timer{} }

// Package pdm is a fixture-sized fake of pdmdict/internal/pdm: the
// analyzers match on package name, type names, and method signatures,
// so this is all they need.
package pdm

type Word = uint64

type Addr struct{ Disk, Block int }

type BlockWrite struct {
	Addr Addr
	Data []Word
}

type Event struct {
	Tag    string
	Addrs  []Addr
	Steps  int
	Depth  int
	Span   uint64
	Parent uint64
	Step   int64
}

type Hook interface{ Event(Event) }

type Machine struct{}

func (m *Machine) BatchRead(addrs []Addr) [][]Word             { return nil }
func (m *Machine) BatchWrite(writes []BlockWrite)              {}
func (m *Machine) TryBatchRead(addrs []Addr) ([][]Word, error) { return nil, nil }
func (m *Machine) TryBatchWrite(writes []BlockWrite) error     { return nil }
func (m *Machine) Peek(a Addr) []Word                          { return nil }
func (m *Machine) VerifyChecksums() []Addr                     { return nil }
func (m *Machine) Span(tag string) func()                      { return func() {} }
func (m *Machine) SetWallClock(now any)                        {}

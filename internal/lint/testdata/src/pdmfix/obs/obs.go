// Package obs is a fixture-sized fake of the tag registry: hooktag
// accepts any constant declared in a package named obs.
package obs

const (
	TagLookup = "lookup"
	TagInsert = "insert"
	TagProbe  = "probe"
)

// Package outofscope sits outside the deterministic core
// (internal/{core,pdm,fault,expander,loadbalance,obs}), so detrand
// leaves it alone. No diagnostics expected.
package outofscope

import (
	"math/rand"
	"time"
)

func global() int {
	rand.Seed(1)
	_ = time.Now()
	return rand.Intn(3)
}

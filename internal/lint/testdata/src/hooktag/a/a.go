package a

import (
	"pdmfix/obs"
	"pdmfix/pdm"
)

const localTag = "local"

type wrapped struct {
	m    *pdm.Machine
	span func(tag string) func()
}

func ops(m *pdm.Machine, w *wrapped) {
	defer m.Span(obs.TagLookup)() // ok: registry constant
	defer m.Span("lookup")()      // want `internal/obs tag registry`
	defer m.Span(localTag)()      // want `internal/obs tag registry`
	defer w.span(obs.TagInsert)() // ok: registry constant through a field
	defer w.span("insert")()      // want `internal/obs tag registry`
}

// Span forwards its own tag parameter: the wrapper pattern is allowed,
// the call sites of the wrapper are checked instead.
func (w *wrapped) Span(tag string) func() { return w.m.Span(tag) }

// leak is not a Span forwarder: routing a free-form string into the
// machine opens an unregistered accounting bucket.
func leak(m *pdm.Machine, tag string) func() {
	return m.Span(tag) // want `internal/obs tag registry`
}

func dynamic(m *pdm.Machine, e pdm.Event) {
	end := m.Span(e.Tag) // want `internal/obs tag registry`
	end()
}

// synth builds pdm.Event values directly — the second emission point.
// Minting a fresh tag spelling inline leaks an accounting bucket;
// forwarding an existing tag (a field, a parameter) is fine.
func synth(h pdm.Hook, e pdm.Event, tag string) {
	h.Event(pdm.Event{Tag: "fault.bogus"}) // want `Event.Tag spelled inline`
	h.Event(pdm.Event{Tag: localTag})      // want `Event.Tag spelled inline`
	h.Event(pdm.Event{Tag: obs.TagProbe})  // ok: registry constant
	h.Event(pdm.Event{Tag: e.Tag})         // ok: forwards a recorded tag
	h.Event(pdm.Event{Tag: tag, Steps: 1}) // ok: dynamic tag from the caller
	h.Event(pdm.Event{Steps: 2, Depth: 1}) // ok: no Tag field at all
}

package a

import (
	"pdmfix/obs"
	"pdmfix/pdm"
)

const localTag = "local"

type wrapped struct {
	m    *pdm.Machine
	span func(tag string) func()
}

func ops(m *pdm.Machine, w *wrapped) {
	defer m.Span(obs.TagLookup)() // ok: registry constant
	defer m.Span("lookup")()      // want `internal/obs tag registry`
	defer m.Span(localTag)()      // want `internal/obs tag registry`
	defer w.span(obs.TagInsert)() // ok: registry constant through a field
	defer w.span("insert")()      // want `internal/obs tag registry`
}

// Span forwards its own tag parameter: the wrapper pattern is allowed,
// the call sites of the wrapper are checked instead.
func (w *wrapped) Span(tag string) func() { return w.m.Span(tag) }

// leak is not a Span forwarder: routing a free-form string into the
// machine opens an unregistered accounting bucket.
func leak(m *pdm.Machine, tag string) func() {
	return m.Span(tag) // want `internal/obs tag registry`
}

func dynamic(m *pdm.Machine, e pdm.Event) {
	end := m.Span(e.Tag) // want `internal/obs tag registry`
	end()
}

package a

import "pdmfix/pdm"

// hooktag exempts test files: tests probe the span machinery with
// throwaway tags.
func tagInTest(m *pdm.Machine) {
	defer m.Span("anything-goes")()
}

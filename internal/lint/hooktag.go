package lint

import (
	"go/ast"
	"go/types"
)

// HookTag enforces the tag partition property: every span tag passed to
// a Span method (pdm.Machine.Span, the cache and B-tree forwarders, or
// a span-valued field) must reference a constant declared in the
// internal/obs tag registry. A literal string would open an accounting
// bucket outside the registered set — a typo splits one phase's I/O
// across two buckets and no report notices. The machine's own package
// (pdm) is exempt: it synthesizes composite and fault tags, and the
// registry test pins those spellings. A method that is itself named
// Span may forward its own tag parameter (that is what a forwarder is).
//
// The same property guards the second emission point: code that builds
// pdm.Event values directly (synthetic events fed to hooks, replayed
// or decoded traces) must not spell the Tag field as a string literal
// or a constant from outside the registry. Forwarding a tag that
// already exists — e.Tag from a decoded line, a variable — is fine;
// minting a fresh spelling inline is how buckets leak.
var HookTag = &Analyzer{
	Name: "hooktag",
	Doc: "span tags must be constants from the internal/obs tag registry, " +
		"so per-tag I/O sums partition the machine's total parallel I/Os",
	Run: runHookTag,
}

func runHookTag(pass *Pass) error {
	if pass.Pkg.Name() == "pdm" {
		// The machine synthesizes its own tags (span joining, fault.*).
		return nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		inspectWithStack(f, func(n ast.Node, stack []ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if !isSpanCall(pass.Info, n) || len(n.Args) != 1 {
					return true
				}
				arg := ast.Unparen(n.Args[0])
				if isObsConst(pass.Info, arg) {
					return true
				}
				if isSpanForwarder(pass.Info, arg, stack) {
					return true
				}
				pass.Reportf(n.Args[0], "span tag must be a constant from the internal/obs tag registry (obs.Tag*); "+
					"a free-form tag breaks the per-tag partition of total I/O")
			case *ast.CompositeLit:
				checkEventLit(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkEventLit flags pdm.Event composite literals whose Tag field is
// spelled inline — a string literal or a constant declared outside the
// obs registry. Dynamic tags (forwarding e.Tag, a parameter) pass: the
// check is about minting new spellings, not moving existing ones.
func checkEventLit(pass *Pass, lit *ast.CompositeLit) {
	t := pass.Info.TypeOf(lit)
	if t == nil || !isNamed(t, "pdm", "Event") {
		return
	}
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok || key.Name != "Tag" {
			continue
		}
		v := ast.Unparen(kv.Value)
		if isObsConst(pass.Info, v) {
			return
		}
		tv, ok := pass.Info.Types[v]
		if ok && tv.Value != nil { // a compile-time constant not from obs
			pass.Reportf(kv.Value, "Event.Tag spelled inline; use a constant from the internal/obs tag registry (obs.Tag*) "+
				"so synthetic events stay inside the per-tag partition")
		}
		return
	}
}

// isSpanCall reports whether call invokes a span opener: a callee named
// Span (method or function value, e.g. a span field) with signature
// func(string) func().
func isSpanCall(info *types.Info, call *ast.CallExpr) bool {
	var name string
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		name = fun.Name
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	default:
		return false
	}
	if name != "Span" && name != "span" {
		return false
	}
	sig, ok := info.TypeOf(call.Fun).(*types.Signature)
	if !ok || sig.Params().Len() != 1 || sig.Results().Len() != 1 {
		return false
	}
	if basic, ok := sig.Params().At(0).Type().Underlying().(*types.Basic); !ok || basic.Kind() != types.String {
		return false
	}
	res, ok := sig.Results().At(0).Type().Underlying().(*types.Signature)
	return ok && res.Params().Len() == 0 && res.Results().Len() == 0
}

// isObsConst reports whether expr references a constant declared in a
// package named obs (the tag registry).
func isObsConst(info *types.Info, expr ast.Expr) bool {
	var id *ast.Ident
	switch e := expr.(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return false
	}
	c, ok := info.Uses[id].(*types.Const)
	return ok && c.Pkg() != nil && c.Pkg().Name() == "obs"
}

// isSpanForwarder reports whether expr is the tag parameter of an
// enclosing method itself named Span — the wrapper pattern (e.g.
// cache.Cache.Span delegating to the machine).
func isSpanForwarder(info *types.Info, expr ast.Expr, stack []ast.Node) bool {
	id, ok := expr.(*ast.Ident)
	if !ok {
		return false
	}
	fd := enclosingFuncDecl(stack)
	if fd == nil || fd.Name.Name != "Span" || fd.Type.Params == nil {
		return false
	}
	obj := info.Uses[id]
	if obj == nil {
		return false
	}
	for _, field := range fd.Type.Params.List {
		for _, pname := range field.Names {
			if info.Defs[pname] == obj {
				return true
			}
		}
	}
	return false
}

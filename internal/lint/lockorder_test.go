package lint

import "testing"

// TestLockOrder covers the in-package flow analysis: ordered and
// inverted acquisitions (including the lockAB/lockBA deadlock pair),
// interprocedural summaries, early-return release, reacquisition,
// go-statement and defer handling, waivers, and the
// every-mutex-is-registered rule.
func TestLockOrder(t *testing.T) {
	runFixture(t, LockOrder, "lockfix/a")
}

// TestLockOrderCrossPackage covers calls into another package, which
// resolve through the declared effect table: the blanket
// may-acquire-everything default and an explicit lock-free entry.
func TestLockOrderCrossPackage(t *testing.T) {
	runFixture(t, LockOrder, "lockfix/b")
}

package lint

import (
	"go/ast"
	"go/types"
)

// BatchErr enforces that the error result of every fault-aware access
// is consulted. TryBatchRead/TryBatchWrite return a *pdm.BatchError
// whose per-block entries are the only way to know which replicas
// survived; LookupTry/ContainsTry propagate it. Discarding the error —
// as an expression statement, in go/defer, or by assigning it to the
// blank identifier — silently converts degraded-mode operation into
// wrong answers, so it is rejected everywhere, tests included.
var BatchErr = &Analyzer{
	Name: "batcherr",
	Doc: "the error result of TryBatchRead/TryBatchWrite/LookupTry/ContainsTry must be consulted; " +
		"it carries the per-block failures degraded-mode correctness depends on",
	Run: runBatchErr,
}

func runBatchErr(pass *Pass) error {
	for _, f := range pass.Files {
		inspectWithStack(f, func(n ast.Node, stack []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name, ok := faultAwareCall(pass.Info, call)
			if !ok {
				return true
			}
			if len(stack) == 0 {
				return true
			}
			switch parent := stack[len(stack)-1].(type) {
			case *ast.ExprStmt:
				pass.Reportf(call, "result of %s discarded; its error reports per-block failures that must be consulted", name)
			case *ast.GoStmt, *ast.DeferStmt:
				pass.Reportf(call, "result of %s discarded by go/defer; call it in a function that consults the error", name)
			case *ast.AssignStmt:
				// The call is the sole RHS; the error is the last result.
				if len(parent.Rhs) == 1 && parent.Rhs[0] == ast.Expr(call) && len(parent.Lhs) > 1 {
					if id, ok := parent.Lhs[len(parent.Lhs)-1].(*ast.Ident); ok && id.Name == "_" {
						pass.Reportf(call, "error result of %s assigned to blank identifier; consult it (degraded-mode failures arrive there)", name)
					}
				}
			}
			return true
		})
	}
	return nil
}

// faultAwareCall reports whether call invokes one of the fault-aware
// accessors whose trailing error result is load-bearing, returning a
// printable name. TryBatchRead/TryBatchWrite are matched on
// pdm.Machine; LookupTry/ContainsTry on any receiver (several
// dictionaries and interfaces implement them), provided the last result
// is an error.
func faultAwareCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	fn := calleeFunc(info, call)
	if fn == nil {
		return "", false
	}
	switch fn.Name() {
	case "TryBatchRead", "TryBatchWrite":
		if isMethodOn(fn, "pdm", "Machine") {
			return "pdm.Machine." + fn.Name(), true
		}
	case "LookupTry", "ContainsTry":
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Recv() == nil || sig.Results().Len() == 0 {
			return "", false
		}
		last := sig.Results().At(sig.Results().Len() - 1).Type()
		if named, ok := last.(*types.Named); ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil {
			recv := "?"
			if n := recvNamed(fn); n != nil {
				recv = n.Obj().Name()
			}
			return recv + "." + fn.Name(), true
		}
	}
	return "", false
}

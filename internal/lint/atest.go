package lint

import (
	"go/token"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// atest is this package's miniature analysistest: it loads a fixture
// package from testdata/src/<path>, runs one analyzer over it, and
// compares the surviving diagnostics against `// want "regexp"`
// comments in the fixture source. Each want comment expects, on its own
// line, one diagnostic whose message matches the (quoted) regular
// expression; several expectations may share a line:
//
//	m.Peek(a) // want `bypasses parallel-I/O accounting`
//
// Lines carrying a //lint:pdm-allow waiver expect no diagnostic at all
// (suppression happens before comparison), which is how the escape
// hatch itself is tested.
func runFixture(t *testing.T, a *Analyzer, path string) {
	t.Helper()
	runFixtureSuite(t, []*Analyzer{a}, path)
}

// runFixtureSuite is runFixture over several analyzers at once, for
// fixtures (like the suppression one) whose waivers span rules.
func runFixtureSuite(t *testing.T, suite []*Analyzer, path string) {
	t.Helper()
	loader := NewLoader("testdata/src", "")
	pkg, err := loader.Load(path, true)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", path, err)
	}
	diags, err := Run(pkg.Fset, pkg.Files, pkg.Pkg, pkg.Info, suite)
	if err != nil {
		t.Fatalf("running suite on %s: %v", path, err)
	}

	wants := collectWants(t, pkg)
	got := map[token.Position][]Diagnostic{}
	for _, d := range diags {
		key := token.Position{Filename: d.Pos.Filename, Line: d.Pos.Line}
		got[key] = append(got[key], d)
	}

	for key, res := range wants {
		ds := got[key]
		delete(got, key)
		if len(ds) != len(res) {
			t.Errorf("%s:%d: want %d diagnostic(s), got %d: %v", key.Filename, key.Line, len(res), len(ds), ds)
			continue
		}
		for _, re := range res {
			matched := false
			for _, d := range ds {
				if re.MatchString(d.Message) {
					matched = true
					break
				}
			}
			if !matched {
				t.Errorf("%s:%d: no diagnostic matching %q in %v", key.Filename, key.Line, re, ds)
			}
		}
	}
	for key, ds := range got {
		for _, d := range ds {
			t.Errorf("%s:%d: unexpected diagnostic: %s: %s", key.Filename, key.Line, d.Rule, d.Message)
		}
	}
}

// wantRE extracts the quoted expectations of a want comment: either
// double-quoted or backquoted regexps after the word "want".
var wantRE = regexp.MustCompile("\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`")

// collectWants gathers the want expectations of every fixture file,
// keyed by (filename, line).
func collectWants(t *testing.T, pkg *Package) map[token.Position][]*regexp.Regexp {
	t.Helper()
	wants := map[token.Position][]*regexp.Regexp{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				// An expectation either opens the comment or follows an
				// embedded "// want" (a waiver comment can carry one,
				// since a line holds only a single // comment).
				if !strings.HasPrefix(text, "want ") {
					if j := strings.Index(text, "// want "); j >= 0 {
						text = text[j+len("// "):]
					} else {
						continue
					}
				}
				pos := pkg.Fset.Position(c.Pos())
				key := token.Position{Filename: pos.Filename, Line: pos.Line}
				for _, m := range wantRE.FindAllStringSubmatch(text[len("want "):], -1) {
					expr := m[1]
					if m[2] != "" {
						expr = m[2]
					} else if expr != "" {
						// A double-quoted expectation is a Go string:
						// unescape it before compiling.
						var err error
						expr, err = unquote(expr)
						if err != nil {
							t.Fatalf("%s: bad want string %q: %v", key, m[1], err)
						}
					}
					re, err := regexp.Compile(expr)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", key, expr, err)
					}
					wants[key] = append(wants[key], re)
				}
			}
		}
	}
	return wants
}

// unquote interprets s as the contents of a double-quoted Go string.
func unquote(s string) (string, error) {
	return strconv.Unquote(`"` + s + `"`)
}

package lint

import "testing"

// TestGuardedBy covers sibling and cross-type guards, the
// read-lock/write-lock distinction, transitive *Locked call-site
// obligations, constructor freshness, waivers, and the
// annotation-grammar diagnostics.
func TestGuardedBy(t *testing.T) {
	runFixture(t, GuardedBy, "guardfix/a")
}

// TestGuardedByAtomicMix covers the mixed atomic/plain access check:
// one report per mixed field, none for single-discipline fields or
// fresh objects.
func TestGuardedByAtomicMix(t *testing.T) {
	runFixture(t, GuardedBy, "guardfix/atom")
}

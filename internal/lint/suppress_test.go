package lint

import "testing"

// TestSuppression runs the full suite over a fixture whose waivers
// exercise the //lint:pdm-allow escape hatch: same-line and
// line-above placement, multi-rule lists, and the wrong-rule case
// where the diagnostic must survive.
func TestSuppression(t *testing.T) {
	runFixtureSuite(t, All(), "suppress/a")
}

func TestParseAllow(t *testing.T) {
	cases := []struct {
		text  string
		rules []string
	}{
		{"//lint:pdm-allow iocharge: reason", []string{"iocharge"}},
		{"//lint:pdm-allow batcherr,iocharge: two rules", []string{"batcherr", "iocharge"}},
		{"//lint:pdm-allow detrand, hooktag: spaced list", []string{"detrand", "hooktag"}},
		{"//lint:pdm-allow: no rule named", nil},
		{"// plain comment", nil},
		{"//lint:ignore SA1000 staticcheck syntax", nil},
	}
	for _, c := range cases {
		got := parseAllow(c.text)
		if len(got) != len(c.rules) {
			t.Errorf("parseAllow(%q) = %v, want %v", c.text, got, c.rules)
			continue
		}
		for i := range got {
			if got[i] != c.rules[i] {
				t.Errorf("parseAllow(%q) = %v, want %v", c.text, got, c.rules)
				break
			}
		}
	}
}

package lint

// The lockorder analyzer enforces the repo-wide lock acquisition order
// declared in locktable.go. It computes, for every function in the
// analyzed package, the set of registered lock classes the function may
// acquire (directly or through calls, including *Locked helpers and the
// declared cross-package effects), then walks each function tracking
// which classes may be held at each point. Acquiring a class whose rank
// is not strictly greater than some held class's rank — directly or via
// a call whose summary includes such a class — is a violation of the
// declared partial order; since the table is a linear extension of that
// order, any acquisition cycle among registered classes trips the check
// on at least one of its edges.
//
// The analyzer also keeps the table honest: every sync.Mutex/RWMutex
// struct field in non-test code must be registered, so a new
// lock-bearing type cannot compile into the tree without declaring its
// position in the order.

import (
	"fmt"
	"go/ast"
	"go/types"
)

// LockOrder reports lock acquisitions that violate the declared order.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc: "enforce the declared lock acquisition order: a held lock's rank must be " +
		"strictly below every lock acquired under it, and every mutex struct field " +
		"must be registered in internal/lint/locktable.go",
	Run: runLockOrder,
}

func fmtClass(k lockClassKey) string {
	return fmt.Sprintf("%s.%s.%s", k.Pkg, k.Type, k.Field)
}

func runLockOrder(pass *Pass) error {
	checkLockRegistration(pass)

	sums := computeLockSummaries(pass)
	// worstHeld returns the held class that most violates acquiring k,
	// i.e. the may-held class of maximal rank ≥ rank(k).
	worstHeld := func(k lockClassKey, st *lockState) (lockClassKey, bool) {
		rank := lockRanks[k]
		best, found := lockClassKey{}, false
		for h := range st.may {
			if lockRanks[h] >= rank && (!found || lockRanks[h] > lockRanks[best]) {
				best, found = h, true
			}
		}
		return best, found
	}

	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || pass.IsTestFile(fd) {
				continue
			}
			w := &flowWalker{pass: pass, hooks: flowHooks{
				acquire: func(n ast.Node, k lockClassKey, _ bool, st *lockState) {
					if h, bad := worstHeld(k, st); bad {
						if h == k {
							pass.Reportf(n, "acquires %s while it may already be held (lock order rank %d)",
								fmtClass(k), lockRanks[k])
							return
						}
						pass.Reportf(n, "acquires %s (rank %d) while %s (rank %d) may be held, violating the declared lock order in internal/lint/locktable.go",
							fmtClass(k), lockRanks[k], fmtClass(h), lockRanks[h])
					}
				},
				call: func(call *ast.CallExpr, fn *types.Func, st *lockState) {
					if len(st.may) == 0 {
						return
					}
					for _, a := range effectOfCallee(fn, sums) {
						if h, bad := worstHeld(a, st); bad {
							pass.Reportf(call, "calls %s, which may acquire %s (rank %d), while %s (rank %d) is held — declared lock order in internal/lint/locktable.go",
								fn.Name(), fmtClass(a), lockRanks[a], fmtClass(h), lockRanks[h])
						}
					}
				},
			}}
			w.walkFunc(fd.Body, newLockState())
		}
	}
	return nil
}

// checkLockRegistration reports mutex struct fields missing from the
// lock-order table.
func checkLockRegistration(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok || pass.IsTestFile(ts) {
				return true
			}
			for _, field := range st.Fields.List {
				t := pass.Info.TypeOf(field.Type)
				if !isNamed(t, "sync", "Mutex") && !isNamed(t, "sync", "RWMutex") {
					continue
				}
				if len(field.Names) == 0 {
					pass.Reportf(field, "embedded %s in %s is not supported by the lock-order analysis; use a named field registered in internal/lint/locktable.go",
						t, ts.Name.Name)
					continue
				}
				for _, name := range field.Names {
					k := lockClassKey{pass.Pkg.Name(), ts.Name.Name, name.Name}
					if _, ok := lockRanks[k]; !ok {
						pass.Reportf(name, "mutex field %s is not registered in the lock-order table; declare its rank in internal/lint/locktable.go",
							fmtClass(k))
					}
				}
			}
			return true
		})
	}
}

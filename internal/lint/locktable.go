package lint

// This file is the single machine-readable declaration of the repo's
// concurrency contracts: the lock acquisition order (consumed by the
// lockorder analyzer), the effect summaries for calls that cross
// package boundaries, the lock-free exemptions, and the health-enum
// registry (consumed by healthtrans). A new lock-bearing type — a
// cluster node, a resharding planner — must register its position here
// before the tree vets clean: lockorder reports any sync.Mutex or
// sync.RWMutex struct field whose (package, type, field) triple is not
// declared below.
//
// The declared order is a linear extension of the partial order the
// code relies on:
//
//	pdmdict wrappers → core.Dict → dictionary structures → BasicDict
//	→ machine fault lock → injector locks → shards → health → emission
//	→ hook sinks → repair supervisor
//
// Acquiring a class of strictly higher rank while holding a lower one
// is always safe; acquiring an equal-or-lower rank while any
// higher-or-equal rank is held is a violation (and, transitively, any
// cycle among registered classes violates some edge of the order).

// lockClass declares one lock's position in the repo-wide order.
// Classes are matched by package name, receiver type name, and mutex
// field name — the same name-based matching the other analyzers use, so
// hermetic fixtures can declare fixture-local classes.
type lockClass struct {
	Pkg   string // package name declaring the type
	Type  string // named struct type carrying the mutex field
	Field string // the sync.Mutex / sync.RWMutex field
	Rank  int    // acquisition order: strictly increasing along any hold chain
}

// lockOrder is the declared partial order (as a linear extension).
// Ranks are spaced so future classes can be slotted without renumbering.
var lockOrder = []lockClass{
	// Public wrappers: outermost. SyncDict serializes a whole Dictionary.
	{Pkg: "pdmdict", Type: "SyncDict", Field: "mu", Rank: 10},

	// The group-commit scheduler sits between the wrappers and the
	// structures: its admission lock may be held while a SyncDict read
	// lock is held (a wrapped Scheduled), and is ALWAYS released before
	// the dispatcher calls into a Backend (core, rank ≥ 20) — the
	// analyzer verifies that by the increasing ranks. The intent log's
	// lock nests inside the dispatch path, also outside the admission
	// lock.
	{Pkg: "sched", Type: "Scheduler", Field: "mu", Rank: 14},
	{Pkg: "sched", Type: "IntentLog", Field: "mu", Rank: 16},

	// The rebuild wrapper: holds its lock across calls into both the
	// draining and the filling structure.
	{Pkg: "core", Type: "Dict", Field: "mu", Rank: 20},
	{Pkg: "core", Type: "Dict", Field: "statsMu", Rank: 24},

	// Dictionary structures. The composite structures (one-probe,
	// cascade) may call into their membership BasicDict while holding
	// their own lock, so BasicDict ranks after them.
	{Pkg: "core", Type: "OneProbeDict", Field: "mu", Rank: 30},
	{Pkg: "core", Type: "DynamicDict", Field: "mu", Rank: 30},
	{Pkg: "core", Type: "BasicDict", Field: "mu", Rank: 34},

	// The machine. faultMu is taken first (drawFaults precedes shard
	// work); a fault injector consulted under it may take its own locks
	// and reach back only for the shard-level oracles (FlipBit,
	// BlockClean), so the injector classes sit between faultMu and the
	// shards. healthMu and emitMu are leaves taken after all shard work.
	{Pkg: "pdm", Type: "Machine", Field: "faultMu", Rank: 40},
	{Pkg: "fault", Type: "Schedule", Field: "mu", Rank: 44},
	{Pkg: "fault", Type: "Plan", Field: "mu", Rank: 48},
	{Pkg: "pdm", Type: "shard", Field: "mu", Rank: 50},
	{Pkg: "pdm", Type: "Machine", Field: "healthMu", Rank: 54},
	{Pkg: "pdm", Type: "Machine", Field: "emitMu", Rank: 58},

	// Hook sinks: run inside the machine's emission lock, so their locks
	// rank after emitMu. A sink must never call back into the machine —
	// every Machine method ranks below 62, so any such call is reported.
	{Pkg: "obs", Type: "Collector", Field: "mu", Rank: 62},
	{Pkg: "obs", Type: "Ring", Field: "mu", Rank: 62},
	{Pkg: "obs", Type: "JSONLWriter", Field: "mu", Rank: 62},
	{Pkg: "obs", Type: "OpAccountant", Field: "mu", Rank: 62},
	// Monitor wraps the other sinks but releases its own lock before
	// forwarding downstream, so the equal rank is never held-across.
	{Pkg: "obs", Type: "Monitor", Field: "mu", Rank: 62},

	// The repair supervisor's bookkeeping lock is a leaf: it is never
	// held across calls into the dictionary or the machine.
	{Pkg: "heal", Type: "Supervisor", Field: "mu", Rank: 70},

	// Fixture classes (testdata/src): hermetic analyzer tests declare
	// their order here, in a rank band no real class uses.
	{Pkg: "lockfix", Type: "Outer", Field: "mu", Rank: 910},
	{Pkg: "lockfix", Type: "Middle", Field: "mu", Rank: 920},
	{Pkg: "lockfix", Type: "Middle", Field: "statsMu", Rank: 924},
	{Pkg: "lockfix", Type: "Leaf", Field: "mu", Rank: 930},
	{Pkg: "lockfixb", Type: "Client", Field: "mu", Rank: 950},
	{Pkg: "guardfix", Type: "Owner", Field: "mu", Rank: 955},
	{Pkg: "guardfix", Type: "Box", Field: "mu", Rank: 960},
	{Pkg: "unusedfix", Type: "Pad", Field: "mu", Rank: 970},
	{Pkg: "unusedfix", Type: "Pad2", Field: "mu", Rank: 975},
}

// lockClassKey identifies a registered class.
type lockClassKey struct {
	Pkg, Type, Field string
}

// lockRanks indexes lockOrder by class key.
var lockRanks = func() map[lockClassKey]int {
	m := make(map[lockClassKey]int, len(lockOrder))
	for _, c := range lockOrder {
		m[lockClassKey{c.Pkg, c.Type, c.Field}] = c.Rank
	}
	return m
}()

// methodEffect declares what a call that the analyzer cannot see into —
// a method in another package, or an interface method — may acquire.
// Method "*" covers every method of the type not declared explicitly.
// An empty Classes list declares the method lock-free (it acquires
// nothing), which is how atomic-only accessors that injectors and hook
// sinks are allowed to call are exempted.
type methodEffect struct {
	Pkg, Type, Method string
	Classes           []lockClassKey
}

// classesOf returns every registered class declared for (pkg, type).
func classesOf(pkg, typ string) []lockClassKey {
	var out []lockClassKey
	for _, c := range lockOrder {
		if c.Pkg == pkg && c.Type == typ {
			out = append(out, lockClassKey{c.Pkg, c.Type, c.Field})
		}
	}
	return out
}

// lockEffects is the cross-package call model. Calls resolved within
// the analyzed package use computed summaries instead; a cross-package
// call to a method on a registered type defaults to "may acquire every
// class of its type" unless overridden here; a cross-package call to
// anything unregistered is assumed lock-free.
var lockEffects = []methodEffect{
	// Machine methods that are single atomic loads/stores by contract:
	// fault injectors (under faultMu and their own locks) and hook sinks
	// are documented callers.
	{Pkg: "pdm", Type: "Machine", Method: "StepCount", Classes: nil},
	{Pkg: "pdm", Type: "Machine", Method: "AllDisksHealthy", Classes: nil},
	{Pkg: "pdm", Type: "Machine", Method: "Degraded", Classes: nil},
	{Pkg: "pdm", Type: "Machine", Method: "FaultCount", Classes: nil},
	{Pkg: "pdm", Type: "Machine", Method: "NoteRetry", Classes: nil},
	{Pkg: "pdm", Type: "Machine", Method: "NoteHedges", Classes: nil},
	{Pkg: "pdm", Type: "Machine", Method: "NoteRepairChunk", Classes: nil},
	{Pkg: "pdm", Type: "Machine", Method: "Config", Classes: nil},
	{Pkg: "pdm", Type: "Machine", Method: "D", Classes: nil},
	{Pkg: "pdm", Type: "Machine", Method: "B", Classes: nil},
	{Pkg: "pdm", Type: "Machine", Method: "Stats", Classes: nil},
	{Pkg: "pdm", Type: "Machine", Method: "NewOp", Classes: nil},
	// The chaos-schedule oracles: shard-level only, safe under the
	// injector locks (44/48 < 50).
	{Pkg: "pdm", Type: "Machine", Method: "FlipBit",
		Classes: []lockClassKey{{"pdm", "shard", "mu"}}},
	{Pkg: "pdm", Type: "Machine", Method: "BlockClean",
		Classes: []lockClassKey{{"pdm", "shard", "mu"}}},
	// Everything else on the machine: assume the full set (default rule
	// would apply anyway; declared for visibility).
	{Pkg: "pdm", Type: "Machine", Method: "*", Classes: append(
		classesOf("pdm", "Machine"), lockClassKey{"pdm", "shard", "mu"})},

	// A hook sink runs under emitMu and may take its own sink lock.
	{Pkg: "pdm", Type: "Hook", Method: "Event",
		Classes: []lockClassKey{{"obs", "Collector", "mu"}, {"obs", "Monitor", "mu"}}},

	// The repair supervisor's wake nudge is a non-blocking channel send:
	// lock-free by contract, so an AlertListener may call it from inside
	// a hook dispatch.
	{Pkg: "heal", Type: "Supervisor", Method: "Wake", Classes: nil},
	// A fault injector runs under faultMu and may take the injector locks.
	{Pkg: "pdm", Type: "FaultInjector", Method: "Access",
		Classes: []lockClassKey{{"fault", "Schedule", "mu"}, {"fault", "Plan", "mu"}}},

	// The public Dictionary interfaces dispatch into core.Dict (or a
	// structure — possibly through a Scheduled, which takes the
	// scheduler's admission and intent-log locks first): callers must
	// hold nothing at rank ≥ 14.
	{Pkg: "pdmdict", Type: "Dictionary", Method: "*",
		Classes: []lockClassKey{{"sched", "Scheduler", "mu"}, {"sched", "IntentLog", "mu"}, {"core", "Dict", "mu"}}},
	{Pkg: "pdmdict", Type: "BatchLookuper", Method: "*",
		Classes: []lockClassKey{{"sched", "Scheduler", "mu"}, {"sched", "IntentLog", "mu"}, {"core", "Dict", "mu"}}},
	{Pkg: "pdmdict", Type: "Hooked", Method: "*",
		Classes: []lockClassKey{{"sched", "Scheduler", "mu"}, {"sched", "IntentLog", "mu"}, {"core", "Dict", "mu"}}},

	// The scheduler's Backend interface dispatches into the dictionary
	// structures; the dispatcher holds no scheduler lock at these call
	// sites (ranks 20+ > 16 would flag a violation if it did).
	{Pkg: "sched", Type: "Backend", Method: "*",
		Classes: []lockClassKey{{"core", "Dict", "mu"}, {"core", "Dict", "statsMu"},
			{"core", "OneProbeDict", "mu"}, {"core", "DynamicDict", "mu"}, {"core", "BasicDict", "mu"}}},
	// Scheduler entry points take the admission lock, then — with it
	// released — the intent log's lock and the Backend's locks.
	{Pkg: "sched", Type: "Scheduler", Method: "*",
		Classes: []lockClassKey{{"sched", "Scheduler", "mu"}, {"sched", "IntentLog", "mu"},
			{"core", "Dict", "mu"}, {"core", "Dict", "statsMu"},
			{"core", "OneProbeDict", "mu"}, {"core", "DynamicDict", "mu"}, {"core", "BasicDict", "mu"}}},

	// The rebuild wrapper's structures: any rebuildable method may take
	// its structure lock (and, through it, the membership BasicDict's).
	{Pkg: "core", Type: "rebuildable", Method: "*",
		Classes: []lockClassKey{{"core", "OneProbeDict", "mu"}, {"core", "BasicDict", "mu"}}},

	// The repair supervisor's target dictionary: repairs and scrubs
	// lock the structure they rebuild.
	{Pkg: "heal", Type: "Target", Method: "*",
		Classes: []lockClassKey{{"core", "Dict", "mu"}}},

	// Fixture effects (testdata/src/lockfix).
	{Pkg: "lockfix", Type: "Leaf", Method: "Poke", Classes: nil},
}

// effectFor resolves the declared effect of a cross-package (or
// interface) call to pkg.Type.Method: the explicit entry if one exists,
// the type's "*" entry otherwise, and finally — for registered types —
// every class of the type. Unregistered callees are assumed lock-free.
func effectFor(pkg, typ, method string) []lockClassKey {
	var star *methodEffect
	for i := range lockEffects {
		e := &lockEffects[i]
		if e.Pkg != pkg || e.Type != typ {
			continue
		}
		if e.Method == method {
			return e.Classes
		}
		if e.Method == "*" {
			star = e
		}
	}
	if star != nil {
		return star.Classes
	}
	return classesOf(pkg, typ)
}

// healthEnum registers one state enum for the healthtrans analyzer:
// every switch over the enum must cover all of its constants, and the
// authoritative state field may only be written inside the canonical
// transition function.
type healthEnum struct {
	Pkg       string   // package name declaring the enum
	Enum      string   // enum type name
	Constants []string // the complete constant set, in declaration order
	// StateStruct.StateField is the authoritative tracker field; writes
	// to it anywhere but Canonical are reported. Report/copy structs
	// carrying the enum (DiskHealth.State) are unconstrained.
	StateStruct string
	StateField  string
	Canonical   []string // function names allowed to write the state field
}

// healthEnums is the registry. The disk health state machine is the
// only state enum with a canonical-transition contract today; cluster
// membership states would register here.
var healthEnums = []healthEnum{
	{
		Pkg:         "pdm",
		Enum:        "HealthState",
		Constants:   []string{"Healthy", "Suspect", "Failed", "Repairing"},
		StateStruct: "diskHealth",
		StateField:  "state",
		Canonical:   []string{"transitionLocked"},
	},
}

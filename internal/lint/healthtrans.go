package lint

// The healthtrans analyzer enforces the two contracts of the disk
// health state machine (and any future state enum registered in
// locktable.go's healthEnums):
//
//  1. The authoritative state field is written only inside the
//     canonical transition function — everything else must call it, so
//     the transition count and the unhealthy-disk counter can never
//     drift from the states they summarize.
//  2. Every switch over the state enum covers every state: adding a
//     state (say, Draining) fails the vet on each switch that has not
//     decided what the new state means, instead of silently falling
//     through a default.

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// HealthTrans reports rogue health-state writes and non-exhaustive
// switches over registered state enums.
var HealthTrans = &Analyzer{
	Name: "healthtrans",
	Doc: "health-state discipline: the per-disk state field is written only by the " +
		"canonical transition function, and every switch over a registered state " +
		"enum must cover all of its states",
	Run: runHealthTrans,
}

func runHealthTrans(pass *Pass) error {
	for _, e := range healthEnums {
		checkEnumSwitches(pass, e)
		if pass.Pkg.Name() == e.Pkg {
			checkStateWrites(pass, e)
		}
	}
	return nil
}

// isStateField reports whether sel selects the enum's authoritative
// state field (StateStruct.StateField).
func isStateField(pass *Pass, e healthEnum, sel *ast.SelectorExpr) bool {
	if sel.Sel.Name != e.StateField {
		return false
	}
	return isNamed(pass.Info.TypeOf(sel.X), e.Pkg, e.StateStruct)
}

// checkStateWrites reports every write (or address-taking) of the state
// field outside the canonical transition functions.
func checkStateWrites(pass *Pass, e healthEnum) {
	canonical := func(stack []ast.Node) bool {
		fd := enclosingFuncDecl(stack)
		if fd == nil {
			return false
		}
		for _, name := range e.Canonical {
			if fd.Name.Name == name {
				return true
			}
		}
		return false
	}
	report := func(n ast.Node, what string) {
		pass.Reportf(n, "%s %s.%s outside %s; every health transition must flow through it",
			what, e.StateStruct, e.StateField, strings.Join(e.Canonical, "/"))
	}
	for _, f := range pass.Files {
		inspectWithStack(f, func(n ast.Node, stack []ast.Node) bool {
			if pass.IsTestFile(n) {
				return false
			}
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					if sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr); ok && isStateField(pass, e, sel) && !canonical(stack) {
						report(sel, "writes")
					}
				}
			case *ast.IncDecStmt:
				if sel, ok := ast.Unparen(n.X).(*ast.SelectorExpr); ok && isStateField(pass, e, sel) && !canonical(stack) {
					report(sel, "writes")
				}
			case *ast.UnaryExpr:
				if n.Op.String() != "&" {
					return true
				}
				if sel, ok := ast.Unparen(n.X).(*ast.SelectorExpr); ok && isStateField(pass, e, sel) && !canonical(stack) {
					report(sel, "takes the address of")
				}
			case *ast.CompositeLit:
				if !isNamed(pass.Info.TypeOf(n), e.Pkg, e.StateStruct) || canonical(stack) {
					return true
				}
				for i, el := range n.Elts {
					if kv, ok := el.(*ast.KeyValueExpr); ok {
						if id, ok := kv.Key.(*ast.Ident); ok && id.Name == e.StateField {
							report(kv, "initializes")
						}
						continue
					}
					// Positional literal: the i-th field.
					if fieldNameAt(pass, n, i) == e.StateField {
						report(el, "initializes")
					}
				}
			}
			return true
		})
	}
}

// fieldNameAt returns the name of the i-th field of the struct literal's
// type, or "".
func fieldNameAt(pass *Pass, lit *ast.CompositeLit, i int) string {
	named := namedType(pass.Info.TypeOf(lit))
	if named == nil {
		return ""
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok || i >= st.NumFields() {
		return ""
	}
	return st.Field(i).Name()
}

// checkEnumSwitches reports switches over the enum that do not list
// every state. A default clause is allowed (for corrupt values) but
// does not excuse a missing state: the point is that adding a state
// revisits every switch.
func checkEnumSwitches(pass *Pass, e healthEnum) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				return true
			}
			if pass.IsTestFile(n) {
				return false
			}
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			if !isNamed(pass.Info.TypeOf(sw.Tag), e.Pkg, e.Enum) {
				return true
			}
			covered := map[string]bool{}
			for _, c := range sw.Body.List {
				cc, ok := c.(*ast.CaseClause)
				if !ok {
					continue
				}
				for _, expr := range cc.List {
					var id *ast.Ident
					switch x := ast.Unparen(expr).(type) {
					case *ast.Ident:
						id = x
					case *ast.SelectorExpr:
						id = x.Sel
					default:
						continue
					}
					if _, isConst := pass.Info.Uses[id].(*types.Const); isConst {
						covered[id.Name] = true
					}
				}
			}
			var missing []string
			for _, c := range e.Constants {
				if !covered[c] {
					missing = append(missing, c)
				}
			}
			if len(missing) > 0 {
				sort.Strings(missing)
				pass.Reportf(sw, "switch over %s.%s does not cover %s; state switches must be exhaustive",
					e.Pkg, e.Enum, strings.Join(missing, ", "))
			}
			return true
		})
	}
}

package lint

// The guardedby analyzer enforces `// guarded by <field>` annotations
// on struct fields. An annotated field may only be read while the
// guard is held (shared or exclusive) and only be written while it is
// held exclusively, where "held" is established by the same flow
// analysis lockorder uses: a direct Lock/RLock in scope, on every path.
//
// The conventional escape hatch is a *Locked-suffixed function: its own
// guarded accesses are not checked in place — instead the analyzer
// computes which guards the function (transitively) assumes held, and
// enforces them at every call site. Constructors get a freshness
// exemption: accesses rooted at a local the function itself allocated
// need no lock, because no other goroutine can see the object yet.
//
// The analyzer also reports fields accessed both atomically (via
// sync/atomic on &x.f) and non-atomically — a mixed discipline that is
// a data race on at least one side.

import (
	"go/ast"
	"go/types"
	"strings"
)

// GuardedBy reports accesses to guarded struct fields outside a scope
// holding the declared guard.
var GuardedBy = &Analyzer{
	Name: "guardedby",
	Doc: "enforce `// guarded by <field>` struct-field annotations: reads need the " +
		"guard held, writes need it held exclusively, *Locked helpers push the " +
		"obligation to their call sites, and no field may mix atomic and plain access",
	Run: runGuardedBy,
}

// fieldKey identifies one struct field by package, type, and field name.
type fieldKey struct {
	Pkg, Type, Field string
}

func runGuardedBy(pass *Pass) error {
	guards := collectGuards(pass)

	// Transitive lock assumptions of *Locked functions: class → whether
	// an exclusive hold is needed (some access writes under it).
	needs := map[*types.Func]map[lockClassKey]bool{}
	var lockedDecls []*ast.FuncDecl
	var checkDecls []*ast.FuncDecl
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || pass.IsTestFile(fd) {
				continue
			}
			if strings.HasSuffix(fd.Name.Name, "Locked") {
				if fn, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
					needs[fn] = map[lockClassKey]bool{}
					lockedDecls = append(lockedDecls, fd)
					continue
				}
			}
			checkDecls = append(checkDecls, fd)
		}
	}

	c := &gbChecker{pass: pass, guards: guards, needs: needs}
	// Fixpoint over *Locked → *Locked call chains: needs only grow, so
	// iterate until stable (bounded by chains × classes).
	for changed := true; changed; {
		changed = false
		for _, fd := range lockedDecls {
			fn := pass.Info.Defs[fd.Name].(*types.Func)
			if c.checkFunc(fd, needs[fn]) {
				changed = true
			}
		}
	}
	for _, fd := range checkDecls {
		c.checkFunc(fd, nil)
	}

	checkAtomicMix(pass, guards)
	return nil
}

type gbChecker struct {
	pass   *Pass
	guards map[fieldKey]lockClassKey
	needs  map[*types.Func]map[lockClassKey]bool
}

// checkFunc flow-walks one function. With collect non-nil (a *Locked
// function's assumption set) unmet guard obligations are absorbed into
// it and the return value reports growth; with collect nil they are
// reported as diagnostics.
func (c *gbChecker) checkFunc(fd *ast.FuncDecl, collect map[lockClassKey]bool) bool {
	pass := c.pass
	fresh := freshRoots(pass, fd.Body)
	writes := writeTargets(fd.Body)
	changed := false
	absorb := func(class lockClassKey, write bool) {
		old, had := collect[class]
		if !had || (write && !old) {
			collect[class] = old || write
			changed = true
		}
	}

	w := &flowWalker{pass: pass, hooks: flowHooks{
		node: func(n ast.Node, st *lockState) {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return
			}
			v, ok := pass.Info.Uses[sel.Sel].(*types.Var)
			if !ok || !v.IsField() {
				return
			}
			named := namedType(pass.Info.TypeOf(sel.X))
			if named == nil || named.Obj().Pkg() == nil {
				return
			}
			fk := fieldKey{named.Obj().Pkg().Name(), named.Obj().Name(), sel.Sel.Name}
			class, guarded := c.guards[fk]
			if !guarded {
				return
			}
			write := writes[sel]
			if write && st.mustW[class] || !write && st.mustR[class] {
				return
			}
			if isFreshExpr(pass, fresh, sel) {
				return
			}
			if collect != nil {
				absorb(class, write)
				return
			}
			verb := "reads"
			if write {
				verb = "writes"
			}
			if write && st.mustR[class] {
				pass.Reportf(sel, "%s %s.%s.%s while holding only a read lock on %s (field is guarded by %s)",
					verb, fk.Pkg, fk.Type, fk.Field, fmtClass(class), fmtClass(class))
				return
			}
			pass.Reportf(sel, "%s %s.%s.%s without holding %s (field is guarded by it; lock it, or do the access in a *Locked helper)",
				verb, fk.Pkg, fk.Type, fk.Field, fmtClass(class))
		},
		call: func(call *ast.CallExpr, fn *types.Func, st *lockState) {
			n, isLocked := c.needs[fn]
			if !isLocked || len(n) == 0 {
				return
			}
			for class, needW := range n {
				if needW && st.mustW[class] || !needW && st.mustR[class] {
					continue
				}
				if callOnFresh(pass, fresh, call) {
					continue
				}
				if collect != nil {
					absorb(class, needW)
					continue
				}
				req := fmtClass(class)
				if needW {
					req += " exclusively"
				}
				pass.Reportf(call, "calls %s without holding %s, which it assumes held",
					fn.Name(), req)
			}
		},
	}}
	w.walkFunc(fd.Body, newLockState())
	return changed
}

// callOnFresh reports whether a call's receiver or any argument is
// rooted at a freshly allocated local — the constructor shape
// `d := &Dict{}; d.growLocked()` that needs no lock yet.
func callOnFresh(pass *Pass, fresh map[types.Object]bool, call *ast.CallExpr) bool {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && isFreshExpr(pass, fresh, sel.X) {
		return true
	}
	for _, a := range call.Args {
		if isFreshExpr(pass, fresh, a) {
			return true
		}
	}
	return false
}

// writeTargets marks the expressions a function writes through:
// assignment left-hand sides, inc/dec operands, and address-taken
// operands (a passed pointer may be written through).
func writeTargets(body *ast.BlockStmt) map[ast.Expr]bool {
	writes := map[ast.Expr]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				writes[ast.Unparen(lhs)] = true
			}
		case *ast.IncDecStmt:
			writes[ast.Unparen(n.X)] = true
		case *ast.UnaryExpr:
			if n.Op.String() == "&" {
				writes[ast.Unparen(n.X)] = true
			}
		}
		return true
	})
	return writes
}

// guardSpec parses one comment line as a guarded-by annotation.
// It returns the guard spec ("mu" or "Type.mu"), or nearMiss when the
// line mentions a guard without following the documented grammar.
func guardSpec(text string) (spec string, nearMiss bool) {
	t := strings.TrimSpace(strings.TrimPrefix(text, "//"))
	const prefix = "guarded by "
	if !strings.HasPrefix(t, prefix) {
		if strings.Contains(strings.ToLower(t), "guarded by") {
			return "", true
		}
		return "", false
	}
	rest := t[len(prefix):]
	if i := strings.IndexByte(rest, ';'); i >= 0 {
		rest = rest[:i]
	}
	// An embedded "//" ends the annotation (fixture want comments and
	// waivers share the line this way).
	if i := strings.Index(rest, "//"); i >= 0 {
		rest = rest[:i]
	}
	rest = strings.TrimRight(strings.TrimSpace(rest), ".")
	if rest == "" || strings.ContainsAny(rest, " \t") {
		return "", true
	}
	return rest, false
}

// collectGuards parses every struct field's guarded-by annotation,
// reporting malformed comments and guards that do not resolve to a
// registered lock class. Grammar (also in the package doc):
//
//	// guarded by <field>          – sibling mutex field
//	// guarded by <Type>.<field>   – mutex field of another same-package type
//
// with optional trailing prose after a semicolon.
func collectGuards(pass *Pass) map[fieldKey]lockClassKey {
	guards := map[fieldKey]lockClassKey{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok || pass.IsTestFile(ts) {
				return true
			}
			for _, field := range st.Fields.List {
				var lines []*ast.Comment
				if field.Doc != nil {
					lines = append(lines, field.Doc.List...)
				}
				if field.Comment != nil {
					lines = append(lines, field.Comment.List...)
				}
				spec, near := "", false
				for _, cmt := range lines {
					s, nm := guardSpec(cmt.Text)
					if s != "" {
						spec, near = s, false
						break
					}
					near = near || nm
				}
				if near {
					pass.Reportf(field, "guarded-by comment does not follow the grammar; write exactly `// guarded by <field>` or `// guarded by <Type>.<field>` (trailing prose goes after a semicolon)")
					continue
				}
				if spec == "" {
					continue
				}
				class := lockClassKey{Pkg: pass.Pkg.Name()}
				if i := strings.IndexByte(spec, '.'); i >= 0 {
					class.Type, class.Field = spec[:i], spec[i+1:]
				} else {
					class.Type, class.Field = ts.Name.Name, spec
				}
				if _, ok := lockRanks[class]; !ok {
					pass.Reportf(field, "guard %s of this guarded-by comment is not a registered lock class; register it in internal/lint/locktable.go", spec)
					continue
				}
				for _, name := range field.Names {
					guards[fieldKey{pass.Pkg.Name(), ts.Name.Name, name.Name}] = class
				}
			}
			return true
		})
	}
	return guards
}

// checkAtomicMix reports struct fields of the analyzed package that are
// accessed both through sync/atomic (as &x.f) and as plain loads or
// stores.
func checkAtomicMix(pass *Pass, guards map[fieldKey]lockClassKey) {
	atomicArg := map[ast.Expr]bool{}
	firstAtomic := map[fieldKey]ast.Node{}
	resolve := func(sel *ast.SelectorExpr) (fieldKey, bool) {
		v, ok := pass.Info.Uses[sel.Sel].(*types.Var)
		if !ok || !v.IsField() {
			return fieldKey{}, false
		}
		named := namedType(pass.Info.TypeOf(sel.X))
		if named == nil || named.Obj().Pkg() != pass.Pkg {
			return fieldKey{}, false
		}
		return fieldKey{named.Obj().Pkg().Name(), named.Obj().Name(), sel.Sel.Name}, true
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || pass.IsTestFile(n) {
				return true
			}
			fn := calleeFunc(pass.Info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
				return true
			}
			for _, a := range call.Args {
				u, ok := ast.Unparen(a).(*ast.UnaryExpr)
				if !ok || u.Op.String() != "&" {
					continue
				}
				sel, ok := ast.Unparen(u.X).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				atomicArg[sel] = true
				if fk, ok := resolve(sel); ok {
					if _, seen := firstAtomic[fk]; !seen {
						firstAtomic[fk] = sel
					}
				}
			}
			return true
		})
	}
	if len(firstAtomic) == 0 {
		return
	}
	reported := map[fieldKey]bool{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || pass.IsTestFile(fd) {
				continue
			}
			fresh := freshRoots(pass, fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok || atomicArg[sel] {
					return true
				}
				fk, ok := resolve(sel)
				if !ok || reported[fk] {
					return true
				}
				at, mixed := firstAtomic[fk]
				if !mixed || isFreshExpr(pass, fresh, sel) {
					return true
				}
				reported[fk] = true
				pass.Reportf(sel, "plain access to %s.%s.%s, which is also accessed atomically (e.g. %s); a field must use one discipline",
					fk.Pkg, fk.Type, fk.Field, pass.Fset.Position(at.Pos()))
				return true
			})
		}
	}
}

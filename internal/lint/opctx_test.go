package lint

import "testing"

func TestOpCtx(t *testing.T) {
	runFixture(t, OpCtxRule, "opctx/a")
}

package lint

import "testing"

func TestIOCharge(t *testing.T) {
	runFixture(t, IOCharge, "iocharge/a")
}

package lint

import "testing"

func TestBatchErr(t *testing.T) {
	runFixture(t, BatchErr, "batcherr/a")
}

package lint

import (
	"go/ast"
	"strings"
)

// OpCtx enforces the token-threading invariant of the public API: every
// exported dictionary entry point in package pdmdict whose name starts
// with Lookup, Insert, or Delete must either mint an operation token
// (call MintOp) or propagate one (call a method whose name ends in Op
// or Ctx). An entry point that reaches the machine without a token
// produces unattributed batches, and the per-operation accounting —
// exact by construction everywhere else — silently develops a blind
// spot that no report notices. Structures that intentionally stay
// unattributed (the randomized baselines, the fault-aware Try paths)
// carry explicit //lint:pdm-allow opctx waivers, so the exemption is
// visible at the declaration.
var OpCtxRule = &Analyzer{
	Name: "opctx",
	Doc: "public dictionary entry points must mint or propagate an operation " +
		"token (OpCtx), so per-operation accounting has no unattributed blind spots",
	Run: runOpCtx,
}

func runOpCtx(pass *Pass) error {
	if pass.Pkg.Name() != "pdmdict" {
		// The invariant binds the public API surface only; internal
		// packages receive tokens as ordinary parameters and are free to
		// pass nil (the documented legacy path).
		return nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			if !isOpEntryName(fd.Name.Name) {
				continue
			}
			// Methods that receive the token are the propagation target,
			// not an entry point; methods on unexported types are not
			// part of the public surface.
			if strings.HasSuffix(fd.Name.Name, "Op") || strings.HasSuffix(fd.Name.Name, "Ctx") {
				continue
			}
			if !exportedRecv(fd) {
				continue
			}
			if bodyThreadsToken(fd.Body) {
				continue
			}
			pass.Reportf(fd.Name, "entry point %s neither mints nor propagates an operation token; "+
				"call MintOp or a *Op/*Ctx method so the operation is accounted (or waive with lint:pdm-allow opctx)",
				fd.Name.Name)
		}
	}
	return nil
}

// exportedRecv reports whether the method's receiver names an exported
// type.
func exportedRecv(fd *ast.FuncDecl) bool {
	if len(fd.Recv.List) == 0 {
		return false
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	id, ok := t.(*ast.Ident)
	return ok && id.IsExported()
}

// isOpEntryName reports whether name is a dictionary operation entry
// point: Lookup*, Insert*, or Delete* (Contains delegates to Lookup and
// is covered transitively).
func isOpEntryName(name string) bool {
	for _, prefix := range []string{"Lookup", "Insert", "Delete"} {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	return false
}

// bodyThreadsToken reports whether the body contains a call that mints
// a token (MintOp) or hands one on (a callee named *Op or *Ctx).
func bodyThreadsToken(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		var name string
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			name = fun.Name
		case *ast.SelectorExpr:
			name = fun.Sel.Name
		default:
			return true
		}
		if name == "MintOp" || strings.HasSuffix(name, "Op") || strings.HasSuffix(name, "Ctx") {
			found = true
			return false
		}
		return true
	})
	return found
}

package lint

import (
	"go/ast"
	"go/types"
)

// calleeFunc resolves the function or method a direct call invokes, or
// nil for indirect calls through function values (which the analyzers
// deliberately do not chase) and conversions.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// recvNamed returns the named type of a method's receiver (through one
// pointer), or nil for package-level functions.
func recvNamed(fn *types.Func) *types.Named {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// isMethodOn reports whether fn is a method on the named type typeName
// declared in a package named pkgName (an interface method counts when
// the interface is declared there).
func isMethodOn(fn *types.Func, pkgName, typeName string) bool {
	named := recvNamed(fn)
	if named == nil {
		return false
	}
	obj := named.Obj()
	return obj.Name() == typeName && obj.Pkg() != nil && obj.Pkg().Name() == pkgName
}

// isPkgFunc reports whether fn is the package-level function pkgPath.name.
func isPkgFunc(fn *types.Func, pkgPath, name string) bool {
	if fn.Name() != name || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// namedType returns the named type of t (through one pointer), or nil.
func namedType(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// isNamed reports whether t is (a pointer to) the named type
// pkgName.typeName.
func isNamed(t types.Type, pkgName, typeName string) bool {
	named := namedType(t)
	if named == nil {
		return false
	}
	obj := named.Obj()
	return obj.Name() == typeName && obj.Pkg() != nil && obj.Pkg().Name() == pkgName
}

// enclosingFuncDecl returns the innermost FuncDecl on the stack, or nil.
// A FuncLit between n and the FuncDecl returns nil: a closure is not the
// declared function itself.
func enclosingFuncDecl(stack []ast.Node) *ast.FuncDecl {
	for i := len(stack) - 1; i >= 0; i-- {
		switch f := stack[i].(type) {
		case *ast.FuncLit:
			return nil
		case *ast.FuncDecl:
			return f
		}
	}
	return nil
}

package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// Loader loads and type-checks packages from a directory tree without
// consulting the network, the build cache, or GOPATH: every import —
// including standard-library paths — must resolve to a directory under
// root. Fixture trees satisfy this by shipping tiny fakes of the
// packages the analyzers match on (pdm, obs, math/rand, time), which
// keeps analyzer tests hermetic and fast. The real repository is
// analyzed through the go-vet unit-checker protocol instead (see
// unitchecker.go), where the toolchain supplies export data.
type Loader struct {
	Fset *token.FileSet

	root   string // filesystem root imports resolve under
	prefix string // optional module path prefix mapped onto root ("" for fixtures)

	pkgs map[string]*types.Package
}

// NewLoader returns a loader resolving imports under root. A non-empty
// prefix maps the module path onto root: with prefix "pdmdict", the
// import "pdmdict/internal/pdm" resolves to root/internal/pdm.
func NewLoader(root, prefix string) *Loader {
	return &Loader{
		Fset:   token.NewFileSet(),
		root:   root,
		prefix: prefix,
		pkgs:   map[string]*types.Package{},
	}
}

// dirFor maps an import path to its directory under root.
func (l *Loader) dirFor(path string) string {
	rel := path
	if l.prefix != "" {
		if path == l.prefix {
			rel = "."
		} else if strings.HasPrefix(path, l.prefix+"/") {
			rel = path[len(l.prefix)+1:]
		}
	}
	return filepath.Join(l.root, filepath.FromSlash(rel))
}

// parseDir parses the package's files in dir, in sorted name order.
// Test files are included only when includeTests is set (dependencies
// never include them).
func (l *Loader) parseDir(dir string, includeTests bool) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") {
			continue
		}
		if !includeTests && strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// Import implements types.Importer for dependency resolution.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	files, err := l.parseDir(l.dirFor(path), false)
	if err != nil {
		return nil, fmt.Errorf("import %q: %w (the loader resolves imports only under %s; fixtures must ship a local fake)", path, err, l.root)
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, l.Fset, files, nil)
	if err != nil {
		return nil, fmt.Errorf("import %q: %w", path, err)
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

// Load type-checks the package at the given import path (resolved under
// root) with full type information, for analysis.
func (l *Loader) Load(path string, includeTests bool) (*Package, error) {
	files, err := l.parseDir(l.dirFor(path), includeTests)
	if err != nil {
		return nil, err
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Instances:  map[*ast.Ident]types.Instance{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, err
	}
	l.pkgs[path] = pkg
	return &Package{Fset: l.Fset, Files: files, Pkg: pkg, Info: info}, nil
}

package lint

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestUnusedWaiver covers stale-waiver detection: a waiver that
// suppresses a finding is kept, one that suppresses nothing is
// reported, one naming a rule outside the running suite is left alone,
// and one naming unusedwaiver itself opts out.
func TestUnusedWaiver(t *testing.T) {
	runFixtureSuite(t, []*Analyzer{LockOrder}, "unusedfix/a")
}

// TestUnusedWaiverJSON pins the -json wire shape for stale-waiver
// diagnostics: they flow through Run like any other rule, so the
// machine-readable output CI archives carries them too.
func TestUnusedWaiverJSON(t *testing.T) {
	loader := NewLoader("testdata/src", "")
	pkg, err := loader.Load("unusedfix/a", true)
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	diags, err := Run(pkg.Fset, pkg.Files, pkg.Pkg, pkg.Info, []*Analyzer{LockOrder})
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}
	var stale *Diagnostic
	for i := range diags {
		if diags[i].Rule == "unusedwaiver" {
			stale = &diags[i]
			break
		}
	}
	if stale == nil {
		t.Fatalf("no unusedwaiver diagnostic in %v", diags)
	}
	out, err := json.Marshal(jsonDiagnostic{
		File:    stale.Pos.Filename,
		Line:    stale.Pos.Line,
		Col:     stale.Pos.Column,
		Rule:    stale.Rule,
		Message: stale.Message,
	})
	if err != nil {
		t.Fatalf("marshaling: %v", err)
	}
	for _, frag := range []string{`"rule":"unusedwaiver"`, `"file":`, `"line":`, `"message":"//lint:pdm-allow`} {
		if !strings.Contains(string(out), frag) {
			t.Errorf("JSON diagnostic %s missing %s", out, frag)
		}
	}
}

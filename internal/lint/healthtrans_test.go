package lint

import "testing"

// TestHealthTrans covers the home-package contract: state writes only
// inside the canonical transition function (assignments, composite
// literals, address-taking), plus switch exhaustiveness and the waiver
// escape hatch.
func TestHealthTrans(t *testing.T) {
	runFixture(t, HealthTrans, "healthfix/pdm")
}

// TestHealthTransSwitchesElsewhere covers switch exhaustiveness in a
// package that merely imports the enum.
func TestHealthTransSwitchesElsewhere(t *testing.T) {
	runFixture(t, HealthTrans, "healthfix/use")
}

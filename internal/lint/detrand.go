package lint

import (
	"go/ast"
	"go/types"
	"regexp"
	"strconv"
)

// DetRand enforces the determinism contract of the measured packages:
// same seed, same workload → byte-identical traces and bit-identical
// repair. In internal/{core,pdm,fault,expander,loadbalance,obs,heal}
// non-test code it rejects (1) the process-global math/rand functions
// (only seeded *rand.Rand generators are allowed — the constructors
// rand.New/NewSource/NewZipf/NewPCG/NewChaCha8 pass), (2) crypto/rand,
// (3) the wall clock (time.Now/Since/Until) — whether called directly
// or passed as a function value (e.g. handing time.Now to the
// machine's SetWallClock from inside a measured package; wall clocks
// are injected from cmd/ and test code only), including the timer
// functions (time.Sleep/After/Tick/NewTimer/NewTicker/AfterFunc) —
// retry backoff and repair pacing must be modeled parallel-I/O steps or
// notification-driven, never wall-time waits — and (4) iteration over a
// map that feeds order-sensitive output: a loop body that emits
// (Encode/Write/Fprintf/...), renders the /metrics exposition
// (sample/histogramSeries), or builds an I/O batch (append of
// pdm.Addr/pdm.BlockWrite elements) observes Go's randomized map
// order, which would leak into traces, snapshots, metrics scrapes, or
// the machine's event stream.
var DetRand = &Analyzer{
	Name: "detrand",
	Doc: "no unseeded randomness, wall clock, or map-ordered serialization in the measured packages; " +
		"determinism claims (same seed, byte-identical trace) depend on it",
	Run: runDetRand,
}

// detRandScope matches the import paths of the packages whose
// determinism the paper's claims depend on.
var detRandScope = regexp.MustCompile(`(^|/)internal/(core|pdm|fault|expander|loadbalance|obs|heal|sched)(/|$)`)

// randConstructors are the math/rand functions that build seeded
// generators rather than drawing from global state.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true,
}

// emitNames are callee names (method or function) that serialize or
// publish whatever order the enclosing loop visits.
var emitNames = map[string]bool{
	"Encode": true, "Marshal": true, "MarshalIndent": true,
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Print": true, "Printf": true, "Println": true,
	"Event": true, "Emit": true, "Record": true,
	// The /metrics exposition helpers (internal/obs/serve.go): scrapes
	// must be byte-identical across runs, like traces.
	"sample": true, "histogramSeries": true,
}

func runDetRand(pass *Pass) error {
	if !detRandScope.MatchString(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		for _, imp := range f.Imports {
			if path, err := strconv.Unquote(imp.Path.Value); err == nil && path == "crypto/rand" {
				pass.Reportf(imp, "crypto/rand is nondeterministic by design; measured packages must thread a seeded *rand.Rand")
			}
		}
		inspectWithStack(f, func(n ast.Node, stack []ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				fn := calleeFunc(pass.Info, n)
				if fn == nil {
					return true
				}
				sig, ok := fn.Type().(*types.Signature)
				if !ok || sig.Recv() != nil || fn.Pkg() == nil {
					return true
				}
				switch fn.Pkg().Path() {
				case "math/rand", "math/rand/v2":
					if !randConstructors[fn.Name()] {
						pass.Reportf(n, "global %s.%s draws from process-global random state; thread a seeded *rand.Rand from config instead",
							fn.Pkg().Name(), fn.Name())
					}
				case "time":
					switch fn.Name() {
					case "Now", "Since", "Until":
						pass.Reportf(n, "time.%s reads the wall clock on a measured path; inject a logical clock or pass timestamps in from outside the measured packages", fn.Name())
					case "Sleep", "After", "Tick", "NewTimer", "NewTicker", "AfterFunc":
						pass.Reportf(n, "time.%s paces a measured path by wall time; backoff and repair pacing must be modeled parallel-I/O steps (pdm.Machine.ChargeSteps) or notification-driven, never timers", fn.Name())
					}
				}
			case *ast.SelectorExpr:
				checkClockValue(pass, n, stack)
			case *ast.RangeStmt:
				checkMapRange(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkClockValue flags time.Now/Since/Until referenced as a function
// value rather than called — the shape of smuggling a wall clock into
// an injection point (SetWallClock and friends) from inside a measured
// package. Direct calls are reported by the CallExpr case instead.
func checkClockValue(pass *Pass, sel *ast.SelectorExpr, stack []ast.Node) {
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
		return
	}
	switch fn.Name() {
	case "Now", "Since", "Until":
	default:
		return
	}
	// Skip the Fun position of a direct call — already reported above.
	if len(stack) > 0 {
		if call, ok := stack[len(stack)-1].(*ast.CallExpr); ok && ast.Unparen(call.Fun) == sel {
			return
		}
	}
	pass.Reportf(sel, "time.%s passed as a value hands a wall clock to a measured path; clocks are injected from cmd/ or test code only", fn.Name())
}

// checkMapRange flags a range over a map whose body feeds
// order-sensitive output.
func checkMapRange(pass *Pass, rng *ast.RangeStmt) {
	t := pass.Info.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	var sink string
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if sink != "" {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			if fun.Name == "append" && appendsAddrBatch(pass.Info, call) {
				sink = "an I/O batch (pdm.Addr/pdm.BlockWrite order reaches the trace)"
			} else if emitNames[fun.Name] {
				sink = fun.Name
			}
		case *ast.SelectorExpr:
			if emitNames[fun.Sel.Name] {
				sink = fun.Sel.Name
			}
		}
		return true
	})
	if sink != "" {
		pass.Reportf(rng, "map iteration order is randomized but this loop feeds %s; collect and sort the keys first so output is byte-identical across runs", sink)
	}
}

// appendsAddrBatch reports whether an append call grows a slice of
// pdm.Addr or pdm.BlockWrite — the batch shapes whose order the machine
// charges and traces.
func appendsAddrBatch(info *types.Info, call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return false
	}
	t := info.TypeOf(call.Args[0])
	if t == nil {
		return false
	}
	slice, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	return isNamed(slice.Elem(), "pdm", "Addr") || isNamed(slice.Elem(), "pdm", "BlockWrite")
}

package lint

import "testing"

func TestDetRandInScope(t *testing.T) {
	runFixture(t, DetRand, "internal/core")
}

func TestDetRandOutOfScope(t *testing.T) {
	runFixture(t, DetRand, "outofscope")
}

func TestDetRandHealTimers(t *testing.T) {
	runFixture(t, DetRand, "internal/heal")
}

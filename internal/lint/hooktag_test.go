package lint

import "testing"

func TestHookTag(t *testing.T) {
	runFixture(t, HookTag, "hooktag/a")
}

package lint

// Shared lock-flow machinery for the lockorder and guardedby analyzers:
// a branch-aware abstract interpreter that tracks which registered lock
// classes are held at each point of a function body, and a per-package
// fixpoint computing which classes each function may acquire
// (transitively, through same-package calls and the declared
// cross-package effects in locktable.go).
//
// Tracking is class-level: two instances of the same type share a lock
// class, so "holds BasicDict.mu" means "holds the mu of SOME BasicDict".
// That is exactly the granularity a lock ORDER needs (instance-level
// cycles within one class are ordered by convention, e.g. disk index),
// and it is what makes the analysis decidable without alias analysis.
// Calls through stored function values are invisible (calleeFunc
// resolves only direct calls); the table's effect entries document the
// contracts those paths rely on.

import (
	"go/ast"
	"go/types"
)

// lockState is the abstract lock-holding state at one program point.
type lockState struct {
	mustR map[lockClassKey]bool // held (shared or exclusive) on every path
	mustW map[lockClassKey]bool // held exclusively on every path
	may   map[lockClassKey]bool // held on at least one path
	dead  bool                  // every path to this point has returned
}

func newLockState() *lockState {
	return &lockState{
		mustR: map[lockClassKey]bool{},
		mustW: map[lockClassKey]bool{},
		may:   map[lockClassKey]bool{},
	}
}

func (s *lockState) clone() *lockState {
	c := newLockState()
	for k := range s.mustR {
		c.mustR[k] = true
	}
	for k := range s.mustW {
		c.mustW[k] = true
	}
	for k := range s.may {
		c.may[k] = true
	}
	c.dead = s.dead
	return c
}

func (s *lockState) acquire(k lockClassKey, exclusive bool) {
	s.mustR[k] = true
	if exclusive {
		s.mustW[k] = true
	}
	s.may[k] = true
}

func (s *lockState) release(k lockClassKey) {
	delete(s.mustR, k)
	delete(s.mustW, k)
	delete(s.may, k)
}

// joinStates merges the states of converging control-flow paths:
// must-sets intersect, may-sets union. Dead paths contribute nothing;
// if every path is dead, the join is dead.
func joinStates(states ...*lockState) *lockState {
	var live []*lockState
	for _, s := range states {
		if s != nil && !s.dead {
			live = append(live, s)
		}
	}
	if len(live) == 0 {
		out := newLockState()
		out.dead = true
		return out
	}
	out := live[0].clone()
	for _, s := range live[1:] {
		for k := range out.mustR {
			if !s.mustR[k] {
				delete(out.mustR, k)
			}
		}
		for k := range out.mustW {
			if !s.mustW[k] {
				delete(out.mustW, k)
			}
		}
		for k := range s.may {
			out.may[k] = true
		}
	}
	return out
}

// mutexOp classifies one sync.Mutex / sync.RWMutex method call.
type mutexOp int

const (
	opNone   mutexOp = iota
	opLock           // Lock: exclusive acquire
	opRLock          // RLock: shared acquire
	opUnlock         // Unlock / RUnlock: release
	opOther          // TryLock, RLocker, ...: ignored (unused in tree)
)

// classifyMutexCall resolves call as a mutex operation on a registered
// lock class. The second result is the class; ok is false when the call
// is not a mutex method at all. A mutex method on an UNREGISTERED
// expression (a local variable, an unregistered field) returns ok with
// an empty class — callers skip state tracking for it (the lockorder
// registration check reports undeclared struct fields separately).
func classifyMutexCall(info *types.Info, call *ast.CallExpr) (mutexOp, lockClassKey, bool) {
	fn := calleeFunc(info, call)
	if fn == nil {
		return opNone, lockClassKey{}, false
	}
	if !isMethodOn(fn, "sync", "Mutex") && !isMethodOn(fn, "sync", "RWMutex") {
		return opNone, lockClassKey{}, false
	}
	var op mutexOp
	switch fn.Name() {
	case "Lock":
		op = opLock
	case "RLock":
		op = opRLock
	case "Unlock", "RUnlock":
		op = opUnlock
	default:
		op = opOther
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return op, lockClassKey{}, true
	}
	k, registered := classOfMutexExpr(info, sel.X)
	if !registered {
		return op, lockClassKey{}, true
	}
	return op, k, true
}

// classOfMutexExpr resolves a mutex-valued expression (the receiver of
// a Lock/Unlock call) to its registered lock class: the expression must
// be a field selector x.f where x's named type T gives a registered
// (T's package, T, f) triple.
func classOfMutexExpr(info *types.Info, e ast.Expr) (lockClassKey, bool) {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return lockClassKey{}, false
	}
	named := namedType(info.TypeOf(sel.X))
	if named == nil || named.Obj().Pkg() == nil {
		return lockClassKey{}, false
	}
	k := lockClassKey{named.Obj().Pkg().Name(), named.Obj().Name(), sel.Sel.Name}
	_, registered := lockRanks[k]
	return k, registered
}

// funcEffects maps each function declared in the analyzed package to
// the set of lock classes it may acquire, directly or transitively.
type funcEffects map[*types.Func]map[lockClassKey]bool

// effectOfCallee resolves what a call to fn may acquire: the computed
// same-package summary when one exists, the declared cross-package
// effect of its receiver type otherwise, and nothing for plain
// functions outside the package (assumed lock-free).
func effectOfCallee(fn *types.Func, sums funcEffects) []lockClassKey {
	if s, ok := sums[fn]; ok {
		out := make([]lockClassKey, 0, len(s))
		for k := range s {
			out = append(out, k)
		}
		return out
	}
	named := recvNamed(fn)
	if named == nil || named.Obj().Pkg() == nil {
		return nil
	}
	return effectFor(named.Obj().Pkg().Name(), named.Obj().Name(), fn.Name())
}

// computeLockSummaries runs the may-acquire fixpoint over every
// function declared in the package. Acquisitions inside `go` statements
// are excluded: a spawned goroutine starts with an empty lock set, so
// its acquisitions are not ordered against the locks its parent holds.
func computeLockSummaries(pass *Pass) funcEffects {
	type raw struct {
		direct map[lockClassKey]bool
		calls  map[*types.Func]bool
	}
	raws := map[*types.Func]*raw{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			r := &raw{direct: map[lockClassKey]bool{}, calls: map[*types.Func]bool{}}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.GoStmt:
					return false
				case *ast.CallExpr:
					op, k, isMutex := classifyMutexCall(pass.Info, n)
					if isMutex {
						if (op == opLock || op == opRLock) && k != (lockClassKey{}) {
							r.direct[k] = true
						}
						return true
					}
					if callee := calleeFunc(pass.Info, n); callee != nil {
						r.calls[callee] = true
					}
				}
				return true
			})
			raws[fn] = r
		}
	}

	sums := funcEffects{}
	for fn, r := range raws {
		s := map[lockClassKey]bool{}
		for k := range r.direct {
			s[k] = true
		}
		sums[fn] = s
	}
	for changed := true; changed; {
		changed = false
		for fn, r := range raws {
			s := sums[fn]
			for callee := range r.calls {
				var eff []lockClassKey
				if cs, ok := sums[callee]; ok {
					for k := range cs {
						eff = append(eff, k)
					}
				} else {
					eff = effectOfCallee(callee, nil)
				}
				for _, k := range eff {
					if !s[k] {
						s[k] = true
						changed = true
					}
				}
			}
		}
	}
	return sums
}

// flowHooks are the analyzer-side callbacks of a flow walk. All hooks
// receive the lock state in force just before the hooked event; states
// are live and must not be retained or mutated.
type flowHooks struct {
	// node fires for every expression node, pre-order.
	node func(n ast.Node, st *lockState)
	// acquire fires at a direct Lock/RLock of a registered class,
	// before the state registers it.
	acquire func(n ast.Node, k lockClassKey, exclusive bool, st *lockState)
	// call fires for every resolved direct call that is not a mutex
	// operation.
	call func(call *ast.CallExpr, fn *types.Func, st *lockState)
}

// flowWalker interprets one function body, threading lockState through
// its control flow. Function literals are walked inline with a copy of
// the current state (the common immediately-invoked / sort.Slice /
// runShards shapes), except under `go`, where the body starts from an
// empty state on its own goroutine. State changes inside a literal are
// discarded: a stored closure's acquisitions belong to its eventual
// caller.
type flowWalker struct {
	pass  *Pass
	hooks flowHooks
}

func (w *flowWalker) walkFunc(body *ast.BlockStmt, entry *lockState) {
	w.stmt(body, entry)
}

// stmtList threads state through a statement sequence; statements after
// a terminated path are still walked (to check their contents) from the
// dead state, which holds no locks on any live path.
func (w *flowWalker) stmtList(list []ast.Stmt, st *lockState) *lockState {
	for _, s := range list {
		st = w.stmt(s, st)
	}
	return st
}

func (w *flowWalker) stmt(s ast.Stmt, st *lockState) *lockState {
	switch s := s.(type) {
	case nil:
		return st
	case *ast.BlockStmt:
		return w.stmtList(s.List, st)
	case *ast.ExprStmt:
		w.expr(s.X, st)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.expr(e, st)
		}
		for _, e := range s.Lhs {
			w.expr(e, st)
		}
	case *ast.IncDecStmt:
		w.expr(s.X, st)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						w.expr(e, st)
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.expr(e, st)
		}
		st.dead = true
	case *ast.BranchStmt:
		// break/continue/goto leave the walked region; the approximation
		// drops their state at the join (fallthrough keeps flowing: its
		// target case is walked from the switch entry state anyway).
		st.dead = true
	case *ast.IfStmt:
		if s.Init != nil {
			st = w.stmt(s.Init, st)
		}
		w.expr(s.Cond, st)
		thenSt := w.stmt(s.Body, st.clone())
		elseSt := st.clone()
		if s.Else != nil {
			elseSt = w.stmt(s.Else, elseSt)
		}
		return joinStates(thenSt, elseSt)
	case *ast.ForStmt:
		if s.Init != nil {
			st = w.stmt(s.Init, st)
		}
		if s.Cond != nil {
			w.expr(s.Cond, st)
		}
		bodySt := w.stmt(s.Body, st.clone())
		if s.Post != nil {
			bodySt = w.stmt(s.Post, bodySt)
		}
		return joinStates(st, bodySt)
	case *ast.RangeStmt:
		w.expr(s.X, st)
		if s.Key != nil {
			w.expr(s.Key, st)
		}
		if s.Value != nil {
			w.expr(s.Value, st)
		}
		bodySt := w.stmt(s.Body, st.clone())
		return joinStates(st, bodySt)
	case *ast.SwitchStmt:
		if s.Init != nil {
			st = w.stmt(s.Init, st)
		}
		if s.Tag != nil {
			w.expr(s.Tag, st)
		}
		return w.caseClauses(s.Body, st)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			st = w.stmt(s.Init, st)
		}
		st = w.stmt(s.Assign, st)
		return w.caseClauses(s.Body, st)
	case *ast.SelectStmt:
		var outs []*lockState
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			cst := st.clone()
			if cc.Comm != nil {
				cst = w.stmt(cc.Comm, cst)
			}
			outs = append(outs, w.stmtList(cc.Body, cst))
		}
		if len(outs) == 0 {
			return st
		}
		return joinStates(outs...)
	case *ast.DeferStmt:
		// A deferred Unlock keeps the lock held to the end of the
		// function: no state change. Other deferred calls run at return
		// time; they are checked against the state at the defer site,
		// the best static stand-in.
		if op, _, isMutex := classifyMutexCall(w.pass.Info, s.Call); isMutex && op == opUnlock {
			if sel, ok := ast.Unparen(s.Call.Fun).(*ast.SelectorExpr); ok {
				w.expr(sel.X, st)
			}
			return st
		}
		w.callExpr(s.Call, st)
	case *ast.GoStmt:
		// The goroutine starts with nothing held: walk its work from an
		// empty state. Arguments are evaluated synchronously, but any
		// locking in them is vanishingly rare; the empty state keeps the
		// goroutine body's own checks meaningful.
		if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
			w.stmt(lit.Body, newLockState())
		}
		for _, a := range s.Call.Args {
			if lit, ok := ast.Unparen(a).(*ast.FuncLit); ok {
				w.stmt(lit.Body, newLockState())
			}
		}
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, st)
	case *ast.SendStmt:
		w.expr(s.Chan, st)
		w.expr(s.Value, st)
	}
	return st
}

// caseClauses walks a switch body: each clause from a copy of the entry
// state, joined with the fall-past state when there is no default.
func (w *flowWalker) caseClauses(body *ast.BlockStmt, st *lockState) *lockState {
	var outs []*lockState
	hasDefault := false
	for _, c := range body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		for _, e := range cc.List {
			w.expr(e, st)
		}
		outs = append(outs, w.stmtList(cc.Body, st.clone()))
	}
	if !hasDefault {
		outs = append(outs, st.clone())
	}
	if len(outs) == 0 {
		return st
	}
	return joinStates(outs...)
}

// expr scans an expression in evaluation order, firing hooks and
// applying mutex operations to st.
func (w *flowWalker) expr(e ast.Expr, st *lockState) {
	if e == nil {
		return
	}
	if w.hooks.node != nil {
		w.hooks.node(e, st)
	}
	switch e := e.(type) {
	case *ast.ParenExpr:
		w.expr(e.X, st)
	case *ast.SelectorExpr:
		w.expr(e.X, st)
	case *ast.CallExpr:
		w.callExpr(e, st)
	case *ast.StarExpr:
		w.expr(e.X, st)
	case *ast.UnaryExpr:
		w.expr(e.X, st)
	case *ast.BinaryExpr:
		w.expr(e.X, st)
		w.expr(e.Y, st)
	case *ast.IndexExpr:
		w.expr(e.X, st)
		w.expr(e.Index, st)
	case *ast.IndexListExpr:
		w.expr(e.X, st)
		for _, i := range e.Indices {
			w.expr(i, st)
		}
	case *ast.SliceExpr:
		w.expr(e.X, st)
		w.expr(e.Low, st)
		w.expr(e.High, st)
		w.expr(e.Max, st)
	case *ast.TypeAssertExpr:
		w.expr(e.X, st)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			w.expr(el, st)
		}
	case *ast.KeyValueExpr:
		w.expr(e.Value, st)
	case *ast.FuncLit:
		// Walked inline under the current state (discarding changes):
		// right for immediately-invoked and call-me-now shapes, an
		// over-approximation for stored closures.
		w.stmt(e.Body, st.clone())
	}
}

// callExpr handles one call: mutex operations update the state; every
// other resolved call fires the call hook.
func (w *flowWalker) callExpr(c *ast.CallExpr, st *lockState) {
	op, k, isMutex := classifyMutexCall(w.pass.Info, c)
	if isMutex {
		if sel, ok := ast.Unparen(c.Fun).(*ast.SelectorExpr); ok {
			w.expr(sel.X, st)
		}
		if k == (lockClassKey{}) {
			return // unregistered mutex: untracked
		}
		switch op {
		case opLock:
			if w.hooks.acquire != nil {
				w.hooks.acquire(c, k, true, st)
			}
			st.acquire(k, true)
		case opRLock:
			if w.hooks.acquire != nil {
				w.hooks.acquire(c, k, false, st)
			}
			st.acquire(k, false)
		case opUnlock:
			st.release(k)
		}
		return
	}
	w.expr(c.Fun, st)
	for _, a := range c.Args {
		w.expr(a, st)
	}
	if fn := calleeFunc(w.pass.Info, c); fn != nil && w.hooks.call != nil {
		w.hooks.call(c, fn, st)
	}
}

// freshRoots collects the local identifiers a function binds to values
// it allocates itself — x := &T{...}, x := T{...}, x := new(T), or
// var x T — before any other goroutine can see them. Accesses rooted at
// a fresh identifier are exempt from lock checks: constructors
// initialize guarded fields of objects nothing else references yet.
func freshRoots(pass *Pass, body *ast.BlockStmt) map[types.Object]bool {
	fresh := map[types.Object]bool{}
	isAlloc := func(e ast.Expr) bool {
		e = ast.Unparen(e)
		if u, ok := e.(*ast.UnaryExpr); ok {
			e = ast.Unparen(u.X)
		}
		switch e := e.(type) {
		case *ast.CompositeLit:
			return true
		case *ast.CallExpr:
			if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && id.Name == "new" {
				_, isBuiltin := pass.Info.Uses[id].(*types.Builtin)
				return isBuiltin
			}
		}
		return false
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || !isAlloc(n.Rhs[i]) {
					continue
				}
				if obj := pass.Info.Defs[id]; obj != nil {
					fresh[obj] = true
				} else if obj := pass.Info.Uses[id]; obj != nil && n.Tok.String() == "=" {
					// Plain re-assignment of a local to a fresh value.
					if _, isVar := obj.(*types.Var); isVar {
						fresh[obj] = true
					}
				}
			}
		case *ast.ValueSpec:
			if len(n.Values) == 0 && n.Type != nil {
				for _, id := range n.Names {
					if obj := pass.Info.Defs[id]; obj != nil {
						fresh[obj] = true
					}
				}
				return true
			}
			for i, id := range n.Names {
				if i < len(n.Values) && isAlloc(n.Values[i]) {
					if obj := pass.Info.Defs[id]; obj != nil {
						fresh[obj] = true
					}
				}
			}
		}
		return true
	})
	return fresh
}

// rootIdent walks to the base identifier of a selector/index/deref
// chain: m.shards[i].blocks → m. Nil when the chain bottoms out in a
// call or literal.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// isFreshExpr reports whether e is rooted at a fresh local.
func isFreshExpr(pass *Pass, fresh map[types.Object]bool, e ast.Expr) bool {
	id := rootIdent(e)
	if id == nil {
		return false
	}
	obj := pass.Info.Uses[id]
	if obj == nil {
		obj = pass.Info.Defs[id]
	}
	return obj != nil && fresh[obj]
}

// Package fault provides the standard deterministic fault injector for
// the parallel-disk machine: a seedable Plan that fail-stops whole
// disks, fails reads transiently with a configured probability, flips
// scheduled bits (latent corruption), and stalls accesses — all
// reproducibly. The same seed, configuration, and access sequence
// produce the same fault decisions, so a workload's JSONL trace
// (including its fault.* events) is bit-for-bit repeatable; that is the
// property the trace-determinism tests pin down.
//
// A Plan implements pdm.FaultInjector. Its Access method is called by
// the machine with the machine's lock held, so it never calls back into
// the machine; it is safe for concurrent use with the mutator methods
// (FailDisk, SetTransient, ...), though reproducibility naturally
// requires the mutations themselves to happen at deterministic points
// of the workload.
package fault

import (
	"sort"
	"sync"

	"pdmdict/internal/pdm"
)

// mix64 is the SplitMix64 finalizer — the same full-avalanche mixer the
// expander family uses. Counter-indexed: decision i of a Plan is a pure
// function of (seed, i).
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// probBits converts a probability in [0,1] to a 64-bit threshold such
// that a uniform uint64 falls below it with that probability.
func probBits(p float64) uint64 {
	switch {
	case p <= 0:
		return 0
	case p >= 1:
		return ^uint64(0)
	default:
		return uint64(p * float64(1<<63) * 2)
	}
}

// Plan is a deterministic fault schedule. The zero value injects
// nothing; configure it with the mutator methods and install it with
// Machine.SetFaultInjector (or pdmdict's SetFaultInjector).
type Plan struct {
	mu   sync.Mutex
	seed uint64
	ctr  uint64 // accesses decided so far; indexes the random stream

	failed map[int]bool // fail-stopped disks

	transientBits uint64 // per-read transient-failure threshold
	writeBits     uint64 // per-write transient-failure threshold

	stallBits  uint64 // per-access stall threshold
	stallSteps int    // extra parallel-I/O steps per stall

	corrupt map[pdm.Addr][]uint // scheduled one-shot bit flips, FIFO per addr
}

// NewPlan returns an empty plan drawing its random stream from seed.
func NewPlan(seed uint64) *Plan {
	return &Plan{seed: seed}
}

// FailDisk marks a disk fail-stopped: every access to it (read or
// write) is denied until HealDisk.
func (p *Plan) FailDisk(disk int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.failed == nil {
		p.failed = make(map[int]bool)
	}
	p.failed[disk] = true
}

// HealDisk clears a disk's fail-stop. The simulator keeps the disk's
// data intact across the outage; use Machine.WipeDisk to model a blank
// replacement drive instead.
func (p *Plan) HealDisk(disk int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.failed, disk)
}

// Failed reports whether a disk is currently fail-stopped.
func (p *Plan) Failed(disk int) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.failed[disk]
}

// FailedDisks returns the fail-stopped disks in ascending order.
func (p *Plan) FailedDisks() []int {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]int, 0, len(p.failed))
	for d := range p.failed {
		out = append(out, d)
	}
	sort.Ints(out)
	return out
}

// SetTransient makes each read access fail transiently with probability
// prob (retries draw fresh randomness and may succeed).
func (p *Plan) SetTransient(prob float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.transientBits = probBits(prob)
}

// SetTransientWrites makes each write access fail transiently with
// probability prob.
func (p *Plan) SetTransientWrites(prob float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.writeBits = probBits(prob)
}

// SetStall makes each access stall with probability prob, charging
// steps extra parallel I/Os when it does.
func (p *Plan) SetStall(prob float64, steps int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stallBits = probBits(prob)
	p.stallSteps = steps
}

// CorruptAt schedules a one-shot bit flip: the next access to addr
// flips the given bit of the stored block (mod the block's bit width),
// leaving the checksum stale so a later verified read detects it.
// Multiple scheduled flips for the same address fire in FIFO order, one
// per access.
func (p *Plan) CorruptAt(addr pdm.Addr, bit uint) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.corrupt == nil {
		p.corrupt = make(map[pdm.Addr][]uint)
	}
	p.corrupt[addr] = append(p.corrupt[addr], bit)
}

// Access implements pdm.FaultInjector. Decision priority: fail-stop,
// then scheduled corruption, then transient failure, then stall. Every
// call consumes exactly one position of the random stream regardless of
// outcome, so earlier decisions never shift later ones.
func (p *Plan) Access(kind pdm.EventKind, a pdm.Addr) pdm.Fault {
	p.mu.Lock()
	defer p.mu.Unlock()
	r := mix64(p.seed ^ mix64(p.ctr))
	p.ctr++
	if p.failed[a.Disk] {
		return pdm.Fault{Kind: pdm.FaultFailStop}
	}
	if bits, ok := p.corrupt[a]; ok && len(bits) > 0 {
		bit := bits[0]
		if len(bits) == 1 {
			delete(p.corrupt, a)
		} else {
			p.corrupt[a] = bits[1:]
		}
		return pdm.Fault{Kind: pdm.FaultCorrupt, Bit: bit}
	}
	threshold := p.transientBits
	if kind == pdm.EventWrite {
		threshold = p.writeBits
	}
	if threshold > 0 && r < threshold {
		return pdm.Fault{Kind: pdm.FaultTransient}
	}
	if p.stallBits > 0 && mix64(r) < p.stallBits {
		return pdm.Fault{Kind: pdm.FaultStall, Stall: p.stallSteps}
	}
	return pdm.Fault{Kind: pdm.FaultNone}
}

// Reset rewinds the plan's random stream to the beginning and clears
// all scheduled and standing faults, restoring the state NewPlan
// returned. Replaying the same workload after Reset reproduces the same
// decisions.
func (p *Plan) Reset() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.ctr = 0
	p.failed = nil
	p.corrupt = nil
	p.transientBits = 0
	p.writeBits = 0
	p.stallBits = 0
	p.stallSteps = 0
}

package fault

import (
	"testing"

	"pdmdict/internal/pdm"
)

// Two plans with the same seed and configuration must make identical
// decisions on the same access sequence — the determinism the JSONL
// trace reproducibility rests on.
func TestPlanDeterministic(t *testing.T) {
	mk := func() *Plan {
		p := NewPlan(42)
		p.SetTransient(0.3)
		p.SetStall(0.2, 3)
		p.FailDisk(2)
		p.CorruptAt(pdm.Addr{Disk: 1, Block: 5}, 17)
		return p
	}
	a, b := mk(), mk()
	for i := 0; i < 2000; i++ {
		addr := pdm.Addr{Disk: i % 5, Block: i % 11}
		kind := pdm.EventKind(i % 2)
		fa, fb := a.Access(kind, addr), b.Access(kind, addr)
		if fa != fb {
			t.Fatalf("access %d: plans diverge: %+v vs %+v", i, fa, fb)
		}
	}
}

// Reset must rewind the stream so a replay reproduces the decisions.
func TestPlanResetReplays(t *testing.T) {
	p := NewPlan(7)
	p.SetTransient(0.5)
	var first []pdm.Fault
	for i := 0; i < 500; i++ {
		first = append(first, p.Access(pdm.EventRead, pdm.Addr{Disk: i % 3, Block: i}))
	}
	p.Reset()
	p.SetTransient(0.5)
	for i := 0; i < 500; i++ {
		f := p.Access(pdm.EventRead, pdm.Addr{Disk: i % 3, Block: i})
		if f != first[i] {
			t.Fatalf("access %d after Reset: got %+v, want %+v", i, f, first[i])
		}
	}
}

func TestFailHeal(t *testing.T) {
	p := NewPlan(1)
	p.FailDisk(3)
	if !p.Failed(3) || p.Failed(0) {
		t.Fatalf("Failed() wrong after FailDisk(3)")
	}
	if got := p.Access(pdm.EventWrite, pdm.Addr{Disk: 3}); got.Kind != pdm.FaultFailStop {
		t.Fatalf("access to failed disk: got %v, want failstop", got.Kind)
	}
	if ds := p.FailedDisks(); len(ds) != 1 || ds[0] != 3 {
		t.Fatalf("FailedDisks = %v, want [3]", ds)
	}
	p.HealDisk(3)
	if got := p.Access(pdm.EventRead, pdm.Addr{Disk: 3}); got.Kind == pdm.FaultFailStop {
		t.Fatalf("access after heal still fail-stopped")
	}
}

// The transient rate must land near the configured probability, and
// apply only to the configured direction.
func TestTransientRate(t *testing.T) {
	p := NewPlan(99)
	p.SetTransient(0.25)
	const n = 20000
	reads, writes := 0, 0
	for i := 0; i < n; i++ {
		if p.Access(pdm.EventRead, pdm.Addr{Disk: 0, Block: i}).Kind == pdm.FaultTransient {
			reads++
		}
		if p.Access(pdm.EventWrite, pdm.Addr{Disk: 0, Block: i}).Kind == pdm.FaultTransient {
			writes++
		}
	}
	rate := float64(reads) / n
	if rate < 0.22 || rate > 0.28 {
		t.Fatalf("transient read rate %.3f, want ≈0.25", rate)
	}
	if writes != 0 {
		t.Fatalf("got %d transient writes with only SetTransient configured", writes)
	}
}

// Scheduled corruptions fire once each, FIFO, on the right address.
func TestCorruptAtFIFO(t *testing.T) {
	p := NewPlan(0)
	target := pdm.Addr{Disk: 1, Block: 2}
	p.CorruptAt(target, 10)
	p.CorruptAt(target, 20)
	if f := p.Access(pdm.EventRead, pdm.Addr{Disk: 0, Block: 0}); f.Kind != pdm.FaultNone {
		t.Fatalf("unrelated address corrupted: %+v", f)
	}
	if f := p.Access(pdm.EventRead, target); f.Kind != pdm.FaultCorrupt || f.Bit != 10 {
		t.Fatalf("first access: got %+v, want corrupt bit 10", f)
	}
	if f := p.Access(pdm.EventWrite, target); f.Kind != pdm.FaultCorrupt || f.Bit != 20 {
		t.Fatalf("second access: got %+v, want corrupt bit 20", f)
	}
	if f := p.Access(pdm.EventRead, target); f.Kind != pdm.FaultNone {
		t.Fatalf("third access: corruption did not expire: %+v", f)
	}
}

func TestStall(t *testing.T) {
	p := NewPlan(5)
	p.SetStall(1.0, 4)
	f := p.Access(pdm.EventRead, pdm.Addr{})
	if f.Kind != pdm.FaultStall || f.Stall != 4 {
		t.Fatalf("got %+v, want stall of 4", f)
	}
}

package fault

import (
	"fmt"
	"sort"
	"sync"

	"pdmdict/internal/pdm"
)

// Chaos schedules. A Schedule wraps a Plan and applies a scripted
// sequence of fail/heal/corrupt/load events to it as the machine's own
// parallel-I/O step counter advances — the deterministic clock, never
// wall time. Events are applied strictly in order, and an event can
// additionally wait for the machine to report every disk Healthy
// (AwaitHealthy), which is how a generated schedule rotates damage
// across disks without ever overlapping two outages: the next round's
// damage holds off until the repair supervisor has fully recovered the
// previous one. Same seed + same schedule + same single-threaded
// workload ⇒ the same fault decisions at the same steps, byte for byte.

// ChaosAction says what one scheduled event does to the plan.
type ChaosAction uint8

// Chaos actions.
const (
	// ChaosFail fail-stops Disk (Plan.FailDisk).
	ChaosFail ChaosAction = iota
	// ChaosHeal clears Disk's fail-stop (Plan.HealDisk); the disk's data
	// survived the outage but may be stale and needs repair.
	ChaosHeal
	// ChaosCorrupt schedules a one-shot bit flip at Addr/Bit
	// (Plan.CorruptAt).
	ChaosCorrupt
	// ChaosTransient sets the per-read transient probability to Prob
	// (Plan.SetTransient).
	ChaosTransient
	// ChaosStall sets the per-access stall probability to Prob with
	// Stall extra steps (Plan.SetStall).
	ChaosStall
)

// String names the action as used in schedule dumps.
func (a ChaosAction) String() string {
	switch a {
	case ChaosFail:
		return "fail"
	case ChaosHeal:
		return "heal"
	case ChaosCorrupt:
		return "corrupt"
	case ChaosTransient:
		return "transient"
	case ChaosStall:
		return "stall"
	default:
		return fmt.Sprintf("ChaosAction(%d)", int(a))
	}
}

// ChaosEvent is one scripted fault-plan mutation.
type ChaosEvent struct {
	// Step is the machine parallel-I/O step counter at or after which
	// the event fires. Events fire strictly in schedule order: an event
	// never fires before every earlier event has.
	Step int64 `json:"step"`
	// HoldSteps, when positive, additionally keeps the event from firing
	// until this many steps after the previous event fired. Gates can
	// delay a round far past its nominal Step; a heal with HoldSteps
	// still gives its outage a full window instead of collapsing to
	// zero width when the fail finally lands.
	HoldSteps int64 `json:"hold_steps,omitempty"`
	// AwaitHealthy additionally holds the event (and everything after
	// it) until the machine reports all disks Healthy — the gate that
	// serializes damage rounds against recovery.
	AwaitHealthy bool        `json:"await_healthy,omitempty"`
	Action       ChaosAction `json:"-"`
	// Act is the action's name, for JSON schedule dumps.
	Act   string   `json:"action"`
	Disk  int      `json:"disk,omitempty"`
	Addr  pdm.Addr `json:"addr"`
	Bit   uint     `json:"bit,omitempty"`
	Prob  float64  `json:"prob,omitempty"`
	Stall int      `json:"stall,omitempty"`
}

// Schedule is a Plan driven by a scripted event sequence. It implements
// pdm.FaultInjector by applying every due event and then delegating the
// access decision to the wrapped plan. Bind it to a machine before use.
type Schedule struct {
	mu      sync.Mutex
	plan    *Plan
	events  []ChaosEvent
	next    int
	steps   func() int64 // machine step clock (Machine.StepCount)
	healthy func() bool  // all-disks-healthy gate (Machine.AllDisksHealthy)
	// flip applies a corruption immediately (Machine.FlipBit). When nil,
	// ChaosCorrupt falls back to the plan's latched one-shot (CorruptAt),
	// which only manifests on the target's next access — a cold block can
	// then carry its damage past the round that scripted it.
	flip func(pdm.Addr, uint)
	// clean verifies a block's checksum (Machine.BlockClean). Corruptions
	// applied through flip are remembered in pending until clean vouches
	// for them again; AwaitHealthy gates hold while any are outstanding,
	// so a damage round is not just detected but repaired before the next
	// round fires.
	clean     func(pdm.Addr) bool
	pending   []pdm.Addr
	lastFired int64 // step at which the most recent event fired (HoldSteps anchor)
}

// NewSchedule wraps plan with the given events. The events are copied
// and stably sorted by Step (ties keep their given order). Call Bind
// before installing the schedule as an injector.
func NewSchedule(plan *Plan, events []ChaosEvent) *Schedule {
	evs := make([]ChaosEvent, len(events))
	copy(evs, events)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].Step < evs[j].Step })
	for i := range evs {
		evs[i].Act = evs[i].Action.String()
	}
	return &Schedule{plan: plan, events: evs}
}

// Bind connects the schedule to its machine's deterministic clock and
// health gate. Both callbacks must be safe to call from inside a
// FaultInjector — i.e. lock-free atomic loads; pdm.Machine.StepCount and
// pdm.Machine.AllDisksHealthy are exactly that.
func (s *Schedule) Bind(steps func() int64, healthy func() bool) {
	s.mu.Lock()
	s.steps = steps
	s.healthy = healthy
	s.mu.Unlock()
}

// BindFlip installs an immediate-corruption callback (Machine.FlipBit)
// and its verification oracle (Machine.BlockClean): ChaosCorrupt events
// then flip the stored bit the moment they fire rather than latching a
// one-shot in the plan, and AwaitHealthy gates additionally hold until
// every flipped block verifies clean again.
func (s *Schedule) BindFlip(flip func(pdm.Addr, uint), clean func(pdm.Addr) bool) {
	s.mu.Lock()
	s.flip = flip
	s.clean = clean
	s.mu.Unlock()
}

// BindMachine is Bind wired to m's step clock, health gate, and
// immediate bit-flipper.
func (s *Schedule) BindMachine(m *pdm.Machine) {
	s.Bind(m.StepCount, m.AllDisksHealthy)
	s.BindFlip(m.FlipBit, m.BlockClean)
}

// apply fires one event into the plan. Caller holds s.mu.
func (s *Schedule) apply(e ChaosEvent) {
	switch e.Action {
	case ChaosFail:
		s.plan.FailDisk(e.Disk)
	case ChaosHeal:
		s.plan.HealDisk(e.Disk)
	case ChaosCorrupt:
		if s.flip != nil {
			s.flip(e.Addr, e.Bit)
			s.pending = append(s.pending, e.Addr)
		} else {
			s.plan.CorruptAt(e.Addr, e.Bit)
		}
	case ChaosTransient:
		s.plan.SetTransient(e.Prob)
	case ChaosStall:
		s.plan.SetStall(e.Prob, e.Stall)
	}
}

// Access implements pdm.FaultInjector: fire every due event, then let
// the plan decide the access. The machine calls it under its fault
// lock, so events land at deterministic positions of the access stream.
func (s *Schedule) Access(kind pdm.EventKind, a pdm.Addr) pdm.Fault {
	s.mu.Lock()
	now := int64(0)
	if s.steps != nil {
		now = s.steps()
	}
	for s.next < len(s.events) {
		e := s.events[s.next]
		if e.Step > now {
			break
		}
		if e.HoldSteps > 0 && s.next > 0 && now < s.lastFired+e.HoldSteps {
			break
		}
		if e.AwaitHealthy {
			if s.healthy == nil || !s.healthy() {
				break
			}
			if !s.pendingClean() {
				break
			}
		}
		s.apply(e)
		s.lastFired = now
		s.next++
	}
	s.mu.Unlock()
	return s.plan.Access(kind, a)
}

// pendingClean drops every outstanding corruption that verifies clean
// again and reports whether none remain. Caller holds s.mu.
func (s *Schedule) pendingClean() bool {
	if s.clean == nil {
		return true
	}
	kept := s.pending[:0]
	for _, a := range s.pending {
		if !s.clean(a) {
			kept = append(kept, a)
		}
	}
	s.pending = kept
	return len(s.pending) == 0
}

// Done reports whether every scheduled event has fired.
func (s *Schedule) Done() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.next >= len(s.events)
}

// Applied returns how many events have fired so far.
func (s *Schedule) Applied() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.next
}

// Events returns a copy of the schedule (sorted, with Act names filled
// in) — what pdmbench -chaos dumps next to the trace artifact.
func (s *Schedule) Events() []ChaosEvent {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]ChaosEvent, len(s.events))
	copy(out, s.events)
	return out
}

// ChaosProfile shapes GenerateSchedule's output.
type ChaosProfile struct {
	// Disks is the machine's disk count; damaged disks are drawn from it.
	Disks int
	// Blocks bounds the block index of generated corruptions.
	Blocks int
	// Rounds is how many damage rounds to script.
	Rounds int
	// Gap is the step distance between a round's fail and its heal (and
	// between rounds). Schedules stay valid if repair outruns or lags the
	// gap: rounds are additionally serialized by AwaitHealthy.
	Gap int64
	// CorruptEvery makes every n-th round a one-shot corruption instead
	// of a fail/heal outage; 0 disables corruption rounds.
	CorruptEvery int
}

// GenerateSchedule scripts a deterministic damage rotation from seed:
// each round fail-stops one seed-chosen disk and heals it Gap steps
// later (or, every CorruptEvery-th round, flips one seed-chosen bit),
// with every round gated on the machine having fully recovered from the
// previous one. Same seed + profile ⇒ same schedule, always.
func GenerateSchedule(seed uint64, p ChaosProfile) []ChaosEvent {
	if p.Disks <= 0 || p.Rounds <= 0 {
		return nil
	}
	gap := p.Gap
	if gap <= 0 {
		gap = 1
	}
	blocks := p.Blocks
	if blocks <= 0 {
		blocks = 1
	}
	draw := func(i int) uint64 { return mix64(seed ^ mix64(uint64(i))) }
	var evs []ChaosEvent
	for r := 0; r < p.Rounds; r++ {
		base := int64(r) * 2 * gap
		d := int(draw(3*r) % uint64(p.Disks))
		if p.CorruptEvery > 0 && (r+1)%p.CorruptEvery == 0 {
			evs = append(evs, ChaosEvent{
				Step:         base,
				AwaitHealthy: true,
				Action:       ChaosCorrupt,
				Addr:         pdm.Addr{Disk: d, Block: int(draw(3*r+1) % uint64(blocks))},
				Bit:          uint(draw(3*r+2) % 512),
			})
			continue
		}
		evs = append(evs, ChaosEvent{
			Step:         base,
			AwaitHealthy: true,
			Action:       ChaosFail,
			Disk:         d,
		})
		evs = append(evs, ChaosEvent{
			Step: base + gap,
			// Anchor the outage's width to when the fail actually fired:
			// gates can push a round far past its nominal steps, and an
			// absolute-only heal would then land in the same pass as its
			// fail, collapsing the outage to nothing.
			HoldSteps: gap,
			Action:    ChaosHeal,
			Disk:      d,
		})
	}
	return evs
}

package fault

import (
	"reflect"
	"testing"

	"pdmdict/internal/pdm"
)

// A scripted fail/heal pair fires at its steps, in order, against a
// fake clock — and the fault decisions flip accordingly.
func TestScheduleFiresInStepOrder(t *testing.T) {
	plan := NewPlan(1)
	s := NewSchedule(plan, []ChaosEvent{
		{Step: 10, Action: ChaosHeal, Disk: 0},
		{Step: 5, Action: ChaosFail, Disk: 0},
	})
	now := int64(0)
	s.Bind(func() int64 { return now }, func() bool { return true })
	a := pdm.Addr{Disk: 0, Block: 0}

	if f := s.Access(pdm.EventRead, a); f.Kind != pdm.FaultNone {
		t.Fatalf("before any event: %v", f.Kind)
	}
	now = 5
	if f := s.Access(pdm.EventRead, a); f.Kind != pdm.FaultFailStop {
		t.Fatalf("after fail event: %v", f.Kind)
	}
	if s.Done() || s.Applied() != 1 {
		t.Fatalf("Applied = %d, Done = %v, want 1/false", s.Applied(), s.Done())
	}
	now = 10
	if f := s.Access(pdm.EventRead, a); f.Kind != pdm.FaultNone {
		t.Fatalf("after heal event: %v", f.Kind)
	}
	if !s.Done() {
		t.Fatal("schedule not done after last event")
	}
}

// AwaitHealthy holds the event — and everything scheduled after it —
// until the health gate opens.
func TestScheduleAwaitHealthyGates(t *testing.T) {
	plan := NewPlan(1)
	s := NewSchedule(plan, []ChaosEvent{
		{Step: 0, AwaitHealthy: true, Action: ChaosFail, Disk: 1},
		{Step: 0, Action: ChaosFail, Disk: 2},
	})
	healthy := false
	s.Bind(func() int64 { return 100 }, func() bool { return healthy })
	a1 := pdm.Addr{Disk: 1, Block: 0}

	if f := s.Access(pdm.EventRead, a1); f.Kind != pdm.FaultNone || s.Applied() != 0 {
		t.Fatalf("gated event fired: %v, applied %d", f.Kind, s.Applied())
	}
	healthy = true
	if f := s.Access(pdm.EventRead, a1); f.Kind != pdm.FaultFailStop || s.Applied() != 2 {
		t.Fatalf("after gate opened: %v, applied %d", f.Kind, s.Applied())
	}
	if !plan.Failed(2) {
		t.Fatal("event after the gate did not fire with it")
	}
}

func TestScheduleCorruptAndLoadActions(t *testing.T) {
	plan := NewPlan(1)
	addr := pdm.Addr{Disk: 0, Block: 3}
	s := NewSchedule(plan, []ChaosEvent{
		{Step: 0, Action: ChaosCorrupt, Addr: addr, Bit: 9},
		{Step: 0, Action: ChaosTransient, Prob: 1},
	})
	s.Bind(func() int64 { return 1 }, func() bool { return true })

	if f := s.Access(pdm.EventRead, addr); f.Kind != pdm.FaultCorrupt || f.Bit != 9 {
		t.Fatalf("scheduled corruption: %+v", f)
	}
	// Corruption was one-shot; transient probability 1 now decides.
	if f := s.Access(pdm.EventRead, addr); f.Kind != pdm.FaultTransient {
		t.Fatalf("after corruption drained: %v", f.Kind)
	}
}

// Same seed + profile ⇒ same schedule; rounds alternate fail/heal with
// the AwaitHealthy gate on each round's damage.
func TestGenerateScheduleDeterministic(t *testing.T) {
	p := ChaosProfile{Disks: 6, Blocks: 64, Rounds: 5, Gap: 50, CorruptEvery: 3}
	a := GenerateSchedule(7, p)
	b := GenerateSchedule(7, p)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different schedules")
	}
	if len(a) == 0 {
		t.Fatal("empty schedule")
	}
	corrupts, fails, heals := 0, 0, 0
	for _, e := range a {
		switch e.Action {
		case ChaosCorrupt:
			corrupts++
			if !e.AwaitHealthy {
				t.Fatal("corruption round not gated on recovery")
			}
		case ChaosFail:
			fails++
			if !e.AwaitHealthy {
				t.Fatal("fail round not gated on recovery")
			}
			if e.Disk < 0 || e.Disk >= p.Disks {
				t.Fatalf("disk %d out of range", e.Disk)
			}
		case ChaosHeal:
			heals++
		}
	}
	// Rounds 3 is the corruption round (CorruptEvery=3), the other 4
	// are fail/heal pairs.
	if corrupts != 1 || fails != 4 || heals != 4 {
		t.Fatalf("rounds = %d corrupt / %d fail / %d heal", corrupts, fails, heals)
	}
	if GenerateSchedule(8, p)[0] == a[0] && reflect.DeepEqual(GenerateSchedule(8, p), a) {
		t.Fatal("different seeds produced identical schedules")
	}
}

package pdm

import (
	"strings"
	"testing"
)

// Health transitions must surface on the hook stream as EventHealth
// annotations — zero-step, correctly tagged, ordered after the fault
// events of the batch that caused them — without disturbing the cost
// accounting the traces are built on.
func TestHealthTransitionsEmitAnnotations(t *testing.T) {
	m := NewMachine(Config{D: 4, B: 2})
	h := &recordingHook{}
	m.SetHook(h)
	a := Addr{Disk: 2, Block: 0}

	// The Try-batch path: a fail-stop flips disk 2 Healthy → Failed.
	m.SetFaultInjector(&scriptInjector{faults: map[Addr]Fault{a: {Kind: FaultFailStop}}})
	if err := readThrough(t, m, a); err == nil {
		t.Fatal("fail-stopped read should error")
	}
	stats := m.Stats()

	var health []Event
	var healthIdx, faultIdx []int
	for i, e := range h.all() {
		switch {
		case e.Kind == EventHealth:
			health = append(health, e)
			healthIdx = append(healthIdx, i)
		case strings.HasPrefix(e.Tag, FaultTagPrefix):
			faultIdx = append(faultIdx, i)
		}
	}
	if len(health) != 1 {
		t.Fatalf("got %d health events, want 1", len(health))
	}
	e := health[0]
	if e.From != "healthy" || e.To != "failed" {
		t.Errorf("transition = %s→%s, want healthy→failed", e.From, e.To)
	}
	if want := HealthTagPrefix + "failed"; e.Tag != want {
		t.Errorf("tag = %q, want %q", e.Tag, want)
	}
	if len(e.Addrs) != 1 || e.Addrs[0].Disk != 2 {
		t.Errorf("addrs = %v, want [{Disk:2}]", e.Addrs)
	}
	if e.Steps != 0 {
		t.Errorf("annotation charged %d steps, want 0", e.Steps)
	}
	if !e.Kind.IsAnnotation() {
		t.Error("EventHealth must classify as an annotation")
	}
	if e.Seq == 0 {
		t.Error("annotation missing a stream sequence number")
	}
	if len(faultIdx) == 0 || healthIdx[0] < faultIdx[len(faultIdx)-1] {
		t.Errorf("health annotation (index %v) must follow the batch's fault events (%v)",
			healthIdx, faultIdx)
	}

	// The supervisor path: Mark* transitions emit the same annotations
	// and still charge nothing.
	m.SetFaultInjector(nil)
	if !m.MarkRepairing(2) {
		t.Fatal("MarkRepairing(2) should claim the failed disk")
	}
	m.MarkHealthy(2)
	var tail []Event
	for _, e := range h.all() {
		if e.Kind == EventHealth {
			tail = append(tail, e)
		}
	}
	if len(tail) != 3 {
		t.Fatalf("got %d health events after repair, want 3", len(tail))
	}
	if tail[1].To != "repairing" || tail[2].To != "healthy" {
		t.Errorf("repair transitions = %q, %q, want repairing, healthy", tail[1].To, tail[2].To)
	}
	after := m.Stats()
	if after.ParallelIOs != stats.ParallelIOs {
		t.Errorf("Mark* transitions moved the step counter: %d → %d",
			stats.ParallelIOs, after.ParallelIOs)
	}
	for _, e := range tail[1:] {
		if e.Step != stats.ParallelIOs {
			t.Errorf("annotation stamped step %d, want machine clock %d", e.Step, stats.ParallelIOs)
		}
	}
}

package pdm

import (
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentBatchStatsExact hammers one machine from G goroutines,
// each issuing batches of known shape against its own block rows, and
// checks that the merged counters equal the arithmetic sum of what the
// goroutines did individually: the sharded accounting must lose nothing
// to concurrency. Run under -race this also exercises the per-shard
// locking of both the inline and fanned-out batch paths.
func TestConcurrentBatchStatsExact(t *testing.T) {
	const (
		D      = 8
		B      = 16
		G      = 8
		rows   = 32 // per-goroutine block rows; D*rows = 256 > fanoutMinBlocks
		rounds = 50 // small depth-1 reads per goroutine
	)
	m := NewMachine(Config{D: D, B: B})
	var wg sync.WaitGroup
	errs := make(chan error, G)
	for g := 0; g < G; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			base := g * rows
			// One large write: every owned block, depth = rows.
			writes := make([]BlockWrite, 0, D*rows)
			for r := 0; r < rows; r++ {
				for d := 0; d < D; d++ {
					blk := make([]Word, B)
					blk[0] = Word(g)<<32 | Word(d)<<16 | Word(r)
					writes = append(writes, BlockWrite{Addr: Addr{Disk: d, Block: base + r}, Data: blk})
				}
			}
			m.BatchWrite(writes)
			// Depth-1 stripe reads.
			stripe := make([]Addr, D)
			for i := 0; i < rounds; i++ {
				r := i % rows
				for d := 0; d < D; d++ {
					stripe[d] = Addr{Disk: d, Block: base + r}
				}
				out := m.BatchRead(stripe)
				for d, blk := range out {
					if want := Word(g)<<32 | Word(d)<<16 | Word(r); blk[0] != want {
						errs <- fmt.Errorf("goroutine %d read %#x at disk %d row %d, want %#x", g, blk[0], d, r, want)
						return
					}
				}
			}
			// One large read through the fan-out path, depth = rows.
			addrs := make([]Addr, 0, D*rows)
			for r := 0; r < rows; r++ {
				for d := 0; d < D; d++ {
					addrs = append(addrs, Addr{Disk: d, Block: base + r})
				}
			}
			out := m.BatchRead(addrs)
			for i, blk := range out {
				r, d := i/D, i%D
				if want := Word(g)<<32 | Word(d)<<16 | Word(r); blk[0] != want {
					errs <- fmt.Errorf("goroutine %d large read %#x at disk %d row %d, want %#x", g, blk[0], d, r, want)
					return
				}
			}
			// A checked read through the Try path (no injector installed).
			if _, err := m.TryBatchRead(stripe); err != nil {
				errs <- fmt.Errorf("goroutine %d TryBatchRead: %v", g, err)
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	s := m.Stats()
	wantWrites := int64(G * D * rows)
	wantReads := int64(G * (rounds*D + D*rows + D))
	wantPIOs := int64(G * (rows + rounds + rows + 1))
	if s.BlockWrites != wantWrites {
		t.Errorf("BlockWrites = %d, want %d", s.BlockWrites, wantWrites)
	}
	if s.BlockReads != wantReads {
		t.Errorf("BlockReads = %d, want %d", s.BlockReads, wantReads)
	}
	if s.ParallelIOs != wantPIOs {
		t.Errorf("ParallelIOs = %d, want %d", s.ParallelIOs, wantPIOs)
	}
	if s.MaxBatch != rows {
		t.Errorf("MaxBatch = %d, want %d", s.MaxBatch, rows)
	}
	// Depth histogram: G*(rounds+1) depth-1 batches (stripe reads + Try
	// reads), 2G depth-`rows` batches.
	if got := s.DepthCounts[0]; got != int64(G*(rounds+1)) {
		t.Errorf("DepthCounts[0] = %d, want %d", got, G*(rounds+1))
	}
	if got := s.DepthCounts[rows-1]; got != int64(2*G) {
		t.Errorf("DepthCounts[%d] = %d, want %d", rows-1, got, 2*G)
	}
	// Per-disk transfer tallies must sum to the total transfers, and the
	// workload is disk-symmetric so each disk carries an equal share.
	perDisk := m.PerDiskIOs()
	var sum int64
	for d, n := range perDisk {
		sum += n
		if want := (wantReads + wantWrites) / D; n != want {
			t.Errorf("PerDiskIOs[%d] = %d, want %d", d, n, want)
		}
	}
	if sum != wantReads+wantWrites {
		t.Errorf("sum(PerDiskIOs) = %d, want %d", sum, wantReads+wantWrites)
	}
	if bad := m.VerifyChecksums(); len(bad) != 0 {
		t.Errorf("VerifyChecksums reported %v after concurrent batches", bad)
	}
}

// TestSetParallelismConcurrent flips the worker count while batches are
// in flight; results and accounting must be unaffected (the knob is
// performance-only).
func TestSetParallelismConcurrent(t *testing.T) {
	const D, B, G = 4, 8, 4
	m := NewMachine(Config{D: D, B: B})
	addrs := make([]Addr, 0, D*64)
	var writes []BlockWrite
	for r := 0; r < 64; r++ {
		for d := 0; d < D; d++ {
			addrs = append(addrs, Addr{Disk: d, Block: r})
			blk := make([]Word, B)
			blk[0] = Word(d*1000 + r)
			writes = append(writes, BlockWrite{Addr: Addr{Disk: d, Block: r}, Data: blk})
		}
	}
	m.BatchWrite(writes)
	var wg sync.WaitGroup
	for g := 0; g < G; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if g == 0 {
					m.SetParallelism(1 + i%4)
				}
				out := m.BatchRead(addrs)
				for j, blk := range out {
					r, d := j/D, j%D
					if blk[0] != Word(d*1000+r) {
						t.Errorf("read %d under changing parallelism: got %d", j, blk[0])
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

func benchmarkBatchRead(b *testing.B, d, nBlocks, workers int) {
	m := NewMachine(Config{D: d, B: 64, Workers: workers})
	rows := (nBlocks + d - 1) / d
	var writes []BlockWrite
	addrs := make([]Addr, 0, nBlocks)
	for r := 0; r < rows; r++ {
		for k := 0; k < d && len(addrs) < nBlocks; k++ {
			addrs = append(addrs, Addr{Disk: k, Block: r})
			writes = append(writes, BlockWrite{Addr: Addr{Disk: k, Block: r}, Data: make([]Word, 64)})
		}
	}
	m.BatchWrite(writes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.BatchRead(addrs)
	}
	b.SetBytes(int64(nBlocks) * 64 * 8)
}

func BenchmarkBatchReadSmall(b *testing.B)         { benchmarkBatchRead(b, 8, 8, 1) }
func BenchmarkBatchReadLargeSerial(b *testing.B)   { benchmarkBatchRead(b, 16, 4096, 1) }
func BenchmarkBatchReadLargeFanout(b *testing.B)   { benchmarkBatchRead(b, 16, 4096, 0) }
func BenchmarkBatchWriteLargeSerial(b *testing.B)  { benchmarkBatchWrite(b, 16, 4096, 1) }
func BenchmarkBatchWriteLargeFanout(b *testing.B)  { benchmarkBatchWrite(b, 16, 4096, 0) }
func BenchmarkBatchReadContended(b *testing.B)     { benchmarkBatchReadParallel(b, 16, 16) }
func BenchmarkBatchReadContendedWide(b *testing.B) { benchmarkBatchReadParallel(b, 64, 64) }

func benchmarkBatchWrite(b *testing.B, d, nBlocks, workers int) {
	m := NewMachine(Config{D: d, B: 64, Workers: workers})
	rows := (nBlocks + d - 1) / d
	writes := make([]BlockWrite, 0, nBlocks)
	for r := 0; r < rows; r++ {
		for k := 0; k < d && len(writes) < nBlocks; k++ {
			writes = append(writes, BlockWrite{Addr: Addr{Disk: k, Block: r}, Data: make([]Word, 64)})
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.BatchWrite(writes)
	}
	b.SetBytes(int64(nBlocks) * 64 * 8)
}

// benchmarkBatchReadParallel measures many clients issuing small
// stripe-wide reads against one machine — the multi-client query-engine
// shape, dominated by shard-lock handoff rather than copying.
func benchmarkBatchReadParallel(b *testing.B, d, rows int) {
	m := NewMachine(Config{D: d, B: 64})
	var writes []BlockWrite
	for r := 0; r < rows; r++ {
		for k := 0; k < d; k++ {
			writes = append(writes, BlockWrite{Addr: Addr{Disk: k, Block: r}, Data: make([]Word, 64)})
		}
	}
	m.BatchWrite(writes)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		addrs := make([]Addr, d)
		r := 0
		for pb.Next() {
			for k := 0; k < d; k++ {
				addrs[k] = Addr{Disk: k, Block: r}
			}
			r = (r + 1) % rows
			m.BatchRead(addrs)
		}
	})
}

package pdm

import (
	"sync"
	"sync/atomic"
	"testing"
)

// recordingHook copies every event it sees (including the Addrs slice,
// which is only valid during the call).
type recordingHook struct {
	mu     sync.Mutex
	events []Event
}

func (h *recordingHook) Event(e Event) {
	cp := e
	cp.Addrs = append([]Addr(nil), e.Addrs...)
	h.mu.Lock()
	h.events = append(h.events, cp)
	h.mu.Unlock()
}

func (h *recordingHook) all() []Event {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]Event(nil), h.events...)
}

func TestHookSeesReadsAndWrites(t *testing.T) {
	m := NewMachine(Config{D: 4, B: 2})
	h := &recordingHook{}
	m.SetHook(h)

	// Depth-2 read: two blocks on disk 1, one on disk 0.
	m.BatchRead([]Addr{{1, 0}, {1, 1}, {0, 0}})
	m.BatchWrite([]BlockWrite{{Addr: Addr{2, 3}, Data: []Word{7}}})

	evs := h.all()
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2", len(evs))
	}
	r := evs[0]
	if r.Kind != EventRead || r.Steps != 2 || r.Depth != 2 || len(r.Addrs) != 3 {
		t.Errorf("read event = %+v, want kind=read steps=2 depth=2 |addrs|=3", r)
	}
	w := evs[1]
	if w.Kind != EventWrite || w.Steps != 1 || w.Depth != 1 || len(w.Addrs) != 1 {
		t.Errorf("write event = %+v, want kind=write steps=1 depth=1 |addrs|=1", w)
	}
	if w.Addrs[0] != (Addr{2, 3}) {
		t.Errorf("write event addr = %v, want 2:3", w.Addrs[0])
	}
	if EventRead.String() != "read" || EventWrite.String() != "write" {
		t.Error("EventKind strings wrong")
	}
}

func TestHookSkipsEmptyBatches(t *testing.T) {
	m := NewMachine(Config{D: 2, B: 2})
	h := &recordingHook{}
	m.SetHook(h)
	m.BatchRead(nil)
	m.BatchWrite(nil)
	if n := len(h.all()); n != 0 {
		t.Errorf("empty batches fired %d events, want 0", n)
	}
}

func TestSpanTagsJoin(t *testing.T) {
	m := NewMachine(Config{D: 2, B: 2})
	h := &recordingHook{}
	m.SetHook(h)

	end := m.Span("insert")
	m.BatchRead([]Addr{{0, 0}})
	endProbe := m.Span("probe")
	m.BatchRead([]Addr{{0, 0}})
	endProbe()
	m.BatchWrite([]BlockWrite{{Addr: Addr{1, 0}, Data: []Word{1}}})
	end()
	m.BatchRead([]Addr{{0, 0}}) // outside any span

	type want struct {
		kind EventKind
		tag  string
	}
	wants := []want{
		{EventSpanBegin, "insert"},
		{EventRead, "insert"},
		{EventSpanBegin, "insert.probe"},
		{EventRead, "insert.probe"},
		{EventSpanEnd, "insert.probe"},
		{EventWrite, "insert"},
		{EventSpanEnd, "insert"},
		{EventRead, ""},
	}
	evs := h.all()
	if len(evs) != len(wants) {
		t.Fatalf("got %d events, want %d", len(evs), len(wants))
	}
	for i, w := range wants {
		if evs[i].Kind != w.kind || evs[i].Tag != w.tag {
			t.Errorf("event %d = kind %v tag %q, want kind %v tag %q",
				i, evs[i].Kind, evs[i].Tag, w.kind, w.tag)
		}
	}
}

func TestSpanEventsCarryIDsAndSteps(t *testing.T) {
	m := NewMachine(Config{D: 2, B: 2})
	h := &recordingHook{}
	m.SetHook(h)

	end := m.Span("insert")
	m.BatchRead([]Addr{{0, 0}}) // 1 step
	endProbe := m.Span("probe")
	m.BatchRead([]Addr{{0, 0}, {1, 0}}) // 1 step
	endProbe()
	end()

	evs := h.all()
	// [span_begin insert][read][span_begin probe][read][span_end probe][span_end insert]
	if len(evs) != 6 {
		t.Fatalf("got %d events, want 6", len(evs))
	}
	bi, bp, ep, ei := evs[0], evs[2], evs[4], evs[5]
	if bi.Span == 0 || bi.Parent != 0 {
		t.Errorf("root begin = id %d parent %d, want nonzero id, parent 0", bi.Span, bi.Parent)
	}
	if bp.Parent != bi.Span {
		t.Errorf("nested span parent = %d, want %d", bp.Parent, bi.Span)
	}
	if ep.Span != bp.Span || ei.Span != bi.Span {
		t.Errorf("end ids (%d, %d) do not match begin ids (%d, %d)", ep.Span, ei.Span, bp.Span, bi.Span)
	}
	if bi.Step != 0 || bp.Step != 1 || ep.Step != 2 || ei.Step != 2 {
		t.Errorf("step timestamps = %d %d %d %d, want 0 1 2 2", bi.Step, bp.Step, ep.Step, ei.Step)
	}
	// Batch events carry the innermost open span's ID.
	if evs[1].Span != bi.Span || evs[3].Span != bp.Span {
		t.Errorf("batch span ids = %d %d, want %d %d", evs[1].Span, evs[3].Span, bi.Span, bp.Span)
	}
	if bi.WallNanos != 0 || ei.WallNanos != 0 {
		t.Error("wall nanos nonzero without an injected clock")
	}
}

func TestSpanWallClockInjection(t *testing.T) {
	m := NewMachine(Config{D: 2, B: 2})
	h := &recordingHook{}
	m.SetHook(h)
	var tick int64
	m.SetWallClock(func() int64 { tick += 5; return tick })

	end := m.Span("lookup")
	m.BatchRead([]Addr{{0, 0}})
	end()

	evs := h.all()
	if len(evs) != 3 {
		t.Fatalf("got %d events, want 3", len(evs))
	}
	if evs[0].WallNanos != 0 {
		t.Errorf("begin WallNanos = %d, want 0", evs[0].WallNanos)
	}
	if evs[2].WallNanos != 5 {
		t.Errorf("end WallNanos = %d, want 5 (one clock tick)", evs[2].WallNanos)
	}
}

func TestSpanIDsDeterministic(t *testing.T) {
	run := func() []Event {
		m := NewMachine(Config{D: 2, B: 2})
		h := &recordingHook{}
		m.SetHook(h)
		for i := 0; i < 3; i++ {
			end := m.Span("insert")
			m.BatchWrite([]BlockWrite{{Addr: Addr{i % 2, i}, Data: []Word{Word(i)}}})
			inner := m.Span("probe")
			m.BatchRead([]Addr{{i % 2, i}})
			inner()
			end()
		}
		return h.all()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("runs differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Span != b[i].Span || a[i].Parent != b[i].Parent || a[i].Step != b[i].Step {
			t.Errorf("event %d differs across identical runs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestSpanWithNilHookAllocatesNothing(t *testing.T) {
	m := NewMachine(Config{D: 2, B: 2})
	if avg := testing.AllocsPerRun(1000, func() {
		end := m.Span("lookup")
		end()
	}); avg != 0 {
		t.Errorf("nil-hook Span allocates %.1f objects per call, want 0", avg)
	}
}

func TestBatchWithNilHookAddsNoAllocations(t *testing.T) {
	m := NewMachine(Config{D: 2, B: 2})
	addrs := []Addr{{0, 0}, {1, 0}}
	m.BatchRead(addrs) // materialize the blocks up front
	// 3 allocations are inherent to BatchRead's copy-out contract: the
	// outer slice plus one copy per block. The nil-hook tracing path must
	// not add to them.
	if avg := testing.AllocsPerRun(1000, func() {
		end := m.Span("lookup")
		m.BatchRead(addrs)
		end()
	}); avg != 3 {
		t.Errorf("nil-hook traced read allocates %.1f objects, want 3 (the block copies)", avg)
	}
}

func TestSetHookNilStopsEvents(t *testing.T) {
	m := NewMachine(Config{D: 2, B: 2})
	h := &recordingHook{}
	m.SetHook(h)
	m.BatchRead([]Addr{{0, 0}})
	m.SetHook(nil)
	m.BatchRead([]Addr{{0, 0}})
	if n := len(h.all()); n != 1 {
		t.Errorf("events after hook removal: got %d total, want 1", n)
	}
}

func TestStatsSubReportsWindowedMaxBatch(t *testing.T) {
	m := NewMachine(Config{D: 4, B: 2})
	// Lifetime worst: a depth-3 batch.
	m.BatchRead([]Addr{{0, 0}, {0, 1}, {0, 2}})
	before := m.Stats()
	// Window contains only a depth-2 batch.
	m.BatchRead([]Addr{{1, 0}, {1, 1}})
	delta := m.Stats().Sub(before)
	if delta.MaxBatch != 2 {
		t.Errorf("windowed MaxBatch = %d, want 2 (lifetime is 3)", delta.MaxBatch)
	}
	if m.Stats().MaxBatch != 3 {
		t.Errorf("lifetime MaxBatch = %d, want 3", m.Stats().MaxBatch)
	}
	// An empty window has no worst batch.
	now := m.Stats()
	if d := now.Sub(now); d.MaxBatch != 0 {
		t.Errorf("empty-window MaxBatch = %d, want 0", d.MaxBatch)
	}
}

func TestDepthCountsHistogram(t *testing.T) {
	m := NewMachine(Config{D: 4, B: 2})
	m.BatchRead([]Addr{{0, 0}})                    // depth 1
	m.BatchRead([]Addr{{0, 0}, {1, 0}})            // depth 1
	m.BatchRead([]Addr{{2, 0}, {2, 1}})            // depth 2
	m.BatchWrite([]BlockWrite{{Addr: Addr{3, 0}}}) // depth 1
	s := m.Stats()
	if s.DepthCounts[0] != 3 || s.DepthCounts[1] != 1 {
		t.Errorf("DepthCounts = [%d %d ...], want [3 1 ...]", s.DepthCounts[0], s.DepthCounts[1])
	}
}

func TestDepthCountsSaturate(t *testing.T) {
	m := NewMachine(Config{D: 1, B: 1})
	addrs := make([]Addr, DepthBuckets+10)
	for i := range addrs {
		addrs[i] = Addr{0, i}
	}
	before := m.Stats()
	m.BatchRead(addrs)
	s := m.Stats()
	if s.DepthCounts[DepthBuckets-1] != 1 {
		t.Errorf("overdeep batch not counted in the saturation bucket: %v", s.DepthCounts[DepthBuckets-1])
	}
	if s.MaxBatch != len(addrs) {
		t.Errorf("lifetime MaxBatch = %d, want %d (exact)", s.MaxBatch, len(addrs))
	}
	if d := s.Sub(before); d.MaxBatch != DepthBuckets {
		t.Errorf("windowed MaxBatch = %d, want saturation cap %d", d.MaxBatch, DepthBuckets)
	}
}

// countingHook only counts, so it is cheap enough for the race test.
type countingHook struct{ n atomic.Int64 }

func (h *countingHook) Event(Event) { h.n.Add(1) }

func TestHookAndSpansConcurrent(t *testing.T) {
	m := NewMachine(Config{D: 4, B: 4})
	h := &countingHook{}
	m.SetHook(h)
	var wg sync.WaitGroup
	const goroutines, iters = 8, 50
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				end := m.Span("op")
				a := Addr{Disk: g % 4, Block: i % 8}
				m.BatchWrite([]BlockWrite{{Addr: a, Data: []Word{Word(g)}}})
				m.BatchRead([]Addr{a})
				end()
			}
		}(g)
	}
	wg.Wait()
	// Each iteration fires span_begin + write + read + span_end.
	if got := h.n.Load(); got != goroutines*iters*4 {
		t.Errorf("hook saw %d events, want %d", got, goroutines*iters*4)
	}
	if got := m.Stats().ParallelIOs; got != goroutines*iters*2 {
		t.Errorf("ParallelIOs = %d, want %d", got, goroutines*iters*2)
	}
}

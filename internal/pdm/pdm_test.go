package pdm

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		cfg Config
		ok  bool
	}{
		{Config{D: 1, B: 1}, true},
		{Config{D: 8, B: 64}, true},
		{Config{D: 0, B: 4}, false},
		{Config{D: 4, B: 0}, false},
		{Config{D: -1, B: 4}, false},
		{Config{D: 4, B: -2}, false},
	}
	for _, c := range cases {
		err := c.cfg.Validate()
		if (err == nil) != c.ok {
			t.Errorf("Validate(%+v) = %v, want ok=%v", c.cfg, err, c.ok)
		}
	}
}

func TestNewMachinePanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewMachine with D=0 did not panic")
		}
	}()
	NewMachine(Config{D: 0, B: 4})
}

func TestReadUnwrittenBlockIsZero(t *testing.T) {
	m := NewMachine(Config{D: 2, B: 4})
	blk := m.ReadBlock(Addr{Disk: 1, Block: 7})
	if len(blk) != 4 {
		t.Fatalf("block length = %d, want 4", len(blk))
	}
	for i, w := range blk {
		if w != 0 {
			t.Errorf("unwritten block word %d = %d, want 0", i, w)
		}
	}
}

func TestWriteThenRead(t *testing.T) {
	m := NewMachine(Config{D: 4, B: 3})
	m.WriteBlock(Addr{Disk: 2, Block: 5}, []Word{10, 20, 30})
	got := m.ReadBlock(Addr{Disk: 2, Block: 5})
	want := []Word{10, 20, 30}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("word %d = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestPartialWriteLeavesTail(t *testing.T) {
	m := NewMachine(Config{D: 1, B: 4})
	a := Addr{Disk: 0, Block: 0}
	m.WriteBlock(a, []Word{1, 2, 3, 4})
	m.WriteBlock(a, []Word{9})
	got := m.ReadBlock(a)
	want := []Word{9, 2, 3, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("word %d = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestBatchReadCostOneDiskEach(t *testing.T) {
	m := NewMachine(Config{D: 4, B: 2})
	addrs := []Addr{{0, 0}, {1, 5}, {2, 3}, {3, 9}}
	m.BatchRead(addrs)
	s := m.Stats()
	if s.ParallelIOs != 1 {
		t.Errorf("ParallelIOs = %d, want 1 for one block per disk", s.ParallelIOs)
	}
	if s.BlockReads != 4 {
		t.Errorf("BlockReads = %d, want 4", s.BlockReads)
	}
	if s.MaxBatch != 1 {
		t.Errorf("MaxBatch = %d, want 1", s.MaxBatch)
	}
}

func TestBatchReadCostConflicts(t *testing.T) {
	m := NewMachine(Config{D: 4, B: 2})
	// Three requests to disk 1, one to disk 0: depth 3.
	addrs := []Addr{{1, 0}, {1, 1}, {1, 2}, {0, 0}}
	m.BatchRead(addrs)
	if got := m.Stats().ParallelIOs; got != 3 {
		t.Errorf("ParallelIOs = %d, want 3 under per-disk conflicts", got)
	}
}

func TestDiskHeadModelIgnoresPlacement(t *testing.T) {
	m := NewMachine(Config{D: 4, B: 2, Model: DiskHead})
	// Four blocks on the same disk: still one parallel I/O with 4 heads.
	addrs := []Addr{{1, 0}, {1, 1}, {1, 2}, {1, 3}}
	m.BatchRead(addrs)
	if got := m.Stats().ParallelIOs; got != 1 {
		t.Errorf("disk-head ParallelIOs = %d, want 1", got)
	}
	// Five blocks need two steps.
	m.ResetStats()
	m.BatchRead(append(addrs, Addr{1, 4}))
	if got := m.Stats().ParallelIOs; got != 2 {
		t.Errorf("disk-head ParallelIOs = %d, want 2 for 5 blocks", got)
	}
}

func TestEmptyBatchIsFree(t *testing.T) {
	m := NewMachine(Config{D: 2, B: 2})
	m.BatchRead(nil)
	m.BatchWrite(nil)
	if got := m.Stats().ParallelIOs; got != 0 {
		t.Errorf("empty batches cost %d parallel I/Os, want 0", got)
	}
}

func TestStatsSub(t *testing.T) {
	m := NewMachine(Config{D: 2, B: 2})
	m.WriteBlock(Addr{0, 0}, []Word{1})
	before := m.Stats()
	m.ReadBlock(Addr{0, 0})
	m.ReadBlock(Addr{1, 0})
	delta := m.Stats().Sub(before)
	if delta.ParallelIOs != 2 || delta.BlockReads != 2 || delta.BlockWrites != 0 {
		t.Errorf("delta = %+v, want 2 parallel I/Os, 2 reads, 0 writes", delta)
	}
}

func TestResetStats(t *testing.T) {
	m := NewMachine(Config{D: 2, B: 2})
	m.WriteBlock(Addr{0, 0}, []Word{1})
	m.ResetStats()
	if s := m.Stats(); s.ParallelIOs != 0 || s.BlockWrites != 0 {
		t.Errorf("stats after reset = %+v, want zeros", s)
	}
	// Data must survive a stats reset.
	if got := m.ReadBlock(Addr{0, 0})[0]; got != 1 {
		t.Errorf("data after reset = %d, want 1", got)
	}
}

func TestReadReturnsCopy(t *testing.T) {
	m := NewMachine(Config{D: 1, B: 2})
	a := Addr{0, 0}
	m.WriteBlock(a, []Word{7, 8})
	blk := m.ReadBlock(a)
	blk[0] = 99
	if got := m.ReadBlock(a)[0]; got != 7 {
		t.Errorf("mutating a returned block changed the disk: got %d, want 7", got)
	}
}

func TestWriteTooLargePanics(t *testing.T) {
	m := NewMachine(Config{D: 1, B: 2})
	defer func() {
		if recover() == nil {
			t.Fatal("oversized write did not panic")
		}
	}()
	m.WriteBlock(Addr{0, 0}, []Word{1, 2, 3})
}

func TestBadAddrPanics(t *testing.T) {
	m := NewMachine(Config{D: 2, B: 2})
	for _, a := range []Addr{{Disk: -1, Block: 0}, {Disk: 2, Block: 0}, {Disk: 0, Block: -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("address %v did not panic", a)
				}
			}()
			m.ReadBlock(a)
		}()
	}
}

func TestStripeRoundTrip(t *testing.T) {
	m := NewMachine(Config{D: 3, B: 2})
	data := []Word{1, 2, 3, 4, 5, 6}
	m.WriteStripe(4, data)
	if got := m.Stats().ParallelIOs; got != 1 {
		t.Errorf("stripe write cost %d parallel I/Os, want 1", got)
	}
	got := m.ReadStripe(4)
	for i := range data {
		if got[i] != data[i] {
			t.Errorf("stripe word %d = %d, want %d", i, got[i], data[i])
		}
	}
	if got := m.Stats().ParallelIOs; got != 2 {
		t.Errorf("total parallel I/Os = %d, want 2", got)
	}
}

func TestStripeShortWrite(t *testing.T) {
	m := NewMachine(Config{D: 3, B: 2})
	m.WriteStripe(0, []Word{1, 2, 3}) // fills disk 0 fully, disk 1 partially
	got := m.ReadStripe(0)
	want := []Word{1, 2, 3, 0, 0, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("stripe word %d = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestStripeOversizePanics(t *testing.T) {
	m := NewMachine(Config{D: 2, B: 2})
	defer func() {
		if recover() == nil {
			t.Fatal("oversized stripe write did not panic")
		}
	}()
	m.WriteStripe(0, make([]Word, 5))
}

func TestBlocksAllocated(t *testing.T) {
	m := NewMachine(Config{D: 3, B: 2})
	m.WriteBlock(Addr{1, 4}, []Word{1})
	m.WriteBlock(Addr{2, 0}, []Word{1})
	alloc := m.BlocksAllocated()
	if alloc[0] != 0 || alloc[1] != 5 || alloc[2] != 1 {
		t.Errorf("BlocksAllocated = %v, want [0 5 1]", alloc)
	}
	if m.TotalBlocks() != 6 {
		t.Errorf("TotalBlocks = %d, want 6", m.TotalBlocks())
	}
}

func TestPeekDoesNotAccount(t *testing.T) {
	m := NewMachine(Config{D: 1, B: 2})
	m.WriteBlock(Addr{0, 0}, []Word{5})
	before := m.Stats()
	if got := m.Peek(Addr{0, 0})[0]; got != 5 {
		t.Errorf("Peek = %d, want 5", got)
	}
	if m.Stats() != before {
		t.Error("Peek changed the stats")
	}
}

func TestPerDiskIOs(t *testing.T) {
	m := NewMachine(Config{D: 3, B: 2})
	m.BatchRead([]Addr{{0, 0}, {1, 0}})
	m.WriteBlock(Addr{1, 1}, []Word{1})
	got := m.PerDiskIOs()
	want := []int64{1, 2, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("disk %d = %d transfers, want %d", i, got[i], want[i])
		}
	}
	m.ResetStats()
	for _, v := range m.PerDiskIOs() {
		if v != 0 {
			t.Error("reset left per-disk tallies")
		}
	}
	// The returned slice is a copy.
	m.ReadBlock(Addr{2, 0})
	snap := m.PerDiskIOs()
	snap[2] = 99
	if m.PerDiskIOs()[2] != 1 {
		t.Error("PerDiskIOs returned a live slice")
	}
}

func TestStripedAccessBalancesDisks(t *testing.T) {
	m := NewMachine(Config{D: 4, B: 8})
	for i := 0; i < 100; i++ {
		m.WriteStripe(i, make([]Word, 32))
		m.ReadStripe(i)
	}
	per := m.PerDiskIOs()
	for i := 1; i < len(per); i++ {
		if per[i] != per[0] {
			t.Fatalf("striped traffic skewed: %v", per)
		}
	}
}

func TestConcurrentAccessIsSafe(t *testing.T) {
	m := NewMachine(Config{D: 4, B: 4})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				a := Addr{Disk: g % 4, Block: i % 16}
				m.WriteBlock(a, []Word{Word(g)})
				m.ReadBlock(a)
			}
		}(g)
	}
	wg.Wait()
	want := int64(8 * 100 * 2)
	if got := m.Stats().ParallelIOs; got != want {
		t.Errorf("ParallelIOs = %d, want %d", got, want)
	}
}

// Property: for any batch with at most one address per disk, the cost is
// exactly one parallel I/O in the parallel disk model.
func TestPropertyOneBlockPerDiskCostsOne(t *testing.T) {
	f := func(blocks [8]uint8, mask uint8) bool {
		m := NewMachine(Config{D: 8, B: 1})
		var addrs []Addr
		for d := 0; d < 8; d++ {
			if mask&(1<<d) != 0 {
				addrs = append(addrs, Addr{Disk: d, Block: int(blocks[d])})
			}
		}
		if len(addrs) == 0 {
			return m.Stats().ParallelIOs == 0
		}
		m.BatchRead(addrs)
		return m.Stats().ParallelIOs == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: write-then-read round-trips arbitrary block contents.
func TestPropertyWriteReadRoundTrip(t *testing.T) {
	f := func(data []Word, disk uint8, block uint8) bool {
		m := NewMachine(Config{D: 4, B: 16})
		if len(data) > 16 {
			data = data[:16]
		}
		a := Addr{Disk: int(disk % 4), Block: int(block)}
		m.WriteBlock(a, data)
		got := m.ReadBlock(a)
		for i, w := range data {
			if got[i] != w {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: stripe round-trip for arbitrary payloads up to D*B words.
func TestPropertyStripeRoundTrip(t *testing.T) {
	f := func(data []Word, block uint8) bool {
		m := NewMachine(Config{D: 4, B: 8})
		if len(data) > 32 {
			data = data[:32]
		}
		m.WriteStripe(int(block), data)
		got := m.ReadStripe(int(block))
		for i, w := range data {
			if got[i] != w {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

package pdm

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Snapshot format: a compact binary dump of a machine — configuration,
// I/O counters, and every materialized block. Dictionaries persist
// themselves as a small metadata header followed by their machine's
// snapshot (see internal/core's persist.go), which is enough to restore
// them exactly: all durable state lives in the blocks.
//
// Version 2 added the observability counters (per-disk transfer tallies
// and the per-batch depth histogram); version-1 snapshots are still
// readable and restore with those counters zeroed. Config.Workers is
// deliberately not persisted: it only tunes wall-clock parallelism, and
// a restored machine should use the restoring host's defaults.

// snapshotMagic identifies the format; the trailing digit is a version.
var (
	snapshotMagicV1 = [4]byte{'P', 'D', 'M', '1'}
	snapshotMagic   = [4]byte{'P', 'D', 'M', '2'}
)

// WriteSnapshot serializes the machine to w. It locks every shard for
// the duration, so the blocks it writes are a consistent cross-disk
// point in time; the counters are read atomically just before. For an
// exact counters-vs-blocks correspondence, snapshot a quiesced machine
// (dictionaries do: their persist paths hold the structure's write
// lock).
func (m *Machine) WriteSnapshot(w io.Writer) error {
	for d := range m.shards {
		m.shards[d].mu.Lock()
	}
	defer func() {
		for d := range m.shards {
			m.shards[d].mu.Unlock()
		}
	}()
	stats := m.Stats()

	bw := bufio.NewWriter(w)
	if _, err := bw.Write(snapshotMagic[:]); err != nil {
		return err
	}
	head := []uint64{
		uint64(m.cfg.D), uint64(m.cfg.B), uint64(m.cfg.Model),
		uint64(stats.ParallelIOs), uint64(stats.BlockReads),
		uint64(stats.BlockWrites), uint64(stats.MaxBatch),
	}
	for _, v := range head {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, stats.DepthCounts[:]); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, m.PerDiskIOs()); err != nil {
		return err
	}
	for d := range m.shards {
		disk := m.shards[d].blocks //lint:pdm-allow guardedby: every shard lock is held (acquired in the loop above)
		if err := binary.Write(bw, binary.LittleEndian, uint64(len(disk))); err != nil {
			return err
		}
		for _, blk := range disk {
			if blk == nil {
				if err := bw.WriteByte(0); err != nil {
					return err
				}
				continue
			}
			if err := bw.WriteByte(1); err != nil {
				return err
			}
			if err := binary.Write(bw, binary.LittleEndian, blk); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadSnapshot restores a machine from a snapshot produced by
// WriteSnapshot (current or version-1 format).
func ReadSnapshot(r io.Reader) (*Machine, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("pdm: reading snapshot magic: %w", err)
	}
	if magic != snapshotMagic && magic != snapshotMagicV1 {
		return nil, fmt.Errorf("pdm: not a machine snapshot (magic %q)", magic)
	}
	head := make([]uint64, 7)
	for i := range head {
		if err := binary.Read(br, binary.LittleEndian, &head[i]); err != nil {
			return nil, fmt.Errorf("pdm: reading snapshot header: %w", err)
		}
	}
	cfg := Config{D: int(head[0]), B: int(head[1]), Model: Model(head[2])}
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("pdm: snapshot carries invalid config: %w", err)
	}
	// Plausibility caps: the header fields come off an untrusted stream,
	// and D and B size up-front allocations. Anything beyond these bounds
	// is a corrupt (or hostile) snapshot, not a machine we ever built.
	if cfg.D > maxSnapshotDisks || cfg.B > maxSnapshotBlockWords {
		return nil, fmt.Errorf("pdm: snapshot config implausible (D=%d, B=%d)", cfg.D, cfg.B)
	}
	m := NewMachine(cfg)
	m.pios.Store(int64(head[3]))
	m.blockReads.Store(int64(head[4]))
	m.blockWrites.Store(int64(head[5]))
	m.maxBatch.Store(int64(head[6]))
	if magic == snapshotMagic {
		var depths [DepthBuckets]int64
		if err := binary.Read(br, binary.LittleEndian, depths[:]); err != nil {
			return nil, fmt.Errorf("pdm: reading depth counts: %w", err)
		}
		for i, v := range depths {
			m.depthCounts[i].Store(v)
		}
		perDisk := make([]int64, cfg.D)
		if err := binary.Read(br, binary.LittleEndian, perDisk); err != nil {
			return nil, fmt.Errorf("pdm: reading per-disk tallies: %w", err)
		}
		for d, v := range perDisk {
			m.shards[d].ios.Store(v)
		}
	}
	zeroSum := m.shards[0].zeroSum
	for d := 0; d < cfg.D; d++ {
		var nBlocks uint64
		if err := binary.Read(br, binary.LittleEndian, &nBlocks); err != nil {
			return nil, fmt.Errorf("pdm: reading disk %d: %w", d, err)
		}
		// nBlocks is untrusted: grow the disk incrementally, so a huge
		// length field fails at the stream's real end instead of sizing
		// one giant allocation up front.
		disk := make([][]Word, 0, minUint64(nBlocks, 4096))
		sums := make([]uint32, 0, cap(disk))
		for b := uint64(0); b < nBlocks; b++ {
			present, err := br.ReadByte()
			if err != nil {
				return nil, fmt.Errorf("pdm: reading disk %d block %d: %w", d, b, err)
			}
			if present == 0 {
				disk = append(disk, nil)
				sums = append(sums, zeroSum)
				continue
			}
			blk := make([]Word, cfg.B)
			if err := binary.Read(br, binary.LittleEndian, blk); err != nil {
				return nil, fmt.Errorf("pdm: reading disk %d block %d: %w", d, b, err)
			}
			disk = append(disk, blk)
			// Checksums are not persisted: recompute them, so loading a
			// snapshot always yields a machine whose blocks verify (any
			// latent corruption present at save time is thereby blessed —
			// scrub before saving if that matters).
			sums = append(sums, crcBlock(blk))
		}
		m.shards[d].blocks = disk //lint:pdm-allow guardedby: machine is not yet published; no other goroutine can reach it
		m.shards[d].sums = sums   //lint:pdm-allow guardedby: machine is not yet published; no other goroutine can reach it
	}
	return m, nil
}

// Snapshot plausibility bounds for untrusted streams: comfortably above
// any configuration the experiments use, far below anything that could
// size a damaging allocation.
const (
	maxSnapshotDisks      = 1 << 20
	maxSnapshotBlockWords = 1 << 21 // 16 MiB per block
)

func minUint64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

package pdm

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"strings"
)

// Fault layer. The simulated machine can be wired to a FaultInjector
// that decides, per block access, whether the access succeeds, fails, or
// is corrupted. Faults surface only through the error-returning batch
// methods (TryBatchRead / TryBatchWrite); the classic infallible
// BatchRead / BatchWrite bypass injection entirely, so structures that
// have not been taught degraded-mode operation keep seeing a perfect
// machine. Every block additionally carries a CRC32 checksum, updated on
// every write and verified on every Try read, so latent corruption (bit
// flips injected between a write and a later read) is detected rather
// than silently returned.
//
// Each injected fault is also reported through the machine's
// observability hook as an Event tagged "fault.<kind>" ("fault.failstop",
// "fault.transient", "fault.corrupt", "fault.stall", "fault.checksum").
// The batch's own event carries only the base cost; a stall's extra
// steps ride on its fault.stall event, so per-tag step sums still
// partition the machine's total parallel I/Os. With a deterministic
// injector the fault event sequence is reproducible bit for bit.

// Errors a faulted block access can carry.
var (
	// ErrDiskFailed marks an access to a fail-stopped disk.
	ErrDiskFailed = errors.New("pdm: disk failed")
	// ErrTransient marks an access that failed this time but may succeed
	// if retried.
	ErrTransient = errors.New("pdm: transient I/O error")
	// ErrChecksum marks a read whose block content does not match its
	// stored checksum (detected corruption).
	ErrChecksum = errors.New("pdm: block checksum mismatch")
)

// FaultTagPrefix prefixes the tag of every fault event the machine
// synthesizes ("fault." + FaultKind.String()); sinks use it to tell
// fault events apart from the batches they ride on.
const FaultTagPrefix = "fault."

// FaultKind classifies what a FaultInjector does to one block access.
type FaultKind uint8

// Fault kinds.
const (
	// FaultNone lets the access through untouched.
	FaultNone FaultKind = iota
	// FaultFailStop denies the access: the disk is down (fail-stop).
	FaultFailStop
	// FaultTransient fails this access only; a retry may succeed.
	FaultTransient
	// FaultCorrupt flips one bit of the stored block (the checksum is
	// left stale, so the damage is detectable, not silent) before the
	// access proceeds; a read of the damaged block reports ErrChecksum.
	FaultCorrupt
	// FaultStall lets the access through but charges extra parallel-I/O
	// steps (a slow disk, a timeout served late).
	FaultStall
)

// String names the fault kind as used in event tags.
func (k FaultKind) String() string {
	switch k {
	case FaultNone:
		return "none"
	case FaultFailStop:
		return "failstop"
	case FaultTransient:
		return "transient"
	case FaultCorrupt:
		return "corrupt"
	case FaultStall:
		return "stall"
	default:
		return fmt.Sprintf("FaultKind(%d)", int(k))
	}
}

// Fault is one injection decision.
type Fault struct {
	Kind FaultKind
	// Bit is the bit offset to flip for FaultCorrupt (taken modulo the
	// block's bit width).
	Bit uint
	// Stall is the extra parallel-I/O cost for FaultStall.
	Stall int
}

// FaultInjector decides the fate of each block access issued through the
// Try batch methods. Access is called once per address, in batch order,
// while the machine's lock is held: implementations must be fast, must
// not call back into the machine, and must be deterministic if
// reproducible traces are wanted (see internal/fault for the standard
// seedable implementation).
type FaultInjector interface {
	Access(kind EventKind, a Addr) Fault
}

// BlockError describes one failed access within a Try batch.
type BlockError struct {
	// Index is the position of the access in the batch.
	Index int
	// Addr is the block address.
	Addr Addr
	// Err is ErrDiskFailed, ErrTransient, or ErrChecksum.
	Err error
}

// Error formats the single-block failure.
func (e BlockError) Error() string { return fmt.Sprintf("%v: %v", e.Addr, e.Err) }

// Unwrap exposes the underlying cause to errors.Is.
func (e BlockError) Unwrap() error { return e.Err }

// BatchError aggregates the failed accesses of one Try batch. Successful
// accesses of the same batch still carry their data; callers recover by
// inspecting Blocks and falling back to surviving replicas.
type BatchError struct {
	Blocks []BlockError
}

// Error summarizes the batch failure.
func (e *BatchError) Error() string {
	if len(e.Blocks) == 1 {
		return "pdm: 1 block access failed: " + e.Blocks[0].Error()
	}
	parts := make([]string, 0, len(e.Blocks))
	for _, b := range e.Blocks {
		parts = append(parts, b.Error())
	}
	return fmt.Sprintf("pdm: %d block accesses failed: %s", len(e.Blocks), strings.Join(parts, "; "))
}

// Unwrap exposes the per-block errors, so errors.Is(err, ErrDiskFailed)
// and friends see through a BatchError even when it is itself wrapped.
func (e *BatchError) Unwrap() []error {
	errs := make([]error, len(e.Blocks))
	for i := range e.Blocks {
		errs[i] = &e.Blocks[i]
	}
	return errs
}

// AsBatchError extracts a *BatchError from err, if it is one.
func AsBatchError(err error) (*BatchError, bool) {
	var be *BatchError
	if errors.As(err, &be) {
		return be, true
	}
	return nil, false
}

// crcBlock checksums a block's words (little-endian) with CRC-32/IEEE.
func crcBlock(blk []Word) uint32 {
	var buf [8]byte
	sum := uint32(0)
	for _, w := range blk {
		binary.LittleEndian.PutUint64(buf[:], uint64(w))
		sum = crc32.Update(sum, crc32.IEEETable, buf[:])
	}
	return sum
}

// SetFaultInjector installs (or, with nil, removes) the machine's fault
// injector. Only the Try batch methods consult it; see the package
// comment at the top of this file.
func (m *Machine) SetFaultInjector(fi FaultInjector) {
	m.mu.Lock()
	m.injector = fi
	m.mu.Unlock()
}

// Degraded reports whether any data-threatening fault (fail-stop,
// transient error, corruption, or checksum mismatch — stalls don't
// count) has been observed since the last ClearDegraded. Dictionaries
// surface this as their degraded-mode flag.
func (m *Machine) Degraded() bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.degraded
}

// ClearDegraded resets the degraded flag. Repair machinery calls it
// after a clean scrub.
func (m *Machine) ClearDegraded() {
	m.mu.Lock()
	m.degraded = false
	m.mu.Unlock()
}

// FaultCount returns the number of fault events observed (injected
// faults plus checksum mismatches) over the machine's lifetime.
func (m *Machine) FaultCount() int64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.faults
}

// sumLocked returns a pointer to the checksum slot of a block, growing
// the per-disk slice in lockstep with the disk. A freshly materialized
// slot holds the CRC of an all-zero block, matching what blockLocked
// materializes. Callers hold m.mu.
func (m *Machine) sumLocked(a Addr) *uint32 {
	sums := m.sums[a.Disk]
	for len(sums) <= a.Block {
		sums = append(sums, m.zeroSum)
	}
	m.sums[a.Disk] = sums
	return &sums[a.Block]
}

// corruptLocked flips one stored bit of a block without touching its
// checksum, leaving detectable latent damage. Callers hold m.mu.
func (m *Machine) corruptLocked(a Addr, bit uint) {
	blk := m.blockLocked(a)
	bits := uint(len(blk)) * 64
	bit %= bits
	blk[bit/64] ^= 1 << (bit % 64)
}

// verifyLocked reports whether a block's content matches its stored
// checksum. Unmaterialized blocks are trivially valid. Callers hold m.mu.
func (m *Machine) verifyLocked(a Addr) bool {
	disk := m.disks[a.Disk]
	if a.Block >= len(disk) || disk[a.Block] == nil {
		return true
	}
	return crcBlock(disk[a.Block]) == *m.sumLocked(a)
}

// faultEvent builds the hook event for one injected or detected fault.
// Only stalls carry cost: their extra steps are charged to the
// fault.stall tag rather than the issuing batch's tag, so per-tag sums
// still partition the machine's total.
func faultEvent(kind EventKind, a Addr, fk string, stall int) Event {
	return Event{Kind: kind, Tag: FaultTagPrefix + fk, Addrs: []Addr{a}, Steps: stall, Depth: stall}
}

// TryBatchRead is BatchRead with fault injection and checksum
// verification. It returns the blocks in request order; entries whose
// access failed (fail-stopped disk, transient error, checksum mismatch)
// are nil, and the error is a *BatchError listing them. The batch is
// accounted like BatchRead — failed accesses still cost their I/O (the
// arm moved, the timeout elapsed) and count as block reads; stalls add
// extra steps on top of the batch cost.
func (m *Machine) TryBatchRead(addrs []Addr) ([][]Word, error) {
	for _, a := range addrs {
		m.checkAddr(a)
	}
	steps, depth := m.batchCost(addrs)
	m.mu.Lock()
	out := make([][]Word, len(addrs))
	var berrs []BlockError
	var fevents []Event
	extra := 0
	degrading := false
	for i, a := range addrs {
		var f Fault
		if m.injector != nil {
			f = m.injector.Access(EventRead, a)
		}
		switch f.Kind {
		case FaultFailStop:
			berrs = append(berrs, BlockError{Index: i, Addr: a, Err: ErrDiskFailed})
			fevents = append(fevents, faultEvent(EventRead, a, "failstop", 0))
			degrading = true
			continue
		case FaultTransient:
			berrs = append(berrs, BlockError{Index: i, Addr: a, Err: ErrTransient})
			fevents = append(fevents, faultEvent(EventRead, a, "transient", 0))
			degrading = true
			continue
		case FaultCorrupt:
			m.corruptLocked(a, f.Bit)
			fevents = append(fevents, faultEvent(EventRead, a, "corrupt", 0))
			degrading = true
		case FaultStall:
			extra += f.Stall
			fevents = append(fevents, faultEvent(EventRead, a, "stall", f.Stall))
		}
		if !m.verifyLocked(a) {
			berrs = append(berrs, BlockError{Index: i, Addr: a, Err: ErrChecksum})
			fevents = append(fevents, faultEvent(EventRead, a, "checksum", 0))
			degrading = true
			continue
		}
		src := m.blockLocked(a)
		dst := make([]Word, m.cfg.B)
		copy(dst, src)
		out[i] = dst
	}
	m.accountLocked(steps+extra, depth, addrs)
	m.stats.BlockReads += int64(len(addrs))
	m.faults += int64(len(fevents))
	if degrading {
		m.degraded = true
	}
	hook, tag, span := m.hookLocked(len(addrs))
	m.mu.Unlock()
	if hook != nil {
		hook.Event(Event{Kind: EventRead, Tag: tag, Addrs: addrs, Steps: steps, Depth: depth, Span: span})
		for _, e := range fevents {
			e.Span = span
			hook.Event(e)
		}
	}
	if len(berrs) > 0 {
		return out, &BatchError{Blocks: berrs}
	}
	return out, nil
}

// TryBatchWrite is BatchWrite with fault injection: writes hitting a
// fail-stopped disk or a transient fault are NOT applied and are
// reported in the returned *BatchError; a corruption fault flips a
// stored bit after the write lands (leaving the checksum stale); stalls
// charge extra steps. Applied writes update their block's checksum.
func (m *Machine) TryBatchWrite(writes []BlockWrite) error {
	addrs := make([]Addr, len(writes))
	for i, w := range writes {
		m.checkAddr(w.Addr)
		if len(w.Data) > m.cfg.B {
			panic(fmt.Sprintf("pdm: write of %d words exceeds block size %d", len(w.Data), m.cfg.B))
		}
		addrs[i] = w.Addr
	}
	steps, depth := m.batchCost(addrs)
	m.mu.Lock()
	var berrs []BlockError
	var fevents []Event
	extra := 0
	degrading := false
	for i, w := range writes {
		var f Fault
		if m.injector != nil {
			f = m.injector.Access(EventWrite, w.Addr)
		}
		switch f.Kind {
		case FaultFailStop:
			berrs = append(berrs, BlockError{Index: i, Addr: w.Addr, Err: ErrDiskFailed})
			fevents = append(fevents, faultEvent(EventWrite, w.Addr, "failstop", 0))
			degrading = true
			continue
		case FaultTransient:
			berrs = append(berrs, BlockError{Index: i, Addr: w.Addr, Err: ErrTransient})
			fevents = append(fevents, faultEvent(EventWrite, w.Addr, "transient", 0))
			degrading = true
			continue
		case FaultStall:
			extra += f.Stall
			fevents = append(fevents, faultEvent(EventWrite, w.Addr, "stall", f.Stall))
		}
		blk := m.blockLocked(w.Addr)
		copy(blk, w.Data)
		*m.sumLocked(w.Addr) = crcBlock(blk)
		if f.Kind == FaultCorrupt {
			m.corruptLocked(w.Addr, f.Bit)
			fevents = append(fevents, faultEvent(EventWrite, w.Addr, "corrupt", 0))
			degrading = true
		}
	}
	m.accountLocked(steps+extra, depth, addrs)
	m.stats.BlockWrites += int64(len(writes))
	m.faults += int64(len(fevents))
	if degrading {
		m.degraded = true
	}
	hook, tag, span := m.hookLocked(len(addrs))
	m.mu.Unlock()
	if hook != nil {
		hook.Event(Event{Kind: EventWrite, Tag: tag, Addrs: addrs, Steps: steps, Depth: depth, Span: span})
		for _, e := range fevents {
			e.Span = span
			hook.Event(e)
		}
	}
	if len(berrs) > 0 {
		return &BatchError{Blocks: berrs}
	}
	return nil
}

// WipeDisk discards every block (and checksum) of one disk, simulating
// the swap-in of a blank replacement drive. No I/O is accounted; the
// rebuild that follows (a dictionary's Repair) is where the cost lives.
func (m *Machine) WipeDisk(disk int) {
	m.checkAddr(Addr{Disk: disk})
	m.mu.Lock()
	m.disks[disk] = nil
	m.sums[disk] = nil
	m.mu.Unlock()
}

// VerifyChecksums scans every materialized block and returns the
// addresses whose content does not match the stored checksum. Like Peek
// it performs no accounted I/O — it is the ground-truth diagnostic;
// dictionaries implement accounted scrubs on top of TryBatchRead.
func (m *Machine) VerifyChecksums() []Addr {
	m.mu.Lock()
	defer m.mu.Unlock()
	var bad []Addr
	for d, disk := range m.disks {
		for b, blk := range disk {
			if blk == nil {
				continue
			}
			if crcBlock(blk) != *m.sumLocked(Addr{Disk: d, Block: b}) {
				bad = append(bad, Addr{Disk: d, Block: b})
			}
		}
	}
	return bad
}

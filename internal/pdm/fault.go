package pdm

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"strings"
)

// Fault layer. The simulated machine can be wired to a FaultInjector
// that decides, per block access, whether the access succeeds, fails, or
// is corrupted. Faults surface only through the error-returning batch
// methods (TryBatchRead / TryBatchWrite); the classic infallible
// BatchRead / BatchWrite bypass injection entirely, so structures that
// have not been taught degraded-mode operation keep seeing a perfect
// machine. Every block additionally carries a CRC32 checksum, updated on
// every write and verified on every Try read, so latent corruption (bit
// flips injected between a write and a later read) is detected rather
// than silently returned.
//
// Each injected fault is also reported through the machine's
// observability hook as an Event tagged "fault.<kind>" ("fault.failstop",
// "fault.transient", "fault.corrupt", "fault.stall", "fault.checksum").
// The batch's own event carries only the base cost; a stall's extra
// steps ride on its fault.stall event, so per-tag step sums still
// partition the machine's total parallel I/Os. With a deterministic
// injector the fault event sequence is reproducible bit for bit.

// Errors a faulted block access can carry.
var (
	// ErrDiskFailed marks an access to a fail-stopped disk.
	ErrDiskFailed = errors.New("pdm: disk failed")
	// ErrTransient marks an access that failed this time but may succeed
	// if retried.
	ErrTransient = errors.New("pdm: transient I/O error")
	// ErrChecksum marks a read whose block content does not match its
	// stored checksum (detected corruption).
	ErrChecksum = errors.New("pdm: block checksum mismatch")
)

// FaultTagPrefix prefixes the tag of every fault event the machine
// synthesizes ("fault." + FaultKind.String()); sinks use it to tell
// fault events apart from the batches they ride on.
const FaultTagPrefix = "fault."

// FaultKind classifies what a FaultInjector does to one block access.
type FaultKind uint8

// Fault kinds.
const (
	// FaultNone lets the access through untouched.
	FaultNone FaultKind = iota
	// FaultFailStop denies the access: the disk is down (fail-stop).
	FaultFailStop
	// FaultTransient fails this access only; a retry may succeed.
	FaultTransient
	// FaultCorrupt flips one bit of the stored block (the checksum is
	// left stale, so the damage is detectable, not silent) before the
	// access proceeds; a read of the damaged block reports ErrChecksum.
	FaultCorrupt
	// FaultStall lets the access through but charges extra parallel-I/O
	// steps (a slow disk, a timeout served late).
	FaultStall
)

// String names the fault kind as used in event tags.
func (k FaultKind) String() string {
	switch k {
	case FaultNone:
		return "none"
	case FaultFailStop:
		return "failstop"
	case FaultTransient:
		return "transient"
	case FaultCorrupt:
		return "corrupt"
	case FaultStall:
		return "stall"
	default:
		return fmt.Sprintf("FaultKind(%d)", int(k))
	}
}

// Fault is one injection decision.
type Fault struct {
	Kind FaultKind
	// Bit is the bit offset to flip for FaultCorrupt (taken modulo the
	// block's bit width).
	Bit uint
	// Stall is the extra parallel-I/O cost for FaultStall.
	Stall int
}

// FaultInjector decides the fate of each block access issued through the
// Try batch methods. Access is called once per address, in batch order,
// under a machine lock that keeps each batch's draws contiguous even
// with concurrent Try batches: implementations must be fast, must not
// call back into the machine, and must be deterministic if reproducible
// traces are wanted (see internal/fault for the standard seedable
// implementation).
type FaultInjector interface {
	Access(kind EventKind, a Addr) Fault
}

// BlockError describes one failed access within a Try batch.
type BlockError struct {
	// Index is the position of the access in the batch.
	Index int
	// Addr is the block address.
	Addr Addr
	// Err is ErrDiskFailed, ErrTransient, or ErrChecksum.
	Err error
}

// Error formats the single-block failure.
func (e BlockError) Error() string { return fmt.Sprintf("%v: %v", e.Addr, e.Err) }

// Unwrap exposes the underlying cause to errors.Is.
func (e BlockError) Unwrap() error { return e.Err }

// BatchError aggregates the failed accesses of one Try batch. Successful
// accesses of the same batch still carry their data; callers recover by
// inspecting Blocks and falling back to surviving replicas.
type BatchError struct {
	Blocks []BlockError
}

// Error summarizes the batch failure.
func (e *BatchError) Error() string {
	if len(e.Blocks) == 1 {
		return "pdm: 1 block access failed: " + e.Blocks[0].Error()
	}
	parts := make([]string, 0, len(e.Blocks))
	for _, b := range e.Blocks {
		parts = append(parts, b.Error())
	}
	return fmt.Sprintf("pdm: %d block accesses failed: %s", len(e.Blocks), strings.Join(parts, "; "))
}

// Unwrap exposes the per-block errors, so errors.Is(err, ErrDiskFailed)
// and friends see through a BatchError even when it is itself wrapped.
func (e *BatchError) Unwrap() []error {
	errs := make([]error, len(e.Blocks))
	for i := range e.Blocks {
		errs[i] = &e.Blocks[i]
	}
	return errs
}

// AsBatchError extracts a *BatchError from err, if it is one.
func AsBatchError(err error) (*BatchError, bool) {
	var be *BatchError
	if errors.As(err, &be) {
		return be, true
	}
	return nil, false
}

// crcBlock checksums a block's words (little-endian) with CRC-32/IEEE.
func crcBlock(blk []Word) uint32 {
	var buf [8]byte
	sum := uint32(0)
	for _, w := range blk {
		binary.LittleEndian.PutUint64(buf[:], uint64(w))
		sum = crc32.Update(sum, crc32.IEEETable, buf[:])
	}
	return sum
}

// FlipBit flips one stored bit of a block in place, leaving the stored
// checksum stale — the same silent latent damage a FaultCorrupt injects,
// but manifested immediately instead of on the block's next access. No
// I/O is performed or accounted, and health is not notified: the damage
// stays invisible until a checksum-verified read trips over it. Chaos
// schedules use it so a scripted corruption lands at its scheduled step
// even when the target block is cold. Safe to call from inside a
// FaultInjector (it takes only the target shard's lock).
func (m *Machine) FlipBit(a Addr, bit uint) {
	m.checkAddr(a)
	s := &m.shards[a.Disk]
	s.mu.Lock()
	s.corruptLocked(a.Block, bit)
	s.mu.Unlock()
}

// BlockClean reports whether a block's stored content matches its
// checksum, without performing or accounting any I/O. Like FlipBit it is
// an oracle for chaos schedules (gating a round on the previous round's
// damage having been rewritten), safe to call from inside a
// FaultInjector.
func (m *Machine) BlockClean(a Addr) bool {
	m.checkAddr(a)
	s := &m.shards[a.Disk]
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.verifyLocked(a.Block)
}

// SetFaultInjector installs (or, with nil, removes) the machine's fault
// injector. Only the Try batch methods consult it; see the package
// comment at the top of this file.
func (m *Machine) SetFaultInjector(fi FaultInjector) {
	m.faultMu.Lock()
	m.injector = fi
	m.faultMu.Unlock()
}

// Degraded reports whether any data-threatening fault (fail-stop,
// transient error, corruption, or checksum mismatch — stalls don't
// count) has been observed since the last ClearDegraded, or any disk is
// currently not Healthy. It is a derived view over the per-disk health
// state machine (see Health for the per-disk report); dictionaries
// surface it as their degraded-mode flag.
func (m *Machine) Degraded() bool {
	return m.degraded.Load() || m.unhealthy.Load() != 0
}

// ClearDegraded resets the degraded flag AND returns every disk to the
// Healthy state, clearing transient windows. Repair machinery calls it
// after a clean full scrub — the one observation that vouches for all
// disks at once. To clear a single repaired disk, use MarkHealthy.
func (m *Machine) ClearDegraded() {
	m.degraded.Store(false)
	m.healthMu.Lock()
	for d := range m.health {
		m.transitionLocked(d, Healthy)
		m.health[d].reachable = false
		m.health[d].window = m.health[d].window[:0]
	}
	evs := m.drainHealthEventsLocked()
	m.healthMu.Unlock()
	m.emitAnnotations(evs)
}

// FaultCount returns the number of fault events observed (injected
// faults plus checksum mismatches) over the machine's lifetime.
func (m *Machine) FaultCount() int64 {
	return m.faults.Load()
}

// faultEvent builds the hook event for one injected or detected fault.
// Only stalls carry cost: their extra steps are charged to the
// fault.stall tag rather than the issuing batch's tag, so per-tag sums
// still partition the machine's total.
func faultEvent(kind EventKind, a Addr, fk string, stall int) Event {
	return Event{Kind: kind, Tag: FaultTagPrefix + fk, Addrs: []Addr{a}, Steps: stall, Depth: stall}
}

// drawFaults consults the injector once per address, in batch order,
// under faultMu so each batch's decision sequence stays contiguous
// under concurrency. Returns nil when no injector is installed.
func (m *Machine) drawFaults(kind EventKind, addrs []Addr) []Fault {
	m.faultMu.Lock()
	defer m.faultMu.Unlock()
	if m.injector == nil {
		return nil
	}
	fs := make([]Fault, len(addrs))
	for i, a := range addrs {
		fs[i] = m.injector.Access(kind, a)
	}
	return fs
}

// finishTry turns per-access outcomes into the batch's fault events,
// block errors, stall surcharge, and degraded/fault bookkeeping —
// sequentially, in batch order, so the emitted event sequence does not
// depend on how the accesses were scheduled across shards. hevents are
// the EventHealth annotations for transitions the batch's outcomes
// caused; the caller emits them after the fault events but keeps them
// out of fault accounting (they are annotations, not faults).
func (m *Machine) finishTry(kind EventKind, addrs []Addr, fs []Fault, res []error) (berrs []BlockError, fevents, hevents []Event, extra int) {
	degrading := false
	for i, a := range addrs {
		var f Fault
		if fs != nil {
			f = fs[i]
		}
		switch f.Kind {
		case FaultFailStop:
			fevents = append(fevents, faultEvent(kind, a, "failstop", 0))
			degrading = true
		case FaultTransient:
			fevents = append(fevents, faultEvent(kind, a, "transient", 0))
			degrading = true
		case FaultCorrupt:
			fevents = append(fevents, faultEvent(kind, a, "corrupt", 0))
			degrading = true
		case FaultStall:
			extra += f.Stall
			fevents = append(fevents, faultEvent(kind, a, "stall", f.Stall))
		}
		if res[i] == nil {
			continue
		}
		berrs = append(berrs, BlockError{Index: i, Addr: a, Err: res[i]})
		if res[i] == ErrChecksum {
			fevents = append(fevents, faultEvent(kind, a, "checksum", 0))
			degrading = true
		}
	}
	m.faults.Add(int64(len(fevents)))
	if degrading {
		m.degraded.Store(true)
	}
	// Feed the per-disk health state machines. The fast path — no
	// injector, no errors, every disk Healthy — skips the pass entirely;
	// otherwise one observation per access is folded in batch order, so
	// health transitions land at deterministic points of the trace.
	if fs != nil || len(berrs) > 0 || m.unhealthy.Load() != 0 {
		obs := make([]healthObs, len(addrs))
		for i, a := range addrs {
			var f Fault
			if fs != nil {
				f = fs[i]
			}
			obs[i] = healthObs{
				disk:     a.Disk,
				kind:     f.Kind,
				checksum: res[i] == ErrChecksum,
				ok:       res[i] == nil && f.Kind == FaultNone,
			}
		}
		hevents = m.observeHealth(obs, m.pios.Load())
	}
	return berrs, fevents, hevents, extra
}

// TryBatchRead is BatchRead with fault injection and checksum
// verification. It returns the blocks in request order; entries whose
// access failed (fail-stopped disk, transient error, checksum mismatch)
// are nil, and the error is a *BatchError listing them. The batch is
// accounted like BatchRead — failed accesses still cost their I/O (the
// arm moved, the timeout elapsed) and count as block reads; stalls add
// extra steps on top of the batch cost.
func (m *Machine) TryBatchRead(addrs []Addr) ([][]Word, error) {
	return m.tryBatchRead(nil, nil, addrs)
}

// TryBatchReadOp is TryBatchRead charged and attributed to op: the op is
// charged the batch's steps including any stall surcharge, its blocks,
// and one fault per emitted fault event, so the op's counters match the
// sum over its events exactly.
func (m *Machine) TryBatchReadOp(op *Op, addrs []Addr) ([][]Word, error) {
	return m.tryBatchRead(op, nil, addrs)
}

// TryBatchReadShared is TryBatchRead on behalf of several operations —
// the fault-aware counterpart of BatchReadShared, with the same merged-
// batch accounting rule: the machine is charged once, every listed op is
// charged the batch's full steps (stall surcharge included), blocks, and
// fault events, and the emitted event carries the attribution list.
func (m *Machine) TryBatchReadShared(ops []*Op, addrs []Addr) ([][]Word, error) {
	return m.tryBatchRead(nil, ops, addrs)
}

func (m *Machine) tryBatchRead(op *Op, shared []*Op, addrs []Addr) ([][]Word, error) {
	out := make([][]Word, len(addrs))
	if len(addrs) == 0 {
		return out, nil
	}
	for _, a := range addrs {
		m.checkAddr(a)
	}
	fs := m.drawFaults(EventRead, addrs)
	res := make([]error, len(addrs))
	apply := func(i int) {
		a := addrs[i]
		s := &m.shards[a.Disk]
		s.ios.Add(1)
		var f Fault
		if fs != nil {
			f = fs[i]
		}
		switch f.Kind {
		case FaultFailStop:
			res[i] = ErrDiskFailed
			return
		case FaultTransient:
			res[i] = ErrTransient
			return
		}
		s.mu.Lock()
		if f.Kind == FaultCorrupt {
			s.corruptLocked(a.Block, f.Bit)
		}
		if !s.verifyLocked(a.Block) {
			s.mu.Unlock()
			res[i] = ErrChecksum
			return
		}
		src := s.blockLocked(a.Block)
		dst := make([]Word, m.cfg.B)
		copy(dst, src)
		s.mu.Unlock()
		out[i] = dst
	}
	steps, depth := m.tryRun(addrs, apply)
	berrs, fevents, hevents, extra := m.finishTry(EventRead, addrs, fs, res)
	m.charge(steps+extra, depth)
	m.blockReads.Add(int64(len(addrs)))
	chargeOps(m, op, shared, EventRead, steps+extra, len(addrs), len(fevents))
	if m.hooked.Load() {
		m.emit(op, shared, Event{Kind: EventRead, Addrs: addrs, Steps: steps, Depth: depth}, append(fevents, hevents...))
	}
	if len(berrs) > 0 {
		return out, &BatchError{Blocks: berrs}
	}
	return out, nil
}

// TryBatchWrite is BatchWrite with fault injection: writes hitting a
// fail-stopped disk or a transient fault are NOT applied and are
// reported in the returned *BatchError; a corruption fault flips a
// stored bit after the write lands (leaving the checksum stale); stalls
// charge extra steps. Applied writes update their block's checksum.
func (m *Machine) TryBatchWrite(writes []BlockWrite) error {
	return m.tryBatchWrite(nil, writes)
}

// TryBatchWriteOp is TryBatchWrite charged and attributed to op, with
// the same accounting rule as TryBatchReadOp.
func (m *Machine) TryBatchWriteOp(op *Op, writes []BlockWrite) error {
	return m.tryBatchWrite(op, writes)
}

func (m *Machine) tryBatchWrite(op *Op, writes []BlockWrite) error {
	if len(writes) == 0 {
		return nil
	}
	addrs := make([]Addr, len(writes))
	for i, w := range writes {
		m.checkAddr(w.Addr)
		if len(w.Data) > m.cfg.B {
			panic(fmt.Sprintf("pdm: write of %d words exceeds block size %d", len(w.Data), m.cfg.B))
		}
		addrs[i] = w.Addr
	}
	fs := m.drawFaults(EventWrite, addrs)
	res := make([]error, len(writes))
	apply := func(i int) {
		w := &writes[i]
		s := &m.shards[w.Addr.Disk]
		s.ios.Add(1)
		var f Fault
		if fs != nil {
			f = fs[i]
		}
		switch f.Kind {
		case FaultFailStop:
			res[i] = ErrDiskFailed
			return
		case FaultTransient:
			res[i] = ErrTransient
			return
		}
		s.mu.Lock()
		blk := s.blockLocked(w.Addr.Block)
		copy(blk, w.Data)
		s.sums[w.Addr.Block] = crcBlock(blk)
		if f.Kind == FaultCorrupt {
			s.corruptLocked(w.Addr.Block, f.Bit)
		}
		s.mu.Unlock()
	}
	steps, depth := m.tryRun(addrs, apply)
	berrs, fevents, hevents, extra := m.finishTry(EventWrite, addrs, fs, res)
	m.charge(steps+extra, depth)
	m.blockWrites.Add(int64(len(writes)))
	chargeOps(m, op, nil, EventWrite, steps+extra, len(writes), len(fevents))
	if m.hooked.Load() {
		m.emit(op, nil, Event{Kind: EventWrite, Addrs: addrs, Steps: steps, Depth: depth}, append(fevents, hevents...))
	}
	if len(berrs) > 0 {
		return &BatchError{Blocks: berrs}
	}
	return nil
}

// tryRun executes apply for every access of a Try batch — inline and in
// batch order for small batches, grouped by shard (batch order within
// each disk, which is all the fault semantics depend on: accesses to
// one block always share a disk) and fanned out for large ones — and
// returns the batch's base cost.
func (m *Machine) tryRun(addrs []Addr, apply func(i int)) (steps, depth int) {
	if len(addrs) <= smallBatchMax {
		steps, depth = m.cost(len(addrs), smallDepth(addrs))
		for i := range addrs {
			apply(i)
		}
		return steps, depth
	}
	sc := m.scratch.Get().(*batchScratch)
	steps, depth = m.cost(len(addrs), sc.partition(addrs))
	m.runShards(sc, len(addrs), func(d int32) {
		for _, i := range sc.segment(d) {
			apply(int(i))
		}
	})
	m.release(sc)
	return steps, depth
}

// WipeDisk discards every block (and checksum) of one disk, simulating
// the swap-in of a blank replacement drive. No I/O is accounted; the
// rebuild that follows (a dictionary's Repair) is where the cost lives.
func (m *Machine) WipeDisk(disk int) {
	m.checkAddr(Addr{Disk: disk})
	s := &m.shards[disk]
	s.mu.Lock()
	s.blocks = nil
	s.sums = nil
	s.mu.Unlock()
}

// VerifyChecksums scans every materialized block and returns the
// addresses whose content does not match the stored checksum. Like Peek
// it performs no accounted I/O — it is the ground-truth diagnostic;
// dictionaries implement accounted scrubs on top of TryBatchRead.
func (m *Machine) VerifyChecksums() []Addr {
	var bad []Addr
	for d := range m.shards {
		s := &m.shards[d]
		s.mu.Lock()
		for b, blk := range s.blocks {
			if blk == nil {
				continue
			}
			if crcBlock(blk) != s.sums[b] {
				bad = append(bad, Addr{Disk: d, Block: b})
			}
		}
		s.mu.Unlock()
	}
	return bad
}

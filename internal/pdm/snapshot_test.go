package pdm

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestSnapshotRoundTrip(t *testing.T) {
	m := NewMachine(Config{D: 3, B: 4})
	m.WriteBlock(Addr{Disk: 0, Block: 0}, []Word{1, 2, 3, 4})
	m.WriteBlock(Addr{Disk: 2, Block: 5}, []Word{9})
	m.ReadBlock(Addr{Disk: 0, Block: 0})

	var buf bytes.Buffer
	if err := m.WriteSnapshot(&buf); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	r, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatalf("ReadSnapshot: %v", err)
	}
	if r.Config() != m.Config() {
		t.Errorf("config %+v, want %+v", r.Config(), m.Config())
	}
	if r.Stats() != m.Stats() {
		t.Errorf("stats %+v, want %+v", r.Stats(), m.Stats())
	}
	if got := r.Peek(Addr{Disk: 0, Block: 0}); got[3] != 4 {
		t.Errorf("block content = %v", got)
	}
	if got := r.Peek(Addr{Disk: 2, Block: 5}); got[0] != 9 {
		t.Errorf("sparse block content = %v", got)
	}
	// Lazily-unallocated blocks stay zero.
	if got := r.Peek(Addr{Disk: 2, Block: 3}); got[0] != 0 {
		t.Errorf("never-written block = %v", got)
	}
	// Allocation map preserved.
	a, b := m.BlocksAllocated(), r.BlocksAllocated()
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("allocation differs: %v vs %v", a, b)
		}
	}
}

func TestSnapshotRoundTripsObservabilityCounters(t *testing.T) {
	m := NewMachine(Config{D: 3, B: 2})
	m.BatchRead([]Addr{{0, 0}, {0, 1}, {1, 0}}) // depth 2
	m.BatchWrite([]BlockWrite{{Addr: Addr{2, 0}, Data: []Word{1}}})

	var buf bytes.Buffer
	if err := m.WriteSnapshot(&buf); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	r, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatalf("ReadSnapshot: %v", err)
	}
	if r.Stats() != m.Stats() {
		t.Errorf("stats %+v, want %+v", r.Stats(), m.Stats())
	}
	want, got := m.PerDiskIOs(), r.PerDiskIOs()
	for i := range want {
		if want[i] != got[i] {
			t.Errorf("per-disk tallies %v, want %v", got, want)
			break
		}
	}
	if dc := r.Stats().DepthCounts; dc[1] != 1 {
		t.Errorf("depth histogram lost: %v", dc[:4])
	}
}

// Version-1 snapshots (before the depth histogram and per-disk tallies
// were persisted) must still load, with the new counters zeroed.
func TestSnapshotReadsVersion1(t *testing.T) {
	m := NewMachine(Config{D: 2, B: 2})
	m.WriteBlock(Addr{Disk: 1, Block: 3}, []Word{42})
	var buf bytes.Buffer
	if err := m.WriteSnapshot(&buf); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	// Rewrite as v1: swap the magic and splice out the v2-only section
	// (DepthBuckets depth counters + D per-disk tallies, 8 bytes each).
	data := append([]byte(nil), buf.Bytes()...)
	copy(data, snapshotMagicV1[:])
	headEnd := 4 + 7*8
	v2Extra := (DepthBuckets + m.D()) * 8
	v1 := append(data[:headEnd:headEnd], data[headEnd+v2Extra:]...)

	r, err := ReadSnapshot(bytes.NewReader(v1))
	if err != nil {
		t.Fatalf("ReadSnapshot(v1): %v", err)
	}
	if got := r.Peek(Addr{Disk: 1, Block: 3}); got[0] != 42 {
		t.Errorf("v1 block content = %v", got)
	}
	if r.Stats().BlockWrites != m.Stats().BlockWrites {
		t.Errorf("v1 header counters lost: %+v", r.Stats())
	}
	if dc := r.Stats().DepthCounts; dc != ([DepthBuckets]int64{}) {
		t.Errorf("v1 snapshot should restore zeroed depth counts, got %v", dc[:4])
	}
	for _, v := range r.PerDiskIOs() {
		if v != 0 {
			t.Errorf("v1 snapshot should restore zeroed per-disk tallies, got %v", r.PerDiskIOs())
		}
	}
}

func TestSnapshotRejectsGarbage(t *testing.T) {
	if _, err := ReadSnapshot(strings.NewReader("garbage")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := ReadSnapshot(strings.NewReader("")); err == nil {
		t.Error("empty stream accepted")
	}
	// Truncated valid stream.
	m := NewMachine(Config{D: 2, B: 2})
	m.WriteBlock(Addr{Disk: 0, Block: 0}, []Word{1})
	var buf bytes.Buffer
	m.WriteSnapshot(&buf)
	if _, err := ReadSnapshot(bytes.NewReader(buf.Bytes()[:20])); err == nil {
		t.Error("truncated stream accepted")
	}
	// Corrupt header carrying an invalid config.
	data := append([]byte(nil), buf.Bytes()...)
	data[4] = 0 // D := 0
	for i := 5; i < 12; i++ {
		data[i] = 0
	}
	if _, err := ReadSnapshot(bytes.NewReader(data)); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestModelStringAndAccessors(t *testing.T) {
	if ParallelDisk.String() != "parallel-disk" || DiskHead.String() != "disk-head" {
		t.Error("model names wrong")
	}
	if !strings.Contains(Model(9).String(), "9") {
		t.Error("unknown model string")
	}
	m := NewMachine(Config{D: 5, B: 7, Model: DiskHead})
	if m.D() != 5 || m.B() != 7 || m.Config().Model != DiskHead {
		t.Error("accessors wrong")
	}
	if (Addr{Disk: 2, Block: 9}).String() != "2:9" {
		t.Error("Addr.String wrong")
	}
}

// Property: snapshots are faithful for arbitrary write patterns.
func TestPropertySnapshotFaithful(t *testing.T) {
	f := func(writes []uint16) bool {
		m := NewMachine(Config{D: 2, B: 2})
		for _, w := range writes {
			m.WriteBlock(Addr{Disk: int(w) % 2, Block: int(w/2) % 16}, []Word{Word(w), Word(w) + 1})
		}
		var buf bytes.Buffer
		if err := m.WriteSnapshot(&buf); err != nil {
			return false
		}
		r, err := ReadSnapshot(&buf)
		if err != nil {
			return false
		}
		for d := 0; d < 2; d++ {
			for b := 0; b < 16; b++ {
				a := Addr{Disk: d, Block: b}
				x, y := m.Peek(a), r.Peek(a)
				for i := range x {
					if x[i] != y[i] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

package pdm

// RetryPolicy governs how a structure's fault-aware read/write paths
// re-issue transiently failed accesses. Policies are pure data: every
// decision they drive is a function of the access outcome and the
// machine's step counter — never wall time and never an unseeded RNG —
// so a policy cannot break trace determinism. Backoff is modeled
// waiting: it is charged to the machine (and the owning op) as
// parallel-I/O steps through Machine.ChargeSteps, which makes "how long
// recovery waited" part of the cost ledger instead of invisible time.
//
// The zero value is the default policy and reproduces the historical
// hardcoded behavior exactly: up to DefaultRetries immediate re-issues,
// no backoff, no hedging.

// DefaultRetries is how many times a transiently failed access is
// re-issued before the failure is treated as permanent — the historical
// hardcoded limit, now the zero-value RetryPolicy's setting.
const DefaultRetries = 3

// maxBackoffSteps caps one backoff charge, bounding the exponential
// schedule (and any overflow) at a value that still dwarfs real batches.
const maxBackoffSteps = 1 << 20

// RetryPolicy configures retries, modeled backoff, and hedged reads.
type RetryPolicy struct {
	// MaxRetries is how many times a transiently failed access is
	// re-issued. 0 means DefaultRetries (so the zero value is the
	// default policy); negative means no retries at all.
	MaxRetries int

	// BackoffBase is the modeled backoff, in parallel-I/O steps, charged
	// before the first retry; 0 disables backoff. Each subsequent retry
	// multiplies it by BackoffFactor (values < 1 mean constant backoff).
	// The per-retry charge is capped at maxBackoffSteps.
	BackoffBase   int
	BackoffFactor int

	// Hedge enables hedged reads: when a retried read targets a disk the
	// machine considers Suspect or recently stalling (SuspectOrStalling),
	// the reader may issue a duplicate read of another replica of the
	// same data in the same retry batch and take whichever copy answers.
	// Hedges are counted via NoteHedges and appear in HealthReport.
	Hedge bool
}

// DefaultRetryPolicy returns the policy equivalent to the zero value,
// spelled out: DefaultRetries immediate retries, no backoff, no hedging.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxRetries: DefaultRetries}
}

// Retries returns the effective retry count (resolving the zero-value
// and negative conventions).
func (p RetryPolicy) Retries() int {
	switch {
	case p.MaxRetries == 0:
		return DefaultRetries
	case p.MaxRetries < 0:
		return 0
	default:
		return p.MaxRetries
	}
}

// Backoff returns the modeled backoff in parallel-I/O steps to charge
// before retry attempt r (1-indexed), following the policy's
// exponential schedule. It returns 0 when backoff is disabled.
func (p RetryPolicy) Backoff(r int) int {
	if p.BackoffBase <= 0 || r <= 0 {
		return 0
	}
	b := p.BackoffBase
	f := p.BackoffFactor
	if f < 1 {
		f = 1
	}
	for i := 1; i < r; i++ {
		if b >= maxBackoffSteps/f {
			return maxBackoffSteps
		}
		b *= f
	}
	if b > maxBackoffSteps {
		b = maxBackoffSteps
	}
	return b
}

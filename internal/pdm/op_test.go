package pdm

import (
	"sync"
	"testing"
)

// TestOpSpanPrivateStacks is the regression test for the shared-span-
// stack misattribution bug: before operation tokens, a span opened by
// one client while another client's span was open parented onto the
// *other* client's span (the machine kept one global stack). With
// tokens each op carries a private stack, so interleaved spans parent
// onto their own operation — deterministically reproducible on a single
// goroutine by interleaving two ops' spans by hand.
func TestOpSpanPrivateStacks(t *testing.T) {
	m := NewMachine(Config{D: 4, B: 2})
	h := &recordingHook{}
	m.SetHook(h)

	opA := m.NewOp(1, 1)
	opB := m.NewOp(2, 1)

	endA := m.OpSpan(opA, "lookup")   // A root
	endB := m.OpSpan(opB, "insert")   // B root — interleaved
	endA2 := m.OpSpan(opA, "probe")   // must parent onto A's root, not B's
	endB2 := m.OpSpan(opB, "rebuild") // must parent onto B's root, not A's probe
	endA2()
	endB2()
	endA()
	endB()

	evs := h.all()
	begins := map[string]Event{} // tag path -> begin event
	for _, e := range evs {
		if e.Kind == EventSpanBegin {
			begins[e.Tag] = e
		}
	}
	rootA, okA := begins["lookup"]
	rootB, okB := begins["insert"]
	if !okA || !okB {
		t.Fatalf("missing root begins; got %v", begins)
	}
	if rootA.Parent != 0 || rootB.Parent != 0 {
		t.Fatalf("roots must have parent 0: A=%d B=%d", rootA.Parent, rootB.Parent)
	}
	if rootA.Op != opA.ID() || rootA.Client != 1 || rootB.Op != opB.ID() || rootB.Client != 2 {
		t.Fatalf("root token stamps wrong: A=%+v B=%+v", rootA, rootB)
	}
	childA, ok := begins["lookup.probe"]
	if !ok {
		t.Fatalf("A's nested span path != lookup.probe; got %v", begins)
	}
	if childA.Parent != rootA.Span {
		t.Errorf("A's nested span parent = %d, want A's root %d (not B's %d)",
			childA.Parent, rootA.Span, rootB.Span)
	}
	childB, ok := begins["insert.rebuild"]
	if !ok {
		t.Fatalf("B's nested span path != insert.rebuild; got %v", begins)
	}
	if childB.Parent != rootB.Span {
		t.Errorf("B's nested span parent = %d, want B's root %d (not A's child %d)",
			childB.Parent, rootB.Span, childA.Span)
	}
	// End events close exactly the span their OpSpan call opened, in the
	// interleaved order, each stamped with its own op.
	var ends []Event
	for _, e := range evs {
		if e.Kind == EventSpanEnd {
			ends = append(ends, e)
		}
	}
	wantEnds := []struct {
		span uint64
		op   uint64
	}{
		{childA.Span, opA.ID()},
		{childB.Span, opB.ID()},
		{rootA.Span, opA.ID()},
		{rootB.Span, opB.ID()},
	}
	if len(ends) != len(wantEnds) {
		t.Fatalf("got %d end events, want %d", len(ends), len(wantEnds))
	}
	for i, w := range wantEnds {
		if ends[i].Span != w.span || ends[i].Op != w.op {
			t.Errorf("end[%d] = span %d op %d, want span %d op %d",
				i, ends[i].Span, ends[i].Op, w.span, w.op)
		}
	}
}

// TestOpSpanConcurrentClients runs two real goroutines interleaving
// spans and token batches on one machine and asserts every event's
// parent span belongs to the same op — the property the shared stack
// could not provide.
func TestOpSpanConcurrentClients(t *testing.T) {
	m := NewMachine(Config{D: 4, B: 2})
	h := &recordingHook{}
	m.SetHook(h)

	const rounds = 50
	var wg sync.WaitGroup
	ops := make([][]*Op, 2)
	for c := 0; c < 2; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				op := m.NewOp(c+1, 1)
				ops[c] = append(ops[c], op)
				end := m.OpSpan(op, "lookup")
				endProbe := m.OpSpan(op, "probe")
				m.BatchReadOp(op, []Addr{{Disk: c, Block: 0}})
				endProbe()
				end()
			}
		}(c)
	}
	wg.Wait()

	byOp := map[uint64]int{} // op id -> owning client
	for c := 0; c < 2; c++ {
		for _, op := range ops[c] {
			byOp[op.ID()] = c + 1
			if got := op.Steps(); got != 1 {
				t.Fatalf("client %d op %d charged %d steps, want 1", c+1, op.ID(), got)
			}
		}
	}
	spanOwner := map[uint64]uint64{} // span id -> op id
	for _, e := range h.all() {
		if e.Op == 0 {
			t.Fatalf("unattributed event in a fully tokened workload: %+v", e)
		}
		if want := byOp[e.Op]; e.Client != want {
			t.Fatalf("event for op %d carries client %d, want %d", e.Op, e.Client, want)
		}
		if e.Kind == EventSpanBegin {
			spanOwner[e.Span] = e.Op
			if e.Parent != 0 && spanOwner[e.Parent] != e.Op {
				t.Fatalf("span %d (op %d) parents onto span %d owned by op %d",
					e.Span, e.Op, e.Parent, spanOwner[e.Parent])
			}
		}
	}
}

// TestOpChargeAcrossMachines checks the two cost conventions: Steps is
// the plain total over all machines, MaxMachineSteps the per-machine
// maximum — the operation's cost when the machines' disks are disjoint
// and serve it in parallel.
func TestOpChargeAcrossMachines(t *testing.T) {
	m1 := NewMachine(Config{D: 4, B: 2})
	m2 := NewMachine(Config{D: 4, B: 2})
	op := m1.NewOp(1, 1)

	// 2 steps on m1 (depth-2 queue on disk 0), 1 step on m2.
	m1.BatchReadOp(op, []Addr{{Disk: 0, Block: 0}, {Disk: 0, Block: 1}})
	m2.BatchReadOp(op, []Addr{{Disk: 1, Block: 0}})

	if got := op.Steps(); got != 3 {
		t.Errorf("Steps = %d, want 3 (sum over machines)", got)
	}
	if got := op.MaxMachineSteps(); got != 2 {
		t.Errorf("MaxMachineSteps = %d, want 2 (deepest machine)", got)
	}
	if got := op.Blocks(); got != 3 {
		t.Errorf("Blocks = %d, want 3", got)
	}
}

// TestBatchReadSharedChargesEveryOp checks the merged-batch accounting
// rule: the machine is charged once, every participating op is charged
// the batch's full cost, and the event carries the attribution list.
func TestBatchReadSharedChargesEveryOp(t *testing.T) {
	m := NewMachine(Config{D: 4, B: 2})
	h := &recordingHook{}
	m.SetHook(h)

	a := m.NewOp(1, 1)
	b := m.NewOp(2, 1)
	base := m.Stats()
	m.BatchReadShared([]*Op{a, b}, []Addr{{Disk: 0, Block: 0}, {Disk: 1, Block: 0}})

	if d := m.Stats().Sub(base); d.ParallelIOs != 1 || d.BlockReads != 2 {
		t.Errorf("machine charged %d steps %d reads, want 1 and 2 (once)", d.ParallelIOs, d.BlockReads)
	}
	for _, op := range []*Op{a, b} {
		if op.Steps() != 1 || op.Blocks() != 2 || op.Reads() != 2 {
			t.Errorf("op %d charged steps=%d blocks=%d reads=%d, want 1/2/2 (full batch)",
				op.ID(), op.Steps(), op.Blocks(), op.Reads())
		}
	}
	evs := h.all()
	if len(evs) != 1 {
		t.Fatalf("got %d events, want 1", len(evs))
	}
	e := evs[0]
	if len(e.Ops) != 2 || e.Ops[0] != a.ID() || e.Ops[1] != b.ID() {
		t.Errorf("event attribution list = %v, want [%d %d]", e.Ops, a.ID(), b.ID())
	}
}

package pdm

import "sync/atomic"

// Operation tokens. An Op identifies one logical dictionary operation —
// a lookup, an insert, a delete, or one LookupBatch call — so that every
// batch, fault, and span event the operation causes can be attributed to
// it exactly, even when many clients run concurrently or when several
// operations' probes are merged into one shared batch. Tokens make
// per-operation accounting a property of the event stream itself rather
// than a reconstruction from a shared span stack (which is inherently
// approximate under concurrency; see Span).
//
// An Op is owned by the goroutine running the operation: only that
// goroutine may open and close spans with OpSpan or issue *Op batches
// naming it as the primary token. The step/block counters, however, are
// atomics, so a merged batch issued by another goroutine (BatchReadShared)
// can charge a participating op concurrently, and observers may read the
// counters of an in-flight op at any time.
type Op struct {
	id     uint64
	client int
	keys   int

	steps  atomic.Int64
	blocks atomic.Int64
	reads  atomic.Int64
	writes atomic.Int64
	faults atomic.Int64

	// lanes break steps down per machine. A multi-machine dictionary
	// (two structures on disjoint disks during a rebuild) costs an
	// operation the MAXIMUM of its per-machine steps — the machines work
	// in parallel — while Steps() keeps the plain total. Lanes are
	// assigned on first charge; a token is meant to cover one logical
	// operation, which touches at most a few machines.
	lanes     [opLanes]atomic.Pointer[Machine]
	laneSteps [opLanes]atomic.Int64

	// frames is the op's private span stack. It replaces the machine's
	// shared stack for token-carrying operations: a nested span parents
	// onto this op's innermost open span, never another goroutine's.
	// Only the owning goroutine touches it.
	frames []spanFrame
}

// MakeOp constructs a token with an explicitly chosen ID. It exists for
// callers that manage their own ID space — a dictionary that outlives
// machine generations, or a trace replayer re-minting recorded IDs.
// Everyone else should use (*Machine).NewOp. ID 0 means "no operation"
// and must not be used.
func MakeOp(id uint64, client, keys int) *Op {
	return &Op{id: id, client: client, keys: keys}
}

// NewOp mints a token for one operation issued by the given client over
// the given number of keys (1 for single-key operations). IDs come from
// a per-machine counter starting at 1, so equal workloads mint equal
// IDs and traces stay deterministic.
func (m *Machine) NewOp(client, keys int) *Op {
	return MakeOp(m.nextOp.Add(1), client, keys)
}

// ID returns the op's machine-unique ID (0 for a nil op).
func (o *Op) ID() uint64 {
	if o == nil {
		return 0
	}
	return o.id
}

// ClientID returns the issuing client's ID (0 for a nil op).
func (o *Op) ClientID() int {
	if o == nil {
		return 0
	}
	return o.client
}

// Keys returns how many keys the operation covers (0 for a nil op).
func (o *Op) Keys() int {
	if o == nil {
		return 0
	}
	return o.keys
}

// Steps returns the parallel I/O steps charged to the op so far,
// including stall surcharges from fault injection.
func (o *Op) Steps() int64 {
	if o == nil {
		return 0
	}
	return o.steps.Load()
}

// Blocks returns the block transfers charged to the op so far.
func (o *Op) Blocks() int64 {
	if o == nil {
		return 0
	}
	return o.blocks.Load()
}

// Reads returns the block reads charged to the op so far.
func (o *Op) Reads() int64 {
	if o == nil {
		return 0
	}
	return o.reads.Load()
}

// Writes returns the block writes charged to the op so far.
func (o *Op) Writes() int64 {
	if o == nil {
		return 0
	}
	return o.writes.Load()
}

// Faults returns the fault events charged to the op so far.
func (o *Op) Faults() int64 {
	if o == nil {
		return 0
	}
	return o.faults.Load()
}

// opLanes bounds how many distinct machines one token tracks. A token
// covers one logical operation, which touches at most two machines
// (draining + filling structure); extra machines beyond the bound still
// charge the total but are not broken out per machine.
const opLanes = 4

// MaxMachineSteps returns the largest per-machine step total charged to
// the op: its cost under the parallel-disk convention that machines on
// disjoint disks serve the operation simultaneously. For an op confined
// to one machine this equals Steps().
func (o *Op) MaxMachineSteps() int64 {
	if o == nil {
		return 0
	}
	var max int64
	for i := range o.laneSteps {
		if v := o.laneSteps[i].Load(); v > max {
			max = v
		}
	}
	return max
}

// laneFor returns the per-machine step counter for m, claiming a free
// lane on first use, or nil if all lanes are taken by other machines.
func (o *Op) laneFor(m *Machine) *atomic.Int64 {
	for i := range o.lanes {
		p := o.lanes[i].Load()
		if p == m {
			return &o.laneSteps[i]
		}
		if p == nil {
			if o.lanes[i].CompareAndSwap(nil, m) || o.lanes[i].Load() == m {
				return &o.laneSteps[i]
			}
		}
	}
	return nil
}

// charge accounts one batch on machine m against the op. Charging is
// unconditional — it does not depend on a hook being installed — so
// callers can measure operations through their token alone.
func (o *Op) charge(m *Machine, kind EventKind, steps, blocks, faults int) {
	o.steps.Add(int64(steps))
	if lane := o.laneFor(m); lane != nil {
		lane.Add(int64(steps))
	}
	o.blocks.Add(int64(blocks))
	if kind == EventWrite {
		o.writes.Add(int64(blocks))
	} else {
		o.reads.Add(int64(blocks))
	}
	if faults != 0 {
		o.faults.Add(int64(faults))
	}
}

// chargeOps charges a batch's cost to its primary op and, for merged
// batches, to every participating op: each participant is charged the
// batch's full steps and blocks once (the batch ran on their behalf;
// splitting it would make per-op worst-case bounds meaningless).
func chargeOps(m *Machine, op *Op, shared []*Op, kind EventKind, steps, blocks, faults int) {
	if op != nil {
		op.charge(m, kind, steps, blocks, faults)
	}
	for _, o := range shared {
		if o != nil {
			o.charge(m, kind, steps, blocks, faults)
		}
	}
}

// OpSpan opens a span owned by op. It behaves like Span — fires an
// EventSpanBegin, returns the closer that fires the matching
// EventSpanEnd — but the span parents onto op's innermost open span
// (its private stack), not the machine's shared stack, so concurrent
// operations nest correctly: the returned closure ends exactly the span
// this call opened. Span and batch events of a token-carrying operation
// are stamped with the op's ID and client; the root span additionally
// carries the op's key count. A nil op falls back to Span(tag)
// unchanged.
//
// Spans of one op may be opened on different machines (a dictionary
// migrating between two machines opens phases on both); the op's stack
// spans them seamlessly, though span IDs are only unique per machine.
func (m *Machine) OpSpan(op *Op, tag string) func() {
	if op == nil {
		return m.Span(tag)
	}
	if !m.hooked.Load() {
		return noopEndSpan
	}
	m.emitMu.Lock()
	if m.hook == nil {
		m.emitMu.Unlock()
		return noopEndSpan
	}
	f := spanFrame{path: tag}
	if n := len(op.frames); n > 0 {
		top := op.frames[n-1]
		f.parent = top.id
		f.path = top.path + "." + tag
	}
	m.nextSpan++
	f.id = m.nextSpan
	if m.wall != nil {
		f.beginWall = m.wall()
	}
	op.frames = append(op.frames, f)
	ev := Event{
		Kind:   EventSpanBegin,
		Tag:    f.path,
		Span:   f.id,
		Parent: f.parent,
		Step:   m.pios.Load(),
		Op:     op.id,
		Client: op.client,
	}
	if f.parent == 0 {
		ev.Keys = op.keys
	}
	m.seq++
	ev.Seq = m.seq
	m.hook.Event(ev)
	m.emitMu.Unlock()
	return func() { m.endOpSpan(op) }
}

// endOpSpan closes op's innermost open span. Per-op spans are strictly
// nested on the owning goroutine, so the innermost frame is the one the
// matching OpSpan call pushed.
func (m *Machine) endOpSpan(op *Op) {
	m.emitMu.Lock()
	n := len(op.frames)
	if n == 0 {
		m.emitMu.Unlock()
		return
	}
	f := op.frames[n-1]
	op.frames = op.frames[:n-1]
	if m.hook == nil {
		m.emitMu.Unlock()
		return
	}
	m.seq++
	ev := Event{
		Kind:   EventSpanEnd,
		Tag:    f.path,
		Span:   f.id,
		Parent: f.parent,
		Step:   m.pios.Load(),
		Seq:    m.seq,
		Op:     op.id,
		Client: op.client,
	}
	if m.wall != nil {
		ev.WallNanos = m.wall() - f.beginWall
	}
	m.hook.Event(ev)
	m.emitMu.Unlock()
}

// BatchReadOp is BatchRead with the batch charged and attributed to op:
// the op's counters are charged the batch's steps and blocks, and the
// emitted event carries the op's ID, client, and innermost span.
func (m *Machine) BatchReadOp(op *Op, addrs []Addr) [][]Word {
	return m.batchRead(op, nil, addrs)
}

// BatchWriteOp is BatchWrite charged and attributed to op.
func (m *Machine) BatchWriteOp(op *Op, writes []BlockWrite) {
	m.batchWrite(op, writes)
}

// BatchReadShared performs one merged batch read on behalf of several
// operations — the group-commit shape, where concurrent clients' probes
// are deduplicated into one shared batch. The machine's counters are
// charged once; every listed op is charged the batch's full steps and
// blocks (the accounting rule for merged batches: each participant's
// worst-case bound must cover the batch it rode on). The emitted event
// carries the full attribution list in Ops.
func (m *Machine) BatchReadShared(ops []*Op, addrs []Addr) [][]Word {
	return m.batchRead(nil, ops, addrs)
}

package pdm

import "testing"

func readThrough(t *testing.T, m *Machine, a Addr) error {
	t.Helper()
	_, err := m.TryBatchRead([]Addr{a})
	return err
}

func TestHealthStateStrings(t *testing.T) {
	want := map[HealthState]string{
		Healthy: "healthy", Suspect: "suspect", Failed: "failed", Repairing: "repairing",
	}
	for s, w := range want {
		if s.String() != w {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), w)
		}
	}
}

// A single transient error keeps the disk Healthy (the legacy degraded
// bit still trips); crossing the threshold within the window promotes it
// to Suspect.
func TestHealthTransientsPromoteToSuspect(t *testing.T) {
	m := NewMachine(Config{D: 4, B: 4})
	a := Addr{Disk: 1, Block: 0}
	m.SetFaultInjector(&scriptInjector{faults: map[Addr]Fault{a: {Kind: FaultTransient}}})

	if readThrough(t, m, a) == nil {
		t.Fatal("transient fault not surfaced")
	}
	if got := m.DiskState(1); got != Healthy {
		t.Fatalf("after 1 transient: state = %v, want healthy", got)
	}
	if !m.Degraded() {
		t.Fatal("legacy degraded bit must trip on the first transient")
	}
	if !m.AllDisksHealthy() {
		t.Fatal("AllDisksHealthy false with every disk Healthy")
	}

	for i := 1; i < DefaultSuspectThreshold; i++ {
		readThrough(t, m, a)
	}
	if got := m.DiskState(1); got != Suspect {
		t.Fatalf("after %d transients: state = %v, want suspect", DefaultSuspectThreshold, got)
	}
	if m.AllDisksHealthy() {
		t.Fatal("AllDisksHealthy true with a Suspect disk")
	}
	r := m.Health()
	if r.Disks[1].Transients != DefaultSuspectThreshold || r.Disks[1].Transitions != 1 {
		t.Fatalf("report row = %+v, want %d transients, 1 transition", r.Disks[1], DefaultSuspectThreshold)
	}
	if len(r.Unhealthy()) != 1 || r.Unhealthy()[0].Disk != 1 {
		t.Fatalf("Unhealthy() = %+v, want just disk 1", r.Unhealthy())
	}
}

// Transients outside the sliding window do not accumulate toward
// Suspect: spreading them further apart than the window keeps the disk
// Healthy.
func TestHealthTransientWindowSlides(t *testing.T) {
	m := NewMachine(Config{D: 2, B: 4})
	m.SetSuspectThresholds(2, 4) // 2 transients within 4 steps
	a := Addr{Disk: 0, Block: 0}
	pad := Addr{Disk: 1, Block: 0}
	si := &scriptInjector{faults: map[Addr]Fault{a: {Kind: FaultTransient}, pad: {}}}
	m.SetFaultInjector(si)

	readThrough(t, m, a)
	// Burn more than the window in clean steps on the other disk.
	for i := 0; i < 6; i++ {
		readThrough(t, m, pad)
	}
	readThrough(t, m, a)
	if got := m.DiskState(0); got != Healthy {
		t.Fatalf("stale transient counted: state = %v, want healthy", got)
	}
	// Two inside one window do promote.
	readThrough(t, m, a)
	if got := m.DiskState(0); got != Suspect {
		t.Fatalf("state = %v, want suspect", got)
	}
}

func TestHealthFailStopMarksFailedAndReachability(t *testing.T) {
	m := NewMachine(Config{D: 4, B: 4})
	a := Addr{Disk: 2, Block: 0}
	si := &scriptInjector{faults: map[Addr]Fault{a: {Kind: FaultFailStop}}}
	m.SetFaultInjector(si)

	readThrough(t, m, a)
	r := m.Health()
	if r.Disks[2].State != Failed || r.Disks[2].Reachable {
		t.Fatalf("after fail-stop: %+v, want failed and unreachable", r.Disks[2])
	}

	// The drive comes back: a clean access flips reachability but the
	// state stays Failed until a repair vouches for the data.
	delete(si.faults, a)
	if err := readThrough(t, m, a); err != nil {
		t.Fatalf("healed access: %v", err)
	}
	r = m.Health()
	if r.Disks[2].State != Failed || !r.Disks[2].Reachable {
		t.Fatalf("after healed access: %+v, want failed and reachable", r.Disks[2])
	}
}

func TestHealthChecksumMarksFailed(t *testing.T) {
	m := NewMachine(Config{D: 2, B: 4})
	a := Addr{Disk: 0, Block: 0}
	m.WriteBlock(a, []Word{1, 2, 3})
	m.SetFaultInjector(&scriptInjector{faults: map[Addr]Fault{a: {Kind: FaultCorrupt, Bit: 5}}, once: true})
	if readThrough(t, m, a) == nil {
		t.Fatal("corrupted read did not error")
	}
	r := m.Health()
	if r.Disks[0].State != Failed || !r.Disks[0].Reachable {
		t.Fatalf("after checksum mismatch: %+v, want failed and reachable", r.Disks[0])
	}
}

func TestHealthStallDoesNotChangeStateButFlagsHedging(t *testing.T) {
	m := NewMachine(Config{D: 2, B: 4})
	a := Addr{Disk: 1, Block: 0}
	m.SetFaultInjector(&scriptInjector{faults: map[Addr]Fault{a: {Kind: FaultStall, Stall: 3}}, once: true})
	if err := readThrough(t, m, a); err != nil {
		t.Fatalf("stalled read errored: %v", err)
	}
	if got := m.DiskState(1); got != Healthy {
		t.Fatalf("stall changed state to %v", got)
	}
	if !m.SuspectOrStalling(1) {
		t.Fatal("recently stalled disk must warrant hedging")
	}
	if m.SuspectOrStalling(0) {
		t.Fatal("clean disk flagged for hedging")
	}
}

func TestMarkRepairingLifecycle(t *testing.T) {
	m := NewMachine(Config{D: 2, B: 4})
	if m.MarkRepairing(0) {
		t.Fatal("claimed a Healthy disk for repair")
	}
	m.MarkFailed(0)
	if got := m.DiskState(0); got != Failed {
		t.Fatalf("MarkFailed: state = %v", got)
	}
	if !m.MarkRepairing(0) {
		t.Fatal("could not claim a Failed disk")
	}
	if m.MarkRepairing(0) {
		t.Fatal("double-claimed a Repairing disk")
	}
	if m.AllDisksHealthy() || !m.Degraded() {
		t.Fatal("Repairing disk must count as unhealthy and degraded")
	}
	m.MarkHealthy(0)
	if got := m.DiskState(0); got != Healthy || !m.AllDisksHealthy() {
		t.Fatalf("MarkHealthy: state = %v, allHealthy = %v", got, m.AllDisksHealthy())
	}
	if r := m.Health(); r.Disks[0].Transitions != 3 {
		t.Fatalf("transitions = %d, want 3 (failed, repairing, healthy)", r.Disks[0].Transitions)
	}
}

func TestClearDegradedResetsAllDisks(t *testing.T) {
	m := NewMachine(Config{D: 4, B: 4})
	m.MarkFailed(1)
	m.MarkFailed(3)
	if !m.Degraded() {
		t.Fatal("failed disks must degrade the machine")
	}
	m.ClearDegraded()
	if m.Degraded() || !m.AllDisksHealthy() {
		t.Fatal("ClearDegraded must return every disk to Healthy")
	}
	if !m.Health().AllHealthy() {
		t.Fatal("report disagrees with AllDisksHealthy")
	}
}

func TestHealthNotifyFiresOnTransitions(t *testing.T) {
	m := NewMachine(Config{D: 2, B: 4})
	fired := 0
	m.SetHealthNotify(func() { fired++ })
	a := Addr{Disk: 0, Block: 0}
	si := &scriptInjector{faults: map[Addr]Fault{a: {Kind: FaultFailStop}}}
	m.SetFaultInjector(si)

	readThrough(t, m, a)
	if fired != 1 {
		t.Fatalf("notify fired %d times after fail-stop, want 1", fired)
	}
	// Same fault again: no transition, no notification.
	readThrough(t, m, a)
	if fired != 1 {
		t.Fatalf("notify fired %d times after repeat fault, want still 1", fired)
	}
	// Reachability flip notifies too.
	delete(si.faults, a)
	readThrough(t, m, a)
	if fired != 2 {
		t.Fatalf("notify fired %d times after reachability, want 2", fired)
	}
}

// ChargeSteps lands modeled backoff on the machine, the op, and the
// health counters, and emits an addr-less event carrying the steps so
// per-event step sums still partition the machine total.
func TestChargeStepsAccountsAndEmits(t *testing.T) {
	m := NewMachine(Config{D: 2, B: 4})
	h := &recordingHook{}
	m.SetHook(h)
	op := m.NewOp(7, 1)
	base := m.Stats()

	m.ChargeSteps(op, 5)
	m.ChargeSteps(nil, 2)
	m.ChargeSteps(op, 0) // no-op

	if d := m.Stats().Sub(base); d.ParallelIOs != 7 || d.BlockReads != 0 {
		t.Fatalf("machine charged %d steps %d reads, want 7 and 0", d.ParallelIOs, d.BlockReads)
	}
	if op.Steps() != 5 {
		t.Fatalf("op charged %d steps, want 5", op.Steps())
	}
	if got := m.Health().BackoffSteps; got != 7 {
		t.Fatalf("BackoffSteps = %d, want 7", got)
	}
	evs := h.all()
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2", len(evs))
	}
	if evs[0].Steps != 5 || len(evs[0].Addrs) != 0 || evs[0].Op != op.ID() {
		t.Fatalf("first backoff event = %+v", evs[0])
	}
	sum := 0
	for _, e := range evs {
		sum += e.Steps
	}
	if int64(sum) != m.Stats().Sub(base).ParallelIOs {
		t.Fatalf("event steps %d != machine delta %d", sum, m.Stats().Sub(base).ParallelIOs)
	}
}

func TestRecoveryCounters(t *testing.T) {
	m := NewMachine(Config{D: 2, B: 4})
	m.NoteRetry()
	m.NoteRetry()
	m.NoteHedges(3)
	m.NoteHedges(0)
	m.NoteRepairChunk(16)
	m.NoteRepairChunk(0)
	r := m.Health()
	if r.Retries != 2 || r.Hedges != 3 || r.RepairChunks != 2 || r.RepairRows != 16 {
		t.Fatalf("counters = %+v", r)
	}
}

func TestRetryPolicyDefaults(t *testing.T) {
	var zero RetryPolicy
	if zero.Retries() != DefaultRetries {
		t.Fatalf("zero-value Retries() = %d, want %d", zero.Retries(), DefaultRetries)
	}
	if DefaultRetryPolicy().Retries() != DefaultRetries {
		t.Fatal("DefaultRetryPolicy mismatch")
	}
	if (RetryPolicy{MaxRetries: -1}).Retries() != 0 {
		t.Fatal("negative MaxRetries must mean no retries")
	}
	if zero.Backoff(1) != 0 {
		t.Fatal("zero-value policy must not back off")
	}
	p := RetryPolicy{BackoffBase: 2, BackoffFactor: 3}
	if p.Backoff(1) != 2 || p.Backoff(2) != 6 || p.Backoff(3) != 18 {
		t.Fatalf("exponential backoff = %d,%d,%d", p.Backoff(1), p.Backoff(2), p.Backoff(3))
	}
	if (RetryPolicy{BackoffBase: 1, BackoffFactor: 2}).Backoff(40) != maxBackoffSteps {
		t.Fatal("backoff not capped")
	}
}

func TestTryBatchReadSharedChargesEveryOp(t *testing.T) {
	m := NewMachine(Config{D: 4, B: 2})
	h := &recordingHook{}
	m.SetHook(h)
	a := m.NewOp(1, 1)
	b := m.NewOp(2, 1)
	base := m.Stats()
	_, err := m.TryBatchReadShared([]*Op{a, b}, []Addr{{Disk: 0, Block: 0}, {Disk: 1, Block: 0}})
	if err != nil {
		t.Fatalf("TryBatchReadShared: %v", err)
	}
	if d := m.Stats().Sub(base); d.ParallelIOs != 1 || d.BlockReads != 2 {
		t.Errorf("machine charged %d steps %d reads, want 1 and 2 (once)", d.ParallelIOs, d.BlockReads)
	}
	for _, op := range []*Op{a, b} {
		if op.Steps() != 1 || op.Blocks() != 2 {
			t.Errorf("op %d charged steps=%d blocks=%d, want 1/2 (full batch)", op.ID(), op.Steps(), op.Blocks())
		}
	}
	evs := h.all()
	if len(evs) != 1 || len(evs[0].Ops) != 2 || evs[0].Ops[0] != a.ID() || evs[0].Ops[1] != b.ID() {
		t.Errorf("event attribution = %+v", evs)
	}
}

package pdm

import "fmt"

// Per-disk health. The machine watches the fault outcomes flowing
// through its Try batch methods and runs one small state machine per
// disk:
//
//	Healthy → Suspect    N transient errors within W parallel-I/O steps
//	any     → Failed     fail-stop, injected corruption, or checksum mismatch
//	Failed  → Repairing  MarkRepairing (the repair supervisor claims the disk)
//	any     → Healthy    MarkHealthy (a clean scrub of the disk's stripe)
//
// Every threshold is stated in parallel-I/O steps — the machine's own
// deterministic clock — never in wall time, so the same seed and
// workload walk the same state sequence on every run. The legacy
// machine-wide Degraded bit remains as a derived view: it reports true
// whenever any disk is unhealthy OR any data-threatening fault has been
// observed since the last ClearDegraded (the PR 2 semantics, preserved
// so that a single transient error still flags the machine until a
// clean scrub).

// HealthState is one disk's position in the health state machine.
type HealthState uint8

// Health states.
const (
	// Healthy: no evidence against the disk.
	Healthy HealthState = iota
	// Suspect: a burst of transient errors (SuspectThreshold within
	// SuspectWindow steps). Retry policies may hedge reads against a
	// suspect disk; the repair supervisor verifies it with a scrub.
	Suspect
	// Failed: a fail-stop, injected corruption, or checksum mismatch was
	// observed. The disk's data can no longer be trusted; repair is
	// required before the disk returns to Healthy.
	Failed
	// Repairing: a repair supervisor has claimed the disk and is
	// rebuilding its stripe. A further fault regresses the disk to
	// Failed, which tells the supervisor to restart from scratch.
	Repairing
)

// String names the state as used in reports and metrics.
func (s HealthState) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Suspect:
		return "suspect"
	case Failed:
		return "failed"
	case Repairing:
		return "repairing"
	default:
		return fmt.Sprintf("HealthState(%d)", int(s))
	}
}

// HealthTagPrefix prefixes the Tag of every EventHealth event: the tag
// is HealthTagPrefix + the destination state's String() (e.g.
// "health.failed"), mirroring how fault events use FaultTagPrefix.
const HealthTagPrefix = "health."

// Default deterministic thresholds for the Healthy → Suspect edge.
const (
	// DefaultSuspectThreshold is how many transient errors within the
	// window move a disk from Healthy to Suspect.
	DefaultSuspectThreshold = 3
	// DefaultSuspectWindow is the width of that sliding window, in
	// parallel-I/O steps.
	DefaultSuspectWindow = 256
)

// diskHealth is one disk's tracker state. Guarded by Machine.healthMu.
type diskHealth struct {
	state       HealthState // guarded by Machine.healthMu; written only by transitionLocked
	transitions int64       // guarded by Machine.healthMu
	transients  int64       // guarded by Machine.healthMu
	faults      int64       // guarded by Machine.healthMu; fault events observed on this disk (stalls included)
	lastFault   int64       // guarded by Machine.healthMu; step counter at the most recent fault
	lastStall   int64       // guarded by Machine.healthMu; step counter at the most recent stall, -1 = never
	reachable   bool        // guarded by Machine.healthMu; Failed only: a later access got through (drive is back)
	window      []int64     // guarded by Machine.healthMu
}

// DiskHealth is one disk's row of a HealthReport.
type DiskHealth struct {
	Disk        int         `json:"disk"`
	State       HealthState `json:"state"`
	Transitions int64       `json:"transitions"`
	Transients  int64       `json:"transients"`
	Faults      int64       `json:"faults"`
	LastFault   int64       `json:"last_fault_step"`
	// Reachable is meaningful in the Failed state: it reports that an
	// access to the disk succeeded after the failure was observed, i.e.
	// the drive is answering again and repair can begin.
	Reachable bool `json:"reachable"`
}

// HealthReport is a consistent snapshot of every disk's health plus the
// machine-wide recovery counters.
type HealthReport struct {
	Disks []DiskHealth `json:"disks"`

	// Recovery instrumentation, accumulated by the retry/repair layers
	// through NoteRetry, NoteHedges, and NoteRepairChunk, and by
	// ChargeSteps for modeled backoff.
	Retries      int64 `json:"retries"`       // retry batches issued
	Hedges       int64 `json:"hedges"`        // hedged duplicate reads issued
	BackoffSteps int64 `json:"backoff_steps"` // modeled backoff pIOs charged
	RepairChunks int64 `json:"repair_chunks"` // incremental repair/scrub chunks run
	RepairRows   int64 `json:"repair_rows"`   // bucket rows processed by those chunks
}

// AllHealthy reports whether every disk is in the Healthy state.
func (r HealthReport) AllHealthy() bool {
	for _, d := range r.Disks {
		if d.State != Healthy {
			return false
		}
	}
	return true
}

// Unhealthy returns the disks not in the Healthy state, in disk order.
func (r HealthReport) Unhealthy() []DiskHealth {
	var out []DiskHealth
	for _, d := range r.Disks {
		if d.State != Healthy {
			out = append(out, d)
		}
	}
	return out
}

// Health returns a snapshot of the per-disk health state machine and
// the recovery counters.
func (m *Machine) Health() HealthReport {
	r := HealthReport{
		Disks:        make([]DiskHealth, m.cfg.D),
		Retries:      m.retries.Load(),
		Hedges:       m.hedges.Load(),
		BackoffSteps: m.backoffSteps.Load(),
		RepairChunks: m.repairChunks.Load(),
		RepairRows:   m.repairRows.Load(),
	}
	m.healthMu.Lock()
	for d := range m.health {
		h := &m.health[d]
		r.Disks[d] = DiskHealth{
			Disk:        d,
			State:       h.state,
			Transitions: h.transitions,
			Transients:  h.transients,
			Faults:      h.faults,
			LastFault:   h.lastFault,
			Reachable:   h.reachable,
		}
	}
	m.healthMu.Unlock()
	return r
}

// DiskState returns one disk's current health state.
func (m *Machine) DiskState(disk int) HealthState {
	m.checkAddr(Addr{Disk: disk})
	m.healthMu.Lock()
	defer m.healthMu.Unlock()
	return m.health[disk].state
}

// AllDisksHealthy reports whether every disk is Healthy. It reads one
// atomic counter, so it is safe to call from anywhere — including a
// FaultInjector's Access method, which runs under the machine's fault
// lock (chaos schedules use it to gate scripted damage on recovery).
func (m *Machine) AllDisksHealthy() bool {
	return m.unhealthy.Load() == 0
}

// StepCount returns the machine's cumulative parallel-I/O step counter —
// the deterministic clock health thresholds, backoff, and chaos
// schedules are stated in. Like AllDisksHealthy it is one atomic load.
func (m *Machine) StepCount() int64 {
	return m.pios.Load()
}

// SetHealthNotify installs (or, with nil, removes) the health
// notification callback. It fires after a disk changes state and after
// an access to a Failed disk succeeds (the drive is answering again) —
// the two signals a repair supervisor needs to wake on. The callback
// runs on the goroutine that issued the triggering batch, outside the
// machine's locks; it must be fast and non-blocking (typically a
// buffered-channel send with a default case).
func (m *Machine) SetHealthNotify(fn func()) {
	m.healthMu.Lock()
	m.healthNotify = fn
	m.healthMu.Unlock()
}

// SetSuspectThresholds overrides the Healthy → Suspect edge: n transient
// errors within window parallel-I/O steps. Non-positive arguments
// restore the defaults.
func (m *Machine) SetSuspectThresholds(n int, window int64) {
	if n <= 0 {
		n = DefaultSuspectThreshold
	}
	if window <= 0 {
		window = DefaultSuspectWindow
	}
	m.healthMu.Lock()
	m.suspectN = n
	m.suspectW = window
	m.healthMu.Unlock()
}

// transitionLocked moves one disk to a new state, maintaining the
// transition count and the unhealthy-disk counter, and queues an
// EventHealth annotation for the transition (drained by the caller via
// drainHealthEventsLocked and emitted once healthMu is released, so
// hooks never run under the health lock). Callers hold m.healthMu.
func (m *Machine) transitionLocked(disk int, to HealthState) {
	h := &m.health[disk]
	if h.state == to {
		return
	}
	from := h.state
	if from == Healthy {
		m.unhealthy.Add(1)
	} else if to == Healthy {
		m.unhealthy.Add(-1)
	}
	h.state = to
	h.transitions++
	m.healthEvents = append(m.healthEvents, Event{
		Kind:  EventHealth,
		Tag:   HealthTagPrefix + to.String(),
		Addrs: []Addr{{Disk: disk}},
		From:  from.String(),
		To:    to.String(),
		Step:  m.pios.Load(),
	})
}

// drainHealthEventsLocked hands the queued health transitions to the
// caller for emission and resets the queue. Callers hold m.healthMu and
// emit (or drop) the returned events after releasing it.
func (m *Machine) drainHealthEventsLocked() []Event {
	evs := m.healthEvents
	m.healthEvents = nil
	return evs
}

// MarkRepairing claims a disk for repair: Failed or Suspect becomes
// Repairing. It reports whether the claim succeeded (false when the
// disk is Healthy — nothing to repair — or already Repairing).
func (m *Machine) MarkRepairing(disk int) bool {
	m.checkAddr(Addr{Disk: disk})
	m.healthMu.Lock()
	h := &m.health[disk]
	if h.state != Failed && h.state != Suspect {
		m.healthMu.Unlock()
		return false
	}
	m.transitionLocked(disk, Repairing)
	h.reachable = false
	evs := m.drainHealthEventsLocked()
	m.healthMu.Unlock()
	m.emitAnnotations(evs)
	return true
}

// MarkFailed demotes a disk to Failed — the repair supervisor's path
// for a repair attempt that could not complete. The disk is left
// reachable (the failure was observed by the repairer, not a fail-stop),
// so a later supervisor pass may retry.
func (m *Machine) MarkFailed(disk int) {
	m.checkAddr(Addr{Disk: disk})
	m.healthMu.Lock()
	m.transitionLocked(disk, Failed)
	m.health[disk].reachable = true
	evs := m.drainHealthEventsLocked()
	m.healthMu.Unlock()
	m.emitAnnotations(evs)
}

// MarkHealthy returns a disk to Healthy and clears its transient
// window — the repair supervisor's acknowledgment after a clean scrub
// of the disk's stripe.
func (m *Machine) MarkHealthy(disk int) {
	m.checkAddr(Addr{Disk: disk})
	m.healthMu.Lock()
	m.transitionLocked(disk, Healthy)
	h := &m.health[disk]
	h.reachable = false
	h.window = h.window[:0]
	evs := m.drainHealthEventsLocked()
	m.healthMu.Unlock()
	m.emitAnnotations(evs)
}

// healthObs is one per-access health observation extracted by finishTry.
type healthObs struct {
	disk     int
	kind     FaultKind // FaultNone for a checksum mismatch or a clean access
	checksum bool
	ok       bool // access succeeded (no fault, no error)
}

// observeHealth folds one Try batch's outcomes into the per-disk state
// machines and fires the health notification when anything actionable
// happened. step is the machine's step counter at observation time;
// single-threaded runs observe the same values on every run, which is
// what keeps health transitions trace-deterministic. It returns the
// EventHealth annotations for any transitions, which the calling Try
// batch appends to its emission (after the batch's fault events).
func (m *Machine) observeHealth(obs []healthObs, step int64) []Event {
	var notify func()
	actionable := false
	m.healthMu.Lock()
	for _, o := range obs {
		h := &m.health[o.disk]
		if o.ok {
			// A successful access to a Failed disk means the drive is
			// answering again: leave the state to the supervisor, but
			// record reachability and wake it.
			if h.state == Failed && !h.reachable {
				h.reachable = true
				actionable = true
			}
			continue
		}
		h.faults++
		h.lastFault = step
		switch {
		case o.kind == FaultFailStop:
			h.reachable = false
			if h.state != Failed {
				m.transitionLocked(o.disk, Failed)
				actionable = true
			}
		case o.kind == FaultCorrupt || o.checksum:
			// The disk answered, but with damage: Failed and immediately
			// reachable, so repair can start without waiting for traffic.
			// A disk already claimed as Repairing stays claimed — the bad
			// block keeps failing client reads until the rebuild rewrites
			// it, and demoting mid-repair would restart the job forever
			// under traffic. (Fail-stop still demotes: the drive vanished.)
			h.reachable = true
			if h.state != Failed && h.state != Repairing {
				m.transitionLocked(o.disk, Failed)
				actionable = true
			}
		case o.kind == FaultTransient:
			h.transients++
			h.window = append(h.window, step)
			lo := 0
			for lo < len(h.window) && h.window[lo] <= step-m.suspectW {
				lo++
			}
			if lo > 0 {
				h.window = append(h.window[:0], h.window[lo:]...)
			}
			if h.state == Healthy && len(h.window) >= m.suspectN {
				m.transitionLocked(o.disk, Suspect)
				actionable = true
			}
		case o.kind == FaultStall:
			h.lastStall = step
			// A stalled access still got through — that counts as
			// reachability evidence for a Failed disk.
			if h.state == Failed && !h.reachable {
				h.reachable = true
				actionable = true
			}
		}
	}
	if actionable {
		notify = m.healthNotify
	}
	evs := m.drainHealthEventsLocked()
	m.healthMu.Unlock()
	if notify != nil {
		notify()
	}
	return evs
}

// SuspectOrStalling reports whether a disk warrants hedged reads: it is
// Suspect, or it stalled within the suspect window. Retry policies with
// hedging enabled consult this before re-issuing a failed read.
func (m *Machine) SuspectOrStalling(disk int) bool {
	m.checkAddr(Addr{Disk: disk})
	m.healthMu.Lock()
	defer m.healthMu.Unlock()
	h := &m.health[disk]
	if h.state == Suspect {
		return true
	}
	return h.lastStall >= 0 && m.pios.Load()-h.lastStall <= m.suspectW
}

// NoteRetry counts one retry batch issued by a retry policy.
func (m *Machine) NoteRetry() { m.retries.Add(1) }

// NoteHedges counts n hedged duplicate reads issued by a retry policy.
func (m *Machine) NoteHedges(n int) {
	if n > 0 {
		m.hedges.Add(int64(n))
	}
}

// NoteRepairChunk counts one incremental repair or scrub chunk covering
// rows bucket rows — the repair supervisor's progress instrumentation.
func (m *Machine) NoteRepairChunk(rows int) {
	m.repairChunks.Add(1)
	if rows > 0 {
		m.repairRows.Add(int64(rows))
	}
}

// ChargeSteps charges steps parallel-I/O steps that transfer no blocks —
// modeled waiting time, such as a retry policy's backoff. The charge
// lands on the machine's step counter, on op (when non-nil), and on the
// backoff tally reported by Health; an addr-less EventRead carrying the
// steps is emitted so traces stay a complete account of the total
// (obs.Replay re-charges such events through this method).
func (m *Machine) ChargeSteps(op *Op, steps int) {
	if steps <= 0 {
		return
	}
	m.charge(steps, 0)
	m.backoffSteps.Add(int64(steps))
	chargeOps(m, op, nil, EventRead, steps, 0, 0)
	if m.hooked.Load() {
		m.emit(op, nil, Event{Kind: EventRead, Steps: steps}, nil)
	}
}

package pdm

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
)

// scriptInjector replays a fixed fault per address; nil entries pass.
type scriptInjector struct {
	faults map[Addr]Fault
	once   bool // clear each fault after firing
}

func (s *scriptInjector) Access(kind EventKind, a Addr) Fault {
	f, ok := s.faults[a]
	if !ok {
		return Fault{}
	}
	if s.once {
		delete(s.faults, a)
	}
	return f
}

func TestTryBatchReadFaultless(t *testing.T) {
	m := NewMachine(Config{D: 4, B: 8})
	m.WriteBlock(Addr{Disk: 1, Block: 2}, []Word{7, 7, 7})
	got, err := m.TryBatchRead([]Addr{{Disk: 1, Block: 2}, {Disk: 0, Block: 0}})
	if err != nil {
		t.Fatalf("TryBatchRead on healthy machine: %v", err)
	}
	if got[0][0] != 7 || got[1][0] != 0 {
		t.Fatalf("wrong data: %v", got)
	}
	if m.Degraded() {
		t.Fatal("healthy machine reports degraded")
	}
}

func TestTryBatchReadFailStop(t *testing.T) {
	m := NewMachine(Config{D: 4, B: 8})
	for d := 0; d < 4; d++ {
		m.WriteBlock(Addr{Disk: d, Block: 0}, []Word{Word(d + 1)})
	}
	m.SetFaultInjector(&scriptInjector{faults: map[Addr]Fault{
		{Disk: 2, Block: 0}: {Kind: FaultFailStop},
	}})
	addrs := []Addr{{Disk: 0, Block: 0}, {Disk: 2, Block: 0}, {Disk: 3, Block: 0}}
	got, err := m.TryBatchRead(addrs)
	be, ok := AsBatchError(err)
	if !ok || len(be.Blocks) != 1 {
		t.Fatalf("want one BlockError, got %v", err)
	}
	b := be.Blocks[0]
	if b.Index != 1 || b.Addr != addrs[1] || !errors.Is(b.Err, ErrDiskFailed) {
		t.Fatalf("wrong BlockError: %+v", b)
	}
	if got[1] != nil {
		t.Fatal("failed read returned data")
	}
	if got[0][0] != 1 || got[2][0] != 4 {
		t.Fatalf("surviving reads wrong: %v", got)
	}
	if !m.Degraded() || m.FaultCount() != 1 {
		t.Fatalf("degraded=%v faults=%d, want true/1", m.Degraded(), m.FaultCount())
	}
	m.ClearDegraded()
	if m.Degraded() {
		t.Fatal("ClearDegraded did not clear")
	}
}

func TestChecksumDetectsCorruption(t *testing.T) {
	m := NewMachine(Config{D: 2, B: 4})
	a := Addr{Disk: 0, Block: 3}
	m.WriteBlock(a, []Word{1, 2, 3, 4})
	m.SetFaultInjector(&scriptInjector{
		faults: map[Addr]Fault{a: {Kind: FaultCorrupt, Bit: 5}},
		once:   true,
	})
	_, err := m.TryBatchRead([]Addr{a})
	be, ok := AsBatchError(err)
	if !ok || !errors.Is(be.Blocks[0].Err, ErrChecksum) {
		t.Fatalf("want checksum error, got %v", err)
	}
	if bad := m.VerifyChecksums(); len(bad) != 1 || bad[0] != a {
		t.Fatalf("VerifyChecksums = %v, want [%v]", bad, a)
	}
	// Rewriting the block heals it: writes recompute the checksum.
	m.WriteBlock(a, []Word{1, 2, 3, 4})
	if bad := m.VerifyChecksums(); len(bad) != 0 {
		t.Fatalf("after rewrite, VerifyChecksums = %v, want none", bad)
	}
	if _, err := m.TryBatchRead([]Addr{a}); err != nil {
		t.Fatalf("read after heal: %v", err)
	}
}

func TestTryBatchWriteSkipsFailedDisk(t *testing.T) {
	m := NewMachine(Config{D: 3, B: 4})
	a0, a1 := Addr{Disk: 0, Block: 0}, Addr{Disk: 1, Block: 0}
	m.SetFaultInjector(&scriptInjector{faults: map[Addr]Fault{a1: {Kind: FaultFailStop}}})
	err := m.TryBatchWrite([]BlockWrite{
		{Addr: a0, Data: []Word{11}},
		{Addr: a1, Data: []Word{22}},
	})
	be, ok := AsBatchError(err)
	if !ok || len(be.Blocks) != 1 || !errors.Is(be.Blocks[0].Err, ErrDiskFailed) {
		t.Fatalf("want one ErrDiskFailed, got %v", err)
	}
	if m.Peek(a0)[0] != 11 {
		t.Fatal("surviving write not applied")
	}
	if m.Peek(a1)[0] != 0 {
		t.Fatal("write to failed disk was applied")
	}
}

func TestStallChargesExtraSteps(t *testing.T) {
	m := NewMachine(Config{D: 2, B: 4})
	a := Addr{Disk: 0, Block: 0}
	m.SetFaultInjector(&scriptInjector{
		faults: map[Addr]Fault{a: {Kind: FaultStall, Stall: 5}},
		once:   true,
	})
	before := m.Stats().ParallelIOs
	if _, err := m.TryBatchRead([]Addr{a}); err != nil {
		t.Fatalf("stalled read errored: %v", err)
	}
	if got := m.Stats().ParallelIOs - before; got != 6 {
		t.Fatalf("stalled batch cost %d parallel I/Os, want 1+5", got)
	}
	if m.Degraded() {
		t.Fatal("stall alone must not mark the machine degraded")
	}
	if m.FaultCount() != 1 {
		t.Fatalf("stall not counted as fault event: %d", m.FaultCount())
	}
}

func TestWipeDisk(t *testing.T) {
	m := NewMachine(Config{D: 2, B: 4})
	m.WriteBlock(Addr{Disk: 1, Block: 0}, []Word{9})
	m.WipeDisk(1)
	if m.Peek(Addr{Disk: 1, Block: 0})[0] != 0 {
		t.Fatal("wiped disk still holds data")
	}
	if bad := m.VerifyChecksums(); len(bad) != 0 {
		t.Fatalf("wiped disk fails checksum scan: %v", bad)
	}
}

// traceHook records the fault event stream.
type traceHook struct{ lines []string }

func (h *traceHook) Event(e Event) {
	h.lines = append(h.lines, fmt.Sprintf("%s %s %v %d", e.Kind, e.Tag, e.Addrs, e.Steps))
}

// The same injector decisions must yield the same fault.* event
// sequence, and stall cost must ride on the fault.stall event, keeping
// per-tag sums a partition of the total.
func TestFaultEventsDeterministic(t *testing.T) {
	run := func() ([]string, int64) {
		m := NewMachine(Config{D: 3, B: 4})
		h := &traceHook{}
		m.SetHook(h)
		m.SetFaultInjector(&scriptInjector{faults: map[Addr]Fault{
			{Disk: 0, Block: 1}: {Kind: FaultFailStop},
			{Disk: 1, Block: 0}: {Kind: FaultStall, Stall: 2},
		}})
		for i := 0; i < 3; i++ {
			if _, err := m.TryBatchRead([]Addr{{Disk: 0, Block: 1}, {Disk: 1, Block: 0}, {Disk: 2, Block: 0}}); err == nil {
				t.Fatal("expected fail-stop fault to surface as a batch error")
			}
		}
		return h.lines, m.Stats().ParallelIOs
	}
	l1, ios1 := run()
	l2, ios2 := run()
	if !equalStrings(l1, l2) || ios1 != ios2 {
		t.Fatalf("fault traces diverge:\n%v\n%v", l1, l2)
	}
}

// eventSum records Steps across all events.
type eventSum struct{ steps int64 }

func (h *eventSum) Event(e Event) { h.steps += int64(e.Steps) }

// Summing Steps over every event (batch events + fault.stall events)
// must reproduce the machine's accounted ParallelIOs: stall cost rides
// on the fault.stall event, not the batch's own event.
func TestEventStepsPartitionTotal(t *testing.T) {
	m := NewMachine(Config{D: 3, B: 4})
	h := &eventSum{}
	m.SetHook(h)
	m.SetFaultInjector(&scriptInjector{faults: map[Addr]Fault{
		{Disk: 1, Block: 0}: {Kind: FaultStall, Stall: 2},
		{Disk: 2, Block: 0}: {Kind: FaultFailStop},
	}})
	for i := 0; i < 4; i++ {
		if _, err := m.TryBatchRead([]Addr{{Disk: 0, Block: 0}, {Disk: 1, Block: 0}, {Disk: 2, Block: 0}}); err == nil {
			t.Fatal("expected fail-stop fault to surface as a batch error")
		}
		if err := m.TryBatchWrite([]BlockWrite{{Addr: Addr{Disk: 0, Block: 1}, Data: []Word{1}}}); err != nil {
			t.Fatalf("unfaulted write failed: %v", err)
		}
	}
	if got := m.Stats().ParallelIOs; h.steps != got {
		t.Fatalf("event step sum %d != accounted total %d", h.steps, got)
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Snapshot round-trip must preserve checksums (recomputed on load).
func TestSnapshotRecomputesChecksums(t *testing.T) {
	m := NewMachine(Config{D: 3, B: 8})
	for d := 0; d < 3; d++ {
		m.WriteBlock(Addr{Disk: d, Block: d}, []Word{Word(d * 10)})
	}
	var buf bytes.Buffer
	if err := m.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if bad := m2.VerifyChecksums(); len(bad) != 0 {
		t.Fatalf("loaded machine fails checksum scan: %v", bad)
	}
	if _, err := m2.TryBatchRead([]Addr{{Disk: 2, Block: 2}}); err != nil {
		t.Fatalf("verified read on loaded machine: %v", err)
	}
}

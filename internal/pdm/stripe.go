package pdm

// Striping helpers.
//
// Striping treats the D disks as a single logical disk with block size
// B*D: logical block i consists of physical block i on every disk. Most
// one-disk external-memory algorithms gain a factor D this way (paper,
// Section 1), and several of the baseline dictionaries (the "hashing with
// no overflow" row of Figure 1) are defined directly on striped blocks.

// StripeAddrs returns the D physical addresses that make up logical
// striped block i.
func StripeAddrs(d int, block int) []Addr {
	addrs := make([]Addr, d)
	for i := range addrs {
		addrs[i] = Addr{Disk: i, Block: block}
	}
	return addrs
}

// ReadStripe reads logical striped block i (one parallel I/O) and returns
// its B*D words: disk 0's block first, then disk 1's, and so on.
func (m *Machine) ReadStripe(block int) []Word {
	blocks := m.BatchRead(StripeAddrs(m.cfg.D, block))
	out := make([]Word, 0, m.cfg.D*m.cfg.B)
	for _, b := range blocks {
		out = append(out, b...)
	}
	return out
}

// WriteStripe writes logical striped block i (one parallel I/O). data
// holds up to B*D words, split across the disks in order; a short write
// leaves the remaining words unchanged.
func (m *Machine) WriteStripe(block int, data []Word) {
	if len(data) > m.cfg.D*m.cfg.B {
		panic("pdm: stripe write exceeds D*B words")
	}
	writes := make([]BlockWrite, 0, m.cfg.D)
	for disk := 0; disk < m.cfg.D && len(data) > 0; disk++ {
		n := m.cfg.B
		if n > len(data) {
			n = len(data)
		}
		writes = append(writes, BlockWrite{Addr: Addr{Disk: disk, Block: block}, Data: data[:n]})
		data = data[n:]
	}
	m.BatchWrite(writes)
}

// Package pdm implements a simulator for the parallel disk model of
// Vitter and Shriver, the cost model in which every result of the paper
// "Deterministic load balancing and dictionaries in the parallel disk
// model" (SPAA 2006) is stated.
//
// The machine consists of D storage devices, each an array of blocks with
// capacity for B data items. A data item is one machine word, "assumed to
// be sufficiently large to hold a pointer value or a key value". The
// performance of an algorithm is measured in parallel I/Os: one parallel
// I/O retrieves (or writes) at most one block from (or to) each of the D
// devices. A batch that addresses the same disk more than once costs as
// many parallel I/Os as the deepest per-disk queue.
//
// The package also implements the parallel disk *head* model (one disk
// with D independent read/write heads, Aggarwal–Vitter), which Section 5
// of the paper uses for unstriped expanders: there, any D blocks can be
// accessed in a single parallel I/O regardless of which device they live
// on.
//
// The machine is safe for concurrent use; all mutation goes through its
// methods.
package pdm

import (
	"fmt"
	"sync"
)

// Word is the unit of storage: one data item of the model.
type Word = uint64

// Model selects the cost model used to account batch accesses.
type Model int

const (
	// ParallelDisk is the standard parallel disk model: a parallel I/O
	// may touch at most one block per disk.
	ParallelDisk Model = iota
	// DiskHead is the parallel disk head model: a parallel I/O may touch
	// any D blocks, regardless of placement.
	DiskHead
)

// String returns the conventional name of the model.
func (m Model) String() string {
	switch m {
	case ParallelDisk:
		return "parallel-disk"
	case DiskHead:
		return "disk-head"
	default:
		return fmt.Sprintf("Model(%d)", int(m))
	}
}

// Config describes a machine.
type Config struct {
	// D is the number of disks (or heads in the DiskHead model).
	D int
	// B is the block capacity in words.
	B int
	// Model selects the accounting discipline. The zero value is the
	// standard parallel disk model.
	Model Model
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.D <= 0 {
		return fmt.Errorf("pdm: D must be positive, got %d", c.D)
	}
	if c.B <= 0 {
		return fmt.Errorf("pdm: B must be positive, got %d", c.B)
	}
	return nil
}

// Addr identifies one block: block index Block on disk Disk.
type Addr struct {
	Disk  int
	Block int
}

// String formats the address as disk:block.
func (a Addr) String() string { return fmt.Sprintf("%d:%d", a.Disk, a.Block) }

// DepthBuckets is the resolution of Stats.DepthCounts: batch depths
// 1..DepthBuckets are counted exactly; deeper batches saturate into the
// last bucket.
const DepthBuckets = 64

// Stats is a snapshot of the machine's I/O counters.
type Stats struct {
	// ParallelIOs is the number of parallel I/O steps performed.
	ParallelIOs int64
	// BlockReads and BlockWrites count individual block transfers
	// (several may share one parallel I/O).
	BlockReads  int64
	BlockWrites int64
	// MaxBatch is the largest per-disk queue depth seen in any single
	// batch; values above 1 indicate a batch that was not truly parallel.
	// In a Stats returned by Sub it covers only the window between the
	// two snapshots (capped at DepthBuckets); otherwise it is the
	// lifetime maximum.
	MaxBatch int
	// DepthCounts[i] counts the non-empty batches whose per-disk queue
	// depth was i+1 (the last bucket also absorbs anything deeper). The
	// cumulative counts let Sub recover the worst batch of a window, and
	// double as a per-batch depth histogram.
	DepthCounts [DepthBuckets]int64
}

// Sub returns the difference s - t, counter by counter. It is the usual
// way to measure the cost of an operation: snapshot before, snapshot
// after, subtract. The returned MaxBatch is the deepest batch of the
// window itself — recovered from the DepthCounts deltas, not the
// lifetime maximum — so deltas report the window's worst batch even
// when an earlier batch was deeper.
func (s Stats) Sub(t Stats) Stats {
	out := Stats{
		ParallelIOs: s.ParallelIOs - t.ParallelIOs,
		BlockReads:  s.BlockReads - t.BlockReads,
		BlockWrites: s.BlockWrites - t.BlockWrites,
	}
	for i := range s.DepthCounts {
		out.DepthCounts[i] = s.DepthCounts[i] - t.DepthCounts[i]
	}
	for i := DepthBuckets - 1; i >= 0; i-- {
		if out.DepthCounts[i] > 0 {
			out.MaxBatch = i + 1
			break
		}
	}
	return out
}

// EventKind distinguishes the direction of a traced batch, or marks a
// span boundary.
type EventKind uint8

// Event kinds.
const (
	EventRead EventKind = iota
	EventWrite
	// EventSpanBegin and EventSpanEnd bracket one operation span opened
	// with Span. They carry no addresses; their cost lives in the step
	// counter timestamps (Event.Step).
	EventSpanBegin
	EventSpanEnd
)

// String returns "read", "write", "span_begin", or "span_end".
func (k EventKind) String() string {
	switch k {
	case EventWrite:
		return "write"
	case EventSpanBegin:
		return "span_begin"
	case EventSpanEnd:
		return "span_end"
	default:
		return "read"
	}
}

// IsSpan reports whether the kind marks a span boundary rather than a
// batch.
func (k EventKind) IsSpan() bool { return k == EventSpanBegin || k == EventSpanEnd }

// Event describes one accounted batch (what was transferred, what it
// cost, and which structure layer issued it — the innermost span path at
// issue time, dot-joined, e.g. "insert.probe") or one span boundary
// (EventSpanBegin/EventSpanEnd, identifying the operation the following
// batches belong to).
//
// Addrs aliases the caller's batch and is valid only for the duration
// of the Hook call; a sink that retains events must copy it.
type Event struct {
	// Kind is the batch direction or the span boundary marker.
	Kind EventKind
	// Tag is the span path active when the batch was issued ("" when
	// untagged). For span events it is the span's own dot-joined path.
	Tag string
	// Addrs are the batch's block addresses, in request order (nil for
	// span events).
	Addrs []Addr
	// Steps is the parallel-I/O cost charged for the batch.
	Steps int
	// Depth is the deepest per-disk queue of the batch.
	Depth int

	// Span is the ID of the span this event belongs to: for span events
	// the span's own ID, for batch and fault events the innermost open
	// span at issue time (0 = outside any span). IDs are assigned from a
	// per-machine counter, so equal workloads produce equal IDs.
	Span uint64
	// Parent is the enclosing span's ID on span events (0 = root span,
	// i.e. a top-level dictionary operation).
	Parent uint64
	// Step is the machine's cumulative parallel-I/O step counter when a
	// span event fired — the deterministic timestamp. The I/O cost of a
	// span is its end Step minus its begin Step.
	Step int64
	// WallNanos is the span's wall-clock duration in nanoseconds on
	// EventSpanEnd, when a wall clock was injected with SetWallClock
	// (0 otherwise). It is carried for live metrics only and is excluded
	// from serialized traces by construction, keeping trace determinism.
	WallNanos int64
}

// Hook receives one Event per non-empty batch. Implementations must be
// safe for concurrent use (the machine is); they run outside the
// machine's lock, so a hook may itself read machine state, but the I/O
// it observes is already accounted. A nil hook (the default) costs one
// predictable branch and zero allocations per batch.
type Hook interface {
	Event(Event)
}

// Machine is a simulated parallel disk system.
type Machine struct {
	cfg Config

	mu      sync.RWMutex
	disks   [][][]Word // disks[d][b] is the content of block b of disk d; nil = never written
	sums    [][]uint32 // sums[d][b] is the CRC32 of block b of disk d, kept in lockstep with disks
	zeroSum uint32     // CRC32 of an all-zero block (what blockLocked materializes)
	stats   Stats
	perDisk []int64 // block transfers per disk (reads + writes)

	hook     Hook          // nil = no tracing
	spans    []spanFrame   // span stack, innermost last
	nextSpan uint64        // span ID counter; IDs start at 1
	wall     func() int64  // injected wall clock in nanoseconds; nil = no wall timing
	endSpan  func()        // shared pop closure, allocated once
	injector FaultInjector // nil = faultless machine
	degraded bool          // any data-threatening fault since last ClearDegraded
	faults   int64         // lifetime fault event count
}

// spanFrame is one open span on the machine's stack.
type spanFrame struct {
	id        uint64
	parent    uint64
	path      string // dot-joined tag path, e.g. "insert.probe"
	beginWall int64  // injected-clock nanoseconds at open; 0 without a clock
}

// NewMachine returns a machine with the given configuration. It panics if
// the configuration is invalid; configurations are programmer input, not
// runtime data.
func NewMachine(cfg Config) *Machine {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	m := &Machine{
		cfg:     cfg,
		disks:   make([][][]Word, cfg.D),
		sums:    make([][]uint32, cfg.D),
		zeroSum: crcBlock(make([]Word, cfg.B)),
		perDisk: make([]int64, cfg.D),
	}
	m.endSpan = func() {
		m.mu.Lock()
		n := len(m.spans)
		if n == 0 {
			m.mu.Unlock()
			return
		}
		f := m.spans[n-1]
		m.spans = m.spans[:n-1]
		hook := m.hook
		ev := Event{
			Kind:   EventSpanEnd,
			Tag:    f.path,
			Span:   f.id,
			Parent: f.parent,
			Step:   m.stats.ParallelIOs,
		}
		if m.wall != nil {
			ev.WallNanos = m.wall() - f.beginWall
		}
		m.mu.Unlock()
		if hook != nil {
			hook.Event(ev)
		}
	}
	return m
}

// SetHook installs (or, with nil, removes) the machine's event hook.
// Batches issued concurrently with SetHook may or may not reach the new
// hook; attach hooks before starting traffic for a complete trace.
func (m *Machine) SetHook(h Hook) {
	m.mu.Lock()
	m.hook = h
	m.mu.Unlock()
}

// noopEndSpan is what Span hands back when no hook is installed, so the
// untraced path allocates nothing.
var noopEndSpan = func() {}

// SetWallClock installs (or, with nil, removes) a wall-clock source, a
// function returning nanoseconds from an arbitrary epoch. When set,
// EventSpanEnd events carry the span's wall-clock duration in
// WallNanos. The machine never reads the clock itself — injecting it
// keeps the measured packages free of wall-clock calls, and serialized
// traces omit the field, so determinism guarantees are unaffected.
func (m *Machine) SetWallClock(now func() int64) {
	m.mu.Lock()
	m.wall = now
	m.mu.Unlock()
}

// Span opens a span: it pushes tag onto the machine's span stack,
// fires an EventSpanBegin carrying a fresh span ID, the parent's ID,
// the dot-joined path, and the current step counter, and returns the
// function that closes the span (call it when the spanned phase ends,
// typically via defer; closing fires the matching EventSpanEnd).
// Batches fired while the span is open carry the dot-joined path of
// open tags and the innermost span's ID — e.g. a batch inside
// Span("probe") inside Span("insert") is tagged "insert.probe".
//
// With no hook installed, Span is a single branch returning a shared
// no-op; with concurrent users the stack is shared, so attribution
// under concurrency is best-effort (race-free, but interleaved — the
// returned closure ends the innermost open span, not necessarily the
// one this call opened).
func (m *Machine) Span(tag string) func() {
	m.mu.Lock()
	hook := m.hook
	if hook == nil {
		m.mu.Unlock()
		return noopEndSpan
	}
	f := spanFrame{path: tag}
	if n := len(m.spans); n > 0 {
		top := m.spans[n-1]
		f.parent = top.id
		f.path = top.path + "." + tag
	}
	m.nextSpan++
	f.id = m.nextSpan
	if m.wall != nil {
		f.beginWall = m.wall()
	}
	m.spans = append(m.spans, f)
	ev := Event{
		Kind:   EventSpanBegin,
		Tag:    f.path,
		Span:   f.id,
		Parent: f.parent,
		Step:   m.stats.ParallelIOs,
	}
	m.mu.Unlock()
	hook.Event(ev)
	return m.endSpan
}

// Config returns the machine's configuration.
func (m *Machine) Config() Config { return m.cfg }

// D returns the number of disks.
func (m *Machine) D() int { return m.cfg.D }

// B returns the block capacity in words.
func (m *Machine) B() int { return m.cfg.B }

// Stats returns a snapshot of the I/O counters.
func (m *Machine) Stats() Stats {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.stats
}

// ResetStats zeroes the I/O counters (including the per-disk tallies).
// Block contents are unaffected.
func (m *Machine) ResetStats() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stats = Stats{}
	for i := range m.perDisk {
		m.perDisk[i] = 0
	}
}

// PerDiskIOs returns the number of block transfers (reads plus writes)
// each disk has served — the skew diagnostic: a striped algorithm keeps
// these nearly equal, while an unbalanced one hammers a few disks.
func (m *Machine) PerDiskIOs() []int64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]int64, len(m.perDisk))
	copy(out, m.perDisk)
	return out
}

// batchCost returns the number of parallel I/O steps a batch of addresses
// costs under the machine's model, and the deepest per-disk queue.
func (m *Machine) batchCost(addrs []Addr) (steps, depth int) {
	if len(addrs) == 0 {
		return 0, 0
	}
	switch m.cfg.Model {
	case DiskHead:
		// Any D blocks per step.
		steps = (len(addrs) + m.cfg.D - 1) / m.cfg.D
		return steps, steps
	default:
		perDisk := make(map[int]int, m.cfg.D)
		for _, a := range addrs {
			perDisk[a.Disk]++
		}
		for _, c := range perDisk {
			if c > depth {
				depth = c
			}
		}
		return depth, depth
	}
}

// checkAddr panics on an address outside the machine. Addresses are
// computed by data-structure code, so an out-of-range address is a bug,
// not an error condition.
func (m *Machine) checkAddr(a Addr) {
	if a.Disk < 0 || a.Disk >= m.cfg.D || a.Block < 0 {
		panic(fmt.Sprintf("pdm: address %v out of range (D=%d)", a, m.cfg.D))
	}
}

// blockLocked returns the live slice for a block, allocating it on first
// touch. Callers hold m.mu.
func (m *Machine) blockLocked(a Addr) []Word {
	disk := m.disks[a.Disk]
	for len(disk) <= a.Block {
		disk = append(disk, nil)
	}
	m.disks[a.Disk] = disk
	if disk[a.Block] == nil {
		disk[a.Block] = make([]Word, m.cfg.B)
	}
	return disk[a.Block]
}

// BatchRead performs one batched read of the given blocks and returns
// their contents, in request order. The returned slices are copies; the
// caller owns them. The batch is accounted under the machine's cost
// model. BatchRead is the fault-oblivious path: it never consults the
// fault injector and skips checksum verification — use TryBatchRead for
// fault-aware reads.
func (m *Machine) BatchRead(addrs []Addr) [][]Word {
	for _, a := range addrs {
		m.checkAddr(a)
	}
	steps, depth := m.batchCost(addrs)
	m.mu.Lock()
	m.accountLocked(steps, depth, addrs)
	m.stats.BlockReads += int64(len(addrs))
	out := make([][]Word, len(addrs))
	for i, a := range addrs {
		src := m.blockLocked(a)
		dst := make([]Word, m.cfg.B)
		copy(dst, src)
		out[i] = dst
	}
	hook, tag, span := m.hookLocked(len(addrs))
	m.mu.Unlock()
	if hook != nil {
		hook.Event(Event{Kind: EventRead, Tag: tag, Addrs: addrs, Steps: steps, Depth: depth, Span: span})
	}
	return out
}

// accountLocked applies a batch's cost to the counters. Callers hold
// m.mu.
func (m *Machine) accountLocked(steps, depth int, addrs []Addr) {
	m.stats.ParallelIOs += int64(steps)
	if depth > m.stats.MaxBatch {
		m.stats.MaxBatch = depth
	}
	if depth > 0 {
		i := depth - 1
		if i >= DepthBuckets {
			i = DepthBuckets - 1
		}
		m.stats.DepthCounts[i]++
	}
	for _, a := range addrs {
		m.perDisk[a.Disk]++
	}
}

// hookLocked returns the hook to fire for a batch of n addresses (nil
// when tracing is off or the batch is empty), the current span tag, and
// the innermost open span's ID. Callers hold m.mu and invoke the hook
// after unlocking, so hooks may touch the machine without deadlocking.
func (m *Machine) hookLocked(n int) (hook Hook, tag string, span uint64) {
	if m.hook == nil || n == 0 {
		return nil, "", 0
	}
	if len(m.spans) > 0 {
		top := m.spans[len(m.spans)-1]
		tag, span = top.path, top.id
	}
	return m.hook, tag, span
}

// BlockWrite names one block write of a batch.
type BlockWrite struct {
	Addr Addr
	Data []Word // at most B words; shorter data leaves the tail unchanged
}

// BatchWrite performs one batched write. Each write stores len(Data)
// words at the start of the addressed block (the model transfers whole
// blocks; partial Data is a convenience that leaves the block tail as it
// was). The batch is accounted under the machine's cost model. Like all
// writes it maintains the per-block checksums, but it never consults the
// fault injector — use TryBatchWrite for fault-aware writes.
func (m *Machine) BatchWrite(writes []BlockWrite) {
	addrs := make([]Addr, len(writes))
	for i, w := range writes {
		m.checkAddr(w.Addr)
		if len(w.Data) > m.cfg.B {
			panic(fmt.Sprintf("pdm: write of %d words exceeds block size %d", len(w.Data), m.cfg.B))
		}
		addrs[i] = w.Addr
	}
	steps, depth := m.batchCost(addrs)
	m.mu.Lock()
	m.accountLocked(steps, depth, addrs)
	m.stats.BlockWrites += int64(len(writes))
	for _, w := range writes {
		blk := m.blockLocked(w.Addr)
		copy(blk, w.Data)
		*m.sumLocked(w.Addr) = crcBlock(blk)
	}
	hook, tag, span := m.hookLocked(len(addrs))
	m.mu.Unlock()
	if hook != nil {
		hook.Event(Event{Kind: EventWrite, Tag: tag, Addrs: addrs, Steps: steps, Depth: depth, Span: span})
	}
}

// ReadBlock reads a single block (one parallel I/O).
func (m *Machine) ReadBlock(a Addr) []Word {
	return m.BatchRead([]Addr{a})[0]
}

// WriteBlock writes a single block (one parallel I/O).
func (m *Machine) WriteBlock(a Addr, data []Word) {
	m.BatchWrite([]BlockWrite{{Addr: a, Data: data}})
}

// Peek returns a copy of a block's contents without performing (or
// accounting) any I/O. It exists for tests and invariant checks only.
func (m *Machine) Peek(a Addr) []Word {
	m.checkAddr(a)
	m.mu.Lock()
	defer m.mu.Unlock()
	src := m.blockLocked(a)
	dst := make([]Word, m.cfg.B)
	copy(dst, src)
	return dst
}

// BlocksAllocated reports how many blocks have been materialized on each
// disk. It is a space-accounting helper; allocation happens lazily on
// first touch.
func (m *Machine) BlocksAllocated() []int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]int, m.cfg.D)
	for d, disk := range m.disks {
		out[d] = len(disk)
	}
	return out
}

// TotalBlocks returns the total number of materialized blocks across all
// disks.
func (m *Machine) TotalBlocks() int {
	total := 0
	for _, n := range m.BlocksAllocated() {
		total += n
	}
	return total
}

// Package pdm implements a simulator for the parallel disk model of
// Vitter and Shriver, the cost model in which every result of the paper
// "Deterministic load balancing and dictionaries in the parallel disk
// model" (SPAA 2006) is stated.
//
// The machine consists of D storage devices, each an array of blocks with
// capacity for B data items. A data item is one machine word, "assumed to
// be sufficiently large to hold a pointer value or a key value". The
// performance of an algorithm is measured in parallel I/Os: one parallel
// I/O retrieves (or writes) at most one block from (or to) each of the D
// devices. A batch that addresses the same disk more than once costs as
// many parallel I/Os as the deepest per-disk queue.
//
// The package also implements the parallel disk *head* model (one disk
// with D independent read/write heads, Aggarwal–Vitter), which Section 5
// of the paper uses for unstriped expanders: there, any D blocks can be
// accessed in a single parallel I/O regardless of which device they live
// on.
//
// The machine is safe for concurrent use, and concurrency is the point:
// storage is sharded per disk (each disk has its own lock and block
// store), the I/O counters are per-shard and per-machine atomics merged
// by Stats, and large batches fan their block copies out across a
// bounded worker pool, so independent clients contend only on the disks
// they actually touch — the model's own picture of D devices serving a
// batch in parallel. Batches are not atomic units under concurrent use:
// two overlapping batches may interleave per block (each single block
// access is consistent). Event emission is serialized separately, so a
// trace remains one well-formed, totally ordered stream; see Hook.
package pdm

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Word is the unit of storage: one data item of the model.
type Word = uint64

// Model selects the cost model used to account batch accesses.
type Model int

const (
	// ParallelDisk is the standard parallel disk model: a parallel I/O
	// may touch at most one block per disk.
	ParallelDisk Model = iota
	// DiskHead is the parallel disk head model: a parallel I/O may touch
	// any D blocks, regardless of placement.
	DiskHead
)

// String returns the conventional name of the model.
func (m Model) String() string {
	switch m {
	case ParallelDisk:
		return "parallel-disk"
	case DiskHead:
		return "disk-head"
	default:
		return fmt.Sprintf("Model(%d)", int(m))
	}
}

// Config describes a machine.
type Config struct {
	// D is the number of disks (or heads in the DiskHead model).
	D int
	// B is the block capacity in words.
	B int
	// Model selects the accounting discipline. The zero value is the
	// standard parallel disk model.
	Model Model
	// Workers bounds the worker pool that fans one large batch's block
	// copies out across shards. 0 selects the default, min(D,
	// GOMAXPROCS); 1 keeps every batch on its issuing goroutine.
	// Workers never affects results, accounting, or traces — only
	// wall-clock parallelism. It is not persisted in snapshots.
	Workers int
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.D <= 0 {
		return fmt.Errorf("pdm: D must be positive, got %d", c.D)
	}
	if c.B <= 0 {
		return fmt.Errorf("pdm: B must be positive, got %d", c.B)
	}
	if c.Workers < 0 {
		return fmt.Errorf("pdm: Workers must be non-negative, got %d", c.Workers)
	}
	return nil
}

// Addr identifies one block: block index Block on disk Disk.
type Addr struct {
	Disk  int
	Block int
}

// String formats the address as disk:block.
func (a Addr) String() string { return fmt.Sprintf("%d:%d", a.Disk, a.Block) }

// DepthBuckets is the resolution of Stats.DepthCounts: batch depths
// 1..DepthBuckets are counted exactly; deeper batches saturate into the
// last bucket.
const DepthBuckets = 64

// Stats is a snapshot of the machine's I/O counters.
type Stats struct {
	// ParallelIOs is the number of parallel I/O steps performed.
	ParallelIOs int64
	// BlockReads and BlockWrites count individual block transfers
	// (several may share one parallel I/O).
	BlockReads  int64
	BlockWrites int64
	// MaxBatch is the largest per-disk queue depth seen in any single
	// batch; values above 1 indicate a batch that was not truly parallel.
	// In a Stats returned by Sub it covers only the window between the
	// two snapshots (capped at DepthBuckets); otherwise it is the
	// lifetime maximum.
	MaxBatch int
	// DepthCounts[i] counts the non-empty batches whose per-disk queue
	// depth was i+1 (the last bucket also absorbs anything deeper). The
	// cumulative counts let Sub recover the worst batch of a window, and
	// double as a per-batch depth histogram.
	DepthCounts [DepthBuckets]int64
}

// Sub returns the difference s - t, counter by counter. It is the usual
// way to measure the cost of an operation: snapshot before, snapshot
// after, subtract. The returned MaxBatch is the deepest batch of the
// window itself — recovered from the DepthCounts deltas, not the
// lifetime maximum — so deltas report the window's worst batch even
// when an earlier batch was deeper.
func (s Stats) Sub(t Stats) Stats {
	out := Stats{
		ParallelIOs: s.ParallelIOs - t.ParallelIOs,
		BlockReads:  s.BlockReads - t.BlockReads,
		BlockWrites: s.BlockWrites - t.BlockWrites,
	}
	for i := range s.DepthCounts {
		out.DepthCounts[i] = s.DepthCounts[i] - t.DepthCounts[i]
	}
	for i := DepthBuckets - 1; i >= 0; i-- {
		if out.DepthCounts[i] > 0 {
			out.MaxBatch = i + 1
			break
		}
	}
	return out
}

// EventKind distinguishes the direction of a traced batch, or marks a
// span boundary.
type EventKind uint8

// Event kinds.
const (
	EventRead EventKind = iota
	EventWrite
	// EventSpanBegin and EventSpanEnd bracket one operation span opened
	// with Span. They carry no addresses; their cost lives in the step
	// counter timestamps (Event.Step).
	EventSpanBegin
	EventSpanEnd
	// EventHealth announces one disk's health-state transition (From →
	// To, Addrs[0].Disk identifying the disk). It is an annotation: it
	// transfers no blocks and charges no steps.
	EventHealth
	// EventAlert announces one alert-instance transition synthesized by
	// a monitoring sink (Rule, From, To, Value). Like EventHealth it is
	// an annotation carrying no I/O cost.
	EventAlert
)

// String returns "read", "write", "span_begin", "span_end", "health",
// or "alert".
func (k EventKind) String() string {
	switch k {
	case EventWrite:
		return "write"
	case EventSpanBegin:
		return "span_begin"
	case EventSpanEnd:
		return "span_end"
	case EventHealth:
		return "health"
	case EventAlert:
		return "alert"
	default:
		return "read"
	}
}

// IsSpan reports whether the kind marks a span boundary rather than a
// batch.
func (k EventKind) IsSpan() bool { return k == EventSpanBegin || k == EventSpanEnd }

// IsAnnotation reports whether the kind is a stream annotation — a
// health or alert transition — rather than an accounted batch or a span
// boundary. Annotations carry zero Steps by construction; accounting
// sinks skip them.
func (k EventKind) IsAnnotation() bool { return k == EventHealth || k == EventAlert }

// Event describes one accounted batch (what was transferred, what it
// cost, and which structure layer issued it — the innermost span path at
// issue time, dot-joined, e.g. "insert.probe") or one span boundary
// (EventSpanBegin/EventSpanEnd, identifying the operation the following
// batches belong to).
//
// Addrs aliases the caller's batch and is valid only for the duration
// of the Hook call; a sink that retains events must copy it.
type Event struct {
	// Kind is the batch direction or the span boundary marker.
	Kind EventKind
	// Tag is the span path active when the batch was issued ("" when
	// untagged). For span events it is the span's own dot-joined path.
	Tag string
	// Addrs are the batch's block addresses, in request order (nil for
	// span events).
	Addrs []Addr
	// Steps is the parallel-I/O cost charged for the batch.
	Steps int
	// Depth is the deepest per-disk queue of the batch.
	Depth int

	// Span is the ID of the span this event belongs to: for span events
	// the span's own ID, for batch and fault events the innermost open
	// span at issue time (0 = outside any span). IDs are assigned from a
	// per-machine counter, so equal workloads produce equal IDs. For a
	// token-carrying event the span is the owning op's innermost span,
	// not the machine's shared stack.
	Span uint64
	// Op is the ID of the operation token this event belongs to (0 = no
	// token). Tokens make attribution exact under concurrency: every
	// batch, fault, and span event of a token-carrying operation is
	// stamped with the op's ID, so per-op accounting never has to guess
	// from a shared span stack.
	Op uint64
	// Client is the owning op's client ID (meaningful only when Op != 0
	// or Ops is non-empty — 0 otherwise).
	Client int
	// Keys is the owning op's key count, stamped on the root
	// EventSpanBegin of the operation (0 elsewhere). Consumers use it to
	// amortize batch-operation cost per key.
	Keys int
	// Ops is the attribution list of a merged batch (BatchReadShared):
	// every operation the shared batch was issued on behalf of, in
	// request order. Each listed op was charged the batch's full cost.
	Ops []uint64
	// Parent is the enclosing span's ID on span events (0 = root span,
	// i.e. a top-level dictionary operation).
	Parent uint64
	// Rule names the alert rule (plus "[label]" for a labeled instance)
	// on EventAlert events ("" elsewhere).
	Rule string
	// From and To are the state names of a transition: health states on
	// EventHealth, alert states on EventAlert ("" elsewhere).
	From string
	To   string
	// Value is the rule's sampled value in fixed-point micro-units on
	// EventAlert events (e.g. a skew ratio of 1.5 is 1500000).
	Value int64
	// Step is the machine's cumulative parallel-I/O step counter when a
	// span event fired — the deterministic timestamp. The I/O cost of a
	// span is its end Step minus its begin Step.
	Step int64
	// Seq is the machine-assigned emission sequence number (1, 2, …):
	// the total order in which events reached the hook. Concurrent
	// batches serialize through the machine's emission lock, so the
	// stream a hook sees has no gaps, duplicates, or reorderings. Like
	// WallNanos it is carried for live consumers only and is excluded
	// from serialized traces by construction: in a single-threaded run
	// Seq is implied by position, so traces stay byte-identical by seed.
	Seq uint64
	// WallNanos is the span's wall-clock duration in nanoseconds on
	// EventSpanEnd, when a wall clock was injected with SetWallClock
	// (0 otherwise). It is carried for live metrics only and is excluded
	// from serialized traces by construction, keeping trace determinism.
	WallNanos int64
}

// Hook receives one Event per non-empty batch. The machine serializes
// every emission through one internal lock, so a hook sees a totally
// ordered stream (Event.Seq is its position) even under concurrent
// batches, and need not be safe for concurrent use with respect to the
// machine's own calls. The emission lock is held during the call: a
// hook may read machine state (Stats, Peek, PerDiskIOs — the I/O it
// observes is already accounted), but must not issue I/O, open spans,
// or install hooks from inside Event. A nil hook (the default) costs
// one predictable branch and zero allocations per batch.
type Hook interface {
	Event(Event)
}

// shard is one disk's storage: its own lock, block store, checksums,
// and transfer tally. Independent batches touching disjoint disks never
// contend.
type shard struct {
	mu     sync.Mutex
	blocks [][]Word // guarded by mu; blocks[b] is the content of block b, nil = never written
	sums   []uint32 // guarded by mu; sums[b] is the CRC32 of block b, kept in lockstep with blocks

	ios atomic.Int64 // block transfers served (reads + writes), incl. failed Try accesses

	b       int    // block capacity in words (copied from Config.B)
	zeroSum uint32 // CRC32 of an all-zero block (what block materializes)

	_ [40]byte // pad shards apart so their locks don't false-share
}

// grow extends the block and checksum arrays to n slots in one step,
// with geometric capacity growth, so first touch of a high block is
// amortized O(1) rather than O(n) appends. Callers hold s.mu.
func (s *shard) growLocked(n int) {
	if n <= len(s.blocks) {
		return
	}
	if cap(s.blocks) < n {
		c := 2 * cap(s.blocks)
		if c < n {
			c = n
		}
		if c < 8 {
			c = 8
		}
		nb := make([][]Word, len(s.blocks), c)
		copy(nb, s.blocks)
		s.blocks = nb
		ns := make([]uint32, len(s.sums), c)
		copy(ns, s.sums)
		s.sums = ns
	}
	old := len(s.blocks)
	s.blocks = s.blocks[:n]
	s.sums = s.sums[:n]
	for i := old; i < n; i++ {
		s.blocks[i] = nil
		s.sums[i] = s.zeroSum
	}
}

// block returns the live slice for a block, allocating it on first
// touch. A fresh block's checksum slot already holds the all-zero CRC.
// Callers hold s.mu.
func (s *shard) blockLocked(b int) []Word {
	if b >= len(s.blocks) {
		s.growLocked(b + 1)
	}
	if s.blocks[b] == nil {
		s.blocks[b] = make([]Word, s.b)
	}
	return s.blocks[b]
}

// verify reports whether a block's content matches its stored checksum.
// Unmaterialized blocks are trivially valid. Callers hold s.mu.
func (s *shard) verifyLocked(b int) bool {
	if b >= len(s.blocks) || s.blocks[b] == nil {
		return true
	}
	return crcBlock(s.blocks[b]) == s.sums[b]
}

// corrupt flips one stored bit of a block without touching its
// checksum, leaving detectable latent damage. Callers hold s.mu.
func (s *shard) corruptLocked(b int, bit uint) {
	blk := s.blockLocked(b)
	bits := uint(len(blk)) * 64
	bit %= bits
	blk[bit/64] ^= 1 << (bit % 64)
}

// Machine is a simulated parallel disk system.
type Machine struct {
	cfg    Config
	shards []shard // one per disk

	// Batch counters. All atomics, so concurrent batches account
	// exactly with no shared lock; Stats merges them.
	pios        atomic.Int64
	blockReads  atomic.Int64
	blockWrites atomic.Int64
	maxBatch    atomic.Int64
	depthCounts [DepthBuckets]atomic.Int64

	workers atomic.Int32 // worker-pool bound for batch fan-out
	scratch sync.Pool    // *batchScratch, for partitioning large batches

	nextOp atomic.Uint64 // operation-token ID counter; IDs start at 1

	// emitMu serializes event emission: the span stack, the sequence
	// counter, and every hook call. hooked mirrors hook != nil so the
	// untraced fast path is one lock-free load.
	emitMu   sync.Mutex
	hooked   atomic.Bool
	hook     Hook         // guarded by emitMu
	seq      uint64       // guarded by emitMu
	spans    []spanFrame  // guarded by emitMu
	nextSpan uint64       // guarded by emitMu; span ID counter, IDs start at 1
	wall     func() int64 // guarded by emitMu; injected wall clock in nanoseconds, nil = no wall timing
	endSpan  func()       // shared pop closure, allocated once at construction

	// faultMu serializes fault-injector consultation so each Try batch
	// draws its per-access decisions contiguously, in batch order —
	// what keeps a seeded injector's fault sequence reproducible.
	faultMu  sync.Mutex
	injector FaultInjector // guarded by faultMu; nil = faultless machine

	degraded atomic.Bool  // any data-threatening fault since last ClearDegraded
	faults   atomic.Int64 // lifetime fault event count

	// Per-disk health state machine (health.go). healthMu guards the
	// trackers, the thresholds, and the notification callback; the
	// unhealthy counter mirrors how many disks are not Healthy so
	// AllDisksHealthy is a single lock-free load.
	healthMu     sync.Mutex
	health       []diskHealth // guarded by healthMu
	healthNotify func()       // guarded by healthMu
	healthEvents []Event      // guarded by healthMu; transitions awaiting emission
	suspectN     int          // guarded by healthMu
	suspectW     int64        // guarded by healthMu
	unhealthy    atomic.Int64

	// Recovery instrumentation (reported by Health).
	retries      atomic.Int64 // retry batches issued by retry policies
	hedges       atomic.Int64 // hedged duplicate reads issued
	backoffSteps atomic.Int64 // modeled backoff pIOs charged via ChargeSteps
	repairChunks atomic.Int64 // incremental repair/scrub chunks run
	repairRows   atomic.Int64 // bucket rows covered by those chunks
}

// spanFrame is one open span on the machine's stack.
type spanFrame struct {
	id        uint64
	parent    uint64
	path      string // dot-joined tag path, e.g. "insert.probe"
	beginWall int64  // injected-clock nanoseconds at open; 0 without a clock
}

// NewMachine returns a machine with the given configuration. It panics if
// the configuration is invalid; configurations are programmer input, not
// runtime data.
func NewMachine(cfg Config) *Machine {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	m := &Machine{
		cfg:      cfg,
		shards:   make([]shard, cfg.D),
		health:   make([]diskHealth, cfg.D),
		suspectN: DefaultSuspectThreshold,
		suspectW: DefaultSuspectWindow,
	}
	for d := range m.health {
		m.health[d].lastStall = -1
	}
	zeroSum := crcBlock(make([]Word, cfg.B))
	for d := range m.shards {
		m.shards[d].b = cfg.B
		m.shards[d].zeroSum = zeroSum
	}
	m.SetParallelism(cfg.Workers)
	m.scratch.New = func() any {
		return &batchScratch{
			counts:  make([]int32, cfg.D),
			offs:    make([]int32, cfg.D),
			touched: make([]int32, 0, cfg.D),
		}
	}
	m.endSpan = func() {
		m.emitMu.Lock()
		n := len(m.spans)
		if n == 0 {
			m.emitMu.Unlock()
			return
		}
		f := m.spans[n-1]
		m.spans = m.spans[:n-1]
		if m.hook == nil {
			m.emitMu.Unlock()
			return
		}
		m.seq++
		ev := Event{
			Kind:   EventSpanEnd,
			Tag:    f.path,
			Span:   f.id,
			Parent: f.parent,
			Step:   m.pios.Load(),
			Seq:    m.seq,
		}
		if m.wall != nil {
			ev.WallNanos = m.wall() - f.beginWall
		}
		m.hook.Event(ev)
		m.emitMu.Unlock()
	}
	return m
}

// SetHook installs (or, with nil, removes) the machine's event hook.
// Batches issued concurrently with SetHook may or may not reach the new
// hook; attach hooks before starting traffic for a complete trace.
func (m *Machine) SetHook(h Hook) {
	m.emitMu.Lock()
	m.hook = h
	m.hooked.Store(h != nil)
	m.emitMu.Unlock()
}

// SetParallelism bounds the worker pool that fans one batch's block
// copies out across shards: n workers serve a batch's touched disks
// concurrently. n <= 0 restores the default, min(D, GOMAXPROCS); n == 1
// keeps batches on their issuing goroutine. Like Config.Workers it
// never affects results, accounting, or traces.
func (m *Machine) SetParallelism(n int) {
	if n <= 0 {
		n = m.cfg.D
		if p := runtime.GOMAXPROCS(0); p < n {
			n = p
		}
		if n < 1 {
			n = 1
		}
	}
	m.workers.Store(int32(n))
}

// noopEndSpan is what Span hands back when no hook is installed, so the
// untraced path allocates nothing.
var noopEndSpan = func() {}

// SetWallClock installs (or, with nil, removes) a wall-clock source, a
// function returning nanoseconds from an arbitrary epoch. When set,
// EventSpanEnd events carry the span's wall-clock duration in
// WallNanos. The machine never reads the clock itself — injecting it
// keeps the measured packages free of wall-clock calls, and serialized
// traces omit the field, so determinism guarantees are unaffected.
func (m *Machine) SetWallClock(now func() int64) {
	m.emitMu.Lock()
	m.wall = now
	m.emitMu.Unlock()
}

// Span opens a span: it pushes tag onto the machine's span stack,
// fires an EventSpanBegin carrying a fresh span ID, the parent's ID,
// the dot-joined path, and the current step counter, and returns the
// function that closes the span (call it when the spanned phase ends,
// typically via defer; closing fires the matching EventSpanEnd).
// Batches fired while the span is open carry the dot-joined path of
// open tags and the innermost span's ID — e.g. a batch inside
// Span("probe") inside Span("insert") is tagged "insert.probe".
//
// With no hook installed, Span is a single branch returning a shared
// no-op. The stack is shared across goroutines, so Span alone cannot
// attribute exactly under concurrency (the returned closure ends the
// innermost open span, not necessarily the one this call opened);
// concurrent operations should carry an Op token and use OpSpan, which
// nests on the op's private stack and is exact.
func (m *Machine) Span(tag string) func() {
	if !m.hooked.Load() {
		return noopEndSpan
	}
	m.emitMu.Lock()
	if m.hook == nil {
		m.emitMu.Unlock()
		return noopEndSpan
	}
	f := spanFrame{path: tag}
	if n := len(m.spans); n > 0 {
		top := m.spans[n-1]
		f.parent = top.id
		f.path = top.path + "." + tag
	}
	m.nextSpan++
	f.id = m.nextSpan
	if m.wall != nil {
		f.beginWall = m.wall()
	}
	m.spans = append(m.spans, f)
	m.seq++
	m.hook.Event(Event{
		Kind:   EventSpanBegin,
		Tag:    f.path,
		Span:   f.id,
		Parent: f.parent,
		Step:   m.pios.Load(),
		Seq:    m.seq,
	})
	m.emitMu.Unlock()
	return m.endSpan
}

// emit fires a batch event, followed by its fault events if any, under
// the emission lock: the events are stamped with consecutive sequence
// numbers and the innermost open span, and reach the hook as one
// contiguous run even when other batches complete concurrently. A
// token-carrying batch (op != nil) is stamped with the op's ID, client,
// and innermost span from the op's private stack; a merged batch
// (shared non-empty) carries the attribution list in Ops. Fault events
// inherit the batch's span and attribution.
func (m *Machine) emit(op *Op, shared []*Op, ev Event, fevents []Event) {
	m.emitMu.Lock()
	if m.hook == nil {
		m.emitMu.Unlock()
		return
	}
	if op != nil && len(op.frames) > 0 {
		top := op.frames[len(op.frames)-1]
		ev.Tag, ev.Span = top.path, top.id
	} else if n := len(m.spans); n > 0 {
		top := m.spans[n-1]
		ev.Tag, ev.Span = top.path, top.id
	}
	if op != nil {
		ev.Op, ev.Client = op.id, op.client
	}
	for _, o := range shared {
		if o != nil {
			ev.Ops = append(ev.Ops, o.id)
		}
	}
	m.seq++
	ev.Seq = m.seq
	m.hook.Event(ev)
	for i := range fevents {
		fevents[i].Span = ev.Span
		fevents[i].Op, fevents[i].Client = ev.Op, ev.Client
		fevents[i].Ops = ev.Ops
		m.seq++
		fevents[i].Seq = m.seq
		m.hook.Event(fevents[i])
	}
	m.emitMu.Unlock()
}

// emitAnnotations fires annotation events (health transitions drained
// outside a Try batch, e.g. from MarkRepairing) under the emission
// lock, stamping each with a sequence number. Unlike emit it attaches
// no op attribution and no span: the transitions were driven by an
// explicit state-machine call, not by a batch. Callers must not hold
// healthMu or emitMu.
func (m *Machine) emitAnnotations(evs []Event) {
	if len(evs) == 0 || !m.hooked.Load() {
		return
	}
	m.emitMu.Lock()
	if m.hook == nil {
		m.emitMu.Unlock()
		return
	}
	for i := range evs {
		m.seq++
		evs[i].Seq = m.seq
		m.hook.Event(evs[i])
	}
	m.emitMu.Unlock()
}

// Config returns the machine's configuration.
func (m *Machine) Config() Config { return m.cfg }

// D returns the number of disks.
func (m *Machine) D() int { return m.cfg.D }

// B returns the block capacity in words.
func (m *Machine) B() int { return m.cfg.B }

// Stats returns a snapshot of the I/O counters. Each counter is read
// atomically; a batch completing concurrently is either fully counted
// or not yet counted in totals, never torn within one counter.
func (m *Machine) Stats() Stats {
	var s Stats
	s.ParallelIOs = m.pios.Load()
	s.BlockReads = m.blockReads.Load()
	s.BlockWrites = m.blockWrites.Load()
	s.MaxBatch = int(m.maxBatch.Load())
	for i := range s.DepthCounts {
		s.DepthCounts[i] = m.depthCounts[i].Load()
	}
	return s
}

// ResetStats zeroes the I/O counters (including the per-disk tallies).
// Block contents are unaffected.
func (m *Machine) ResetStats() {
	m.pios.Store(0)
	m.blockReads.Store(0)
	m.blockWrites.Store(0)
	m.maxBatch.Store(0)
	for i := range m.depthCounts {
		m.depthCounts[i].Store(0)
	}
	for d := range m.shards {
		m.shards[d].ios.Store(0)
	}
}

// PerDiskIOs returns the number of block transfers (reads plus writes)
// each disk has served — the skew diagnostic: a striped algorithm keeps
// these nearly equal, while an unbalanced one hammers a few disks.
func (m *Machine) PerDiskIOs() []int64 {
	out := make([]int64, len(m.shards))
	for d := range m.shards {
		out[d] = m.shards[d].ios.Load()
	}
	return out
}

// charge accounts one batch: steps parallel I/Os and one histogram
// entry at the given depth.
func (m *Machine) charge(steps, depth int) {
	m.pios.Add(int64(steps))
	if depth <= 0 {
		return
	}
	for {
		cur := m.maxBatch.Load()
		if int64(depth) <= cur || m.maxBatch.CompareAndSwap(cur, int64(depth)) {
			break
		}
	}
	i := depth - 1
	if i >= DepthBuckets {
		i = DepthBuckets - 1
	}
	m.depthCounts[i].Add(1)
}

// smallBatchMax bounds the batches served inline: below it, a batch is
// executed on its issuing goroutine with one short lock per address and
// its depth computed by allocation-free pairwise counting. Larger
// batches go through the pooled counting-sort partition (and, past
// fanoutMinBlocks, the worker pool).
const smallBatchMax = 32

// fanoutMinBlocks is the smallest batch worth spawning workers for: the
// copy work must amortize the goroutine handoffs.
const fanoutMinBlocks = 128

// smallDepth returns the deepest per-disk queue of a small batch by
// pairwise counting — O(n²) in the batch length but allocation-free,
// which is what keeps the common d-address dictionary probe at zero
// bookkeeping allocations.
func smallDepth(addrs []Addr) int {
	depth := 0
	for i, a := range addrs {
		c := 1
		for _, rest := range addrs[i+1:] {
			if rest.Disk == a.Disk {
				c++
			}
		}
		if c > depth {
			depth = c
		}
	}
	return depth
}

// batchScratch is the reusable bookkeeping for partitioning one batch
// by disk: a counting sort over the addresses. counts is all-zero
// whenever the scratch is parked in the pool.
type batchScratch struct {
	counts  []int32 // per-disk address count (length D)
	offs    []int32 // per-disk cursor into order (length D)
	order   []int32 // batch indices grouped by disk, batch order within a disk
	touched []int32 // disks with at least one address, in first-touch order
}

// partition groups a batch's indices by disk and returns the deepest
// per-disk queue. Afterwards segment(d) lists the batch indices
// addressed to disk d, in batch order.
func (sc *batchScratch) partition(addrs []Addr) (depth int) {
	if cap(sc.order) < len(addrs) {
		sc.order = make([]int32, len(addrs))
	}
	sc.order = sc.order[:len(addrs)]
	sc.touched = sc.touched[:0]
	for _, a := range addrs {
		if sc.counts[a.Disk] == 0 {
			sc.touched = append(sc.touched, int32(a.Disk))
		}
		sc.counts[a.Disk]++
	}
	off := int32(0)
	for _, d := range sc.touched {
		c := sc.counts[d]
		if int(c) > depth {
			depth = int(c)
		}
		sc.offs[d] = off
		off += c
	}
	for i, a := range addrs {
		sc.order[sc.offs[a.Disk]] = int32(i)
		sc.offs[a.Disk]++
	}
	return depth
}

// segment returns the batch indices partition grouped onto disk d, in
// batch order.
func (sc *batchScratch) segment(d int32) []int32 {
	return sc.order[sc.offs[d]-sc.counts[d] : sc.offs[d]]
}

// release re-zeroes counts (cheaply, via the touched list) and parks
// the scratch back in the pool.
func (m *Machine) release(sc *batchScratch) {
	for _, d := range sc.touched {
		sc.counts[d] = 0
	}
	m.scratch.Put(sc)
}

// cost returns the parallel-I/O steps and deepest per-disk queue of a
// partitioned batch under the machine's model.
func (m *Machine) cost(n, depth int) (int, int) {
	if m.cfg.Model == DiskHead {
		// Any D blocks per step.
		steps := (n + m.cfg.D - 1) / m.cfg.D
		return steps, steps
	}
	return depth, depth
}

// runShards executes perDisk for every touched disk of a partitioned
// batch, fanning out across the worker pool when the batch is large
// enough to pay for the handoffs. Workers pull disks from a shared
// cursor; the issuing goroutine is always one of them.
func (m *Machine) runShards(sc *batchScratch, nBlocks int, perDisk func(d int32)) {
	workers := int(m.workers.Load())
	if workers > len(sc.touched) {
		workers = len(sc.touched)
	}
	if workers <= 1 || nBlocks < fanoutMinBlocks {
		for _, d := range sc.touched {
			perDisk(d)
		}
		return
	}
	var cursor atomic.Int32
	var wg sync.WaitGroup
	wg.Add(workers - 1)
	for w := 1; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				t := int(cursor.Add(1)) - 1
				if t >= len(sc.touched) {
					return
				}
				perDisk(sc.touched[t])
			}
		}()
	}
	for {
		t := int(cursor.Add(1)) - 1
		if t >= len(sc.touched) {
			break
		}
		perDisk(sc.touched[t])
	}
	wg.Wait()
}

// checkAddr panics on an address outside the machine. Addresses are
// computed by data-structure code, so an out-of-range address is a bug,
// not an error condition.
func (m *Machine) checkAddr(a Addr) {
	if a.Disk < 0 || a.Disk >= m.cfg.D || a.Block < 0 {
		panic(fmt.Sprintf("pdm: address %v out of range (D=%d)", a, m.cfg.D))
	}
}

// BatchRead performs one batched read of the given blocks and returns
// their contents, in request order. The returned slices are copies; the
// caller owns them. The batch is accounted under the machine's cost
// model. BatchRead is the fault-oblivious path: it never consults the
// fault injector and skips checksum verification — use TryBatchRead for
// fault-aware reads. The batch carries no operation token; see
// BatchReadOp and BatchReadShared for attributed variants.
func (m *Machine) BatchRead(addrs []Addr) [][]Word {
	return m.batchRead(nil, nil, addrs)
}

// batchRead is the shared implementation behind BatchRead, BatchReadOp,
// and BatchReadShared: op is the owning token (nil for none), shared the
// merged-batch attribution list (nil for an exclusive batch).
func (m *Machine) batchRead(op *Op, shared []*Op, addrs []Addr) [][]Word {
	out := make([][]Word, len(addrs))
	if len(addrs) == 0 {
		return out
	}
	for _, a := range addrs {
		m.checkAddr(a)
	}
	var steps, depth int
	if len(addrs) <= smallBatchMax {
		steps, depth = m.cost(len(addrs), smallDepth(addrs))
		m.charge(steps, depth)
		for i, a := range addrs {
			s := &m.shards[a.Disk]
			s.mu.Lock()
			src := s.blockLocked(a.Block)
			dst := make([]Word, m.cfg.B)
			copy(dst, src)
			s.mu.Unlock()
			s.ios.Add(1)
			out[i] = dst
		}
	} else {
		sc := m.scratch.Get().(*batchScratch)
		steps, depth = m.cost(len(addrs), sc.partition(addrs))
		m.charge(steps, depth)
		m.runShards(sc, len(addrs), func(d int32) {
			s := &m.shards[d]
			seg := sc.segment(d)
			s.mu.Lock()
			for _, i := range seg {
				src := s.blockLocked(addrs[i].Block)
				dst := make([]Word, m.cfg.B)
				copy(dst, src)
				out[i] = dst
			}
			s.mu.Unlock()
			s.ios.Add(int64(len(seg)))
		})
		m.release(sc)
	}
	m.blockReads.Add(int64(len(addrs)))
	chargeOps(m, op, shared, EventRead, steps, len(addrs), 0)
	if m.hooked.Load() {
		m.emit(op, shared, Event{Kind: EventRead, Addrs: addrs, Steps: steps, Depth: depth}, nil)
	}
	return out
}

// BlockWrite names one block write of a batch.
type BlockWrite struct {
	Addr Addr
	Data []Word // at most B words; shorter data leaves the tail unchanged
}

// BatchWrite performs one batched write. Each write stores len(Data)
// words at the start of the addressed block (the model transfers whole
// blocks; partial Data is a convenience that leaves the block tail as it
// was). The batch is accounted under the machine's cost model. Like all
// writes it maintains the per-block checksums, but it never consults the
// fault injector — use TryBatchWrite for fault-aware writes. The batch
// carries no operation token; see BatchWriteOp for the attributed
// variant.
func (m *Machine) BatchWrite(writes []BlockWrite) {
	m.batchWrite(nil, writes)
}

// batchWrite is the shared implementation behind BatchWrite and
// BatchWriteOp; op is the owning token (nil for none).
func (m *Machine) batchWrite(op *Op, writes []BlockWrite) {
	if len(writes) == 0 {
		return
	}
	addrs := make([]Addr, len(writes))
	for i, w := range writes {
		m.checkAddr(w.Addr)
		if len(w.Data) > m.cfg.B {
			panic(fmt.Sprintf("pdm: write of %d words exceeds block size %d", len(w.Data), m.cfg.B))
		}
		addrs[i] = w.Addr
	}
	var steps, depth int
	if len(writes) <= smallBatchMax {
		steps, depth = m.cost(len(addrs), smallDepth(addrs))
		m.charge(steps, depth)
		for _, w := range writes {
			s := &m.shards[w.Addr.Disk]
			s.mu.Lock()
			blk := s.blockLocked(w.Addr.Block)
			copy(blk, w.Data)
			s.sums[w.Addr.Block] = crcBlock(blk)
			s.mu.Unlock()
			s.ios.Add(1)
		}
	} else {
		sc := m.scratch.Get().(*batchScratch)
		steps, depth = m.cost(len(addrs), sc.partition(addrs))
		m.charge(steps, depth)
		m.runShards(sc, len(addrs), func(d int32) {
			s := &m.shards[d]
			seg := sc.segment(d)
			s.mu.Lock()
			for _, i := range seg {
				w := &writes[i]
				blk := s.blockLocked(w.Addr.Block)
				copy(blk, w.Data)
				s.sums[w.Addr.Block] = crcBlock(blk)
			}
			s.mu.Unlock()
			s.ios.Add(int64(len(seg)))
		})
		m.release(sc)
	}
	m.blockWrites.Add(int64(len(writes)))
	chargeOps(m, op, nil, EventWrite, steps, len(writes), 0)
	if m.hooked.Load() {
		m.emit(op, nil, Event{Kind: EventWrite, Addrs: addrs, Steps: steps, Depth: depth}, nil)
	}
}

// ReadBlock reads a single block (one parallel I/O).
func (m *Machine) ReadBlock(a Addr) []Word {
	return m.BatchRead([]Addr{a})[0]
}

// WriteBlock writes a single block (one parallel I/O).
func (m *Machine) WriteBlock(a Addr, data []Word) {
	m.BatchWrite([]BlockWrite{{Addr: a, Data: data}})
}

// Peek returns a copy of a block's contents without performing (or
// accounting) any I/O. It exists for tests and invariant checks only.
func (m *Machine) Peek(a Addr) []Word {
	m.checkAddr(a)
	s := &m.shards[a.Disk]
	s.mu.Lock()
	defer s.mu.Unlock()
	src := s.blockLocked(a.Block)
	dst := make([]Word, m.cfg.B)
	copy(dst, src)
	return dst
}

// BlocksAllocated reports how many blocks have been materialized on each
// disk. It is a space-accounting helper; allocation happens lazily on
// first touch.
func (m *Machine) BlocksAllocated() []int {
	out := make([]int, m.cfg.D)
	for d := range m.shards {
		s := &m.shards[d]
		s.mu.Lock()
		out[d] = len(s.blocks)
		s.mu.Unlock()
	}
	return out
}

// TotalBlocks returns the total number of materialized blocks across all
// disks.
func (m *Machine) TotalBlocks() int {
	total := 0
	for _, n := range m.BlocksAllocated() {
		total += n
	}
	return total
}

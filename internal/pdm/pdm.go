// Package pdm implements a simulator for the parallel disk model of
// Vitter and Shriver, the cost model in which every result of the paper
// "Deterministic load balancing and dictionaries in the parallel disk
// model" (SPAA 2006) is stated.
//
// The machine consists of D storage devices, each an array of blocks with
// capacity for B data items. A data item is one machine word, "assumed to
// be sufficiently large to hold a pointer value or a key value". The
// performance of an algorithm is measured in parallel I/Os: one parallel
// I/O retrieves (or writes) at most one block from (or to) each of the D
// devices. A batch that addresses the same disk more than once costs as
// many parallel I/Os as the deepest per-disk queue.
//
// The package also implements the parallel disk *head* model (one disk
// with D independent read/write heads, Aggarwal–Vitter), which Section 5
// of the paper uses for unstriped expanders: there, any D blocks can be
// accessed in a single parallel I/O regardless of which device they live
// on.
//
// The machine is safe for concurrent use; all mutation goes through its
// methods.
package pdm

import (
	"fmt"
	"sync"
)

// Word is the unit of storage: one data item of the model.
type Word = uint64

// Model selects the cost model used to account batch accesses.
type Model int

const (
	// ParallelDisk is the standard parallel disk model: a parallel I/O
	// may touch at most one block per disk.
	ParallelDisk Model = iota
	// DiskHead is the parallel disk head model: a parallel I/O may touch
	// any D blocks, regardless of placement.
	DiskHead
)

// String returns the conventional name of the model.
func (m Model) String() string {
	switch m {
	case ParallelDisk:
		return "parallel-disk"
	case DiskHead:
		return "disk-head"
	default:
		return fmt.Sprintf("Model(%d)", int(m))
	}
}

// Config describes a machine.
type Config struct {
	// D is the number of disks (or heads in the DiskHead model).
	D int
	// B is the block capacity in words.
	B int
	// Model selects the accounting discipline. The zero value is the
	// standard parallel disk model.
	Model Model
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.D <= 0 {
		return fmt.Errorf("pdm: D must be positive, got %d", c.D)
	}
	if c.B <= 0 {
		return fmt.Errorf("pdm: B must be positive, got %d", c.B)
	}
	return nil
}

// Addr identifies one block: block index Block on disk Disk.
type Addr struct {
	Disk  int
	Block int
}

// String formats the address as disk:block.
func (a Addr) String() string { return fmt.Sprintf("%d:%d", a.Disk, a.Block) }

// Stats is a snapshot of the machine's I/O counters.
type Stats struct {
	// ParallelIOs is the number of parallel I/O steps performed.
	ParallelIOs int64
	// BlockReads and BlockWrites count individual block transfers
	// (several may share one parallel I/O).
	BlockReads  int64
	BlockWrites int64
	// MaxBatch is the largest per-disk queue depth seen in any single
	// batch; values above 1 indicate a batch that was not truly parallel.
	MaxBatch int
}

// Sub returns the difference s - t, counter by counter. It is the usual
// way to measure the cost of an operation: snapshot before, snapshot
// after, subtract.
func (s Stats) Sub(t Stats) Stats {
	return Stats{
		ParallelIOs: s.ParallelIOs - t.ParallelIOs,
		BlockReads:  s.BlockReads - t.BlockReads,
		BlockWrites: s.BlockWrites - t.BlockWrites,
		MaxBatch:    s.MaxBatch,
	}
}

// Machine is a simulated parallel disk system.
type Machine struct {
	cfg Config

	mu      sync.RWMutex
	disks   [][][]Word // disks[d][b] is the content of block b of disk d; nil = never written
	stats   Stats
	perDisk []int64 // block transfers per disk (reads + writes)
}

// NewMachine returns a machine with the given configuration. It panics if
// the configuration is invalid; configurations are programmer input, not
// runtime data.
func NewMachine(cfg Config) *Machine {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Machine{
		cfg:     cfg,
		disks:   make([][][]Word, cfg.D),
		perDisk: make([]int64, cfg.D),
	}
}

// Config returns the machine's configuration.
func (m *Machine) Config() Config { return m.cfg }

// D returns the number of disks.
func (m *Machine) D() int { return m.cfg.D }

// B returns the block capacity in words.
func (m *Machine) B() int { return m.cfg.B }

// Stats returns a snapshot of the I/O counters.
func (m *Machine) Stats() Stats {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.stats
}

// ResetStats zeroes the I/O counters (including the per-disk tallies).
// Block contents are unaffected.
func (m *Machine) ResetStats() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stats = Stats{}
	for i := range m.perDisk {
		m.perDisk[i] = 0
	}
}

// PerDiskIOs returns the number of block transfers (reads plus writes)
// each disk has served — the skew diagnostic: a striped algorithm keeps
// these nearly equal, while an unbalanced one hammers a few disks.
func (m *Machine) PerDiskIOs() []int64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]int64, len(m.perDisk))
	copy(out, m.perDisk)
	return out
}

// batchCost returns the number of parallel I/O steps a batch of addresses
// costs under the machine's model, and the deepest per-disk queue.
func (m *Machine) batchCost(addrs []Addr) (steps, depth int) {
	if len(addrs) == 0 {
		return 0, 0
	}
	switch m.cfg.Model {
	case DiskHead:
		// Any D blocks per step.
		steps = (len(addrs) + m.cfg.D - 1) / m.cfg.D
		return steps, steps
	default:
		perDisk := make(map[int]int, m.cfg.D)
		for _, a := range addrs {
			perDisk[a.Disk]++
		}
		for _, c := range perDisk {
			if c > depth {
				depth = c
			}
		}
		return depth, depth
	}
}

// checkAddr panics on an address outside the machine. Addresses are
// computed by data-structure code, so an out-of-range address is a bug,
// not an error condition.
func (m *Machine) checkAddr(a Addr) {
	if a.Disk < 0 || a.Disk >= m.cfg.D || a.Block < 0 {
		panic(fmt.Sprintf("pdm: address %v out of range (D=%d)", a, m.cfg.D))
	}
}

// blockLocked returns the live slice for a block, allocating it on first
// touch. Callers hold m.mu.
func (m *Machine) blockLocked(a Addr) []Word {
	disk := m.disks[a.Disk]
	for len(disk) <= a.Block {
		disk = append(disk, nil)
	}
	m.disks[a.Disk] = disk
	if disk[a.Block] == nil {
		disk[a.Block] = make([]Word, m.cfg.B)
	}
	return disk[a.Block]
}

// BatchRead performs one batched read of the given blocks and returns
// their contents, in request order. The returned slices are copies; the
// caller owns them. The batch is accounted under the machine's cost
// model.
func (m *Machine) BatchRead(addrs []Addr) [][]Word {
	for _, a := range addrs {
		m.checkAddr(a)
	}
	steps, depth := m.batchCost(addrs)
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stats.ParallelIOs += int64(steps)
	m.stats.BlockReads += int64(len(addrs))
	if depth > m.stats.MaxBatch {
		m.stats.MaxBatch = depth
	}
	for _, a := range addrs {
		m.perDisk[a.Disk]++
	}
	out := make([][]Word, len(addrs))
	for i, a := range addrs {
		src := m.blockLocked(a)
		dst := make([]Word, m.cfg.B)
		copy(dst, src)
		out[i] = dst
	}
	return out
}

// BlockWrite names one block write of a batch.
type BlockWrite struct {
	Addr Addr
	Data []Word // at most B words; shorter data leaves the tail unchanged
}

// BatchWrite performs one batched write. Each write stores len(Data)
// words at the start of the addressed block (the model transfers whole
// blocks; partial Data is a convenience that leaves the block tail as it
// was). The batch is accounted under the machine's cost model.
func (m *Machine) BatchWrite(writes []BlockWrite) {
	addrs := make([]Addr, len(writes))
	for i, w := range writes {
		m.checkAddr(w.Addr)
		if len(w.Data) > m.cfg.B {
			panic(fmt.Sprintf("pdm: write of %d words exceeds block size %d", len(w.Data), m.cfg.B))
		}
		addrs[i] = w.Addr
	}
	steps, depth := m.batchCost(addrs)
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stats.ParallelIOs += int64(steps)
	m.stats.BlockWrites += int64(len(writes))
	if depth > m.stats.MaxBatch {
		m.stats.MaxBatch = depth
	}
	for _, a := range addrs {
		m.perDisk[a.Disk]++
	}
	for _, w := range writes {
		blk := m.blockLocked(w.Addr)
		copy(blk, w.Data)
	}
}

// ReadBlock reads a single block (one parallel I/O).
func (m *Machine) ReadBlock(a Addr) []Word {
	return m.BatchRead([]Addr{a})[0]
}

// WriteBlock writes a single block (one parallel I/O).
func (m *Machine) WriteBlock(a Addr, data []Word) {
	m.BatchWrite([]BlockWrite{{Addr: a, Data: data}})
}

// Peek returns a copy of a block's contents without performing (or
// accounting) any I/O. It exists for tests and invariant checks only.
func (m *Machine) Peek(a Addr) []Word {
	m.checkAddr(a)
	m.mu.Lock()
	defer m.mu.Unlock()
	src := m.blockLocked(a)
	dst := make([]Word, m.cfg.B)
	copy(dst, src)
	return dst
}

// BlocksAllocated reports how many blocks have been materialized on each
// disk. It is a space-accounting helper; allocation happens lazily on
// first touch.
func (m *Machine) BlocksAllocated() []int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]int, m.cfg.D)
	for d, disk := range m.disks {
		out[d] = len(disk)
	}
	return out
}

// TotalBlocks returns the total number of materialized blocks across all
// disks.
func (m *Machine) TotalBlocks() int {
	total := 0
	for _, n := range m.BlocksAllocated() {
		total += n
	}
	return total
}

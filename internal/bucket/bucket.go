// Package bucket implements the block-resident bucket structures the
// dictionaries store on disk: a record codec laying (key, satellite)
// records into fixed-size blocks, and a deterministic constant-time
// in-memory index that stands in for the atomic heaps of Fredman–Willard
// that Section 4.1 of the paper invokes when the block size B is too
// small to permit trivial in-block storage.
package bucket

import (
	"fmt"

	"pdmdict/internal/pdm"
)

// Record is one dictionary entry: a key word plus fixed-width satellite
// data.
type Record struct {
	Key pdm.Word
	Sat []pdm.Word
}

// Codec lays records into blocks of B words. Word 0 of the block holds
// the record count; records follow contiguously as key then SatWords
// satellite words.
type Codec struct {
	B        int // block size in words
	SatWords int // satellite words per record
}

// RecordWords returns the footprint of one record.
func (c Codec) RecordWords() int { return 1 + c.SatWords }

// Capacity returns how many records fit in one block.
func (c Codec) Capacity() int { return (c.B - 1) / c.RecordWords() }

// Count returns the number of records currently stored in block. A
// corrupt header (count beyond the block's capacity) is clamped so that
// readers scan at most a full block instead of crashing — the
// dictionaries treat damaged blocks as data loss, never as panics.
func (c Codec) Count(block []pdm.Word) int {
	n := block[0]
	if max := pdm.Word(c.Capacity()); n > max {
		return int(max)
	}
	return int(n)
}

// Decode extracts all records from a block. Satellite slices alias the
// block; callers that mutate must copy.
func (c Codec) Decode(block []pdm.Word) []Record {
	n := c.Count(block)
	recs := make([]Record, n)
	for i := 0; i < n; i++ {
		off := 1 + i*c.RecordWords()
		recs[i] = Record{Key: block[off], Sat: block[off+1 : off+1+c.SatWords]}
	}
	return recs
}

// Encode builds a fresh block holding the given records. It panics if
// they do not fit; sizing is the caller's responsibility.
func (c Codec) Encode(recs []Record) []pdm.Word {
	if len(recs) > c.Capacity() {
		panic(fmt.Sprintf("bucket: %d records exceed capacity %d", len(recs), c.Capacity()))
	}
	block := make([]pdm.Word, c.B)
	block[0] = pdm.Word(len(recs))
	for i, r := range recs {
		off := 1 + i*c.RecordWords()
		block[off] = r.Key
		if len(r.Sat) != c.SatWords {
			panic(fmt.Sprintf("bucket: record has %d satellite words, codec wants %d", len(r.Sat), c.SatWords))
		}
		copy(block[off+1:], r.Sat)
	}
	return block
}

// Find locates key in a block and returns its satellite words (aliasing
// the block) and whether it was present.
func (c Codec) Find(block []pdm.Word, key pdm.Word) ([]pdm.Word, bool) {
	n := c.Count(block)
	for i := 0; i < n; i++ {
		off := 1 + i*c.RecordWords()
		if block[off] == key {
			return block[off+1 : off+1+c.SatWords], true
		}
	}
	return nil, false
}

// Append adds a record to the block in place, replacing an existing
// record with the same key. It reports whether the record fit.
func (c Codec) Append(block []pdm.Word, r Record) bool {
	if len(r.Sat) != c.SatWords {
		panic(fmt.Sprintf("bucket: record has %d satellite words, codec wants %d", len(r.Sat), c.SatWords))
	}
	n := c.Count(block)
	for i := 0; i < n; i++ {
		off := 1 + i*c.RecordWords()
		if block[off] == r.Key {
			copy(block[off+1:off+1+c.SatWords], r.Sat)
			return true
		}
	}
	if n >= c.Capacity() {
		return false
	}
	off := 1 + n*c.RecordWords()
	block[off] = r.Key
	copy(block[off+1:], r.Sat)
	block[0] = pdm.Word(n + 1)
	return true
}

// AppendAlways adds a record to the block in place without the
// same-key replacement of Append. Callers storing several fragment
// records under one key (the k = d/2 bandwidth variant of Section 4.1)
// must use this — greedy placement may legitimately put two fragments
// of one key into the same bucket. It reports whether the record fit.
func (c Codec) AppendAlways(block []pdm.Word, r Record) bool {
	if len(r.Sat) != c.SatWords {
		panic(fmt.Sprintf("bucket: record has %d satellite words, codec wants %d", len(r.Sat), c.SatWords))
	}
	n := c.Count(block)
	if n >= c.Capacity() {
		return false
	}
	off := 1 + n*c.RecordWords()
	block[off] = r.Key
	copy(block[off+1:], r.Sat)
	block[0] = pdm.Word(n + 1)
	return true
}

// Remove deletes key from the block in place (order is not preserved;
// the paper's structures tolerate this because nothing references
// positions inside a bucket). It reports whether the key was present.
func (c Codec) Remove(block []pdm.Word, key pdm.Word) bool {
	n := c.Count(block)
	rw := c.RecordWords()
	for i := 0; i < n; i++ {
		off := 1 + i*rw
		if block[off] == key {
			last := 1 + (n-1)*rw
			copy(block[off:off+rw], block[last:last+rw])
			for j := last; j < last+rw; j++ {
				block[j] = 0
			}
			block[0] = pdm.Word(n - 1)
			return true
		}
	}
	return false
}

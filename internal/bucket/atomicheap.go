package bucket

// Atomic-heap substitute.
//
// Section 4.1 of the paper removes the B = Ω(log N) requirement by
// placing an atomic heap [Fredman–Willard 8, Hagerup 9] in each bucket,
// obtaining constant lookup and insertion time at the price of a more
// complicated implementation (and the loss of one-probe lookups). Atomic
// heaps are a word-RAM device; in the parallel disk model only I/Os are
// charged, so what the dictionary needs from the in-bucket structure is
// a deterministic search index with worst-case constant-time operations.
//
// NibbleTrie delivers exactly that contract: a trie over the 16 nibbles
// of a 64-bit key. Every operation touches at most 16 nodes — a constant
// for the fixed word size, with no randomization and no amortization.
// DESIGN.md records this substitution.

// nibbleNode is one trie level: 16 children plus an optional terminal
// payload.
type nibbleNode struct {
	children [16]*nibbleNode
	hasValue bool
	value    int
}

// NibbleTrie maps 64-bit keys to int payloads (the dictionaries store a
// record's offset within its bucket) in deterministic worst-case
// constant time per operation.
type NibbleTrie struct {
	root nibbleNode
	n    int
}

// Len returns the number of stored keys.
func (t *NibbleTrie) Len() int { return t.n }

// walk returns the node for key, optionally creating the path.
func (t *NibbleTrie) walk(key uint64, create bool) *nibbleNode {
	node := &t.root
	for level := 0; level < 16; level++ {
		nib := (key >> (60 - 4*level)) & 0xF
		next := node.children[nib]
		if next == nil {
			if !create {
				return nil
			}
			next = &nibbleNode{}
			node.children[nib] = next
		}
		node = next
	}
	return node
}

// Put inserts or updates key with the given payload.
func (t *NibbleTrie) Put(key uint64, value int) {
	node := t.walk(key, true)
	if !node.hasValue {
		t.n++
	}
	node.hasValue = true
	node.value = value
}

// Get returns the payload for key and whether it is present.
func (t *NibbleTrie) Get(key uint64) (int, bool) {
	node := t.walk(key, false)
	if node == nil || !node.hasValue {
		return 0, false
	}
	return node.value, true
}

// Delete removes key and reports whether it was present. Emptied trie
// paths are left in place: the dictionaries rebuild buckets wholesale
// during global rebuilding, so path garbage is bounded by bucket
// capacity.
func (t *NibbleTrie) Delete(key uint64) bool {
	node := t.walk(key, false)
	if node == nil || !node.hasValue {
		return false
	}
	node.hasValue = false
	t.n--
	return true
}

package bucket

import (
	"testing"
	"testing/quick"

	"pdmdict/internal/pdm"
)

func rec(key pdm.Word, sat ...pdm.Word) Record { return Record{Key: key, Sat: sat} }

func TestCodecCapacity(t *testing.T) {
	cases := []struct {
		b, sat, want int
	}{
		{16, 0, 15},
		{16, 1, 7},
		{16, 3, 3},
		{2, 0, 1},
		{1, 0, 0},
	}
	for _, c := range cases {
		got := Codec{B: c.b, SatWords: c.sat}.Capacity()
		if got != c.want {
			t.Errorf("Capacity(B=%d, sat=%d) = %d, want %d", c.b, c.sat, got, c.want)
		}
	}
}

func TestEncodeDecode(t *testing.T) {
	c := Codec{B: 16, SatWords: 2}
	recs := []Record{rec(10, 100, 101), rec(20, 200, 201)}
	block := c.Encode(recs)
	if len(block) != 16 {
		t.Fatalf("block length %d", len(block))
	}
	got := c.Decode(block)
	if len(got) != 2 {
		t.Fatalf("decoded %d records", len(got))
	}
	if got[0].Key != 10 || got[0].Sat[1] != 101 || got[1].Key != 20 || got[1].Sat[0] != 200 {
		t.Errorf("round trip mismatch: %+v", got)
	}
}

func TestEncodeOverflowPanics(t *testing.T) {
	c := Codec{B: 4, SatWords: 0}
	defer func() {
		if recover() == nil {
			t.Fatal("overflow encode did not panic")
		}
	}()
	c.Encode([]Record{rec(1), rec(2), rec(3), rec(4)})
}

func TestFind(t *testing.T) {
	c := Codec{B: 16, SatWords: 1}
	block := c.Encode([]Record{rec(5, 50), rec(7, 70)})
	if sat, ok := c.Find(block, 7); !ok || sat[0] != 70 {
		t.Errorf("Find(7) = %v, %v", sat, ok)
	}
	if _, ok := c.Find(block, 6); ok {
		t.Error("Find(6) found a missing key")
	}
}

func TestAppendAndReplace(t *testing.T) {
	c := Codec{B: 10, SatWords: 1}
	block := c.Encode(nil)
	if !c.Append(block, rec(1, 11)) || !c.Append(block, rec(2, 22)) {
		t.Fatal("appends failed")
	}
	if c.Count(block) != 2 {
		t.Fatalf("count = %d", c.Count(block))
	}
	// Same key replaces in place.
	if !c.Append(block, rec(1, 99)) {
		t.Fatal("replace failed")
	}
	if c.Count(block) != 2 {
		t.Errorf("replace changed count to %d", c.Count(block))
	}
	if sat, _ := c.Find(block, 1); sat[0] != 99 {
		t.Errorf("replace did not stick: %d", sat[0])
	}
}

func TestAppendFullBlock(t *testing.T) {
	c := Codec{B: 5, SatWords: 1} // capacity 2
	block := c.Encode([]Record{rec(1, 0), rec(2, 0)})
	if c.Append(block, rec(3, 0)) {
		t.Error("append into a full block reported success")
	}
}

func TestAppendBadSatWidthPanics(t *testing.T) {
	c := Codec{B: 8, SatWords: 2}
	block := c.Encode(nil)
	defer func() {
		if recover() == nil {
			t.Fatal("bad satellite width did not panic")
		}
	}()
	c.Append(block, rec(1, 5))
}

func TestAppendAlwaysKeepsSameKeyRecords(t *testing.T) {
	c := Codec{B: 16, SatWords: 1}
	block := c.Encode(nil)
	if !c.AppendAlways(block, rec(5, 0)) || !c.AppendAlways(block, rec(5, 1)) {
		t.Fatal("appends failed")
	}
	if c.Count(block) != 2 {
		t.Fatalf("count = %d, want 2 (same-key records must coexist)", c.Count(block))
	}
	got := c.Decode(block)
	if got[0].Sat[0] != 0 || got[1].Sat[0] != 1 {
		t.Errorf("records = %+v", got)
	}
	// Capacity is still enforced.
	tiny := Codec{B: 2, SatWords: 0} // capacity 1
	blk := tiny.Encode([]Record{rec(1)})
	if tiny.AppendAlways(blk, rec(2)) {
		t.Error("AppendAlways into a full block reported success")
	}
}

func TestAppendAlwaysBadWidthPanics(t *testing.T) {
	c := Codec{B: 8, SatWords: 2}
	block := c.Encode(nil)
	defer func() {
		if recover() == nil {
			t.Fatal("bad satellite width did not panic")
		}
	}()
	c.AppendAlways(block, rec(1, 5))
}

func TestRemove(t *testing.T) {
	c := Codec{B: 16, SatWords: 1}
	block := c.Encode([]Record{rec(1, 10), rec(2, 20), rec(3, 30)})
	if !c.Remove(block, 2) {
		t.Fatal("Remove(2) failed")
	}
	if c.Count(block) != 2 {
		t.Errorf("count = %d after remove", c.Count(block))
	}
	if _, ok := c.Find(block, 2); ok {
		t.Error("removed key still found")
	}
	for _, k := range []pdm.Word{1, 3} {
		if _, ok := c.Find(block, k); !ok {
			t.Errorf("key %d lost by remove", k)
		}
	}
	if c.Remove(block, 99) {
		t.Error("Remove of missing key reported success")
	}
}

func TestRemoveLastClearsTail(t *testing.T) {
	c := Codec{B: 8, SatWords: 1}
	block := c.Encode([]Record{rec(1, 10)})
	c.Remove(block, 1)
	for i, w := range block {
		if w != 0 {
			t.Errorf("word %d = %d after removing the only record", i, w)
		}
	}
}

func TestNibbleTrieBasics(t *testing.T) {
	var tr NibbleTrie
	if _, ok := tr.Get(1); ok {
		t.Error("empty trie Get succeeded")
	}
	tr.Put(1, 100)
	tr.Put(0xdeadbeefcafef00d, 200)
	tr.Put(1, 111) // update
	if tr.Len() != 2 {
		t.Errorf("Len = %d, want 2", tr.Len())
	}
	if v, ok := tr.Get(1); !ok || v != 111 {
		t.Errorf("Get(1) = %d, %v", v, ok)
	}
	if v, ok := tr.Get(0xdeadbeefcafef00d); !ok || v != 200 {
		t.Errorf("Get(big) = %d, %v", v, ok)
	}
	if !tr.Delete(1) {
		t.Error("Delete(1) failed")
	}
	if tr.Delete(1) {
		t.Error("double delete succeeded")
	}
	if _, ok := tr.Get(1); ok {
		t.Error("deleted key still present")
	}
	if tr.Len() != 1 {
		t.Errorf("Len = %d after delete, want 1", tr.Len())
	}
}

func TestNibbleTrieDistinguishesClosePrefixes(t *testing.T) {
	var tr NibbleTrie
	// Keys differing only in the lowest nibble share 15 trie levels.
	tr.Put(0xABC0, 1)
	tr.Put(0xABC1, 2)
	if v, _ := tr.Get(0xABC0); v != 1 {
		t.Errorf("Get(0xABC0) = %d", v)
	}
	if v, _ := tr.Get(0xABC1); v != 2 {
		t.Errorf("Get(0xABC1) = %d", v)
	}
	if _, ok := tr.Get(0xABC2); ok {
		t.Error("sibling key reported present")
	}
}

// Property: the codec behaves exactly like a map from key to satellite
// under any sequence of appends and removes that fits one block.
func TestPropertyCodecMatchesMap(t *testing.T) {
	c := Codec{B: 64, SatWords: 1}
	f := func(ops []uint16) bool {
		block := c.Encode(nil)
		oracle := map[pdm.Word]pdm.Word{}
		for _, op := range ops {
			key := pdm.Word(op % 32)
			switch {
			case op%3 == 0 && len(oracle) > 0:
				delete(oracle, key)
				c.Remove(block, key)
			default:
				if len(oracle) < c.Capacity() || oracle[key] != 0 {
					if c.Append(block, rec(key, pdm.Word(op))) {
						oracle[key] = pdm.Word(op)
					}
				}
			}
		}
		if c.Count(block) != len(oracle) {
			return false
		}
		for k, v := range oracle {
			sat, ok := c.Find(block, k)
			if !ok || sat[0] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: NibbleTrie agrees with a map under random workloads.
func TestPropertyTrieMatchesMap(t *testing.T) {
	f := func(keys []uint64, dels []uint64) bool {
		var tr NibbleTrie
		oracle := map[uint64]int{}
		for i, k := range keys {
			tr.Put(k, i)
			oracle[k] = i
		}
		for _, k := range dels {
			if tr.Delete(k) != (func() bool { _, ok := oracle[k]; return ok })() {
				return false
			}
			delete(oracle, k)
		}
		if tr.Len() != len(oracle) {
			return false
		}
		for k, v := range oracle {
			got, ok := tr.Get(k)
			if !ok || got != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

package core

import (
	"fmt"
	"sync"

	"pdmdict/internal/bucket"
	"pdmdict/internal/expander"
	"pdmdict/internal/obs"
	"pdmdict/internal/pdm"
)

// BasicConfig parameterizes the Section 4.1 dictionary.
type BasicConfig struct {
	// Capacity is N, the maximum number of keys. Required.
	Capacity int
	// SatWords is the satellite size per key, in words.
	SatWords int
	// K is the number of satellite fragments per key: 1 gives the plain
	// dictionary; d/2 gives the bandwidth variant ("by changing the
	// parameters of the load balancing scheme to k = d/2 and
	// v = kn/log N, it is possible to accommodate lookup of associated
	// information of size O(BD/log N) in one I/O"). 0 defaults to 1.
	K int
	// BucketBlocks is the number of blocks per bucket. 1 (the default)
	// gives one-probe buckets and requires the Lemma 3 max load to fit a
	// block; larger values implement "the contents of each bucket can be
	// stored in a trivial way in O(1) blocks".
	BucketBlocks int
	// Slack oversizes the bucket array: v is chosen so that the average
	// bucket is 1/Slack full. 0 defaults to 4.
	Slack float64
	// Universe is the key universe size u; 0 defaults to 2^63 (keys are
	// words).
	Universe uint64
	// Seed selects the expander from the deterministic family.
	Seed uint64
	// Graph, when non-nil, supplies the striped expander directly —
	// e.g. a Section 5 semi-explicit construction wrapped by
	// explicit.NewTrivialStripe — instead of the default seeded family.
	// Its degree must equal the dictionary's disk count; its stripe size
	// fixes the bucket array (Slack is then ignored), and its left size
	// overrides Universe.
	Graph expander.Striped
	// Replicate reinterprets K as a replication count: instead of
	// splitting the satellite into K fragments, the dictionary stores K
	// full copies of (key, satellite) in K *distinct* stripes of Γ(x) —
	// i.e. on K distinct disks. This is the fault-tolerance reading of
	// the paper's k-of-d placement (Lemma 3): any K−1 disk failures
	// leave a live copy of every key, so degraded lookups (LookupTry)
	// stay correct and Repair can rebuild a lost disk from survivors.
	// Each stored record's tag word encodes the replica's rank and the
	// full stripe set, making repair deterministic; buckets are kept in
	// a canonical sorted layout so repaired blocks are bit-identical to
	// what was lost. Requires a striped layout (no HeadModel) and
	// d ≤ 56 (the stripe mask shares the tag word with the rank).
	Replicate bool
	// HeadModel lays buckets out round-robin over the disks instead of
	// stripe-per-disk, for machines running the parallel disk *head*
	// model (Section 5's closing remark: "If we implement the described
	// dictionaries in the parallel disk head model, we do not need the
	// striped property"). With it, UnstripedGraph may supply any
	// left-d-regular expander — no striping required — and a probe's d
	// blocks still cost one parallel I/O because any D blocks do. On a
	// standard parallel-disk machine the same layout works but probes
	// suffer per-disk conflicts (experiment A1 quantifies this).
	HeadModel bool
	// UnstripedGraph supplies the expander in HeadModel mode; nil
	// defaults to a seeded unstriped family. Ignored otherwise.
	UnstripedGraph expander.Graph
}

// maxConfigSlack bounds every Slack-like sizing factor; configs beyond
// it come from corrupt snapshots, not real use.
const maxConfigSlack = 1 << 20

func (c *BasicConfig) normalize() error {
	if c.Capacity <= 0 {
		return fmt.Errorf("core: BasicConfig.Capacity = %d, must be positive", c.Capacity)
	}
	if c.SatWords < 0 {
		return fmt.Errorf("core: negative SatWords")
	}
	if c.K == 0 {
		c.K = 1
	}
	if c.K < 0 {
		return fmt.Errorf("core: negative K")
	}
	if c.BucketBlocks == 0 {
		c.BucketBlocks = 1
	}
	if c.BucketBlocks < 0 {
		return fmt.Errorf("core: negative BucketBlocks")
	}
	if c.Slack == 0 {
		c.Slack = 4
	}
	// The negated comparison also rejects NaN, which a corrupt snapshot
	// can smuggle into any float field.
	if !(c.Slack >= 1 && c.Slack <= maxConfigSlack) {
		return fmt.Errorf("core: Slack %v outside [1, %d]", c.Slack, maxConfigSlack)
	}
	if c.Universe == 0 {
		c.Universe = 1 << 63
	}
	return nil
}

// BasicDict is the dictionary of Section 4.1: an array of v buckets,
// split across the d disks according to the stripes of a striped
// expander of degree d, running the deterministic load balancing scheme
// of Section 3 with k items (satellite fragments) per key.
//
// Lookups read the d buckets of Γ(x) — one per disk, a single parallel
// I/O when BucketBlocks is 1 — and updates additionally write back the
// touched buckets, also one parallel I/O. Nothing is ever moved after
// insertion, and there is no index or central directory: operations go
// directly to the relevant blocks knowing only the graph.
//
// The dictionary is safe for concurrent use: lookups (Lookup, Contains,
// LookupBatch, LookupTry, Scan) share a read lock and run concurrently
// with each other — the d-choice probes are independent, which is
// exactly what the sharded machine parallelizes — while updates
// (Insert, Delete, BulkLoad, Repair) are exclusive. The unexported
// helpers (probeAddrs, insertWrites, …) take no locks: composite
// structures call them under their own synchronization.
type BasicDict struct {
	mu        sync.RWMutex
	reg       region
	graph     expander.Graph
	striped   expander.Striped // nil in HeadModel mode
	buckets   int              // v, total buckets
	cfg       BasicConfig
	codec     bucket.Codec
	fragWords int
	n         int // guarded by mu

	// retry governs degraded-read recovery (LookupTry and friends); the
	// zero value is the historical default. repairJob, when non-nil, is
	// the in-progress incremental repair: the update paths feed it the
	// authoritative record changes for the stripe under reconstruction
	// (see RepairJob).
	retry     pdm.RetryPolicy // guarded by mu
	repairJob *RepairJob      // guarded by mu
}

// SetRetryPolicy installs the policy the fault-aware paths (LookupTry,
// LookupTryBatch, Repair, Scrub) use for transient-error recovery. The
// zero value restores the default: three immediate retries, no backoff,
// no hedging — the historical hardcoded behavior.
func (bd *BasicDict) SetRetryPolicy(p pdm.RetryPolicy) {
	bd.mu.Lock()
	bd.retry = p
	bd.mu.Unlock()
}

// RetryPolicy returns the installed recovery policy (zero = default).
func (bd *BasicDict) RetryPolicy() pdm.RetryPolicy {
	bd.mu.RLock()
	defer bd.mu.RUnlock()
	return bd.retry
}

// NewBasic creates an empty dictionary occupying the given region. The
// region's disk count is the expander degree d.
func NewBasic(m *pdm.Machine, cfg BasicConfig) (*BasicDict, error) {
	return newBasicAt(region{m: m, nDisks: m.D()}, cfg)
}

func newBasicAt(reg region, cfg BasicConfig) (*BasicDict, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	d := reg.nDisks
	if cfg.K > d {
		return nil, fmt.Errorf("core: K=%d exceeds degree d=%d", cfg.K, d)
	}
	if cfg.Replicate {
		if cfg.HeadModel {
			return nil, fmt.Errorf("core: Replicate requires the striped layout (no HeadModel)")
		}
		if d > maxReplicateDegree {
			return nil, fmt.Errorf("core: Replicate supports d ≤ %d, got %d", maxReplicateDegree, d)
		}
	}
	fragWords := 0
	if cfg.SatWords > 0 {
		if cfg.Replicate {
			fragWords = cfg.SatWords // each "fragment" is a full copy
		} else {
			fragWords = ceilDiv(cfg.SatWords, cfg.K)
		}
	}
	codec := bucket.Codec{B: reg.m.B(), SatWords: 1 + fragWords} // sat = [fragIdx, frag...]
	perBlock := codec.Capacity()
	if perBlock == 0 {
		return nil, fmt.Errorf("core: record of %d words does not fit block of %d", codec.RecordWords(), reg.m.B())
	}
	capPerBucket := cfg.BucketBlocks * perBlock
	minBuckets := ceilDiv(int(cfg.Slack*float64(cfg.K*cfg.Capacity)), capPerBucket)
	if minBuckets < d {
		minBuckets = d
	}

	bd := &BasicDict{reg: reg, cfg: cfg, codec: codec, fragWords: fragWords}
	switch {
	case cfg.HeadModel:
		g := cfg.UnstripedGraph
		if g == nil {
			g = expander.NewUnstriped(cfg.Universe, d, minBuckets, cfg.Seed)
		}
		if g.Degree() != d {
			return nil, fmt.Errorf("core: supplied graph has degree %d, dictionary spans %d disks", g.Degree(), d)
		}
		if capacity := g.RightSize() * capPerBucket; capacity < cfg.K*cfg.Capacity {
			return nil, fmt.Errorf("core: supplied graph offers %d record slots, capacity needs %d", capacity, cfg.K*cfg.Capacity)
		}
		bd.cfg.Universe = g.LeftSize()
		bd.graph = g
		bd.buckets = g.RightSize()
	case cfg.Graph != nil:
		if cfg.Graph.Degree() != d {
			return nil, fmt.Errorf("core: supplied graph has degree %d, dictionary spans %d disks", cfg.Graph.Degree(), d)
		}
		if capacity := cfg.Graph.RightSize() * capPerBucket; capacity < cfg.K*cfg.Capacity {
			return nil, fmt.Errorf("core: supplied graph offers %d record slots, capacity needs %d", capacity, cfg.K*cfg.Capacity)
		}
		bd.cfg.Universe = cfg.Graph.LeftSize()
		bd.graph = cfg.Graph
		bd.striped = cfg.Graph
		bd.buckets = cfg.Graph.RightSize()
	default:
		g := expander.NewFamily(cfg.Universe, d, ceilDiv(minBuckets, d), cfg.Seed)
		bd.graph = g
		bd.striped = g
		bd.buckets = g.RightSize()
	}
	return bd, nil
}

// Len returns the number of keys stored.
func (bd *BasicDict) Len() int {
	bd.mu.RLock()
	defer bd.mu.RUnlock()
	return bd.n
}

// Capacity returns the configured capacity N.
func (bd *BasicDict) Capacity() int { return bd.cfg.Capacity }

// Graph returns the underlying expander (a Striped one unless the
// dictionary runs in HeadModel mode).
func (bd *BasicDict) Graph() expander.Graph { return bd.graph }

// Buckets returns v, the number of buckets.
func (bd *BasicDict) Buckets() int { return bd.buckets }

// BlocksPerDisk returns the dictionary's space footprint per disk.
func (bd *BasicDict) BlocksPerDisk() int {
	return ceilDiv(bd.buckets, bd.reg.nDisks) * bd.cfg.BucketBlocks
}

// bucketPos maps a global bucket id to its (disk, bucket-row) position:
// striped graphs put stripe i on disk i; the head-model layout
// round-robins buckets over the disks (placement is irrelevant there —
// any D blocks cost one parallel I/O).
func (bd *BasicDict) bucketPos(y int) (disk, row int) {
	if bd.striped != nil {
		ss := bd.striped.StripeSize()
		return y / ss, y % ss
	}
	return y % bd.reg.nDisks, y / bd.reg.nDisks
}

// bucketAddrs returns the BucketBlocks addresses of global bucket y.
func (bd *BasicDict) bucketAddrs(y int, dst []pdm.Addr) []pdm.Addr {
	disk, row := bd.bucketPos(y)
	base := row * bd.cfg.BucketBlocks
	for b := 0; b < bd.cfg.BucketBlocks; b++ {
		dst = append(dst, bd.reg.addr(disk, base+b))
	}
	return dst
}

// neighbors returns x's d global bucket ids.
func (bd *BasicDict) neighbors(x pdm.Word) []int {
	return bd.graph.Neighbors(uint64(x), make([]int, 0, bd.graph.Degree()))
}

// probeAddrs returns the addresses of the d buckets of Γ(x), in
// neighbor order. Composite dictionaries batch these together with
// their own addresses so one parallel I/O probes every sub-structure at
// once.
func (bd *BasicDict) probeAddrs(x pdm.Word, dst []pdm.Addr) []pdm.Addr {
	for _, y := range bd.neighbors(x) {
		dst = bd.bucketAddrs(y, dst)
	}
	return dst
}

// probeLen returns how many blocks probeAddrs contributes.
func (bd *BasicDict) probeLen() int { return bd.graph.Degree() * bd.cfg.BucketBlocks }

// groupNeighborhood reshapes the flat block list returned for probeAddrs
// into per-stripe buckets: blocks[i] holds the BucketBlocks blocks of
// the bucket in stripe i.
func (bd *BasicDict) groupNeighborhood(flat [][]pdm.Word) [][][]pdm.Word {
	d := bd.graph.Degree()
	out := make([][][]pdm.Word, d)
	for i := 0; i < d; i++ {
		out[i] = flat[i*bd.cfg.BucketBlocks : (i+1)*bd.cfg.BucketBlocks]
	}
	return out
}

// readNeighborhood fetches the d buckets of Γ(x) in one batch: one
// parallel I/O when BucketBlocks is 1, BucketBlocks I/Os otherwise.
// The batch is attributed to op (nil = unattributed).
func (bd *BasicDict) readNeighborhood(op *pdm.Op, x pdm.Word) [][][]pdm.Word {
	addrs := bd.probeAddrs(x, make([]pdm.Addr, 0, bd.probeLen()))
	return bd.groupNeighborhood(bd.reg.m.BatchReadOp(op, addrs))
}

// lookupInBlocks interprets a pre-fetched neighborhood (the blocks for
// probeAddrs(x)) exactly as Lookup would, without any I/O.
func (bd *BasicDict) lookupInBlocks(x pdm.Word, flat [][]pdm.Word) ([]pdm.Word, bool) {
	frags, _ := bd.findFragments(x, bd.groupNeighborhood(flat))
	if !bd.present(frags) {
		return nil, false
	}
	return bd.assemble(frags), true
}

// bucketLoad counts the records across a bucket's blocks, skipping nil
// blocks (failed degraded-mode reads).
func (bd *BasicDict) bucketLoad(blocks [][]pdm.Word) int {
	n := 0
	for _, blk := range blocks {
		if blk == nil {
			continue
		}
		n += bd.codec.Count(blk)
	}
	return n
}

// maxReplicateDegree bounds d in Replicate mode: the tag word packs the
// replica rank into its low 8 bits and the stripe mask above them.
const maxReplicateDegree = 56

// replicaTag packs a replica's identity into the record's tag word:
// rank in the low 8 bits, the stripe mask (which of the d neighbors
// hold copies) above. The rank is redundant — it is the replica's
// position within the mask — but storing it keeps the tag, and with it
// the canonical bucket layout, a pure function of (key, stripe).
func replicaTag(rank int, mask uint64) pdm.Word {
	return pdm.Word(uint64(rank) | mask<<8)
}

// replicaRank is the rank encoded by replicaTag for stripe s: the
// number of mask bits below s.
func replicaRank(mask uint64, s int) int {
	return popcount(mask & (1<<uint(s) - 1))
}

func popcount(x uint64) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

// fragIndex extracts a record's fragment index (fragment mode) or
// replica rank (replicate mode) from the tag word.
func (bd *BasicDict) fragIndex(tag pdm.Word) int {
	if bd.cfg.Replicate {
		return int(tag & 0xff)
	}
	return int(tag)
}

// present reports whether a fragment set proves the key stored: all K
// fragments in fragment mode, any one replica in replicate mode.
func (bd *BasicDict) present(frags map[int][]pdm.Word) bool {
	if bd.cfg.Replicate {
		return len(frags) > 0
	}
	return len(frags) == bd.cfg.K
}

// findFragments collects x's fragments from a neighborhood, as
// frag-index → data (replica rank → data in replicate mode). It also
// reports which stripes held at least one fragment. Nil blocks (failed
// degraded-mode reads) are skipped.
func (bd *BasicDict) findFragments(x pdm.Word, hood [][][]pdm.Word) (map[int][]pdm.Word, map[int]bool) {
	frags := make(map[int][]pdm.Word)
	touched := make(map[int]bool)
	for i, blocks := range hood {
		for _, blk := range blocks {
			if blk == nil {
				continue
			}
			for _, rec := range bd.codec.Decode(blk) {
				if rec.Key == x {
					frags[bd.fragIndex(rec.Sat[0])] = rec.Sat[1:]
					touched[i] = true
				}
			}
		}
	}
	return frags, touched
}

// LookupBatch resolves many keys with ONE batched read: every key's d
// bucket addresses are collected, de-duplicated, and fetched together.
// The parallel-I/O cost is the deepest per-disk queue of *distinct*
// blocks, so skewed batches (hot keys repeating, as in the paper's
// webmail workload) cost far less than len(keys) single lookups — the
// shared buckets are read once. Results are positionally aligned with
// keys.
func (bd *BasicDict) LookupBatch(keys []pdm.Word) ([][]pdm.Word, []bool) {
	return bd.LookupBatchOp(nil, keys)
}

// LookupBatchOp is LookupBatch attributed to the operation token op:
// the merged read round and the lookup span carry the op's ID, and the
// op is charged the batch's exact cost. A nil op keeps the legacy
// shared-stack attribution.
func (bd *BasicDict) LookupBatchOp(op *pdm.Op, keys []pdm.Word) ([][]pdm.Word, []bool) {
	bd.mu.RLock()
	defer bd.mu.RUnlock()
	defer bd.reg.m.OpSpan(op, obs.TagLookup)()
	uniq := make(map[pdm.Addr]int) // addr → index into fetch list
	var addrs []pdm.Addr
	perKey := make([][]int, len(keys)) // key → its blocks' fetch indices
	for ki, x := range keys {
		ka := bd.probeAddrs(x, nil)
		idxs := make([]int, len(ka))
		for i, a := range ka {
			j, ok := uniq[a]
			if !ok {
				j = len(addrs)
				uniq[a] = j
				addrs = append(addrs, a)
			}
			idxs[i] = j
		}
		perKey[ki] = idxs
	}
	flat := bd.reg.m.BatchReadOp(op, addrs)
	sats := make([][]pdm.Word, len(keys))
	oks := make([]bool, len(keys))
	blocks := make([][]pdm.Word, bd.probeLen())
	for ki, x := range keys {
		for i, j := range perKey[ki] {
			blocks[i] = flat[j]
		}
		sats[ki], oks[ki] = bd.lookupInBlocks(x, blocks)
	}
	return sats, oks
}

// Lookup returns a copy of x's satellite data and whether x is present.
// Cost: one batched read of the d buckets of Γ(x) — a single parallel
// I/O when BucketBlocks is 1.
func (bd *BasicDict) Lookup(x pdm.Word) ([]pdm.Word, bool) {
	return bd.LookupOp(nil, x)
}

// LookupOp is Lookup attributed to the operation token op.
func (bd *BasicDict) LookupOp(op *pdm.Op, x pdm.Word) ([]pdm.Word, bool) {
	bd.mu.RLock()
	defer bd.mu.RUnlock()
	defer bd.reg.m.OpSpan(op, obs.TagLookup)()
	hood := bd.readNeighborhood(op, x)
	frags, _ := bd.findFragments(x, hood)
	if !bd.present(frags) {
		return nil, false
	}
	return bd.assemble(frags), true
}

// Contains reports whether x is present, at the same cost as Lookup.
func (bd *BasicDict) Contains(x pdm.Word) bool {
	_, ok := bd.Lookup(x)
	return ok
}

func (bd *BasicDict) assemble(frags map[int][]pdm.Word) []pdm.Word {
	if bd.cfg.Replicate {
		// Every replica carries the full satellite; any one will do.
		for _, f := range frags {
			out := make([]pdm.Word, bd.cfg.SatWords)
			copy(out, f)
			return out
		}
		return nil // unreachable: callers gate on present()
	}
	sat := make([]pdm.Word, 0, bd.cfg.K*bd.fragWords)
	for j := 0; j < bd.cfg.K; j++ {
		sat = append(sat, frags[j]...)
	}
	return sat[:bd.cfg.SatWords]
}

// Insert stores (x, sat), replacing any previous satellite for x. sat
// must hold exactly SatWords words. Cost: the Lookup read batch plus one
// batched write of the modified buckets (a single parallel I/O, since
// the touched buckets lie in distinct stripes).
func (bd *BasicDict) Insert(x pdm.Word, sat []pdm.Word) error {
	return bd.InsertOp(nil, x, sat)
}

// InsertOp is Insert attributed to the operation token op.
func (bd *BasicDict) InsertOp(op *pdm.Op, x pdm.Word, sat []pdm.Word) error {
	bd.mu.Lock()
	defer bd.mu.Unlock()
	defer bd.reg.m.OpSpan(op, obs.TagInsert)()
	endProbe := bd.reg.m.OpSpan(op, obs.TagProbe)
	flat := bd.reg.m.BatchReadOp(op, bd.probeAddrs(x, make([]pdm.Addr, 0, bd.probeLen())))
	endProbe()
	writes, err := bd.insertWritesLocked(x, sat, flat)
	if len(writes) > 0 {
		// Writes accompany even a failed insert of an existing key: its
		// old fragments were removed and that removal must land.
		bd.reg.m.BatchWriteOp(op, writes)
	}
	return err
}

// insertWrites performs the insert decision against a pre-read
// neighborhood (the blocks for probeAddrs(x)) and returns the block
// writes to issue; the caller batches them, possibly together with
// writes of its own on other disks, into one parallel I/O. The count is
// updated as if the writes were applied.
func (bd *BasicDict) insertWritesLocked(x pdm.Word, sat []pdm.Word, flat [][]pdm.Word) ([]pdm.BlockWrite, error) {
	if len(sat) != bd.cfg.SatWords {
		return nil, fmt.Errorf("core: satellite of %d words, config says %d", len(sat), bd.cfg.SatWords)
	}
	if uint64(x) >= bd.cfg.Universe {
		return nil, fmt.Errorf("core: key %d outside universe %d", x, bd.cfg.Universe)
	}
	hood := bd.groupNeighborhood(flat)
	_, touched := bd.findFragments(x, hood)
	existing := len(touched) > 0
	if !existing && bd.n >= bd.cfg.Capacity {
		return nil, ErrFull
	}

	// Remove any previous fragments of x (update semantics), then run
	// the greedy placement of Section 3 on the loads as read.
	dirty := make(map[int]bool)
	for i := range touched {
		for _, blk := range hood[i] {
			for bd.codec.Remove(blk, x) {
			}
		}
		dirty[i] = true
	}

	loads := make([]int, bd.graph.Degree())
	for i, blocks := range hood {
		loads[i] = bd.bucketLoad(blocks)
	}
	caps := bd.cfg.BucketBlocks * bd.codec.Capacity()
	// Greedy least-loaded placement of Section 3. In replicate mode the
	// K choices must be distinct stripes (= distinct disks — that is the
	// fault-tolerance guarantee); in fragment mode repeats are allowed.
	chosen := make([]int, 0, bd.cfg.K)
	taken := make(map[int]bool, bd.cfg.K)
	for j := 0; j < bd.cfg.K; j++ {
		best := -1
		for i := range loads {
			if loads[i] >= caps || (bd.cfg.Replicate && taken[i]) {
				continue
			}
			if best == -1 || loads[i] < loads[best] {
				best = i
			}
		}
		if best == -1 {
			// No eligible neighbor has room. The on-disk buckets are
			// untouched, but if x was present we have removed its
			// fragments from the in-memory copies — return those removals
			// as writes so the structure stays consistent (x is then gone).
			if existing {
				bd.n--
				bd.noteUpdateLocked(x, nil, 0)
				return bd.collectWrites(x, hood, dirty), ErrFull
			}
			return nil, ErrFull
		}
		chosen = append(chosen, best)
		taken[best] = true
		loads[best]++
	}
	var mask uint64
	if bd.cfg.Replicate {
		for _, s := range chosen {
			mask |= 1 << uint(s)
		}
	}
	for j, best := range chosen {
		var frag []pdm.Word
		if bd.cfg.Replicate {
			frag = bd.replica(sat, replicaRank(mask, best), mask)
		} else {
			frag = bd.fragment(sat, j)
		}
		placed := false
		for _, blk := range hood[best] {
			// AppendAlways, not Append: two fragments of x may share a
			// bucket and must both survive.
			if bd.codec.AppendAlways(blk, bucket.Record{Key: x, Sat: frag}) {
				placed = true
				break
			}
		}
		if !placed {
			panic("core: load accounting disagrees with block contents")
		}
		dirty[best] = true
	}
	if !existing {
		bd.n++
	}
	bd.noteUpdateLocked(x, sat, mask)
	return bd.collectWrites(x, hood, dirty), nil
}

// fragment returns fragment j of the satellite, zero-padded to
// fragWords, prefixed by its index word.
func (bd *BasicDict) fragment(sat []pdm.Word, j int) []pdm.Word {
	frag := make([]pdm.Word, 1+bd.fragWords)
	frag[0] = pdm.Word(j)
	lo := j * bd.fragWords
	for i := 0; i < bd.fragWords && lo+i < len(sat); i++ {
		frag[1+i] = sat[lo+i]
	}
	return frag
}

// replica returns a full copy of the satellite prefixed by its replica
// tag (rank + stripe mask).
func (bd *BasicDict) replica(sat []pdm.Word, rank int, mask uint64) []pdm.Word {
	frag := make([]pdm.Word, 1+bd.fragWords)
	frag[0] = replicaTag(rank, mask)
	copy(frag[1:], sat)
	return frag
}

// collectWrites turns the modified buckets into a write batch. With a
// striped graph, distinct neighbors live on distinct disks, so issuing
// the batch is one parallel I/O (times BucketBlocks); in the head model
// any batch is.
func (bd *BasicDict) collectWrites(x pdm.Word, hood [][][]pdm.Word, dirty map[int]bool) []pdm.BlockWrite {
	ns := bd.neighbors(x)
	var writes []pdm.BlockWrite
	// Ordered iteration: the write batch (and so the event trace) must
	// not depend on map iteration order.
	for i := range hood {
		if !dirty[i] {
			continue
		}
		disk, row := bd.bucketPos(ns[i])
		base := row * bd.cfg.BucketBlocks
		blocks := hood[i]
		if bd.cfg.Replicate {
			// Canonical layout: a dirty bucket is always rewritten as the
			// sorted sequential packing of its record set, so its blocks
			// are a pure function of the records — the property Repair's
			// bit-identical reconstruction rests on.
			blocks = bd.canonicalBlocks(blocks)
		}
		for b, blk := range blocks {
			writes = append(writes, pdm.BlockWrite{Addr: bd.reg.addr(disk, base+b), Data: blk})
		}
	}
	return writes
}

// Delete removes x and reports whether it was present. Cost: one read
// batch plus, when present, one write batch.
func (bd *BasicDict) Delete(x pdm.Word) bool {
	return bd.DeleteOp(nil, x)
}

// DeleteOp is Delete attributed to the operation token op.
func (bd *BasicDict) DeleteOp(op *pdm.Op, x pdm.Word) bool {
	bd.mu.Lock()
	defer bd.mu.Unlock()
	defer bd.reg.m.OpSpan(op, obs.TagDelete)()
	flat := bd.reg.m.BatchReadOp(op, bd.probeAddrs(x, make([]pdm.Addr, 0, bd.probeLen())))
	writes, ok := bd.deleteWritesLocked(x, flat)
	if len(writes) > 0 {
		bd.reg.m.BatchWriteOp(op, writes)
	}
	return ok
}

// deleteWrites performs the delete decision against a pre-read
// neighborhood and returns the block writes to issue (batched by the
// caller) plus whether the key was present. The count is updated as if
// the writes were applied.
func (bd *BasicDict) deleteWritesLocked(x pdm.Word, flat [][]pdm.Word) ([]pdm.BlockWrite, bool) {
	hood := bd.groupNeighborhood(flat)
	_, touched := bd.findFragments(x, hood)
	if len(touched) == 0 {
		return nil, false
	}
	dirty := make(map[int]bool)
	for i := range touched {
		for _, blk := range hood[i] {
			for bd.codec.Remove(blk, x) {
			}
		}
		dirty[i] = true
	}
	bd.n--
	bd.noteUpdateLocked(x, nil, 0)
	return bd.collectWrites(x, hood, dirty), true
}

// MaxLoad scans the structure (without accounting I/O; diagnostics only)
// and returns the maximum bucket load, the quantity Lemma 3 bounds.
func (bd *BasicDict) MaxLoad() int {
	bd.mu.RLock()
	defer bd.mu.RUnlock()
	max := 0
	for y := 0; y < bd.buckets; y++ {
		disk, row := bd.bucketPos(y)
		load := 0
		for b := 0; b < bd.cfg.BucketBlocks; b++ {
			//lint:pdm-allow iocharge: diagnostics-only scan, documented as unaccounted
			blk := bd.reg.m.Peek(bd.reg.addr(disk, row*bd.cfg.BucketBlocks+b))
			load += bd.codec.Count(blk)
		}
		if load > max {
			max = load
		}
	}
	return max
}

// Scan calls fn for every stored record, in global bucket order,
// reading one bucket per call step (accounted). The satellite passed to
// fn is only the fragment set present in that bucket; Scan is intended
// for enumeration of keys (e.g. by the rebuilding wrapper), which uses
// fragment index 0 as the canonical sighting of a key.
func (bd *BasicDict) Scan(fn func(key pdm.Word, fragIdx int, frag []pdm.Word)) {
	bd.mu.RLock()
	defer bd.mu.RUnlock()
	defer bd.reg.m.Span(obs.TagScan)()
	for y := 0; y < bd.buckets; y++ {
		addrs := bd.bucketAddrs(y, nil)
		for _, blk := range bd.reg.m.BatchRead(addrs) {
			for _, rec := range bd.codec.Decode(blk) {
				fn(rec.Key, int(rec.Sat[0]), rec.Sat[1:])
			}
		}
	}
}

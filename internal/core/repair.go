package core

import (
	"errors"
	"fmt"
	"sort"

	"pdmdict/internal/bucket"
	"pdmdict/internal/obs"
	"pdmdict/internal/pdm"
)

// Degraded-mode operation and repair. The replicate-mode BasicDict
// (BasicConfig.Replicate) stores K full copies of every key on K
// distinct disks, so it tolerates up to K−1 disk failures: LookupTry
// answers from any surviving replica, Repair rebuilds a lost disk's
// stripe from the survivors, and Scrub sweeps the whole structure with
// verified reads. Transient errors are absorbed by re-issuing just the
// failed addresses as their own accounted batches, governed by the
// structure's pdm.RetryPolicy (SetRetryPolicy): retry count, modeled
// backoff charged as parallel-I/O steps, and optional hedging. The
// zero-value policy reproduces the historical behavior (three immediate
// retries) exactly, batch for batch.

// tryRead is tryReadPolicy with the default policy and no operation
// token — the historical retry behavior.
func tryRead(m *pdm.Machine, addrs []pdm.Addr) ([][]pdm.Word, error) {
	return tryReadPolicy(m, nil, pdm.RetryPolicy{}, addrs)
}

// splitTransient partitions a batch error into retryable accesses
// (transient) and permanent ones. idx maps positions of the failing
// batch back to the caller's original batch (nil = identity).
func splitTransient(be *pdm.BatchError) (retryIdx []int, retryable []pdm.BlockError, permanent []pdm.BlockError) {
	for _, b := range be.Blocks {
		if errors.Is(b.Err, pdm.ErrTransient) {
			retryIdx = append(retryIdx, b.Index)
			retryable = append(retryable, b)
		} else {
			permanent = append(permanent, b)
		}
	}
	return retryIdx, retryable, permanent
}

// tryReadPolicy is TryBatchRead plus policy-driven recovery, attributed
// to op (nil = unattributed): addresses that failed transiently are
// re-issued as their own accounted batches, up to pol.Retries() times,
// after charging the policy's modeled backoff (an addr-less charge
// under the "backoff" span). With pol.Hedge, a retried address whose
// disk the machine considers Suspect or recently stalling is issued
// TWICE in the retry batch and either copy fills the slot — the hedged
// second request. (Replica blocks are not bit-identical in this layout
// and a probe batch already spans all replicas, so the hedge re-requests
// the lagging block itself; falling back to surviving replicas is the
// caller's assembly step.) The returned slice has nil entries for
// accesses that never succeeded; the error, if any, lists exactly those
// entries with indices into the original batch.
func tryReadPolicy(m *pdm.Machine, op *pdm.Op, pol pdm.RetryPolicy, addrs []pdm.Addr) ([][]pdm.Word, error) {
	read := func(as []pdm.Addr) ([][]pdm.Word, error) {
		if op != nil {
			return m.TryBatchReadOp(op, as)
		}
		return m.TryBatchRead(as)
	}
	blocks, err := read(addrs)
	maxRetries := pol.Retries()
	for attempt := 0; err != nil && attempt < maxRetries; attempt++ {
		be, ok := pdm.AsBatchError(err)
		if !ok {
			return blocks, err
		}
		retryIdx, retryable, permanent := splitTransient(be)
		if len(retryable) == 0 {
			return blocks, err
		}
		retryAddrs := make([]pdm.Addr, len(retryable))
		for i, b := range retryable {
			retryAddrs[i] = b.Addr
		}
		if b := pol.Backoff(attempt + 1); b > 0 {
			endBackoff := m.OpSpan(op, obs.TagBackoff)
			m.ChargeSteps(op, b)
			endBackoff()
		}
		if pol.Hedge {
			hedged := 0
			primaries := len(retryAddrs)
			for i := 0; i < primaries; i++ {
				if m.SuspectOrStalling(retryAddrs[i].Disk) {
					retryIdx = append(retryIdx, retryIdx[i])
					retryAddrs = append(retryAddrs, retryAddrs[i])
					hedged++
				}
			}
			m.NoteHedges(hedged)
		}
		m.NoteRetry()
		got, rerr := read(retryAddrs)
		for i, j := range retryIdx {
			if blocks[j] == nil {
				blocks[j] = got[i]
			}
		}
		if rerr == nil {
			if len(permanent) == 0 {
				return blocks, nil
			}
			return blocks, &pdm.BatchError{Blocks: permanent}
		}
		rbe, ok := pdm.AsBatchError(rerr)
		if !ok {
			return blocks, rerr
		}
		// Merge this round's failures back onto original batch indices. A
		// slot whose hedged twin succeeded is not a failure; a slot whose
		// two copies both failed is reported once.
		merged := permanent
		reported := make(map[int]bool)
		for _, b := range rbe.Blocks {
			slot := retryIdx[b.Index]
			if blocks[slot] != nil || reported[slot] {
				continue
			}
			reported[slot] = true
			merged = append(merged, pdm.BlockError{Index: slot, Addr: b.Addr, Err: b.Err})
		}
		if len(merged) == 0 {
			return blocks, nil
		}
		err = &pdm.BatchError{Blocks: merged}
	}
	return blocks, err
}

// tryWrite is tryWritePolicy with the default policy and no token.
func tryWrite(m *pdm.Machine, writes []pdm.BlockWrite) error {
	return tryWritePolicy(m, nil, pdm.RetryPolicy{}, writes)
}

// tryWritePolicy is TryBatchWrite plus the same policy-driven retry and
// backoff (writes are never hedged: issuing a write twice has no upside
// — the second copy lands on the same block).
func tryWritePolicy(m *pdm.Machine, op *pdm.Op, pol pdm.RetryPolicy, writes []pdm.BlockWrite) error {
	write := func(ws []pdm.BlockWrite) error {
		if op != nil {
			return m.TryBatchWriteOp(op, ws)
		}
		return m.TryBatchWrite(ws)
	}
	err := write(writes)
	maxRetries := pol.Retries()
	for attempt := 0; err != nil && attempt < maxRetries; attempt++ {
		be, ok := pdm.AsBatchError(err)
		if !ok {
			return err
		}
		retryIdx, retryable, permanent := splitTransient(be)
		if len(retryable) == 0 {
			return err
		}
		retryWrites := make([]pdm.BlockWrite, len(retryable))
		for i, idx := range retryIdx {
			retryWrites[i] = writes[idx]
		}
		if b := pol.Backoff(attempt + 1); b > 0 {
			endBackoff := m.OpSpan(op, obs.TagBackoff)
			m.ChargeSteps(op, b)
			endBackoff()
		}
		m.NoteRetry()
		rerr := write(retryWrites)
		if rerr == nil {
			if len(permanent) == 0 {
				return nil
			}
			return &pdm.BatchError{Blocks: permanent}
		}
		rbe, ok := pdm.AsBatchError(rerr)
		if !ok {
			return rerr
		}
		merged := permanent
		for _, b := range rbe.Blocks {
			merged = append(merged, pdm.BlockError{Index: retryIdx[b.Index], Addr: b.Addr, Err: b.Err})
		}
		err = &pdm.BatchError{Blocks: merged}
	}
	return err
}

// canonicalBlocks re-encodes a bucket's blocks into the canonical
// layout: records sorted by (key, tag word), packed sequentially from
// block 0. Canonical blocks are a pure function of the record set, so
// two encodings of the same records are bit-identical — the invariant
// replica-based repair depends on. Nil blocks contribute no records.
func (bd *BasicDict) canonicalBlocks(blocks [][]pdm.Word) [][]pdm.Word {
	var recs []bucket.Record
	for _, blk := range blocks {
		if blk == nil {
			continue
		}
		for _, r := range bd.codec.Decode(blk) {
			recs = append(recs, bucket.Record{Key: r.Key, Sat: append([]pdm.Word(nil), r.Sat...)})
		}
	}
	return bd.encodeCanonical(recs, len(blocks))
}

// encodeCanonical lays a record set out canonically over nBlocks fresh
// blocks.
func (bd *BasicDict) encodeCanonical(recs []bucket.Record, nBlocks int) [][]pdm.Word {
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].Key != recs[j].Key {
			return recs[i].Key < recs[j].Key
		}
		return recs[i].Sat[0] < recs[j].Sat[0]
	})
	per := bd.codec.Capacity()
	if len(recs) > nBlocks*per {
		panic(fmt.Sprintf("core: %d records exceed bucket capacity %d", len(recs), nBlocks*per))
	}
	out := make([][]pdm.Word, nBlocks)
	for b := range out {
		lo := b * per
		if lo > len(recs) {
			lo = len(recs)
		}
		hi := lo + per
		if hi > len(recs) {
			hi = len(recs)
		}
		out[b] = bd.codec.Encode(recs[lo:hi])
	}
	return out
}

// LookupTry is Lookup through the fault layer: the d buckets of Γ(x)
// are read with verified reads (transient failures retried), and the
// answer is assembled from whatever survives. In replicate mode any one
// live replica suffices, so the answer stays correct under up to K−1
// failed disks; in fragment mode all K fragments are still required.
// The error is non-nil only when the surviving data cannot settle the
// query — the caller knows the answer is unavailable rather than
// "absent".
func (bd *BasicDict) LookupTry(x pdm.Word) ([]pdm.Word, bool, error) {
	return bd.LookupTryOp(nil, x)
}

// LookupTryOp is LookupTry attributed to the operation token op and
// governed by the structure's retry policy: the probe, every retry
// batch, and any modeled backoff are charged to op, so recovery I/O
// shows up under the operation that needed it. A nil op keeps the
// legacy shared-stack attribution.
func (bd *BasicDict) LookupTryOp(op *pdm.Op, x pdm.Word) ([]pdm.Word, bool, error) {
	bd.mu.RLock()
	defer bd.mu.RUnlock()
	defer bd.reg.m.OpSpan(op, obs.TagLookup)()
	addrs := bd.probeAddrs(x, make([]pdm.Addr, 0, bd.probeLen()))
	flat, err := tryReadPolicy(bd.reg.m, op, bd.retry, addrs)
	frags, _ := bd.findFragments(x, bd.groupNeighborhood(flat))
	if bd.present(frags) {
		return bd.assemble(frags), true, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("core: degraded lookup for key %d inconclusive: %w", x, err)
	}
	return nil, false, nil
}

// LookupTryBatch resolves many keys through the fault layer in one
// merged, de-duplicated read round governed by the retry policy — the
// fault-aware LookupBatch. Results align with keys; a key answers true
// whenever any surviving replica proves it present. The error is
// non-nil only when at least one key is inconclusive (its ok entry is
// then false and its sats entry nil — "unavailable", not "absent").
func (bd *BasicDict) LookupTryBatch(keys []pdm.Word) ([][]pdm.Word, []bool, error) {
	return bd.LookupTryBatchOp(nil, keys)
}

// LookupTryBatchOp is LookupTryBatch attributed to op.
func (bd *BasicDict) LookupTryBatchOp(op *pdm.Op, keys []pdm.Word) ([][]pdm.Word, []bool, error) {
	bd.mu.RLock()
	defer bd.mu.RUnlock()
	defer bd.reg.m.OpSpan(op, obs.TagLookup)()
	uniq := make(map[pdm.Addr]int)
	var addrs []pdm.Addr
	perKey := make([][]int, len(keys))
	for ki, x := range keys {
		ka := bd.probeAddrs(x, nil)
		idxs := make([]int, len(ka))
		for i, a := range ka {
			j, ok := uniq[a]
			if !ok {
				j = len(addrs)
				uniq[a] = j
				addrs = append(addrs, a)
			}
			idxs[i] = j
		}
		perKey[ki] = idxs
	}
	flat, err := tryReadPolicy(bd.reg.m, op, bd.retry, addrs)
	sats := make([][]pdm.Word, len(keys))
	oks := make([]bool, len(keys))
	blocks := make([][]pdm.Word, bd.probeLen())
	inconclusive := 0
	for ki, x := range keys {
		failed := false
		for i, j := range perKey[ki] {
			blocks[i] = flat[j]
			if flat[j] == nil {
				failed = true
			}
		}
		sats[ki], oks[ki] = bd.lookupInBlocks(x, blocks)
		if !oks[ki] && failed {
			inconclusive++
		}
	}
	if inconclusive > 0 && err != nil {
		return sats, oks, fmt.Errorf("core: degraded batch lookup: %d of %d keys inconclusive: %w", inconclusive, len(keys), err)
	}
	return sats, oks, nil
}

// ContainsTry reports presence through the fault layer; see LookupTry.
func (bd *BasicDict) ContainsTry(x pdm.Word) (bool, error) {
	_, ok, err := bd.LookupTry(x)
	return ok, err
}

// Repair rebuilds every bucket of one stripe (= one disk of the
// dictionary's region, in replicate mode always one physical disk) from
// the replicas on the surviving stripes, writing the canonical encoding
// of each reconstructed bucket. After a fail-stop + WipeDisk (blank
// replacement drive), a successful Repair leaves the stripe
// bit-identical to what was lost, because every bucket was canonical
// before the failure too.
//
// Cost: v/d read rows (each one parallel I/O per BucketBlocks layer,
// spanning the d−1 surviving disks) plus v/d bucket writes on the
// repaired disk — O(v/d · BucketBlocks) parallel I/Os total.
//
// Repair requires Replicate mode with K ≥ 2 (otherwise there are no
// surviving copies to rebuild from) and fails if a surviving replica
// cannot be read even after retries.
func (bd *BasicDict) Repair(disk int) error {
	if !bd.cfg.Replicate {
		return fmt.Errorf("core: Repair requires Replicate mode")
	}
	if bd.cfg.K < 2 {
		return fmt.Errorf("core: Repair needs K ≥ 2 replicas, have %d", bd.cfg.K)
	}
	if disk < 0 || disk >= bd.reg.nDisks {
		return fmt.Errorf("core: Repair disk %d out of [0,%d)", disk, bd.reg.nDisks)
	}
	bd.mu.Lock()
	defer bd.mu.Unlock()
	defer bd.reg.m.Span(obs.TagRepair)()
	d := bd.reg.nDisks
	ss := bd.striped.StripeSize()

	// Sweep the surviving stripes row by row, collecting every record
	// whose stripe mask says it also lived on the repaired disk.
	rows := make([][]bucket.Record, ss)
	seen := make([]map[pdm.Word]bool, ss)
	for r := 0; r < ss; r++ {
		var addrs []pdm.Addr
		for t := 0; t < d; t++ {
			if t == disk {
				continue
			}
			addrs = bd.bucketAddrs(t*ss+r, addrs)
		}
		blocks, err := tryReadPolicy(bd.reg.m, nil, bd.retry, addrs)
		if err != nil {
			return fmt.Errorf("core: Repair of disk %d: surviving stripe unreadable: %w", disk, err)
		}
		for _, blk := range blocks {
			for _, rec := range bd.codec.Decode(blk) {
				mask := uint64(rec.Sat[0]) >> 8
				if mask&(1<<uint(disk)) == 0 {
					continue
				}
				y := bd.neighbors(rec.Key)[disk]
				tDisk, row := bd.bucketPos(y)
				if tDisk != disk {
					// The mask claims a replica on a stripe the graph does
					// not map this key to — a damaged record slipped past
					// the checksum. Skip it rather than corrupt the stripe.
					continue
				}
				if seen[row] == nil {
					seen[row] = make(map[pdm.Word]bool)
				}
				if seen[row][rec.Key] {
					continue // another survivor already contributed this key
				}
				seen[row][rec.Key] = true
				sat := make([]pdm.Word, 1+bd.fragWords)
				sat[0] = replicaTag(replicaRank(mask, disk), mask)
				copy(sat[1:], rec.Sat[1:])
				rows[row] = append(rows[row], bucket.Record{Key: rec.Key, Sat: sat})
			}
		}
	}

	// Rewrite the whole stripe — reconstructed buckets and empty ones
	// alike, so stale blocks from before the failure cannot survive.
	for r := 0; r < ss; r++ {
		blocks := bd.encodeCanonical(rows[r], bd.cfg.BucketBlocks)
		addrs := bd.bucketAddrs(disk*ss+r, nil)
		writes := make([]pdm.BlockWrite, len(addrs))
		for i, a := range addrs {
			writes[i] = pdm.BlockWrite{Addr: a, Data: blocks[i]}
		}
		if err := tryWritePolicy(bd.reg.m, nil, bd.retry, writes); err != nil {
			return fmt.Errorf("core: Repair of disk %d: rewriting bucket %d: %w", disk, disk*ss+r, err)
		}
	}
	return nil
}

// Scrub sweeps every bucket of the dictionary with verified reads (one
// row of buckets per batch — one parallel I/O per BucketBlocks layer)
// and returns the addresses whose blocks are unreadable or fail their
// checksum, after transient retries. A completely clean scrub clears
// the machine's degraded flag.
func (bd *BasicDict) Scrub() []pdm.Addr {
	bd.mu.RLock()
	defer bd.mu.RUnlock()
	defer bd.reg.m.Span(obs.TagScrub)()
	d := bd.reg.nDisks
	rows := ceilDiv(bd.buckets, d)
	var bad []pdm.Addr
	for r := 0; r < rows; r++ {
		var addrs []pdm.Addr
		for t := 0; t < d; t++ {
			var y int
			if bd.striped != nil {
				y = t*bd.striped.StripeSize() + r
			} else {
				y = r*d + t
			}
			if y >= bd.buckets {
				continue
			}
			addrs = bd.bucketAddrs(y, addrs)
		}
		_, err := tryReadPolicy(bd.reg.m, nil, bd.retry, addrs)
		if err == nil {
			continue
		}
		if be, ok := pdm.AsBatchError(err); ok {
			for _, b := range be.Blocks {
				bad = append(bad, b.Addr)
			}
		}
	}
	if len(bad) == 0 {
		bd.reg.m.ClearDegraded()
	}
	return bad
}

// LookupTry is the one-probe structure's degraded lookup: the single
// probe batch goes through the fault layer with transient retries.
// Membership (K = 1) and retrieval fields are not replicated, so a
// fail-stopped disk in the group a key needs makes that key unavailable
// (reported as an error, never as a wrong answer); transient faults and
// stalls are absorbed.
func (op *OneProbeDict) LookupTry(x pdm.Word) ([]pdm.Word, bool, error) {
	return op.LookupTryOp(nil, x)
}

// LookupTryOp is LookupTry attributed to the operation token tok and
// governed by the structure's retry policy.
func (op *OneProbeDict) LookupTryOp(tok *pdm.Op, x pdm.Word) ([]pdm.Word, bool, error) {
	op.mu.RLock()
	defer op.mu.RUnlock()
	defer op.m.OpSpan(tok, obs.TagLookup)()
	addrs := op.probeAddrsAllLocked(x, make([]pdm.Addr, 0, op.probeWidthLocked()))
	membLen := op.memb.probeLen()
	flat, err := tryReadPolicy(op.m, tok, op.retry, addrs)
	membSat, ok := op.memb.lookupInBlocks(x, flat[:membLen])
	if !ok {
		if err != nil {
			return nil, false, fmt.Errorf("core: degraded lookup for key %d inconclusive: %w", x, err)
		}
		return nil, false, nil
	}
	level := int(membSat[0] >> 8)
	if level >= len(op.levels) {
		return nil, false, nil
	}
	blocks := flat[membLen+level*op.d : membLen+(level+1)*op.d]
	for _, blk := range blocks {
		if blk == nil {
			return nil, false, fmt.Errorf("core: degraded lookup for key %d: level %d fields unavailable: %w", x, level, err)
		}
	}
	head := int(membSat[0] & 0xFF)
	sat, found := decodeChain(op.fieldBits, op.cfg.SatWords, op.fieldsOfLocked(level, x, blocks), head)
	return sat, found, nil
}

package core

import (
	"errors"
	"fmt"
	"sort"

	"pdmdict/internal/bucket"
	"pdmdict/internal/obs"
	"pdmdict/internal/pdm"
)

// Degraded-mode operation and repair. The replicate-mode BasicDict
// (BasicConfig.Replicate) stores K full copies of every key on K
// distinct disks, so it tolerates up to K−1 disk failures: LookupTry
// answers from any surviving replica, Repair rebuilds a lost disk's
// stripe from the survivors, and Scrub sweeps the whole structure with
// verified reads. Transient errors are absorbed by re-issuing just the
// failed addresses, up to faultRetries extra accounted batches — the
// model's analogue of retry-with-backoff.

// faultRetries bounds how many follow-up batches a degraded operation
// issues for transiently failed addresses.
const faultRetries = 3

// tryRead is TryBatchRead plus transient-error retry: addresses that
// failed transiently are re-issued (as their own accounted batches) up
// to faultRetries times. The returned slice has nil entries for
// accesses that never succeeded; the error, if any, lists exactly those
// entries with indices into the original batch.
func tryRead(m *pdm.Machine, addrs []pdm.Addr) ([][]pdm.Word, error) {
	blocks, err := m.TryBatchRead(addrs)
	for attempt := 0; err != nil && attempt < faultRetries; attempt++ {
		be, ok := pdm.AsBatchError(err)
		if !ok {
			return blocks, err
		}
		var retryIdx []int
		var retryAddrs []pdm.Addr
		var permanent []pdm.BlockError
		for _, b := range be.Blocks {
			if errors.Is(b.Err, pdm.ErrTransient) {
				retryIdx = append(retryIdx, b.Index)
				retryAddrs = append(retryAddrs, b.Addr)
			} else {
				permanent = append(permanent, b)
			}
		}
		if len(retryAddrs) == 0 {
			return blocks, err
		}
		got, rerr := m.TryBatchRead(retryAddrs)
		for i, j := range retryIdx {
			blocks[j] = got[i]
		}
		if rerr == nil {
			if len(permanent) == 0 {
				return blocks, nil
			}
			return blocks, &pdm.BatchError{Blocks: permanent}
		}
		rbe, ok := pdm.AsBatchError(rerr)
		if !ok {
			return blocks, rerr
		}
		merged := permanent
		for _, b := range rbe.Blocks {
			merged = append(merged, pdm.BlockError{Index: retryIdx[b.Index], Addr: b.Addr, Err: b.Err})
		}
		err = &pdm.BatchError{Blocks: merged}
	}
	return blocks, err
}

// tryWrite is TryBatchWrite plus the same transient-error retry.
func tryWrite(m *pdm.Machine, writes []pdm.BlockWrite) error {
	err := m.TryBatchWrite(writes)
	for attempt := 0; err != nil && attempt < faultRetries; attempt++ {
		be, ok := pdm.AsBatchError(err)
		if !ok {
			return err
		}
		var retryIdx []int
		var retryWrites []pdm.BlockWrite
		var permanent []pdm.BlockError
		for _, b := range be.Blocks {
			if errors.Is(b.Err, pdm.ErrTransient) {
				retryIdx = append(retryIdx, b.Index)
				retryWrites = append(retryWrites, writes[b.Index])
			} else {
				permanent = append(permanent, b)
			}
		}
		if len(retryWrites) == 0 {
			return err
		}
		rerr := m.TryBatchWrite(retryWrites)
		if rerr == nil {
			if len(permanent) == 0 {
				return nil
			}
			return &pdm.BatchError{Blocks: permanent}
		}
		rbe, ok := pdm.AsBatchError(rerr)
		if !ok {
			return rerr
		}
		merged := permanent
		for _, b := range rbe.Blocks {
			merged = append(merged, pdm.BlockError{Index: retryIdx[b.Index], Addr: b.Addr, Err: b.Err})
		}
		err = &pdm.BatchError{Blocks: merged}
	}
	return err
}

// canonicalBlocks re-encodes a bucket's blocks into the canonical
// layout: records sorted by (key, tag word), packed sequentially from
// block 0. Canonical blocks are a pure function of the record set, so
// two encodings of the same records are bit-identical — the invariant
// replica-based repair depends on. Nil blocks contribute no records.
func (bd *BasicDict) canonicalBlocks(blocks [][]pdm.Word) [][]pdm.Word {
	var recs []bucket.Record
	for _, blk := range blocks {
		if blk == nil {
			continue
		}
		for _, r := range bd.codec.Decode(blk) {
			recs = append(recs, bucket.Record{Key: r.Key, Sat: append([]pdm.Word(nil), r.Sat...)})
		}
	}
	return bd.encodeCanonical(recs, len(blocks))
}

// encodeCanonical lays a record set out canonically over nBlocks fresh
// blocks.
func (bd *BasicDict) encodeCanonical(recs []bucket.Record, nBlocks int) [][]pdm.Word {
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].Key != recs[j].Key {
			return recs[i].Key < recs[j].Key
		}
		return recs[i].Sat[0] < recs[j].Sat[0]
	})
	per := bd.codec.Capacity()
	if len(recs) > nBlocks*per {
		panic(fmt.Sprintf("core: %d records exceed bucket capacity %d", len(recs), nBlocks*per))
	}
	out := make([][]pdm.Word, nBlocks)
	for b := range out {
		lo := b * per
		if lo > len(recs) {
			lo = len(recs)
		}
		hi := lo + per
		if hi > len(recs) {
			hi = len(recs)
		}
		out[b] = bd.codec.Encode(recs[lo:hi])
	}
	return out
}

// LookupTry is Lookup through the fault layer: the d buckets of Γ(x)
// are read with verified reads (transient failures retried), and the
// answer is assembled from whatever survives. In replicate mode any one
// live replica suffices, so the answer stays correct under up to K−1
// failed disks; in fragment mode all K fragments are still required.
// The error is non-nil only when the surviving data cannot settle the
// query — the caller knows the answer is unavailable rather than
// "absent".
func (bd *BasicDict) LookupTry(x pdm.Word) ([]pdm.Word, bool, error) {
	bd.mu.RLock()
	defer bd.mu.RUnlock()
	defer bd.reg.m.Span(obs.TagLookup)()
	addrs := bd.probeAddrs(x, make([]pdm.Addr, 0, bd.probeLen()))
	flat, err := tryRead(bd.reg.m, addrs)
	frags, _ := bd.findFragments(x, bd.groupNeighborhood(flat))
	if bd.present(frags) {
		return bd.assemble(frags), true, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("core: degraded lookup for key %d inconclusive: %w", x, err)
	}
	return nil, false, nil
}

// ContainsTry reports presence through the fault layer; see LookupTry.
func (bd *BasicDict) ContainsTry(x pdm.Word) (bool, error) {
	_, ok, err := bd.LookupTry(x)
	return ok, err
}

// Repair rebuilds every bucket of one stripe (= one disk of the
// dictionary's region, in replicate mode always one physical disk) from
// the replicas on the surviving stripes, writing the canonical encoding
// of each reconstructed bucket. After a fail-stop + WipeDisk (blank
// replacement drive), a successful Repair leaves the stripe
// bit-identical to what was lost, because every bucket was canonical
// before the failure too.
//
// Cost: v/d read rows (each one parallel I/O per BucketBlocks layer,
// spanning the d−1 surviving disks) plus v/d bucket writes on the
// repaired disk — O(v/d · BucketBlocks) parallel I/Os total.
//
// Repair requires Replicate mode with K ≥ 2 (otherwise there are no
// surviving copies to rebuild from) and fails if a surviving replica
// cannot be read even after retries.
func (bd *BasicDict) Repair(disk int) error {
	if !bd.cfg.Replicate {
		return fmt.Errorf("core: Repair requires Replicate mode")
	}
	if bd.cfg.K < 2 {
		return fmt.Errorf("core: Repair needs K ≥ 2 replicas, have %d", bd.cfg.K)
	}
	if disk < 0 || disk >= bd.reg.nDisks {
		return fmt.Errorf("core: Repair disk %d out of [0,%d)", disk, bd.reg.nDisks)
	}
	bd.mu.Lock()
	defer bd.mu.Unlock()
	defer bd.reg.m.Span(obs.TagRepair)()
	d := bd.reg.nDisks
	ss := bd.striped.StripeSize()

	// Sweep the surviving stripes row by row, collecting every record
	// whose stripe mask says it also lived on the repaired disk.
	rows := make([][]bucket.Record, ss)
	seen := make([]map[pdm.Word]bool, ss)
	for r := 0; r < ss; r++ {
		var addrs []pdm.Addr
		for t := 0; t < d; t++ {
			if t == disk {
				continue
			}
			addrs = bd.bucketAddrs(t*ss+r, addrs)
		}
		blocks, err := tryRead(bd.reg.m, addrs)
		if err != nil {
			return fmt.Errorf("core: Repair of disk %d: surviving stripe unreadable: %w", disk, err)
		}
		for _, blk := range blocks {
			for _, rec := range bd.codec.Decode(blk) {
				mask := uint64(rec.Sat[0]) >> 8
				if mask&(1<<uint(disk)) == 0 {
					continue
				}
				y := bd.neighbors(rec.Key)[disk]
				tDisk, row := bd.bucketPos(y)
				if tDisk != disk {
					// The mask claims a replica on a stripe the graph does
					// not map this key to — a damaged record slipped past
					// the checksum. Skip it rather than corrupt the stripe.
					continue
				}
				if seen[row] == nil {
					seen[row] = make(map[pdm.Word]bool)
				}
				if seen[row][rec.Key] {
					continue // another survivor already contributed this key
				}
				seen[row][rec.Key] = true
				sat := make([]pdm.Word, 1+bd.fragWords)
				sat[0] = replicaTag(replicaRank(mask, disk), mask)
				copy(sat[1:], rec.Sat[1:])
				rows[row] = append(rows[row], bucket.Record{Key: rec.Key, Sat: sat})
			}
		}
	}

	// Rewrite the whole stripe — reconstructed buckets and empty ones
	// alike, so stale blocks from before the failure cannot survive.
	for r := 0; r < ss; r++ {
		blocks := bd.encodeCanonical(rows[r], bd.cfg.BucketBlocks)
		addrs := bd.bucketAddrs(disk*ss+r, nil)
		writes := make([]pdm.BlockWrite, len(addrs))
		for i, a := range addrs {
			writes[i] = pdm.BlockWrite{Addr: a, Data: blocks[i]}
		}
		if err := tryWrite(bd.reg.m, writes); err != nil {
			return fmt.Errorf("core: Repair of disk %d: rewriting bucket %d: %w", disk, disk*ss+r, err)
		}
	}
	return nil
}

// Scrub sweeps every bucket of the dictionary with verified reads (one
// row of buckets per batch — one parallel I/O per BucketBlocks layer)
// and returns the addresses whose blocks are unreadable or fail their
// checksum, after transient retries. A completely clean scrub clears
// the machine's degraded flag.
func (bd *BasicDict) Scrub() []pdm.Addr {
	bd.mu.RLock()
	defer bd.mu.RUnlock()
	defer bd.reg.m.Span(obs.TagScrub)()
	d := bd.reg.nDisks
	rows := ceilDiv(bd.buckets, d)
	var bad []pdm.Addr
	for r := 0; r < rows; r++ {
		var addrs []pdm.Addr
		for t := 0; t < d; t++ {
			var y int
			if bd.striped != nil {
				y = t*bd.striped.StripeSize() + r
			} else {
				y = r*d + t
			}
			if y >= bd.buckets {
				continue
			}
			addrs = bd.bucketAddrs(y, addrs)
		}
		_, err := tryRead(bd.reg.m, addrs)
		if err == nil {
			continue
		}
		if be, ok := pdm.AsBatchError(err); ok {
			for _, b := range be.Blocks {
				bad = append(bad, b.Addr)
			}
		}
	}
	if len(bad) == 0 {
		bd.reg.m.ClearDegraded()
	}
	return bad
}

// LookupTry is the one-probe structure's degraded lookup: the single
// probe batch goes through the fault layer with transient retries.
// Membership (K = 1) and retrieval fields are not replicated, so a
// fail-stopped disk in the group a key needs makes that key unavailable
// (reported as an error, never as a wrong answer); transient faults and
// stalls are absorbed.
func (op *OneProbeDict) LookupTry(x pdm.Word) ([]pdm.Word, bool, error) {
	op.mu.RLock()
	defer op.mu.RUnlock()
	defer op.m.Span(obs.TagLookup)()
	addrs := op.probeAddrsAll(x, make([]pdm.Addr, 0, op.probeWidth()))
	membLen := op.memb.probeLen()
	flat, err := tryRead(op.m, addrs)
	membSat, ok := op.memb.lookupInBlocks(x, flat[:membLen])
	if !ok {
		if err != nil {
			return nil, false, fmt.Errorf("core: degraded lookup for key %d inconclusive: %w", x, err)
		}
		return nil, false, nil
	}
	level := int(membSat[0] >> 8)
	if level >= len(op.levels) {
		return nil, false, nil
	}
	blocks := flat[membLen+level*op.d : membLen+(level+1)*op.d]
	for _, blk := range blocks {
		if blk == nil {
			return nil, false, fmt.Errorf("core: degraded lookup for key %d: level %d fields unavailable: %w", x, level, err)
		}
	}
	head := int(membSat[0] & 0xFF)
	sat, found := decodeChain(op.fieldBits, op.cfg.SatWords, op.fieldsOf(level, x, blocks), head)
	return sat, found, nil
}

package core

// Integration of Section 5 with Section 4.1: run the basic dictionary
// on a semi-explicit telescope expander (striped trivially, at the
// factor-d space cost the paper describes) instead of the default
// seeded family. This is the full pipeline the paper envisions once
// explicit constructions exist: "The presented dictionary structures
// may become a practical choice if and when explicit and efficient
// constructions of unbalanced expander graphs appear."

import (
	"math/rand"
	"testing"

	"pdmdict/internal/expander"
	"pdmdict/internal/explicit"
	"pdmdict/internal/pdm"
)

func buildTelescopeGraph(t *testing.T, n int) expander.Striped {
	t.Helper()
	semi, err := explicit.Construct(explicit.SemiConfig{
		U: 1 << 20, N: n, Eps: 0.4, Gamma: 0.4, DegreePerLevel: 6, Seed: 51,
	})
	if err != nil {
		t.Fatalf("Construct: %v", err)
	}
	return explicit.NewTrivialStripe(semi.Graph)
}

func TestBasicDictOnTelescopeExpander(t *testing.T) {
	n := 64
	g := buildTelescopeGraph(t, n)
	m := pdm.NewMachine(pdm.Config{D: g.Degree(), B: 16})
	bd, err := NewBasic(m, BasicConfig{Capacity: n, SatWords: 1, Graph: g})
	if err != nil {
		t.Fatalf("NewBasic on telescope graph: %v", err)
	}
	rng := rand.New(rand.NewSource(52))
	oracle := map[pdm.Word]pdm.Word{}
	for len(oracle) < n {
		k := pdm.Word(rng.Uint64() % g.LeftSize())
		v := pdm.Word(rng.Uint64())
		if err := bd.Insert(k, []pdm.Word{v}); err != nil {
			t.Fatalf("insert: %v", err)
		}
		oracle[k] = v
	}
	// Lookups remain one parallel I/O on the explicit construction.
	for k, v := range oracle {
		before := m.Stats()
		sat, ok := bd.Lookup(k)
		if !ok || sat[0] != v {
			t.Fatalf("key %d = %v %v, want %d", k, sat, ok, v)
		}
		if d := m.Stats().Sub(before).ParallelIOs; d != 1 {
			t.Fatalf("lookup on telescope graph = %d parallel I/Os, want 1", d)
		}
	}
	// Universe enforcement comes from the graph.
	if err := bd.Insert(pdm.Word(g.LeftSize()), []pdm.Word{1}); err == nil {
		t.Error("key outside the graph's universe accepted")
	}
	// Deletes work as usual.
	for k := range oracle {
		if !bd.Delete(k) {
			t.Fatalf("delete %d failed", k)
		}
		break
	}
}

func TestBasicDictGraphValidation(t *testing.T) {
	g := expander.NewFamily(1<<20, 6, 8, 1)
	// Degree mismatch: machine with 4 disks, graph of degree 6.
	m := pdm.NewMachine(pdm.Config{D: 4, B: 16})
	if _, err := NewBasic(m, BasicConfig{Capacity: 10, Graph: g}); err == nil {
		t.Error("degree-mismatched graph accepted")
	}
	// Too-small right side for the requested capacity.
	m6 := pdm.NewMachine(pdm.Config{D: 6, B: 4})
	tiny := expander.NewFamily(1<<20, 6, 1, 1)
	if _, err := NewBasic(m6, BasicConfig{Capacity: 1000, Graph: tiny}); err == nil {
		t.Error("undersized graph accepted")
	}
	// Custom-graph dictionaries refuse snapshots (the graph's encoding
	// is caller-owned).
	ok6 := expander.NewFamily(1<<20, 6, 64, 1)
	bd, err := NewBasic(m6, BasicConfig{Capacity: 16, Graph: ok6})
	if err != nil {
		t.Fatal(err)
	}
	if err := bd.Snapshot(discardWriter{}); err == nil {
		t.Error("custom-graph snapshot accepted")
	}
}

type discardWriter struct{}

func (discardWriter) Write(p []byte) (int, error) { return len(p), nil }

package core

import (
	"testing"
	"testing/quick"

	"pdmdict/internal/bucket"
	"pdmdict/internal/pdm"
)

// Property: for arbitrary small key sets, geometries, and satellite
// sizes, BuildStatic either fails cleanly or produces a dictionary that
// answers every membership and retrieval query correctly at exactly one
// parallel I/O.
func TestPropertyStaticMatchesOracle(t *testing.T) {
	geoms := []struct {
		d, b int
		cs   StaticCase
	}{
		{6, 32, CaseB},
		{12, 64, CaseB},
		{6, 32, CaseA},
		{12, 64, CaseA},
	}
	f := func(rawKeys []uint32, sigmaRaw, geomRaw uint8) bool {
		g := geoms[int(geomRaw)%len(geoms)]
		sigma := int(sigmaRaw % 5)
		seen := map[pdm.Word]bool{}
		var recs []bucket.Record
		for _, rk := range rawKeys {
			k := pdm.Word(rk)
			if seen[k] {
				continue
			}
			seen[k] = true
			sat := make([]pdm.Word, sigma)
			for j := range sat {
				sat[j] = k*31 + pdm.Word(j)
			}
			recs = append(recs, bucket.Record{Key: k, Sat: sat})
			if len(recs) == 80 {
				break
			}
		}
		disks := g.d
		if g.cs == CaseA {
			disks *= 2
		}
		m := pdm.NewMachine(pdm.Config{D: disks, B: g.b})
		sd, err := BuildStatic(m, StaticConfig{SatWords: sigma, Case: g.cs, Seed: uint64(geomRaw) + 1}, recs)
		if err != nil {
			// A clean failure (e.g. expansion shortfall on a pathological
			// tiny set) is acceptable; silent wrongness is not.
			return true
		}
		for _, r := range recs {
			before := m.Stats().ParallelIOs
			sat, ok := sd.Lookup(r.Key)
			if !ok {
				return false
			}
			if m.Stats().ParallelIOs-before != 1 {
				return false
			}
			for j := range r.Sat {
				if sat[j] != r.Sat[j] {
					return false
				}
			}
		}
		// Absent keys (uint32 inputs guarantee high keys are unused).
		for probe := 0; probe < 20; probe++ {
			if _, ok := sd.Lookup(pdm.Word(1<<40) + pdm.Word(probe)); ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

package core

import (
	"errors"
	"testing"

	"pdmdict/internal/bucket"
	"pdmdict/internal/expander"
	"pdmdict/internal/pdm"
)

func TestBulkLoadMatchesInserts(t *testing.T) {
	recs := makeRecords(1000, 2, 31)
	// Structure A: bulk loaded. Structure B: inserted one by one with
	// the same seed — contents must agree for every key.
	mA := pdm.NewMachine(pdm.Config{D: 16, B: 64})
	a, err := NewBasic(mA, BasicConfig{Capacity: 1000, SatWords: 2, Seed: 32})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.BulkLoad(recs, a.BlocksPerDisk(), 4); err != nil {
		t.Fatalf("BulkLoad: %v", err)
	}
	mB := pdm.NewMachine(pdm.Config{D: 16, B: 64})
	b, err := NewBasic(mB, BasicConfig{Capacity: 1000, SatWords: 2, Seed: 32})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := b.Insert(r.Key, r.Sat); err != nil {
			t.Fatal(err)
		}
	}
	if a.Len() != b.Len() {
		t.Fatalf("Len %d vs %d", a.Len(), b.Len())
	}
	for _, r := range recs {
		sa, okA := a.Lookup(r.Key)
		sb, okB := b.Lookup(r.Key)
		if !okA || !okB {
			t.Fatalf("key %d: bulk=%v insert=%v", r.Key, okA, okB)
		}
		for i := range sa {
			if sa[i] != sb[i] || sa[i] != r.Sat[i] {
				t.Fatalf("key %d satellite diverges: %v vs %v", r.Key, sa, sb)
			}
		}
	}
	if a.MaxLoad() != b.MaxLoad() {
		t.Errorf("max load diverges: bulk %d vs insert %d (same greedy decisions expected)",
			a.MaxLoad(), b.MaxLoad())
	}
}

func TestBulkLoadCheaperThanInserts(t *testing.T) {
	recs := makeRecords(2000, 1, 33)
	mA := pdm.NewMachine(pdm.Config{D: 16, B: 64})
	a, _ := NewBasic(mA, BasicConfig{Capacity: 2000, SatWords: 1, Seed: 34})
	if err := a.BulkLoad(recs, a.BlocksPerDisk(), 8); err != nil {
		t.Fatal(err)
	}
	bulkIOs := mA.Stats().ParallelIOs

	mB := pdm.NewMachine(pdm.Config{D: 16, B: 64})
	b, _ := NewBasic(mB, BasicConfig{Capacity: 2000, SatWords: 1, Seed: 34})
	for _, r := range recs {
		if err := b.Insert(r.Key, r.Sat); err != nil {
			t.Fatal(err)
		}
	}
	insertIOs := mB.Stats().ParallelIOs
	if bulkIOs*2 >= insertIOs {
		t.Errorf("bulk load %d I/Os vs %d for inserts; expected well under half", bulkIOs, insertIOs)
	}
}

func TestBulkLoadFragmented(t *testing.T) {
	d := 8
	recs := makeRecords(200, 8, 35)
	m := pdm.NewMachine(pdm.Config{D: d, B: 64})
	bd, err := NewBasic(m, BasicConfig{Capacity: 200, SatWords: 8, K: d / 2, Seed: 36})
	if err != nil {
		t.Fatal(err)
	}
	if err := bd.BulkLoad(recs, bd.BlocksPerDisk(), 4); err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		sat, ok := bd.Lookup(r.Key)
		if !ok {
			t.Fatalf("fragmented key %d lost", r.Key)
		}
		for i := range r.Sat {
			if sat[i] != r.Sat[i] {
				t.Fatalf("key %d word %d = %d, want %d", r.Key, i, sat[i], r.Sat[i])
			}
		}
	}
}

func TestBulkLoadErrors(t *testing.T) {
	m := pdm.NewMachine(pdm.Config{D: 8, B: 64})
	bd, _ := NewBasic(m, BasicConfig{Capacity: 10, SatWords: 1, Seed: 37})
	if err := bd.BulkLoad(makeRecords(11, 1, 38), bd.BlocksPerDisk(), 4); err != ErrFull {
		t.Errorf("over-capacity bulk load: %v", err)
	}
	if err := bd.BulkLoad([]bucket.Record{{Key: 1, Sat: []pdm.Word{1}}, {Key: 1, Sat: []pdm.Word{2}}},
		bd.BlocksPerDisk(), 4); !errors.Is(err, ErrDuplicateKey) {
		t.Errorf("duplicate keys: %v", err)
	}
	if err := bd.BulkLoad([]bucket.Record{{Key: 1, Sat: nil}}, bd.BlocksPerDisk(), 4); err == nil {
		t.Error("wrong satellite width accepted")
	}
	if err := bd.BulkLoad(makeRecords(2, 1, 39), bd.BlocksPerDisk(), 2); err == nil {
		t.Error("memStripes=2 accepted")
	}
	if err := bd.BulkLoad(nil, bd.BlocksPerDisk(), 4); err != nil {
		t.Errorf("empty bulk load: %v", err)
	}
	// Non-empty dictionary refuses.
	if err := bd.Insert(5, []pdm.Word{1}); err != nil {
		t.Fatal(err)
	}
	if err := bd.BulkLoad(makeRecords(2, 1, 40), bd.BlocksPerDisk(), 4); err == nil {
		t.Error("bulk load into non-empty dictionary accepted")
	}
}

// TestFragmentSameBucketSurvives forces both fragments of one key into
// the same bucket — the scenario that motivated Codec.AppendAlways
// (Codec.Append would silently replace fragment 0 with fragment 1).
func TestFragmentSameBucketSurvives(t *testing.T) {
	// Geometry: d=2, K=2, stripeSize=2, so each key's neighborhood is
	// one of four (stripe0, stripe1) bucket pairs. Pre-load one stripe-1
	// bucket two units above a stripe-0 bucket; a key seeing that pair
	// then greedily places BOTH fragments in the stripe-0 bucket.
	m := pdm.NewMachine(pdm.Config{D: 2, B: 64})
	bd, err := NewBasic(m, BasicConfig{Capacity: 42, SatWords: 2, K: 2, Slack: 1, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	g := bd.Graph().(expander.Striped)
	if g.StripeSize() != 2 {
		t.Fatalf("geometry drifted: stripeSize=%d, want 2", g.StripeSize())
	}
	// Brute-force keys by their (stripe0, stripe1) neighbor indices.
	find := func(s0, s1 int, avoid map[pdm.Word]bool) pdm.Word {
		for x := pdm.Word(1); x < 1<<16; x++ {
			if avoid[x] {
				continue
			}
			if g.StripeNeighbor(uint64(x), 0) == s0 && g.StripeNeighbor(uint64(x), 1) == s1 {
				return x
			}
		}
		t.Fatal("no key with the wanted neighborhood in range")
		return 0
	}
	used := map[pdm.Word]bool{}
	y1 := find(1, 0, used)
	used[y1] = true
	y2 := find(1, 0, used)
	used[y2] = true
	x := find(0, 0, used)

	// y1, y2 load bucket (stripe0,idx1) and (stripe1,idx0) to 2 each.
	for _, y := range []pdm.Word{y1, y2} {
		if err := bd.Insert(y, []pdm.Word{y, y + 1}); err != nil {
			t.Fatal(err)
		}
	}
	// x sees (stripe0,idx0) at load 0 vs (stripe1,idx0) at load 2:
	// both fragments land in (stripe0,idx0).
	if err := bd.Insert(x, []pdm.Word{70, 71}); err != nil {
		t.Fatal(err)
	}
	frags := 0
	bd.Scan(func(key pdm.Word, fragIdx int, frag []pdm.Word) {
		if key == x {
			frags++
		}
	})
	if frags != 2 {
		t.Fatalf("key x has %d fragments on disk, want 2 (same-bucket placement lost one)", frags)
	}
	sat, ok := bd.Lookup(x)
	if !ok || sat[0] != 70 || sat[1] != 71 {
		t.Fatalf("Lookup(x) = %v %v, want [70 71]", sat, ok)
	}
	// The pre-loaded keys are intact too.
	for _, y := range []pdm.Word{y1, y2} {
		if sat, ok := bd.Lookup(y); !ok || sat[0] != y {
			t.Fatalf("key %d damaged: %v %v", y, sat, ok)
		}
	}
}

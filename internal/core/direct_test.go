package core

import (
	"testing"
	"testing/quick"

	"pdmdict/internal/pdm"
)

func TestDirectDictBasics(t *testing.T) {
	m := pdm.NewMachine(pdm.Config{D: 4, B: 16})
	dd, err := NewDirect(m, 1000, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := dd.Lookup(5); ok {
		t.Error("empty dict contains 5")
	}
	if err := dd.Insert(5, []pdm.Word{50, 51}); err != nil {
		t.Fatal(err)
	}
	sat, ok := dd.Lookup(5)
	if !ok || sat[0] != 50 || sat[1] != 51 {
		t.Fatalf("Lookup = %v %v", sat, ok)
	}
	if err := dd.Insert(5, []pdm.Word{60, 61}); err != nil {
		t.Fatal(err)
	}
	if dd.Len() != 1 {
		t.Errorf("Len = %d after update", dd.Len())
	}
	if !dd.Delete(5) || dd.Delete(5) || dd.Contains(5) {
		t.Error("delete sequence wrong")
	}
	// Keys outside the universe.
	if err := dd.Insert(1000, []pdm.Word{1, 2}); err == nil {
		t.Error("out-of-universe insert accepted")
	}
	if dd.Contains(5000) || dd.Delete(5000) {
		t.Error("out-of-universe key behaved as present")
	}
}

func TestDirectDictCosts(t *testing.T) {
	m := pdm.NewMachine(pdm.Config{D: 4, B: 16})
	dd, err := NewDirect(m, 4096, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		before := m.Stats()
		if err := dd.Insert(pdm.Word(i*8), []pdm.Word{pdm.Word(i)}); err != nil {
			t.Fatal(err)
		}
		if d := m.Stats().Sub(before).ParallelIOs; d != 2 {
			t.Fatalf("insert = %d parallel I/Os, want 2", d)
		}
	}
	for i := 0; i < 500; i++ {
		before := m.Stats()
		if !dd.Contains(pdm.Word(i * 8)) {
			t.Fatal("key lost")
		}
		if d := m.Stats().Sub(before).ParallelIOs; d != 1 {
			t.Fatalf("lookup = %d parallel I/Os, want 1", d)
		}
	}
}

func TestDirectDictErrors(t *testing.T) {
	m := pdm.NewMachine(pdm.Config{D: 2, B: 4})
	if _, err := NewDirect(m, 0, 1); err == nil {
		t.Error("empty universe accepted")
	}
	if _, err := NewDirect(m, 10, -1); err == nil {
		t.Error("negative SatWords accepted")
	}
	if _, err := NewDirect(m, 10, 10); err == nil {
		t.Error("slot larger than block accepted")
	}
	dd, _ := NewDirect(m, 10, 1)
	if err := dd.Insert(3, nil); err == nil {
		t.Error("wrong satellite width accepted")
	}
}

// Property: DirectDict agrees with a map oracle over its whole universe.
func TestPropertyDirectMatchesMap(t *testing.T) {
	f := func(ops []uint16) bool {
		m := pdm.NewMachine(pdm.Config{D: 3, B: 8})
		dd, err := NewDirect(m, 256, 1)
		if err != nil {
			return false
		}
		oracle := map[pdm.Word]pdm.Word{}
		for _, op := range ops {
			k := pdm.Word(op % 256)
			switch op % 3 {
			case 0:
				v := pdm.Word(op)
				if dd.Insert(k, []pdm.Word{v}) == nil {
					oracle[k] = v
				}
			case 1:
				_, okOracle := oracle[k]
				if dd.Delete(k) != okOracle {
					return false
				}
				delete(oracle, k)
			case 2:
				sat, ok := dd.Lookup(k)
				v, okOracle := oracle[k]
				if ok != okOracle || (ok && sat[0] != v) {
					return false
				}
			}
		}
		return dd.Len() == len(oracle)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLookupBatchMatchesSingles(t *testing.T) {
	m := pdm.NewMachine(pdm.Config{D: 8, B: 64})
	bd, err := NewBasic(m, BasicConfig{Capacity: 300, SatWords: 1, Seed: 71})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		bd.Insert(pdm.Word(i*3+1), []pdm.Word{pdm.Word(i)})
	}
	keys := make([]pdm.Word, 0, 100)
	for i := 0; i < 100; i++ {
		if i%4 == 3 {
			keys = append(keys, pdm.Word(1<<50+i)) // misses interleaved
		} else {
			keys = append(keys, pdm.Word(i*3+1))
		}
	}
	sats, oks := bd.LookupBatch(keys)
	for i, k := range keys {
		wantSat, wantOk := bd.Lookup(k)
		if oks[i] != wantOk {
			t.Fatalf("key %d: batch ok=%v single ok=%v", k, oks[i], wantOk)
		}
		if wantOk && sats[i][0] != wantSat[0] {
			t.Fatalf("key %d: batch sat=%v single sat=%v", k, sats[i], wantSat)
		}
	}
}

func TestLookupBatchDedupesHotKeys(t *testing.T) {
	m := pdm.NewMachine(pdm.Config{D: 8, B: 64})
	bd, err := NewBasic(m, BasicConfig{Capacity: 200, SatWords: 1, Seed: 72})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		bd.Insert(pdm.Word(i+1), []pdm.Word{1})
	}
	// 64 requests for the SAME key: one parallel I/O, not 64.
	hot := make([]pdm.Word, 64)
	for i := range hot {
		hot[i] = 7
	}
	before := m.Stats()
	_, oks := bd.LookupBatch(hot)
	cost := m.Stats().Sub(before).ParallelIOs
	if cost != 1 {
		t.Errorf("64 duplicate lookups cost %d parallel I/Os, want 1", cost)
	}
	for _, ok := range oks {
		if !ok {
			t.Fatal("hot key missing")
		}
	}
	// Mixed batch: strictly cheaper than one I/O per key when keys repeat.
	mixed := make([]pdm.Word, 0, 60)
	for i := 0; i < 60; i++ {
		mixed = append(mixed, pdm.Word(i%10+1)) // 10 distinct keys × 6
	}
	before = m.Stats()
	bd.LookupBatch(mixed)
	cost = m.Stats().Sub(before).ParallelIOs
	if cost >= 60 {
		t.Errorf("mixed batch cost %d parallel I/Os; deduplication ineffective", cost)
	}
}

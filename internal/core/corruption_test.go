package core

// Failure injection: dictionaries must degrade gracefully — never
// panic, never fabricate data for keys that were not stored — when the
// underlying blocks are corrupted out from under them. The decode paths
// (chain fields, majority identifiers, bucket records) all carry enough
// structure to detect damage and report absence instead.

import (
	"math/rand"
	"testing"

	"pdmdict/internal/pdm"
)

// smash overwrites every block the machine has materialized with
// rng-driven garbage, one disk at a time, calling check after each
// disk's destruction.
func smash(t *testing.T, m *pdm.Machine, rng *rand.Rand, check func()) {
	t.Helper()
	alloc := m.BlocksAllocated()
	for disk, nBlocks := range alloc {
		for b := 0; b < nBlocks; b++ {
			blk := make([]pdm.Word, m.B())
			for i := range blk {
				blk[i] = rng.Uint64()
			}
			m.WriteBlock(pdm.Addr{Disk: disk, Block: b}, blk)
		}
		check()
	}
}

func TestBasicSurvivesGarbageBlocks(t *testing.T) {
	m := pdm.NewMachine(pdm.Config{D: 8, B: 32})
	bd, err := NewBasic(m, BasicConfig{Capacity: 100, SatWords: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 80; i++ {
		bd.Insert(pdm.Word(i*5+1), []pdm.Word{pdm.Word(i)})
	}
	rng := rand.New(rand.NewSource(2))
	smash(t, m, rng, func() {
		// Any outcome but a panic is acceptable for lookups of stored
		// keys; lookups must simply not crash.
		for i := 0; i < 20; i++ {
			bd.Lookup(pdm.Word(i*5 + 1))
			bd.Lookup(pdm.Word(rng.Uint64()))
		}
	})
}

func TestDynamicSurvivesGarbageBlocks(t *testing.T) {
	m := pdm.NewMachine(pdm.Config{D: 40, B: 64})
	dd, err := NewDynamic(m, DynamicConfig{Capacity: 200, SatWords: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 150; i++ {
		dd.Insert(pdm.Word(i*7+1), []pdm.Word{1, 2})
	}
	rng := rand.New(rand.NewSource(4))
	smash(t, m, rng, func() {
		for i := 0; i < 20; i++ {
			dd.Lookup(pdm.Word(i*7 + 1))
			dd.Lookup(pdm.Word(rng.Uint64() | 1<<50))
		}
	})
}

func TestStaticSurvivesGarbageBlocks(t *testing.T) {
	for _, cs := range []StaticCase{CaseB, CaseA} {
		recs := makeRecords(150, 2, 5)
		disks := 12
		if cs == CaseA {
			disks = 24
		}
		m := pdm.NewMachine(pdm.Config{D: disks, B: 64})
		sd, err := BuildStatic(m, StaticConfig{SatWords: 2, Case: cs, Seed: 6}, recs)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(7))
		smash(t, m, rng, func() {
			for _, r := range recs[:20] {
				sd.Lookup(r.Key)
			}
			sd.Lookup(pdm.Word(rng.Uint64()))
		})
	}
}

func TestChainDecodeNeverPanicsOnGarbage(t *testing.T) {
	// decodeChain over random field contents must return (nil, false) or
	// a satellite — never panic, never read out of bounds.
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 5000; trial++ {
		d := 3 + rng.Intn(20)
		fieldWords := 1 + rng.Intn(4)
		satWords := rng.Intn(fieldWords * d)
		fields := make([][]pdm.Word, d)
		for i := range fields {
			fields[i] = make([]pdm.Word, fieldWords)
			for j := range fields[i] {
				if rng.Intn(3) > 0 {
					fields[i][j] = rng.Uint64()
				}
			}
		}
		head := rng.Intn(d+4) - 2 // sometimes out of range
		decodeChain(64*fieldWords, satWords, fields, head)
	}
}

func TestMajorityDecodeRejectsSplitVotes(t *testing.T) {
	// A CaseB field set where no identifier reaches a majority must
	// decode as absent.
	recs := makeRecords(50, 1, 9)
	m := pdm.NewMachine(pdm.Config{D: 6, B: 32})
	sd, err := BuildStatic(m, StaticConfig{SatWords: 1, Case: CaseB, Seed: 10}, recs)
	if err != nil {
		t.Fatal(err)
	}
	fields := make([][]pdm.Word, sd.d)
	for i := range fields {
		fields[i] = make([]pdm.Word, sd.fieldWords)
		fields[i][0] = pdm.Word(i + 1) // all distinct ids: no majority
	}
	if _, ok := sd.decodeMajority(fields); ok {
		t.Error("split votes decoded as present")
	}
	// A genuine majority with truncated data must also be rejected
	// rather than returning a short satellite.
	short := make([][]pdm.Word, sd.d)
	for i := range short {
		short[i] = make([]pdm.Word, sd.fieldWords)
	}
	short[0][0] = 7
	short[1][0] = 7
	short[2][0] = 7
	short[3][0] = 7 // majority of 6, but sat data words are all zero-length? they carry zeros
	if sat, ok := sd.decodeMajority(short); ok && len(sat) != sd.cfg.SatWords {
		t.Errorf("majority decode returned %d words, config says %d", len(sat), sd.cfg.SatWords)
	}
}

func TestDictSurvivesGarbageAcrossMigration(t *testing.T) {
	d, err := NewDict(DictConfig{InitialCapacity: 32, SatWords: 1, MigrateBatch: 2, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 48; i++ {
		d.Insert(pdm.Word(i+1), []pdm.Word{1})
	}
	// Corrupt the ACTIVE structure's machine mid-migration, then keep
	// operating: no panics allowed (data loss is expected and fine).
	rng := rand.New(rand.NewSource(12))
	m := d.active.machine()
	alloc := m.BlocksAllocated()
	for disk, nBlocks := range alloc {
		for b := 0; b < nBlocks; b += 3 {
			blk := make([]pdm.Word, m.B())
			for i := range blk {
				blk[i] = rng.Uint64()
			}
			m.WriteBlock(pdm.Addr{Disk: disk, Block: b}, blk)
		}
	}
	for i := 0; i < 100; i++ {
		d.Lookup(pdm.Word(i + 1))
		d.Delete(pdm.Word(rng.Intn(100)))
		d.Insert(pdm.Word(1000+i), []pdm.Word{1})
	}
}

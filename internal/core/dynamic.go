package core

import (
	"fmt"
	"math"
	"sync"

	"pdmdict/internal/bitpack"
	"pdmdict/internal/expander"
	"pdmdict/internal/obs"
	"pdmdict/internal/pdm"
)

// chainDiff peeks a chain field's next-stripe difference without
// decoding the data bits.
func chainDiff(field []pdm.Word, fieldBits int) int {
	r := bitpack.NewReader(field, fieldBits)
	r.ReadBits(1)
	return r.ReadUnary()
}

// DynamicConfig parameterizes the Section 4.3 / Theorem 7 dictionary.
type DynamicConfig struct {
	// Capacity is N, the maximum number of keys, fixed at initialization
	// as in the theorem ("a set whose size is not allowed to go beyond
	// N"). Required.
	Capacity int
	// SatWords is the satellite size per key, in words.
	SatWords int
	// Epsilon is the performance parameter ɛ of Theorem 7: successful
	// searches average at most 1+ɛ I/Os, updates at most 2+ɛ. 0 defaults
	// to 0.5. The theorem requires d > 6(1+1/ɛ).
	Epsilon float64
	// Ratio is the geometric shrink factor between consecutive retrieval
	// arrays (the paper's 6ε, constrained to be below 1/(1+1/ɛ)). 0
	// defaults to 0.9/(1+1/ɛ).
	Ratio float64
	// Slack sets the first array's size: v₁ = Slack·N·d fields. 0
	// defaults to 6 (the ε = 1/12 regime, as in StaticConfig).
	Slack float64
	// Universe is u; 0 defaults to 2^63.
	Universe uint64
	// Seed selects the expanders; array i uses Seed+i+1 and the
	// membership dictionary uses Seed.
	Seed uint64
}

func (c *DynamicConfig) normalize() error {
	if c.Capacity <= 0 {
		return fmt.Errorf("core: DynamicConfig.Capacity = %d, must be positive", c.Capacity)
	}
	if c.SatWords < 0 {
		return fmt.Errorf("core: negative SatWords")
	}
	if c.Epsilon == 0 {
		c.Epsilon = 0.5
	}
	// Negated comparisons so NaN (possible in a corrupt snapshot's float
	// fields) is rejected rather than silently propagated into sizing.
	if !(c.Epsilon > 0 && c.Epsilon <= maxConfigSlack) {
		return fmt.Errorf("core: Epsilon %v outside (0, %d]", c.Epsilon, maxConfigSlack)
	}
	if c.Ratio == 0 {
		c.Ratio = 0.9 / (1 + 1/c.Epsilon)
	}
	if !(c.Ratio > 0 && c.Ratio < 1) {
		return fmt.Errorf("core: Ratio %v outside (0,1)", c.Ratio)
	}
	if c.Slack == 0 {
		c.Slack = 6
	}
	if !(c.Slack >= 1 && c.Slack <= maxConfigSlack) {
		return fmt.Errorf("core: Slack %v outside [1, %d]", c.Slack, maxConfigSlack)
	}
	if c.Universe == 0 {
		c.Universe = 1 << 63
	}
	return nil
}

// dynLevel is one retrieval array A_i with its private expander.
type dynLevel struct {
	graph  *expander.Family
	block0 int // block offset of this array within the retrieval region
	blocks int // per-disk footprint
	count  int // keys currently stored at this level
}

// DynamicDict is the dynamic dictionary of Theorem 7: a membership
// sub-dictionary (Section 4.1) on d disks plus a cascade of retrieval
// arrays A_1 ⊃ A_2 ⊃ … of geometrically decreasing size on another d
// disks, each indexed by its own expander. Insertion is first-fit: a key
// goes to the first array offering t = ⌈2d/3⌉ currently-free fields
// among its neighbors, where its satellite is chained exactly as in the
// static CaseA layout.
//
// Costs (measured, and verified in tests):
//   - unsuccessful search: 1 parallel I/O (the first probe batches the
//     membership buckets with A_1's fields);
//   - successful search: 1 I/O for keys resident in A_1, 2 I/Os for
//     deeper keys — at most 1+ɛ on average, since a ≤ Ratio^i fraction
//     of keys lives below level i;
//   - insert: the search reads plus one batched write (2+ɛ on average).
//
// The membership satellite packs the head pointer ("a small integer of
// lg d bits") and the resident level into one word; storing the level
// costs lg l extra bits and caps the worst-case successful search at 2
// I/Os, strictly inside the theorem's O(log n) bound.
type DynamicDict struct {
	mu     sync.RWMutex // lookups shared, updates exclusive
	m      *pdm.Machine
	cfg    DynamicConfig
	d      int
	t      int
	levels []dynLevel // guarded by mu

	fieldWords     int
	fieldBits      int
	fieldsPerBlock int
	arr            region
	memb           *BasicDict
	n              int // guarded by mu
}

// NewDynamic creates an empty dictionary. The machine must have an even
// number of disks, 2d; the theorem's constraint d > 6(1+1/ɛ) is
// enforced.
func NewDynamic(m *pdm.Machine, cfg DynamicConfig) (*DynamicDict, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	if m.D()%2 != 0 {
		return nil, fmt.Errorf("core: DynamicDict needs an even disk count, got %d", m.D())
	}
	d := m.D() / 2
	if float64(d) <= 6*(1+1/cfg.Epsilon) {
		return nil, fmt.Errorf("core: Theorem 7 requires d > 6(1+1/ɛ): d=%d, ɛ=%v needs d > %.1f",
			d, cfg.Epsilon, 6*(1+1/cfg.Epsilon))
	}
	if d > 255 {
		return nil, fmt.Errorf("core: degree %d exceeds the packed head-pointer range (255)", d)
	}
	t := ceilDiv(2*d, 3)

	dd := &DynamicDict{m: m, cfg: cfg, d: d, t: t}
	dd.fieldBits = chainFieldBits(64*cfg.SatWords, t, d)
	dd.fieldWords = ceilDiv(dd.fieldBits, 64)
	if dd.fieldWords == 0 {
		dd.fieldWords = 1
	}
	dd.fieldBits = 64 * dd.fieldWords
	if dd.fieldWords > m.B() {
		return nil, fmt.Errorf("core: field of %d words exceeds block size %d", dd.fieldWords, m.B())
	}
	dd.fieldsPerBlock = m.B() / dd.fieldWords
	dd.arr = region{m: m, disk0: d, nDisks: d}

	// Geometric cascade: array i has Slack·N·Ratio^(i-1) fields per
	// stripe, down to a floor where a single key's chain still fits
	// comfortably.
	perStripe := cfg.Slack * float64(cfg.Capacity)
	block0 := 0
	for {
		sf := ceilDiv(int(perStripe), dd.fieldsPerBlock) * dd.fieldsPerBlock
		if sf < dd.fieldsPerBlock {
			sf = dd.fieldsPerBlock
		}
		lv := dynLevel{
			graph:  expander.NewFamily(cfg.Universe, d, sf, cfg.Seed+uint64(len(dd.levels))+1),
			block0: block0,
			blocks: sf / dd.fieldsPerBlock,
		}
		dd.levels = append(dd.levels, lv)
		block0 += lv.blocks
		if sf == dd.fieldsPerBlock || len(dd.levels) >= dd.maxLevels() {
			break
		}
		perStripe *= cfg.Ratio
	}

	memb, err := newBasicAt(region{m: m, disk0: 0, nDisks: d}, BasicConfig{
		Capacity: cfg.Capacity,
		SatWords: 1, // head | level<<8
		Universe: cfg.Universe,
		Seed:     cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	dd.memb = memb
	return dd, nil
}

// maxLevels bounds l at ⌈log N / log(1/Ratio)⌉ + 1, the paper's level
// count.
func (dd *DynamicDict) maxLevels() int {
	l := int(math.Ceil(math.Log(float64(dd.cfg.Capacity))/math.Log(1/dd.cfg.Ratio))) + 1
	if l < 1 {
		l = 1
	}
	return l
}

// Len returns the number of keys stored.
func (dd *DynamicDict) Len() int {
	dd.mu.RLock()
	defer dd.mu.RUnlock()
	return dd.n
}

// Capacity returns N.
func (dd *DynamicDict) Capacity() int { return dd.cfg.Capacity }

// Levels returns the number of retrieval arrays.
func (dd *DynamicDict) Levels() int {
	dd.mu.RLock()
	defer dd.mu.RUnlock()
	return len(dd.levels)
}

// LevelCounts returns how many keys reside at each level — the
// geometric decay Theorem 7's averaging argument rests on.
func (dd *DynamicDict) LevelCounts() []int {
	dd.mu.RLock()
	defer dd.mu.RUnlock()
	out := make([]int, len(dd.levels))
	for i, lv := range dd.levels {
		out[i] = lv.count
	}
	return out
}

// BlocksPerDisk returns the per-disk space footprint (maximum over the
// membership and retrieval regions).
func (dd *DynamicDict) BlocksPerDisk() int {
	dd.mu.RLock()
	defer dd.mu.RUnlock()
	last := dd.levels[len(dd.levels)-1]
	b := last.block0 + last.blocks
	if mb := dd.memb.BlocksPerDisk(); mb > b {
		b = mb
	}
	return b
}

// levelAddrs appends the d block addresses holding Γ_i(x)'s fields at
// the given level.
func (dd *DynamicDict) levelAddrs(lv *dynLevel, x pdm.Word, dst []pdm.Addr) []pdm.Addr {
	for i := 0; i < dd.d; i++ {
		j := lv.graph.StripeNeighbor(uint64(x), i)
		dst = append(dst, dd.arr.addr(i, lv.block0+j/dd.fieldsPerBlock))
	}
	return dst
}

// fieldsOf extracts the d per-stripe field slices of x from that
// level's freshly read blocks.
func (dd *DynamicDict) fieldsOf(lv *dynLevel, x pdm.Word, blocks [][]pdm.Word) [][]pdm.Word {
	fields := make([][]pdm.Word, dd.d)
	for i := 0; i < dd.d; i++ {
		j := lv.graph.StripeNeighbor(uint64(x), i)
		slot := (j % dd.fieldsPerBlock) * dd.fieldWords
		fields[i] = blocks[i][slot : slot+dd.fieldWords]
	}
	return fields
}

// Lookup returns a copy of x's satellite and whether x is present.
func (dd *DynamicDict) Lookup(x pdm.Word) ([]pdm.Word, bool) {
	return dd.LookupOp(nil, x)
}

// LookupOp is Lookup attributed to the operation token op: the spans
// and read batches carry the op's ID and the op is charged their exact
// cost. A nil op keeps the legacy shared-stack attribution.
func (dd *DynamicDict) LookupOp(op *pdm.Op, x pdm.Word) ([]pdm.Word, bool) {
	dd.mu.RLock()
	defer dd.mu.RUnlock()
	defer dd.m.OpSpan(op, obs.TagLookup)()
	// First parallel I/O: membership probe + A_1 fields, disjoint disks.
	addrs := dd.memb.probeAddrs(x, make([]pdm.Addr, 0, 2*dd.d))
	membLen := len(addrs)
	addrs = dd.levelAddrs(&dd.levels[0], x, addrs)
	flat := dd.m.BatchReadOp(op, addrs)

	membSat, ok := dd.memb.lookupInBlocks(x, flat[:membLen])
	if !ok {
		return nil, false // unsuccessful search: exactly 1 I/O
	}
	head := int(membSat[0] & 0xFF)
	level := int(membSat[0] >> 8)
	if level >= len(dd.levels) {
		return nil, false
	}
	lv := &dd.levels[level]
	var blocks [][]pdm.Word
	if level == 0 {
		blocks = flat[membLen:]
	} else {
		blocks = dd.m.BatchReadOp(op, dd.levelAddrs(lv, x, nil)) // second I/O
	}
	return decodeChain(dd.fieldBits, dd.cfg.SatWords, dd.fieldsOf(lv, x, blocks), head)
}

// Contains reports presence at the Lookup cost (1 I/O when absent).
func (dd *DynamicDict) Contains(x pdm.Word) bool {
	_, ok := dd.Lookup(x)
	return ok
}

// LookupBatch resolves many keys in at most two batched reads: round
// one fetches every key's membership buckets and A_1 fields together
// (de-duplicated) in a single parallel I/O, and the keys resident
// deeper than A_1 — a ≤ Ratio fraction on average — share one second
// batch. Results are positionally aligned with keys.
func (dd *DynamicDict) LookupBatch(keys []pdm.Word) ([][]pdm.Word, []bool) {
	return dd.LookupBatchOp(nil, keys)
}

// LookupBatchOp is LookupBatch attributed to the operation token op.
func (dd *DynamicDict) LookupBatchOp(op *pdm.Op, keys []pdm.Word) ([][]pdm.Word, []bool) {
	dd.mu.RLock()
	defer dd.mu.RUnlock()
	defer dd.m.OpSpan(op, obs.TagLookup)()
	membLen := dd.memb.probeLen()
	width := membLen + dd.d
	idx := make([]int32, len(keys)*width)
	uniq := make(map[pdm.Addr]int32, len(keys)*width)
	var addrs []pdm.Addr
	scratch := make([]pdm.Addr, 0, width)
	for ki, x := range keys {
		scratch = dd.memb.probeAddrs(x, scratch[:0])
		scratch = dd.levelAddrs(&dd.levels[0], x, scratch)
		for i, a := range scratch {
			j, seen := uniq[a]
			if !seen {
				j = int32(len(addrs))
				uniq[a] = j
				addrs = append(addrs, a)
			}
			idx[ki*width+i] = j
		}
	}
	flat := dd.m.BatchReadOp(op, addrs)

	sats := make([][]pdm.Word, len(keys))
	oks := make([]bool, len(keys))
	type deepKey struct {
		ki    int
		level int
		head  int
	}
	var deep []deepKey
	uniq2 := make(map[pdm.Addr]int32)
	var addrs2 []pdm.Addr
	var idx2 []int32
	view := make([][]pdm.Word, width)
	for ki, x := range keys {
		for i := range view {
			view[i] = flat[idx[ki*width+i]]
		}
		membSat, ok := dd.memb.lookupInBlocks(x, view[:membLen])
		if !ok {
			continue
		}
		head := int(membSat[0] & 0xFF)
		level := int(membSat[0] >> 8)
		if level >= len(dd.levels) {
			continue
		}
		if level == 0 {
			sats[ki], oks[ki] = decodeChain(dd.fieldBits, dd.cfg.SatWords, dd.fieldsOf(&dd.levels[0], x, view[membLen:]), head)
			continue
		}
		deep = append(deep, deepKey{ki: ki, level: level, head: head})
		scratch = dd.levelAddrs(&dd.levels[level], x, scratch[:0])
		for _, a := range scratch {
			j, seen := uniq2[a]
			if !seen {
				j = int32(len(addrs2))
				uniq2[a] = j
				addrs2 = append(addrs2, a)
			}
			idx2 = append(idx2, j)
		}
	}
	if len(deep) > 0 {
		flat2 := dd.m.BatchReadOp(op, addrs2)
		blocks := make([][]pdm.Word, dd.d)
		for di, dk := range deep {
			for i := range blocks {
				blocks[i] = flat2[idx2[di*dd.d+i]]
			}
			x := keys[dk.ki]
			sats[dk.ki], oks[dk.ki] = decodeChain(dd.fieldBits, dd.cfg.SatWords, dd.fieldsOf(&dd.levels[dk.level], x, blocks), dk.head)
		}
	}
	return sats, oks
}

// Insert stores (x, sat). Existing keys are updated in place (their old
// chain is released first). The insertion is first-fit over the level
// cascade; ErrFull is returned if no level offers t free fields, which
// parameters in the theorem's regime make vanishingly unlikely below
// Capacity.
func (dd *DynamicDict) Insert(x pdm.Word, sat []pdm.Word) error {
	return dd.InsertOp(nil, x, sat)
}

// InsertOp is Insert attributed to the operation token op.
func (dd *DynamicDict) InsertOp(op *pdm.Op, x pdm.Word, sat []pdm.Word) error {
	if len(sat) != dd.cfg.SatWords {
		return fmt.Errorf("core: satellite of %d words, config says %d", len(sat), dd.cfg.SatWords)
	}
	if uint64(x) >= dd.cfg.Universe {
		return fmt.Errorf("core: key %d outside universe %d", x, dd.cfg.Universe)
	}
	dd.mu.Lock()
	defer dd.mu.Unlock()
	defer dd.m.OpSpan(op, obs.TagInsert)()

	// First parallel I/O: membership + A_1.
	addrs := dd.memb.probeAddrs(x, make([]pdm.Addr, 0, 2*dd.d))
	membLen := len(addrs)
	addrs = dd.levelAddrs(&dd.levels[0], x, addrs)
	flat := dd.m.BatchReadOp(op, addrs)
	membBlocks := flat[:membLen]

	var writes []pdm.BlockWrite
	if membSat, present := dd.memb.lookupInBlocks(x, membBlocks); present {
		// Update: release the old chain first. If it lives at level 0
		// the clears mutate the blocks already in hand and join the
		// final write batch; a deeper chain is cleared with its own
		// read+write (rare — a ≤ Ratio fraction of keys).
		releaseWrites, oldLevel := dd.releaseChainLocked(op, x, membSat, flat[membLen:])
		if oldLevel == 0 {
			writes = append(writes, releaseWrites...)
		} else if len(releaseWrites) > 0 {
			dd.m.BatchWriteOp(op, releaseWrites)
		}
	} else if dd.n >= dd.cfg.Capacity {
		return ErrFull
	}

	// First-fit over levels. Level 0's blocks are already in hand.
	levelBlocks := flat[membLen:]
	for li := range dd.levels {
		lv := &dd.levels[li]
		if li > 0 {
			levelBlocks = dd.m.BatchReadOp(op, dd.levelAddrs(lv, x, nil))
		}
		free := dd.freeStripes(lv, x, levelBlocks)
		if len(free) < dd.t {
			continue
		}
		free = free[:dd.t]
		contents := encodeChain(dd.fieldBits, dd.fieldWords, free, sat)
		for p, stripe := range free {
			j := lv.graph.StripeNeighbor(uint64(x), stripe)
			blk := levelBlocks[stripe]
			copy(blk[(j%dd.fieldsPerBlock)*dd.fieldWords:], contents[p])
			writes = append(writes, pdm.BlockWrite{
				Addr: dd.arr.addr(stripe, lv.block0+j/dd.fieldsPerBlock),
				Data: blk,
			})
		}
		// Membership entry: head | level<<8, batched into the same
		// final write (membership disks are disjoint from the array
		// disks, so the whole batch is one parallel I/O).
		dd.memb.mu.Lock()
		membWrites, err := dd.memb.insertWritesLocked(x, []pdm.Word{pdm.Word(free[0]) | pdm.Word(li)<<8}, membBlocks)
		dd.memb.mu.Unlock()
		if err != nil {
			if len(writes) > 0 {
				dd.m.BatchWriteOp(op, dedupeWrites(writes))
			}
			return err
		}
		writes = append(writes, membWrites...)
		dd.m.BatchWriteOp(op, dedupeWrites(writes))
		lv.count++
		dd.n++
		return nil
	}
	// No level could host the chain. Flush the release writes and drop
	// the membership entry so a failed update leaves x consistently
	// absent rather than pointing at a cleared chain.
	dd.memb.mu.Lock()
	membWrites, _ := dd.memb.deleteWritesLocked(x, membBlocks)
	dd.memb.mu.Unlock()
	writes = append(writes, membWrites...)
	if len(writes) > 0 {
		dd.m.BatchWriteOp(op, dedupeWrites(writes))
	}
	return ErrFull
}

// freeStripes returns the stripes whose field for x is unused at this
// level, in stripe order.
func (dd *DynamicDict) freeStripes(lv *dynLevel, x pdm.Word, blocks [][]pdm.Word) []int {
	fields := dd.fieldsOf(lv, x, blocks)
	free := make([]int, 0, dd.d)
	for i, f := range fields {
		if !fieldUsed(f) {
			free = append(free, i)
		}
	}
	return free
}

// releaseChain clears x's chain fields at its resident level and returns
// the block writes plus that level. Level-0 blocks are supplied by the
// caller (already read) and are mutated in place; deeper levels cost one
// extra read batch. Membership is NOT touched; callers either rewrite
// the entry (update) or delete it (Delete) in their own batch.
func (dd *DynamicDict) releaseChainLocked(op *pdm.Op, x pdm.Word, membSat []pdm.Word, level0Blocks [][]pdm.Word) ([]pdm.BlockWrite, int) {
	head := int(membSat[0] & 0xFF)
	level := int(membSat[0] >> 8)
	if level >= len(dd.levels) {
		return nil, level
	}
	lv := &dd.levels[level]
	blocks := level0Blocks
	if level > 0 {
		blocks = dd.m.BatchReadOp(op, dd.levelAddrs(lv, x, nil))
	}
	fields := dd.fieldsOf(lv, x, blocks)
	var writes []pdm.BlockWrite
	cur := head
	for cur >= 0 && cur < dd.d && fieldUsed(fields[cur]) {
		diff := chainDiff(fields[cur], dd.fieldBits)
		for i := range fields[cur] {
			fields[cur][i] = 0
		}
		j := lv.graph.StripeNeighbor(uint64(x), cur)
		writes = append(writes, pdm.BlockWrite{
			Addr: dd.arr.addr(cur, lv.block0+j/dd.fieldsPerBlock),
			Data: blocks[cur],
		})
		if diff == 0 {
			break
		}
		cur += diff
	}
	lv.count--
	dd.n--
	return dedupeWrites(writes), level
}

// Delete removes x and reports whether it was present. Cost: one read
// batch, one extra read for deep keys, one write batch.
func (dd *DynamicDict) Delete(x pdm.Word) bool {
	return dd.DeleteOp(nil, x)
}

// DeleteOp is Delete attributed to the operation token op.
func (dd *DynamicDict) DeleteOp(op *pdm.Op, x pdm.Word) bool {
	dd.mu.Lock()
	defer dd.mu.Unlock()
	defer dd.m.OpSpan(op, obs.TagDelete)()
	addrs := dd.memb.probeAddrs(x, make([]pdm.Addr, 0, 2*dd.d))
	membLen := len(addrs)
	addrs = dd.levelAddrs(&dd.levels[0], x, addrs)
	flat := dd.m.BatchReadOp(op, addrs)
	membSat, ok := dd.memb.lookupInBlocks(x, flat[:membLen])
	if !ok {
		return false
	}
	writes, _ := dd.releaseChainLocked(op, x, membSat, flat[membLen:])
	dd.memb.mu.Lock()
	membWrites, _ := dd.memb.deleteWritesLocked(x, flat[:membLen])
	dd.memb.mu.Unlock()
	writes = append(writes, membWrites...)
	if len(writes) > 0 {
		dd.m.BatchWriteOp(op, dedupeWrites(writes))
	}
	return true
}

// dedupeWrites keeps only the last write to each address, preserving
// order otherwise. Updates touching the same block twice (release +
// re-place) must not resurrect stale contents.
func dedupeWrites(writes []pdm.BlockWrite) []pdm.BlockWrite {
	last := make(map[pdm.Addr]int, len(writes))
	for i, w := range writes {
		last[w.Addr] = i
	}
	out := writes[:0]
	for i, w := range writes {
		if last[w.Addr] == i {
			out = append(out, w)
		}
	}
	return out
}

package core

// Shared lookup rounds: the group-commit scheduler (internal/sched)
// collects concurrent single-key lookups from many callers and executes
// them as ONE merged probe set via the machine's BatchReadShared, so a
// burst of b independent clients costs the deepest per-disk queue of
// distinct blocks instead of b sequential rounds. Unlike LookupBatchOp
// (one token amortized over the batch's keys), a shared round carries
// one token PER participant: every op on the attribution list is
// charged the merged round's full cost once — splitting it would make
// the per-op worst-case bounds meaningless — and each op gets its own
// root span, so the accountant sees b distinct operations that happen
// to share their I/O.
//
// The contract for every LookupSharedOp below: len(ops) == len(keys),
// every ops[i] is non-nil, distinct, and owned by a caller that is
// blocked while the dispatching goroutine runs (the dispatcher is the
// op's single toucher, which makes the span frames safe).

import (
	"pdmdict/internal/obs"
	"pdmdict/internal/pdm"
)

// LookupSharedOp resolves keys[i] on behalf of ops[i] in one merged,
// de-duplicated read round. Results align positionally with keys.
func (bd *BasicDict) LookupSharedOp(ops []*pdm.Op, keys []pdm.Word) ([][]pdm.Word, []bool) {
	bd.mu.RLock()
	defer bd.mu.RUnlock()
	ends := make([]func(), len(ops))
	for i, op := range ops {
		ends[i] = bd.reg.m.OpSpan(op, obs.TagLookup)
	}
	uniq := make(map[pdm.Addr]int) // addr → index into fetch list
	var addrs []pdm.Addr
	perKey := make([][]int, len(keys)) // key → its blocks' fetch indices
	for ki, x := range keys {
		ka := bd.probeAddrs(x, nil)
		idxs := make([]int, len(ka))
		for i, a := range ka {
			j, ok := uniq[a]
			if !ok {
				j = len(addrs)
				uniq[a] = j
				addrs = append(addrs, a)
			}
			idxs[i] = j
		}
		perKey[ki] = idxs
	}
	flat := bd.reg.m.BatchReadShared(ops, addrs)
	sats := make([][]pdm.Word, len(keys))
	oks := make([]bool, len(keys))
	blocks := make([][]pdm.Word, bd.probeLen())
	for ki, x := range keys {
		for i, j := range perKey[ki] {
			blocks[i] = flat[j]
		}
		sats[ki], oks[ki] = bd.lookupInBlocks(x, blocks)
	}
	for i := len(ends) - 1; i >= 0; i-- {
		ends[i]()
	}
	return sats, oks
}

// LookupSharedOp resolves keys[i] on behalf of ops[i] in at most two
// merged rounds: one for every key's membership buckets and A_1 fields,
// and one shared by the (rare) keys resident in deeper arrays — the
// second round is attributed only to the deep keys' ops, so shallow
// participants are charged exactly one round.
func (dd *DynamicDict) LookupSharedOp(ops []*pdm.Op, keys []pdm.Word) ([][]pdm.Word, []bool) {
	dd.mu.RLock()
	defer dd.mu.RUnlock()
	ends := make([]func(), len(ops))
	for i, op := range ops {
		ends[i] = dd.m.OpSpan(op, obs.TagLookup)
	}
	membLen := dd.memb.probeLen()
	width := membLen + dd.d
	idx := make([]int32, len(keys)*width)
	uniq := make(map[pdm.Addr]int32, len(keys)*width)
	var addrs []pdm.Addr
	scratch := make([]pdm.Addr, 0, width)
	for ki, x := range keys {
		scratch = dd.memb.probeAddrs(x, scratch[:0])
		scratch = dd.levelAddrs(&dd.levels[0], x, scratch)
		for i, a := range scratch {
			j, seen := uniq[a]
			if !seen {
				j = int32(len(addrs))
				uniq[a] = j
				addrs = append(addrs, a)
			}
			idx[ki*width+i] = j
		}
	}
	flat := dd.m.BatchReadShared(ops, addrs)

	sats := make([][]pdm.Word, len(keys))
	oks := make([]bool, len(keys))
	type deepKey struct {
		ki    int
		level int
		head  int
	}
	var deep []deepKey
	var deepOps []*pdm.Op
	uniq2 := make(map[pdm.Addr]int32)
	var addrs2 []pdm.Addr
	var idx2 []int32
	view := make([][]pdm.Word, width)
	for ki, x := range keys {
		for i := range view {
			view[i] = flat[idx[ki*width+i]]
		}
		membSat, ok := dd.memb.lookupInBlocks(x, view[:membLen])
		if !ok {
			continue
		}
		head := int(membSat[0] & 0xFF)
		level := int(membSat[0] >> 8)
		if level >= len(dd.levels) {
			continue
		}
		if level == 0 {
			sats[ki], oks[ki] = decodeChain(dd.fieldBits, dd.cfg.SatWords, dd.fieldsOf(&dd.levels[0], x, view[membLen:]), head)
			continue
		}
		deep = append(deep, deepKey{ki: ki, level: level, head: head})
		deepOps = append(deepOps, ops[ki])
		scratch = dd.levelAddrs(&dd.levels[level], x, scratch[:0])
		for _, a := range scratch {
			j, seen := uniq2[a]
			if !seen {
				j = int32(len(addrs2))
				uniq2[a] = j
				addrs2 = append(addrs2, a)
			}
			idx2 = append(idx2, j)
		}
	}
	if len(deep) > 0 {
		flat2 := dd.m.BatchReadShared(deepOps, addrs2)
		blocks := make([][]pdm.Word, dd.d)
		for di, dk := range deep {
			for i := range blocks {
				blocks[i] = flat2[idx2[di*dd.d+i]]
			}
			x := keys[dk.ki]
			sats[dk.ki], oks[dk.ki] = decodeChain(dd.fieldBits, dd.cfg.SatWords, dd.fieldsOf(&dd.levels[dk.level], x, blocks), dk.head)
		}
	}
	for i := len(ends) - 1; i >= 0; i-- {
		ends[i]()
	}
	return sats, oks
}

// LookupSharedOp resolves keys[i] on behalf of ops[i] in exactly ONE
// merged read round — the single-probe guarantee extends to shared
// rounds, since every key's membership and field blocks merge into the
// same parallel I/O.
func (op *OneProbeDict) LookupSharedOp(ops []*pdm.Op, keys []pdm.Word) ([][]pdm.Word, []bool) {
	op.mu.RLock()
	defer op.mu.RUnlock()
	ends := make([]func(), len(ops))
	for i, tok := range ops {
		ends[i] = op.m.OpSpan(tok, obs.TagLookup)
	}
	width := op.probeWidthLocked()
	idx := make([]int32, len(keys)*width)
	uniq := make(map[pdm.Addr]int32, len(keys)*width)
	var addrs []pdm.Addr
	scratch := make([]pdm.Addr, 0, width)
	for ki, x := range keys {
		scratch = op.probeAddrsAllLocked(x, scratch[:0])
		for i, a := range scratch {
			j, ok := uniq[a]
			if !ok {
				j = int32(len(addrs))
				uniq[a] = j
				addrs = append(addrs, a)
			}
			idx[ki*width+i] = j
		}
	}
	flat := op.m.BatchReadShared(ops, addrs)
	sats := make([][]pdm.Word, len(keys))
	oks := make([]bool, len(keys))
	view := make([][]pdm.Word, width)
	for ki, x := range keys {
		for i := range view {
			view[i] = flat[idx[ki*width+i]]
		}
		sats[ki], oks[ki] = op.lookupInFlatLocked(x, view)
	}
	for i := len(ends) - 1; i >= 0; i-- {
		ends[i]()
	}
	return sats, oks
}

// LookupSharedOp resolves keys[i] on behalf of ops[i] through the
// rebuild wrapper: the filling structure (if a migration is in flight)
// answers a first shared round, and only the keys it misses ride a
// second shared round against the draining structure — attributed to
// just their ops. The ledger gains one Op per participant, each charged
// its own exact cost (the merged rounds it rode, in full).
func (d *Dict) LookupSharedOp(ops []*pdm.Op, keys []pdm.Word) ([][]pdm.Word, []bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	m := d.active.machine()
	befores := make([]int64, len(ops))
	ends := make([]func(), len(ops))
	for i, op := range ops {
		befores[i] = op.MaxMachineSteps()
		ends[i] = m.OpSpan(op, obs.TagLookup)
	}
	var sats [][]pdm.Word
	var oks []bool
	if d.next != nil {
		sats, oks = d.next.LookupSharedOp(ops, keys)
		var missKeys []pdm.Word
		var missOps []*pdm.Op
		var missIdx []int
		for i, ok := range oks {
			if !ok {
				missKeys = append(missKeys, keys[i])
				missOps = append(missOps, ops[i])
				missIdx = append(missIdx, i)
			}
		}
		if len(missKeys) > 0 {
			ms, mo := d.active.LookupSharedOp(missOps, missKeys)
			for j, i := range missIdx {
				sats[i], oks[i] = ms[j], mo[j]
			}
		}
	} else {
		sats, oks = d.active.LookupSharedOp(ops, keys)
	}
	for i := len(ends) - 1; i >= 0; i-- {
		ends[i]()
	}
	d.statsMu.Lock()
	for i, op := range ops {
		cost := op.MaxMachineSteps() - befores[i]
		d.stats.Ops++
		d.stats.ParallelIOs += cost
		if cost > d.stats.WorstOp {
			d.stats.WorstOp = cost
		}
	}
	d.statsMu.Unlock()
	return sats, oks
}

// StepCount returns the active structure's machine step counter — the
// deterministic logical clock the scheduler's step-budget admission
// window runs on.
func (d *Dict) StepCount() int64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.active.machine().StepCount()
}

package core

import (
	"fmt"

	"pdmdict/internal/bucket"
	"pdmdict/internal/obs"
	"pdmdict/internal/pdm"
)

// Incremental repair. RepairJob is Repair broken into bounded chunks so
// a supervisor can interleave stripe reconstruction with live traffic:
// each Step call processes at most a handful of bucket rows under the
// dictionary's write lock and then releases it, letting queued lookups
// and updates through between chunks. The job survives transient
// failures (an errored chunk can simply be retried — the cursor only
// advances on success) and stays correct under concurrent updates: the
// dictionary feeds the job every record change that touches the stripe
// under reconstruction (noteUpdateLocked), so a collected snapshot can never
// resurrect a deleted key or clobber a fresh insert.
//
// Phases:
//
//	collect  sweep the surviving stripes row by row, gathering the
//	         records whose stripe mask includes the repaired disk
//	write    rewrite the repaired stripe row by row from the collected
//	         record sets, canonical encoding
//
// A row the write phase has already rewritten needs no further
// bookkeeping: updates write all replica buckets directly (the
// simulator's writes are fault-oblivious), so such a row is kept fresh
// by the very update that would have invalidated the snapshot.
type RepairJob struct {
	bd   *BasicDict
	disk int

	writing bool // false: collect phase; true: write phase
	cursor  int  // next row to process in the current phase
	done    bool

	rows [][]bucket.Record   // per-row record sets for the repaired stripe
	seen []map[pdm.Word]bool // per-row keys already accounted (survivor dedup + update tombstones)
}

// StartRepair begins an incremental rebuild of one disk's stripe and
// registers the job with the dictionary so concurrent updates keep it
// consistent. Requirements are Repair's (Replicate mode, K ≥ 2); only
// one job may be registered at a time. Updates must go through the
// locking API (InsertOp, DeleteOp, …) while a job is registered.
func (bd *BasicDict) StartRepair(disk int) (*RepairJob, error) {
	if !bd.cfg.Replicate {
		return nil, fmt.Errorf("core: StartRepair requires Replicate mode")
	}
	if bd.cfg.K < 2 {
		return nil, fmt.Errorf("core: StartRepair needs K ≥ 2 replicas, have %d", bd.cfg.K)
	}
	if disk < 0 || disk >= bd.reg.nDisks {
		return nil, fmt.Errorf("core: StartRepair disk %d out of [0,%d)", disk, bd.reg.nDisks)
	}
	bd.mu.Lock()
	defer bd.mu.Unlock()
	if bd.repairJob != nil {
		return nil, fmt.Errorf("core: a repair of disk %d is already in progress", bd.repairJob.disk)
	}
	ss := bd.striped.StripeSize()
	j := &RepairJob{
		bd:   bd,
		disk: disk,
		rows: make([][]bucket.Record, ss),
		seen: make([]map[pdm.Word]bool, ss),
	}
	bd.repairJob = j
	return j, nil
}

// Disk returns the disk under repair.
func (j *RepairJob) Disk() int { return j.disk }

// Done reports whether the job has completed (successfully or via Close).
func (j *RepairJob) Done() bool {
	j.bd.mu.RLock()
	defer j.bd.mu.RUnlock()
	return j.done
}

// Progress returns the job's position: the current phase name and how
// many of the stripe's rows that phase has completed.
func (j *RepairJob) Progress() (phase string, row, rows int) {
	j.bd.mu.RLock()
	defer j.bd.mu.RUnlock()
	phase = "collect"
	if j.writing {
		phase = "write"
	}
	if j.done {
		phase = "done"
	}
	return phase, j.cursor, len(j.rows)
}

// Close abandons the job and unregisters it. Safe to call after
// completion (then a no-op).
func (j *RepairJob) Close() {
	j.bd.mu.Lock()
	if j.bd.repairJob == j {
		j.bd.repairJob = nil
	}
	j.done = true
	j.bd.mu.Unlock()
}

// Step runs one bounded chunk of the repair — at most nRows bucket rows
// of the current phase — attributed to op, and reports whether the job
// is complete. On error the cursor is left on the failing row, so the
// caller may retry Step (resume) or Close the job. A completed job has
// unregistered itself; calling Step again returns (true, nil).
func (j *RepairJob) Step(op *pdm.Op, nRows int) (bool, error) {
	if nRows <= 0 {
		nRows = 1
	}
	bd := j.bd
	bd.mu.Lock()
	defer bd.mu.Unlock()
	if j.done {
		return true, nil
	}
	defer bd.reg.m.OpSpan(op, obs.TagRepair)()
	ss := bd.striped.StripeSize()
	processed := 0
	defer func() { bd.reg.m.NoteRepairChunk(processed) }()
	for processed < nRows {
		if !j.writing {
			if j.cursor >= ss {
				j.writing = true
				j.cursor = 0
				continue
			}
			if err := j.collectRowLocked(op, j.cursor); err != nil {
				return false, err
			}
			j.cursor++
			processed++
			continue
		}
		if j.cursor >= ss {
			break
		}
		if err := j.writeRowLocked(op, j.cursor); err != nil {
			return false, err
		}
		j.cursor++
		processed++
	}
	if j.writing && j.cursor >= ss {
		j.done = true
		if bd.repairJob == j {
			bd.repairJob = nil
		}
		return true, nil
	}
	return false, nil
}

// collectRowLocked sweeps row r of every surviving stripe, adding the records
// whose mask includes the repaired disk. Caller holds bd.mu.
func (j *RepairJob) collectRowLocked(op *pdm.Op, r int) error {
	bd := j.bd
	d := bd.reg.nDisks
	ss := bd.striped.StripeSize()
	var addrs []pdm.Addr
	for t := 0; t < d; t++ {
		if t == j.disk {
			continue
		}
		addrs = bd.bucketAddrs(t*ss+r, addrs)
	}
	blocks, err := tryReadPolicy(bd.reg.m, op, bd.retry, addrs)
	if err != nil {
		return fmt.Errorf("core: repair of disk %d: surviving row %d unreadable: %w", j.disk, r, err)
	}
	for _, blk := range blocks {
		for _, rec := range bd.codec.Decode(blk) {
			mask := uint64(rec.Sat[0]) >> 8
			if mask&(1<<uint(j.disk)) == 0 {
				continue
			}
			y := bd.neighbors(rec.Key)[j.disk]
			tDisk, row := bd.bucketPos(y)
			if tDisk != j.disk {
				// Mask claims a replica on a stripe the graph does not map
				// this key to — damaged record; skip rather than corrupt.
				continue
			}
			if j.seen[row] == nil {
				j.seen[row] = make(map[pdm.Word]bool)
			}
			if j.seen[row][rec.Key] {
				continue // another survivor (or a live update) already decided this key
			}
			j.seen[row][rec.Key] = true
			sat := make([]pdm.Word, 1+bd.fragWords)
			sat[0] = replicaTag(replicaRank(mask, j.disk), mask)
			copy(sat[1:], rec.Sat[1:])
			j.rows[row] = append(j.rows[row], bucket.Record{Key: rec.Key, Sat: sat})
		}
	}
	return nil
}

// writeRowLocked rewrites row r of the repaired stripe from the collected
// record set (empty rows too: stale pre-failure blocks must not
// survive). Caller holds bd.mu.
func (j *RepairJob) writeRowLocked(op *pdm.Op, r int) error {
	bd := j.bd
	ss := bd.striped.StripeSize()
	blocks := bd.encodeCanonical(j.rows[r], bd.cfg.BucketBlocks)
	addrs := bd.bucketAddrs(j.disk*ss+r, nil)
	writes := make([]pdm.BlockWrite, len(addrs))
	for i, a := range addrs {
		writes[i] = pdm.BlockWrite{Addr: a, Data: blocks[i]}
	}
	if err := tryWritePolicy(bd.reg.m, op, bd.retry, writes); err != nil {
		return fmt.Errorf("core: repair of disk %d: rewriting row %d: %w", j.disk, r, err)
	}
	return nil
}

// noteUpdateLocked feeds a registered repair job one record change: key x now
// has stripe mask mask (0 = removed) and satellite sat. Called from the
// update paths with bd.mu held, after the new placement is decided but
// regardless of whether the store writes have been issued yet — both
// orders are safe because the job's own sweeps run under the same lock.
//
// The hazards this closes are stale snapshots: a collected row written
// later must not resurrect a key deleted in between (delete hazard) nor
// overwrite a key inserted in between with its absence (insert hazard).
func (bd *BasicDict) noteUpdateLocked(x pdm.Word, sat []pdm.Word, mask uint64) {
	j := bd.repairJob
	if j == nil || !bd.cfg.Replicate {
		return
	}
	y := bd.neighbors(x)[j.disk]
	tDisk, row := bd.bucketPos(y)
	if tDisk != j.disk {
		return
	}
	if j.writing && row < j.cursor {
		// Already rewritten; the caller's own (fault-oblivious) bucket
		// writes keep this row fresh from here on.
		return
	}
	// Tombstone: the survivor sweep must not re-add any copy of x — the
	// update is now the authority on x.
	if j.seen[row] == nil {
		j.seen[row] = make(map[pdm.Word]bool)
	}
	j.seen[row][x] = true
	// Drop any collected copy, then re-add under the new placement.
	recs := j.rows[row]
	for i := 0; i < len(recs); {
		if recs[i].Key == x {
			recs = append(recs[:i], recs[i+1:]...)
			continue
		}
		i++
	}
	if mask&(1<<uint(j.disk)) != 0 {
		full := make([]pdm.Word, 1+bd.fragWords)
		full[0] = replicaTag(replicaRank(mask, j.disk), mask)
		copy(full[1:], sat)
		recs = append(recs, bucket.Record{Key: x, Sat: full})
	}
	j.rows[row] = recs
}

// ScrubRange sweeps nRows bucket rows of one disk's stripe with
// verified reads, starting at row, and returns the bad addresses found,
// the next row to continue from, and whether the sweep reached the end
// of the stripe. Unlike Scrub it never clears the machine's degraded
// flag — that is the supervisor's call, made only after a full clean
// pass (pdm.Machine.MarkHealthy). Requires a striped layout.
func (bd *BasicDict) ScrubRange(op *pdm.Op, disk, row, nRows int) (bad []pdm.Addr, next int, done bool) {
	bd.mu.RLock()
	defer bd.mu.RUnlock()
	if bd.striped == nil {
		return nil, row, true // head-model layout has no per-disk stripes
	}
	defer bd.reg.m.OpSpan(op, obs.TagScrub)()
	ss := bd.striped.StripeSize()
	if nRows <= 0 {
		nRows = 1
	}
	r := row
	for ; r < ss && r < row+nRows; r++ {
		addrs := bd.bucketAddrs(disk*ss+r, nil)
		_, err := tryReadPolicy(bd.reg.m, op, bd.retry, addrs)
		if err == nil {
			continue
		}
		if be, ok := pdm.AsBatchError(err); ok {
			for _, b := range be.Blocks {
				bad = append(bad, b.Addr)
			}
		} else {
			bad = append(bad, addrs...)
		}
	}
	bd.reg.m.NoteRepairChunk(r - row)
	return bad, r, r >= ss
}

package core

import (
	"bytes"
	"strings"
	"testing"

	"pdmdict/internal/pdm"
)

func TestBasicSnapshotRoundTrip(t *testing.T) {
	m := pdm.NewMachine(pdm.Config{D: 8, B: 32})
	bd, err := NewBasic(m, BasicConfig{Capacity: 200, SatWords: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 150; i++ {
		if err := bd.Insert(pdm.Word(i*13+1), []pdm.Word{pdm.Word(i), pdm.Word(i * 2)}); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := bd.Snapshot(&buf); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	restored, _, err := LoadBasic(&buf)
	if err != nil {
		t.Fatalf("LoadBasic: %v", err)
	}
	if restored.Len() != bd.Len() {
		t.Fatalf("Len = %d, want %d", restored.Len(), bd.Len())
	}
	for i := 0; i < 150; i++ {
		sat, ok := restored.Lookup(pdm.Word(i*13 + 1))
		if !ok || sat[0] != pdm.Word(i) || sat[1] != pdm.Word(i*2) {
			t.Fatalf("key %d after restore: %v %v", i*13+1, sat, ok)
		}
	}
	// The restored structure remains fully usable.
	if err := restored.Insert(999999, []pdm.Word{9, 9}); err != nil {
		t.Fatalf("insert after restore: %v", err)
	}
	if !restored.Delete(1) {
		t.Fatal("delete after restore failed")
	}
}

func TestDynamicSnapshotRoundTrip(t *testing.T) {
	m := pdm.NewMachine(pdm.Config{D: 40, B: 64})
	dd, err := NewDynamic(m, DynamicConfig{Capacity: 500, SatWords: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 400; i++ {
		if err := dd.Insert(pdm.Word(i*7+3), []pdm.Word{pdm.Word(i)}); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := dd.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, _, err := LoadDynamic(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Len() != 400 {
		t.Fatalf("Len = %d", restored.Len())
	}
	want := dd.LevelCounts()
	got := restored.LevelCounts()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("level counts %v, want %v", got, want)
		}
	}
	for i := 0; i < 400; i++ {
		if sat, ok := restored.Lookup(pdm.Word(i*7 + 3)); !ok || sat[0] != pdm.Word(i) {
			t.Fatalf("key %d after restore: %v %v", i*7+3, sat, ok)
		}
	}
	if err := restored.Insert(424243, []pdm.Word{1}); err != nil {
		t.Fatalf("insert after restore: %v", err)
	}
}

func TestStaticSnapshotRoundTrip(t *testing.T) {
	for _, cs := range []StaticCase{CaseB, CaseA} {
		recs := makeRecords(200, 2, 3)
		disks := 12
		if cs == CaseA {
			disks = 24
		}
		m := pdm.NewMachine(pdm.Config{D: disks, B: 64})
		sd, err := BuildStatic(m, StaticConfig{SatWords: 2, Case: cs, Seed: 4}, recs)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := sd.Snapshot(&buf); err != nil {
			t.Fatal(err)
		}
		restored, rm, err := LoadStatic(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if restored.Len() != 200 {
			t.Fatalf("%v: Len = %d", cs, restored.Len())
		}
		// Lookups still one parallel I/O on the restored machine.
		before := rm.Stats()
		for _, r := range recs {
			sat, ok := restored.Lookup(r.Key)
			if !ok || sat[0] != r.Sat[0] {
				t.Fatalf("%v: key %d after restore: %v %v", cs, r.Key, sat, ok)
			}
		}
		perLookup := float64(rm.Stats().Sub(before).ParallelIOs) / float64(len(recs))
		if perLookup != 1 {
			t.Errorf("%v: restored lookups cost %.3f I/Os, want 1", cs, perLookup)
		}
	}
}

func TestDictSnapshotMidMigration(t *testing.T) {
	d, err := NewDict(DictConfig{InitialCapacity: 32, SatWords: 1, MigrateBatch: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]pdm.Word, 48)
	for i := range keys {
		keys[i] = pdm.Word(i*11 + 2)
		if err := d.Insert(keys[i], []pdm.Word{pdm.Word(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if !d.Migrating() {
		t.Fatal("expected an in-progress migration")
	}
	var buf bytes.Buffer
	if err := d.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadDict(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !restored.Migrating() {
		t.Fatal("migration state lost")
	}
	if restored.Len() != len(keys) {
		t.Fatalf("Len = %d, want %d", restored.Len(), len(keys))
	}
	for i, k := range keys {
		sat, ok := restored.Lookup(k)
		if !ok || sat[0] != pdm.Word(i) {
			t.Fatalf("key %d after restore: %v %v", k, sat, ok)
		}
	}
	// Drive the restored migration to completion.
	for i := 0; i < 200 && restored.Migrating(); i++ {
		restored.Delete(1 << 40)
	}
	if restored.Migrating() {
		t.Error("restored migration never completed")
	}
	for i, k := range keys {
		if sat, ok := restored.Lookup(k); !ok || sat[0] != pdm.Word(i) {
			t.Fatalf("key %d lost after restored migration", k)
		}
	}
}

func TestSnapshotErrors(t *testing.T) {
	// Truncated stream.
	m := pdm.NewMachine(pdm.Config{D: 4, B: 16})
	bd, _ := NewBasic(m, BasicConfig{Capacity: 10, Seed: 6})
	var buf bytes.Buffer
	if err := bd.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, _, err := LoadBasic(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated snapshot loaded")
	}
	// Garbage stream.
	if _, _, err := LoadBasic(strings.NewReader("not a snapshot at all")); err == nil {
		t.Error("garbage snapshot loaded")
	}
	// Wrong type: a Basic snapshot fed to LoadDynamic must fail, not
	// crash.
	if _, _, err := LoadDynamic(bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("type-confused snapshot loaded")
	}
}

func TestMachineSnapshotPreservesStats(t *testing.T) {
	m := pdm.NewMachine(pdm.Config{D: 2, B: 4, Model: pdm.DiskHead})
	m.WriteBlock(pdm.Addr{Disk: 1, Block: 3}, []pdm.Word{7})
	m.ReadBlock(pdm.Addr{Disk: 1, Block: 3})
	var buf bytes.Buffer
	if err := m.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	r, err := pdm.ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.Config() != m.Config() {
		t.Errorf("config %+v, want %+v", r.Config(), m.Config())
	}
	if r.Stats() != m.Stats() {
		t.Errorf("stats %+v, want %+v", r.Stats(), m.Stats())
	}
	if got := r.ReadBlock(pdm.Addr{Disk: 1, Block: 3})[0]; got != 7 {
		t.Errorf("data after restore = %d, want 7", got)
	}
}

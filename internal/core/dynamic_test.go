package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pdmdict/internal/pdm"
)

// newDynamic builds a Theorem 7 dictionary on 2d disks.
func newDynamic(t *testing.T, d, b int, cfg DynamicConfig) (*DynamicDict, *pdm.Machine) {
	t.Helper()
	m := pdm.NewMachine(pdm.Config{D: 2 * d, B: b})
	dd, err := NewDynamic(m, cfg)
	if err != nil {
		t.Fatalf("NewDynamic: %v", err)
	}
	return dd, m
}

func TestDynamicBasicOps(t *testing.T) {
	dd, _ := newDynamic(t, 20, 64, DynamicConfig{Capacity: 500, SatWords: 2, Seed: 1})
	if _, ok := dd.Lookup(7); ok {
		t.Error("empty dict contains 7")
	}
	if err := dd.Insert(7, []pdm.Word{70, 71}); err != nil {
		t.Fatal(err)
	}
	sat, ok := dd.Lookup(7)
	if !ok || sat[0] != 70 || sat[1] != 71 {
		t.Fatalf("Lookup(7) = %v, %v", sat, ok)
	}
	if dd.Len() != 1 {
		t.Errorf("Len = %d", dd.Len())
	}
	if !dd.Delete(7) || dd.Delete(7) || dd.Contains(7) || dd.Len() != 0 {
		t.Error("delete sequence wrong")
	}
}

func TestDynamicUpdateInPlace(t *testing.T) {
	dd, _ := newDynamic(t, 20, 64, DynamicConfig{Capacity: 500, SatWords: 1, Seed: 2})
	if err := dd.Insert(5, []pdm.Word{1}); err != nil {
		t.Fatal(err)
	}
	if err := dd.Insert(5, []pdm.Word{2}); err != nil {
		t.Fatal(err)
	}
	if dd.Len() != 1 {
		t.Errorf("Len = %d after update", dd.Len())
	}
	if sat, _ := dd.Lookup(5); sat[0] != 2 {
		t.Errorf("update did not stick: %d", sat[0])
	}
	counts := dd.LevelCounts()
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 1 {
		t.Errorf("level counts %v sum to %d, want 1", counts, total)
	}
}

func TestDynamicUnsuccessfulSearchIsOneIO(t *testing.T) {
	dd, m := newDynamic(t, 20, 64, DynamicConfig{Capacity: 1000, SatWords: 1, Seed: 3})
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 500; i++ {
		if err := dd.Insert(pdm.Word(rng.Uint64()%(1<<40)), []pdm.Word{1}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		k := pdm.Word(rng.Uint64()%(1<<40)) | 1<<50
		before := m.Stats()
		if _, ok := dd.Lookup(k); ok {
			t.Fatal("phantom key")
		}
		if d := m.Stats().Sub(before).ParallelIOs; d != 1 {
			t.Fatalf("unsuccessful search = %d parallel I/Os, want 1 (Theorem 7)", d)
		}
	}
}

func TestDynamicSuccessfulSearchAveragesBelowOnePlusEpsilon(t *testing.T) {
	eps := 0.5
	dd, m := newDynamic(t, 20, 64, DynamicConfig{Capacity: 2000, SatWords: 1, Epsilon: eps, Seed: 5})
	rng := rand.New(rand.NewSource(6))
	keys := make([]pdm.Word, 2000)
	for i := range keys {
		keys[i] = pdm.Word(rng.Uint64() % (1 << 44))
		if err := dd.Insert(keys[i], []pdm.Word{pdm.Word(i)}); err != nil {
			t.Fatal(err)
		}
	}
	before := m.Stats()
	worst := int64(0)
	for _, k := range keys {
		b := m.Stats()
		if _, ok := dd.Lookup(k); !ok {
			t.Fatalf("key %d lost", k)
		}
		if d := m.Stats().Sub(b).ParallelIOs; d > worst {
			worst = d
		}
	}
	total := m.Stats().Sub(before).ParallelIOs
	avg := float64(total) / float64(len(keys))
	if avg > 1+eps {
		t.Errorf("successful search average = %.3f I/Os, want ≤ 1+ɛ = %.2f", avg, 1+eps)
	}
	if worst > 2 {
		t.Errorf("worst successful search = %d I/Os, want ≤ 2", worst)
	}
}

func TestDynamicInsertAveragesBelowTwoPlusEpsilon(t *testing.T) {
	eps := 0.5
	dd, m := newDynamic(t, 20, 64, DynamicConfig{Capacity: 2000, SatWords: 1, Epsilon: eps, Seed: 7})
	rng := rand.New(rand.NewSource(8))
	before := m.Stats()
	n := 2000
	for i := 0; i < n; i++ {
		if err := dd.Insert(pdm.Word(rng.Uint64()%(1<<44)), []pdm.Word{1}); err != nil {
			t.Fatal(err)
		}
	}
	avg := float64(m.Stats().Sub(before).ParallelIOs) / float64(n)
	if avg > 2+eps {
		t.Errorf("insert average = %.3f I/Os, want ≤ 2+ɛ = %.2f", avg, 2+eps)
	}
}

func TestDynamicLevelOccupancyDecays(t *testing.T) {
	dd, _ := newDynamic(t, 20, 64, DynamicConfig{Capacity: 3000, SatWords: 1, Seed: 9})
	rng := rand.New(rand.NewSource(10))
	for i := 0; i < 3000; i++ {
		if err := dd.Insert(pdm.Word(rng.Uint64()%(1<<44)), []pdm.Word{1}); err != nil {
			t.Fatal(err)
		}
	}
	counts := dd.LevelCounts()
	if counts[0] < 2900 {
		t.Errorf("level 0 holds %d of 3000; first-fit should park almost everything there", counts[0])
	}
	for i := 1; i < len(counts); i++ {
		if counts[i] > counts[i-1] {
			t.Errorf("level counts %v not decaying", counts)
			break
		}
	}
}

func TestDynamicLargeSatelliteChains(t *testing.T) {
	dd, _ := newDynamic(t, 20, 128, DynamicConfig{Capacity: 300, SatWords: 20, Seed: 11})
	rng := rand.New(rand.NewSource(12))
	oracle := map[pdm.Word][]pdm.Word{}
	for i := 0; i < 300; i++ {
		k := pdm.Word(rng.Uint64() % (1 << 40))
		sat := make([]pdm.Word, 20)
		for j := range sat {
			sat[j] = rng.Uint64()
		}
		if err := dd.Insert(k, sat); err != nil {
			t.Fatal(err)
		}
		oracle[k] = sat
	}
	for k, want := range oracle {
		got, ok := dd.Lookup(k)
		if !ok {
			t.Fatalf("key %d lost", k)
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("key %d word %d = %d, want %d", k, j, got[j], want[j])
			}
		}
	}
}

func TestDynamicCapacityEnforced(t *testing.T) {
	dd, _ := newDynamic(t, 20, 64, DynamicConfig{Capacity: 10, SatWords: 0, Seed: 13})
	for i := 0; i < 10; i++ {
		if err := dd.Insert(pdm.Word(i*7+1), nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := dd.Insert(999, nil); err != ErrFull {
		t.Errorf("over-capacity insert: %v, want ErrFull", err)
	}
	// Updates still allowed at capacity.
	if err := dd.Insert(8, nil); err != nil {
		t.Errorf("update at capacity: %v", err)
	}
}

func TestDynamicConfigErrors(t *testing.T) {
	mOdd := pdm.NewMachine(pdm.Config{D: 13, B: 64})
	if _, err := NewDynamic(mOdd, DynamicConfig{Capacity: 10}); err == nil {
		t.Error("odd disk count accepted")
	}
	mSmall := pdm.NewMachine(pdm.Config{D: 8, B: 64}) // d=4 ≤ 6(1+1/ɛ)
	if _, err := NewDynamic(mSmall, DynamicConfig{Capacity: 10}); err == nil {
		t.Error("d too small for Theorem 7 accepted")
	}
	m := pdm.NewMachine(pdm.Config{D: 40, B: 64})
	for _, cfg := range []DynamicConfig{
		{Capacity: 0},
		{Capacity: 10, SatWords: -1},
		{Capacity: 10, Epsilon: -0.5},
		{Capacity: 10, Ratio: 1.5},
		{Capacity: 10, Slack: 0.2},
	} {
		if _, err := NewDynamic(m, cfg); err == nil {
			t.Errorf("bad config accepted: %+v", cfg)
		}
	}
	mTiny := pdm.NewMachine(pdm.Config{D: 40, B: 2})
	if _, err := NewDynamic(mTiny, DynamicConfig{Capacity: 10, SatWords: 64}); err == nil {
		t.Error("field larger than block accepted")
	}
}

func TestDynamicDeleteFreesSpaceForReuse(t *testing.T) {
	// Fill to capacity, delete everything, fill again: space is reused.
	dd, _ := newDynamic(t, 20, 64, DynamicConfig{Capacity: 200, SatWords: 1, Seed: 14})
	for round := 0; round < 3; round++ {
		keys := make([]pdm.Word, 200)
		for i := range keys {
			keys[i] = pdm.Word(round*100000 + i*13 + 1)
			if err := dd.Insert(keys[i], []pdm.Word{pdm.Word(i)}); err != nil {
				t.Fatalf("round %d insert %d: %v", round, i, err)
			}
		}
		for _, k := range keys {
			if !dd.Delete(k) {
				t.Fatalf("round %d: delete failed", round)
			}
		}
		if dd.Len() != 0 {
			t.Fatalf("round %d: Len = %d", round, dd.Len())
		}
		for _, c := range dd.LevelCounts() {
			if c != 0 {
				t.Fatalf("round %d: level counts %v nonzero", round, dd.LevelCounts())
			}
		}
	}
}

func TestDynamicZeroSatellite(t *testing.T) {
	dd, _ := newDynamic(t, 20, 64, DynamicConfig{Capacity: 100, SatWords: 0, Seed: 15})
	if err := dd.Insert(3, nil); err != nil {
		t.Fatal(err)
	}
	if sat, ok := dd.Lookup(3); !ok || len(sat) != 0 {
		t.Errorf("zero-satellite lookup = %v, %v", sat, ok)
	}
}

// Property: DynamicDict agrees with a map oracle under random workloads.
func TestPropertyDynamicMatchesMap(t *testing.T) {
	f := func(ops []uint32) bool {
		m := pdm.NewMachine(pdm.Config{D: 40, B: 64})
		dd, err := NewDynamic(m, DynamicConfig{Capacity: 200, SatWords: 1, Seed: 16})
		if err != nil {
			return false
		}
		oracle := map[pdm.Word]pdm.Word{}
		for _, op := range ops {
			k := pdm.Word(op % 131)
			switch op % 3 {
			case 0:
				v := pdm.Word(op)
				if dd.Insert(k, []pdm.Word{v}) == nil {
					oracle[k] = v
				}
			case 1:
				_, okOracle := oracle[k]
				if dd.Delete(k) != okOracle {
					return false
				}
				delete(oracle, k)
			case 2:
				sat, ok := dd.Lookup(k)
				v, okOracle := oracle[k]
				if ok != okOracle || (ok && sat[0] != v) {
					return false
				}
			}
		}
		return dd.Len() == len(oracle)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Package core implements the paper's dictionaries for the parallel disk
// model:
//
//   - BasicDict — Section 4.1: the load-balancing dictionary with O(1)
//     worst-case lookups and updates (1-I/O lookups when a bucket fits in
//     a block), in both the k = 1 and k = d/2 (bandwidth) variants.
//   - StaticDict — Section 4.2 / Theorem 6: the one-probe static
//     dictionary built by unique-neighbor assignment, cases (a) and (b).
//   - DynamicDict — Section 4.3 / Theorem 7: the geometric cascade of
//     retrieval arrays with first-fit insertion; unsuccessful searches
//     take 1 I/O, successful searches 1+ɛ I/Os on average, updates 2+ɛ.
//   - Dict — the fully dynamic wrapper of Section 4's introduction:
//     worst-case global rebuilding (Overmars–van Leeuwen) plus deletions,
//     running two structures side by side.
//
// All structures are deterministic: every decision is a function of the
// configured seed and the operation sequence.
package core

import (
	"errors"
	"fmt"

	"pdmdict/internal/pdm"
)

// ErrFull is returned when an insertion cannot be placed without
// violating the structure's capacity guarantees. With parameters in the
// regime the paper's lemmas cover this does not happen; the fully
// dynamic wrapper reacts by rebuilding into a larger structure.
var ErrFull = errors.New("core: dictionary capacity exhausted")

// region is a rectangular view of a machine: nDisks consecutive disks
// starting at disk0, with blocks offset by block0. The composite
// dictionaries (Theorem 6 case (a), Theorem 7) place their
// sub-dictionaries on disjoint regions of one machine so that one probe
// of each sub-structure fits in a single parallel I/O.
type region struct {
	m      *pdm.Machine
	disk0  int
	nDisks int
	block0 int
}

func (r region) addr(disk, block int) pdm.Addr {
	if disk < 0 || disk >= r.nDisks {
		panic(fmt.Sprintf("core: region disk %d out of [0,%d)", disk, r.nDisks))
	}
	return pdm.Addr{Disk: r.disk0 + disk, Block: r.block0 + block}
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

package core

import (
	"errors"
	"fmt"
	"testing"

	"pdmdict/internal/fault"
	"pdmdict/internal/pdm"
)

// subsets returns every size-element subset of {0..d-1}.
func subsets(d, size int) [][]int {
	if size == 0 {
		return [][]int{nil}
	}
	var out [][]int
	var rec func(start int, cur []int)
	rec = func(start int, cur []int) {
		if len(cur) == size {
			out = append(out, append([]int(nil), cur...))
			return
		}
		for i := start; i <= d-(size-len(cur)); i++ {
			rec(i+1, append(cur, i))
		}
	}
	rec(0, nil)
	return out
}

func buildReplicated(t *testing.T, d, b, n, k int) (*pdm.Machine, *BasicDict) {
	t.Helper()
	m := pdm.NewMachine(pdm.Config{D: d, B: b})
	bd, err := NewBasic(m, BasicConfig{Capacity: n, SatWords: 3, K: k, Replicate: true, Seed: 7})
	if err != nil {
		t.Fatalf("NewBasic(k=%d): %v", k, err)
	}
	for i := 0; i < n; i++ {
		key := pdm.Word(i)*2654435761 + 1
		if err := bd.Insert(key, []pdm.Word{pdm.Word(i), key, key ^ 0xabc}); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	return m, bd
}

// The replication guarantee: a k-replicated dictionary answers every
// lookup correctly under EVERY (k−1)-subset of failed disks, for every
// k from 2 to d.
func TestReplicatedLookupUnderAllFailureSubsets(t *testing.T) {
	const d, b, n = 6, 64, 250
	for k := 2; k <= d; k++ {
		t.Run(fmt.Sprintf("k=%d", k), func(t *testing.T) {
			m, bd := buildReplicated(t, d, b, n, k)
			plan := fault.NewPlan(1)
			m.SetFaultInjector(plan)
			for _, failed := range subsets(d, k-1) {
				plan.Reset()
				for _, disk := range failed {
					plan.FailDisk(disk)
				}
				for i := 0; i < n; i++ {
					key := pdm.Word(i)*2654435761 + 1
					sat, ok, err := bd.LookupTry(key)
					if err != nil || !ok {
						t.Fatalf("failed=%v key %d: ok=%v err=%v", failed, i, ok, err)
					}
					if sat[0] != pdm.Word(i) || sat[1] != key || sat[2] != key^0xabc {
						t.Fatalf("failed=%v key %d: wrong satellite %v", failed, i, sat)
					}
				}
				// An absent key must never be reported present; with disks
				// down it may legitimately be inconclusive instead.
				if sat, ok, err := bd.LookupTry(0xdeadbeef); ok {
					t.Fatalf("failed=%v: absent key found: %v %v", failed, sat, err)
				}
			}
		})
	}
}

// With k disks failed (one more than tolerated), some lookups must
// surface an error rather than claim a definitive absence.
func TestBeyondToleranceIsInconclusiveNotWrong(t *testing.T) {
	const d, b, n, k = 6, 64, 250, 2
	m, bd := buildReplicated(t, d, b, n, k)
	plan := fault.NewPlan(1)
	m.SetFaultInjector(plan)
	plan.FailDisk(0)
	plan.FailDisk(1)
	sawErr := false
	for i := 0; i < n; i++ {
		key := pdm.Word(i)*2654435761 + 1
		sat, ok, err := bd.LookupTry(key)
		switch {
		case ok && sat[1] != key:
			t.Fatalf("key %d: wrong data under excess failures", i)
		case !ok && err == nil:
			t.Fatalf("key %d: definitive absence with %d disks failed", i, k)
		case err != nil:
			if !errors.Is(err, pdm.ErrDiskFailed) {
				t.Fatalf("key %d: error does not wrap ErrDiskFailed: %v", i, err)
			}
			sawErr = true
		}
	}
	if !sawErr {
		t.Fatal("no lookup was inconclusive with both replica stripes failed")
	}
}

// Repair must restore a wiped disk bit-identically: canonical bucket
// layout makes block contents a pure function of the record set.
func TestRepairBitIdentical(t *testing.T) {
	const d, b, n = 6, 64, 250
	for _, k := range []int{2, 3, d} {
		t.Run(fmt.Sprintf("k=%d", k), func(t *testing.T) {
			m, bd := buildReplicated(t, d, b, n, k)
			blocks := bd.BlocksPerDisk()
			for _, disk := range []int{0, d - 1} {
				before := make([][]pdm.Word, blocks)
				for blk := 0; blk < blocks; blk++ {
					before[blk] = m.Peek(pdm.Addr{Disk: disk, Block: blk})
				}
				m.WipeDisk(disk)
				if err := bd.Repair(disk); err != nil {
					t.Fatalf("Repair(%d): %v", disk, err)
				}
				for blk := 0; blk < blocks; blk++ {
					after := m.Peek(pdm.Addr{Disk: disk, Block: blk})
					for w := range after {
						if after[w] != before[blk][w] {
							t.Fatalf("disk %d block %d word %d: %#x != %#x",
								disk, blk, w, after[w], before[blk][w])
						}
					}
				}
			}
			if bad := bd.Scrub(); len(bad) != 0 {
				t.Fatalf("scrub after repair found %v", bad)
			}
			if m.Degraded() {
				t.Fatal("clean scrub did not clear the degraded flag")
			}
		})
	}
}

// Repair with a disk failed mid-way must not mask the failure.
func TestRepairAbortsOnPermanentError(t *testing.T) {
	const d, b, n, k = 6, 64, 100, 2
	m, bd := buildReplicated(t, d, b, n, k)
	plan := fault.NewPlan(1)
	m.SetFaultInjector(plan)
	plan.FailDisk(1) // a surviving source disk is down too
	m.WipeDisk(0)
	if err := bd.Repair(0); err == nil {
		t.Fatal("Repair succeeded while a source disk was failed")
	}
}

// Transient faults are retried invisibly; lookups stay correct.
func TestLookupTryRetriesTransient(t *testing.T) {
	const d, b, n, k = 6, 64, 250, 2
	m, bd := buildReplicated(t, d, b, n, k)
	plan := fault.NewPlan(99)
	m.SetFaultInjector(plan)
	plan.SetTransient(0.3)
	for i := 0; i < n; i++ {
		key := pdm.Word(i)*2654435761 + 1
		sat, ok, err := bd.LookupTry(key)
		if err != nil || !ok || sat[1] != key {
			t.Fatalf("key %d under transient faults: ok=%v err=%v", i, ok, err)
		}
	}
	if m.FaultCount() == 0 {
		t.Fatal("transient plan injected nothing at p=0.3")
	}
}

// A corrupted replica is detected by its checksum and the lookup falls
// through to the intact copy; a scrub pinpoints the bad block.
func TestCorruptReplicaIsMaskedAndScrubFindsIt(t *testing.T) {
	const d, b, n, k = 6, 64, 100, 2
	m, bd := buildReplicated(t, d, b, n, k)
	// Find a materialized block to corrupt.
	var victim pdm.Addr
	found := false
	for blk := 0; blk < bd.BlocksPerDisk() && !found; blk++ {
		a := pdm.Addr{Disk: 0, Block: blk}
		for _, w := range m.Peek(a) {
			if w != 0 {
				victim, found = a, true
				break
			}
		}
	}
	if !found {
		t.Fatal("no materialized block on disk 0")
	}
	plan := fault.NewPlan(5)
	m.SetFaultInjector(plan)
	plan.CorruptAt(victim, 17)
	for i := 0; i < n; i++ {
		key := pdm.Word(i)*2654435761 + 1
		sat, ok, err := bd.LookupTry(key)
		if err != nil || !ok || sat[1] != key {
			t.Fatalf("key %d with one corrupt replica: ok=%v err=%v", i, ok, err)
		}
	}
	bad := bd.Scrub()
	if len(bad) != 1 || bad[0] != victim {
		t.Fatalf("scrub = %v, want [%v]", bad, victim)
	}
}

package core

import (
	"strings"
	"testing"

	"pdmdict/internal/pdm"
)

// Accessor and string-representation coverage: small but part of the
// public surface, so they get pinned.
func TestAccessors(t *testing.T) {
	mb := pdm.NewMachine(pdm.Config{D: 8, B: 32})
	bd, err := NewBasic(mb, BasicConfig{Capacity: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if bd.Capacity() != 10 {
		t.Errorf("Basic.Capacity = %d", bd.Capacity())
	}

	md := pdm.NewMachine(pdm.Config{D: 4, B: 32})
	dd, err := NewDirect(md, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if dd.BlocksPerDisk() < 1 {
		t.Errorf("Direct.BlocksPerDisk = %d", dd.BlocksPerDisk())
	}

	mdy := pdm.NewMachine(pdm.Config{D: 40, B: 64})
	dy, err := NewDynamic(mdy, DynamicConfig{Capacity: 50, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if dy.Levels() < 1 || dy.BlocksPerDisk() < 1 {
		t.Errorf("Dynamic accessors: levels=%d blocks=%d", dy.Levels(), dy.BlocksPerDisk())
	}

	mop := pdm.NewMachine(pdm.Config{D: 16, B: 64})
	op, err := NewOneProbe(mop, OneProbeConfig{Capacity: 50, Levels: 3, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if op.Levels() != 3 || op.BlocksPerDisk() < 1 {
		t.Errorf("OneProbe accessors: levels=%d blocks=%d", op.Levels(), op.BlocksPerDisk())
	}

	ms := pdm.NewMachine(pdm.Config{D: 6, B: 32})
	sd, err := BuildStatic(ms, StaticConfig{Seed: 4}, makeRecords(10, 0, 5))
	if err != nil {
		t.Fatal(err)
	}
	if sd.Degree() != 6 {
		t.Errorf("Static.Degree = %d", sd.Degree())
	}
	if sd.Graph() == nil {
		t.Error("Static.Graph nil")
	}
	if CaseA.String() != "case-a" || CaseB.String() != "case-b" {
		t.Error("StaticCase strings wrong")
	}
	if !strings.Contains(StaticCase(9).String(), "9") {
		t.Error("unknown StaticCase string")
	}
}

func TestRegionAddrPanicsOutOfRange(t *testing.T) {
	r := region{m: pdm.NewMachine(pdm.Config{D: 4, B: 4}), disk0: 1, nDisks: 2}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range region disk did not panic")
		}
	}()
	r.addr(2, 0)
}

func TestSnapshotWriterErrorsPropagate(t *testing.T) {
	m := pdm.NewMachine(pdm.Config{D: 4, B: 16})
	bd, _ := NewBasic(m, BasicConfig{Capacity: 10, Seed: 6})
	if err := bd.Snapshot(failingWriter{}); err == nil {
		t.Error("Basic snapshot to failing writer succeeded")
	}
	m2 := pdm.NewMachine(pdm.Config{D: 40, B: 64})
	dd, _ := NewDynamic(m2, DynamicConfig{Capacity: 10, Seed: 7})
	if err := dd.Snapshot(failingWriter{}); err == nil {
		t.Error("Dynamic snapshot to failing writer succeeded")
	}
	d, _ := NewDict(DictConfig{InitialCapacity: 10, Seed: 8})
	if err := d.Snapshot(failingWriter{}); err == nil {
		t.Error("Dict snapshot to failing writer succeeded")
	}
}

type failingWriter struct{}

func (failingWriter) Write([]byte) (int, error) {
	return 0, errWrite
}

var errWrite = &writeError{}

type writeError struct{}

func (*writeError) Error() string { return "synthetic write failure" }

// FuzzChainCodec: encode/decode round trip over arbitrary stripe sets
// and satellite payloads must be lossless, and the decoder must never
// panic on what the encoder produces.
func FuzzChainCodec(f *testing.F) {
	f.Add(uint8(5), uint8(3), []byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add(uint8(20), uint8(14), []byte{})
	f.Fuzz(func(t *testing.T, dRaw, tRaw uint8, satRaw []byte) {
		d := int(dRaw%30) + 3
		tt := int(tRaw)%d + 1
		// Distinct ascending stripes: take the first tt of [0,d).
		stripes := make([]int, tt)
		for i := range stripes {
			stripes[i] = i * d / tt
		}
		// Deduplicate (integer division may repeat).
		uniq := stripes[:1]
		for _, s := range stripes[1:] {
			if s > uniq[len(uniq)-1] {
				uniq = append(uniq, s)
			}
		}
		stripes = uniq
		tt = len(stripes)

		var sat []pdm.Word
		for i := 0; i+8 <= len(satRaw) && len(sat) < 8; i += 8 {
			var w pdm.Word
			for j := 0; j < 8; j++ {
				w |= pdm.Word(satRaw[i+j]) << (8 * j)
			}
			sat = append(sat, w)
		}
		fieldBits := chainFieldBits(64*len(sat), tt, d)
		fieldWords := (fieldBits + 63) / 64
		if fieldWords == 0 {
			fieldWords = 1
		}
		fieldBits = 64 * fieldWords

		contents := encodeChain(fieldBits, fieldWords, stripes, sat)
		fields := make([][]pdm.Word, d)
		for i := range fields {
			fields[i] = make([]pdm.Word, fieldWords)
		}
		for p, s := range stripes {
			copy(fields[s], contents[p])
		}
		got, ok := decodeChain(fieldBits, len(sat), fields, stripes[0])
		if !ok {
			t.Fatalf("decode failed: d=%d t=%d sat=%d", d, tt, len(sat))
		}
		for i := range sat {
			if got[i] != sat[i] {
				t.Fatalf("word %d = %d, want %d", i, got[i], sat[i])
			}
		}
	})
}

package core

import (
	"errors"
	"fmt"
	"sort"

	"pdmdict/internal/bitpack"
	"pdmdict/internal/bucket"
	"pdmdict/internal/expander"
	"pdmdict/internal/extsort"
	"pdmdict/internal/obs"
	"pdmdict/internal/pdm"
)

// StaticCase selects between the two layouts of Theorem 6.
type StaticCase int

const (
	// CaseB is Theorem 6(b): d disks; every array field carries an
	// identifier of the key it belongs to, and lookups decode by
	// majority identifier. It makes no assumption on the block size.
	CaseB StaticCase = iota
	// CaseA is Theorem 6(a): 2d disks split between a membership
	// sub-dictionary (Section 4.1, storing a head pointer per key) and a
	// retrieval array whose fields chain to each other with unary-coded
	// relative pointers. It assumes O(log n) keys fit in a block and is
	// the more space-efficient layout.
	CaseA
)

// String names the case as in the paper.
func (c StaticCase) String() string {
	switch c {
	case CaseA:
		return "case-a"
	case CaseB:
		return "case-b"
	default:
		return fmt.Sprintf("StaticCase(%d)", int(c))
	}
}

// ErrDuplicateKey is returned by BuildStatic when the input contains the
// same key twice.
var ErrDuplicateKey = errors.New("core: duplicate key in static input")

// ErrExpansion is returned when the peeling construction cannot make
// progress, i.e. the configured graph is not expanding enough on the
// given key set. Retrying with a different Seed or larger Slack
// resolves it.
var ErrExpansion = errors.New("core: expander assignment failed to make progress")

// StaticConfig parameterizes BuildStatic.
type StaticConfig struct {
	// SatWords is the satellite size per key, in words.
	SatWords int
	// Case selects the Theorem 6 layout; the zero value is CaseB.
	Case StaticCase
	// Slack sets the field array size: v = Slack·n·d fields (the paper's
	// v = O(nd)). 0 defaults to 6, which matches the ε = 1/12 regime the
	// proof of Theorem 6 fixes: a random-family graph with v = 6nd has
	// expected edge-collision mass ≈ (nd)²/2v = nd/12.
	Slack float64
	// Universe is u; 0 defaults to 2^63.
	Universe uint64
	// Seed selects the expanders.
	Seed uint64
	// MemStripes is the internal-memory size for the construction sorts,
	// in stripes. 0 defaults to 8.
	MemStripes int
	// MaxRounds bounds the peeling recursion depth. 0 defaults to 64.
	MaxRounds int
}

func (c *StaticConfig) normalize() error {
	if c.SatWords < 0 {
		return fmt.Errorf("core: negative SatWords")
	}
	if c.Slack == 0 {
		c.Slack = 6
	}
	// NaN-proof: the negated form also rejects NaN from corrupt snapshots.
	if !(c.Slack >= 1 && c.Slack <= maxConfigSlack) {
		return fmt.Errorf("core: Slack %v outside [1, %d]", c.Slack, maxConfigSlack)
	}
	if c.Universe == 0 {
		c.Universe = 1 << 63
	}
	if c.MemStripes == 0 {
		c.MemStripes = 8
	}
	if c.MemStripes < 3 {
		return fmt.Errorf("core: MemStripes %d below 3", c.MemStripes)
	}
	if c.MaxRounds == 0 {
		c.MaxRounds = 64
	}
	return nil
}

// StaticDict is the one-probe static dictionary of Section 4.2. Lookups
// cost exactly one parallel I/O — for present keys the satellite is
// returned from that single probe; for absent keys the probe itself
// proves absence. The structure is immutable after construction; the
// dynamic cascade of Section 4.3 (DynamicDict) is its mutable sibling.
type StaticDict struct {
	m     *pdm.Machine
	cfg   StaticConfig
	d     int
	n     int
	t     int // fields assigned per key, ⌈2d/3⌉
	graph *expander.Family

	fieldWords     int
	fieldBits      int // exact bit budget per field
	idBits         int // case B: identifier width, ⌈lg(n+1)⌉
	fieldsPerBlock int
	stripeFields   int
	arr            region

	memb *BasicDict // case A only

	// ConstructionIOs records the parallel I/O cost of BuildStatic,
	// for comparison against the cost of sorting nd records (Theorem 6
	// says construction is proportional to that sort).
	ConstructionIOs pdm.Stats
}

// Empty-field encoding: both cases read an all-zero field as empty —
// CaseB packs id+1 into the leading ⌈lg(n+1)⌉ bits, CaseA sets a used
// bit — so fresh (zeroed) blocks need no formatting pass.

// BuildStatic constructs the dictionary over the given records on
// machine m. For CaseB the expander degree d is m.D(); for CaseA it is
// m.D()/2 (the other half of the disks holds the membership
// sub-dictionary), and m.D() must be even.
func BuildStatic(m *pdm.Machine, cfg StaticConfig, recs []bucket.Record) (*StaticDict, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	d := m.D()
	if cfg.Case == CaseA {
		if m.D()%2 != 0 {
			return nil, fmt.Errorf("core: CaseA needs an even disk count, got %d", m.D())
		}
		d = m.D() / 2
	}
	if d < 3 {
		return nil, fmt.Errorf("core: degree %d too small (need d ≥ 3)", d)
	}
	n := len(recs)
	t := ceilDiv(2*d, 3)

	sd := &StaticDict{m: m, cfg: cfg, d: d, n: n, t: t}
	if err := sd.layout(); err != nil {
		return nil, err
	}
	defer m.Span(obs.TagBuild)()
	start := m.Stats()
	if err := sd.construct(recs); err != nil {
		return nil, err
	}
	sd.ConstructionIOs = m.Stats().Sub(start)
	return sd, nil
}

// layout fixes field geometry and creates the sub-structures.
func (sd *StaticDict) layout() error {
	cfg := sd.cfg
	sigma := 64 * cfg.SatWords
	switch cfg.Case {
	case CaseB:
		// Field = identifier of ⌈lg(n+1)⌉ bits (the paper's "identifiers
		// of lg n bits, unique for each element of S"; value id+1 so an
		// all-zero field reads as empty) followed by this field's share
		// of the satellite bits.
		sd.idBits = bitsFor(sd.n + 1)
		sd.fieldBits = sd.idBits + ceilDiv(sigma, sd.t)
		sd.fieldWords = ceilDiv(sd.fieldBits, 64)
		if sd.fieldWords == 0 {
			sd.fieldWords = 1
		}
		sd.fieldBits = 64 * sd.fieldWords
	case CaseA:
		// Per chain: t used bits + unary codes totalling ≤ (d−1)+t bits,
		// leaving t·fieldBits − (2t+d−1) data bits; that must cover σ.
		sd.fieldBits = chainFieldBits(sigma, sd.t, sd.d)
		sd.fieldWords = ceilDiv(sd.fieldBits, 64)
		if sd.fieldWords == 0 {
			sd.fieldWords = 1
		}
		sd.fieldBits = 64 * sd.fieldWords // use the whole allocation
	default:
		return fmt.Errorf("core: unknown static case %v", cfg.Case)
	}
	if sd.fieldWords > sd.m.B() {
		return fmt.Errorf("core: field of %d words exceeds block size %d", sd.fieldWords, sd.m.B())
	}
	sd.fieldsPerBlock = sd.m.B() / sd.fieldWords

	nEff := sd.n
	if nEff == 0 {
		nEff = 1
	}
	// v = Slack·n·d fields total, i.e. Slack·n per stripe.
	sd.stripeFields = int(cfg.Slack * float64(nEff))
	// Round the stripe up to whole blocks so addressing is uniform.
	sd.stripeFields = ceilDiv(sd.stripeFields, sd.fieldsPerBlock) * sd.fieldsPerBlock
	sd.graph = expander.NewFamily(cfg.Universe, sd.d, sd.stripeFields, cfg.Seed)

	switch cfg.Case {
	case CaseB:
		sd.arr = region{m: sd.m, disk0: 0, nDisks: sd.d}
	case CaseA:
		sd.arr = region{m: sd.m, disk0: sd.d, nDisks: sd.d}
		memb, err := newBasicAt(region{m: sd.m, disk0: 0, nDisks: sd.d}, BasicConfig{
			Capacity: nEff,
			SatWords: 1, // head pointer
			Universe: cfg.Universe,
			Seed:     cfg.Seed + 1,
		})
		if err != nil {
			return err
		}
		sd.memb = memb
	}
	return nil
}

// Len returns the number of keys stored.
func (sd *StaticDict) Len() int { return sd.n }

// Degree returns the expander degree d.
func (sd *StaticDict) Degree() int { return sd.d }

// Graph returns the retrieval array's expander.
func (sd *StaticDict) Graph() *expander.Family { return sd.graph }

// FieldsPerKey returns t = ⌈2d/3⌉, the number of unique-neighbor fields
// assigned to each key.
func (sd *StaticDict) FieldsPerKey() int { return sd.t }

// arrayBlocksPerDisk is the retrieval array's footprint per disk.
func (sd *StaticDict) arrayBlocksPerDisk() int {
	return ceilDiv(sd.stripeFields, sd.fieldsPerBlock)
}

// BlocksPerDisk returns the structure's per-disk space footprint
// (maximum over its regions).
func (sd *StaticDict) BlocksPerDisk() int {
	b := sd.arrayBlocksPerDisk()
	if sd.memb != nil && sd.memb.BlocksPerDisk() > b {
		b = sd.memb.BlocksPerDisk()
	}
	return b
}

// fieldAddr locates the block containing field j of stripe i.
func (sd *StaticDict) fieldAddr(i, j int) pdm.Addr {
	return sd.arr.addr(i, j/sd.fieldsPerBlock)
}

// fieldSlot returns the word offset of field j inside its block.
func (sd *StaticDict) fieldSlot(j int) int {
	return (j % sd.fieldsPerBlock) * sd.fieldWords
}

// Lookup returns a copy of x's satellite data and whether x is present.
// Cost: exactly one parallel I/O in both cases — CaseB reads the d
// blocks holding Γ(x)'s fields; CaseA additionally reads the d
// membership buckets in the same batch, on its other d disks.
func (sd *StaticDict) Lookup(x pdm.Word) ([]pdm.Word, bool) {
	defer sd.m.Span(obs.TagLookup)()
	d := sd.d
	addrs := make([]pdm.Addr, 0, 2*d)
	if sd.memb != nil {
		addrs = sd.memb.probeAddrs(x, addrs)
	}
	membLen := len(addrs)
	js := make([]int, d)
	for i := 0; i < d; i++ {
		js[i] = sd.graph.StripeNeighbor(uint64(x), i)
		addrs = append(addrs, sd.fieldAddr(i, js[i]))
	}
	flat := sd.m.BatchRead(addrs) // the single parallel I/O
	fields := make([][]pdm.Word, d)
	for i := 0; i < d; i++ {
		slot := sd.fieldSlot(js[i])
		fields[i] = flat[membLen+i][slot : slot+sd.fieldWords]
	}
	switch sd.cfg.Case {
	case CaseB:
		return sd.decodeMajority(fields)
	default:
		membSat, ok := sd.memb.lookupInBlocks(x, flat[:membLen])
		if !ok {
			return nil, false
		}
		return decodeChain(sd.fieldBits, sd.cfg.SatWords, fields, int(membSat[0]))
	}
}

// Contains reports presence at the same single-I/O cost as Lookup.
func (sd *StaticDict) Contains(x pdm.Word) bool {
	_, ok := sd.Lookup(x)
	return ok
}

// decodeMajority implements the CaseB read path: if one identifier
// appears in more than half of the d fields, the data bits of those
// fields (in stripe order) are the satellite. The paper notes no key
// comparison is needed: two keys share at most εd < d/2 neighbors.
// Identifiers are ⌈lg(n+1)⌉-bit values packed at the head of each field
// (0 = empty).
func (sd *StaticDict) decodeMajority(fields [][]pdm.Word) ([]pdm.Word, bool) {
	ids := make([]uint64, len(fields))
	counts := make(map[uint64]int, sd.d)
	var majority uint64
	for i, f := range fields {
		id := bitpack.NewReader(f, sd.fieldBits).ReadBits(sd.idBits)
		ids[i] = id
		if id == 0 {
			continue // empty field
		}
		counts[id]++
		if counts[id]*2 > sd.d {
			majority = id
		}
	}
	if majority == 0 {
		return nil, false
	}
	need := 64 * sd.cfg.SatWords
	out := bitpack.NewWriter()
	for i, f := range fields {
		if ids[i] != majority {
			continue
		}
		r := bitpack.NewReader(f, sd.fieldBits)
		r.ReadBits(sd.idBits)
		take := sd.fieldBits - sd.idBits
		if take > need {
			take = need
		}
		for take > 0 {
			c := take
			if c > 64 {
				c = 64
			}
			out.WriteBits(r.ReadBits(c), c)
			take -= c
			need -= c
		}
		if need == 0 {
			break
		}
	}
	if need > 0 {
		return nil, false // malformed; treat as absent
	}
	sat := make([]pdm.Word, sd.cfg.SatWords)
	copy(sat, out.Words())
	return sat, true
}

// bitsFor returns the number of bits needed to represent values up to x.
func bitsFor(x int) int {
	b := 0
	for v := x; v > 0; v >>= 1 {
		b++
	}
	if b == 0 {
		b = 1
	}
	return b
}

// ---------------------------------------------------------------------
// Construction (Section 4.2, "Improving the construction"): a chain of
// external sorts and sequential passes over scratch stripes, so the
// measured I/O cost tracks the cost of sorting nd records.

type buildState struct {
	sd      *StaticDict
	scratch int // next free stripe
	asgVecs []*extsort.Vec
	heads   []pdm.Word // CaseA: interleaved key, headStripe pairs
}

func (bs *buildState) alloc(stripes int) int {
	s := bs.scratch
	bs.scratch += stripes
	return s
}

// stripesFor sizes a scratch region for a vector of the given word
// count, including the slack Sort needs for run alignment (every scratch
// vector here may be sorted in place).
func (sd *StaticDict) stripesFor(words int) int {
	sw := sd.m.D() * sd.m.B()
	s := ceilDiv(words, sw)
	return s + ceilDiv(s, sd.cfg.MemStripes) + 2
}

func (sd *StaticDict) construct(recs []bucket.Record) error {
	for _, r := range recs {
		if len(r.Sat) != sd.cfg.SatWords {
			return fmt.Errorf("core: record with %d satellite words, config says %d", len(r.Sat), sd.cfg.SatWords)
		}
		if uint64(r.Key) >= sd.cfg.Universe {
			return fmt.Errorf("core: key %d outside universe %d", r.Key, sd.cfg.Universe)
		}
	}
	if sd.n == 0 {
		return nil
	}

	bs := &buildState{sd: sd, scratch: sd.BlocksPerDisk()}

	// Initial input vector: records [key, id, sat...] sorted by key,
	// with id = rank (ids are the "identifiers of lg n bits" of CaseB;
	// CaseA simply ignores them).
	sorted := make([]bucket.Record, len(recs))
	copy(sorted, recs)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a].Key < sorted[b].Key })
	for i := 1; i < len(sorted); i++ {
		if sorted[i].Key == sorted[i-1].Key {
			return fmt.Errorf("%w: key %d", ErrDuplicateKey, sorted[i].Key)
		}
	}
	inWidth := 2 + sd.cfg.SatWords
	inA := extsort.NewAppender(sd.m, bs.alloc(sd.stripesFor(sd.n*inWidth)), inWidth)
	rec := make([]pdm.Word, inWidth)
	for i, r := range sorted {
		rec[0] = r.Key
		rec[1] = pdm.Word(i)
		copy(rec[2:], r.Sat)
		inA.Append(rec)
	}
	in := inA.Vec()

	// Ping-pong zone for the survivor set, plus fixed zones for the
	// pair vectors and their sort scratch.
	zoneIn2 := bs.alloc(sd.stripesFor(sd.n * inWidth))
	zones := [2]int{in.Start, zoneIn2}
	pairStripes := sd.stripesFor(sd.n * sd.d * 2)
	zoneP := bs.alloc(pairStripes)
	zonePS := bs.alloc(pairStripes)
	zoneUP := bs.alloc(pairStripes)

	for round := 0; in.N > 0; round++ {
		if round >= sd.cfg.MaxRounds {
			return fmt.Errorf("%w: %d keys left after %d rounds", ErrExpansion, in.N, round)
		}
		next, err := sd.peelRound(bs, in, zones[(round+1)%2], zoneP, zonePS, zoneUP)
		if err != nil {
			return err
		}
		if next.N == in.N {
			return fmt.Errorf("%w: no key gained %d unique neighbors (n=%d)", ErrExpansion, sd.t, in.N)
		}
		in = next
	}

	if err := sd.fillArray(bs); err != nil {
		return err
	}
	if sd.memb != nil {
		// Bulk-build the membership sub-dictionary at sort cost instead
		// of 2 I/Os per key — this keeps the whole construction inside
		// Theorem 6's "proportional to sorting" budget.
		membRecs := make([]bucket.Record, 0, len(bs.heads)/2)
		for i := 0; i < len(bs.heads); i += 2 {
			membRecs = append(membRecs, bucket.Record{Key: bs.heads[i], Sat: []pdm.Word{bs.heads[i+1]}})
		}
		scratch := bs.alloc(2*sd.stripesFor(len(membRecs)*5) + 4)
		if err := sd.memb.BulkLoad(membRecs, scratch, sd.cfg.MemStripes); err != nil {
			return fmt.Errorf("core: membership build: %w", err)
		}
	}
	return nil
}

// peelRound performs one level of the recursion: compute unique
// neighbors of the current set, assign fields to the well-covered keys
// S′, and return the vector of survivors S \ S′.
func (sd *StaticDict) peelRound(bs *buildState, in *extsort.Vec, zoneNext, zoneP, zonePS, zoneUP int) (*extsort.Vec, error) {
	m := sd.m

	// Pairs (key, y) for every edge out of the working set, sorted by y
	// (word 1) to expose duplicate right vertices.
	pa := extsort.NewAppender(m, zoneP, 2)
	extsort.Scan(in, func(_ int, rec []pdm.Word) {
		for i := 0; i < sd.d; i++ {
			y := i*sd.stripeFields + sd.graph.StripeNeighbor(uint64(rec[0]), i)
			pa.Append([]pdm.Word{rec[0], pdm.Word(y)})
		}
	})
	pairs := pa.Vec()
	extsort.Sort(pairs, zonePS, sd.cfg.MemStripes, extsort.ByWord(1))

	// Keep only unique neighbor nodes: runs of length one in y.
	ua := extsort.NewAppender(m, zoneUP, 2)
	var prev [2]pdm.Word
	run := 0
	flush := func() {
		if run == 1 {
			ua.Append(prev[:])
		}
	}
	extsort.Scan(pairs, func(_ int, rec []pdm.Word) {
		if run > 0 && rec[1] == prev[1] {
			run++
			return
		}
		flush()
		prev[0], prev[1] = rec[0], rec[1]
		run = 1
	})
	flush()
	unique := ua.Vec()
	// Regroup by key (then y, so chains run in stripe order).
	extsort.Sort(unique, zonePS, sd.cfg.MemStripes, extsort.ByWord(0, 1))

	// Merge-join the unique pairs with the (key-sorted) working set.
	nextA := extsort.NewAppender(m, zoneNext, in.RecWords)
	asgWidth := 2 + sd.fieldWords
	asgA := extsort.NewAppender(m, bs.alloc(sd.stripesFor(in.N*sd.t*asgWidth)), asgWidth)
	ur := extsort.NewVecReader(unique)
	upRec, upOK := ur.Next()
	ys := make([]int, 0, sd.d)
	extsort.Scan(in, func(_ int, rec []pdm.Word) {
		key := rec[0]
		ys = ys[:0]
		for upOK && upRec[0] < key {
			upRec, upOK = ur.Next()
		}
		for upOK && upRec[0] == key {
			ys = append(ys, int(upRec[1]))
			upRec, upOK = ur.Next()
		}
		if len(ys) >= sd.t {
			sd.emitAssignments(bs, asgA, rec, ys[:sd.t])
		} else {
			nextA.Append(rec)
		}
	})
	bs.asgVecs = append(bs.asgVecs, asgA.Vec())
	return nextA.Vec(), nil
}

// emitAssignments writes the t field records for one key. Each
// assignment record is [sortKey, y, field content...], where sortKey
// orders fields block-row-major so the final fill writes whole block
// rows with one parallel I/O each.
func (sd *StaticDict) emitAssignments(bs *buildState, asgA *extsort.Appender, rec []pdm.Word, ys []int) {
	key, id, sat := rec[0], rec[1], rec[2:]
	out := make([]pdm.Word, 2+sd.fieldWords)
	stripeOf := func(y int) int { return y / sd.stripeFields }

	var chain [][]pdm.Word
	var satBits *bitpack.Reader
	switch sd.cfg.Case {
	case CaseA:
		stripes := make([]int, len(ys))
		for p, y := range ys {
			stripes[p] = stripeOf(y)
		}
		chain = encodeChain(sd.fieldBits, sd.fieldWords, stripes, sat)
		bs.heads = append(bs.heads, key, pdm.Word(stripes[0]))
	case CaseB:
		w := bitpack.NewWriter()
		for _, s := range sat {
			w.WriteBits(s, 64)
		}
		satBits = bitpack.NewReader(w.Words(), w.Len())
	}

	for p, y := range ys {
		j := y % sd.stripeFields
		blockRow := j / sd.fieldsPerBlock
		out[0] = pdm.Word(blockRow*sd.d + stripeOf(y))
		out[1] = pdm.Word(y)
		content := out[2:]
		for i := range content {
			content[i] = 0
		}
		switch sd.cfg.Case {
		case CaseB:
			w := bitpack.NewWriter()
			w.WriteBits(uint64(id)+1, sd.idBits)
			take := satBits.Remaining()
			if avail := sd.fieldBits - sd.idBits; take > avail {
				take = avail
			}
			for take > 0 {
				c := take
				if c > 64 {
					c = 64
				}
				w.WriteBits(satBits.ReadBits(c), c)
				take -= c
			}
			copy(content, w.Words())
		case CaseA:
			copy(content, chain[p])
		}
		asgA.Append(out)
	}
}

// fillArray concatenates the per-round assignment vectors, sorts them
// block-row-major, and writes the retrieval array with one batched
// (parallel) write per touched block row. Untouched fields stay zero,
// which is the empty encoding in both cases.
func (sd *StaticDict) fillArray(bs *buildState) error {
	asgWidth := 2 + sd.fieldWords
	total := 0
	for _, v := range bs.asgVecs {
		total += v.N
	}
	if total != sd.n*sd.t {
		return fmt.Errorf("core: assigned %d fields, want %d", total, sd.n*sd.t)
	}
	all := extsort.NewAppender(sd.m, bs.alloc(sd.stripesFor(total*asgWidth)), asgWidth)
	for _, v := range bs.asgVecs {
		extsort.Scan(v, func(_ int, rec []pdm.Word) { all.Append(rec) })
	}
	asg := all.Vec()
	extsort.Sort(asg, bs.alloc(sd.stripesFor(total*asgWidth)), sd.cfg.MemStripes, extsort.ByWord(0, 1))

	curRow := -1
	blocks := make(map[int][]pdm.Word) // stripe → block content
	flush := func() {
		if curRow < 0 || len(blocks) == 0 {
			return
		}
		stripes := make([]int, 0, len(blocks))
		for stripe := range blocks {
			stripes = append(stripes, stripe)
		}
		sort.Ints(stripes) // fix batch order: map order would leak into the trace
		writes := make([]pdm.BlockWrite, 0, len(blocks))
		for _, stripe := range stripes {
			writes = append(writes, pdm.BlockWrite{Addr: sd.arr.addr(stripe, curRow), Data: blocks[stripe]})
		}
		sd.m.BatchWrite(writes)
		for k := range blocks {
			delete(blocks, k)
		}
	}
	extsort.Scan(asg, func(_ int, rec []pdm.Word) {
		sortKey := int(rec[0])
		row, stripe := sortKey/sd.d, sortKey%sd.d
		if row != curRow {
			flush()
			curRow = row
		}
		blk := blocks[stripe]
		if blk == nil {
			blk = make([]pdm.Word, sd.m.B())
			blocks[stripe] = blk
		}
		j := int(rec[1]) % sd.stripeFields
		copy(blk[sd.fieldSlot(j):], rec[2:])
	})
	flush()
	return nil
}

package core

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"pdmdict/internal/pdm"
)

func newDict(t *testing.T, cfg DictConfig) *Dict {
	t.Helper()
	d, err := NewDict(cfg)
	if err != nil {
		t.Fatalf("NewDict: %v", err)
	}
	return d
}

func TestDictBasicOps(t *testing.T) {
	d := newDict(t, DictConfig{InitialCapacity: 50, SatWords: 1, Seed: 1})
	if err := d.Insert(10, []pdm.Word{100}); err != nil {
		t.Fatal(err)
	}
	if sat, ok := d.Lookup(10); !ok || sat[0] != 100 {
		t.Fatalf("Lookup = %v, %v", sat, ok)
	}
	if !d.Delete(10) || d.Delete(10) || d.Contains(10) {
		t.Error("delete sequence wrong")
	}
}

func TestDictGrowsPastInitialCapacity(t *testing.T) {
	d := newDict(t, DictConfig{InitialCapacity: 64, SatWords: 1, Seed: 2})
	n := 1000 // ~4 doublings past the initial capacity
	for i := 0; i < n; i++ {
		if err := d.Insert(pdm.Word(i*131+7), []pdm.Word{pdm.Word(i)}); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	if d.Len() != n {
		t.Fatalf("Len = %d, want %d", d.Len(), n)
	}
	for i := 0; i < n; i++ {
		sat, ok := d.Lookup(pdm.Word(i*131 + 7))
		if !ok || sat[0] != pdm.Word(i) {
			t.Fatalf("key %d lost or wrong after growth: %v %v", i, sat, ok)
		}
	}
	if d.Stats().Rebuilds == 0 {
		t.Error("no rebuilds recorded despite 15x growth")
	}
}

func TestDictWorstCaseOpIsConstant(t *testing.T) {
	// The whole point of worst-case global rebuilding: no operation —
	// including those during migrations — may cost more than a constant
	// number of parallel I/Os.
	d := newDict(t, DictConfig{InitialCapacity: 64, SatWords: 1, MigrateBatch: 4, Seed: 3})
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 2000; i++ {
		k := pdm.Word(rng.Uint64() % (1 << 32))
		switch i % 4 {
		case 0, 1:
			d.Insert(k, []pdm.Word{1})
		case 2:
			d.Lookup(k)
		case 3:
			d.Delete(k)
		}
	}
	// Each migrated key costs ≤ ~10 I/Os (bucket scan + lookup + insert +
	// delete across two machines) and MigrateBatch=4, plus the op itself:
	// a constant, bounded here at 60.
	if w := d.Stats().WorstOp; w > 60 {
		t.Errorf("worst op = %d parallel I/Os; global rebuilding should keep this constant", w)
	}
	if d.Stats().Ops != 2000 {
		t.Errorf("Ops = %d", d.Stats().Ops)
	}
}

func TestDictUpdateDuringMigrationNoDuplicates(t *testing.T) {
	d := newDict(t, DictConfig{InitialCapacity: 32, SatWords: 1, MigrateBatch: 1, Seed: 5})
	// Fill past capacity to force a long-running migration: after 48
	// inserts only 16 of the 32 original keys have migrated.
	keys := make([]pdm.Word, 48)
	for i := range keys {
		keys[i] = pdm.Word(i*17 + 3)
		if err := d.Insert(keys[i], []pdm.Word{pdm.Word(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if !d.Migrating() {
		t.Fatal("expected an in-progress migration")
	}
	// Update every key mid-migration; values must be the new ones and
	// the count must not double.
	for i, k := range keys {
		if err := d.Insert(k, []pdm.Word{pdm.Word(1000 + i)}); err != nil {
			t.Fatal(err)
		}
	}
	if d.Len() != len(keys) {
		t.Fatalf("Len = %d after updates, want %d", d.Len(), len(keys))
	}
	for i, k := range keys {
		sat, ok := d.Lookup(k)
		if !ok || sat[0] != pdm.Word(1000+i) {
			t.Fatalf("key %d: got %v %v, want %d", k, sat, ok, 1000+i)
		}
	}
}

func TestDictDeleteDuringMigration(t *testing.T) {
	d := newDict(t, DictConfig{InitialCapacity: 32, SatWords: 0, MigrateBatch: 1, Seed: 6})
	keys := make([]pdm.Word, 48)
	for i := range keys {
		keys[i] = pdm.Word(i*7 + 1)
		if err := d.Insert(keys[i], nil); err != nil {
			t.Fatal(err)
		}
	}
	for _, k := range keys {
		if !d.Delete(k) {
			t.Fatalf("delete %d failed", k)
		}
	}
	if d.Len() != 0 {
		t.Fatalf("Len = %d after deleting everything", d.Len())
	}
	for _, k := range keys {
		if d.Contains(k) {
			t.Fatalf("key %d survived deletion", k)
		}
	}
}

func TestDictMigrationEventuallyCompletes(t *testing.T) {
	d := newDict(t, DictConfig{InitialCapacity: 32, SatWords: 0, MigrateBatch: 2, Seed: 7})
	for i := 0; i < 33; i++ { // trigger migration
		if err := d.Insert(pdm.Word(i+1), nil); err != nil {
			t.Fatal(err)
		}
	}
	if !d.Migrating() {
		t.Fatal("migration not started")
	}
	// Lookups also drive migration? No — only updates do. Drive with
	// no-op deletes of absent keys.
	for i := 0; i < 100 && d.Migrating(); i++ {
		d.Delete(pdm.Word(1 << 40))
	}
	if d.Migrating() {
		t.Error("migration did not complete after 100 update operations")
	}
	for i := 0; i < 33; i++ {
		if !d.Contains(pdm.Word(i + 1)) {
			t.Fatalf("key %d lost by migration", i+1)
		}
	}
}

func TestDictConfigErrors(t *testing.T) {
	if _, err := NewDict(DictConfig{}); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := NewDict(DictConfig{InitialCapacity: 10, MigrateBatch: -1}); err == nil {
		t.Error("negative MigrateBatch accepted")
	}
	if _, err := NewDict(DictConfig{InitialCapacity: 10, Degree: 4}); err == nil {
		t.Error("degree below the Theorem 7 constraint accepted")
	}
}

func TestDictOverOneProbe(t *testing.T) {
	d := newDict(t, DictConfig{InitialCapacity: 64, SatWords: 1, OneProbe: true, Seed: 20})
	// Grow through two rebuilds; every lookup — including during a live
	// migration — must cost exactly one parallel I/O under the
	// max-across-machines model.
	n := 300
	for i := 0; i < n; i++ {
		if err := d.Insert(pdm.Word(i*9+2), []pdm.Word{pdm.Word(i)}); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	if d.Stats().Rebuilds == 0 && !d.Migrating() {
		t.Fatal("no growth happened; test vacuous")
	}
	worstLookup := int64(0)
	for i := 0; i < n; i++ {
		before := d.Stats().ParallelIOs
		sat, ok := d.Lookup(pdm.Word(i*9 + 2))
		if !ok || sat[0] != pdm.Word(i) {
			t.Fatalf("key %d = %v %v", i*9+2, sat, ok)
		}
		if c := d.Stats().ParallelIOs - before; c > worstLookup {
			worstLookup = c
		}
	}
	if worstLookup != 1 {
		t.Errorf("worst lookup = %d parallel I/Os; one-probe building block should give exactly 1", worstLookup)
	}
	// Snapshot round trip with the OneProbe flavour, mid-migration if
	// one is live.
	var buf bytes.Buffer
	if err := d.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadDict(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Len() != d.Len() {
		t.Fatalf("restored Len = %d, want %d", restored.Len(), d.Len())
	}
	for i := 0; i < n; i += 17 {
		if sat, ok := restored.Lookup(pdm.Word(i*9 + 2)); !ok || sat[0] != pdm.Word(i) {
			t.Fatalf("restored key %d = %v %v", i*9+2, sat, ok)
		}
	}
}

// Property: Dict agrees with a map oracle across growth and shrink.
func TestPropertyDictMatchesMap(t *testing.T) {
	f := func(ops []uint32) bool {
		d, err := NewDict(DictConfig{InitialCapacity: 16, SatWords: 1, MigrateBatch: 2, Seed: 8})
		if err != nil {
			return false
		}
		oracle := map[pdm.Word]pdm.Word{}
		for _, op := range ops {
			k := pdm.Word(op % 211)
			switch op % 3 {
			case 0:
				v := pdm.Word(op)
				if d.Insert(k, []pdm.Word{v}) == nil {
					oracle[k] = v
				}
			case 1:
				_, okOracle := oracle[k]
				if d.Delete(k) != okOracle {
					return false
				}
				delete(oracle, k)
			case 2:
				sat, ok := d.Lookup(k)
				v, okOracle := oracle[k]
				if ok != okOracle || (ok && sat[0] != v) {
					return false
				}
			}
		}
		return d.Len() == len(oracle)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

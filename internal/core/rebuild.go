package core

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"pdmdict/internal/obs"
	"pdmdict/internal/pdm"
)

// DictConfig parameterizes the fully dynamic dictionary.
type DictConfig struct {
	// InitialCapacity is the capacity of the first underlying structure.
	// Required. The dictionary grows without bound by global rebuilding.
	InitialCapacity int
	// SatWords is the satellite size per key, in words.
	SatWords int
	// Degree is the expander degree d; each underlying structure lives
	// on a machine with 2d disks. Theorem 7's d > 6(1+1/ɛ) applies.
	// 0 defaults to 20 (satisfying the constraint for the default ɛ).
	Degree int
	// BlockSize is B, the block capacity in words. 0 defaults to 64.
	BlockSize int
	// Epsilon is Theorem 7's performance parameter. 0 defaults to 0.5.
	Epsilon float64
	// MigrateBatch is the number of keys moved from the draining
	// structure per operation during a rebuild. 0 defaults to 4.
	MigrateBatch int
	// Universe is u; 0 defaults to 2^63.
	Universe uint64
	// OneProbe selects the Section 6 one-probe structure as the bounded
	// building block instead of the Theorem 7 cascade: lookups stay at
	// exactly one parallel I/O even across rebuilds (the draining and
	// filling structures answer in the same parallel step), at twice the
	// disks.
	OneProbe bool
	// Seed selects the expanders; each rebuild generation derives a new
	// seed so a pathological key set cannot chase the structure forever.
	Seed uint64
}

func (c *DictConfig) normalize() error {
	if c.InitialCapacity <= 0 {
		return fmt.Errorf("core: DictConfig.InitialCapacity = %d, must be positive", c.InitialCapacity)
	}
	if c.Degree == 0 {
		c.Degree = 20
	}
	if c.BlockSize == 0 {
		c.BlockSize = 64
	}
	if c.MigrateBatch == 0 {
		c.MigrateBatch = 4
	}
	if c.MigrateBatch < 1 {
		return fmt.Errorf("core: MigrateBatch %d below 1", c.MigrateBatch)
	}
	return nil
}

// DictStats aggregates per-operation costs under the wrapper's cost
// model: the two underlying structures occupy disjoint disks ("we can
// make any constant number of parallel instances of our dictionaries"),
// so an operation that touches both costs the maximum of the two
// machines' parallel I/Os, not the sum. Every operation carries an
// explicit token (pdm.Op) with per-machine step counters, so the ledger
// is exact even under concurrent callers: each op is charged precisely
// the batches it issued, never a neighbor's.
type DictStats struct {
	// Ops is the number of Lookup/Insert/Delete calls served (batched
	// lookups count one per key).
	Ops int64
	// ParallelIOs is the total cost: the sum over operations of the
	// steps charged to their tokens.
	ParallelIOs int64
	// WorstOp is the largest per-key cost observed: ⌈steps/keys⌉ for
	// every operation, batched or not. Global rebuilding keeps this a
	// constant — the point of the Overmars–van Leeuwen technique the
	// paper invokes.
	WorstOp int64
	// Rebuilds counts completed migrations.
	Rebuilds int64
}

// rebuildable is the contract the global-rebuilding wrapper needs from
// a bounded-capacity structure: the dictionary operations plus access
// to its machine (for cost accounting) and its membership
// sub-dictionary (for the migration cursor). DynamicDict (Theorem 7)
// and OneProbeDict (Section 6) both satisfy it.
type rebuildable interface {
	Lookup(x pdm.Word) ([]pdm.Word, bool)
	LookupBatch(keys []pdm.Word) ([][]pdm.Word, []bool)
	Insert(x pdm.Word, sat []pdm.Word) error
	Delete(x pdm.Word) bool
	LookupOp(op *pdm.Op, x pdm.Word) ([]pdm.Word, bool)
	LookupBatchOp(op *pdm.Op, keys []pdm.Word) ([][]pdm.Word, []bool)
	LookupSharedOp(ops []*pdm.Op, keys []pdm.Word) ([][]pdm.Word, []bool)
	InsertOp(op *pdm.Op, x pdm.Word, sat []pdm.Word) error
	DeleteOp(op *pdm.Op, x pdm.Word) bool
	Len() int
	Capacity() int
	Snapshot(w io.Writer) error
	machine() *pdm.Machine
	membership() *BasicDict
}

func (dd *DynamicDict) machine() *pdm.Machine   { return dd.m }
func (dd *DynamicDict) membership() *BasicDict  { return dd.memb }
func (op *OneProbeDict) machine() *pdm.Machine  { return op.m }
func (op *OneProbeDict) membership() *BasicDict { return op.memb }

// Dict is the fully dynamic dictionary of Section 4's introduction:
// a bounded structure (Theorem 7's cascade by default, or the Section 6
// one-probe structure) made unbounded and deletion-friendly by
// worst-case global rebuilding. When the active structure reaches its
// capacity, a successor of twice the capacity is created on fresh disks,
// every subsequent operation migrates a constant number of keys, and
// both structures answer queries in parallel until the old one drains.
type Dict struct {
	// mu makes the wrapper safe for concurrent use: lookups (which
	// mutate nothing but the statsMu-guarded ledger) share a read lock,
	// while updates — which may swap the active/next structures mid-call
	// — are exclusive.
	mu         sync.RWMutex
	cfg        DictConfig
	generation uint64 // guarded by mu

	// hook is re-applied to every machine a rebuild creates, so traces
	// span generations.
	hook pdm.Hook // guarded by mu

	// injector, like hook, follows the dictionary across rebuild
	// generations.
	injector pdm.FaultInjector // guarded by mu

	active rebuildable // guarded by mu
	next   rebuildable // guarded by mu

	// Migration cursor over active's membership buckets (global bucket
	// index).
	curBucket int // guarded by mu

	// statsMu guards stats: lookups are otherwise read-only and may run
	// concurrently (under a reader lock), but every operation updates
	// the cost ledger.
	statsMu sync.Mutex
	stats   DictStats // guarded by statsMu

	// nextOp mints operation tokens. The Dict owns its own counter (not
	// the machines') so IDs survive rebuild generations and stay unique
	// across both live machines.
	nextOp atomic.Uint64
}

// NewDict creates an empty dictionary.
func NewDict(cfg DictConfig) (*Dict, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	d := &Dict{cfg: cfg}
	active, err := d.newStructureLocked(cfg.InitialCapacity)
	if err != nil {
		return nil, err
	}
	d.active = active
	return d, nil
}

func (d *Dict) newStructureLocked(capacity int) (rebuildable, error) {
	d.generation++
	seed := d.cfg.Seed + d.generation*0x9e3779b97f4a7c15
	if d.cfg.OneProbe {
		levels := 3
		m := pdm.NewMachine(pdm.Config{D: (levels + 1) * d.cfg.Degree, B: d.cfg.BlockSize})
		m.SetHook(d.hook)
		m.SetFaultInjector(d.injector)
		return NewOneProbe(m, OneProbeConfig{
			Capacity: capacity,
			SatWords: d.cfg.SatWords,
			Levels:   levels,
			Universe: d.cfg.Universe,
			Seed:     seed,
		})
	}
	m := pdm.NewMachine(pdm.Config{D: 2 * d.cfg.Degree, B: d.cfg.BlockSize})
	m.SetHook(d.hook)
	m.SetFaultInjector(d.injector)
	return NewDynamic(m, DynamicConfig{
		Capacity: capacity,
		SatWords: d.cfg.SatWords,
		Epsilon:  d.cfg.Epsilon,
		Universe: d.cfg.Universe,
		Seed:     seed,
	})
}

// Len returns the number of keys stored across both structures.
func (d *Dict) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	n := d.active.Len()
	if d.next != nil {
		n += d.next.Len()
	}
	return n
}

// Stats returns the accumulated operation costs.
func (d *Dict) Stats() DictStats {
	d.statsMu.Lock()
	defer d.statsMu.Unlock()
	return d.stats
}

// Migrating reports whether a rebuild is in progress.
func (d *Dict) Migrating() bool {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.next != nil
}

// SetHook attaches h to the machines of both live structures and to
// every machine created by future rebuilds. A nil h detaches.
func (d *Dict) SetHook(h pdm.Hook) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.hook = h
	d.active.machine().SetHook(h)
	if d.next != nil {
		d.next.machine().SetHook(h)
	}
}

// SetFaultInjector attaches fi to the machines of both live structures
// and to every machine created by future rebuilds. A nil fi detaches.
func (d *Dict) SetFaultInjector(fi pdm.FaultInjector) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.injector = fi
	d.active.machine().SetFaultInjector(fi)
	if d.next != nil {
		d.next.machine().SetFaultInjector(fi)
	}
}

// Degraded reports whether either live structure's machine has observed
// a data-threatening fault since its degraded flag was last cleared.
func (d *Dict) Degraded() bool {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if d.active.machine().Degraded() {
		return true
	}
	return d.next != nil && d.next.machine().Degraded()
}

// MintOp creates a fresh operation token for client, covering keys
// keys. Callers that want per-client attribution mint a token and pass
// it to the *Op entry points; the plain entry points mint their own
// (client 0) internally.
func (d *Dict) MintOp(client, keys int) *pdm.Op {
	return pdm.MakeOp(d.nextOp.Add(1), client, keys)
}

// measureOp runs fn under op's root span (tag) and charges the ledger
// exactly what the token was charged: max across the two machines of
// the parallel I/O steps of the batches fn issued, attributed to op
// through its per-machine lane counters. The attribution is exact under
// arbitrary concurrency — each caller's token counts only its own
// batches, never a neighbor's. The ledger gains n Ops (a batch counts
// one per key) and WorstOp tracks the per-key ceiling ⌈cost/n⌉ for
// every operation, batched or not.
func (d *Dict) measureOpLocked(op *pdm.Op, tag string, n int, fn func(op *pdm.Op) error) error {
	if op == nil {
		op = d.MintOp(0, n)
	}
	before := op.MaxMachineSteps()
	end := d.active.machine().OpSpan(op, tag)
	err := fn(op)
	end()
	cost := op.MaxMachineSteps() - before
	d.statsMu.Lock()
	d.stats.Ops += int64(n)
	d.stats.ParallelIOs += cost
	if n > 0 {
		if per := (cost + int64(n) - 1) / int64(n); per > d.stats.WorstOp {
			d.stats.WorstOp = per
		}
	}
	d.statsMu.Unlock()
	return err
}

// Lookup returns a copy of x's satellite and whether x is present.
func (d *Dict) Lookup(x pdm.Word) (sat []pdm.Word, ok bool) {
	return d.LookupOp(nil, x)
}

// LookupOp is Lookup attributed to the operation token op: the spans
// and batches it issues carry the op's ID, and the op is charged the
// operation's exact parallel I/O cost. A nil op mints an anonymous
// (client 0) token.
func (d *Dict) LookupOp(op *pdm.Op, x pdm.Word) (sat []pdm.Word, ok bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	d.measureOpLocked(op, obs.TagLookup, 1, func(op *pdm.Op) error {
		if d.next != nil {
			if sat, ok = d.next.LookupOp(op, x); ok {
				return nil
			}
		}
		sat, ok = d.active.LookupOp(op, x)
		return nil
	})
	return sat, ok
}

// Contains reports whether x is present.
func (d *Dict) Contains(x pdm.Word) bool {
	_, ok := d.Lookup(x)
	return ok
}

// LookupBatch resolves many keys as one batched operation: each
// underlying structure answers with its own merged read rounds, and
// during a migration the draining structure is consulted only for the
// keys the successor misses. The ledger gains len(keys) Ops but the
// batch's (amortized) cost.
func (d *Dict) LookupBatch(keys []pdm.Word) (sats [][]pdm.Word, oks []bool) {
	return d.LookupBatchOp(nil, keys)
}

// LookupBatchOp is LookupBatch attributed to the operation token op.
func (d *Dict) LookupBatchOp(op *pdm.Op, keys []pdm.Word) (sats [][]pdm.Word, oks []bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	d.measureOpLocked(op, obs.TagLookup, len(keys), func(op *pdm.Op) error {
		if d.next != nil {
			sats, oks = d.next.LookupBatchOp(op, keys)
			var missKeys []pdm.Word
			var missIdx []int
			for i, ok := range oks {
				if !ok {
					missKeys = append(missKeys, keys[i])
					missIdx = append(missIdx, i)
				}
			}
			if len(missKeys) > 0 {
				ms, mo := d.active.LookupBatchOp(op, missKeys)
				for j, i := range missIdx {
					sats[i], oks[i] = ms[j], mo[j]
				}
			}
			return nil
		}
		sats, oks = d.active.LookupBatchOp(op, keys)
		return nil
	})
	return sats, oks
}

// Insert stores (x, sat), replacing any previous satellite for x.
func (d *Dict) Insert(x pdm.Word, sat []pdm.Word) error {
	return d.InsertOp(nil, x, sat)
}

// InsertOp is Insert attributed to the operation token op.
func (d *Dict) InsertOp(op *pdm.Op, x pdm.Word, sat []pdm.Word) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.measureOpLocked(op, obs.TagInsert, 1, func(op *pdm.Op) error {
		if d.next == nil && d.active.Len() >= d.active.Capacity() {
			if err := d.startMigrationLocked(); err != nil {
				return err
			}
		}
		var err error
		if d.next != nil {
			err = d.next.InsertOp(op, x, sat)
			if err == nil {
				d.active.DeleteOp(op, x) // drop any stale copy
			}
		} else {
			err = d.active.InsertOp(op, x, sat)
			if err == ErrFull {
				// Expansion failure below capacity: rebuild immediately
				// with a new seed and land the insert in the successor.
				if merr := d.startMigrationLocked(); merr != nil {
					return merr
				}
				err = d.next.InsertOp(op, x, sat)
			}
		}
		if err != nil {
			return err
		}
		d.migrateStepLocked(op)
		return nil
	})
}

// Delete removes x and reports whether it was present.
func (d *Dict) Delete(x pdm.Word) (present bool) {
	return d.DeleteOp(nil, x)
}

// DeleteOp is Delete attributed to the operation token op.
func (d *Dict) DeleteOp(op *pdm.Op, x pdm.Word) (present bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.measureOpLocked(op, obs.TagDelete, 1, func(op *pdm.Op) error {
		if d.next != nil && d.next.DeleteOp(op, x) {
			present = true
		} else {
			present = d.active.DeleteOp(op, x)
		}
		d.migrateStepLocked(op)
		return nil
	})
	return present
}

// startMigration creates the successor structure of twice the current
// capacity (at least enough for the current content) and resets the
// cursor.
func (d *Dict) startMigrationLocked() error {
	capacity := 2 * d.active.Capacity()
	if capacity < d.active.Len()+1 {
		capacity = d.active.Len() + 1
	}
	next, err := d.newStructureLocked(capacity)
	if err != nil {
		return err
	}
	d.next = next
	d.curBucket = 0
	return nil
}

// migrateStep moves up to MigrateBatch keys from active to next, then
// finishes the migration once active is empty. The work per call is
// strictly bounded: at most MigrateBatch key moves AND at most
// 4·MigrateBatch bucket probes (empty buckets consume a probe but not a
// move), so the per-operation worst case stays constant even when the
// draining structure is nearly empty.
func (d *Dict) migrateStepLocked(op *pdm.Op) {
	if d.next == nil {
		return
	}
	// Migration I/O nests under the foreground operation's token: the
	// rebuild span rides op's private stack, so every batch below — on
	// either machine — is tagged <fg>.rebuild.* and charged to op. The
	// per-tag breakdown still separates rebuild traffic from the
	// foreground operation, and the charge lands on the operation that
	// performed the migration work, exactly as the amortization argument
	// charges it.
	defer d.active.machine().OpSpan(op, obs.TagRebuild)()
	memb := d.active.membership()
	moved, probes := 0, 0
	for moved < d.cfg.MigrateBatch && probes < 4*d.cfg.MigrateBatch && d.active.Len() > 0 {
		probes++
		if d.curBucket >= memb.Buckets() {
			break // cursor exhausted; remaining keys were deleted concurrently
		}
		addrs := memb.bucketAddrs(d.curBucket, nil)
		blocks := memb.reg.m.BatchReadOp(op, addrs)
		var key pdm.Word
		found := false
		for _, blk := range blocks {
			if recs := memb.codec.Decode(blk); len(recs) > 0 {
				key = recs[0].Key
				found = true
				break
			}
		}
		if !found {
			d.curBucket++
			continue
		}
		sat, ok := d.active.LookupOp(op, key)
		if ok {
			if err := d.next.InsertOp(op, key, sat); err != nil {
				// The successor refused (pathological); leave the key in
				// place and retry on a later step.
				return
			}
		}
		d.active.DeleteOp(op, key)
		moved++
	}
	if d.active.Len() == 0 {
		d.active = d.next
		d.next = nil
		d.statsMu.Lock()
		d.stats.Rebuilds++
		d.statsMu.Unlock()
	}
}

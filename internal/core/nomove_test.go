package core

// The paper's Section 1.1 makes a systems promise beyond the I/O
// bounds: "If we fix the capacity of the data structure and there are
// no deletions (or if we do not require that space of deleted items is
// reused), no piece of data is ever moved, once inserted. This makes it
// easy to keep references to data, and also simplifies concurrency
// control mechanisms such as locking." These tests pin that invariant:
// across arbitrary later insertions, every previously written fragment
// and chain field stays at its original disk location.

import (
	"fmt"
	"testing"

	"pdmdict/internal/pdm"
)

// fragmentPositions maps each (key, fragIdx) to its (stripe, bucket)
// location by scanning the structure.
func fragmentPositions(bd *BasicDict) map[[2]pdm.Word]string {
	pos := map[[2]pdm.Word]string{}
	for y := 0; y < bd.buckets; y++ {
		disk, row := bd.bucketPos(y)
		for b := 0; b < bd.cfg.BucketBlocks; b++ {
			blk := bd.reg.m.Peek(bd.reg.addr(disk, row*bd.cfg.BucketBlocks+b))
			for _, rec := range bd.codec.Decode(blk) {
				pos[[2]pdm.Word{rec.Key, rec.Sat[0]}] = fmt.Sprintf("%d/%d", disk, row)
			}
		}
	}
	return pos
}

func TestBasicNoDataEverMoves(t *testing.T) {
	m := pdm.NewMachine(pdm.Config{D: 8, B: 64})
	bd, err := NewBasic(m, BasicConfig{Capacity: 500, SatWords: 1, Seed: 61})
	if err != nil {
		t.Fatal(err)
	}
	// Insert in waves; after each wave, every earlier fragment must sit
	// exactly where it was.
	var sealed map[[2]pdm.Word]string
	for wave := 0; wave < 5; wave++ {
		for i := 0; i < 100; i++ {
			k := pdm.Word(wave*1000 + i*7 + 1)
			if err := bd.Insert(k, []pdm.Word{k}); err != nil {
				t.Fatal(err)
			}
		}
		now := fragmentPositions(bd)
		for frag, loc := range sealed {
			if now[frag] != loc {
				t.Fatalf("wave %d: fragment %v moved from %s to %s", wave, frag, loc, now[frag])
			}
		}
		sealed = now
	}
}

func TestDynamicNoChainEverMoves(t *testing.T) {
	m := pdm.NewMachine(pdm.Config{D: 40, B: 64})
	dd, err := NewDynamic(m, DynamicConfig{Capacity: 600, SatWords: 2, Seed: 62})
	if err != nil {
		t.Fatal(err)
	}
	// Record each key's membership word (head|level) right after its
	// insert; later inserts must never change it — the chain never
	// moves.
	recorded := map[pdm.Word]pdm.Word{}
	headOf := func(k pdm.Word) pdm.Word {
		sat, ok := dd.memb.Lookup(k)
		if !ok {
			t.Fatalf("key %d missing from membership", k)
		}
		return sat[0]
	}
	for i := 0; i < 600; i++ {
		k := pdm.Word(i*11 + 5)
		if err := dd.Insert(k, []pdm.Word{k, k + 1}); err != nil {
			t.Fatal(err)
		}
		recorded[k] = headOf(k)
		if i%97 == 0 {
			for pk, want := range recorded {
				if got := headOf(pk); got != want {
					t.Fatalf("after %d inserts: key %d chain moved (%#x → %#x)", i, pk, want, got)
				}
			}
		}
	}
	for pk, want := range recorded {
		if got := headOf(pk); got != want {
			t.Fatalf("final: key %d chain moved (%#x → %#x)", pk, want, got)
		}
	}
}

func TestNoIndexNoDirectoryProperty(t *testing.T) {
	// "Lookups and updates go directly to the relevant blocks, without
	// any knowledge of the current data": two dictionaries with the same
	// configuration but different contents must touch the SAME addresses
	// when probing the same key. That is only possible because the probe
	// set is a pure function of the key and the graph.
	mkDict := func(fill int) (*BasicDict, *pdm.Machine) {
		m := pdm.NewMachine(pdm.Config{D: 8, B: 32})
		bd, err := NewBasic(m, BasicConfig{Capacity: 300, SatWords: 0, Seed: 63})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < fill; i++ {
			bd.Insert(pdm.Word(i*13+2), nil)
		}
		return bd, m
	}
	empty, _ := mkDict(0)
	full, _ := mkDict(300)
	for probe := pdm.Word(0); probe < 50; probe++ {
		a := empty.probeAddrs(probe, nil)
		b := full.probeAddrs(probe, nil)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("probe %d: address %d differs (%v vs %v) — a hidden directory exists", probe, i, a[i], b[i])
			}
		}
	}
}

package core

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"pdmdict/internal/obs"
	"pdmdict/internal/pdm"
)

// opDict is the token-threaded face shared by all three building-block
// structures.
type opDict interface {
	LookupOp(op *pdm.Op, x pdm.Word) ([]pdm.Word, bool)
	InsertOp(op *pdm.Op, x pdm.Word, sat []pdm.Word) error
	DeleteOp(op *pdm.Op, x pdm.Word) bool
}

// opStructures builds each structure fresh for one property-test run.
var opStructures = []struct {
	name  string
	build func(t *testing.T, seed uint64) (opDict, *pdm.Machine)
}{
	{"basic", func(t *testing.T, seed uint64) (opDict, *pdm.Machine) {
		m := pdm.NewMachine(pdm.Config{D: 20, B: 64})
		bd, err := NewBasic(m, BasicConfig{Capacity: 500, SatWords: 1, Seed: seed})
		if err != nil {
			t.Fatalf("NewBasic: %v", err)
		}
		return bd, m
	}},
	{"dynamic", func(t *testing.T, seed uint64) (opDict, *pdm.Machine) {
		m := pdm.NewMachine(pdm.Config{D: 40, B: 64})
		dd, err := NewDynamic(m, DynamicConfig{Capacity: 500, SatWords: 1, Seed: seed})
		if err != nil {
			t.Fatalf("NewDynamic: %v", err)
		}
		return dd, m
	}},
	{"oneprobe", func(t *testing.T, seed uint64) (opDict, *pdm.Machine) {
		m := pdm.NewMachine(pdm.Config{D: 48, B: 64})
		od, err := NewOneProbe(m, OneProbeConfig{Capacity: 300, SatWords: 1, Seed: seed})
		if err != nil {
			t.Fatalf("NewOneProbe: %v", err)
		}
		return od, m
	}},
}

// TestOpChargesSumToMachineTotals is the exactness property of token
// accounting: run a randomized mixed workload from 8 concurrent clients
// over each structure, every request carrying its own token, and the
// per-op charges must sum to exactly the machine's merged counters —
// nothing double-charged, nothing lost, no matter how the goroutines
// interleave. Run with -race; the schedule is part of the test.
func TestOpChargesSumToMachineTotals(t *testing.T) {
	const clients, perClient = 8, 30
	for _, s := range opStructures {
		for _, seed := range []uint64{1, 2, 3} {
			t.Run(fmt.Sprintf("%s/seed%d", s.name, seed), func(t *testing.T) {
				dict, m := s.build(t, seed)
				base := m.Stats()

				ops := make([][]*pdm.Op, clients)
				var wg sync.WaitGroup
				for c := 0; c < clients; c++ {
					wg.Add(1)
					go func(c int) {
						defer wg.Done()
						rng := rand.New(rand.NewSource(int64(seed)*1000 + int64(c)))
						lo := pdm.Word(c*1000 + 1) // private key range per client
						next := lo
						for i := 0; i < perClient; i++ {
							op := m.NewOp(c, 1)
							ops[c] = append(ops[c], op)
							switch p := rng.Float64(); {
							case p < 0.5:
								dict.LookupOp(op, lo+pdm.Word(rng.Intn(perClient)))
							case p < 0.85:
								if err := dict.InsertOp(op, next, []pdm.Word{pdm.Word(next) * 3}); err != nil {
									t.Errorf("client %d insert %d: %v", c, next, err)
									return
								}
								next++
							default:
								dict.DeleteOp(op, lo+pdm.Word(rng.Intn(perClient)))
							}
						}
					}(c)
				}
				wg.Wait()
				if t.Failed() {
					return
				}

				var steps, blocks, reads, writes int64
				for c := range ops {
					for _, op := range ops[c] {
						steps += op.Steps()
						blocks += op.Blocks()
						reads += op.Reads()
						writes += op.Writes()
					}
				}
				d := m.Stats().Sub(base)
				if steps != d.ParallelIOs {
					t.Errorf("Σ per-op steps = %d, machine parallel I/Os = %d", steps, d.ParallelIOs)
				}
				if reads != d.BlockReads {
					t.Errorf("Σ per-op reads = %d, machine block reads = %d", reads, d.BlockReads)
				}
				if writes != d.BlockWrites {
					t.Errorf("Σ per-op writes = %d, machine block writes = %d", writes, d.BlockWrites)
				}
				if blocks != d.BlockReads+d.BlockWrites {
					t.Errorf("Σ per-op blocks = %d, machine transfers = %d", blocks, d.BlockReads+d.BlockWrites)
				}
			})
		}
	}
}

// coreEventRecorder captures the raw event stream for offline folding.
type coreEventRecorder struct {
	mu     sync.Mutex
	events []pdm.Event
}

func (r *coreEventRecorder) Event(e pdm.Event) {
	cp := e
	cp.Addrs = append([]pdm.Addr(nil), e.Addrs...)
	cp.Ops = append([]uint64(nil), e.Ops...)
	r.mu.Lock()
	r.events = append(r.events, cp)
	r.mu.Unlock()
}

// TestOpAccountantMatchesFoldSpans pins the two per-operation paths to
// each other: single-threaded, the online OpAccountant (sum of an op's
// own event charges) and the offline FoldSpans reconstruction (window
// of the machine's shared step counter) must produce identical records,
// field for field.
func TestOpAccountantMatchesFoldSpans(t *testing.T) {
	m := pdm.NewMachine(pdm.Config{D: 20, B: 64})
	bd, err := NewBasic(m, BasicConfig{Capacity: 400, SatWords: 1, Seed: 7})
	if err != nil {
		t.Fatalf("NewBasic: %v", err)
	}
	acct := obs.NewOpAccountant()
	acct.RecorderSize = 1024 // retain every op's record
	rec := &coreEventRecorder{}
	m.SetHook(obs.Tee(acct, rec))

	rng := rand.New(rand.NewSource(99))
	const n = 200
	for i := 0; i < n; i++ {
		op := m.NewOp(0, 1)
		key := pdm.Word(rng.Intn(300) + 1)
		switch p := rng.Float64(); {
		case p < 0.5:
			bd.LookupOp(op, key)
		case p < 0.85:
			if err := bd.InsertOp(op, key, []pdm.Word{pdm.Word(key) * 3}); err != nil {
				t.Fatalf("insert %d: %v", key, err)
			}
		default:
			bd.DeleteOp(op, key)
		}
	}

	folded := map[uint64]obs.OpRecord{} // op ID -> offline root record
	for _, r := range obs.FoldSpans(rec.events, obs.CostModel{}) {
		if r.Parent == 0 && r.Op != 0 {
			folded[r.Op] = r
		}
	}
	records, total := acct.Recorded()
	if total != n || len(records) != n {
		t.Fatalf("accountant retained %d/%d records, want %d", len(records), total, n)
	}
	if len(folded) != n {
		t.Fatalf("FoldSpans produced %d op roots, want %d", len(folded), n)
	}
	for _, fr := range records {
		want, ok := folded[fr.Op]
		if !ok {
			t.Fatalf("accountant op %d missing from FoldSpans output", fr.Op)
		}
		if fr.OpRecord != want {
			t.Errorf("op %d diverges:\n  online  %+v\n  offline %+v", fr.Op, fr.OpRecord, want)
		}
	}
}

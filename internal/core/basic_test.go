package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pdmdict/internal/loadbalance"
	"pdmdict/internal/pdm"
)

func newBasic(t *testing.T, d, b int, cfg BasicConfig) (*BasicDict, *pdm.Machine) {
	t.Helper()
	m := pdm.NewMachine(pdm.Config{D: d, B: b})
	bd, err := NewBasic(m, cfg)
	if err != nil {
		t.Fatalf("NewBasic: %v", err)
	}
	return bd, m
}

func TestBasicEmptyLookup(t *testing.T) {
	bd, _ := newBasic(t, 8, 32, BasicConfig{Capacity: 100, SatWords: 2, Seed: 1})
	if _, ok := bd.Lookup(42); ok {
		t.Error("empty dictionary claims to contain 42")
	}
	if bd.Len() != 0 {
		t.Errorf("Len = %d", bd.Len())
	}
}

func TestBasicInsertLookupDelete(t *testing.T) {
	bd, _ := newBasic(t, 8, 32, BasicConfig{Capacity: 100, SatWords: 2, Seed: 1})
	if err := bd.Insert(42, []pdm.Word{7, 8}); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	sat, ok := bd.Lookup(42)
	if !ok || sat[0] != 7 || sat[1] != 8 {
		t.Fatalf("Lookup(42) = %v, %v", sat, ok)
	}
	if !bd.Contains(42) || bd.Contains(43) {
		t.Error("Contains wrong")
	}
	if !bd.Delete(42) {
		t.Fatal("Delete(42) failed")
	}
	if bd.Delete(42) {
		t.Error("double delete succeeded")
	}
	if bd.Contains(42) {
		t.Error("deleted key still present")
	}
	if bd.Len() != 0 {
		t.Errorf("Len = %d after delete", bd.Len())
	}
}

func TestBasicUpdateReplaces(t *testing.T) {
	bd, _ := newBasic(t, 8, 32, BasicConfig{Capacity: 100, SatWords: 1, Seed: 1})
	if err := bd.Insert(5, []pdm.Word{100}); err != nil {
		t.Fatal(err)
	}
	if err := bd.Insert(5, []pdm.Word{200}); err != nil {
		t.Fatal(err)
	}
	if bd.Len() != 1 {
		t.Errorf("Len = %d after update, want 1", bd.Len())
	}
	if sat, _ := bd.Lookup(5); sat[0] != 200 {
		t.Errorf("update did not stick: %d", sat[0])
	}
}

func TestBasicLookupIsOneParallelIO(t *testing.T) {
	bd, m := newBasic(t, 16, 64, BasicConfig{Capacity: 500, SatWords: 1, Seed: 2})
	for i := 0; i < 100; i++ {
		if err := bd.Insert(pdm.Word(i*37+1), []pdm.Word{pdm.Word(i)}); err != nil {
			t.Fatal(err)
		}
	}
	before := m.Stats()
	bd.Lookup(37*50 + 1)
	delta := m.Stats().Sub(before)
	if delta.ParallelIOs != 1 {
		t.Errorf("lookup cost %d parallel I/Os, want 1 (paper §4.1)", delta.ParallelIOs)
	}
	// Unsuccessful search is also one I/O.
	before = m.Stats()
	bd.Lookup(999999)
	if delta := m.Stats().Sub(before); delta.ParallelIOs != 1 {
		t.Errorf("unsuccessful lookup cost %d parallel I/Os, want 1", delta.ParallelIOs)
	}
}

func TestBasicInsertIsTwoParallelIOs(t *testing.T) {
	bd, m := newBasic(t, 16, 64, BasicConfig{Capacity: 500, SatWords: 1, Seed: 2})
	worst := int64(0)
	for i := 0; i < 200; i++ {
		before := m.Stats()
		if err := bd.Insert(pdm.Word(i*101+7), []pdm.Word{1}); err != nil {
			t.Fatal(err)
		}
		if d := m.Stats().Sub(before).ParallelIOs; d > worst {
			worst = d
		}
	}
	if worst != 2 {
		t.Errorf("worst-case insert = %d parallel I/Os, want 2 (read + write)", worst)
	}
}

func TestBasicBandwidthVariantKFragments(t *testing.T) {
	// k = d/2 variant: satellite of K*fragWords words retrieved in one
	// parallel I/O.
	d := 16
	bd, m := newBasic(t, d, 64, BasicConfig{Capacity: 64, SatWords: 24, K: d / 2, Seed: 3})
	sat := make([]pdm.Word, 24)
	for i := range sat {
		sat[i] = pdm.Word(1000 + i)
	}
	if err := bd.Insert(77, sat); err != nil {
		t.Fatal(err)
	}
	before := m.Stats()
	got, ok := bd.Lookup(77)
	if !ok {
		t.Fatal("fragmented key lost")
	}
	if d := m.Stats().Sub(before).ParallelIOs; d != 1 {
		t.Errorf("bandwidth lookup cost %d parallel I/Os, want 1", d)
	}
	for i := range sat {
		if got[i] != sat[i] {
			t.Fatalf("satellite word %d = %d, want %d", i, got[i], sat[i])
		}
	}
}

func TestBasicFragmentUpdateAndDelete(t *testing.T) {
	d := 8
	bd, _ := newBasic(t, d, 64, BasicConfig{Capacity: 32, SatWords: 8, K: 4, Seed: 4})
	s1 := []pdm.Word{1, 2, 3, 4, 5, 6, 7, 8}
	s2 := []pdm.Word{9, 9, 9, 9, 9, 9, 9, 9}
	if err := bd.Insert(5, s1); err != nil {
		t.Fatal(err)
	}
	if err := bd.Insert(5, s2); err != nil {
		t.Fatal(err)
	}
	got, ok := bd.Lookup(5)
	if !ok {
		t.Fatal("key lost after fragmented update")
	}
	for i := range s2 {
		if got[i] != s2[i] {
			t.Fatalf("fragmented update wrong at %d: %d", i, got[i])
		}
	}
	if !bd.Delete(5) || bd.Contains(5) || bd.Len() != 0 {
		t.Error("fragmented delete failed")
	}
}

func TestBasicZeroSatellite(t *testing.T) {
	bd, _ := newBasic(t, 8, 16, BasicConfig{Capacity: 50, Seed: 5})
	if err := bd.Insert(10, nil); err != nil {
		t.Fatal(err)
	}
	if sat, ok := bd.Lookup(10); !ok || len(sat) != 0 {
		t.Errorf("zero-satellite lookup = %v, %v", sat, ok)
	}
}

func TestBasicWrongSatelliteWidth(t *testing.T) {
	bd, _ := newBasic(t, 8, 16, BasicConfig{Capacity: 50, SatWords: 2, Seed: 5})
	if err := bd.Insert(1, []pdm.Word{1}); err == nil {
		t.Error("short satellite accepted")
	}
}

func TestBasicKeyOutsideUniverse(t *testing.T) {
	bd, _ := newBasic(t, 8, 16, BasicConfig{Capacity: 50, Universe: 1000, Seed: 5})
	if err := bd.Insert(1000, nil); err == nil {
		t.Error("key outside universe accepted")
	}
}

func TestBasicCapacityEnforced(t *testing.T) {
	bd, _ := newBasic(t, 8, 32, BasicConfig{Capacity: 4, SatWords: 0, Seed: 6})
	for i := 0; i < 4; i++ {
		if err := bd.Insert(pdm.Word(i), nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := bd.Insert(99, nil); err != ErrFull {
		t.Errorf("over-capacity insert: %v, want ErrFull", err)
	}
	// Updating an existing key must still work at capacity.
	if err := bd.Insert(2, nil); err != nil {
		t.Errorf("update at capacity: %v", err)
	}
}

func TestBasicManyKeysAgainstOracle(t *testing.T) {
	bd, _ := newBasic(t, 16, 64, BasicConfig{Capacity: 2000, SatWords: 1, Seed: 7})
	oracle := map[pdm.Word]pdm.Word{}
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 2000; i++ {
		k := pdm.Word(rng.Uint64() % (1 << 40))
		v := pdm.Word(rng.Uint64())
		if err := bd.Insert(k, []pdm.Word{v}); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		oracle[k] = v
	}
	if bd.Len() != len(oracle) {
		t.Errorf("Len = %d, oracle %d", bd.Len(), len(oracle))
	}
	for k, v := range oracle {
		sat, ok := bd.Lookup(k)
		if !ok || sat[0] != v {
			t.Fatalf("Lookup(%d) = %v, %v; want %d", k, sat, ok, v)
		}
	}
	// Absent keys stay absent.
	for i := 0; i < 200; i++ {
		k := pdm.Word(rng.Uint64()%(1<<40)) | (1 << 50)
		if bd.Contains(k) {
			t.Fatalf("phantom key %d", k)
		}
	}
}

func TestBasicMaxLoadRespectsLemma3(t *testing.T) {
	d := 16
	bd, _ := newBasic(t, d, 64, BasicConfig{Capacity: 3000, SatWords: 0, Seed: 9})
	rng := rand.New(rand.NewSource(10))
	for i := 0; i < 3000; i++ {
		if err := bd.Insert(pdm.Word(rng.Uint64()%(1<<45)), nil); err != nil {
			t.Fatal(err)
		}
	}
	v := bd.Graph().RightSize()
	bound := loadbalance.Lemma3Bound(bd.Len(), v, d, 1, 0.25, 0.5)
	if float64(bd.MaxLoad()) > bound {
		t.Errorf("max load %d exceeds Lemma 3 bound %.1f", bd.MaxLoad(), bound)
	}
}

func TestBasicScanEnumeratesAll(t *testing.T) {
	bd, _ := newBasic(t, 8, 32, BasicConfig{Capacity: 100, SatWords: 1, Seed: 11})
	want := map[pdm.Word]bool{}
	for i := 0; i < 50; i++ {
		k := pdm.Word(i*13 + 1)
		bd.Insert(k, []pdm.Word{pdm.Word(i)})
		want[k] = true
	}
	got := map[pdm.Word]bool{}
	bd.Scan(func(key pdm.Word, fragIdx int, frag []pdm.Word) {
		if fragIdx == 0 {
			got[key] = true
		}
	})
	if len(got) != len(want) {
		t.Fatalf("Scan saw %d keys, want %d", len(got), len(want))
	}
	for k := range want {
		if !got[k] {
			t.Errorf("Scan missed key %d", k)
		}
	}
}

func TestBasicMultiBlockBuckets(t *testing.T) {
	// Small B with BucketBlocks=2: lookups cost 2 parallel I/Os but the
	// structure still works.
	bd, m := newBasic(t, 8, 8, BasicConfig{Capacity: 200, SatWords: 1, BucketBlocks: 2, Seed: 12})
	for i := 0; i < 200; i++ {
		if err := bd.Insert(pdm.Word(i*7+3), []pdm.Word{pdm.Word(i)}); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	before := m.Stats()
	if _, ok := bd.Lookup(3); !ok {
		t.Fatal("key lost")
	}
	if d := m.Stats().Sub(before).ParallelIOs; d != 2 {
		t.Errorf("2-block-bucket lookup = %d parallel I/Os, want 2", d)
	}
}

func TestBasicConfigErrors(t *testing.T) {
	m := pdm.NewMachine(pdm.Config{D: 4, B: 16})
	bad := []BasicConfig{
		{Capacity: 0},
		{Capacity: 10, SatWords: -1},
		{Capacity: 10, K: -2},
		{Capacity: 10, K: 8},          // K > d
		{Capacity: 10, Slack: 0.5},    // slack below 1
		{Capacity: 10, SatWords: 100}, // record larger than block
		{Capacity: 10, BucketBlocks: -1},
	}
	for i, cfg := range bad {
		if _, err := NewBasic(m, cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

// Property: BasicDict agrees with a map oracle under random
// insert/update/delete/lookup interleavings.
func TestPropertyBasicMatchesMap(t *testing.T) {
	f := func(ops []uint32) bool {
		m := pdm.NewMachine(pdm.Config{D: 8, B: 64})
		bd, err := NewBasic(m, BasicConfig{Capacity: 300, SatWords: 1, Seed: 13})
		if err != nil {
			return false
		}
		oracle := map[pdm.Word]pdm.Word{}
		for _, op := range ops {
			k := pdm.Word(op % 97)
			switch op % 3 {
			case 0:
				v := pdm.Word(op)
				if bd.Insert(k, []pdm.Word{v}) == nil {
					oracle[k] = v
				}
			case 1:
				_, okOracle := oracle[k]
				if bd.Delete(k) != okOracle {
					return false
				}
				delete(oracle, k)
			case 2:
				sat, ok := bd.Lookup(k)
				v, okOracle := oracle[k]
				if ok != okOracle || (ok && sat[0] != v) {
					return false
				}
			}
		}
		return bd.Len() == len(oracle)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

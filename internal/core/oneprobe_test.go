package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pdmdict/internal/pdm"
)

// newOneProbe builds a Section 6 structure: (levels+1)·d disks.
func newOneProbe(t *testing.T, d, b int, cfg OneProbeConfig) (*OneProbeDict, *pdm.Machine) {
	t.Helper()
	levels := cfg.Levels
	if levels == 0 {
		levels = 3
	}
	m := pdm.NewMachine(pdm.Config{D: (levels + 1) * d, B: b})
	op, err := NewOneProbe(m, cfg)
	if err != nil {
		t.Fatalf("NewOneProbe: %v", err)
	}
	return op, m
}

func TestOneProbeBasicOps(t *testing.T) {
	op, _ := newOneProbe(t, 12, 64, OneProbeConfig{Capacity: 300, SatWords: 2, Seed: 1})
	if err := op.Insert(7, []pdm.Word{70, 71}); err != nil {
		t.Fatal(err)
	}
	sat, ok := op.Lookup(7)
	if !ok || sat[0] != 70 || sat[1] != 71 {
		t.Fatalf("Lookup = %v %v", sat, ok)
	}
	if err := op.Insert(7, []pdm.Word{80, 81}); err != nil {
		t.Fatal(err)
	}
	if op.Len() != 1 {
		t.Errorf("Len = %d after update", op.Len())
	}
	if sat, _ := op.Lookup(7); sat[0] != 80 {
		t.Error("update did not stick")
	}
	if !op.Delete(7) || op.Delete(7) || op.Contains(7) || op.Len() != 0 {
		t.Error("delete sequence wrong")
	}
}

func TestOneProbeLookupAlwaysOneIO(t *testing.T) {
	// The whole point: EVERY lookup — hit, miss, shallow, deep — costs
	// exactly one parallel I/O.
	op, m := newOneProbe(t, 12, 64, OneProbeConfig{Capacity: 1500, SatWords: 1, Slack: 4, Seed: 2})
	rng := rand.New(rand.NewSource(3))
	keys := make([]pdm.Word, 1500)
	for i := range keys {
		keys[i] = pdm.Word(rng.Uint64() % (1 << 44))
		if err := op.Insert(keys[i], []pdm.Word{pdm.Word(i)}); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	// With tight slack some keys must sit below level 1 — the case the
	// §4.3 structure pays a second I/O for.
	counts := op.LevelCounts()
	deep := 0
	for _, c := range counts[1:] {
		deep += c
	}
	if deep == 0 {
		t.Fatalf("level counts %v: no deep keys; tighten slack for a meaningful test", counts)
	}
	for _, k := range keys {
		before := m.Stats()
		if _, ok := op.Lookup(k); !ok {
			t.Fatalf("key %d lost", k)
		}
		if d := m.Stats().Sub(before).ParallelIOs; d != 1 {
			t.Fatalf("lookup = %d parallel I/Os, want exactly 1 (§6 one-probe)", d)
		}
	}
	before := m.Stats()
	op.Lookup(1 << 55)
	if d := m.Stats().Sub(before).ParallelIOs; d != 1 {
		t.Errorf("miss = %d parallel I/Os, want 1", d)
	}
}

func TestOneProbeUpdatesAlwaysTwoIOs(t *testing.T) {
	op, m := newOneProbe(t, 12, 64, OneProbeConfig{Capacity: 800, SatWords: 1, Slack: 4, Seed: 4})
	rng := rand.New(rand.NewSource(5))
	keys := make([]pdm.Word, 800)
	for i := range keys {
		keys[i] = pdm.Word(rng.Uint64() % (1 << 44))
	}
	worst := int64(0)
	for i, k := range keys {
		before := m.Stats()
		if err := op.Insert(k, []pdm.Word{pdm.Word(i)}); err != nil {
			t.Fatal(err)
		}
		if d := m.Stats().Sub(before).ParallelIOs; d > worst {
			worst = d
		}
	}
	if worst != 2 {
		t.Errorf("worst insert = %d parallel I/Os, want 2", worst)
	}
	// Updates of deep keys are also 2 I/Os (old chain is in the batch).
	for _, k := range keys[:100] {
		before := m.Stats()
		if err := op.Insert(k, []pdm.Word{9}); err != nil {
			t.Fatal(err)
		}
		if d := m.Stats().Sub(before).ParallelIOs; d != 2 {
			t.Fatalf("update = %d parallel I/Os, want 2", d)
		}
	}
	// Deletes: also 2.
	before := m.Stats()
	if !op.Delete(keys[0]) {
		t.Fatal("delete failed")
	}
	if d := m.Stats().Sub(before).ParallelIOs; d != 2 {
		t.Errorf("delete = %d parallel I/Os, want 2", d)
	}
}

func TestOneProbeFullBandwidth(t *testing.T) {
	// A satellite close to the per-group stripe budget still travels in
	// a single parallel I/O.
	d, b := 12, 128
	sigma := 100 // words; chain capacity ≈ t·fieldWords ≈ d·B/(levels+1) scale
	op, m := newOneProbe(t, d, b, OneProbeConfig{Capacity: 100, SatWords: sigma, Seed: 6})
	sat := make([]pdm.Word, sigma)
	for i := range sat {
		sat[i] = pdm.Word(1000 + i)
	}
	if err := op.Insert(42, sat); err != nil {
		t.Fatal(err)
	}
	before := m.Stats()
	got, ok := op.Lookup(42)
	if !ok {
		t.Fatal("key lost")
	}
	if d := m.Stats().Sub(before).ParallelIOs; d != 1 {
		t.Errorf("big-satellite lookup = %d parallel I/Os, want 1", d)
	}
	for i := range sat {
		if got[i] != sat[i] {
			t.Fatalf("satellite word %d = %d, want %d", i, got[i], sat[i])
		}
	}
}

func TestOneProbeConfigErrors(t *testing.T) {
	if _, err := NewOneProbe(pdm.NewMachine(pdm.Config{D: 13, B: 64}), OneProbeConfig{Capacity: 10}); err == nil {
		t.Error("indivisible disk count accepted")
	}
	if _, err := NewOneProbe(pdm.NewMachine(pdm.Config{D: 8, B: 64}), OneProbeConfig{Capacity: 10}); err == nil {
		t.Error("d=2 accepted")
	}
	m := pdm.NewMachine(pdm.Config{D: 48, B: 64})
	for _, cfg := range []OneProbeConfig{
		{Capacity: 0},
		{Capacity: 10, SatWords: -1},
		{Capacity: 10, Levels: -1},
		{Capacity: 10, Slack: 0.5},
		{Capacity: 10, Ratio: 2},
	} {
		if _, err := NewOneProbe(m, cfg); err == nil {
			t.Errorf("bad config accepted: %+v", cfg)
		}
	}
}

func TestOneProbeCapacityAndReuse(t *testing.T) {
	op, _ := newOneProbe(t, 12, 64, OneProbeConfig{Capacity: 50, SatWords: 1, Seed: 7})
	for round := 0; round < 3; round++ {
		for i := 0; i < 50; i++ {
			if err := op.Insert(pdm.Word(round*1000+i*3+1), []pdm.Word{1}); err != nil {
				t.Fatalf("round %d insert %d: %v", round, i, err)
			}
		}
		if err := op.Insert(99999, []pdm.Word{1}); err != ErrFull {
			t.Errorf("over-capacity insert: %v", err)
		}
		for i := 0; i < 50; i++ {
			if !op.Delete(pdm.Word(round*1000 + i*3 + 1)) {
				t.Fatalf("round %d delete %d failed", round, i)
			}
		}
		if op.Len() != 0 {
			t.Fatalf("round %d: Len = %d", round, op.Len())
		}
	}
}

// Property: OneProbeDict agrees with a map oracle.
func TestPropertyOneProbeMatchesMap(t *testing.T) {
	f := func(ops []uint32) bool {
		m := pdm.NewMachine(pdm.Config{D: 32, B: 64}) // levels=3, d=8
		op, err := NewOneProbe(m, OneProbeConfig{Capacity: 150, SatWords: 1, Seed: 8})
		if err != nil {
			return false
		}
		oracle := map[pdm.Word]pdm.Word{}
		for _, o := range ops {
			k := pdm.Word(o % 173)
			switch o % 3 {
			case 0:
				v := pdm.Word(o)
				if op.Insert(k, []pdm.Word{v}) == nil {
					oracle[k] = v
				}
			case 1:
				_, okOracle := oracle[k]
				if op.Delete(k) != okOracle {
					return false
				}
				delete(oracle, k)
			case 2:
				sat, ok := op.Lookup(k)
				v, okOracle := oracle[k]
				if ok != okOracle || (ok && sat[0] != v) {
					return false
				}
			}
		}
		return op.Len() == len(oracle)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

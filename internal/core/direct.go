package core

import (
	"fmt"

	"pdmdict/internal/pdm"
)

// DirectDict is the specialized structure Theorem 6's discussion
// recommends for tiny universes: "When the universe is tiny, a
// specialized method is better to use, for example simple direct
// addressing." Every key of [0, u) owns a fixed slot — a presence flag
// plus its satellite — striped round-robin over the disks, so lookups
// and updates are single-block operations with no graph, no hashing,
// and space Θ(u·(1+σ)) words. It is the right choice exactly when u is
// comparable to n, and the baseline that shows where the expander
// machinery starts to pay off.
type DirectDict struct {
	reg       region
	universe  uint64
	satWords  int
	slotWords int
	perBlock  int
	n         int
}

// NewDirect creates a direct-addressed dictionary over the universe
// [0, universe) with satWords satellite words per key, occupying the
// machine's full disk set.
func NewDirect(m *pdm.Machine, universe uint64, satWords int) (*DirectDict, error) {
	if universe == 0 {
		return nil, fmt.Errorf("core: empty universe")
	}
	if satWords < 0 {
		return nil, fmt.Errorf("core: negative SatWords")
	}
	slotWords := 1 + satWords // presence flag + satellite
	if slotWords > m.B() {
		return nil, fmt.Errorf("core: slot of %d words exceeds block size %d", slotWords, m.B())
	}
	dd := &DirectDict{
		reg:       region{m: m, nDisks: m.D()},
		universe:  universe,
		satWords:  satWords,
		slotWords: slotWords,
		perBlock:  m.B() / slotWords,
	}
	return dd, nil
}

// Len returns the number of keys stored.
func (dd *DirectDict) Len() int { return dd.n }

// BlocksPerDisk returns the per-disk space footprint.
func (dd *DirectDict) BlocksPerDisk() int {
	slots := int(dd.universe)
	blocks := ceilDiv(slots, dd.perBlock)
	return ceilDiv(blocks, dd.reg.nDisks)
}

// slotAddr locates key x: slots fill blocks, blocks round-robin disks.
func (dd *DirectDict) slotAddr(x pdm.Word) (pdm.Addr, int) {
	slot := int(x)
	block := slot / dd.perBlock
	off := (slot % dd.perBlock) * dd.slotWords
	return dd.reg.addr(block%dd.reg.nDisks, block/dd.reg.nDisks), off
}

func (dd *DirectDict) checkKey(x pdm.Word) error {
	if uint64(x) >= dd.universe {
		return fmt.Errorf("core: key %d outside universe %d", x, dd.universe)
	}
	return nil
}

// Lookup returns a copy of x's satellite and whether x is present.
// Cost: exactly one parallel I/O (one block).
func (dd *DirectDict) Lookup(x pdm.Word) ([]pdm.Word, bool) {
	if dd.checkKey(x) != nil {
		return nil, false
	}
	a, off := dd.slotAddr(x)
	blk := dd.reg.m.ReadBlock(a)
	if blk[off] == 0 {
		return nil, false
	}
	sat := make([]pdm.Word, dd.satWords)
	copy(sat, blk[off+1:off+dd.slotWords])
	return sat, true
}

// Contains reports presence at Lookup cost.
func (dd *DirectDict) Contains(x pdm.Word) bool {
	_, ok := dd.Lookup(x)
	return ok
}

// Insert stores (x, sat) in two parallel I/Os (read-modify-write of one
// block).
func (dd *DirectDict) Insert(x pdm.Word, sat []pdm.Word) error {
	if err := dd.checkKey(x); err != nil {
		return err
	}
	if len(sat) != dd.satWords {
		return fmt.Errorf("core: satellite of %d words, config says %d", len(sat), dd.satWords)
	}
	a, off := dd.slotAddr(x)
	blk := dd.reg.m.ReadBlock(a)
	if blk[off] == 0 {
		dd.n++
	}
	blk[off] = 1
	copy(blk[off+1:off+dd.slotWords], sat)
	dd.reg.m.WriteBlock(a, blk)
	return nil
}

// Delete removes x, reporting whether it was present.
func (dd *DirectDict) Delete(x pdm.Word) bool {
	if dd.checkKey(x) != nil {
		return false
	}
	a, off := dd.slotAddr(x)
	blk := dd.reg.m.ReadBlock(a)
	if blk[off] == 0 {
		return false
	}
	for i := 0; i < dd.slotWords; i++ {
		blk[off+i] = 0
	}
	dd.reg.m.WriteBlock(a, blk)
	dd.n--
	return true
}

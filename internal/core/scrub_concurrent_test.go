package core

import (
	"sync"
	"testing"

	"pdmdict/internal/fault"
	"pdmdict/internal/pdm"
)

// Property: a silent bit flip is contained end to end under concurrent
// traffic. With 8 clients hammering degraded lookups, a flipped bit in
// one replica block must never surface as wrong data (the checksum
// fails the read and the surviving replica answers), a concurrent
// Scrub must locate exactly the damaged block, and Repair must restore
// it bit-identically — after which a clean scrub returns the machine
// to all-healthy.
func TestConcurrentScrubAfterBitFlip(t *testing.T) {
	const d, b, n, disk, clients = 6, 64, 200, 2, 8
	m, bd := buildReplicated(t, d, b, n, 2)
	plan := fault.NewPlan(13)
	m.SetFaultInjector(plan)

	// Pick a materialized block on the target disk and remember its
	// pristine content.
	target := pdm.Addr{Disk: disk, Block: -1}
	for blk := 0; blk < bd.BlocksPerDisk(); blk++ {
		if m.Peek(pdm.Addr{Disk: disk, Block: blk}) != nil {
			target.Block = blk
			break
		}
	}
	if target.Block < 0 {
		t.Fatal("no materialized block on the target disk")
	}
	pristine := m.Peek(target)
	plan.CorruptAt(target, 13) // flips on the next access, checksum left stale

	key := func(i int) pdm.Word { return pdm.Word(i)*2654435761 + 1 }
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			i := c
			for {
				select {
				case <-stop:
					return
				default:
				}
				sat, ok, err := bd.LookupTry(key(i % n))
				// Errors are legal while the block is damaged; data that
				// claims to be present must be right.
				if err == nil && ok && sat[1] != key(i%n) {
					t.Errorf("client %d: corrupt satellite returned for key %d", c, i%n)
					return
				}
				i += 3
			}
		}(c)
	}

	// Scrub concurrently with the clients until the flip has happened
	// and the sweep pins it down.
	var bad []pdm.Addr
	for len(bad) == 0 {
		bad = bd.Scrub()
	}
	if len(bad) != 1 || bad[0] != target {
		t.Errorf("scrub found %v, want exactly [%v]", bad, target)
	}

	// Repair while the clients are still running, then verify.
	if err := bd.Repair(disk); err != nil {
		t.Fatalf("Repair: %v", err)
	}
	if bad := bd.Scrub(); len(bad) != 0 {
		t.Fatalf("post-repair scrub still finds %v", bad)
	}
	close(stop)
	wg.Wait()

	healed := m.Peek(target)
	if len(healed) != len(pristine) {
		t.Fatalf("repaired block length %d, want %d", len(healed), len(pristine))
	}
	for i := range pristine {
		if healed[i] != pristine[i] {
			t.Fatalf("repaired block differs from pristine content at word %d", i)
		}
	}
	if !m.AllDisksHealthy() {
		t.Fatalf("disks not healthy after clean scrub: %+v", m.Health().Unhealthy())
	}
	for i := 0; i < n; i++ {
		sat, ok, err := bd.LookupTry(key(i))
		if err != nil || !ok || sat[1] != key(i) {
			t.Fatalf("key %d after repair: ok=%v err=%v", i, ok, err)
		}
	}
}

package core

// Section 5's closing remark, at the dictionary level: "If we implement
// the described dictionaries in the parallel disk head model, we do not
// need the striped property." These tests run the Section 4.1
// dictionary on an UNSTRIPED expander in both machine models: one-probe
// behaviour returns in the head model, while the standard parallel disk
// model punishes the missing striping with per-disk conflicts.

import (
	"math/rand"
	"testing"

	"pdmdict/internal/expander"
	"pdmdict/internal/pdm"
)

func TestBasicDictHeadModel(t *testing.T) {
	d, b, n := 12, 64, 400
	m := pdm.NewMachine(pdm.Config{D: d, B: b, Model: pdm.DiskHead})
	bd, err := NewBasic(m, BasicConfig{Capacity: n, SatWords: 1, HeadModel: true, Seed: 101})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(102))
	oracle := map[pdm.Word]pdm.Word{}
	for len(oracle) < n {
		k := pdm.Word(rng.Uint64() % (1 << 44))
		v := pdm.Word(rng.Uint64())
		if err := bd.Insert(k, []pdm.Word{v}); err != nil {
			t.Fatalf("insert: %v", err)
		}
		oracle[k] = v
	}
	worst := int64(0)
	for k, v := range oracle {
		before := m.Stats().ParallelIOs
		sat, ok := bd.Lookup(k)
		if !ok || sat[0] != v {
			t.Fatalf("key %d = %v %v, want %d", k, sat, ok, v)
		}
		if c := m.Stats().ParallelIOs - before; c > worst {
			worst = c
		}
	}
	if worst != 1 {
		t.Errorf("head-model lookup worst = %d parallel I/Os, want 1 (unstriped graph suffices)", worst)
	}
	// Updates: 2 I/Os.
	for k := range oracle {
		before := m.Stats().ParallelIOs
		if err := bd.Insert(k, []pdm.Word{9}); err != nil {
			t.Fatal(err)
		}
		if c := m.Stats().ParallelIOs - before; c != 2 {
			t.Errorf("head-model update = %d parallel I/Os, want 2", c)
		}
		break
	}
	// Delete path too.
	for k := range oracle {
		if !bd.Delete(k) || bd.Contains(k) {
			t.Fatal("head-model delete failed")
		}
		break
	}
}

func TestHeadLayoutOnParallelDiskSuffersConflicts(t *testing.T) {
	// The same unstriped layout on a standard parallel-disk machine:
	// correctness holds but probes cost more than one I/O on average —
	// the cost the trivial striping transform (factor-d space) buys away.
	d, b, n := 12, 64, 400
	m := pdm.NewMachine(pdm.Config{D: d, B: b}) // ParallelDisk
	bd, err := NewBasic(m, BasicConfig{Capacity: n, SatWords: 1, HeadModel: true, Seed: 103})
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]pdm.Word, n)
	rng := rand.New(rand.NewSource(104))
	for i := range keys {
		keys[i] = pdm.Word(rng.Uint64() % (1 << 44))
		if err := bd.Insert(keys[i], []pdm.Word{1}); err != nil {
			t.Fatal(err)
		}
	}
	before := m.Stats().ParallelIOs
	for _, k := range keys {
		if !bd.Contains(k) {
			t.Fatal("key lost")
		}
	}
	avg := float64(m.Stats().ParallelIOs-before) / float64(n)
	if avg <= 1.5 {
		t.Errorf("unstriped probes on the PDM averaged %.2f I/Os; expected clear conflict cost (>1.5)", avg)
	}
}

func TestBasicDictHeadModelCustomGraph(t *testing.T) {
	// Any left-d-regular graph works in head mode — no striping needed.
	g := expander.NewUnstriped(1<<30, 8, 400, 105)
	m := pdm.NewMachine(pdm.Config{D: 8, B: 32, Model: pdm.DiskHead})
	bd, err := NewBasic(m, BasicConfig{Capacity: 100, SatWords: 0, HeadModel: true, UnstripedGraph: g, Seed: 106})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := bd.Insert(pdm.Word(i*3+1), nil); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	for i := 0; i < 100; i++ {
		if !bd.Contains(pdm.Word(i*3 + 1)) {
			t.Fatal("key lost on custom unstriped graph")
		}
	}
	// Degree mismatch rejected.
	m2 := pdm.NewMachine(pdm.Config{D: 4, B: 32, Model: pdm.DiskHead})
	if _, err := NewBasic(m2, BasicConfig{Capacity: 10, HeadModel: true, UnstripedGraph: g}); err == nil {
		t.Error("degree-mismatched unstriped graph accepted")
	}
	// Custom-graph head-mode dictionaries refuse snapshots.
	if err := bd.Snapshot(discardWriter{}); err == nil {
		t.Error("custom unstriped-graph snapshot accepted")
	}
}

package core

import (
	"bytes"
	"testing"

	"pdmdict/internal/fault"
	"pdmdict/internal/obs"
	"pdmdict/internal/pdm"
)

// diskTransientInjector transiently fails read accesses to one disk, a
// bounded number of times (fails < 0 means forever). Deterministic by
// construction: no RNG, just an access counter.
type diskTransientInjector struct {
	disk  int
	fails int
}

func (in *diskTransientInjector) Access(kind pdm.EventKind, a pdm.Addr) pdm.Fault {
	if kind == pdm.EventRead && a.Disk == in.disk && in.fails != 0 {
		if in.fails > 0 {
			in.fails--
		}
		return pdm.Fault{Kind: pdm.FaultTransient}
	}
	return pdm.Fault{}
}

// The zero-value retry policy and the spelled-out DefaultRetryPolicy
// must be indistinguishable on the wire: the same faulted workload
// produces byte-identical JSONL traces either way. This is the
// compatibility contract that lets SetRetryPolicy exist without
// changing a single historical trace.
func TestRetryPolicyDefaultTraceEquivalence(t *testing.T) {
	run := func(explicit bool) string {
		var buf bytes.Buffer
		w := obs.NewJSONLWriter(&buf)
		m := pdm.NewMachine(pdm.Config{D: 8, B: 32})
		m.SetHook(w)
		bd, err := NewBasic(m, BasicConfig{
			Capacity: 200, SatWords: 1, K: 2, Replicate: true, Seed: 11,
		})
		if err != nil {
			t.Fatal(err)
		}
		if explicit {
			bd.SetRetryPolicy(pdm.DefaultRetryPolicy())
		}
		for i := 0; i < 200; i++ {
			if err := bd.Insert(pdm.Word(i)*97+1, []pdm.Word{pdm.Word(i)}); err != nil {
				t.Fatal(err)
			}
		}
		plan := fault.NewPlan(42)
		plan.SetTransient(0.1)
		plan.SetStall(0.05, 3)
		plan.FailDisk(2)
		m.SetFaultInjector(plan)
		for i := 0; i < 200; i++ {
			if _, ok, err := bd.LookupTry(pdm.Word(i)*97 + 1); err != nil || !ok {
				t.Fatalf("lookup %d: ok=%v err=%v", i, ok, err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if run(false) != run(true) {
		t.Fatal("zero-value policy and DefaultRetryPolicy produced different traces")
	}
}

// Backoff is modeled waiting: each retry round charges the policy's
// schedule (base·factor^(round−1)) to the machine as parallel-I/O
// steps, visible in both the step counter and the health report.
func TestRetryPolicyBackoffCharged(t *testing.T) {
	m := pdm.NewMachine(pdm.Config{D: 4, B: 64})
	bd, err := NewBasic(m, BasicConfig{Capacity: 120, SatWords: 1, K: 2, Replicate: true, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	key := pdm.Word(3)*2654435761 + 1
	if err := bd.Insert(key, []pdm.Word{key}); err != nil {
		t.Fatal(err)
	}
	bd.SetRetryPolicy(pdm.RetryPolicy{MaxRetries: 2, BackoffBase: 4, BackoffFactor: 2})
	m.SetFaultInjector(&diskTransientInjector{disk: 1, fails: -1})

	before := m.Stats().ParallelIOs
	//lint:pdm-allow batcherr: disk 1 never answers; the surviving replica settles the query
	if _, ok, _ := bd.LookupTry(key); !ok {
		t.Fatal("lookup failed despite a surviving replica")
	}
	rep := m.Health()
	// Two retry rounds: 4 steps before the first, 4·2 before the second.
	if rep.BackoffSteps != 12 {
		t.Fatalf("backoff steps = %d, want 12", rep.BackoffSteps)
	}
	if rep.Retries != 2 {
		t.Fatalf("retry batches = %d, want 2", rep.Retries)
	}
	if got := m.Stats().ParallelIOs - before; got < 12 {
		t.Fatalf("parallel I/Os for the lookup = %d, want >= 12 (backoff charged)", got)
	}
}

// With Hedge enabled, a retried read whose disk is Suspect is issued
// twice in the retry batch; either copy answers the slot. The hedged
// duplicate turns "retry also failed" into a success here.
func TestRetryPolicyHedgesSuspectDisk(t *testing.T) {
	m := pdm.NewMachine(pdm.Config{D: 4, B: 64})
	m.SetSuspectThresholds(1, 1<<20)
	bd, err := NewBasic(m, BasicConfig{Capacity: 120, SatWords: 1, K: 2, Replicate: true, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	key := pdm.Word(5)*2654435761 + 1
	if err := bd.Insert(key, []pdm.Word{key}); err != nil {
		t.Fatal(err)
	}
	bd.SetRetryPolicy(pdm.RetryPolicy{Hedge: true})
	// The probe's disk-1 access fails (promoting disk 1 to Suspect), and
	// so does the first copy in the retry batch — only the hedged second
	// copy gets through.
	m.SetFaultInjector(&diskTransientInjector{disk: 1, fails: 2})

	sat, ok, err := bd.LookupTry(key)
	if err != nil || !ok || sat[0] != key {
		t.Fatalf("hedged lookup: ok=%v err=%v sat=%v", ok, err, sat)
	}
	if got := m.DiskState(1); got != pdm.Suspect {
		t.Fatalf("disk 1 state = %v, want Suspect", got)
	}
	rep := m.Health()
	if rep.Hedges != 1 {
		t.Fatalf("hedged reads = %d, want 1", rep.Hedges)
	}
	if rep.Retries != 1 {
		t.Fatalf("retry batches = %d, want 1", rep.Retries)
	}
}

// MaxRetries < 0 disables retries entirely: a transient failure is
// reported after the single initial batch, with no recovery I/O.
func TestRetryPolicyNegativeDisablesRetries(t *testing.T) {
	m := pdm.NewMachine(pdm.Config{D: 4, B: 64})
	bd, err := NewBasic(m, BasicConfig{Capacity: 120, SatWords: 1, K: 2, Replicate: true, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	key := pdm.Word(9)*2654435761 + 1
	if err := bd.Insert(key, []pdm.Word{key}); err != nil {
		t.Fatal(err)
	}
	bd.SetRetryPolicy(pdm.RetryPolicy{MaxRetries: -1})
	m.SetFaultInjector(&diskTransientInjector{disk: 2, fails: -1})
	//lint:pdm-allow batcherr: the surviving replica settles the query
	if _, ok, _ := bd.LookupTry(key); !ok {
		t.Fatal("lookup failed despite a surviving replica")
	}
	if rep := m.Health(); rep.Retries != 0 {
		t.Fatalf("retry batches = %d, want 0 (retries disabled)", rep.Retries)
	}
}

package core

import (
	"fmt"
	"sync"

	"pdmdict/internal/expander"
	"pdmdict/internal/obs"
	"pdmdict/internal/pdm"
)

// OneProbeDict explores the paper's Open Problems section (Section 6):
// "It is plausible that full bandwidth can be achieved with lookup in 1
// I/O, while still supporting efficient updates. One idea that we have
// considered is to apply the load balancing scheme … recursively, for
// some constant number of levels …".
//
// This implementation realizes the level recursion with the
// disk-multiplication trick the paper uses elsewhere ("we can make any
// constant number of parallel instances … the number of disks increase
// by a constant factor"): each of the c levels of the §4.3 cascade gets
// its own group of d disks, alongside the membership group — (c+1)·d
// disks total. Because all level groups are disjoint, ONE parallel I/O
// fetches the membership buckets AND every level's neighborhood of x:
//
//   - Lookup: exactly 1 parallel I/O, always (the membership record
//     says which level's pre-fetched fields to decode).
//   - Insert/Delete: exactly 2 parallel I/Os (the same read batch plus
//     one write batch) — the old chain, wherever it lives, is already
//     in hand.
//
// The satellite budget is Θ(B·D) for D = (c+1)·d total disks (a
// (1/(c+1)) fraction of the raw stripe, i.e. full bandwidth up to the
// constant the disk multiplication costs). What remains non-constant —
// and why Section 6 is still open — is the failure mode: when no level
// offers t free fields the structure must be rebuilt (ErrFull here);
// the paper's remark "this makes the time for updates non-constant"
// shows up exactly there.
type OneProbeDict struct {
	mu     sync.RWMutex // lookups shared, updates exclusive
	m      *pdm.Machine
	cfg    OneProbeConfig
	d      int
	t      int
	memb   *BasicDict
	levels []opLevel // guarded by mu

	fieldWords     int
	fieldBits      int
	fieldsPerBlock int
	n              int // guarded by mu

	retry pdm.RetryPolicy // guarded by mu; degraded-read recovery policy (zero = default)
}

// SetRetryPolicy installs the policy LookupTry uses for transient-error
// recovery. The zero value restores the default (three immediate
// retries, no backoff, no hedging).
func (op *OneProbeDict) SetRetryPolicy(p pdm.RetryPolicy) {
	op.mu.Lock()
	op.retry = p
	op.mu.Unlock()
}

// opLevel is one retrieval array on its own disk group.
type opLevel struct {
	graph *expander.Family
	reg   region
	count int
}

// OneProbeConfig parameterizes the structure.
type OneProbeConfig struct {
	// Capacity is N, fixed at creation. Required.
	Capacity int
	// SatWords is the satellite size per key, in words.
	SatWords int
	// Levels is the recursion depth c; 0 defaults to 3.
	Levels int
	// Slack sizes level 1 at Slack·N·d fields; 0 defaults to 6.
	Slack float64
	// Ratio shrinks consecutive levels; 0 defaults to 1/4.
	Ratio float64
	// Universe is u; 0 defaults to 2^63.
	Universe uint64
	// Seed selects the expanders.
	Seed uint64
}

func (c *OneProbeConfig) normalize() error {
	if c.Capacity <= 0 {
		return fmt.Errorf("core: OneProbeConfig.Capacity = %d, must be positive", c.Capacity)
	}
	if c.SatWords < 0 {
		return fmt.Errorf("core: negative SatWords")
	}
	if c.Levels == 0 {
		c.Levels = 3
	}
	if c.Levels < 1 {
		return fmt.Errorf("core: Levels %d below 1", c.Levels)
	}
	if c.Slack == 0 {
		c.Slack = 6
	}
	// Negated comparisons reject NaN from corrupt snapshot float fields.
	if !(c.Slack >= 1 && c.Slack <= maxConfigSlack) {
		return fmt.Errorf("core: Slack %v outside [1, %d]", c.Slack, maxConfigSlack)
	}
	if c.Ratio == 0 {
		c.Ratio = 0.25
	}
	if !(c.Ratio > 0 && c.Ratio < 1) {
		return fmt.Errorf("core: Ratio %v outside (0,1)", c.Ratio)
	}
	if c.Universe == 0 {
		c.Universe = 1 << 63
	}
	return nil
}

// NewOneProbe creates an empty structure. The machine's disk count must
// be divisible by Levels+1; the expander degree is D/(Levels+1).
func NewOneProbe(m *pdm.Machine, cfg OneProbeConfig) (*OneProbeDict, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	groups := cfg.Levels + 1
	if m.D()%groups != 0 {
		return nil, fmt.Errorf("core: OneProbe needs D divisible by levels+1 = %d, got D=%d", groups, m.D())
	}
	d := m.D() / groups
	if d < 3 {
		return nil, fmt.Errorf("core: degree %d too small (need d ≥ 3)", d)
	}
	if d > 255 {
		return nil, fmt.Errorf("core: degree %d exceeds the packed head-pointer range (255)", d)
	}
	t := ceilDiv(2*d, 3)

	op := &OneProbeDict{m: m, cfg: cfg, d: d, t: t}
	op.fieldBits = chainFieldBits(64*cfg.SatWords, t, d)
	op.fieldWords = ceilDiv(op.fieldBits, 64)
	if op.fieldWords == 0 {
		op.fieldWords = 1
	}
	op.fieldBits = 64 * op.fieldWords
	if op.fieldWords > m.B() {
		return nil, fmt.Errorf("core: field of %d words exceeds block size %d", op.fieldWords, m.B())
	}
	op.fieldsPerBlock = m.B() / op.fieldWords

	perStripe := cfg.Slack * float64(cfg.Capacity)
	for li := 0; li < cfg.Levels; li++ {
		sf := ceilDiv(int(perStripe), op.fieldsPerBlock) * op.fieldsPerBlock
		if sf < op.fieldsPerBlock {
			sf = op.fieldsPerBlock
		}
		op.levels = append(op.levels, opLevel{
			graph: expander.NewFamily(cfg.Universe, d, sf, cfg.Seed+uint64(li)+1),
			reg:   region{m: m, disk0: (li + 1) * d, nDisks: d},
		})
		perStripe *= cfg.Ratio
	}

	memb, err := newBasicAt(region{m: m, disk0: 0, nDisks: d}, BasicConfig{
		Capacity: cfg.Capacity,
		SatWords: 1, // head | level<<8
		Universe: cfg.Universe,
		Seed:     cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	op.memb = memb
	return op, nil
}

// Len returns the number of keys stored.
func (op *OneProbeDict) Len() int {
	op.mu.RLock()
	defer op.mu.RUnlock()
	return op.n
}

// Capacity returns N.
func (op *OneProbeDict) Capacity() int { return op.cfg.Capacity }

// Levels returns the recursion depth c.
func (op *OneProbeDict) Levels() int {
	op.mu.RLock()
	defer op.mu.RUnlock()
	return len(op.levels)
}

// LevelCounts returns per-level occupancy.
func (op *OneProbeDict) LevelCounts() []int {
	op.mu.RLock()
	defer op.mu.RUnlock()
	out := make([]int, len(op.levels))
	for i, lv := range op.levels {
		out[i] = lv.count
	}
	return out
}

// BlocksPerDisk returns the per-disk space footprint (maximum over the
// groups; groups are disjoint disks).
func (op *OneProbeDict) BlocksPerDisk() int {
	op.mu.RLock()
	defer op.mu.RUnlock()
	b := op.memb.BlocksPerDisk()
	for _, lv := range op.levels {
		if blocks := lv.graph.StripeSize() / op.fieldsPerBlock; blocks > b {
			b = blocks
		}
	}
	return b
}

// probeAddrsAll appends the full 1-I/O probe address list for x: the
// membership neighborhood first, then d field blocks per level.
func (op *OneProbeDict) probeAddrsAllLocked(x pdm.Word, dst []pdm.Addr) []pdm.Addr {
	dst = op.memb.probeAddrs(x, dst)
	for li := range op.levels {
		lv := &op.levels[li]
		for i := 0; i < op.d; i++ {
			j := lv.graph.StripeNeighbor(uint64(x), i)
			dst = append(dst, lv.reg.addr(i, j/op.fieldsPerBlock))
		}
	}
	return dst
}

// probeWidth is the number of blocks probeAddrsAll contributes per key.
func (op *OneProbeDict) probeWidthLocked() int { return op.memb.probeLen() + len(op.levels)*op.d }

// probe reads, in ONE parallel I/O, the membership neighborhood and
// every level's field blocks for x. The returned slices alias the batch
// result: memb blocks first, then d blocks per level.
func (op *OneProbeDict) probeLocked(tok *pdm.Op, x pdm.Word) (membBlocks [][]pdm.Word, levelBlocks [][][]pdm.Word) {
	addrs := op.probeAddrsAllLocked(x, make([]pdm.Addr, 0, op.probeWidthLocked()))
	flat := op.m.BatchReadOp(tok, addrs)
	membLen := op.memb.probeLen()
	membBlocks = flat[:membLen]
	levelBlocks = make([][][]pdm.Word, len(op.levels))
	for li := range op.levels {
		levelBlocks[li] = flat[membLen+li*op.d : membLen+(li+1)*op.d]
	}
	return membBlocks, levelBlocks
}

// lookupInFlat resolves x against a pre-fetched probe (the blocks for
// probeAddrsAll(x), in order), without any I/O.
func (op *OneProbeDict) lookupInFlatLocked(x pdm.Word, flat [][]pdm.Word) ([]pdm.Word, bool) {
	membLen := op.memb.probeLen()
	membSat, ok := op.memb.lookupInBlocks(x, flat[:membLen])
	if !ok {
		return nil, false
	}
	head := int(membSat[0] & 0xFF)
	level := int(membSat[0] >> 8)
	if level >= len(op.levels) {
		return nil, false
	}
	blocks := flat[membLen+level*op.d : membLen+(level+1)*op.d]
	return decodeChain(op.fieldBits, op.cfg.SatWords, op.fieldsOfLocked(level, x, blocks), head)
}

// LookupBatch resolves many keys with ONE batched read: every key's
// probe addresses (membership and all levels) are collected,
// de-duplicated, and fetched together, so a batch of b lookups costs
// the deepest per-disk queue of distinct blocks — still one parallel
// I/O round — instead of b sequential probes. Results are positionally
// aligned with keys.
func (op *OneProbeDict) LookupBatch(keys []pdm.Word) ([][]pdm.Word, []bool) {
	return op.LookupBatchOp(nil, keys)
}

// LookupBatchOp is LookupBatch attributed to the operation token tok:
// the probe batch and the lookup span carry the token's ID and the
// token is charged the batch's exact cost. A nil token keeps the
// legacy shared-stack attribution.
func (op *OneProbeDict) LookupBatchOp(tok *pdm.Op, keys []pdm.Word) ([][]pdm.Word, []bool) {
	op.mu.RLock()
	defer op.mu.RUnlock()
	defer op.m.OpSpan(tok, obs.TagLookup)()
	width := op.probeWidthLocked()
	idx := make([]int32, len(keys)*width)
	uniq := make(map[pdm.Addr]int32, len(keys)*width)
	var addrs []pdm.Addr
	scratch := make([]pdm.Addr, 0, width)
	for ki, x := range keys {
		scratch = op.probeAddrsAllLocked(x, scratch[:0])
		for i, a := range scratch {
			j, ok := uniq[a]
			if !ok {
				j = int32(len(addrs))
				uniq[a] = j
				addrs = append(addrs, a)
			}
			idx[ki*width+i] = j
		}
	}
	flat := op.m.BatchReadOp(tok, addrs)
	sats := make([][]pdm.Word, len(keys))
	oks := make([]bool, len(keys))
	view := make([][]pdm.Word, width)
	for ki, x := range keys {
		for i := range view {
			view[i] = flat[idx[ki*width+i]]
		}
		sats[ki], oks[ki] = op.lookupInFlatLocked(x, view)
	}
	return sats, oks
}

// fieldsOf extracts x's per-stripe fields at a level from its blocks.
func (op *OneProbeDict) fieldsOfLocked(li int, x pdm.Word, blocks [][]pdm.Word) [][]pdm.Word {
	lv := &op.levels[li]
	fields := make([][]pdm.Word, op.d)
	for i := 0; i < op.d; i++ {
		j := lv.graph.StripeNeighbor(uint64(x), i)
		slot := (j % op.fieldsPerBlock) * op.fieldWords
		fields[i] = blocks[i][slot : slot+op.fieldWords]
	}
	return fields
}

// Lookup returns a copy of x's satellite and whether x is present, in
// exactly one parallel I/O — present, absent, shallow or deep.
func (op *OneProbeDict) Lookup(x pdm.Word) ([]pdm.Word, bool) {
	return op.LookupOp(nil, x)
}

// LookupOp is Lookup attributed to the operation token tok.
func (op *OneProbeDict) LookupOp(tok *pdm.Op, x pdm.Word) ([]pdm.Word, bool) {
	op.mu.RLock()
	defer op.mu.RUnlock()
	defer op.m.OpSpan(tok, obs.TagLookup)()
	flat := op.m.BatchReadOp(tok, op.probeAddrsAllLocked(x, make([]pdm.Addr, 0, op.probeWidthLocked())))
	return op.lookupInFlatLocked(x, flat)
}

// Contains reports presence at the 1-I/O Lookup cost.
func (op *OneProbeDict) Contains(x pdm.Word) bool {
	_, ok := op.Lookup(x)
	return ok
}

// Insert stores (x, sat) in exactly two parallel I/Os (the probe batch
// plus one write batch), replacing any existing satellite.
func (op *OneProbeDict) Insert(x pdm.Word, sat []pdm.Word) error {
	return op.InsertOp(nil, x, sat)
}

// InsertOp is Insert attributed to the operation token tok.
func (op *OneProbeDict) InsertOp(tok *pdm.Op, x pdm.Word, sat []pdm.Word) error {
	if len(sat) != op.cfg.SatWords {
		return fmt.Errorf("core: satellite of %d words, config says %d", len(sat), op.cfg.SatWords)
	}
	if uint64(x) >= op.cfg.Universe {
		return fmt.Errorf("core: key %d outside universe %d", x, op.cfg.Universe)
	}
	op.mu.Lock()
	defer op.mu.Unlock()
	defer op.m.OpSpan(tok, obs.TagInsert)()
	membBlocks, levelBlocks := op.probeLocked(tok, x)

	var writes []pdm.BlockWrite
	if membSat, present := op.memb.lookupInBlocks(x, membBlocks); present {
		// Release the old chain in the in-hand blocks.
		writes = append(writes, op.releaseInBlocksLocked(x, membSat, levelBlocks)...)
	} else if op.n >= op.cfg.Capacity {
		return ErrFull
	}

	for li := range op.levels {
		fields := op.fieldsOfLocked(li, x, levelBlocks[li])
		free := make([]int, 0, op.d)
		for i, f := range fields {
			if !fieldUsed(f) {
				free = append(free, i)
			}
		}
		if len(free) < op.t {
			continue
		}
		free = free[:op.t]
		contents := encodeChain(op.fieldBits, op.fieldWords, free, sat)
		lv := &op.levels[li]
		for p, stripe := range free {
			j := lv.graph.StripeNeighbor(uint64(x), stripe)
			blk := levelBlocks[li][stripe]
			copy(blk[(j%op.fieldsPerBlock)*op.fieldWords:], contents[p])
			writes = append(writes, pdm.BlockWrite{
				Addr: lv.reg.addr(stripe, j/op.fieldsPerBlock),
				Data: blk,
			})
		}
		op.memb.mu.Lock()
		membWrites, err := op.memb.insertWritesLocked(x, []pdm.Word{pdm.Word(free[0]) | pdm.Word(li)<<8}, membBlocks)
		op.memb.mu.Unlock()
		if err != nil {
			if len(writes) > 0 {
				op.m.BatchWriteOp(tok, dedupeWrites(writes))
			}
			return err
		}
		writes = append(writes, membWrites...)
		op.m.BatchWriteOp(tok, dedupeWrites(writes)) // the second (and last) parallel I/O
		lv.count++
		op.n++
		return nil
	}
	// The open problem's sting: no level fits. Leave the key consistently
	// absent; a caller-level rebuild is the (non-constant) recourse.
	op.memb.mu.Lock()
	membWrites, _ := op.memb.deleteWritesLocked(x, membBlocks)
	op.memb.mu.Unlock()
	writes = append(writes, membWrites...)
	if len(writes) > 0 {
		op.m.BatchWriteOp(tok, dedupeWrites(writes))
	}
	return ErrFull
}

// releaseInBlocks clears x's chain using the pre-fetched level blocks
// (every level is in hand, so no extra I/O regardless of depth).
func (op *OneProbeDict) releaseInBlocksLocked(x pdm.Word, membSat []pdm.Word, levelBlocks [][][]pdm.Word) []pdm.BlockWrite {
	head := int(membSat[0] & 0xFF)
	level := int(membSat[0] >> 8)
	if level >= len(op.levels) {
		return nil
	}
	lv := &op.levels[level]
	fields := op.fieldsOfLocked(level, x, levelBlocks[level])
	var writes []pdm.BlockWrite
	cur := head
	for cur >= 0 && cur < op.d && fieldUsed(fields[cur]) {
		diff := chainDiff(fields[cur], op.fieldBits)
		for i := range fields[cur] {
			fields[cur][i] = 0
		}
		j := lv.graph.StripeNeighbor(uint64(x), cur)
		writes = append(writes, pdm.BlockWrite{
			Addr: lv.reg.addr(cur, j/op.fieldsPerBlock),
			Data: levelBlocks[level][cur],
		})
		if diff == 0 {
			break
		}
		cur += diff
	}
	lv.count--
	op.n--
	return dedupeWrites(writes)
}

// Delete removes x in exactly two parallel I/Os, reporting whether it
// was present.
func (op *OneProbeDict) Delete(x pdm.Word) bool {
	return op.DeleteOp(nil, x)
}

// DeleteOp is Delete attributed to the operation token tok.
func (op *OneProbeDict) DeleteOp(tok *pdm.Op, x pdm.Word) bool {
	op.mu.Lock()
	defer op.mu.Unlock()
	defer op.m.OpSpan(tok, obs.TagDelete)()
	membBlocks, levelBlocks := op.probeLocked(tok, x)
	membSat, ok := op.memb.lookupInBlocks(x, membBlocks)
	if !ok {
		return false
	}
	writes := op.releaseInBlocksLocked(x, membSat, levelBlocks)
	op.memb.mu.Lock()
	membWrites, _ := op.memb.deleteWritesLocked(x, membBlocks)
	op.memb.mu.Unlock()
	writes = append(writes, membWrites...)
	if len(writes) > 0 {
		op.m.BatchWriteOp(tok, dedupeWrites(writes))
	}
	return true
}

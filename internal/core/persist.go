package core

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"

	"pdmdict/internal/pdm"
)

// Persistence: each dictionary saves a small gob header (its
// configuration plus the counters that are not derivable from disk
// contents) followed by its machine's snapshot. Loading re-runs the
// deterministic layout code on the restored configuration, so the
// reconstructed structure addresses the restored blocks identically.
//
// Every part is framed with a length prefix: both gob decoders and the
// snapshot reader buffer ahead, so consecutive unframed sections on one
// stream would corrupt each other.

// writeSection frames whatever fill produces with a little-endian
// uint64 length.
func writeSection(w io.Writer, fill func(io.Writer) error) error {
	var buf bytes.Buffer
	if err := fill(&buf); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint64(buf.Len())); err != nil {
		return err
	}
	_, err := w.Write(buf.Bytes())
	return err
}

// readSection returns a reader over exactly one framed section.
func readSection(r io.Reader) (*bytes.Reader, error) {
	var n uint64
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, fmt.Errorf("core: reading section length: %w", err)
	}
	const maxSection = 1 << 34 // 16 GiB; far beyond any simulated machine
	if n > maxSection {
		return nil, fmt.Errorf("core: section length %d implausible; corrupt snapshot", n)
	}
	// The length field is untrusted: stream the body in, so a huge value
	// fails at the stream's real end instead of sizing one giant
	// allocation up front.
	var buf bytes.Buffer
	if _, err := io.CopyN(&buf, r, int64(n)); err != nil {
		return nil, fmt.Errorf("core: reading section body: %w", err)
	}
	return bytes.NewReader(buf.Bytes()), nil
}

// encodeHeader gob-encodes v into one framed section.
func encodeHeader(w io.Writer, v interface{}) error {
	return writeSection(w, func(sw io.Writer) error {
		return gob.NewEncoder(sw).Encode(v)
	})
}

// decodeHeader reads one framed section and gob-decodes it into v.
func decodeHeader(r io.Reader, v interface{}) error {
	sec, err := readSection(r)
	if err != nil {
		return err
	}
	return gob.NewDecoder(sec).Decode(v)
}

// writeMachine frames a machine snapshot.
func writeMachine(w io.Writer, m *pdm.Machine) error {
	return writeSection(w, m.WriteSnapshot)
}

// readMachine reads one framed machine snapshot. pdm.ReadSnapshot
// validates the embedded pdm.Config (and rejects implausible
// dimensions) before allocating any disk state, so corrupt headers fail
// with a clear error here instead of an index panic later.
func readMachine(r io.Reader) (*pdm.Machine, error) {
	sec, err := readSection(r)
	if err != nil {
		return nil, err
	}
	return pdm.ReadSnapshot(sec)
}

// checkCount validates an untrusted element count from a snapshot
// header against a structural bound.
func checkCount(what string, n, max int) error {
	if n < 0 || n > max {
		return fmt.Errorf("core: snapshot %s = %d outside [0,%d]; corrupt snapshot", what, n, max)
	}
	return nil
}

// basicHeader is the durable metadata of a BasicDict.
type basicHeader struct {
	Cfg    BasicConfig
	N      int
	Disk0  int
	NDisks int
	Block0 int
}

// Snapshot writes the dictionary and its machine to w. Dictionaries
// running on a caller-supplied graph cannot be snapshotted: the graph's
// representation is owned by the caller, not by the snapshot format.
func (bd *BasicDict) Snapshot(w io.Writer) error {
	bd.mu.RLock()
	defer bd.mu.RUnlock()
	if bd.cfg.Graph != nil || bd.cfg.UnstripedGraph != nil {
		return fmt.Errorf("core: cannot snapshot a dictionary with a caller-supplied graph")
	}
	if err := encodeHeader(w, basicHeader{
		Cfg: bd.cfg, N: bd.n,
		Disk0: bd.reg.disk0, NDisks: bd.reg.nDisks, Block0: bd.reg.block0,
	}); err != nil {
		return fmt.Errorf("core: encoding BasicDict header: %w", err)
	}
	return writeMachine(w, bd.reg.m)
}

// LoadBasic restores a BasicDict (and its machine) from a Snapshot
// stream.
func LoadBasic(r io.Reader) (*BasicDict, *pdm.Machine, error) {
	var h basicHeader
	if err := decodeHeader(r, &h); err != nil {
		return nil, nil, fmt.Errorf("core: decoding BasicDict header: %w", err)
	}
	m, err := readMachine(r)
	if err != nil {
		return nil, nil, err
	}
	if h.Disk0 < 0 || h.NDisks < 1 || h.Block0 < 0 || h.Disk0+h.NDisks > m.D() {
		return nil, nil, fmt.Errorf("core: snapshot region [%d,%d)+%d outside machine of %d disks; corrupt snapshot",
			h.Disk0, h.Disk0+h.NDisks, h.Block0, m.D())
	}
	bd, err := newBasicAt(region{m: m, disk0: h.Disk0, nDisks: h.NDisks, block0: h.Block0}, h.Cfg)
	if err != nil {
		return nil, nil, err
	}
	if err := checkCount("key count", h.N, bd.cfg.Capacity); err != nil {
		return nil, nil, err
	}
	bd.mu.Lock()
	bd.n = h.N
	bd.mu.Unlock()
	return bd, m, nil
}

// dynamicHeader is the durable metadata of a DynamicDict.
type dynamicHeader struct {
	Cfg         DynamicConfig
	N           int
	MembN       int
	LevelCounts []int
}

// Snapshot writes the dictionary and its machine to w.
func (dd *DynamicDict) Snapshot(w io.Writer) error {
	dd.mu.RLock()
	defer dd.mu.RUnlock()
	// Counts are gathered inline rather than via LevelCounts(): RLock is
	// held and RWMutex read locks must not nest.
	counts := make([]int, len(dd.levels))
	for i := range dd.levels {
		counts[i] = dd.levels[i].count
	}
	dd.memb.mu.RLock()
	membN := dd.memb.n
	dd.memb.mu.RUnlock()
	h := dynamicHeader{Cfg: dd.cfg, N: dd.n, MembN: membN, LevelCounts: counts}
	if err := encodeHeader(w, h); err != nil {
		return fmt.Errorf("core: encoding DynamicDict header: %w", err)
	}
	return writeMachine(w, dd.m)
}

// LoadDynamic restores a DynamicDict (and its machine) from a Snapshot
// stream.
func LoadDynamic(r io.Reader) (*DynamicDict, *pdm.Machine, error) {
	var h dynamicHeader
	if err := decodeHeader(r, &h); err != nil {
		return nil, nil, fmt.Errorf("core: decoding DynamicDict header: %w", err)
	}
	m, err := readMachine(r)
	if err != nil {
		return nil, nil, err
	}
	dd, err := NewDynamic(m, h.Cfg)
	if err != nil {
		return nil, nil, err
	}
	// The dictionary is not yet published, but it came from a
	// constructor call; take its locks so the restore writes below
	// satisfy the guarded-by contract checked by pdmlint.
	dd.mu.Lock()
	defer dd.mu.Unlock()
	dd.memb.mu.Lock()
	defer dd.memb.mu.Unlock()
	if len(h.LevelCounts) != len(dd.levels) {
		return nil, nil, fmt.Errorf("core: snapshot has %d levels, layout has %d", len(h.LevelCounts), len(dd.levels))
	}
	if err := checkCount("key count", h.N, dd.cfg.Capacity); err != nil {
		return nil, nil, err
	}
	if err := checkCount("membership count", h.MembN, dd.memb.cfg.Capacity); err != nil {
		return nil, nil, err
	}
	dd.n = h.N
	dd.memb.n = h.MembN
	for i := range dd.levels {
		if err := checkCount("level count", h.LevelCounts[i], dd.cfg.Capacity); err != nil {
			return nil, nil, err
		}
		dd.levels[i].count = h.LevelCounts[i]
	}
	return dd, m, nil
}

// staticHeader is the durable metadata of a StaticDict.
type staticHeader struct {
	Cfg   StaticConfig
	N     int
	Build pdm.Stats
}

// Snapshot writes the dictionary and its machine to w.
func (sd *StaticDict) Snapshot(w io.Writer) error {
	if err := encodeHeader(w, staticHeader{Cfg: sd.cfg, N: sd.n, Build: sd.ConstructionIOs}); err != nil {
		return fmt.Errorf("core: encoding StaticDict header: %w", err)
	}
	return writeMachine(w, sd.m)
}

// LoadStatic restores a StaticDict (and its machine) from a Snapshot
// stream.
func LoadStatic(r io.Reader) (*StaticDict, *pdm.Machine, error) {
	var h staticHeader
	if err := decodeHeader(r, &h); err != nil {
		return nil, nil, fmt.Errorf("core: decoding StaticDict header: %w", err)
	}
	// layout() trusts the config (the build path normalized it), so a
	// loaded one must be re-validated before any sizing math runs on it.
	if err := h.Cfg.normalize(); err != nil {
		return nil, nil, fmt.Errorf("core: snapshot config invalid: %w", err)
	}
	m, err := readMachine(r)
	if err != nil {
		return nil, nil, err
	}
	d := m.D()
	if h.Cfg.Case == CaseA {
		d = m.D() / 2
	}
	if h.N < 0 {
		return nil, nil, fmt.Errorf("core: snapshot key count %d negative; corrupt snapshot", h.N)
	}
	sd := &StaticDict{m: m, cfg: h.Cfg, d: d, n: h.N, t: ceilDiv(2*d, 3), ConstructionIOs: h.Build}
	if err := sd.layout(); err != nil {
		return nil, nil, err
	}
	if sd.memb != nil {
		sd.memb.n = h.N
	}
	return sd, m, nil
}

// oneProbeHeader is the durable metadata of a OneProbeDict.
type oneProbeHeader struct {
	Cfg         OneProbeConfig
	N           int
	MembN       int
	LevelCounts []int
}

// Snapshot writes the dictionary and its machine to w.
func (op *OneProbeDict) Snapshot(w io.Writer) error {
	op.mu.RLock()
	defer op.mu.RUnlock()
	counts := make([]int, len(op.levels))
	for i := range op.levels {
		counts[i] = op.levels[i].count
	}
	op.memb.mu.RLock()
	membN := op.memb.n
	op.memb.mu.RUnlock()
	h := oneProbeHeader{Cfg: op.cfg, N: op.n, MembN: membN, LevelCounts: counts}
	if err := encodeHeader(w, h); err != nil {
		return fmt.Errorf("core: encoding OneProbeDict header: %w", err)
	}
	return writeMachine(w, op.m)
}

// LoadOneProbe restores a OneProbeDict (and its machine) from a
// Snapshot stream.
func LoadOneProbe(r io.Reader) (*OneProbeDict, *pdm.Machine, error) {
	var h oneProbeHeader
	if err := decodeHeader(r, &h); err != nil {
		return nil, nil, fmt.Errorf("core: decoding OneProbeDict header: %w", err)
	}
	m, err := readMachine(r)
	if err != nil {
		return nil, nil, err
	}
	op, err := NewOneProbe(m, h.Cfg)
	if err != nil {
		return nil, nil, err
	}
	// Unpublished but constructor-built: lock for the restore writes
	// (see LoadDynamic).
	op.mu.Lock()
	defer op.mu.Unlock()
	op.memb.mu.Lock()
	defer op.memb.mu.Unlock()
	if len(h.LevelCounts) != len(op.levels) {
		return nil, nil, fmt.Errorf("core: snapshot has %d levels, layout has %d", len(h.LevelCounts), len(op.levels))
	}
	if err := checkCount("key count", h.N, op.cfg.Capacity); err != nil {
		return nil, nil, err
	}
	if err := checkCount("membership count", h.MembN, op.memb.cfg.Capacity); err != nil {
		return nil, nil, err
	}
	op.n = h.N
	op.memb.n = h.MembN
	for i := range op.levels {
		if err := checkCount("level count", h.LevelCounts[i], op.cfg.Capacity); err != nil {
			return nil, nil, err
		}
		op.levels[i].count = h.LevelCounts[i]
	}
	return op, m, nil
}

// dictHeader is the durable metadata of the fully dynamic wrapper.
type dictHeader struct {
	Cfg        DictConfig
	Generation uint64
	Migrating  bool
	CurBucket  int
	Stats      DictStats
}

// Snapshot writes the wrapper — both structures during a migration — to
// w.
func (d *Dict) Snapshot(w io.Writer) error {
	d.mu.RLock()
	defer d.mu.RUnlock()
	d.statsMu.Lock()
	stats := d.stats
	d.statsMu.Unlock()
	if err := encodeHeader(w, dictHeader{
		Cfg: d.cfg, Generation: d.generation, Migrating: d.next != nil,
		CurBucket: d.curBucket, Stats: stats,
	}); err != nil {
		return fmt.Errorf("core: encoding Dict header: %w", err)
	}
	if err := d.active.Snapshot(w); err != nil {
		return err
	}
	if d.next != nil {
		return d.next.Snapshot(w)
	}
	return nil
}

// LoadDict restores the fully dynamic wrapper from a Snapshot stream.
func LoadDict(r io.Reader) (*Dict, error) {
	var h dictHeader
	if err := decodeHeader(r, &h); err != nil {
		return nil, fmt.Errorf("core: decoding Dict header: %w", err)
	}
	if err := h.Cfg.normalize(); err != nil {
		return nil, err
	}
	if h.CurBucket < 0 {
		return nil, fmt.Errorf("core: snapshot migration cursor %d negative; corrupt snapshot", h.CurBucket)
	}
	d := &Dict{
		cfg: h.Cfg, generation: h.Generation,
		curBucket: h.CurBucket, stats: h.Stats,
	}
	load := func() (rebuildable, error) {
		if h.Cfg.OneProbe {
			s, _, err := LoadOneProbe(r)
			return s, err
		}
		s, _, err := LoadDynamic(r)
		return s, err
	}
	active, err := load()
	if err != nil {
		return nil, err
	}
	d.active = active
	if h.Migrating {
		next, err := load()
		if err != nil {
			return nil, err
		}
		d.next = next
	}
	return d, nil
}

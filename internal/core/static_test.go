package core

import (
	"errors"
	"math/rand"
	"testing"

	"pdmdict/internal/bucket"
	"pdmdict/internal/extsort"
	"pdmdict/internal/pdm"
)

func makeRecords(n, satWords int, seed int64) []bucket.Record {
	rng := rand.New(rand.NewSource(seed))
	seen := map[pdm.Word]bool{}
	recs := make([]bucket.Record, 0, n)
	for len(recs) < n {
		k := pdm.Word(rng.Uint64() % (1 << 48))
		if seen[k] {
			continue
		}
		seen[k] = true
		sat := make([]pdm.Word, satWords)
		for i := range sat {
			sat[i] = k*1000 + pdm.Word(i)
		}
		recs = append(recs, bucket.Record{Key: k, Sat: sat})
	}
	return recs
}

func buildStatic(t *testing.T, d, b int, cfg StaticConfig, recs []bucket.Record) (*StaticDict, *pdm.Machine) {
	t.Helper()
	disks := d
	if cfg.Case == CaseA {
		disks = 2 * d
	}
	m := pdm.NewMachine(pdm.Config{D: disks, B: b})
	sd, err := BuildStatic(m, cfg, recs)
	if err != nil {
		t.Fatalf("BuildStatic: %v", err)
	}
	return sd, m
}

func verifyAll(t *testing.T, sd *StaticDict, recs []bucket.Record) {
	t.Helper()
	for _, r := range recs {
		sat, ok := sd.Lookup(r.Key)
		if !ok {
			t.Fatalf("key %d missing", r.Key)
		}
		for i := range r.Sat {
			if sat[i] != r.Sat[i] {
				t.Fatalf("key %d satellite word %d = %d, want %d", r.Key, i, sat[i], r.Sat[i])
			}
		}
	}
}

func TestStaticCaseBRoundTrip(t *testing.T) {
	recs := makeRecords(300, 3, 1)
	sd, _ := buildStatic(t, 12, 64, StaticConfig{SatWords: 3, Case: CaseB, Seed: 2}, recs)
	verifyAll(t, sd, recs)
	if sd.Len() != 300 {
		t.Errorf("Len = %d", sd.Len())
	}
}

func TestStaticCaseARoundTrip(t *testing.T) {
	recs := makeRecords(300, 3, 3)
	sd, _ := buildStatic(t, 12, 64, StaticConfig{SatWords: 3, Case: CaseA, Seed: 4}, recs)
	verifyAll(t, sd, recs)
}

func TestStaticAbsentKeys(t *testing.T) {
	recs := makeRecords(200, 2, 5)
	for _, cs := range []StaticCase{CaseB, CaseA} {
		sd, _ := buildStatic(t, 12, 64, StaticConfig{SatWords: 2, Case: cs, Seed: 6}, recs)
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 500; i++ {
			k := pdm.Word(rng.Uint64()%(1<<48)) | (1 << 50) // outside the key range used
			if _, ok := sd.Lookup(k); ok {
				t.Fatalf("%v: phantom key %d", cs, k)
			}
		}
	}
}

func TestStaticLookupIsOneParallelIO(t *testing.T) {
	recs := makeRecords(400, 2, 8)
	for _, cs := range []StaticCase{CaseB, CaseA} {
		sd, m := buildStatic(t, 12, 64, StaticConfig{SatWords: 2, Case: cs, Seed: 9}, recs)
		for _, r := range recs[:50] {
			before := m.Stats()
			if _, ok := sd.Lookup(r.Key); !ok {
				t.Fatalf("%v: key lost", cs)
			}
			if d := m.Stats().Sub(before).ParallelIOs; d != 1 {
				t.Fatalf("%v: successful lookup = %d parallel I/Os, want 1 (Theorem 6)", cs, d)
			}
		}
		// Unsuccessful lookups: also one probe.
		before := m.Stats()
		sd.Lookup(pdm.Word(1) << 55)
		if d := m.Stats().Sub(before).ParallelIOs; d != 1 {
			t.Errorf("%v: unsuccessful lookup = %d parallel I/Os, want 1", cs, d)
		}
	}
}

func TestStaticZeroSatellite(t *testing.T) {
	recs := makeRecords(100, 0, 10)
	for _, cs := range []StaticCase{CaseB, CaseA} {
		sd, _ := buildStatic(t, 9, 32, StaticConfig{SatWords: 0, Case: cs, Seed: 11}, recs)
		for _, r := range recs {
			if sat, ok := sd.Lookup(r.Key); !ok || len(sat) != 0 {
				t.Fatalf("%v: zero-satellite lookup = %v, %v", cs, sat, ok)
			}
		}
		if sd.Contains(pdm.Word(1) << 55) {
			t.Errorf("%v: phantom membership", cs)
		}
	}
}

func TestStaticLargeSatelliteCaseA(t *testing.T) {
	// Satellite big enough that fields carry several words each and
	// chains genuinely distribute the payload.
	recs := makeRecords(120, 16, 12)
	sd, _ := buildStatic(t, 12, 64, StaticConfig{SatWords: 16, Case: CaseA, Seed: 13}, recs)
	verifyAll(t, sd, recs)
}

func TestStaticEmptyDictionary(t *testing.T) {
	for _, cs := range []StaticCase{CaseB, CaseA} {
		sd, _ := buildStatic(t, 6, 32, StaticConfig{SatWords: 1, Case: cs, Seed: 14}, nil)
		if sd.Len() != 0 {
			t.Errorf("Len = %d", sd.Len())
		}
		if _, ok := sd.Lookup(5); ok {
			t.Errorf("%v: empty dict contains 5", cs)
		}
	}
}

func TestStaticSingleKey(t *testing.T) {
	recs := []bucket.Record{{Key: 42, Sat: []pdm.Word{7}}}
	for _, cs := range []StaticCase{CaseB, CaseA} {
		sd, _ := buildStatic(t, 6, 32, StaticConfig{SatWords: 1, Case: cs, Seed: 15}, recs)
		if sat, ok := sd.Lookup(42); !ok || sat[0] != 7 {
			t.Errorf("%v: Lookup(42) = %v, %v", cs, sat, ok)
		}
	}
}

func TestStaticDuplicateKeysRejected(t *testing.T) {
	recs := []bucket.Record{
		{Key: 1, Sat: []pdm.Word{1}},
		{Key: 1, Sat: []pdm.Word{2}},
	}
	m := pdm.NewMachine(pdm.Config{D: 6, B: 32})
	if _, err := BuildStatic(m, StaticConfig{SatWords: 1, Seed: 16}, recs); !errors.Is(err, ErrDuplicateKey) {
		t.Errorf("duplicate keys: err = %v, want ErrDuplicateKey", err)
	}
}

func TestStaticConfigErrors(t *testing.T) {
	m := pdm.NewMachine(pdm.Config{D: 7, B: 32})
	if _, err := BuildStatic(m, StaticConfig{Case: CaseA}, nil); err == nil {
		t.Error("odd disk count accepted for CaseA")
	}
	m2 := pdm.NewMachine(pdm.Config{D: 2, B: 32})
	if _, err := BuildStatic(m2, StaticConfig{}, nil); err == nil {
		t.Error("d=2 accepted")
	}
	m3 := pdm.NewMachine(pdm.Config{D: 8, B: 32})
	if _, err := BuildStatic(m3, StaticConfig{SatWords: -1}, nil); err == nil {
		t.Error("negative SatWords accepted")
	}
	if _, err := BuildStatic(m3, StaticConfig{Slack: 0.1}, nil); err == nil {
		t.Error("tiny slack accepted")
	}
	if _, err := BuildStatic(m3, StaticConfig{MemStripes: 2}, nil); err == nil {
		t.Error("MemStripes=2 accepted")
	}
	// Field too large for a block.
	m4 := pdm.NewMachine(pdm.Config{D: 6, B: 2})
	if _, err := BuildStatic(m4, StaticConfig{SatWords: 40, Case: CaseB}, makeRecords(4, 40, 1)); err == nil {
		t.Error("oversized field accepted")
	}
}

func TestStaticConstructionIOsProportionalToSort(t *testing.T) {
	// Theorem 6: construction time ∝ sorting nd records. Measure both on
	// identical machines and require the ratio to be a modest constant.
	n, d, b, sat := 600, 12, 64, 2
	recs := makeRecords(n, sat, 17)
	sd, _ := buildStatic(t, d, b, StaticConfig{SatWords: sat, Case: CaseB, Seed: 18}, recs)
	build := sd.ConstructionIOs.ParallelIOs

	// Baseline: sort nd two-word records on the same geometry.
	m := pdm.NewMachine(pdm.Config{D: d, B: b})
	v := &extsort.Vec{M: m, Start: 0, RecWords: 2, N: n * d}
	data := make([]pdm.Word, v.Words())
	rng := rand.New(rand.NewSource(19))
	for i := range data {
		data[i] = pdm.Word(rng.Uint64())
	}
	extsort.WriteAll(v, data)
	m.ResetStats()
	extsort.Sort(v, v.SortStripes(8), 8, extsort.ByWord(0))
	sortIOs := m.Stats().ParallelIOs

	if build > 40*sortIOs {
		t.Errorf("construction = %d I/Os vs sort(nd) = %d: ratio %.1f too large",
			build, sortIOs, float64(build)/float64(sortIOs))
	}
}

func TestStaticCaseAPointerBitsWithinBudget(t *testing.T) {
	// The Theorem 6(a) space argument: pointer data < 2d bits/key. We
	// verify indirectly — a satellite needing the whole data budget
	// still round-trips, i.e. the layout honoured its capacity math.
	d := 15
	recs := makeRecords(80, 7, 20)
	sd, _ := buildStatic(t, d, 64, StaticConfig{SatWords: 7, Case: CaseA, Seed: 21}, recs)
	if sd.FieldsPerKey() != (2*d+2)/3 {
		t.Errorf("t = %d, want ⌈2d/3⌉ = %d", sd.FieldsPerKey(), (2*d+2)/3)
	}
	verifyAll(t, sd, recs)
}

func TestStaticManyGeometries(t *testing.T) {
	for _, g := range []struct {
		d, b, n, sat int
		cs           StaticCase
	}{
		{6, 16, 50, 1, CaseB},
		{24, 128, 1000, 4, CaseB},
		{6, 16, 50, 1, CaseA},
		{24, 128, 1000, 4, CaseA},
		{12, 256, 500, 30, CaseA},
	} {
		recs := makeRecords(g.n, g.sat, int64(g.d*1000+g.n))
		sd, _ := buildStatic(t, g.d, g.b, StaticConfig{SatWords: g.sat, Case: g.cs, Seed: uint64(g.n)}, recs)
		verifyAll(t, sd, recs)
	}
}

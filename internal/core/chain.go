package core

import (
	"pdmdict/internal/bitpack"
	"pdmdict/internal/pdm"
)

// Chain field codec, shared by the Theorem 6(a) static layout and the
// Theorem 7 dynamic cascade.
//
// A key's satellite is distributed over t array fields, one per chosen
// stripe. Each field is a bit string: a used flag (1 bit), the
// unary-coded difference to the next stripe in the chain (the tail
// stores unary(0), i.e. a single 0-bit), then as many satellite data
// bits as fit. An all-zero field is unused.

// chainFieldBits returns the per-field bit budget needed so that t
// fields carry sigma data bits on a degree-d graph: the chain spends at
// most 2t+d−1 bits on used flags and pointers.
func chainFieldBits(sigmaBits, t, d int) int {
	return ceilDiv(sigmaBits+2*t+d-1, t)
}

// encodeChain lays the satellite out over the chosen stripes (strictly
// increasing) and returns one fieldWords-sized content slice per stripe.
func encodeChain(fieldBits, fieldWords int, stripes []int, sat []pdm.Word) [][]pdm.Word {
	sw := bitpack.NewWriter()
	for _, s := range sat {
		sw.WriteBits(s, 64)
	}
	satBits := bitpack.NewReader(sw.Words(), sw.Len())

	out := make([][]pdm.Word, len(stripes))
	for p := range stripes {
		w := bitpack.NewWriter()
		w.WriteBits(1, 1) // used flag
		diff := 0
		if p < len(stripes)-1 {
			diff = stripes[p+1] - stripes[p]
		}
		w.WriteUnary(diff)
		take := satBits.Remaining()
		if avail := fieldBits - w.Len(); take > avail {
			take = avail
		}
		for take > 0 {
			c := take
			if c > 64 {
				c = 64
			}
			w.WriteBits(satBits.ReadBits(c), c)
			take -= c
		}
		content := make([]pdm.Word, fieldWords)
		copy(content, w.Words())
		out[p] = content
	}
	if satBits.Remaining() > 0 {
		panic("core: chain capacity arithmetic failed to fit the satellite")
	}
	return out
}

// decodeChain reads a satellite of satWords words back out of the d
// per-stripe fields, starting at the head stripe. It reports false on
// any structural inconsistency (unused field, chain escaping [0,d),
// chain ending early), which callers treat as absence.
func decodeChain(fieldBits, satWords int, fields [][]pdm.Word, head int) ([]pdm.Word, bool) {
	need := 64 * satWords
	out := bitpack.NewWriter()
	cur := head
	for {
		if cur < 0 || cur >= len(fields) {
			return nil, false
		}
		r := bitpack.NewReader(fields[cur], fieldBits)
		if r.ReadBits(1) != 1 {
			return nil, false
		}
		diff := r.ReadUnary()
		take := fieldBits - r.Pos()
		if take > need {
			take = need
		}
		for take > 0 {
			c := take
			if c > 64 {
				c = 64
			}
			out.WriteBits(r.ReadBits(c), c)
			take -= c
			need -= c
		}
		if need == 0 {
			break
		}
		if diff == 0 {
			return nil, false
		}
		cur += diff
	}
	sat := make([]pdm.Word, satWords)
	copy(sat, out.Words())
	return sat, true
}

// fieldUsed reports whether a chain field's used flag is set.
func fieldUsed(field []pdm.Word) bool { return len(field) > 0 && field[0]&1 == 1 }

package core

import (
	"fmt"
	"sort"

	"pdmdict/internal/bucket"
	"pdmdict/internal/extsort"
	"pdmdict/internal/obs"
	"pdmdict/internal/pdm"
)

// BulkLoad fills an empty dictionary with the given records at
// sort-like I/O cost, instead of 2 parallel I/Os per key.
//
// The greedy placement rule of Section 3 is inherently sequential, but
// its decisions depend only on the bucket load counters — o(n) words of
// internal memory (v = O(n/B) buckets), comfortably inside the model's
// internal-memory budget. So the bulk path decides placements in
// memory, writes the assignment list to scratch stripes, sorts it by
// bucket with the external mergesort, and then writes each bucket block
// exactly once, in block-row batches of one parallel I/O each. This is
// what makes the Theorem 6(a) membership sub-dictionary constructible
// within the "proportional to sorting" budget.
//
// The dictionary must be empty; the records' keys must be distinct. The
// scratch region starts at block scratchBlock0 on every disk of the
// dictionary's region and is free for reuse afterwards.
func (bd *BasicDict) BulkLoad(recs []bucket.Record, scratchBlock0, memStripes int) error {
	bd.mu.Lock()
	defer bd.mu.Unlock()
	if bd.n > 0 {
		return fmt.Errorf("core: BulkLoad on a non-empty dictionary (%d keys)", bd.n)
	}
	if len(recs) > bd.cfg.Capacity {
		return ErrFull
	}
	if memStripes < 3 {
		return fmt.Errorf("core: memStripes %d below 3", memStripes)
	}
	seen := make(map[pdm.Word]struct{}, len(recs))
	for _, r := range recs {
		if len(r.Sat) != bd.cfg.SatWords {
			return fmt.Errorf("core: record with %d satellite words, config says %d", len(r.Sat), bd.cfg.SatWords)
		}
		if uint64(r.Key) >= bd.cfg.Universe {
			return fmt.Errorf("core: key %d outside universe %d", r.Key, bd.cfg.Universe)
		}
		if _, dup := seen[r.Key]; dup {
			return fmt.Errorf("%w: key %d", ErrDuplicateKey, r.Key)
		}
		seen[r.Key] = struct{}{}
	}
	if len(recs) == 0 {
		return nil
	}
	defer bd.reg.m.Span(obs.TagBulkload)()

	// The dictionary's own region may span only a subset of the
	// machine's disks; scratch stripes span them all, which is fine —
	// scratch is scratch.
	m := bd.reg.m
	caps := bd.cfg.BucketBlocks * bd.codec.Capacity()
	loads := make([]int, bd.buckets)

	// Pass 1: greedy placement, streaming assignment records
	// [sortKey, key, fragIdx, frag...] to scratch. sortKey orders by
	// (bucket index within stripe, stripe) so the fill pass emits whole
	// block rows.
	asgWidth := 3 + bd.fragWords
	app := extsort.NewAppender(m, scratchBlock0, asgWidth)
	out := make([]pdm.Word, asgWidth)
	nDisks := bd.reg.nDisks
	for _, r := range recs {
		ns := bd.neighbors(r.Key)
		for j := 0; j < bd.cfg.K; j++ {
			best := -1
			for _, y := range ns {
				if loads[y] >= caps {
					continue
				}
				if best == -1 || loads[y] < loads[best] {
					best = y
				}
			}
			if best == -1 {
				return ErrFull
			}
			loads[best]++
			disk, brow := bd.bucketPos(best)
			out[0] = pdm.Word(brow*nDisks + disk)
			out[1] = r.Key
			frag := bd.fragment(r.Sat, j)
			copy(out[2:], frag)
			app.Append(out)
		}
	}
	asg := app.Vec()

	// Pass 2: sort by bucket.
	extsort.Sort(asg, scratchBlock0+asg.SortStripes(memStripes), memStripes, extsort.ByWord(0))

	// Pass 3: pack and write each bucket once, one parallel I/O per
	// block row (the buckets of one row live on distinct disks).
	curRow := -1
	blocks := make(map[int][][]pdm.Word) // disk → the bucket's blocks
	flush := func() {
		if curRow < 0 {
			return
		}
		disks := make([]int, 0, len(blocks))
		for disk := range blocks {
			disks = append(disks, disk)
		}
		sort.Ints(disks) // fix batch order: map order would leak into the trace
		var writes []pdm.BlockWrite
		for _, disk := range disks {
			base := curRow * bd.cfg.BucketBlocks
			for b, blk := range blocks[disk] {
				writes = append(writes, pdm.BlockWrite{Addr: bd.reg.addr(disk, base+b), Data: blk})
			}
			delete(blocks, disk)
		}
		if len(writes) > 0 {
			m.BatchWrite(writes)
		}
	}
	extsort.Scan(asg, func(_ int, rec []pdm.Word) {
		sortKey := int(rec[0])
		brow, disk := sortKey/nDisks, sortKey%nDisks
		if brow != curRow {
			flush()
			curRow = brow
		}
		blks := blocks[disk]
		if blks == nil {
			blks = make([][]pdm.Word, bd.cfg.BucketBlocks)
			for b := range blks {
				blks[b] = make([]pdm.Word, bd.codec.B)
			}
			blocks[disk] = blks
		}
		placed := false
		for _, blk := range blks {
			if bd.codec.AppendAlways(blk, bucket.Record{Key: rec[1], Sat: rec[2:]}) {
				placed = true
				break
			}
		}
		if !placed {
			panic("core: BulkLoad load accounting disagrees with block capacity")
		}
	})
	flush()
	bd.n = len(recs)
	return nil
}

// Package cache implements an internal-memory block cache in front of
// a parallel disk machine.
//
// It exists to reproduce the nuance in the paper's Section 1.2: the
// 1-I/O dictionaries beat B-trees for RANDOM accesses, but "for
// sequential scanning of large files, the overhead of B-trees is
// negligible (due to caching)". A small LRU of blocks makes that
// concrete — a sequential scan re-reads the same B-tree path and leaf
// over and over, which the cache absorbs, while a random workload blows
// through any internal memory budget (experiment E11-seqcache).
//
// The cache is write-through: writes always reach the machine (and
// refresh the cached copy), so the disk image is always current and
// cached reads are exact. Only the reads a miss forces are charged to
// the machine; hits are free, exactly like the model's free internal
// memory.
package cache

import (
	"container/list"
	"fmt"

	"pdmdict/internal/pdm"
)

// Storage is the block-device surface shared by *pdm.Machine and
// *Cache, so structures can run on either interchangeably.
type Storage interface {
	ReadBlock(a pdm.Addr) []pdm.Word
	WriteBlock(a pdm.Addr, data []pdm.Word)
	ReadStripe(stripe int) []pdm.Word
	WriteStripe(stripe int, data []pdm.Word)
	D() int
	B() int
}

var (
	_ Storage = (*pdm.Machine)(nil)
	_ Storage = (*Cache)(nil)
)

// Cache is an LRU block cache over a machine. It is not safe for
// concurrent use (wrap it per goroutine or lock externally); the
// underlying machine remains safe either way.
type Cache struct {
	m        *pdm.Machine
	capacity int

	lru     *list.List // front = most recent; values are *entry
	entries map[pdm.Addr]*list.Element

	hits, misses int64
}

type entry struct {
	addr pdm.Addr
	data []pdm.Word
}

// Span delegates to the machine's span API, so structures running over
// a cache still tag the I/O their misses force.
func (c *Cache) Span(tag string) func() { return c.m.Span(tag) }

// New wraps m with a cache of capacityBlocks blocks — the internal
// memory budget, in blocks of B words.
func New(m *pdm.Machine, capacityBlocks int) *Cache {
	if capacityBlocks < 1 {
		panic(fmt.Sprintf("cache: capacity %d below 1 block", capacityBlocks))
	}
	return &Cache{
		m:        m,
		capacity: capacityBlocks,
		lru:      list.New(),
		entries:  make(map[pdm.Addr]*list.Element),
	}
}

// Machine returns the backing machine (for I/O accounting).
func (c *Cache) Machine() *pdm.Machine { return c.m }

// D returns the backing machine's disk count.
func (c *Cache) D() int { return c.m.D() }

// B returns the block size in words.
func (c *Cache) B() int { return c.m.B() }

// HitRate returns hits, misses, and the hit fraction.
func (c *Cache) HitRate() (hits, misses int64, rate float64) {
	total := c.hits + c.misses
	if total == 0 {
		return c.hits, c.misses, 0
	}
	return c.hits, c.misses, float64(c.hits) / float64(total)
}

// lookup returns the cached copy of a block, if present, refreshing its
// recency.
func (c *Cache) lookup(a pdm.Addr) ([]pdm.Word, bool) {
	el, ok := c.entries[a]
	if !ok {
		return nil, false
	}
	c.lru.MoveToFront(el)
	return el.Value.(*entry).data, true
}

// install stores a block copy, evicting the least recently used block
// if needed.
func (c *Cache) install(a pdm.Addr, data []pdm.Word) {
	if el, ok := c.entries[a]; ok {
		el.Value.(*entry).data = data
		c.lru.MoveToFront(el)
		return
	}
	for c.lru.Len() >= c.capacity {
		back := c.lru.Back()
		delete(c.entries, back.Value.(*entry).addr)
		c.lru.Remove(back)
	}
	c.entries[a] = c.lru.PushFront(&entry{addr: a, data: data})
}

// ReadBlock serves the block from memory when cached (no machine I/O),
// otherwise reads through and caches it. The returned slice is a copy.
func (c *Cache) ReadBlock(a pdm.Addr) []pdm.Word {
	if data, ok := c.lookup(a); ok {
		c.hits++
		out := make([]pdm.Word, len(data))
		copy(out, data)
		return out
	}
	c.misses++
	data := c.m.ReadBlock(a)
	cached := make([]pdm.Word, len(data))
	copy(cached, data)
	c.install(a, cached)
	return data
}

// WriteBlock writes through to the machine and refreshes the cache. A
// partial write (fewer than B words) leaves the block's tail unchanged
// on disk; the cached copy is merged when present and dropped otherwise
// (caching a zero-padded copy would be wrong).
func (c *Cache) WriteBlock(a pdm.Addr, data []pdm.Word) {
	c.m.WriteBlock(a, data)
	cached := make([]pdm.Word, c.m.B())
	if len(data) < c.m.B() {
		old, ok := c.lookup(a)
		if !ok {
			c.invalidate(a)
			return
		}
		copy(cached, old)
	}
	copy(cached, data)
	c.install(a, cached)
}

// invalidate drops a cached block, if present.
func (c *Cache) invalidate(a pdm.Addr) {
	if el, ok := c.entries[a]; ok {
		delete(c.entries, a)
		c.lru.Remove(el)
	}
}

// BatchRead serves cached blocks from memory and fetches only the
// misses from the machine, in one batch (so the parallel-I/O cost is
// that of the miss set alone).
func (c *Cache) BatchRead(addrs []pdm.Addr) [][]pdm.Word {
	out := make([][]pdm.Word, len(addrs))
	var missAddrs []pdm.Addr
	var missIdx []int
	for i, a := range addrs {
		if data, ok := c.lookup(a); ok {
			c.hits++
			cp := make([]pdm.Word, len(data))
			copy(cp, data)
			out[i] = cp
			continue
		}
		c.misses++
		missAddrs = append(missAddrs, a)
		missIdx = append(missIdx, i)
	}
	if len(missAddrs) > 0 {
		fetched := c.m.BatchRead(missAddrs)
		for j, data := range fetched {
			cached := make([]pdm.Word, len(data))
			copy(cached, data)
			c.install(missAddrs[j], cached)
			out[missIdx[j]] = data
		}
	}
	return out
}

// ReadStripe reads a logical stripe, serving fully cached stripes from
// memory.
func (c *Cache) ReadStripe(stripe int) []pdm.Word {
	blocks := c.BatchRead(pdm.StripeAddrs(c.m.D(), stripe))
	out := make([]pdm.Word, 0, c.m.D()*c.m.B())
	for _, b := range blocks {
		out = append(out, b...)
	}
	return out
}

// WriteStripe writes through a logical stripe and caches its blocks.
func (c *Cache) WriteStripe(stripe int, data []pdm.Word) {
	c.m.WriteStripe(stripe, data)
	b := c.m.B()
	for disk := 0; disk < c.m.D() && len(data) > 0; disk++ {
		n := b
		if n > len(data) {
			n = len(data)
		}
		a := pdm.Addr{Disk: disk, Block: stripe}
		if n < b {
			// Partial block within the stripe: the on-disk tail is not
			// known here — drop any cached copy rather than keep a
			// stale one.
			c.invalidate(a)
			data = data[n:]
			continue
		}
		cached := make([]pdm.Word, b)
		copy(cached, data[:n])
		c.install(a, cached)
		data = data[n:]
	}
}

// Len returns the number of cached blocks.
func (c *Cache) Len() int { return c.lru.Len() }

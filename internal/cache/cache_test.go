package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pdmdict/internal/pdm"
)

func newCache(d, b, capBlocks int) (*Cache, *pdm.Machine) {
	m := pdm.NewMachine(pdm.Config{D: d, B: b})
	return New(m, capBlocks), m
}

func TestReadThroughAndHit(t *testing.T) {
	c, m := newCache(2, 4, 8)
	a := pdm.Addr{Disk: 1, Block: 3}
	m.WriteBlock(a, []pdm.Word{7, 8, 9})
	m.ResetStats()

	if got := c.ReadBlock(a); got[0] != 7 {
		t.Fatalf("read-through = %v", got)
	}
	if m.Stats().BlockReads != 1 {
		t.Fatalf("miss did not reach the machine")
	}
	// Second read: a hit, free.
	if got := c.ReadBlock(a); got[2] != 9 {
		t.Fatalf("cached read = %v", got)
	}
	if m.Stats().BlockReads != 1 {
		t.Errorf("hit reached the machine")
	}
	hits, misses, rate := c.HitRate()
	if hits != 1 || misses != 1 || rate != 0.5 {
		t.Errorf("HitRate = %d/%d/%.2f", hits, misses, rate)
	}
}

func TestWriteThroughRefreshesCache(t *testing.T) {
	c, m := newCache(2, 4, 8)
	a := pdm.Addr{Disk: 0, Block: 0}
	c.WriteBlock(a, []pdm.Word{1, 2, 3, 4})
	m.ResetStats()
	if got := c.ReadBlock(a); got[3] != 4 {
		t.Fatalf("cached copy = %v", got)
	}
	if m.Stats().BlockReads != 0 {
		t.Error("write did not populate the cache")
	}
	// Disk copy matches (write-through).
	if got := m.Peek(a); got[1] != 2 {
		t.Errorf("disk copy = %v", got)
	}
}

func TestPartialWriteMergesOrInvalidates(t *testing.T) {
	c, m := newCache(1, 4, 8)
	a := pdm.Addr{Disk: 0, Block: 0}
	// Cached full block, then a partial overwrite: merged copy stays
	// correct.
	c.WriteBlock(a, []pdm.Word{1, 2, 3, 4})
	c.WriteBlock(a, []pdm.Word{9})
	if got := c.ReadBlock(a); got[0] != 9 || got[3] != 4 {
		t.Fatalf("merged copy = %v, want [9 2 3 4]", got)
	}
	// Uncached block + partial write: the cache must not fabricate a
	// zero tail.
	b := pdm.Addr{Disk: 0, Block: 5}
	m.WriteBlock(b, []pdm.Word{0, 0, 0, 42})
	c.WriteBlock(b, []pdm.Word{7})
	if got := c.ReadBlock(b); got[0] != 7 || got[3] != 42 {
		t.Fatalf("partial-write block = %v, want [7 0 0 42]", got)
	}
}

func TestLRUEviction(t *testing.T) {
	c, m := newCache(1, 2, 2)
	for blk := 0; blk < 3; blk++ {
		m.WriteBlock(pdm.Addr{Disk: 0, Block: blk}, []pdm.Word{pdm.Word(blk)})
	}
	c.ReadBlock(pdm.Addr{Disk: 0, Block: 0}) // miss
	c.ReadBlock(pdm.Addr{Disk: 0, Block: 1}) // miss; cache = {0,1}
	c.ReadBlock(pdm.Addr{Disk: 0, Block: 0}) // hit; 1 is now LRU
	c.ReadBlock(pdm.Addr{Disk: 0, Block: 2}) // miss; evicts 1
	if c.Len() != 2 {
		t.Fatalf("Len = %d", c.Len())
	}
	m.ResetStats()
	c.ReadBlock(pdm.Addr{Disk: 0, Block: 1}) // must miss again (evicts 0, the LRU)
	if m.Stats().BlockReads != 1 {
		t.Error("evicted block served from cache")
	}
	c.ReadBlock(pdm.Addr{Disk: 0, Block: 2}) // still cached
	if m.Stats().BlockReads != 1 {
		t.Error("recently used block was evicted")
	}
}

func TestBatchReadChargesOnlyMisses(t *testing.T) {
	c, m := newCache(4, 2, 8)
	addrs := []pdm.Addr{{Disk: 0}, {Disk: 1}, {Disk: 2}, {Disk: 3}}
	c.BatchRead(addrs) // all misses: 1 parallel I/O
	if m.Stats().ParallelIOs != 1 {
		t.Fatalf("cold batch = %d parallel I/Os", m.Stats().ParallelIOs)
	}
	m.ResetStats()
	c.BatchRead(addrs) // all hits: free
	if m.Stats().ParallelIOs != 0 {
		t.Errorf("warm batch = %d parallel I/Os, want 0", m.Stats().ParallelIOs)
	}
	// Partial hit: only the miss is charged.
	c.ReadBlock(pdm.Addr{Disk: 0, Block: 9}) // churn one slot? capacity 8, fine
	m.ResetStats()
	mixed := []pdm.Addr{{Disk: 0, Block: 0}, {Disk: 1, Block: 5}} // first cached, second not
	c.BatchRead(mixed)
	s := m.Stats()
	if s.BlockReads != 1 || s.ParallelIOs != 1 {
		t.Errorf("mixed batch: %d reads, %d parallel I/Os; want 1, 1", s.BlockReads, s.ParallelIOs)
	}
}

func TestStripeRoundTripThroughCache(t *testing.T) {
	c, m := newCache(3, 2, 16)
	data := []pdm.Word{1, 2, 3, 4, 5, 6}
	c.WriteStripe(4, data)
	m.ResetStats()
	got := c.ReadStripe(4) // fully cached
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("stripe word %d = %d", i, got[i])
		}
	}
	if m.Stats().ParallelIOs != 0 {
		t.Errorf("cached stripe read cost %d I/Os", m.Stats().ParallelIOs)
	}
	// Partial stripe write invalidates the straddled block.
	c.WriteStripe(4, []pdm.Word{9, 9, 9}) // fills disk 0, half of disk 1
	if got := c.ReadStripe(4); got[2] != 9 || got[3] != 4 {
		t.Fatalf("after partial stripe write: %v", got)
	}
}

func TestNewPanicsOnZeroCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("capacity 0 accepted")
		}
	}()
	newCache(1, 2, 0)
}

// Property: reads through the cache always agree with the machine,
// under random interleavings of reads and (full) writes.
func TestPropertyCacheTransparent(t *testing.T) {
	f := func(ops []uint16) bool {
		c, m := newCache(2, 2, 3)
		rng := rand.New(rand.NewSource(1))
		for _, op := range ops {
			a := pdm.Addr{Disk: int(op) % 2, Block: int(op/2) % 8}
			if op%3 == 0 {
				c.WriteBlock(a, []pdm.Word{pdm.Word(rng.Uint32()), pdm.Word(op)})
				continue
			}
			got := c.ReadBlock(a)
			want := m.Peek(a)
			for i := range want {
				if got[i] != want[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

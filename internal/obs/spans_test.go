package obs

import (
	"strings"
	"testing"
	"time"

	"pdmdict/internal/pdm"
)

func TestCostModelLatency(t *testing.T) {
	if got := DefaultCostModel.Latency(2, 3); got != 2*10*time.Millisecond+3*1310*time.Microsecond {
		t.Errorf("default latency = %v", got)
	}
	// The zero model means the default, so zero-valued Collectors work.
	var zero CostModel
	if zero.Latency(1, 0) != DefaultCostModel.StepCost {
		t.Errorf("zero model latency = %v, want %v", zero.Latency(1, 0), DefaultCostModel.StepCost)
	}
	ssd := CostModel{StepCost: 100 * time.Microsecond, BlockCost: 10 * time.Microsecond}
	if got := ssd.Latency(1, 1); got != 110*time.Microsecond {
		t.Errorf("custom latency = %v", got)
	}
}

func TestSpanFolderReconstructsNestedOps(t *testing.T) {
	m := pdm.NewMachine(pdm.Config{D: 2, B: 2})
	var rec eventRecorder
	m.SetHook(&rec)

	end := m.Span("insert")
	probe := m.Span("probe")
	m.BatchRead([]pdm.Addr{{Disk: 0, Block: 0}, {Disk: 1, Block: 0}}) // 1 step, 2 blocks
	probe()
	m.BatchWrite([]pdm.BlockWrite{{Addr: pdm.Addr{Disk: 0, Block: 1}}}) // 1 step, 1 block
	end()

	recs := FoldSpans(rec.events, CostModel{})
	if len(recs) != 2 {
		t.Fatalf("folded %d records, want 2: %+v", len(recs), recs)
	}
	// Inner span closes first.
	inner, outer := recs[0], recs[1]
	if inner.Tag != "insert.probe" || inner.Parent != outer.ID {
		t.Errorf("inner = %+v", inner)
	}
	if inner.Steps != 1 || inner.Blocks != 2 || inner.Reads != 2 || inner.Writes != 0 {
		t.Errorf("inner I/O = %+v", inner)
	}
	if outer.Tag != "insert" || outer.Parent != 0 {
		t.Errorf("outer = %+v", outer)
	}
	// The outer span includes the inner span's I/O.
	if outer.Steps != 2 || outer.Blocks != 3 || outer.Reads != 2 || outer.Writes != 1 || outer.Batches != 2 {
		t.Errorf("outer I/O = %+v", outer)
	}
	if outer.Latency != DefaultCostModel.Latency(2, 3) {
		t.Errorf("outer latency = %v, want %v", outer.Latency, DefaultCostModel.Latency(2, 3))
	}
	if outer.BeginStep != 0 || outer.EndStep != 2 {
		t.Errorf("outer steps = [%d,%d], want [0,2]", outer.BeginStep, outer.EndStep)
	}
}

func TestSpanFolderCountsFaultsWithoutDoubleCharging(t *testing.T) {
	// Fault events ride on a batch that is already counted; the folder
	// must count them as faults, not as extra batches or blocks.
	events := []pdm.Event{
		{Kind: pdm.EventSpanBegin, Tag: "lookup", Span: 1, Step: 0},
		{Kind: pdm.EventRead, Tag: "lookup", Span: 1, Steps: 1, Addrs: []pdm.Addr{{Disk: 0}}},
		{Kind: pdm.EventRead, Tag: "fault.stall", Span: 1, Steps: 3, Addrs: []pdm.Addr{{Disk: 0}}},
		{Kind: pdm.EventSpanEnd, Tag: "lookup", Span: 1, Step: 4},
	}
	recs := FoldSpans(events, CostModel{})
	if len(recs) != 1 {
		t.Fatalf("folded %d records, want 1", len(recs))
	}
	r := recs[0]
	if r.Faults != 1 || r.Batches != 1 || r.Blocks != 1 {
		t.Errorf("record = %+v, want 1 fault, 1 batch, 1 block", r)
	}
	if r.Steps != 4 { // stall steps reach the span through the step counter
		t.Errorf("steps = %d, want 4", r.Steps)
	}
}

func TestSpanFolderDrainsTruncatedTraces(t *testing.T) {
	var f SpanFolder
	f.Fold(pdm.Event{Kind: pdm.EventSpanBegin, Tag: "insert", Span: 7, Step: 5})
	f.Fold(pdm.Event{Kind: pdm.EventRead, Span: 7, Steps: 1, Addrs: []pdm.Addr{{}}})
	// An end without a begin is dropped, not a crash.
	if rec := f.Fold(pdm.Event{Kind: pdm.EventSpanEnd, Span: 99, Step: 6}); rec != nil {
		t.Errorf("orphan end produced %+v", rec)
	}
	if f.Open() != 1 {
		t.Fatalf("open = %d, want 1", f.Open())
	}
	recs := f.Drain(9)
	if len(recs) != 1 || f.Open() != 0 {
		t.Fatalf("drained %d records, %d still open", len(recs), f.Open())
	}
	if recs[0].Tag != "insert" || recs[0].Steps != 4 || recs[0].Blocks != 1 {
		t.Errorf("drained record = %+v", recs[0])
	}
}

func TestCollectorFoldsOpsFromSpans(t *testing.T) {
	c := NewCollector()
	m := pdm.NewMachine(pdm.Config{D: 2, B: 2})
	m.SetHook(c)

	for i := 0; i < 3; i++ {
		end := m.Span("lookup")
		inner := m.Span("probe")
		m.BatchRead([]pdm.Addr{{Disk: 0, Block: i}})
		inner()
		end()
	}

	ops := c.Ops()
	// Only root spans aggregate: nested probe phases roll up into their
	// parent lookup, not a tag of their own.
	if len(ops) != 1 {
		t.Fatalf("ops = %+v, want only the root tag", ops)
	}
	agg := ops["lookup"]
	if agg == nil || agg.Count != 3 || agg.StepSum != 3 || agg.BlockSum != 3 {
		t.Fatalf("lookup agg = %+v", agg)
	}
	if agg.LatencySumNanos != int64(3*DefaultCostModel.Latency(1, 1)) {
		t.Errorf("latency sum = %d", agg.LatencySumNanos)
	}
	if agg.Steps.Total() != 3 || agg.LatencyMicros.Total() != 3 {
		t.Errorf("hist totals = %d/%d, want 3/3", agg.Steps.Total(), agg.LatencyMicros.Total())
	}
	if c.OpenSpans() != 0 {
		t.Errorf("open spans = %d, want 0", c.OpenSpans())
	}

	var sb strings.Builder
	c.RenderOps(&sb)
	if out := sb.String(); !strings.Contains(out, "lookup") || !strings.Contains(out, "avg latency") {
		t.Errorf("RenderOps output:\n%s", out)
	}

	// Span events must not inflate the batch counters.
	if events, reads, _, _, _ := c.Totals(); events != 3 || reads != 3 {
		t.Errorf("totals = %d events %d reads, want 3/3", events, reads)
	}
}

func TestCollectorCustomCostModel(t *testing.T) {
	c := NewCollector()
	c.Cost = CostModel{StepCost: time.Second, BlockCost: 0}
	m := pdm.NewMachine(pdm.Config{D: 1, B: 1})
	m.SetHook(c)
	end := m.Span("op")
	m.BatchRead([]pdm.Addr{{Disk: 0, Block: 0}})
	end()
	agg := c.Ops()["op"]
	if agg == nil || agg.LatencySumNanos != int64(time.Second) {
		t.Fatalf("agg = %+v, want 1s modeled latency", agg)
	}
}

// Package obs is the observability layer for the parallel-disk
// simulator: sinks and metrics that plug into pdm.Machine's Hook.
//
// The package is deliberately zero-dependency (standard library only)
// and splits into three kinds of pieces:
//
//   - Sinks consume raw events: Ring keeps the last N events in memory,
//     JSONLWriter streams them to a file for offline analysis, and
//     Replay re-issues a recorded trace against a fresh machine to
//     reproduce its I/O cost.
//   - Hist is a log₂-bucketed histogram for long-tailed counts such as
//     parallel I/Os per operation; it is safe for concurrent use.
//   - Collector aggregates events into per-tag and per-disk totals plus
//     a depth histogram, renders them as text tables, and can publish
//     itself through expvar.
//
// Hooks compose with Tee, so a trace file and live metrics can be fed
// from the same machine simultaneously.
package obs

import (
	"fmt"
	"math/bits"
	"strings"
	"sync/atomic"

	"pdmdict/internal/pdm"
)

// HookFunc adapts a function to the pdm.Hook interface.
type HookFunc func(pdm.Event)

// Event implements pdm.Hook.
func (f HookFunc) Event(e pdm.Event) { f(e) }

// Tee fans each event out to every hook in order. Nil entries are
// skipped, so optional sinks can be passed unconditionally.
func Tee(hooks ...pdm.Hook) pdm.Hook {
	live := make([]pdm.Hook, 0, len(hooks))
	for _, h := range hooks {
		if h != nil {
			live = append(live, h)
		}
	}
	return HookFunc(func(e pdm.Event) {
		for _, h := range live {
			h.Event(e)
		}
	})
}

// histBuckets covers values up to 2⁶³ plus a dedicated zero bucket.
const histBuckets = 65

// Hist is a log₂-bucketed histogram of non-negative counts. Bucket 0
// holds zeros; bucket i (i ≥ 1) holds values in [2^(i-1), 2^i). All
// methods are safe for concurrent use.
type Hist struct {
	counts [histBuckets]atomic.Int64
}

// Observe records one sample. Negative values are clamped to zero.
func (h *Hist) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[bits.Len64(uint64(v))].Add(1)
}

// Total returns the number of samples observed.
func (h *Hist) Total() int64 {
	var n int64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// HistBucket is one non-empty histogram bucket covering [Lo, Hi].
type HistBucket struct {
	Lo    int64 `json:"lo"` // inclusive value range
	Hi    int64 `json:"hi"`
	Count int64 `json:"count"`
}

// Buckets returns the non-empty buckets in increasing value order.
func (h *Hist) Buckets() []HistBucket {
	var out []HistBucket
	for i := range h.counts {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		b := HistBucket{Count: c}
		if i > 0 {
			b.Lo = int64(1) << (i - 1)
			b.Hi = b.Lo<<1 - 1
		}
		out = append(out, b)
	}
	return out
}

// Quantile returns an upper bound for the q-quantile: the Hi edge of
// the log₂ bucket containing the sample of rank ⌊q·total⌋ (clamped to
// the last sample), i.e. 2^i − 1 for bucket i ≥ 1 and 0 for the zero
// bucket. The edge cases are pinned, so burn-rate and SLO math can rely
// on them:
//
//   - Empty histogram: 0 for every q — "no samples" reads as zero
//     latency, never a stale or negative sentinel.
//   - Single-bucket histogram: every q returns that one bucket's Hi
//     edge (0 when all samples are zeros) — quantiles of a degenerate
//     distribution are its only value.
//   - q outside [0,1] is clamped: q ≤ 0 is the minimum sample's bucket
//     edge, q ≥ 1 the maximum's.
func (h *Hist) Quantile(q float64) int64 {
	total := h.Total()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var seen int64
	for i := range h.counts {
		seen += h.counts[i].Load()
		if seen > rank {
			if i == 0 {
				return 0
			}
			return int64(1)<<i - 1
		}
	}
	return 0
}

// Render writes the histogram as an aligned text table with a bar per
// bucket, e.g. for "parallel I/Os per lookup".
func (h *Hist) Render(sb *strings.Builder, title string) {
	total := h.Total()
	fmt.Fprintf(sb, "%s (n=%d)\n", title, total)
	if total == 0 {
		return
	}
	buckets := h.Buckets()
	max := int64(0)
	for _, b := range buckets {
		if b.Count > max {
			max = b.Count
		}
	}
	for _, b := range buckets {
		label := fmt.Sprintf("%d", b.Lo)
		if b.Hi != b.Lo {
			label = fmt.Sprintf("%d-%d", b.Lo, b.Hi)
		}
		bar := strings.Repeat("█", int(40*b.Count/max))
		if bar == "" {
			bar = "▏"
		}
		fmt.Fprintf(sb, "  %12s  %8d  %5.1f%%  %s\n",
			label, b.Count, 100*float64(b.Count)/float64(total), bar)
	}
}

// String renders the histogram without a title line's context.
func (h *Hist) String() string {
	var sb strings.Builder
	h.Render(&sb, "histogram")
	return sb.String()
}

// Summary is a compact, JSON-friendly digest of a histogram.
type Summary struct {
	Name    string       `json:"name"`
	Total   int64        `json:"total"`
	P50     int64        `json:"p50"`
	P99     int64        `json:"p99"`
	P999    int64        `json:"p999"`
	Max     int64        `json:"max"`
	Buckets []HistBucket `json:"buckets,omitempty"`
}

// Summarize digests the histogram under the given name.
func (h *Hist) Summarize(name string) Summary {
	s := Summary{
		Name:    name,
		Total:   h.Total(),
		P50:     h.Quantile(0.50),
		P99:     h.Quantile(0.99),
		P999:    h.Quantile(0.999),
		Buckets: h.Buckets(),
	}
	if n := len(s.Buckets); n > 0 {
		s.Max = s.Buckets[n-1].Hi
	}
	return s
}

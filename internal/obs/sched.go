package obs

// SchedSnapshot is a point-in-time view of the group-commit scheduler
// (internal/sched), served verbatim as JSON on /debug/sched and
// projected into the pdm_sched_* Prometheus families on /metrics. For a
// deterministic workload the snapshot is byte-deterministic.
type SchedSnapshot struct {
	// Lookups counts admitted lookup operations.
	Lookups int64 `json:"lookups"`
	// Rounds counts merged shared read rounds executed.
	Rounds int64 `json:"rounds"`
	// RoundsSaved counts rounds avoided by coalescing: Σ over rounds of
	// (participants − 1). Lookups − RoundsSaved == Rounds.
	RoundsSaved int64 `json:"rounds_saved"`
	// Writes counts admitted mutations (inserts + deletes).
	Writes int64 `json:"writes"`
	// Flushes counts group commits of the write queue.
	Flushes int64 `json:"flushes"`
	// Overloads counts writers bounced with ErrOverloaded.
	Overloads int64 `json:"overloads"`
	// QueueDepth is the current pending-write queue length.
	QueueDepth int64 `json:"queue_depth"`
	// QueuePeak is the high-water mark of QueueDepth — never above the
	// configured bound.
	QueuePeak int64 `json:"queue_peak"`
	// PendingReads is the current open window's admitted lookup count.
	PendingReads int64 `json:"pending_reads"`
	// OccupancySum is Σ of read-round occupancies (equals Lookups over
	// completed rounds); OccupancySum/Rounds is mean batch occupancy.
	OccupancySum int64 `json:"occupancy_sum"`
	// Occupancy is the read-round occupancy histogram.
	Occupancy Summary `json:"occupancy"`
	// WindowStepSum is Σ of admission-window lengths measured on the
	// injected machine step clock.
	WindowStepSum int64 `json:"window_step_sum"`
	// WindowSteps is the admission-window length histogram (machine
	// steps elapsed while the window stayed open).
	WindowSteps Summary `json:"window_steps"`
}

package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"

	"pdmdict/internal/pdm"
)

// TraceVersion is the trace format written by JSONLWriter. Version 5
// added annotation events: "health" lines record per-disk health-state
// transitions and "alert" lines record alert-instance transitions
// synthesized by Monitor, both carrying from/to state names (health
// lines a disk address, alert lines a rule name and sampled value).
// Version 4 added operation tokens: span and batch lines carry the
// owning op's ID and client, root span lines its key count, and merged
// batches their attribution list. Version 3 added a header line and
// first-class span events. Older traces (versions 1–4, including
// headerless 1/2 traces) still load; fields their version lacks simply
// read back as zero.
const TraceVersion = 5

// jsonlEvent is the on-disk shape of one trace line. Addresses are
// [disk, block] pairs to keep traces compact. Span lines reuse the
// struct with k = "span_begin" / "span_end" and carry span/parent ids
// plus the machine's parallel-I/O step counter; batch lines carry the
// id of their innermost open span. Wall-clock durations are excluded
// by construction — pdm.Event.WallNanos has no field here — so traces
// stay byte-identical across runs of the same seed and workload. The
// header line reuses the struct too, with k = "trace" and v set.
type jsonlEvent struct {
	Kind    string   `json:"k"`
	Version int      `json:"v,omitempty"`
	Tag     string   `json:"tag,omitempty"`
	Steps   int      `json:"steps,omitempty"`
	Depth   int      `json:"depth,omitempty"`
	Span    uint64   `json:"span,omitempty"`
	Parent  uint64   `json:"parent,omitempty"`
	Step    int64    `json:"step,omitempty"`
	Op      uint64   `json:"op,omitempty"`
	Client  int      `json:"client,omitempty"`
	Keys    int      `json:"keys,omitempty"`
	Ops     []uint64 `json:"ops,omitempty"`
	Addrs   [][2]int `json:"addrs,omitempty"`
	Rule    string   `json:"rule,omitempty"`
	From    string   `json:"from,omitempty"`
	To      string   `json:"to,omitempty"`
	Value   int64    `json:"value,omitempty"`
}

// JSONLWriter streams events to w, one JSON object per line, after a
// version header line. It buffers internally; call Close (or Flush)
// before reading the output. Safe for concurrent use.
type JSONLWriter struct {
	mu  sync.Mutex
	bw  *bufio.Writer
	enc *json.Encoder
	err error
}

// NewJSONLWriter wraps w in a trace writer and writes the trace
// header. Header write errors are sticky and reported by Close, like
// event errors.
func NewJSONLWriter(w io.Writer) *JSONLWriter {
	bw := bufio.NewWriter(w)
	jw := &JSONLWriter{bw: bw, enc: json.NewEncoder(bw)}
	jw.err = jw.enc.Encode(jsonlEvent{Kind: "trace", Version: TraceVersion})
	return jw
}

// Event implements pdm.Hook. Encoding errors are sticky and reported
// by Close.
func (w *JSONLWriter) Event(e pdm.Event) {
	line := jsonlEvent{
		Kind:   e.Kind.String(),
		Tag:    e.Tag,
		Steps:  e.Steps,
		Depth:  e.Depth,
		Span:   e.Span,
		Parent: e.Parent,
		Step:   e.Step,
		Op:     e.Op,
		Client: e.Client,
		Keys:   e.Keys,
		Ops:    e.Ops,
		Rule:   e.Rule,
		From:   e.From,
		To:     e.To,
		Value:  e.Value,
	}
	if len(e.Addrs) > 0 {
		line.Addrs = make([][2]int, len(e.Addrs))
		for i, a := range e.Addrs {
			line.Addrs[i] = [2]int{a.Disk, a.Block}
		}
	}
	w.mu.Lock()
	if w.err == nil {
		w.err = w.enc.Encode(line)
	}
	w.mu.Unlock()
}

// Flush forces buffered lines out to the underlying writer.
func (w *JSONLWriter) Flush() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	return w.bw.Flush()
}

// Close flushes and returns the first error seen, if any. It does not
// close the underlying writer.
func (w *JSONLWriter) Close() error { return w.Flush() }

// ParseError reports a malformed trace line with its 1-based line
// number, so tools can point at the exact spot in the file.
type ParseError struct {
	Line int
	Err  error
}

// Error formats the failure with its line number.
func (e *ParseError) Error() string { return fmt.Sprintf("line %d: %v", e.Line, e.Err) }

// Unwrap exposes the underlying cause.
func (e *ParseError) Unwrap() error { return e.Err }

// ReadEvents parses a JSONL trace back into events. It accepts the
// current versioned format and headerless version 1/2 traces, and
// rejects unknown event kinds and future versions. Errors are
// *ParseError carrying the offending line number.
func ReadEvents(r io.Reader) ([]pdm.Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 16*1024*1024)
	var out []pdm.Event
	lineno := 0
	for sc.Scan() {
		lineno++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var line jsonlEvent
		dec := json.NewDecoder(bytes.NewReader(raw))
		if err := dec.Decode(&line); err != nil {
			return out, &ParseError{Line: lineno, Err: err}
		}
		if dec.More() {
			return out, &ParseError{Line: lineno, Err: fmt.Errorf("trailing data after JSON object")}
		}
		e := pdm.Event{
			Tag:    line.Tag,
			Steps:  line.Steps,
			Depth:  line.Depth,
			Span:   line.Span,
			Parent: line.Parent,
			Step:   line.Step,
			Op:     line.Op,
			Client: line.Client,
			Keys:   line.Keys,
			Ops:    line.Ops,
			Rule:   line.Rule,
			From:   line.From,
			To:     line.To,
			Value:  line.Value,
		}
		switch line.Kind {
		case "trace":
			if lineno != 1 {
				return out, &ParseError{Line: lineno, Err: fmt.Errorf("trace header not on first line")}
			}
			if line.Version > TraceVersion {
				return out, &ParseError{Line: lineno, Err: fmt.Errorf("trace version %d not supported (max %d)", line.Version, TraceVersion)}
			}
			continue
		case "read":
			e.Kind = pdm.EventRead
		case "write":
			e.Kind = pdm.EventWrite
		case "span_begin":
			e.Kind = pdm.EventSpanBegin
		case "span_end":
			e.Kind = pdm.EventSpanEnd
		case "health":
			e.Kind = pdm.EventHealth
		case "alert":
			e.Kind = pdm.EventAlert
		default:
			return out, &ParseError{Line: lineno, Err: fmt.Errorf("unknown event kind %q", line.Kind)}
		}
		if len(line.Addrs) > 0 {
			e.Addrs = make([]pdm.Addr, len(line.Addrs))
			for i, a := range line.Addrs {
				e.Addrs[i] = pdm.Addr{Disk: a[0], Block: a[1]}
			}
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return out, &ParseError{Line: lineno + 1, Err: err}
	}
	return out, nil
}

// Replay re-issues a recorded trace against m, batch for batch,
// reproducing the trace's I/O cost profile (block contents are not
// recorded, so writes store zero blocks). Version 3+ traces carry span
// events, and Replay re-opens the recorded spans on m — nesting
// included — so a replayed machine emits the same span structure the
// original did; spans left open by a truncated trace are closed at the
// end. Version 4 traces carry operation tokens, which Replay re-mints
// with their recorded IDs, clients, and key counts, re-issuing
// token-carrying spans and batches (including merged batches and their
// attribution lists) through the op-aware machine entry points, so a
// replayed single-threaded trace serializes back byte-identically.
// Headerless traces without span events fall back to wrapping each
// tagged batch in its own span, as earlier versions did. It returns the
// stats delta the replay produced.
func Replay(m *pdm.Machine, events []pdm.Event) pdm.Stats {
	hasSpans := false
	for _, e := range events {
		if e.Kind.IsSpan() {
			hasSpans = true
			break
		}
	}
	before := m.Stats()
	ops := map[uint64]*pdm.Op{}
	op := func(id uint64, client, keys int) *pdm.Op {
		if id == 0 {
			return nil
		}
		o := ops[id]
		if o == nil {
			o = pdm.MakeOp(id, client, keys)
			ops[id] = o
		}
		return o
	}
	var stack []func()
	for _, e := range events {
		switch e.Kind {
		case pdm.EventSpanBegin:
			// The recorded tag is the span's full dot-joined path; the
			// machine re-joins nested spans itself, so re-open with the
			// leaf component only.
			leaf := e.Tag
			if i := strings.LastIndexByte(leaf, '.'); i >= 0 {
				leaf = leaf[i+1:]
			}
			if e.Op != 0 {
				stack = append(stack, m.OpSpan(op(e.Op, e.Client, e.Keys), leaf))
			} else {
				stack = append(stack, m.Span(leaf)) //lint:pdm-allow hooktag: replays tags recorded in the trace being reproduced
			}
		case pdm.EventSpanEnd:
			if n := len(stack); n > 0 {
				stack[n-1]()
				stack = stack[:n-1]
			}
		case pdm.EventHealth, pdm.EventAlert:
			// Annotations transfer no blocks and charge no steps; the
			// replaying machine regenerates its own health stream (none,
			// on the fault-oblivious replay path), so re-issuing them
			// would double-count nothing but would confuse sinks.
		default:
			end := func() {}
			if !hasSpans && e.Tag != "" {
				end = m.Span(e.Tag) //lint:pdm-allow hooktag: replays tags recorded in the trace being reproduced
			}
			switch {
			case e.Kind == pdm.EventWrite:
				writes := make([]pdm.BlockWrite, len(e.Addrs))
				for i, a := range e.Addrs {
					writes[i] = pdm.BlockWrite{Addr: a}
				}
				m.BatchWriteOp(op(e.Op, e.Client, 0), writes)
			case len(e.Ops) > 0:
				shared := make([]*pdm.Op, len(e.Ops))
				for i, id := range e.Ops {
					shared[i] = op(id, 0, 0)
				}
				m.BatchReadShared(shared, e.Addrs)
			case len(e.Addrs) == 0 && e.Steps > 0:
				// An addr-less charged read is modeled waiting (a retry
				// policy's backoff) recorded by ChargeSteps; re-charge it
				// the same way so the replayed cost profile stays exact.
				m.ChargeSteps(op(e.Op, e.Client, 0), e.Steps)
			default:
				m.BatchReadOp(op(e.Op, e.Client, 0), e.Addrs)
			}
			end()
		}
	}
	for i := len(stack) - 1; i >= 0; i-- {
		stack[i]()
	}
	return m.Stats().Sub(before)
}

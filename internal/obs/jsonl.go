package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"

	"pdmdict/internal/pdm"
)

// jsonlEvent is the on-disk shape of one trace line. Addresses are
// [disk, block] pairs to keep traces compact.
type jsonlEvent struct {
	Kind  string   `json:"k"` // "read" or "write"
	Tag   string   `json:"tag,omitempty"`
	Steps int      `json:"steps"`
	Depth int      `json:"depth"`
	Addrs [][2]int `json:"addrs"`
}

// JSONLWriter streams events to w, one JSON object per line. It
// buffers internally; call Close (or Flush) before reading the output.
// Safe for concurrent use.
type JSONLWriter struct {
	mu  sync.Mutex
	bw  *bufio.Writer
	enc *json.Encoder
	err error
}

// NewJSONLWriter wraps w in a trace writer.
func NewJSONLWriter(w io.Writer) *JSONLWriter {
	bw := bufio.NewWriter(w)
	return &JSONLWriter{bw: bw, enc: json.NewEncoder(bw)}
}

// Event implements pdm.Hook. Encoding errors are sticky and reported
// by Close.
func (w *JSONLWriter) Event(e pdm.Event) {
	line := jsonlEvent{
		Kind:  e.Kind.String(),
		Tag:   e.Tag,
		Steps: e.Steps,
		Depth: e.Depth,
		Addrs: make([][2]int, len(e.Addrs)),
	}
	for i, a := range e.Addrs {
		line.Addrs[i] = [2]int{a.Disk, a.Block}
	}
	w.mu.Lock()
	if w.err == nil {
		w.err = w.enc.Encode(line)
	}
	w.mu.Unlock()
}

// Flush forces buffered lines out to the underlying writer.
func (w *JSONLWriter) Flush() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	return w.bw.Flush()
}

// Close flushes and returns the first error seen, if any. It does not
// close the underlying writer.
func (w *JSONLWriter) Close() error { return w.Flush() }

// ReadEvents parses a JSONL trace back into events.
func ReadEvents(r io.Reader) ([]pdm.Event, error) {
	dec := json.NewDecoder(bufio.NewReader(r))
	var out []pdm.Event
	for {
		var line jsonlEvent
		if err := dec.Decode(&line); err == io.EOF {
			return out, nil
		} else if err != nil {
			return out, err
		}
		e := pdm.Event{
			Tag:   line.Tag,
			Steps: line.Steps,
			Depth: line.Depth,
			Addrs: make([]pdm.Addr, len(line.Addrs)),
		}
		if line.Kind == "write" {
			e.Kind = pdm.EventWrite
		}
		for i, a := range line.Addrs {
			e.Addrs[i] = pdm.Addr{Disk: a[0], Block: a[1]}
		}
		out = append(out, e)
	}
}

// Replay re-issues a recorded trace against m, batch for batch,
// reproducing the trace's I/O cost profile (block contents are not
// recorded, so writes store zero blocks). It returns the stats delta
// the replay produced.
func Replay(m *pdm.Machine, events []pdm.Event) pdm.Stats {
	before := m.Stats()
	for _, e := range events {
		end := func() {}
		if e.Tag != "" {
			end = m.Span(e.Tag) //lint:pdm-allow hooktag: replays tags recorded in the trace being reproduced
		}
		if e.Kind == pdm.EventWrite {
			writes := make([]pdm.BlockWrite, len(e.Addrs))
			for i, a := range e.Addrs {
				writes[i] = pdm.BlockWrite{Addr: a}
			}
			m.BatchWrite(writes)
		} else {
			m.BatchRead(e.Addrs)
		}
		end()
	}
	return m.Stats().Sub(before)
}

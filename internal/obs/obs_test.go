package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"pdmdict/internal/pdm"
)

func TestHistBucketsAndQuantiles(t *testing.T) {
	var h Hist
	for _, v := range []int64{0, 1, 1, 2, 3, 5, 100} {
		h.Observe(v)
	}
	h.Observe(-7) // clamps to zero
	if h.Total() != 8 {
		t.Fatalf("Total = %d, want 8", h.Total())
	}
	bs := h.Buckets()
	// zeros:2, [1,1]:2, [2,3]:2, [4,7]:1, [64,127]:1
	want := []HistBucket{
		{0, 0, 2}, {1, 1, 2}, {2, 3, 2}, {4, 7, 1}, {64, 127, 1},
	}
	if len(bs) != len(want) {
		t.Fatalf("buckets = %+v, want %+v", bs, want)
	}
	for i := range want {
		if bs[i] != want[i] {
			t.Errorf("bucket %d = %+v, want %+v", i, bs[i], want[i])
		}
	}
	if q := h.Quantile(0.5); q != 3 {
		t.Errorf("p50 = %d, want 3 (upper edge of the median bucket)", q)
	}
	if q := h.Quantile(1.0); q != 127 {
		t.Errorf("p100 = %d, want 127", q)
	}
	var empty Hist
	if empty.Quantile(0.5) != 0 {
		t.Error("empty histogram quantile should be 0")
	}
	s := h.Summarize("x")
	if s.Name != "x" || s.Total != 8 || s.Max != 127 {
		t.Errorf("summary = %+v", s)
	}
	if !strings.Contains(h.String(), "64-127") {
		t.Errorf("render missing bucket label:\n%s", h.String())
	}
}

func TestHistConcurrent(t *testing.T) {
	var h Hist
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := int64(0); i < 1000; i++ {
				h.Observe(i % 17)
			}
		}()
	}
	wg.Wait()
	if h.Total() != 8000 {
		t.Errorf("Total = %d, want 8000", h.Total())
	}
}

func TestRingKeepsMostRecent(t *testing.T) {
	r := NewRing(3)
	for i := 0; i < 5; i++ {
		r.Event(pdm.Event{Steps: i, Addrs: []pdm.Addr{{Disk: i}}})
	}
	evs := r.Events()
	if len(evs) != 3 || r.Total() != 5 {
		t.Fatalf("len=%d total=%d, want 3/5", len(evs), r.Total())
	}
	for i, e := range evs {
		if e.Steps != i+2 {
			t.Errorf("event %d steps = %d, want %d (oldest-first)", i, e.Steps, i+2)
		}
	}
}

func TestRingCopiesAddrs(t *testing.T) {
	r := NewRing(2)
	addrs := []pdm.Addr{{Disk: 1, Block: 2}}
	r.Event(pdm.Event{Addrs: addrs})
	addrs[0] = pdm.Addr{Disk: 9, Block: 9} // caller reuses its slice
	if got := r.Events()[0].Addrs[0]; got != (pdm.Addr{Disk: 1, Block: 2}) {
		t.Errorf("ring aliased caller slice: %v", got)
	}
}

func TestJSONLRoundTripAndReplay(t *testing.T) {
	m := pdm.NewMachine(pdm.Config{D: 4, B: 2})
	var buf bytes.Buffer
	w := NewJSONLWriter(&buf)
	m.SetHook(w)

	end := m.Span("insert")
	m.BatchWrite([]pdm.BlockWrite{
		{Addr: pdm.Addr{Disk: 0, Block: 0}, Data: []pdm.Word{1}},
		{Addr: pdm.Addr{Disk: 0, Block: 1}, Data: []pdm.Word{2}},
	})
	end()
	m.BatchRead([]pdm.Addr{{Disk: 0, Block: 0}, {Disk: 1, Block: 0}})
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	events, err := ReadEvents(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadEvents: %v", err)
	}
	if len(events) != 2 {
		t.Fatalf("read %d events, want 2", len(events))
	}
	if events[0].Kind != pdm.EventWrite || events[0].Tag != "insert" ||
		events[0].Steps != 2 || len(events[0].Addrs) != 2 {
		t.Errorf("event 0 = %+v", events[0])
	}
	if events[1].Kind != pdm.EventRead || events[1].Tag != "" || events[1].Steps != 1 {
		t.Errorf("event 1 = %+v", events[1])
	}

	// Replaying the trace on a fresh machine reproduces its I/O cost.
	fresh := pdm.NewMachine(pdm.Config{D: 4, B: 2})
	delta := Replay(fresh, events)
	if want := m.Stats(); delta.ParallelIOs != want.ParallelIOs ||
		delta.BlockReads != want.BlockReads || delta.BlockWrites != want.BlockWrites ||
		delta.MaxBatch != want.MaxBatch {
		t.Errorf("replay delta %+v, want cost profile of %+v", delta, want)
	}
}

func TestTeeFansOutAndSkipsNil(t *testing.T) {
	var a, b Collector
	a.tags, b.tags = map[string]*TagStats{}, map[string]*TagStats{}
	tee := Tee(&a, nil, &b)
	tee.Event(pdm.Event{Steps: 1, Addrs: []pdm.Addr{{}}})
	if na, _, _, _, _ := a.Totals(); na != 1 {
		t.Error("first hook missed event")
	}
	if nb, _, _, _, _ := b.Totals(); nb != 1 {
		t.Error("second hook missed event")
	}
}

func TestCollectorAggregates(t *testing.T) {
	c := NewCollector()
	c.WindowSteps = 2 // close a window every 2 steps
	m := pdm.NewMachine(pdm.Config{D: 2, B: 2})
	m.SetHook(c)

	end := m.Span("insert")
	m.BatchWrite([]pdm.BlockWrite{
		{Addr: pdm.Addr{Disk: 0, Block: 0}, Data: []pdm.Word{1}},
		{Addr: pdm.Addr{Disk: 1, Block: 0}, Data: []pdm.Word{2}},
	})
	end()
	end = m.Span("lookup")
	m.BatchRead([]pdm.Addr{{Disk: 0, Block: 0}})
	m.BatchRead([]pdm.Addr{{Disk: 0, Block: 0}})
	end()

	events, reads, writes, steps, blocks := c.Totals()
	if events != 3 || reads != 2 || writes != 1 || steps != 3 || blocks != 4 {
		t.Errorf("totals = %d %d %d %d %d, want 3 2 1 3 4",
			events, reads, writes, steps, blocks)
	}
	tags := c.Tags()
	if tags["insert"].Blocks != 2 || tags["lookup"].Batches != 2 {
		t.Errorf("tags = %+v", tags)
	}
	if pd := c.PerDisk(); len(pd) != 2 || pd[0] != 3 || pd[1] != 1 {
		t.Errorf("perDisk = %v, want [3 1]", pd)
	}
	if ws := c.Windows(); len(ws) == 0 || ws[0].EndStep < 2 {
		t.Errorf("windows = %+v, want at least one closed window", ws)
	} else if sum := ws[0].PerDisk[0] + ws[0].PerDisk[1]; sum == 0 {
		t.Errorf("window has no transfers: %+v", ws[0])
	}
	out := c.String()
	for _, want := range []string{"insert", "lookup", "skew (max/mean)"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestCollectorGrowsDisksAcrossMachines(t *testing.T) {
	// One collector observing two machines with different D must grow
	// its per-disk tallies to the widest machine.
	c := NewCollector()
	small := pdm.NewMachine(pdm.Config{D: 2, B: 2})
	big := pdm.NewMachine(pdm.Config{D: 6, B: 2})
	small.SetHook(c)
	big.SetHook(c)
	small.BatchRead([]pdm.Addr{{Disk: 1, Block: 0}})
	big.BatchRead([]pdm.Addr{{Disk: 5, Block: 0}})
	if pd := c.PerDisk(); len(pd) != 6 || pd[1] != 1 || pd[5] != 1 {
		t.Errorf("perDisk = %v, want len 6 with disks 1 and 5 hit", pd)
	}
}

func TestCollectorExpvarShape(t *testing.T) {
	c := NewCollector()
	c.Event(pdm.Event{Kind: pdm.EventRead, Tag: "lookup", Steps: 1,
		Addrs: []pdm.Addr{{Disk: 0, Block: 0}}})
	// Marshal the same value Publish would export, without registering
	// a global expvar name (duplicate names panic across tests).
	events, reads, writes, steps, blocks := c.Totals()
	blob, err := json.Marshal(expvarState{
		Batches: events, Reads: reads, Writes: writes, Steps: steps,
		Blocks: blocks, Depth: c.Depth.Summarize("batch_depth"),
		Tags: c.Tags(), PerDisk: c.PerDisk(),
	})
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	for _, want := range []string{`"parallel_ios":1`, `"lookup"`, `"per_disk":[1]`} {
		if !strings.Contains(string(blob), want) {
			t.Errorf("expvar JSON missing %s: %s", want, blob)
		}
	}
}

func TestCollectorConcurrent(t *testing.T) {
	c := NewCollector()
	m := pdm.NewMachine(pdm.Config{D: 4, B: 2})
	m.SetHook(c)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				end := m.Span("op")
				m.BatchRead([]pdm.Addr{{Disk: g % 4, Block: i % 8}})
				end()
			}
		}(g)
	}
	wg.Wait()
	if events, _, _, _, _ := c.Totals(); events != 800 {
		t.Errorf("events = %d, want 800", events)
	}
	if c.Depth.Total() != 800 {
		t.Errorf("depth samples = %d, want 800", c.Depth.Total())
	}
}

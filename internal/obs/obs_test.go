package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"

	"pdmdict/internal/pdm"
)

func TestHistBucketsAndQuantiles(t *testing.T) {
	var h Hist
	for _, v := range []int64{0, 1, 1, 2, 3, 5, 100} {
		h.Observe(v)
	}
	h.Observe(-7) // clamps to zero
	if h.Total() != 8 {
		t.Fatalf("Total = %d, want 8", h.Total())
	}
	bs := h.Buckets()
	// zeros:2, [1,1]:2, [2,3]:2, [4,7]:1, [64,127]:1
	want := []HistBucket{
		{0, 0, 2}, {1, 1, 2}, {2, 3, 2}, {4, 7, 1}, {64, 127, 1},
	}
	if len(bs) != len(want) {
		t.Fatalf("buckets = %+v, want %+v", bs, want)
	}
	for i := range want {
		if bs[i] != want[i] {
			t.Errorf("bucket %d = %+v, want %+v", i, bs[i], want[i])
		}
	}
	if q := h.Quantile(0.5); q != 3 {
		t.Errorf("p50 = %d, want 3 (upper edge of the median bucket)", q)
	}
	if q := h.Quantile(1.0); q != 127 {
		t.Errorf("p100 = %d, want 127", q)
	}
	var empty Hist
	if empty.Quantile(0.5) != 0 {
		t.Error("empty histogram quantile should be 0")
	}
	s := h.Summarize("x")
	if s.Name != "x" || s.Total != 8 || s.Max != 127 {
		t.Errorf("summary = %+v", s)
	}
	if !strings.Contains(h.String(), "64-127") {
		t.Errorf("render missing bucket label:\n%s", h.String())
	}
}

func TestHistConcurrent(t *testing.T) {
	var h Hist
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := int64(0); i < 1000; i++ {
				h.Observe(i % 17)
			}
		}()
	}
	wg.Wait()
	if h.Total() != 8000 {
		t.Errorf("Total = %d, want 8000", h.Total())
	}
}

func TestRingKeepsMostRecent(t *testing.T) {
	r := NewRing(3)
	for i := 0; i < 5; i++ {
		r.Event(pdm.Event{Steps: i, Addrs: []pdm.Addr{{Disk: i}}})
	}
	evs := r.Events()
	if len(evs) != 3 || r.Total() != 5 {
		t.Fatalf("len=%d total=%d, want 3/5", len(evs), r.Total())
	}
	for i, e := range evs {
		if e.Steps != i+2 {
			t.Errorf("event %d steps = %d, want %d (oldest-first)", i, e.Steps, i+2)
		}
	}
}

func TestRingCopiesAddrs(t *testing.T) {
	r := NewRing(2)
	addrs := []pdm.Addr{{Disk: 1, Block: 2}}
	r.Event(pdm.Event{Addrs: addrs})
	addrs[0] = pdm.Addr{Disk: 9, Block: 9} // caller reuses its slice
	if got := r.Events()[0].Addrs[0]; got != (pdm.Addr{Disk: 1, Block: 2}) {
		t.Errorf("ring aliased caller slice: %v", got)
	}
}

func TestJSONLRoundTripAndReplay(t *testing.T) {
	m := pdm.NewMachine(pdm.Config{D: 4, B: 2})
	var buf bytes.Buffer
	w := NewJSONLWriter(&buf)
	m.SetHook(w)

	end := m.Span("insert")
	m.BatchWrite([]pdm.BlockWrite{
		{Addr: pdm.Addr{Disk: 0, Block: 0}, Data: []pdm.Word{1}},
		{Addr: pdm.Addr{Disk: 0, Block: 1}, Data: []pdm.Word{2}},
	})
	end()
	m.BatchRead([]pdm.Addr{{Disk: 0, Block: 0}, {Disk: 1, Block: 0}})
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	if first, _, _ := strings.Cut(buf.String(), "\n"); !strings.Contains(first, `"k":"trace"`) ||
		!strings.Contains(first, `"v":5`) {
		t.Errorf("missing v5 header, first line = %s", first)
	}
	events, err := ReadEvents(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadEvents: %v", err)
	}
	if len(events) != 4 {
		t.Fatalf("read %d events, want 4 (span_begin, write, span_end, read)", len(events))
	}
	if events[0].Kind != pdm.EventSpanBegin || events[0].Tag != "insert" ||
		events[0].Span == 0 || events[0].Parent != 0 {
		t.Errorf("event 0 = %+v", events[0])
	}
	if events[1].Kind != pdm.EventWrite || events[1].Tag != "insert" ||
		events[1].Steps != 2 || len(events[1].Addrs) != 2 || events[1].Span != events[0].Span {
		t.Errorf("event 1 = %+v", events[1])
	}
	if events[2].Kind != pdm.EventSpanEnd || events[2].Span != events[0].Span ||
		events[2].Step != 2 || events[2].WallNanos != 0 {
		t.Errorf("event 2 = %+v", events[2])
	}
	if events[3].Kind != pdm.EventRead || events[3].Tag != "" || events[3].Steps != 1 {
		t.Errorf("event 3 = %+v", events[3])
	}

	// Replaying the trace on a fresh machine reproduces its I/O cost.
	fresh := pdm.NewMachine(pdm.Config{D: 4, B: 2})
	delta := Replay(fresh, events)
	if want := m.Stats(); delta.ParallelIOs != want.ParallelIOs ||
		delta.BlockReads != want.BlockReads || delta.BlockWrites != want.BlockWrites ||
		delta.MaxBatch != want.MaxBatch {
		t.Errorf("replay delta %+v, want cost profile of %+v", delta, want)
	}
}

func TestJSONLReadsHeaderlessV2Traces(t *testing.T) {
	// Traces written before the version header (formats 1 and 2) are
	// plain batch lines; they must still load.
	trace := `{"k":"write","tag":"insert","steps":2,"depth":2,"addrs":[[0,0],[0,1]]}
{"k":"read","steps":1,"depth":1,"addrs":[[1,0]]}
`
	events, err := ReadEvents(strings.NewReader(trace))
	if err != nil {
		t.Fatalf("ReadEvents: %v", err)
	}
	if len(events) != 2 || events[0].Kind != pdm.EventWrite || events[0].Span != 0 ||
		events[1].Kind != pdm.EventRead {
		t.Fatalf("events = %+v", events)
	}
	// Headerless traces have no span events, so Replay wraps each tagged
	// batch in its own span (the old behavior).
	fresh := pdm.NewMachine(pdm.Config{D: 4, B: 2})
	var rec eventRecorder
	fresh.SetHook(&rec)
	Replay(fresh, events)
	kinds := rec.kinds()
	want := []pdm.EventKind{pdm.EventSpanBegin, pdm.EventWrite, pdm.EventSpanEnd, pdm.EventRead}
	if len(kinds) != len(want) {
		t.Fatalf("replay emitted %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("replay emitted %v, want %v", kinds, want)
		}
	}
}

func TestJSONLParseErrorsCarryLineNumbers(t *testing.T) {
	cases := []struct {
		name  string
		trace string
		line  int
		want  string
	}{
		{"truncated json", "{\"k\":\"read\",\"steps\":1}\n{\"k\":\"wri", 2, "line 2"},
		{"unknown kind", "{\"k\":\"read\"}\n{\"k\":\"read\"}\n{\"k\":\"frobnicate\"}\n", 3, "unknown event kind"},
		{"future version", "{\"k\":\"trace\",\"v\":99}\n", 1, "version 99"},
		{"misplaced header", "{\"k\":\"read\"}\n{\"k\":\"trace\",\"v\":3}\n", 2, "first line"},
		{"trailing garbage", "{\"k\":\"read\"} {\"k\":\"read\"}\n", 1, "trailing data"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadEvents(strings.NewReader(tc.trace))
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("err = %v, want *ParseError", err)
			}
			if pe.Line != tc.line {
				t.Errorf("line = %d, want %d", pe.Line, tc.line)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q missing %q", err, tc.want)
			}
		})
	}
}

func TestReplayReproducesSpanStructure(t *testing.T) {
	// Record a workload with nested spans, replay the trace, and the
	// replayed machine must emit the same span paths in the same order.
	run := func(m *pdm.Machine, drive func()) []pdm.Event {
		var rec eventRecorder
		m.SetHook(&rec)
		drive()
		return rec.events
	}
	m := pdm.NewMachine(pdm.Config{D: 2, B: 2})
	orig := run(m, func() {
		end := m.Span("insert")
		inner := m.Span("probe")
		m.BatchRead([]pdm.Addr{{Disk: 0, Block: 0}})
		inner()
		m.BatchWrite([]pdm.BlockWrite{{Addr: pdm.Addr{Disk: 1, Block: 0}}})
		end()
	})
	var buf bytes.Buffer
	w := NewJSONLWriter(&buf)
	for _, e := range orig {
		w.Event(e)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	events, err := ReadEvents(&buf)
	if err != nil {
		t.Fatalf("ReadEvents: %v", err)
	}
	fresh := pdm.NewMachine(pdm.Config{D: 2, B: 2})
	replayed := run(fresh, func() { Replay(fresh, events) })
	if len(replayed) != len(orig) {
		t.Fatalf("replay emitted %d events, want %d", len(replayed), len(orig))
	}
	for i := range orig {
		if replayed[i].Kind != orig[i].Kind || replayed[i].Tag != orig[i].Tag ||
			replayed[i].Span != orig[i].Span || replayed[i].Parent != orig[i].Parent ||
			replayed[i].Step != orig[i].Step {
			t.Errorf("event %d = %+v, want %+v", i, replayed[i], orig[i])
		}
	}
}

// eventRecorder captures every hook event in order.
type eventRecorder struct {
	mu     sync.Mutex
	events []pdm.Event
}

func (r *eventRecorder) Event(e pdm.Event) {
	r.mu.Lock()
	r.events = append(r.events, e)
	r.mu.Unlock()
}

func (r *eventRecorder) kinds() []pdm.EventKind {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]pdm.EventKind, len(r.events))
	for i, e := range r.events {
		out[i] = e.Kind
	}
	return out
}

func TestHistEmptyAndSingleBucket(t *testing.T) {
	var empty Hist
	for _, q := range []float64{-1, 0, 0.5, 0.99, 1, 2} {
		if got := empty.Quantile(q); got != 0 {
			t.Errorf("empty Quantile(%v) = %d, want 0", q, got)
		}
	}
	s := empty.Summarize("empty")
	if s.Total != 0 || s.Max != 0 || s.P50 != 0 || s.P99 != 0 {
		t.Errorf("empty summary = %+v, want zeros", s)
	}
	if bs := empty.Buckets(); len(bs) != 0 {
		t.Errorf("empty buckets = %+v, want none", bs)
	}

	var single Hist
	for i := 0; i < 5; i++ {
		single.Observe(3) // all samples land in the [2,3] bucket
	}
	for _, q := range []float64{-1, 0, 0.5, 0.99, 1, 2} {
		if got := single.Quantile(q); got != 3 {
			t.Errorf("single-bucket Quantile(%v) = %d, want 3", q, got)
		}
	}

	// Out-of-range q on a spread distribution clamps to the extremes:
	// q ≤ 0 is the minimum sample's bucket edge, q ≥ 1 the maximum's.
	var spread Hist
	spread.Observe(0)
	spread.Observe(100)
	if got := spread.Quantile(-0.5); got != spread.Quantile(0) {
		t.Errorf("Quantile(-0.5) = %d, want min edge %d", got, spread.Quantile(0))
	}
	if got := spread.Quantile(1.5); got != spread.Quantile(1) {
		t.Errorf("Quantile(1.5) = %d, want max edge %d", got, spread.Quantile(1))
	}
	s = single.Summarize("single")
	if s.Total != 5 || s.P50 != 3 || s.P99 != 3 || s.Max != 3 {
		t.Errorf("single-bucket summary = %+v", s)
	}
	if bs := single.Buckets(); len(bs) != 1 || bs[0] != (HistBucket{2, 3, 5}) {
		t.Errorf("single-bucket buckets = %+v", bs)
	}
}

func TestTeeFansOutAndSkipsNil(t *testing.T) {
	var a, b Collector
	a.tags, b.tags = map[string]*TagStats{}, map[string]*TagStats{}
	tee := Tee(&a, nil, &b)
	tee.Event(pdm.Event{Steps: 1, Addrs: []pdm.Addr{{}}})
	if na, _, _, _, _ := a.Totals(); na != 1 {
		t.Error("first hook missed event")
	}
	if nb, _, _, _, _ := b.Totals(); nb != 1 {
		t.Error("second hook missed event")
	}
}

func TestCollectorAggregates(t *testing.T) {
	c := NewCollector()
	c.WindowSteps = 2 // close a window every 2 steps
	m := pdm.NewMachine(pdm.Config{D: 2, B: 2})
	m.SetHook(c)

	end := m.Span("insert")
	m.BatchWrite([]pdm.BlockWrite{
		{Addr: pdm.Addr{Disk: 0, Block: 0}, Data: []pdm.Word{1}},
		{Addr: pdm.Addr{Disk: 1, Block: 0}, Data: []pdm.Word{2}},
	})
	end()
	end = m.Span("lookup")
	m.BatchRead([]pdm.Addr{{Disk: 0, Block: 0}})
	m.BatchRead([]pdm.Addr{{Disk: 0, Block: 0}})
	end()

	events, reads, writes, steps, blocks := c.Totals()
	if events != 3 || reads != 2 || writes != 1 || steps != 3 || blocks != 4 {
		t.Errorf("totals = %d %d %d %d %d, want 3 2 1 3 4",
			events, reads, writes, steps, blocks)
	}
	tags := c.Tags()
	if tags["insert"].Blocks != 2 || tags["lookup"].Batches != 2 {
		t.Errorf("tags = %+v", tags)
	}
	if pd := c.PerDisk(); len(pd) != 2 || pd[0] != 3 || pd[1] != 1 {
		t.Errorf("perDisk = %v, want [3 1]", pd)
	}
	if ws := c.Windows(); len(ws) == 0 || ws[0].EndStep < 2 {
		t.Errorf("windows = %+v, want at least one closed window", ws)
	} else if sum := ws[0].PerDisk[0] + ws[0].PerDisk[1]; sum == 0 {
		t.Errorf("window has no transfers: %+v", ws[0])
	}
	out := c.String()
	for _, want := range []string{"insert", "lookup", "skew (max/mean)"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestCollectorGrowsDisksAcrossMachines(t *testing.T) {
	// One collector observing two machines with different D must grow
	// its per-disk tallies to the widest machine.
	c := NewCollector()
	small := pdm.NewMachine(pdm.Config{D: 2, B: 2})
	big := pdm.NewMachine(pdm.Config{D: 6, B: 2})
	small.SetHook(c)
	big.SetHook(c)
	small.BatchRead([]pdm.Addr{{Disk: 1, Block: 0}})
	big.BatchRead([]pdm.Addr{{Disk: 5, Block: 0}})
	if pd := c.PerDisk(); len(pd) != 6 || pd[1] != 1 || pd[5] != 1 {
		t.Errorf("perDisk = %v, want len 6 with disks 1 and 5 hit", pd)
	}
}

func TestCollectorExpvarShape(t *testing.T) {
	c := NewCollector()
	c.Event(pdm.Event{Kind: pdm.EventRead, Tag: "lookup", Steps: 1,
		Addrs: []pdm.Addr{{Disk: 0, Block: 0}}})
	// Marshal the same value Publish would export, without registering
	// a global expvar name (duplicate names panic across tests).
	events, reads, writes, steps, blocks := c.Totals()
	blob, err := json.Marshal(expvarState{
		Batches: events, Reads: reads, Writes: writes, Steps: steps,
		Blocks: blocks, Depth: c.Depth.Summarize("batch_depth"),
		Tags: c.Tags(), PerDisk: c.PerDisk(),
	})
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	for _, want := range []string{`"parallel_ios":1`, `"lookup"`, `"per_disk":[1]`} {
		if !strings.Contains(string(blob), want) {
			t.Errorf("expvar JSON missing %s: %s", want, blob)
		}
	}
}

func TestCollectorConcurrent(t *testing.T) {
	c := NewCollector()
	m := pdm.NewMachine(pdm.Config{D: 4, B: 2})
	m.SetHook(c)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				end := m.Span("op")
				m.BatchRead([]pdm.Addr{{Disk: g % 4, Block: i % 8}})
				end()
			}
		}(g)
	}
	wg.Wait()
	if events, _, _, _, _ := c.Totals(); events != 800 {
		t.Errorf("events = %d, want 800", events)
	}
	if c.Depth.Total() != 800 {
		t.Errorf("depth samples = %d, want 800", c.Depth.Total())
	}
}

package obs

import (
	"sort"
	"testing"

	"pdmdict/internal/pdm"
)

// The machine synthesizes fault tags as "fault." + FaultKind.String();
// the registry must spell them identically or per-tag sums stop
// partitioning the total.
func TestFaultTagsMatchMachineSpelling(t *testing.T) {
	want := map[pdm.FaultKind]string{
		pdm.FaultFailStop:  TagFaultFailstop,
		pdm.FaultTransient: TagFaultTransient,
		pdm.FaultCorrupt:   TagFaultCorrupt,
		pdm.FaultStall:     TagFaultStall,
	}
	for kind, tag := range want {
		if got := "fault." + kind.String(); got != tag {
			t.Errorf("machine spells %v events %q, registry says %q", kind, got, tag)
		}
	}
	if !IsRegisteredTag("fault.checksum") {
		t.Errorf("fault.checksum (detected corruption) missing from registry")
	}
}

func TestRegisteredTagsSorted(t *testing.T) {
	tags := RegisteredTags()
	if !sort.StringsAreSorted(tags) {
		t.Errorf("RegisteredTags not sorted: %v", tags)
	}
	seen := map[string]bool{}
	for _, tag := range tags {
		if seen[tag] {
			t.Errorf("duplicate tag %q", tag)
		}
		seen[tag] = true
		if !IsRegisteredTag(tag) {
			t.Errorf("IsRegisteredTag(%q) = false for a registry member", tag)
		}
	}
}

func TestIsRegisteredTagComposites(t *testing.T) {
	cases := []struct {
		tag  string
		want bool
	}{
		{"lookup", true},
		{"insert.probe", true},
		{"lookup.fault.stall", true}, // fault event inside a lookup span
		{"fault.stall", true},
		{"", false},
		{"lokup", false},
		{"insert.probing", false},
		{"fault.", false},
		{"fault.unknown", false},
	}
	for _, c := range cases {
		if got := IsRegisteredTag(c.tag); got != c.want {
			t.Errorf("IsRegisteredTag(%q) = %v, want %v", c.tag, got, c.want)
		}
	}
}

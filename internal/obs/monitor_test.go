package obs

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"time"

	"pdmdict/internal/pdm"
)

// The machine spells health annotations "health." + HealthState.String()
// and the monitor spells alert annotations "alert." + AlertState.String();
// the registry must match both, or annotation tags stop vetting clean.
func TestAnnotationTagsMatchEmitterSpelling(t *testing.T) {
	alerts := map[AlertState]string{
		AlertInactive: TagAlertInactive,
		AlertPending:  TagAlertPending,
		AlertFiring:   TagAlertFiring,
		AlertResolved: TagAlertResolved,
	}
	for s, tag := range alerts {
		if got := "alert." + s.String(); got != tag {
			t.Errorf("monitor spells %v %q, registry says %q", s, got, tag)
		}
		if alertTag(s) != tag {
			t.Errorf("alertTag(%v) = %q, want %q", s, alertTag(s), tag)
		}
		if !IsRegisteredTag(tag) {
			t.Errorf("tag %q not registered", tag)
		}
	}
	healths := map[pdm.HealthState]string{
		pdm.Healthy:   TagHealthHealthy,
		pdm.Suspect:   TagHealthSuspect,
		pdm.Failed:    TagHealthFailed,
		pdm.Repairing: TagHealthRepairing,
	}
	for s, tag := range healths {
		if got := pdm.HealthTagPrefix + s.String(); got != tag {
			t.Errorf("machine spells %v %q, registry says %q", s, got, tag)
		}
		if !IsRegisteredTag(tag) {
			t.Errorf("tag %q not registered", tag)
		}
	}
}

// scriptDetector reports whatever the test's breach flag says — the
// harness for exercising the state machine without a real signal.
type scriptDetector struct {
	breach *bool
	value  int64
}

func (d *scriptDetector) observe(pdm.Event, int64)     {}
func (d *scriptDetector) sample(int64) []ruleSample    { return []ruleSample{{Value: d.value, Breach: *d.breach}} }

func scriptRule(name string, breach *bool, forSteps, clearSteps int64) Rule {
	return Rule{
		Name: name, EvalEvery: 10, ForSteps: forSteps, ClearSteps: clearSteps,
		newDetector: func() detector { return &scriptDetector{breach: breach} },
	}
}

// stepEvents advances the monitor clock by n steps, one read at a time.
func stepEvents(mon *Monitor, n int) {
	for i := 0; i < n; i++ {
		mon.Event(pdm.Event{Kind: pdm.EventRead, Steps: 1, Addrs: []pdm.Addr{{Disk: 0}}})
	}
}

func TestAlertStateMachineWalksEveryEdge(t *testing.T) {
	breach := false
	mon := NewMonitor(nil, scriptRule("watch", &breach, 15, 15))

	stepEvents(mon, 20)
	if tl := mon.Timeline(); len(tl) != 0 {
		t.Fatalf("transitions with no breach: %+v", tl)
	}
	breach = true
	stepEvents(mon, 40) // eval ticks at 30 (→Pending), 40, 50 (hold ≥ 15 → Firing)
	breach = false
	stepEvents(mon, 50) // clear observed, held ≥ 15 → Resolved → Inactive

	want := []struct{ from, to AlertState }{
		{AlertInactive, AlertPending},
		{AlertPending, AlertFiring},
		{AlertFiring, AlertResolved},
		{AlertResolved, AlertInactive},
	}
	tl := mon.Timeline()
	if len(tl) != len(want) {
		t.Fatalf("timeline = %+v, want %d edges", tl, len(want))
	}
	for i, w := range want {
		if tl[i].From != w.from || tl[i].To != w.to || tl[i].Rule != "watch" {
			t.Errorf("edge %d = %s→%s (%s), want %s→%s", i, tl[i].From, tl[i].To, tl[i].Rule, w.from, w.to)
		}
		if i > 0 && tl[i].Step < tl[i-1].Step {
			t.Errorf("timeline steps not monotone: %d after %d", tl[i].Step, tl[i-1].Step)
		}
	}
	if c := mon.Cycles()["watch"]; c != 1 {
		t.Errorf("cycles = %d, want 1", c)
	}

	// A breach that clears before ForSteps must retreat without firing.
	breach = true
	stepEvents(mon, 10) // → Pending
	breach = false
	stepEvents(mon, 10) // → Inactive
	tl = mon.Timeline()
	last := tl[len(tl)-1]
	if last.From != AlertPending || last.To != AlertInactive {
		t.Errorf("short breach ended %s→%s, want pending→inactive", last.From, last.To)
	}
	if c := mon.Cycles()["watch"]; c != 1 {
		t.Errorf("cycles after aborted breach = %d, want still 1", c)
	}
}

// The two properties the watchdog guarantees by construction: every
// transition is one of the five legal edges (states are never skipped),
// and once the offending condition drains, no instance is left pending
// or firing.
func TestAlertStateMachineNeverSkipsAndAlwaysResolves(t *testing.T) {
	legal := map[[2]AlertState]bool{
		{AlertInactive, AlertPending}:  true,
		{AlertPending, AlertInactive}:  true,
		{AlertPending, AlertFiring}:    true,
		{AlertFiring, AlertResolved}:   true,
		{AlertResolved, AlertInactive}: true,
	}
	for _, seed := range []int64{1, 2, 3} {
		rng := rand.New(rand.NewSource(seed))
		breach := false
		forSteps := int64(rng.Intn(32))
		clearSteps := int64(rng.Intn(32))
		mon := NewMonitor(nil, scriptRule("r", &breach, forSteps, clearSteps))
		for i := 0; i < 5000; i++ {
			if rng.Intn(8) == 0 {
				breach = !breach
			}
			mon.Event(pdm.Event{Kind: pdm.EventRead, Steps: 1, Addrs: []pdm.Addr{{Disk: 0}}})
		}
		breach = false
		stepEvents(mon, 200) // > ForSteps + ClearSteps + several eval ticks

		for i, tr := range mon.Timeline() {
			if !legal[[2]AlertState{tr.From, tr.To}] {
				t.Errorf("seed %d: illegal edge %d: %s→%s", seed, i, tr.From, tr.To)
			}
		}
		for _, r := range mon.Snapshot().Rules {
			if r.Firing != 0 || r.Pending != 0 {
				t.Errorf("seed %d: rule %s still firing=%d pending=%d after the breach drained",
					seed, r.Rule, r.Firing, r.Pending)
			}
			for _, inst := range r.Instances {
				if inst.State == AlertFiring || inst.State == AlertPending {
					t.Errorf("seed %d: instance %q stuck in %s", seed, inst.Label, inst.State)
				}
			}
		}
	}
}

func TestMonitorForwardsAndSynthesizesAlertEvents(t *testing.T) {
	var rec eventRecorder
	breach := true
	mon := NewMonitor(&rec, scriptRule("watch", &breach, 0, 0))

	mon.Event(pdm.Event{Kind: pdm.EventWrite, Steps: 10, Addrs: []pdm.Addr{{Disk: 0}}})
	kinds := rec.kinds()
	if len(kinds) != 2 || kinds[0] != pdm.EventWrite || kinds[1] != pdm.EventAlert {
		t.Fatalf("downstream saw %v, want [write alert]", kinds)
	}
	alert := rec.events[1]
	if alert.Tag != TagAlertPending || alert.Rule != "watch" ||
		alert.From != "inactive" || alert.To != "pending" || alert.Step != 10 {
		t.Errorf("alert event = %+v", alert)
	}
	if !alert.Kind.IsAnnotation() || alert.Steps != 0 {
		t.Errorf("alert event must be a zero-step annotation: %+v", alert)
	}

	// Incoming alert events are forwarded verbatim but never advance the
	// clock or feed the rules — the feedback guard replay depends on.
	before := mon.Now()
	transitions := len(mon.Timeline())
	mon.Event(pdm.Event{Kind: pdm.EventAlert, Rule: "watch", Steps: 5, Step: 99})
	if mon.Now() != before {
		t.Errorf("incoming alert advanced the clock: %d → %d", before, mon.Now())
	}
	if len(mon.Timeline()) != transitions {
		t.Error("incoming alert fed the rules")
	}
	if k := rec.kinds(); k[len(k)-1] != pdm.EventAlert {
		t.Error("incoming alert not forwarded")
	}
}

func TestMonitorListenerReceivesTransitions(t *testing.T) {
	var got []AlertTransition
	breach := true
	mon := NewMonitor(nil, scriptRule("watch", &breach, 0, 0))
	mon.SetListener(func(ts []AlertTransition) { got = append(got, ts...) })
	stepEvents(mon, 25)
	if len(got) < 2 || got[0].To != AlertPending || got[1].To != AlertFiring {
		t.Fatalf("listener saw %+v, want pending then firing", got)
	}
	mon.SetListener(nil)
	breach = false
	stepEvents(mon, 25)
	if len(got) > 2 {
		t.Error("removed listener still called")
	}
}

func TestBalanceRuleFiresAndResolvesOnSkew(t *testing.T) {
	mon := NewMonitor(nil, BalanceRule(BalanceConfig{WindowSteps: 32, MaxSkewMicro: 1_500_000, MinBlocks: 8}))

	// Seed every disk so the detector knows the array width, then slam
	// one disk: skew = max·D/total ≈ 4 » 1.5.
	mon.Event(pdm.Event{Kind: pdm.EventWrite, Steps: 1,
		Addrs: []pdm.Addr{{Disk: 0}, {Disk: 1}, {Disk: 2}, {Disk: 3}}})
	for i := 0; i < 200; i++ {
		mon.Event(pdm.Event{Kind: pdm.EventWrite, Steps: 1, Addrs: []pdm.Addr{{Disk: 0}}})
	}
	snap := mon.Snapshot()
	if snap.Rules[0].Firing != 1 {
		t.Fatalf("skewed load did not fire: %+v", snap.Rules[0])
	}
	if v := snap.Rules[0].Instances[0].ValueMicro; v <= 1_500_000 {
		t.Errorf("skew value = %d micro, want > 1.5", v)
	}

	// Balanced traffic rolls clean windows; the alert must stand down.
	for i := 0; i < 300; i++ {
		mon.Event(pdm.Event{Kind: pdm.EventRead, Steps: 1,
			Addrs: []pdm.Addr{{Disk: 0}, {Disk: 1}, {Disk: 2}, {Disk: 3}}})
	}
	if c := mon.Cycles()["balance"]; c != 1 {
		t.Errorf("balance cycles = %d, want 1 (fire → resolve)", c)
	}
	if r := mon.Snapshot().Rules[0]; r.Firing != 0 {
		t.Errorf("balance still firing after balanced traffic: %+v", r)
	}
}

// healthEvent shapes a synthetic health annotation like the machine's.
func healthEvent(disk int, from, to string) pdm.Event {
	return pdm.Event{Kind: pdm.EventHealth, Tag: pdm.HealthTagPrefix + to,
		Addrs: []pdm.Addr{{Disk: disk}}, From: from, To: to}
}

func TestDegradedCapacityRuleTracksHealthAnnotations(t *testing.T) {
	mon := NewMonitor(nil, DegradedCapacityRule(DegradedConfig{MinDown: 1}))
	stepEvents(mon, 20)
	mon.Event(healthEvent(1, "healthy", "failed"))
	stepEvents(mon, 40) // eval every 16: breach → Pending → Firing
	snap := mon.Snapshot()
	if snap.Rules[0].Firing != 1 {
		t.Fatalf("failed disk did not fire degraded_capacity: %+v", snap.Rules[0])
	}
	// Repairing still counts as down; healthy resolves.
	mon.Event(healthEvent(1, "failed", "repairing"))
	stepEvents(mon, 20)
	if mon.Snapshot().Rules[0].Firing != 1 {
		t.Error("repairing disk resolved the alert early")
	}
	mon.Event(healthEvent(1, "repairing", "healthy"))
	stepEvents(mon, 40)
	if c := mon.Cycles()["degraded_capacity"]; c != 1 {
		t.Errorf("degraded_capacity cycles = %d, want 1", c)
	}
}

func TestHealthFlapRuleCountsTransitionsPerDisk(t *testing.T) {
	// The rule evals every 64 steps, so the window must span at least two
	// eval ticks for Pending to harden into Firing before the flips age out.
	mon := NewMonitor(nil, HealthFlapRule(FlapConfig{Flips: 3, WindowSteps: 200}))
	stepEvents(mon, 10)
	mon.Event(healthEvent(2, "healthy", "failed"))
	mon.Event(healthEvent(2, "failed", "repairing"))
	mon.Event(healthEvent(2, "repairing", "healthy"))
	mon.Event(healthEvent(5, "healthy", "suspect")) // one flip: not flapping
	stepEvents(mon, 130)
	snap := mon.Snapshot()
	byLabel := map[string]AlertInstance{}
	for _, inst := range snap.Rules[0].Instances {
		byLabel[inst.Label] = inst
	}
	if byLabel["disk=2"].State != AlertFiring {
		t.Errorf("disk 2 flapped 3 times, state = %s", byLabel["disk=2"].State)
	}
	if s := byLabel["disk=5"].State; s == AlertFiring || s == AlertPending {
		t.Errorf("disk 5 flipped once, state = %s", s)
	}
	// The window drains with no further flips: flapping resolves.
	stepEvents(mon, 300)
	if c := mon.Cycles()["health_flap"]; c != 1 {
		t.Errorf("health_flap cycles = %d, want 1", c)
	}
}

func TestBurnRateRuleFiresPerClient(t *testing.T) {
	mon := NewMonitor(nil, BurnRateRule(BurnConfig{
		Target: 50 * time.Millisecond, MinOps: 2, FastSteps: 128, SlowSteps: 256,
	}))
	var cur int64
	var opID uint64
	emitOp := func(client int, steps int64) {
		opID++
		mon.Event(pdm.Event{Kind: pdm.EventSpanBegin, Tag: "lookup",
			Span: opID, Op: opID, Client: client, Step: cur})
		mon.Event(pdm.Event{Kind: pdm.EventRead, Steps: int(steps),
			Op: opID, Addrs: []pdm.Addr{{Disk: 0}}})
		cur += steps
		mon.Event(pdm.Event{Kind: pdm.EventSpanEnd, Tag: "lookup",
			Span: opID, Op: opID, Client: client, Step: cur})
	}
	// Client 7 burns (10 steps ≈ 100ms+ per op, over the 50ms target);
	// client 1 stays within SLO (1 step ≈ 11ms).
	for i := 0; i < 8; i++ {
		emitOp(7, 10)
		emitOp(1, 1)
	}
	stepEvents(mon, 80)
	snap := mon.Snapshot()
	states := map[string]AlertState{}
	for _, inst := range snap.Rules[0].Instances {
		states[inst.Label] = inst.State
	}
	if states["client=7"] != AlertFiring {
		t.Errorf("client 7 burn state = %s, want firing (instances %+v)", states["client=7"], snap.Rules[0].Instances)
	}
	if s := states["client=1"]; s == AlertFiring || s == AlertPending {
		t.Errorf("client 1 within SLO but state = %s", s)
	}
	// The slow ops age out of both windows; the alert resolves.
	stepEvents(mon, 400)
	if c := mon.Cycles()["slo_burn"]; c != 1 {
		t.Errorf("slo_burn cycles = %d, want 1", c)
	}
}

// Annotation events must survive the JSONL round trip with their alert
// fields intact, and Replay must skip them (they transfer no blocks and
// charge no steps).
func TestJSONLAnnotationRoundTripAndReplaySkip(t *testing.T) {
	var buf bytes.Buffer
	w := NewJSONLWriter(&buf)
	w.Event(pdm.Event{Kind: pdm.EventHealth, Tag: TagHealthFailed, Seq: 1,
		Addrs: []pdm.Addr{{Disk: 3}}, From: "healthy", To: "failed", Step: 7})
	w.Event(pdm.Event{Kind: pdm.EventAlert, Tag: TagAlertFiring, Seq: 2,
		Rule: "balance", From: "pending", To: "firing", Value: 2_500_000, Step: 9})
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	events, err := ReadEvents(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadEvents: %v", err)
	}
	if len(events) != 2 {
		t.Fatalf("read %d events, want 2", len(events))
	}
	h := events[0]
	if h.Kind != pdm.EventHealth || h.Tag != TagHealthFailed || h.From != "healthy" ||
		h.To != "failed" || len(h.Addrs) != 1 || h.Addrs[0].Disk != 3 || h.Step != 7 {
		t.Errorf("health event = %+v", h)
	}
	a := events[1]
	if a.Kind != pdm.EventAlert || a.Tag != TagAlertFiring || a.Rule != "balance" ||
		a.From != "pending" || a.To != "firing" || a.Value != 2_500_000 || a.Step != 9 {
		t.Errorf("alert event = %+v", a)
	}
	fresh := pdm.NewMachine(pdm.Config{D: 4, B: 2})
	if delta := Replay(fresh, events); delta.ParallelIOs != 0 || delta.BlockReads != 0 || delta.BlockWrites != 0 {
		t.Errorf("replaying annotations charged I/O: %+v", delta)
	}
}

// Older trace versions (pre-annotation) must keep loading.
func TestJSONLReadsV4Traces(t *testing.T) {
	trace := "{\"k\":\"trace\",\"v\":4}\n{\"k\":\"read\",\"steps\":1,\"addrs\":[[1,0]]}\n"
	events, err := ReadEvents(strings.NewReader(trace))
	if err != nil {
		t.Fatalf("ReadEvents: %v", err)
	}
	if len(events) != 1 || events[0].Kind != pdm.EventRead {
		t.Fatalf("events = %+v", events)
	}
}

// The accounting sinks must all skip annotations, or health/alert
// events would inflate batch and op counts.
func TestSinksSkipAnnotations(t *testing.T) {
	c := NewCollector()
	acct := NewOpAccountant()
	var f SpanFolder
	h := healthEvent(0, "healthy", "failed")
	a := pdm.Event{Kind: pdm.EventAlert, Tag: TagAlertFiring, Rule: "balance"}
	for _, e := range []pdm.Event{h, a} {
		c.Event(e)
		acct.Event(e)
		if rec := f.Fold(e); rec != nil {
			t.Errorf("SpanFolder closed a span on %v", e.Kind)
		}
	}
	if events, _, _, _, _ := c.Totals(); events != 0 {
		t.Errorf("collector counted %d annotation events", events)
	}
	if ops, steps, _, _ := acct.Totals(); ops != 0 || steps != 0 {
		t.Errorf("accountant charged annotations: ops=%d steps=%d", ops, steps)
	}
}

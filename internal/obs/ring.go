package obs

import (
	"sync"

	"pdmdict/internal/pdm"
)

// Ring is a fixed-capacity event buffer that keeps the most recent
// events, overwriting the oldest once full. It copies each event's
// address slice (the machine only guarantees it during the hook call),
// so retained events stay valid. Safe for concurrent use.
type Ring struct {
	mu    sync.Mutex
	buf   []pdm.Event
	next  int
	total int64
}

// NewRing returns a ring holding up to n events (n ≥ 1).
func NewRing(n int) *Ring {
	if n < 1 {
		n = 1
	}
	return &Ring{buf: make([]pdm.Event, 0, n)}
}

// Event implements pdm.Hook.
func (r *Ring) Event(e pdm.Event) {
	e.Addrs = append([]pdm.Addr(nil), e.Addrs...)
	r.mu.Lock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
	} else {
		r.buf[r.next] = e
	}
	r.next = (r.next + 1) % cap(r.buf)
	r.total++
	r.mu.Unlock()
}

// Events returns the retained events, oldest first.
func (r *Ring) Events() []pdm.Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]pdm.Event, 0, len(r.buf))
	if len(r.buf) == cap(r.buf) {
		out = append(out, r.buf[r.next:]...)
		out = append(out, r.buf[:r.next]...)
	} else {
		out = append(out, r.buf...)
	}
	return out
}

// Total returns how many events have passed through, including those
// already overwritten.
func (r *Ring) Total() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

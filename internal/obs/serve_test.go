package obs

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"testing"

	"pdmdict/internal/pdm"
)

// promFamily is one parsed metric family of a text exposition.
type promFamily struct {
	Help    string
	Type    string
	Samples map[string]float64 // full sample name incl. labels → value
}

var promSampleRE = regexp.MustCompile(
	`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^{}]*\})? (-?[0-9.eE+]+|\+Inf|-Inf|NaN)$`)
var promLabelRE = regexp.MustCompile(
	`^[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"$`)

// parseProm is a from-scratch parser for the Prometheus text
// exposition format, strict enough to catch syntax errors in our
// hand-rolled writer: every non-comment line must be a well-formed
// sample, every sample's family must have HELP and TYPE, histogram
// families must have _bucket/_sum/_count series with +Inf last.
func parseProm(t *testing.T, r io.Reader) map[string]*promFamily {
	t.Helper()
	fams := map[string]*promFamily{}
	fam := func(name string) *promFamily {
		f := fams[name]
		if f == nil {
			f = &promFamily{Samples: map[string]float64{}}
			fams[name] = f
		}
		return f
	}
	sc := bufio.NewScanner(r)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := sc.Text()
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			name, help, ok := strings.Cut(rest, " ")
			if !ok {
				t.Fatalf("line %d: HELP without text: %s", lineno, line)
			}
			fam(name).Help = help
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name, typ, ok := strings.Cut(rest, " ")
			if !ok || (typ != "counter" && typ != "gauge" && typ != "histogram" && typ != "summary" && typ != "untyped") {
				t.Fatalf("line %d: bad TYPE: %s", lineno, line)
			}
			fam(name).Type = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // other comments are legal
		}
		mm := promSampleRE.FindStringSubmatch(line)
		if mm == nil {
			t.Fatalf("line %d: malformed sample: %s", lineno, line)
		}
		name, labels := mm[1], mm[2]
		if labels != "" {
			for _, lb := range splitLabels(labels[1 : len(labels)-1]) {
				if !promLabelRE.MatchString(lb) {
					t.Fatalf("line %d: malformed label %q", lineno, lb)
				}
			}
		}
		v, err := strconv.ParseFloat(strings.TrimPrefix(mm[3], "+"), 64)
		if err != nil {
			t.Fatalf("line %d: bad value: %s", lineno, line)
		}
		base := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if b, ok := strings.CutSuffix(name, suffix); ok && fams[b] != nil && fams[b].Type == "histogram" {
				base = b
			}
		}
		f := fams[base]
		if f == nil || f.Help == "" || f.Type == "" {
			t.Fatalf("line %d: sample %s before its HELP/TYPE", lineno, name)
		}
		f.Samples[mm[1]+labels] = v
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("scan: %v", err)
	}
	return fams
}

// splitLabels splits a label body on commas outside quoted values —
// values like config="D=4,B=2" are legal exposition format.
func splitLabels(body string) []string {
	var out []string
	start, quoted := 0, false
	for i := 0; i < len(body); i++ {
		switch body[i] {
		case '\\':
			if quoted {
				i++
			}
		case '"':
			quoted = !quoted
		case ',':
			if !quoted {
				out = append(out, body[start:i])
				start = i + 1
			}
		}
	}
	return append(out, body[start:])
}

func serveTestState(t *testing.T) (*Server, *pdm.Machine) {
	t.Helper()
	c := NewCollector()
	ring := NewRing(16)
	m := pdm.NewMachine(pdm.Config{D: 4, B: 2})
	mon := NewMonitor(Tee(c, ring), DefaultRules()...)
	m.SetHook(mon)
	for i := 0; i < 4; i++ {
		end := m.Span("insert")
		m.BatchWrite([]pdm.BlockWrite{{Addr: pdm.Addr{Disk: i % 4, Block: i}}})
		end()
	}
	end := m.Span("lookup")
	m.BatchRead([]pdm.Addr{{Disk: 0, Block: 0}, {Disk: 1, Block: 1}})
	end()
	return &Server{
		Collector:   c,
		Ring:        ring,
		Healthy:     func() bool { return !m.Degraded() },
		Health:      m.Health,
		Monitor:     mon,
		Fingerprint: "D=4,B=2",
	}, m
}

func TestMetricsExpositionIsWellFormed(t *testing.T) {
	s, _ := serveTestState(t)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("content-type = %q", ct)
	}
	fams := parseProm(t, rec.Body)

	for _, want := range []string{
		"pdm_batches_total", "pdm_parallel_io_steps_total", "pdm_block_transfers_total",
		"pdm_tag_batches_total", "pdm_tag_steps_total", "pdm_tag_blocks_total",
		"pdm_fault_events_total", "pdm_disk_transfers_total", "pdm_disk_skew_ratio",
		"pdm_batch_depth", "pdm_ops_total", "pdm_op_faults_total",
		"pdm_op_steps", "pdm_op_latency_seconds", "pdm_open_spans",
		"pdm_disk_health_state", "pdm_disk_health_transitions_total",
		"pdm_disk_faults_total", "pdm_retry_batches_total",
		"pdm_hedged_reads_total", "pdm_backoff_steps_total",
		"pdm_repair_chunks_total", "pdm_repair_rows_total",
		"pdm_build_info", "pdm_uptime_steps",
		"pdm_alert_state", "pdm_alert_value", "pdm_alert_transitions_total",
		"pdm_alert_cycles_total", "pdm_alerts_firing", "pdm_alerts_pending",
	} {
		if fams[want] == nil {
			t.Errorf("family %s missing", want)
		}
	}
	// Build identity: exactly one sample, value 1, carrying the running
	// Go version and the configured fingerprint.
	info := fams["pdm_build_info"]
	wantInfo := fmt.Sprintf(`pdm_build_info{go_version=%q,config="D=4,B=2"}`, runtime.Version())
	if got := info.Samples[wantInfo]; got != 1 || len(info.Samples) != 1 {
		t.Errorf("pdm_build_info = %v, want one sample %s = 1", info.Samples, wantInfo)
	}
	if got := fams["pdm_uptime_steps"].Samples["pdm_uptime_steps"]; got != 5 {
		t.Errorf("uptime steps = %v, want 5 (4 writes + 1 read batch)", got)
	}
	if got := fams["pdm_batches_total"].Samples[`pdm_batches_total{kind="write"}`]; got != 4 {
		t.Errorf("write batches = %v, want 4", got)
	}
	if got := fams["pdm_ops_total"].Samples[`pdm_ops_total{tag="insert"}`]; got != 4 {
		t.Errorf("insert ops = %v, want 4", got)
	}
	// Histogram invariants: count matches +Inf bucket, sum is positive.
	lat := fams["pdm_op_latency_seconds"]
	inf := lat.Samples[`pdm_op_latency_seconds_bucket{tag="lookup",le="+Inf"}`]
	count := lat.Samples[`pdm_op_latency_seconds_count{tag="lookup"}`]
	if inf != 1 || count != 1 {
		t.Errorf("lookup latency: +Inf bucket %v, count %v, want 1/1", inf, count)
	}
	if sum := lat.Samples[`pdm_op_latency_seconds_sum{tag="lookup"}`]; sum <= 0 {
		t.Errorf("lookup latency sum = %v, want > 0", sum)
	}

	// The exposition is deterministic: a second scrape with no traffic
	// in between is byte-identical.
	rec2 := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec2, httptest.NewRequest("GET", "/metrics", nil))
	rec3 := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec3, httptest.NewRequest("GET", "/metrics", nil))
	if rec2.Body.String() != rec3.Body.String() {
		t.Error("back-to-back scrapes differ")
	}
}

func TestMetricsCountsFaults(t *testing.T) {
	s, m := serveTestState(t)
	m.SetFaultInjector(stallInjector{})
	end := m.Span("lookup")
	if _, err := m.TryBatchRead([]pdm.Addr{{Disk: 0, Block: 0}}); err != nil {
		t.Fatalf("stalled read should still succeed: %v", err)
	}
	end()
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	fams := parseProm(t, rec.Body)
	if got := fams["pdm_fault_events_total"].Samples[`pdm_fault_events_total{kind="stall"}`]; got != 1 {
		t.Errorf("stall faults = %v, want 1", got)
	}
	if got := fams["pdm_op_faults_total"].Samples[`pdm_op_faults_total{tag="lookup"}`]; got != 1 {
		t.Errorf("lookup op faults = %v, want 1", got)
	}
}

// stallInjector stalls every read by 2 steps.
type stallInjector struct{}

func (stallInjector) Access(kind pdm.EventKind, _ pdm.Addr) pdm.Fault {
	if kind == pdm.EventRead {
		return pdm.Fault{Kind: pdm.FaultStall, Stall: 2}
	}
	return pdm.Fault{}
}

func TestHealthzFlipsOnDegraded(t *testing.T) {
	s, m := serveTestState(t)
	h := s.Handler()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	// The first line is the machine-readable verdict; per-disk detail
	// lines follow because the server has a Health source.
	if rec.Code != http.StatusOK || !strings.HasPrefix(rec.Body.String(), "ok\n") {
		t.Fatalf("healthy: %d %q", rec.Code, rec.Body.String())
	}
	if !strings.Contains(rec.Body.String(), "disk 0: healthy\n") {
		t.Fatalf("healthy body lacks per-disk lines: %q", rec.Body.String())
	}
	m.SetFaultInjector(failInjector{})
	if _, err := m.TryBatchRead([]pdm.Addr{{Disk: 0, Block: 0}}); err == nil {
		t.Fatal("fail-stopped read should error")
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != http.StatusServiceUnavailable || !strings.HasPrefix(rec.Body.String(), "degraded\n") {
		t.Fatalf("degraded: %d %q", rec.Code, rec.Body.String())
	}
	if !strings.Contains(rec.Body.String(), "disk 0: failed\n") {
		t.Fatalf("degraded body lacks the failed disk: %q", rec.Body.String())
	}

	// The health metric families track the same snapshot.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	fams := parseProm(t, rec.Body)
	if got := fams["pdm_disk_health_state"].Samples[`pdm_disk_health_state{disk="0"}`]; got != float64(pdm.Failed) {
		t.Errorf("disk 0 health state = %v, want %v", got, float64(pdm.Failed))
	}
	if got := fams["pdm_disk_faults_total"].Samples[`pdm_disk_faults_total{disk="0"}`]; got < 1 {
		t.Errorf("disk 0 faults = %v, want >= 1", got)
	}
}

// failInjector fail-stops every access.
type failInjector struct{}

func (failInjector) Access(pdm.EventKind, pdm.Addr) pdm.Fault {
	return pdm.Fault{Kind: pdm.FaultFailStop}
}

func TestDebugEventsServesRingAsTrace(t *testing.T) {
	s, _ := serveTestState(t)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/events", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	events, err := ReadEvents(rec.Body)
	if err != nil {
		t.Fatalf("ring output is not a readable trace: %v", err)
	}
	// 5 ops × (begin + batch + end) = 15 events in a 16-slot ring.
	if len(events) != 15 {
		t.Errorf("events = %d, want 15", len(events))
	}
	// Without a ring the endpoint 404s instead of serving nothing.
	s.Ring = nil
	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/events", nil))
	if rec.Code != http.StatusNotFound {
		t.Errorf("ringless status = %d, want 404", rec.Code)
	}
}

// The /debug/alerts body is a pure function of monitor state, so a
// scripted monitor pins the exact JSON shape — field names, casing,
// indentation, and omission rules are all load-bearing for dashboards.
func TestDebugAlertsGoldenShape(t *testing.T) {
	breach := true
	mon := NewMonitor(nil, scriptRule("watch", &breach, 0, 0))
	// Two 10-step events: the first eval tick arms Pending at step 10,
	// the second hardens it to Firing at step 20.
	mon.Event(pdm.Event{Kind: pdm.EventRead, Steps: 10, Addrs: []pdm.Addr{{Disk: 0}}})
	mon.Event(pdm.Event{Kind: pdm.EventRead, Steps: 10, Addrs: []pdm.Addr{{Disk: 0}}})
	s := &Server{Collector: NewCollector(), Monitor: mon}
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/alerts", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("content-type = %q", ct)
	}
	golden := `{
  "step": 20,
  "transitions_total": 2,
  "rules": [
    {
      "rule": "watch",
      "firing": 1,
      "pending": 0,
      "transitions": 2,
      "cycles": 0,
      "instances": [
        {
          "state": "firing",
          "value_micro": 0,
          "since_step": 10
        }
      ]
    }
  ],
  "timeline": [
    {
      "rule": "watch",
      "from": "inactive",
      "to": "pending",
      "step": 10,
      "value_micro": 0
    },
    {
      "rule": "watch",
      "from": "pending",
      "to": "firing",
      "step": 20,
      "value_micro": 0
    }
  ]
}
`
	if got := rec.Body.String(); got != golden {
		t.Errorf("/debug/alerts body drifted:\ngot:\n%s\nwant:\n%s", got, golden)
	}

	// Without a monitor the endpoint 404s instead of serving nothing.
	s.Monitor = nil
	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/alerts", nil))
	if rec.Code != http.StatusNotFound {
		t.Errorf("monitorless status = %d, want 404", rec.Code)
	}
}

func TestServeBindsAndServesPprof(t *testing.T) {
	s, _ := serveTestState(t)
	addr, stop, err := s.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer stop() //nolint:errcheck
	for _, path := range []string{"/metrics", "/healthz", "/debug/pprof/", "/debug/pprof/cmdline"} {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", addr, path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s = %d", path, resp.StatusCode)
		}
	}
}

package obs

import (
	"sort"
	"strings"
	"time"

	"pdmdict/internal/pdm"
)

// Cost model. The parallel disk model counts abstract parallel-I/O
// steps; to reason about a serving system we convert those counts into
// modeled time with a two-constant disk profile: every parallel I/O
// step pays one positioning (seek + rotational latency), and every
// block transferred pays one streaming transfer. Modeled latency is a
// pure function of the deterministic counters, so it is itself
// deterministic — unlike wall-clock durations, it can appear in traces
// and reports without breaking byte-identical reproducibility.
//
// The default profile is a 7200 rpm enterprise HDD:
//
//	positioning: ~5.8 ms average seek + 4.2 ms average rotational
//	             latency (half a revolution at 7200 rpm) ≈ 10 ms/step
//	transfer:    one model block treated as 256 KiB streamed at
//	             200 MB/s ≈ 1.31 ms/block
//
// These constants are documented in DESIGN.md §10; experiments that
// want an SSD or NVMe profile construct their own CostModel.

// CostModel converts parallel-I/O work into modeled time.
type CostModel struct {
	// StepCost is charged once per parallel I/O step (positioning).
	StepCost time.Duration
	// BlockCost is charged once per block transferred (streaming).
	BlockCost time.Duration
}

// DefaultCostModel is the documented 7200 rpm HDD profile.
var DefaultCostModel = CostModel{
	StepCost:  10 * time.Millisecond,
	BlockCost: 1310 * time.Microsecond,
}

// orDefault returns the model itself, or DefaultCostModel for the zero
// value, so zero-valued Collectors and folders work out of the box.
func (c CostModel) orDefault() CostModel {
	if c == (CostModel{}) {
		return DefaultCostModel
	}
	return c
}

// Latency returns the modeled duration of steps parallel I/O steps
// moving blocks blocks.
func (c CostModel) Latency(steps, blocks int64) time.Duration {
	c = c.orDefault()
	return time.Duration(steps)*c.StepCost + time.Duration(blocks)*c.BlockCost
}

// OpRecord is one reconstructed span: the I/O charged between its
// begin and end events, inclusive of nested child spans. Root spans
// (Parent == 0) are the per-operation records the paper's theorems
// bound — one Lookup, Insert, or Delete each.
type OpRecord struct {
	// ID and Parent identify the span; Parent 0 marks an operation.
	ID     uint64 `json:"id"`
	Parent uint64 `json:"parent,omitempty"`
	// Op, Client, and Keys carry the owning operation token when the
	// span was opened with one (0 otherwise): the op's machine-unique
	// ID, the issuing client, and — on root spans — how many keys the
	// operation covered.
	Op     uint64 `json:"op,omitempty"`
	Client int    `json:"client,omitempty"`
	Keys   int    `json:"keys,omitempty"`
	// Tag is the span's dot-joined path (e.g. "insert.probe").
	Tag string `json:"tag"`
	// BeginStep and EndStep are the machine's cumulative parallel-I/O
	// counter at the span boundaries; Steps is their difference — the
	// span's parallel-I/O cost, stall charges included.
	BeginStep int64 `json:"begin_step"`
	EndStep   int64 `json:"end_step"`
	Steps     int64 `json:"steps"`
	// Batches, Blocks, Reads, and Writes count the batch events and
	// block transfers attributed to the span (children included).
	Batches int64 `json:"batches"`
	Blocks  int64 `json:"blocks"`
	Reads   int64 `json:"reads"`
	Writes  int64 `json:"writes"`
	// Faults counts the fault.* events seen inside the span.
	Faults int64 `json:"faults,omitempty"`
	// Latency is the modeled duration of the span under the folder's
	// cost model.
	Latency time.Duration `json:"latency_ns"`
	// WallNanos is the span's wall-clock duration when the machine had
	// an injected clock; 0 otherwise (and always 0 for records folded
	// from serialized traces, which exclude wall time by construction).
	WallNanos int64 `json:"wall_ns,omitempty"`
}

// SpanFolder reconstructs spans from an event stream: feed it every
// event (in emission order) and it returns one OpRecord per closed
// span. It tolerates imperfect streams — an end without a begin is
// dropped, unclosed spans can be flushed with Drain — so it works on
// truncated traces and on the interleaved streams a shared machine
// produces under concurrency. Not safe for concurrent use; wrap it in
// a Collector (which locks) for live folding.
type SpanFolder struct {
	// Cost is the model used for OpRecord.Latency; the zero value means
	// DefaultCostModel.
	Cost CostModel

	open map[uint64]*OpRecord
	// byOp maps an operation token to its open span IDs, outermost
	// first. Token-carrying batch events attribute through this list
	// rather than the span parent chain: the list is exact under
	// concurrency and survives an op whose spans straddle two machines
	// (where parent IDs cross counter domains).
	byOp map[uint64][]uint64
}

// Fold consumes one event. It returns the completed record when e
// closes a span, and nil otherwise.
func (f *SpanFolder) Fold(e pdm.Event) *OpRecord {
	if e.Kind.IsAnnotation() {
		return nil // health/alert transitions carry no span work
	}
	switch e.Kind {
	case pdm.EventSpanBegin:
		if f.open == nil {
			f.open = make(map[uint64]*OpRecord)
		}
		f.open[e.Span] = &OpRecord{
			ID:        e.Span,
			Parent:    e.Parent,
			Op:        e.Op,
			Client:    e.Client,
			Keys:      e.Keys,
			Tag:       e.Tag,
			BeginStep: e.Step,
		}
		if e.Op != 0 {
			if f.byOp == nil {
				f.byOp = make(map[uint64][]uint64)
			}
			f.byOp[e.Op] = append(f.byOp[e.Op], e.Span)
		}
		return nil
	case pdm.EventSpanEnd:
		rec := f.open[e.Span]
		if rec == nil {
			return nil // end without begin (truncated stream)
		}
		delete(f.open, e.Span)
		f.forgetOpSpan(rec.Op, e.Span)
		f.close(rec, e.Step, e.WallNanos)
		return rec
	default:
		// A batch or fault event: attribute it to every span of its
		// owning op(s) when it carries a token — the exact path — and
		// otherwise walk the span parent chain, so parent records
		// include child I/O either way.
		attributed := false
		if e.Op != 0 {
			attributed = f.chargeOp(e.Op, e) || attributed
		}
		for _, id := range e.Ops {
			attributed = f.chargeOp(id, e) || attributed
		}
		if attributed {
			return nil
		}
		for id := e.Span; id != 0; {
			rec := f.open[id]
			if rec == nil {
				break
			}
			f.chargeRecord(rec, e)
			id = rec.Parent
		}
		return nil
	}
}

// chargeOp attributes one batch or fault event to every open span of
// the given op, reporting whether any span was charged.
func (f *SpanFolder) chargeOp(op uint64, e pdm.Event) bool {
	charged := false
	for _, id := range f.byOp[op] {
		if rec := f.open[id]; rec != nil {
			f.chargeRecord(rec, e)
			charged = true
		}
	}
	return charged
}

// chargeRecord rolls one batch or fault event into a span record.
func (f *SpanFolder) chargeRecord(rec *OpRecord, e pdm.Event) {
	if strings.HasPrefix(e.Tag, pdm.FaultTagPrefix) {
		// Fault events describe the batch they ride on; the
		// batch itself was already counted. Stall steps reach
		// the record through the step counter.
		rec.Faults++
		return
	}
	rec.Batches++
	rec.Blocks += int64(len(e.Addrs))
	if e.Kind == pdm.EventWrite {
		rec.Writes += int64(len(e.Addrs))
	} else {
		rec.Reads += int64(len(e.Addrs))
	}
}

// forgetOpSpan drops a closed span from its op's open-span list.
func (f *SpanFolder) forgetOpSpan(op, span uint64) {
	if op == 0 {
		return
	}
	spans := f.byOp[op]
	for i := len(spans) - 1; i >= 0; i-- {
		if spans[i] == span {
			spans = append(spans[:i], spans[i+1:]...)
			break
		}
	}
	if len(spans) == 0 {
		delete(f.byOp, op)
		return
	}
	f.byOp[op] = spans
}

// close finalizes a record at the given end step.
func (f *SpanFolder) close(rec *OpRecord, endStep, wallNanos int64) {
	rec.EndStep = endStep
	rec.Steps = endStep - rec.BeginStep
	rec.WallNanos = wallNanos
	rec.Latency = f.Cost.Latency(rec.Steps, rec.Blocks)
}

// Open returns the number of spans currently open.
func (f *SpanFolder) Open() int { return len(f.open) }

// Drain closes every span still open — for truncated traces whose end
// events were lost — using the given final step counter, and returns
// the records ordered by span ID. The folder is empty afterwards.
func (f *SpanFolder) Drain(endStep int64) []OpRecord {
	out := make([]OpRecord, 0, len(f.open))
	for _, rec := range f.open {
		f.close(rec, endStep, 0)
		out = append(out, *rec)
	}
	f.open = nil
	f.byOp = nil
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// FoldSpans reconstructs every closed span of a recorded event stream
// (Drain-ing any left open at the end) under the given cost model —
// the offline entry point used by pdmtrace -spans.
func FoldSpans(events []pdm.Event, cost CostModel) []OpRecord {
	f := SpanFolder{Cost: cost}
	var out []OpRecord
	var lastStep int64
	for _, e := range events {
		if e.Kind.IsSpan() && e.Step > lastStep {
			lastStep = e.Step
		}
		if rec := f.Fold(e); rec != nil {
			out = append(out, *rec)
		}
	}
	return append(out, f.Drain(lastStep)...)
}

package obs

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"

	"pdmdict/internal/pdm"
)

// Live observability server. Server bundles a Collector (and optionally
// a Ring and a health predicate) behind an embeddable http.Handler:
//
//	/metrics        Prometheus text exposition, hand-rolled — stdlib only
//	/debug/pprof/*  the standard Go profiler endpoints
//	/debug/events   the ring buffer's recent events as trace JSONL
//	/healthz        200 "ok" while Healthy() (503 "degraded" otherwise)
//
// The exposition walks sorted tag lists, so /metrics output is a pure,
// deterministically ordered function of the collector state — scrapes
// of identical runs are byte-identical, like the traces.
type Server struct {
	// Collector supplies every metric series. Required.
	Collector *Collector
	// Ring, when set, backs /debug/events.
	Ring *Ring
	// Healthy, when set, gates /healthz; nil means always healthy.
	Healthy func() bool
}

// Handler returns the mux serving the endpoints above.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.metrics)
	mux.HandleFunc("/healthz", s.healthz)
	mux.HandleFunc("/debug/events", s.events)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve listens on addr (":0" picks a free port) and serves the
// handler in a background goroutine. It returns the bound address and
// a stop function that closes the listener.
func (s *Server) Serve(addr string) (string, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: s.Handler()}
	go srv.Serve(ln) //nolint:errcheck // Serve always returns on Close
	return ln.Addr().String(), srv.Close, nil
}

func (s *Server) healthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.Healthy != nil && !s.Healthy() {
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, "degraded\n")
		return
	}
	io.WriteString(w, "ok\n")
}

func (s *Server) events(w http.ResponseWriter, _ *http.Request) {
	if s.Ring == nil {
		http.Error(w, "no event ring attached", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	jw := NewJSONLWriter(w)
	for _, e := range s.Ring.Events() {
		jw.Event(e)
	}
	jw.Close() //nolint:errcheck // best-effort debug endpoint
}

func (s *Server) metrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.writeMetrics(w)
}

// writeMetrics renders the Prometheus text exposition format by hand;
// the repo takes no dependencies, and the format is three line shapes.
func (s *Server) writeMetrics(w io.Writer) {
	c := s.Collector
	_, reads, writes, steps, blocks := c.Totals()

	header(w, "pdm_batches_total", "counter", "Batch I/O operations issued, by kind.")
	sample(w, "pdm_batches_total", `kind="read"`, float64(reads))
	sample(w, "pdm_batches_total", `kind="write"`, float64(writes))

	header(w, "pdm_parallel_io_steps_total", "counter", "Cumulative parallel I/O steps (the PDM cost measure).")
	sample(w, "pdm_parallel_io_steps_total", "", float64(steps))

	header(w, "pdm_block_transfers_total", "counter", "Cumulative block transfers across all disks.")
	sample(w, "pdm_block_transfers_total", "", float64(blocks))

	// Per-tag batch I/O. Fault events are split out under their own
	// family: they annotate batches rather than being batches.
	tags := c.Tags()
	names := make([]string, 0, len(tags))
	for name := range tags {
		names = append(names, name)
	}
	sort.Strings(names)
	header(w, "pdm_tag_batches_total", "counter", "Batches attributed to each span tag.")
	for _, name := range names {
		if !strings.HasPrefix(name, pdm.FaultTagPrefix) {
			sample(w, "pdm_tag_batches_total", tagLabel(name), float64(tags[name].Batches))
		}
	}
	header(w, "pdm_tag_steps_total", "counter", "Parallel I/O steps attributed to each span tag.")
	for _, name := range names {
		if !strings.HasPrefix(name, pdm.FaultTagPrefix) {
			sample(w, "pdm_tag_steps_total", tagLabel(name), float64(tags[name].Steps))
		}
	}
	header(w, "pdm_tag_blocks_total", "counter", "Block transfers attributed to each span tag.")
	for _, name := range names {
		if !strings.HasPrefix(name, pdm.FaultTagPrefix) {
			sample(w, "pdm_tag_blocks_total", tagLabel(name), float64(tags[name].Blocks))
		}
	}
	header(w, "pdm_fault_events_total", "counter", "Injected or detected faults, by kind.")
	for _, name := range names {
		if kind, ok := strings.CutPrefix(name, pdm.FaultTagPrefix); ok {
			sample(w, "pdm_fault_events_total", fmt.Sprintf("kind=%q", kind), float64(tags[name].Batches))
		}
	}

	// Per-disk transfers and the skew figure the load-balancing theorems
	// are about (max/mean; 1.0 = perfectly balanced).
	perDisk := c.PerDisk()
	header(w, "pdm_disk_transfers_total", "counter", "Block transfers per disk.")
	var total, max int64
	for d, v := range perDisk {
		sample(w, "pdm_disk_transfers_total", fmt.Sprintf(`disk="%d"`, d), float64(v))
		total += v
		if v > max {
			max = v
		}
	}
	header(w, "pdm_disk_skew_ratio", "gauge", "Max/mean block transfers across disks (1.0 = balanced).")
	skew := 0.0
	if total > 0 && len(perDisk) > 0 {
		skew = float64(max) * float64(len(perDisk)) / float64(total)
	}
	sample(w, "pdm_disk_skew_ratio", "", skew)

	// Batch depth histogram (parallel I/O steps per batch).
	histogram(w, "pdm_batch_depth", "Parallel I/O steps per batch (critical-path depth).", "", &c.Depth, float64(c.DepthSum()))

	// Per-operation series, folded from span events. Root spans only:
	// one sample per Lookup/Insert/Delete, nested phases rolled up.
	ops := c.Ops()
	opNames := make([]string, 0, len(ops))
	for name := range ops {
		opNames = append(opNames, name)
	}
	sort.Strings(opNames)
	header(w, "pdm_ops_total", "counter", "Completed operations (root spans), by tag.")
	for _, name := range opNames {
		sample(w, "pdm_ops_total", tagLabel(name), float64(ops[name].Count))
	}
	header(w, "pdm_op_faults_total", "counter", "Faults observed inside operations, by tag.")
	for _, name := range opNames {
		sample(w, "pdm_op_faults_total", tagLabel(name), float64(ops[name].FaultSum))
	}
	header(w, "pdm_op_steps", "histogram", "Parallel I/O steps per operation.")
	for _, name := range opNames {
		a := ops[name]
		histogramSeries(w, "pdm_op_steps", tagLabel(name), a.Steps, 1, float64(a.StepSum), a.Count)
	}
	header(w, "pdm_op_latency_seconds", "histogram", "Modeled operation latency under the collector's cost model.")
	for _, name := range opNames {
		a := ops[name]
		histogramSeries(w, "pdm_op_latency_seconds", tagLabel(name), a.LatencyMicros, 1e-6, float64(a.LatencySumNanos)/1e9, a.Count)
	}

	header(w, "pdm_open_spans", "gauge", "Spans currently open (growth means unbalanced Span calls).")
	sample(w, "pdm_open_spans", "", float64(c.OpenSpans()))
}

// header writes the HELP and TYPE lines of one metric family.
func header(w io.Writer, name, typ, help string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// sample writes one sample line; labels is a pre-rendered `k="v"` list
// or empty.
func sample(w io.Writer, name, labels string, v float64) {
	if labels == "" {
		fmt.Fprintf(w, "%s %g\n", name, v)
		return
	}
	fmt.Fprintf(w, "%s{%s} %g\n", name, labels, v)
}

// tagLabel renders a span tag as an escaped `tag="..."` label.
func tagLabel(tag string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return `tag="` + r.Replace(tag) + `"`
}

// histogram writes one full unlabeled histogram family: header plus
// the bucket/sum/count series.
func histogram(w io.Writer, name, help, labels string, h *Hist, sum float64) {
	header(w, name, "histogram", help)
	histogramSeries(w, name, labels, h, 1, sum, h.Total())
}

// histogramSeries writes the _bucket/_sum/_count lines of one labeled
// histogram. Bucket upper bounds are the Hist's power-of-two edges
// scaled by unit (1e-6 turns microsecond buckets into seconds).
func histogramSeries(w io.Writer, name, labels string, h *Hist, unit, sum float64, count int64) {
	sep := ""
	if labels != "" {
		sep = ","
	}
	cum := int64(0)
	for _, b := range h.Buckets() {
		cum += b.Count
		fmt.Fprintf(w, "%s_bucket{%s%sle=%q} %d\n", name, labels, sep, fmt.Sprintf("%g", float64(b.Hi)*unit), cum)
	}
	fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, count)
	sample(w, name+"_sum", labels, sum)
	sample(w, name+"_count", labels, float64(count))
}

package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sort"
	"strconv"
	"strings"

	"pdmdict/internal/pdm"
)

// Live observability server. Server bundles a Collector (and optionally
// a Ring and a health predicate) behind an embeddable http.Handler:
//
//	/metrics        Prometheus text exposition, hand-rolled — stdlib only
//	/debug/pprof/*  the standard Go profiler endpoints
//	/debug/events   the ring buffer's recent events as trace JSONL
//	/debug/ops      top-K in-flight and recently completed operations
//	/debug/alerts   the watchdog's alert state machine as JSON
//	/healthz        200 "ok" while Healthy() (503 "degraded" otherwise)
//
// The exposition walks sorted tag lists, so /metrics output is a pure,
// deterministically ordered function of the collector state — scrapes
// of identical runs are byte-identical, like the traces.
type Server struct {
	// Collector supplies every metric series. Required.
	Collector *Collector
	// Ring, when set, backs /debug/events.
	Ring *Ring
	// Accountant, when set, backs /debug/ops and the exact per-op
	// metric families (SLO quantiles per client and tag, the exact
	// worst-op gauge, in-flight and flight-recorder counters); nil
	// omits them.
	Accountant *OpAccountant
	// Healthy, when set, gates /healthz; nil means always healthy.
	Healthy func() bool
	// Health, when set, supplies the per-disk health snapshot behind
	// the pdm_disk_health_* metric families and the per-disk lines on
	// /healthz; nil omits both.
	Health func() pdm.HealthReport
	// Monitor, when set, backs /debug/alerts and the pdm_alert_* metric
	// families; nil omits both.
	Monitor *Monitor
	// Sched, when set, supplies the group-commit scheduler snapshot
	// behind /debug/sched and the pdm_sched_* metric families; nil
	// omits both.
	Sched func() SchedSnapshot
	// Fingerprint is the config fingerprint label on pdm_build_info
	// (e.g. "D=8,B=32"); empty renders as config="".
	Fingerprint string
}

// Handler returns the mux serving the endpoints above.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.metrics)
	mux.HandleFunc("/healthz", s.healthz)
	mux.HandleFunc("/debug/events", s.events)
	mux.HandleFunc("/debug/ops", s.ops)
	mux.HandleFunc("/debug/alerts", s.alerts)
	mux.HandleFunc("/debug/sched", s.sched)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve listens on addr (":0" picks a free port) and serves the
// handler in a background goroutine. It returns the bound address and
// a stop function that closes the listener.
func (s *Server) Serve(addr string) (string, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: s.Handler()}
	go srv.Serve(ln) //nolint:errcheck // Serve always returns on Close
	return ln.Addr().String(), srv.Close, nil
}

func (s *Server) healthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	degraded := s.Healthy != nil && !s.Healthy()
	if degraded {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	// The first line stays the machine-readable verdict ("ok" or
	// "degraded"); per-disk detail follows when a health source is set.
	if degraded {
		io.WriteString(w, "degraded\n")
	} else {
		io.WriteString(w, "ok\n")
	}
	if s.Health == nil {
		return
	}
	rep := s.Health()
	for _, d := range rep.Disks {
		if d.State == pdm.Failed && d.Reachable {
			fmt.Fprintf(w, "disk %d: %s (reachable)\n", d.Disk, d.State)
			continue
		}
		fmt.Fprintf(w, "disk %d: %s\n", d.Disk, d.State)
	}
}

func (s *Server) events(w http.ResponseWriter, _ *http.Request) {
	if s.Ring == nil {
		http.Error(w, "no event ring attached", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	jw := NewJSONLWriter(w)
	for _, e := range s.Ring.Events() {
		jw.Event(e)
	}
	jw.Close() //nolint:errcheck // best-effort debug endpoint
}

// opsDump is the JSON shape served by /debug/ops.
type opsDump struct {
	// InFlight holds the top-K open operations, heaviest first.
	InFlight []OpRecord `json:"inflight"`
	// Completed holds the flight recorder's retained operations, oldest
	// first, truncated to the last K.
	Completed []FlightRecord `json:"completed"`
	// RecordedTotal counts every record the recorder ever retained,
	// including ones the ring has since overwritten.
	RecordedTotal int64 `json:"recorded_total"`
}

// ops serves the accountant's live view: the top-K in-flight ops and
// the flight recorder's most recent completed ops, as JSON. K defaults
// to 32 and can be set with ?k=N.
func (s *Server) ops(w http.ResponseWriter, r *http.Request) {
	if s.Accountant == nil {
		http.Error(w, "no op accountant attached", http.StatusNotFound)
		return
	}
	k := 32
	if v := r.URL.Query().Get("k"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			k = n
		}
	}
	completed, total := s.Accountant.Recorded()
	if len(completed) > k {
		completed = completed[len(completed)-k:]
	}
	dump := opsDump{
		InFlight:      s.Accountant.InFlight(k),
		Completed:     completed,
		RecordedTotal: total,
	}
	if dump.InFlight == nil {
		dump.InFlight = []OpRecord{}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(dump) //nolint:errcheck // best-effort debug endpoint
}

// alerts serves the watchdog's full alert state — per-rule instance
// tables plus the retained transition timeline — as indented JSON. The
// snapshot walks sorted labels, so the body is deterministic for a
// deterministic event stream.
func (s *Server) alerts(w http.ResponseWriter, _ *http.Request) {
	if s.Monitor == nil {
		http.Error(w, "no alert monitor attached", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.Monitor.Snapshot()) //nolint:errcheck // best-effort debug endpoint
}

func (s *Server) metrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.writeMetrics(w)
}

// writeMetrics renders the Prometheus text exposition format by hand;
// the repo takes no dependencies, and the format is three line shapes.
func (s *Server) writeMetrics(w io.Writer) {
	c := s.Collector
	_, reads, writes, steps, blocks := c.Totals()

	// Identity first: the build/config stamp, then the deterministic
	// uptime (the step clock doubles as the only time base the repo
	// trusts — wall-clock uptime would break double-scrape identity).
	header(w, "pdm_build_info", "gauge", "Build and configuration identity (value is always 1).")
	sample(w, "pdm_build_info",
		fmt.Sprintf(`go_version=%q,config=%q`, runtime.Version(), s.Fingerprint), 1)
	header(w, "pdm_uptime_steps", "gauge", "Parallel I/O steps elapsed since the collector attached (deterministic uptime).")
	sample(w, "pdm_uptime_steps", "", float64(steps))

	header(w, "pdm_batches_total", "counter", "Batch I/O operations issued, by kind.")
	sample(w, "pdm_batches_total", `kind="read"`, float64(reads))
	sample(w, "pdm_batches_total", `kind="write"`, float64(writes))

	header(w, "pdm_parallel_io_steps_total", "counter", "Cumulative parallel I/O steps (the PDM cost measure).")
	sample(w, "pdm_parallel_io_steps_total", "", float64(steps))

	header(w, "pdm_block_transfers_total", "counter", "Cumulative block transfers across all disks.")
	sample(w, "pdm_block_transfers_total", "", float64(blocks))

	// Per-tag batch I/O. Fault events are split out under their own
	// family: they annotate batches rather than being batches.
	tags := c.Tags()
	names := make([]string, 0, len(tags))
	for name := range tags {
		names = append(names, name)
	}
	sort.Strings(names)
	header(w, "pdm_tag_batches_total", "counter", "Batches attributed to each span tag.")
	for _, name := range names {
		if !strings.HasPrefix(name, pdm.FaultTagPrefix) {
			sample(w, "pdm_tag_batches_total", tagLabel(name), float64(tags[name].Batches))
		}
	}
	header(w, "pdm_tag_steps_total", "counter", "Parallel I/O steps attributed to each span tag.")
	for _, name := range names {
		if !strings.HasPrefix(name, pdm.FaultTagPrefix) {
			sample(w, "pdm_tag_steps_total", tagLabel(name), float64(tags[name].Steps))
		}
	}
	header(w, "pdm_tag_blocks_total", "counter", "Block transfers attributed to each span tag.")
	for _, name := range names {
		if !strings.HasPrefix(name, pdm.FaultTagPrefix) {
			sample(w, "pdm_tag_blocks_total", tagLabel(name), float64(tags[name].Blocks))
		}
	}
	header(w, "pdm_fault_events_total", "counter", "Injected or detected faults, by kind.")
	for _, name := range names {
		if kind, ok := strings.CutPrefix(name, pdm.FaultTagPrefix); ok {
			sample(w, "pdm_fault_events_total", fmt.Sprintf("kind=%q", kind), float64(tags[name].Batches))
		}
	}

	// Per-disk transfers and the skew figure the load-balancing theorems
	// are about (max/mean; 1.0 = perfectly balanced).
	perDisk := c.PerDisk()
	header(w, "pdm_disk_transfers_total", "counter", "Block transfers per disk.")
	var total, max int64
	for d, v := range perDisk {
		sample(w, "pdm_disk_transfers_total", fmt.Sprintf(`disk="%d"`, d), float64(v))
		total += v
		if v > max {
			max = v
		}
	}
	header(w, "pdm_disk_skew_ratio", "gauge", "Max/mean block transfers across disks (1.0 = balanced).")
	skew := 0.0
	if total > 0 && len(perDisk) > 0 {
		skew = float64(max) * float64(len(perDisk)) / float64(total)
	}
	sample(w, "pdm_disk_skew_ratio", "", skew)

	// Batch depth histogram (parallel I/O steps per batch).
	histogram(w, "pdm_batch_depth", "Parallel I/O steps per batch (critical-path depth).", "", &c.Depth, float64(c.DepthSum()))

	// Per-operation series, folded from span events. Root spans only:
	// one sample per Lookup/Insert/Delete, nested phases rolled up.
	ops := c.Ops()
	opNames := make([]string, 0, len(ops))
	for name := range ops {
		opNames = append(opNames, name)
	}
	sort.Strings(opNames)
	header(w, "pdm_ops_total", "counter", "Completed operations (root spans), by tag.")
	for _, name := range opNames {
		sample(w, "pdm_ops_total", tagLabel(name), float64(ops[name].Count))
	}
	header(w, "pdm_op_faults_total", "counter", "Faults observed inside operations, by tag.")
	for _, name := range opNames {
		sample(w, "pdm_op_faults_total", tagLabel(name), float64(ops[name].FaultSum))
	}
	header(w, "pdm_op_steps", "histogram", "Parallel I/O steps per operation.")
	for _, name := range opNames {
		a := ops[name]
		histogramSeries(w, "pdm_op_steps", tagLabel(name), a.Steps, 1, float64(a.StepSum), a.Count)
	}
	header(w, "pdm_op_latency_seconds", "histogram", "Modeled operation latency under the collector's cost model.")
	for _, name := range opNames {
		a := ops[name]
		histogramSeries(w, "pdm_op_latency_seconds", tagLabel(name), a.LatencyMicros, 1e-6, float64(a.LatencySumNanos)/1e9, a.Count)
	}

	header(w, "pdm_open_spans", "gauge", "Spans currently open (growth means unbalanced Span calls).")
	sample(w, "pdm_open_spans", "", float64(c.OpenSpans()))

	if s.Health != nil {
		s.writeHealthMetrics(w)
	}
	if s.Accountant != nil {
		s.writeOpMetrics(w)
	}
	if s.Monitor != nil {
		s.writeAlertMetrics(w)
	}
	if s.Sched != nil {
		s.writeSchedMetrics(w)
	}
}

// sched serves the group-commit scheduler's snapshot as indented JSON.
// The snapshot walks fixed fields and sorted buckets, so the body is
// deterministic for a deterministic workload.
func (s *Server) sched(w http.ResponseWriter, _ *http.Request) {
	if s.Sched == nil {
		http.Error(w, "no scheduler attached", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.Sched()) //nolint:errcheck // best-effort debug endpoint
}

// writeSchedMetrics renders the group-commit scheduler families: how
// much coalescing the admission windows achieve (occupancy, rounds
// saved), the async write path's queue state, and the window-length
// histogram on the deterministic step clock.
func (s *Server) writeSchedMetrics(w io.Writer) {
	snap := s.Sched()

	header(w, "pdm_sched_lookups_total", "counter", "Lookups admitted by the group-commit scheduler.")
	sample(w, "pdm_sched_lookups_total", "", float64(snap.Lookups))
	header(w, "pdm_sched_rounds_total", "counter", "Merged shared read rounds executed.")
	sample(w, "pdm_sched_rounds_total", "", float64(snap.Rounds))
	header(w, "pdm_sched_rounds_saved_total", "counter", "Read rounds avoided by coalescing (participants minus one, per round).")
	sample(w, "pdm_sched_rounds_saved_total", "", float64(snap.RoundsSaved))
	header(w, "pdm_sched_writes_total", "counter", "Mutations admitted to the group-commit write queue.")
	sample(w, "pdm_sched_writes_total", "", float64(snap.Writes))
	header(w, "pdm_sched_flushes_total", "counter", "Group commits of the write queue (intent-log flushes).")
	sample(w, "pdm_sched_flushes_total", "", float64(snap.Flushes))
	header(w, "pdm_sched_overloads_total", "counter", "Writers bounced with ErrOverloaded by backpressure.")
	sample(w, "pdm_sched_overloads_total", "", float64(snap.Overloads))
	header(w, "pdm_sched_queue_depth", "gauge", "Pending mutations in the write queue.")
	sample(w, "pdm_sched_queue_depth", "", float64(snap.QueueDepth))
	header(w, "pdm_sched_queue_peak", "gauge", "High-water mark of the write queue (bounded by the configured depth).")
	sample(w, "pdm_sched_queue_peak", "", float64(snap.QueuePeak))
	header(w, "pdm_sched_pending_reads", "gauge", "Lookups waiting in the open admission window.")
	sample(w, "pdm_sched_pending_reads", "", float64(snap.PendingReads))

	header(w, "pdm_sched_batch_occupancy", "histogram", "Lookups coalesced per shared read round.")
	summarySeries(w, "pdm_sched_batch_occupancy", "", snap.Occupancy, float64(snap.OccupancySum))
	header(w, "pdm_sched_window_steps", "histogram", "Admission window length in parallel I/O steps (deterministic clock).")
	summarySeries(w, "pdm_sched_window_steps", "", snap.WindowSteps, float64(snap.WindowStepSum))
}

// writeAlertMetrics renders the watchdog's state. The snapshot's rules
// keep construction order and instances come back label-sorted, so the
// exposition is a pure function of monitor state.
func (s *Server) writeAlertMetrics(w io.Writer) {
	snap := s.Monitor.Snapshot()

	header(w, "pdm_alert_state", "gauge", "Alert instance state (0=inactive, 1=pending, 2=firing, 3=resolved).")
	for _, r := range snap.Rules {
		for _, inst := range r.Instances {
			sample(w, "pdm_alert_state", alertLabels(r.Rule, inst.Label), float64(inst.State))
		}
	}
	header(w, "pdm_alert_value", "gauge", "Last sampled rule value per alert instance (skew ratio, burn fraction, down disks).")
	for _, r := range snap.Rules {
		for _, inst := range r.Instances {
			sample(w, "pdm_alert_value", alertLabels(r.Rule, inst.Label), float64(inst.ValueMicro)/1e6)
		}
	}
	header(w, "pdm_alert_transitions_total", "counter", "Alert state-machine transitions per rule.")
	for _, r := range snap.Rules {
		sample(w, "pdm_alert_transitions_total", fmt.Sprintf("rule=%q", r.Rule), float64(r.Transitions))
	}
	header(w, "pdm_alert_cycles_total", "counter", "Complete fire-to-resolve alert cycles per rule.")
	for _, r := range snap.Rules {
		sample(w, "pdm_alert_cycles_total", fmt.Sprintf("rule=%q", r.Rule), float64(r.Cycles))
	}
	header(w, "pdm_alerts_firing", "gauge", "Alert instances currently firing, per rule.")
	for _, r := range snap.Rules {
		sample(w, "pdm_alerts_firing", fmt.Sprintf("rule=%q", r.Rule), float64(r.Firing))
	}
	header(w, "pdm_alerts_pending", "gauge", "Alert instances currently pending, per rule.")
	for _, r := range snap.Rules {
		sample(w, "pdm_alerts_pending", fmt.Sprintf("rule=%q", r.Rule), float64(r.Pending))
	}
}

// alertLabels renders the rule/label pair of one alert instance.
func alertLabels(rule, label string) string {
	return fmt.Sprintf("rule=%q,label=%q", rule, label)
}

// writeHealthMetrics renders the per-disk health states and the
// machine-wide recovery counters. Disks come back as an ordered slice,
// so the exposition stays byte-deterministic.
func (s *Server) writeHealthMetrics(w io.Writer) {
	rep := s.Health()

	header(w, "pdm_disk_health_state", "gauge", "Disk health state (0=healthy, 1=suspect, 2=failed, 3=repairing).")
	for _, d := range rep.Disks {
		sample(w, "pdm_disk_health_state", fmt.Sprintf(`disk="%d"`, d.Disk), float64(d.State))
	}
	header(w, "pdm_disk_health_transitions_total", "counter", "Health state transitions per disk.")
	for _, d := range rep.Disks {
		sample(w, "pdm_disk_health_transitions_total", fmt.Sprintf(`disk="%d"`, d.Disk), float64(d.Transitions))
	}
	header(w, "pdm_disk_faults_total", "counter", "Hard faults (fail-stop, corruption) observed per disk.")
	for _, d := range rep.Disks {
		sample(w, "pdm_disk_faults_total", fmt.Sprintf(`disk="%d"`, d.Disk), float64(d.Faults))
	}
	header(w, "pdm_retry_batches_total", "counter", "Batches reissued by the retry policy after transient faults.")
	sample(w, "pdm_retry_batches_total", "", float64(rep.Retries))
	header(w, "pdm_hedged_reads_total", "counter", "Hedged duplicate reads issued against suspect or stalling disks.")
	sample(w, "pdm_hedged_reads_total", "", float64(rep.Hedges))
	header(w, "pdm_backoff_steps_total", "counter", "Modeled parallel I/O steps charged as retry backoff.")
	sample(w, "pdm_backoff_steps_total", "", float64(rep.BackoffSteps))
	header(w, "pdm_repair_chunks_total", "counter", "Incremental repair and scrub chunks executed.")
	sample(w, "pdm_repair_chunks_total", "", float64(rep.RepairChunks))
	header(w, "pdm_repair_rows_total", "counter", "Bucket rows processed by incremental repair and scrub chunks.")
	sample(w, "pdm_repair_rows_total", "", float64(rep.RepairRows))
}

// writeOpMetrics renders the exact token-based per-op families. Clients
// and tags are walked in sorted order, so the output stays a pure
// function of accountant state.
func (s *Server) writeOpMetrics(w io.Writer) {
	a := s.Accountant
	ops, steps, blocks, faults := a.Totals()

	header(w, "pdm_op_accounted_total", "counter", "Completed token-carrying operations (exact attribution).")
	sample(w, "pdm_op_accounted_total", "", float64(ops))
	header(w, "pdm_op_exact_steps_total", "counter", "Parallel I/O steps charged to completed ops, stall surcharges included.")
	sample(w, "pdm_op_exact_steps_total", "", float64(steps))
	header(w, "pdm_op_exact_blocks_total", "counter", "Block transfers charged to completed ops.")
	sample(w, "pdm_op_exact_blocks_total", "", float64(blocks))
	header(w, "pdm_op_exact_faults_total", "counter", "Fault events charged to completed ops.")
	sample(w, "pdm_op_exact_faults_total", "", float64(faults))

	header(w, "pdm_op_worst_steps_per_key", "gauge", "Exact worst per-operation parallel I/O steps, batch ops amortized per key.")
	sample(w, "pdm_op_worst_steps_per_key", "", float64(a.WorstOp()))
	header(w, "pdm_ops_inflight", "gauge", "Token-carrying operations currently in flight.")
	sample(w, "pdm_ops_inflight", "", float64(a.InFlightCount()))
	header(w, "pdm_op_budget_exceeded_total", "counter", "Completed ops whose exact steps exceeded the accountant's step budget.")
	sample(w, "pdm_op_budget_exceeded_total", "", float64(a.BudgetExceeded()))
	_, recorded := a.Recorded()
	header(w, "pdm_flight_records_total", "counter", "Operations retained by the flight recorder over its lifetime.")
	sample(w, "pdm_flight_records_total", "", float64(recorded))

	quantiles := []struct {
		q string
		v float64
	}{{"0.5", 0.50}, {"0.99", 0.99}, {"0.999", 0.999}}

	clients := a.Clients()
	ids := make([]int, 0, len(clients))
	for id := range clients {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	header(w, "pdm_client_ops_total", "counter", "Completed operations per client.")
	for _, id := range ids {
		sample(w, "pdm_client_ops_total", fmt.Sprintf(`client="%d"`, id), float64(clients[id].Count))
	}
	header(w, "pdm_client_op_latency_seconds", "histogram", "Modeled operation latency per client (SLO histogram).")
	for _, id := range ids {
		agg := clients[id]
		histogramSeries(w, "pdm_client_op_latency_seconds", fmt.Sprintf(`client="%d"`, id), agg.LatencyMicros, 1e-6, float64(agg.LatencySumNanos)/1e9, agg.Count)
	}
	header(w, "pdm_client_op_latency_quantile_seconds", "gauge", "Modeled per-client operation latency quantiles (p50/p99/p999).")
	for _, id := range ids {
		for _, q := range quantiles {
			sample(w, "pdm_client_op_latency_quantile_seconds",
				fmt.Sprintf(`client="%d",q=%q`, id, q.q),
				float64(clients[id].LatencyMicros.Quantile(q.v))/1e6)
		}
	}

	tags := a.Tags()
	names := make([]string, 0, len(tags))
	for name := range tags {
		names = append(names, name)
	}
	sort.Strings(names)
	header(w, "pdm_tag_op_latency_quantile_seconds", "gauge", "Modeled per-tag operation latency quantiles (p50/p99/p999).")
	for _, name := range names {
		for _, q := range quantiles {
			sample(w, "pdm_tag_op_latency_quantile_seconds",
				tagLabel(name)+fmt.Sprintf(",q=%q", q.q),
				float64(tags[name].LatencyMicros.Quantile(q.v))/1e6)
		}
	}
}

// header writes the HELP and TYPE lines of one metric family.
func header(w io.Writer, name, typ, help string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// sample writes one sample line; labels is a pre-rendered `k="v"` list
// or empty.
func sample(w io.Writer, name, labels string, v float64) {
	if labels == "" {
		fmt.Fprintf(w, "%s %g\n", name, v)
		return
	}
	fmt.Fprintf(w, "%s{%s} %g\n", name, labels, v)
}

// tagLabel renders a span tag as an escaped `tag="..."` label.
func tagLabel(tag string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return `tag="` + r.Replace(tag) + `"`
}

// histogram writes one full unlabeled histogram family: header plus
// the bucket/sum/count series.
func histogram(w io.Writer, name, help, labels string, h *Hist, sum float64) {
	header(w, name, "histogram", help)
	histogramSeries(w, name, labels, h, 1, sum, h.Total())
}

// summarySeries writes the _bucket/_sum/_count lines of one labeled
// histogram from a Summary digest (for sources that hand over a
// snapshot rather than a live *Hist).
func summarySeries(w io.Writer, name, labels string, s Summary, sum float64) {
	sep := ""
	if labels != "" {
		sep = ","
	}
	cum := int64(0)
	for _, b := range s.Buckets {
		cum += b.Count
		fmt.Fprintf(w, "%s_bucket{%s%sle=%q} %d\n", name, labels, sep, fmt.Sprintf("%g", float64(b.Hi)), cum)
	}
	fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, s.Total)
	sample(w, name+"_sum", labels, sum)
	sample(w, name+"_count", labels, float64(s.Total))
}

// histogramSeries writes the _bucket/_sum/_count lines of one labeled
// histogram. Bucket upper bounds are the Hist's power-of-two edges
// scaled by unit (1e-6 turns microsecond buckets into seconds).
func histogramSeries(w io.Writer, name, labels string, h *Hist, unit, sum float64, count int64) {
	sep := ""
	if labels != "" {
		sep = ","
	}
	cum := int64(0)
	for _, b := range h.Buckets() {
		cum += b.Count
		fmt.Fprintf(w, "%s_bucket{%s%sle=%q} %d\n", name, labels, sep, fmt.Sprintf("%g", float64(b.Hi)*unit), cum)
	}
	fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, count)
	sample(w, name+"_sum", labels, sum)
	sample(w, name+"_count", labels, float64(count))
}

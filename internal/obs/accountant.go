package obs

import (
	"sort"
	"sync"

	"pdmdict/internal/pdm"
)

// OpCtx is the operation token the public API threads through the
// dictionaries into pdm.Machine: the machine-unique op (carrying its ID,
// issuing client, and key count) plus the operation's registered root
// tag. Public entry points mint one OpCtx per logical operation; every
// batch, fault, and span event the operation causes is stamped with the
// token, which is what makes per-operation accounting exact under
// concurrency.
type OpCtx struct {
	// Op is the token itself; nil falls back to unattributed operation.
	Op *pdm.Op
	// Tag is the operation's registered root span tag (TagLookup,
	// TagInsert, ...).
	Tag string
}

// MintOp mints a token on m for one operation issued by client over
// keys keys, carrying the given registered tag.
func MintOp(m *pdm.Machine, client, keys int, tag string) OpCtx {
	return OpCtx{Op: m.NewOp(client, keys), Tag: tag}
}

// FlightRecord is one completed operation retained by the accountant's
// flight recorder: the exact per-op record plus (a bounded prefix of)
// the events that produced it.
type FlightRecord struct {
	OpRecord
	// Events are the operation's own batch, fault, and span events in
	// emission order, truncated to the recorder's per-op cap.
	Events []pdm.Event `json:"events,omitempty"`
	// Dropped counts events beyond the cap that were not retained.
	Dropped int `json:"dropped_events,omitempty"`
	// OverBudget marks an op retained because it exceeded StepBudget.
	OverBudget bool `json:"over_budget,omitempty"`
}

// liveOp is one in-flight operation being accumulated.
type liveOp struct {
	rec     OpRecord
	events  []pdm.Event
	dropped int
}

// OpAccountant folds the event stream into exact per-operation records,
// online: it never walks a span parent chain, only operation tokens, so
// its accounting is exact under arbitrary concurrency — including
// merged batches, which charge every op on their attribution list. It
// maintains per-client and per-tag SLO aggregates of modeled latency,
// the exact batch-inclusive worst-op figure (amortized per key), and a
// sampled always-on flight recorder: a ring of the last RecorderSize
// retained operations with their event slices, dumpable on demand;
// operations exceeding StepBudget are always retained.
//
// Unlike SpanFolder, an op's Steps here is the sum of the step charges
// of its own events (batch steps plus stall surcharges), not a window
// of the machine's shared step counter — under concurrency the shared
// counter interleaves other clients' work, while the event sum is the
// op's own cost exactly. Single-threaded, the two definitions agree.
//
// OpAccountant implements pdm.Hook and is safe for concurrent use; all
// accessors iterate in sorted order, so rendering its state is
// byte-deterministic for deterministic workloads.
type OpAccountant struct {
	// Cost converts per-op step/block counts into modeled latency. The
	// zero value means DefaultCostModel. Set before the first event.
	Cost CostModel
	// SampleEvery retains every Nth completed op in the flight recorder
	// (1 = every op; 0 means the NewOpAccountant default of 1).
	SampleEvery uint64
	// StepBudget, when positive, marks any op whose exact steps exceed
	// it: the op is retained in the recorder regardless of sampling and
	// counted in BudgetExceeded.
	StepBudget int64
	// RecorderSize bounds the flight-recorder ring (0 = default 128).
	RecorderSize int
	// MaxEvents bounds the events retained per recorded op (0 = default
	// 64); further events are counted in Dropped, not retained.
	MaxEvents int

	mu       sync.Mutex
	inflight map[uint64]*liveOp
	byClient map[int]*OpAgg
	byTag    map[string]*OpAgg

	ops, steps, blocks, faults int64
	worst                      int64 // max per-key amortized steps over completed ops
	budgetExceeded             int64

	ring     []FlightRecord
	ringNext int
	recorded int64 // lifetime records pushed into the ring
}

// NewOpAccountant returns an accountant with default sampling (every
// completed op) and recorder bounds.
func NewOpAccountant() *OpAccountant {
	return &OpAccountant{SampleEvery: 1, RecorderSize: 128, MaxEvents: 64}
}

// Event implements pdm.Hook.
func (a *OpAccountant) Event(e pdm.Event) {
	if e.Kind.IsAnnotation() {
		return // health/alert transitions are not op work
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	switch e.Kind {
	case pdm.EventSpanBegin:
		if e.Op == 0 {
			return
		}
		if e.Parent == 0 {
			if a.inflight == nil {
				a.inflight = make(map[uint64]*liveOp)
			}
			a.inflight[e.Op] = &liveOp{rec: OpRecord{
				ID:        e.Span,
				Op:        e.Op,
				Client:    e.Client,
				Keys:      e.Keys,
				Tag:       e.Tag,
				BeginStep: e.Step,
			}}
		}
		a.retain(e)
	case pdm.EventSpanEnd:
		if e.Op == 0 {
			return
		}
		a.retain(e)
		if e.Parent != 0 {
			return
		}
		lo := a.inflight[e.Op]
		if lo == nil {
			return // end without begin (hook attached mid-operation)
		}
		delete(a.inflight, e.Op)
		a.complete(lo, e)
	default:
		if e.Op != 0 {
			a.chargeLive(e.Op, e)
		}
		for _, id := range e.Ops {
			a.chargeLive(id, e)
		}
	}
}

// chargeLive rolls one batch or fault event into an in-flight op.
func (a *OpAccountant) chargeLive(op uint64, e pdm.Event) {
	lo := a.inflight[op]
	if lo == nil {
		return
	}
	lo.rec.Steps += int64(e.Steps)
	if isFaultTag(e.Tag) {
		lo.rec.Faults++
	} else {
		lo.rec.Batches++
		lo.rec.Blocks += int64(len(e.Addrs))
		if e.Kind == pdm.EventWrite {
			lo.rec.Writes += int64(len(e.Addrs))
		} else {
			lo.rec.Reads += int64(len(e.Addrs))
		}
	}
	a.retainFor(lo, e)
}

// retain appends a span event to every in-flight op it belongs to.
func (a *OpAccountant) retain(e pdm.Event) {
	if lo := a.inflight[e.Op]; lo != nil {
		a.retainFor(lo, e)
	}
}

// retainFor appends a copy of e to an op's retained events, up to the
// per-op cap.
func (a *OpAccountant) retainFor(lo *liveOp, e pdm.Event) {
	max := a.MaxEvents
	if max == 0 {
		max = 64
	}
	if len(lo.events) >= max {
		lo.dropped++
		return
	}
	e.Addrs = append([]pdm.Addr(nil), e.Addrs...)
	e.Ops = append([]uint64(nil), e.Ops...)
	lo.events = append(lo.events, e)
}

// complete finalizes an op on its root span end.
func (a *OpAccountant) complete(lo *liveOp, end pdm.Event) {
	rec := &lo.rec
	rec.EndStep = end.Step
	rec.WallNanos = end.WallNanos
	rec.Latency = a.Cost.Latency(rec.Steps, rec.Blocks)

	a.ops++
	a.steps += rec.Steps
	a.blocks += rec.Blocks
	a.faults += rec.Faults
	keys := int64(rec.Keys)
	if keys < 1 {
		keys = 1
	}
	perKey := (rec.Steps + keys - 1) / keys
	if perKey > a.worst {
		a.worst = perKey
	}

	if a.byClient == nil {
		a.byClient = make(map[int]*OpAgg)
	}
	a.aggregate(aggFor(a.byClient, rec.Client), rec)
	if a.byTag == nil {
		a.byTag = make(map[string]*OpAgg)
	}
	a.aggregate(aggFor(a.byTag, rec.Tag), rec)

	every := a.SampleEvery
	if every == 0 {
		every = 1
	}
	over := a.StepBudget > 0 && rec.Steps > a.StepBudget
	if over {
		a.budgetExceeded++
	}
	if rec.Op%every != 0 && !over {
		return
	}
	fr := FlightRecord{OpRecord: *rec, Events: lo.events, Dropped: lo.dropped, OverBudget: over}
	size := a.RecorderSize
	if size == 0 {
		size = 128
	}
	if a.ring == nil {
		a.ring = make([]FlightRecord, 0, size)
	}
	if len(a.ring) < cap(a.ring) {
		a.ring = append(a.ring, fr)
	} else {
		a.ring[a.ringNext] = fr
	}
	a.ringNext = (a.ringNext + 1) % cap(a.ring)
	a.recorded++
}

// aggFor returns (creating if needed) the aggregate for one map key.
func aggFor[K comparable](m map[K]*OpAgg, k K) *OpAgg {
	agg := m[k]
	if agg == nil {
		agg = &OpAgg{Steps: &Hist{}, LatencyMicros: &Hist{}}
		m[k] = agg
	}
	return agg
}

// aggregate rolls one completed record into an SLO aggregate.
func (a *OpAccountant) aggregate(agg *OpAgg, rec *OpRecord) {
	agg.Count++
	agg.StepSum += rec.Steps
	agg.BlockSum += rec.Blocks
	agg.FaultSum += rec.Faults
	agg.LatencySumNanos += int64(rec.Latency)
	agg.WallSumNanos += rec.WallNanos
	agg.Steps.Observe(rec.Steps)
	agg.LatencyMicros.Observe(rec.Latency.Microseconds())
}

// isFaultTag reports whether a span path denotes a fault event; the
// fault tag may ride at the end of the owning span's path.
func isFaultTag(tag string) bool {
	if len(tag) == 0 {
		return false
	}
	for i := 0; i+len(pdm.FaultTagPrefix) <= len(tag); i++ {
		if (i == 0 || tag[i-1] == '.') && tag[i:i+len(pdm.FaultTagPrefix)] == pdm.FaultTagPrefix {
			return true
		}
	}
	return false
}

// Totals returns the completed-op totals: operations, exact steps,
// blocks, and faults charged across them.
func (a *OpAccountant) Totals() (ops, steps, blocks, faults int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.ops, a.steps, a.blocks, a.faults
}

// WorstOp returns the exact worst per-operation parallel I/O cost seen,
// batch operations included and amortized per key (⌈steps/keys⌉).
func (a *OpAccountant) WorstOp() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.worst
}

// BudgetExceeded returns how many completed ops exceeded StepBudget.
func (a *OpAccountant) BudgetExceeded() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.budgetExceeded
}

// InFlightCount returns how many token-carrying ops are currently open.
func (a *OpAccountant) InFlightCount() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.inflight)
}

// InFlight returns snapshots of the in-flight ops, heaviest first (by
// steps charged so far, ties broken by op ID), truncated to k (k <= 0 =
// all).
func (a *OpAccountant) InFlight(k int) []OpRecord {
	a.mu.Lock()
	out := make([]OpRecord, 0, len(a.inflight))
	for _, lo := range a.inflight {
		out = append(out, lo.rec)
	}
	a.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Steps != out[j].Steps {
			return out[i].Steps > out[j].Steps
		}
		return out[i].Op < out[j].Op
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// Recorded returns the flight recorder's retained records, oldest
// first, and the lifetime count of records pushed (including ones the
// ring has since overwritten).
func (a *OpAccountant) Recorded() ([]FlightRecord, int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]FlightRecord, 0, len(a.ring))
	if len(a.ring) == cap(a.ring) && cap(a.ring) > 0 {
		out = append(out, a.ring[a.ringNext:]...)
		out = append(out, a.ring[:a.ringNext]...)
	} else {
		out = append(out, a.ring...)
	}
	return out, a.recorded
}

// Clients returns the per-client SLO aggregates; the map is fresh but
// shares histogram pointers (safe for concurrent use).
func (a *OpAccountant) Clients() map[int]*OpAgg {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[int]*OpAgg, len(a.byClient))
	for k, v := range a.byClient {
		cp := *v
		out[k] = &cp
	}
	return out
}

// Tags returns the per-tag SLO aggregates, keyed by root span tag.
func (a *OpAccountant) Tags() map[string]*OpAgg {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[string]*OpAgg, len(a.byTag))
	for k, v := range a.byTag {
		cp := *v
		out[k] = &cp
	}
	return out
}

package obs_test

import (
	"bytes"
	"strings"
	"testing"

	"pdmdict/internal/core"
	"pdmdict/internal/fault"
	"pdmdict/internal/obs"
	"pdmdict/internal/pdm"
)

// Fault injection is deterministic end to end: the same seed and the
// same workload must produce byte-identical JSONL traces, fault.*
// events included.
func TestFaultTraceDeterministic(t *testing.T) {
	run := func() string {
		var buf bytes.Buffer
		w := obs.NewJSONLWriter(&buf)
		m := pdm.NewMachine(pdm.Config{D: 8, B: 32})
		m.SetHook(w)
		bd, err := core.NewBasic(m, core.BasicConfig{
			Capacity: 200, SatWords: 1, K: 2, Replicate: true, Seed: 11,
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 200; i++ {
			if err := bd.Insert(pdm.Word(i)*97+1, []pdm.Word{pdm.Word(i)}); err != nil {
				t.Fatal(err)
			}
		}
		plan := fault.NewPlan(42)
		plan.SetTransient(0.1)
		plan.SetStall(0.05, 3)
		plan.FailDisk(2)
		m.SetFaultInjector(plan)
		for i := 0; i < 200; i++ {
			if _, ok, err := bd.LookupTry(pdm.Word(i)*97 + 1); err != nil || !ok {
				t.Fatalf("lookup %d: ok=%v err=%v", i, ok, err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	t1, t2 := run(), run()
	if t1 != t2 {
		t.Fatal("identical seed+workload produced different JSONL traces")
	}
	if !strings.Contains(t1, `"tag":"fault.failstop"`) ||
		!strings.Contains(t1, `"tag":"fault.transient"`) {
		t.Fatalf("trace lacks fault.* events:\n%.400s", t1)
	}
	// The trace round-trips: fault events are ordinary events.
	evs, err := obs.ReadEvents(strings.NewReader(t1))
	if err != nil {
		t.Fatalf("ReadEvents: %v", err)
	}
	faults := 0
	for _, e := range evs {
		if strings.HasPrefix(e.Tag, "fault.") {
			faults++
		}
	}
	if faults == 0 {
		t.Fatal("round-tripped trace lost the fault events")
	}
}

// A retry policy's modeled backoff is recorded as addr-less charged
// reads (ChargeSteps) under the "backoff" span, and Replay re-charges
// them, so a trace with recovery waiting replays to the exact same cost
// profile — backoff counter included.
func TestReplayReproducesBackoffCharges(t *testing.T) {
	var buf bytes.Buffer
	w := obs.NewJSONLWriter(&buf)
	m := pdm.NewMachine(pdm.Config{D: 4, B: 32})
	m.SetHook(w)
	bd, err := core.NewBasic(m, core.BasicConfig{
		Capacity: 100, SatWords: 1, K: 2, Replicate: true, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := bd.Insert(pdm.Word(i)*97+1, []pdm.Word{pdm.Word(i)}); err != nil {
			t.Fatal(err)
		}
	}
	bd.SetRetryPolicy(pdm.RetryPolicy{MaxRetries: 2, BackoffBase: 4, BackoffFactor: 2})
	plan := fault.NewPlan(17)
	plan.SetTransient(0.3)
	m.SetFaultInjector(plan)
	for i := 0; i < 100; i++ {
		//lint:pdm-allow batcherr: replicas settle every query; errors only mean retries ran
		bd.LookupTry(pdm.Word(i)*97 + 1)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	events, err := obs.ReadEvents(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadEvents: %v", err)
	}
	backoffs := 0
	for _, e := range events {
		if e.Kind == pdm.EventRead && len(e.Addrs) == 0 && e.Steps > 0 {
			backoffs++
		}
	}
	if backoffs == 0 {
		t.Fatal("workload recorded no addr-less backoff charges; raise the transient rate")
	}
	want := m.Health().BackoffSteps
	if want == 0 {
		t.Fatal("no backoff steps charged")
	}

	// Replay against a fault-free machine: batch costs may differ (the
	// original's failed accesses transferred nothing), but every modeled
	// backoff charge must be re-applied exactly.
	fresh := pdm.NewMachine(pdm.Config{D: 4, B: 32})
	delta := obs.Replay(fresh, events)
	if got := fresh.Health().BackoffSteps; got != want {
		t.Errorf("replayed backoff steps = %d, want %d", got, want)
	}
	if delta.ParallelIOs < want {
		t.Errorf("replay parallel I/Os = %d, want >= %d (backoff charges included)", delta.ParallelIOs, want)
	}
}

package obs

import "sort"

// Tag registry. Every span tag passed to (*pdm.Machine).Span — and every
// fault tag the machine synthesizes itself — must be one of the
// constants below. The registry is what makes per-tag accounting a
// *partition* of the machine's total parallel I/Os: a tag outside the
// registered set would open a cost bucket no report knows about, and a
// typo ("lokup") would silently split one logical phase across two
// buckets. The pdmlint hooktag analyzer enforces at build time that
// every Span call site references one of these constants.
//
// The machine dot-joins nested span tags ("insert" inside "probe"
// becomes "insert.probe"); IsRegisteredTag accepts such composites when
// every path component is itself registered.
const (
	// Dictionary operation phases.
	TagLookup   = "lookup"
	TagInsert   = "insert"
	TagDelete   = "delete"
	TagProbe    = "probe"
	TagScan     = "scan"
	TagBuild    = "build"
	TagBulkload = "bulkload"
	TagRehash   = "rehash"
	TagRebuild  = "rebuild"
	TagRepair   = "repair"
	TagScrub    = "scrub"
	TagBackoff  = "backoff"
	TagHedge    = "hedge"

	// Fault events synthesized by the machine itself (internal/pdm
	// builds these as "fault." + FaultKind.String(); obs_tags_test
	// asserts the two spellings never drift apart).
	TagFaultFailstop  = "fault.failstop"
	TagFaultTransient = "fault.transient"
	TagFaultCorrupt   = "fault.corrupt"
	TagFaultStall     = "fault.stall"
	TagFaultChecksum  = "fault.checksum"

	// Health transitions synthesized by the machine's per-disk health
	// state machine (internal/pdm builds these as "health." +
	// HealthState.String(); obs_tags_test pins the spellings together).
	TagHealthHealthy   = "health.healthy"
	TagHealthSuspect   = "health.suspect"
	TagHealthFailed    = "health.failed"
	TagHealthRepairing = "health.repairing"

	// Alert transitions synthesized by Monitor ("alert." +
	// AlertState.String(); the same pin test covers these).
	TagAlertInactive = "alert.inactive"
	TagAlertPending  = "alert.pending"
	TagAlertFiring   = "alert.firing"
	TagAlertResolved = "alert.resolved"

	// TagUntagged is the bucket collectors report untagged batches
	// under; it is never passed to Span.
	TagUntagged = "(untagged)"
)

// registeredTags is the closed set of valid tags and tag components.
var registeredTags = map[string]bool{
	TagLookup:   true,
	TagInsert:   true,
	TagDelete:   true,
	TagProbe:    true,
	TagScan:     true,
	TagBuild:    true,
	TagBulkload: true,
	TagRehash:   true,
	TagRebuild:  true,
	TagRepair:   true,
	TagScrub:    true,
	TagBackoff:  true,
	TagHedge:    true,

	TagFaultFailstop:  true,
	TagFaultTransient: true,
	TagFaultCorrupt:   true,
	TagFaultStall:     true,
	TagFaultChecksum:  true,

	TagHealthHealthy:   true,
	TagHealthSuspect:   true,
	TagHealthFailed:    true,
	TagHealthRepairing: true,

	TagAlertInactive: true,
	TagAlertPending:  true,
	TagAlertFiring:   true,
	TagAlertResolved: true,

	TagUntagged: true,
}

// RegisteredTags returns the registry in sorted order.
func RegisteredTags() []string {
	out := make([]string, 0, len(registeredTags))
	for t := range registeredTags {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// IsRegisteredTag reports whether tag is registered. A dot-joined span
// path ("insert.probe") is registered when every component is; the
// fault tags are registered verbatim (their dot is part of the name,
// not a span join).
func IsRegisteredTag(tag string) bool {
	if registeredTags[tag] {
		return true
	}
	// Decompose a span path left to right, preferring the longest
	// registered component at each step so "fault.stall" inside a
	// "lookup" span ("lookup.fault.stall") still decomposes.
	for len(tag) > 0 {
		matched := ""
		for t := range registeredTags {
			if len(t) > len(matched) && (tag == t || (len(tag) > len(t) && tag[:len(t)] == t && tag[len(t)] == '.')) {
				matched = t
			}
		}
		if matched == "" {
			return false
		}
		if len(matched) == len(tag) {
			return true
		}
		tag = tag[len(matched)+1:]
	}
	return false
}

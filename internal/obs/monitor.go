package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"pdmdict/internal/pdm"
)

// Monitor is the deterministic watchdog: a streaming rule engine that
// consumes the hook event stream (the same pipeline Collector and
// OpAccountant sit on) and drives one alert state machine per rule
// instance over step-counter windows. Every threshold, window, and
// evaluation tick is stated in parallel-I/O steps — the machine's own
// deterministic clock, never wall time — so the same event stream
// always yields the same alert timeline, live or replayed from a trace
// (pdmtrace -alerts).
//
// The state machine is the multi-window burn-rate shape:
//
//	Inactive → Pending    the rule's condition breaches at an eval tick
//	Pending  → Firing     the breach has held for ForSteps
//	Pending  → Inactive   the breach cleared before ForSteps elapsed
//	Firing   → Resolved   the condition has been clear for ClearSteps
//	Resolved → Inactive   the acknowledgment tick (always taken next)
//
// At most one edge is taken per instance per eval tick, so the machine
// never skips states by construction. Each transition is appended to
// the timeline, handed to the AlertListener (if any), and emitted
// downstream as a pdm.EventAlert annotation — which is how alert
// transitions land in JSONL traces (v5). Incoming EventAlert events are
// forwarded but never fed to the rules, so replaying a trace that
// already contains alerts regenerates the identical timeline instead of
// compounding it.
//
// Monitor implements pdm.Hook and is safe for concurrent use. Its lock
// is never held across calls into the downstream hook or the listener.
type Monitor struct {
	next pdm.Hook // downstream sink; receives every event plus synthesized alerts

	mu       sync.Mutex
	now      int64            // guarded by mu; cumulative steps observed (the deterministic clock)
	rules    []*ruleState     // guarded by mu
	listener AlertListener    // guarded by mu
	timeline []AlertTransition // guarded by mu; most recent maxTimeline transitions
	total    int64            // guarded by mu; lifetime transition count (timeline may be truncated)
}

// maxTimeline bounds the retained transition history. Truncation keeps
// the most recent entries and is itself deterministic, so online and
// offline timelines stay byte-identical even past the bound.
const maxTimeline = 4096

// AlertListener receives the transitions of one eval tick, in rule
// order. It runs on the goroutine that issued the triggering batch,
// outside the Monitor's lock but inside the machine's hook call: it
// must be fast, non-blocking, and must not issue I/O (waking a repair
// supervisor via heal.Supervisor.Wake is the intended use).
type AlertListener func([]AlertTransition)

// AlertState is one rule instance's position in the alert state machine.
type AlertState uint8

// Alert states, in escalation order.
const (
	AlertInactive AlertState = iota
	AlertPending
	AlertFiring
	AlertResolved
)

// String names the state as used in tags, traces, and metrics.
func (s AlertState) String() string {
	switch s {
	case AlertPending:
		return "pending"
	case AlertFiring:
		return "firing"
	case AlertResolved:
		return "resolved"
	case AlertInactive:
		return "inactive"
	default:
		return fmt.Sprintf("AlertState(%d)", int(s))
	}
}

// MarshalText makes alert states render as their names in JSON.
func (s AlertState) MarshalText() ([]byte, error) { return []byte(s.String()), nil }

// alertTag maps a destination state to its registered trace tag.
func alertTag(s AlertState) string {
	switch s {
	case AlertPending:
		return TagAlertPending
	case AlertFiring:
		return TagAlertFiring
	case AlertResolved:
		return TagAlertResolved
	default:
		return TagAlertInactive
	}
}

// AlertTransition is one edge of the alert state machine.
type AlertTransition struct {
	Rule  string     `json:"rule"`
	Label string     `json:"label,omitempty"` // instance within the rule ("" for unlabeled rules)
	From  AlertState `json:"from"`
	To    AlertState `json:"to"`
	Step  int64      `json:"step"`        // monitor clock at the transition
	Value int64      `json:"value_micro"` // sampled rule value, fixed-point micro-units
}

// ruleSample is one labeled observation a detector reports at an eval
// tick. Value is in fixed-point micro-units (1e6 = 1.0).
type ruleSample struct {
	Label  string
	Value  int64
	Breach bool
}

// detector is the per-rule streaming state. observe folds one event at
// the given monitor clock; sample reports every instance the detector
// has ever seen (so firing instances keep being evaluated and can
// resolve). Detectors are driven under the Monitor's lock and need no
// locking of their own.
type detector interface {
	observe(e pdm.Event, now int64)
	sample(now int64) []ruleSample
}

// Rule is one watchdog rule: a named detector plus the state-machine
// pacing. Rule values are templates — NewMonitor instantiates fresh
// detector state per monitor, so one Rule can configure many monitors.
type Rule struct {
	// Name identifies the rule in transitions, metrics, and traces.
	Name string
	// EvalEvery is the evaluation cadence in steps (<= 0 means 64).
	EvalEvery int64
	// ForSteps is how long a breach must hold before Pending escalates
	// to Firing; 0 escalates at the next eval tick.
	ForSteps int64
	// ClearSteps is how long the condition must stay clear before
	// Firing resolves; 0 resolves at the first clear tick.
	ClearSteps int64

	newDetector func() detector
}

func (r Rule) normalized() Rule {
	if r.EvalEvery <= 0 {
		r.EvalEvery = 64
	}
	return r
}

// ruleState is one rule's live state inside a Monitor.
type ruleState struct {
	rule        Rule
	det         detector
	nextEval    int64
	instances   map[string]*alertInstance
	transitions int64
	cycles      int64 // Firing → Resolved edges
	firing      int
	pending     int
}

// alertInstance is one labeled instance's state-machine position.
type alertInstance struct {
	state      AlertState
	since      int64 // clock at the Inactive → Pending edge
	clearSince int64 // clock when a firing breach last cleared; -1 while breaching
	value      int64
}

// NewMonitor wraps next (which may be nil for offline replay) in a
// watchdog evaluating the given rules. Install the result as the
// machine's hook — or upstream of a Tee feeding Collector, Ring, and a
// trace writer, so synthesized alert events reach every sink.
func NewMonitor(next pdm.Hook, rules ...Rule) *Monitor {
	m := &Monitor{next: next}
	for _, r := range rules {
		r = r.normalized()
		m.rules = append(m.rules, &ruleState{
			rule:      r,
			det:       r.newDetector(),
			instances: map[string]*alertInstance{},
		})
	}
	return m
}

// SetListener installs (or, with nil, removes) the transition callback.
func (m *Monitor) SetListener(l AlertListener) {
	m.mu.Lock()
	m.listener = l
	m.mu.Unlock()
}

// Event implements pdm.Hook. Non-span, non-annotation events advance
// the monitor clock by their Steps; every event except incoming alerts
// feeds the detectors; rules whose eval tick is due are evaluated; and
// the event — followed by any synthesized alert events — is forwarded
// downstream with the lock released.
func (m *Monitor) Event(e pdm.Event) {
	var fired []AlertTransition
	var listener AlertListener
	m.mu.Lock()
	if e.Kind != pdm.EventAlert {
		if !e.Kind.IsSpan() && !e.Kind.IsAnnotation() {
			m.now += int64(e.Steps)
		}
		now := m.now
		for _, rs := range m.rules {
			rs.det.observe(e, now)
		}
		for _, rs := range m.rules {
			if now >= rs.nextEval {
				m.evalLocked(rs, now, &fired)
				rs.nextEval = (now/rs.rule.EvalEvery + 1) * rs.rule.EvalEvery
			}
		}
	}
	listener = m.listener
	m.mu.Unlock()
	if m.next != nil {
		m.next.Event(e)
		for _, t := range fired {
			m.next.Event(alertEvent(t))
		}
	}
	if listener != nil && len(fired) > 0 {
		listener(fired)
	}
}

// evalLocked runs one rule's eval tick: every instance takes at most
// one state-machine edge. Samples are walked in sorted label order so
// the transition sequence is deterministic. Callers hold m.mu.
func (m *Monitor) evalLocked(rs *ruleState, now int64, fired *[]AlertTransition) {
	samples := rs.det.sample(now)
	sort.Slice(samples, func(i, j int) bool { return samples[i].Label < samples[j].Label })
	for _, s := range samples {
		inst := rs.instances[s.Label]
		if inst == nil {
			inst = &alertInstance{clearSince: -1}
			rs.instances[s.Label] = inst
		}
		inst.value = s.Value
		from := inst.state
		to := from
		switch from {
		case AlertInactive:
			if s.Breach {
				to = AlertPending
				inst.since = now
			}
		case AlertPending:
			if !s.Breach {
				to = AlertInactive
			} else if now-inst.since >= rs.rule.ForSteps {
				to = AlertFiring
				inst.clearSince = -1
			}
		case AlertFiring:
			if s.Breach {
				inst.clearSince = -1
			} else {
				if inst.clearSince < 0 {
					inst.clearSince = now
				}
				if now-inst.clearSince >= rs.rule.ClearSteps {
					to = AlertResolved
				}
			}
		case AlertResolved:
			// The acknowledgment edge: always step back to Inactive; a
			// still-breaching condition re-enters Pending next tick, so
			// the machine never skips a state.
			to = AlertInactive
		}
		if to == from {
			continue
		}
		switch from {
		case AlertFiring:
			rs.firing--
		case AlertPending:
			rs.pending--
		}
		switch to {
		case AlertFiring:
			rs.firing++
		case AlertPending:
			rs.pending++
		}
		inst.state = to
		rs.transitions++
		if from == AlertFiring && to == AlertResolved {
			rs.cycles++
		}
		t := AlertTransition{Rule: rs.rule.Name, Label: s.Label, From: from, To: to, Step: now, Value: s.Value}
		m.total++
		m.timeline = append(m.timeline, t)
		if len(m.timeline) > maxTimeline {
			m.timeline = m.timeline[len(m.timeline)-maxTimeline:]
		}
		*fired = append(*fired, t)
	}
}

// alertEvent shapes one transition as the annotation event emitted into
// the stream (and thus into v5 traces).
func alertEvent(t AlertTransition) pdm.Event {
	rule := t.Rule
	if t.Label != "" {
		rule += "[" + t.Label + "]"
	}
	return pdm.Event{
		Kind:  pdm.EventAlert,
		Tag:   alertTag(t.To),
		Rule:  rule,
		From:  t.From.String(),
		To:    t.To.String(),
		Value: t.Value,
		Step:  t.Step,
	}
}

// Now returns the monitor's step clock.
func (m *Monitor) Now() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.now
}

// Timeline returns a copy of the retained transition history, oldest
// first (the most recent maxTimeline transitions).
func (m *Monitor) Timeline() []AlertTransition {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]AlertTransition(nil), m.timeline...)
}

// Cycles returns the number of complete fire → resolve cycles per rule.
func (m *Monitor) Cycles() map[string]int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]int64, len(m.rules))
	for _, rs := range m.rules {
		out[rs.rule.Name] = rs.cycles
	}
	return out
}

// RenderTimeline writes the retained transitions one per line in a
// fixed format — the byte-comparable rendering behind pdmtrace -alerts
// and the online/offline equivalence test.
func (m *Monitor) RenderTimeline(w io.Writer) {
	for _, t := range m.Timeline() {
		label := t.Label
		if label == "" {
			label = "-"
		}
		fmt.Fprintf(w, "step=%d rule=%s label=%s %s->%s value=%d\n",
			t.Step, t.Rule, label, t.From, t.To, t.Value)
	}
}

// AlertInstance is one rule instance's row of an AlertsSnapshot.
type AlertInstance struct {
	Label      string     `json:"label,omitempty"`
	State      AlertState `json:"state"`
	ValueMicro int64      `json:"value_micro"`
	SinceStep  int64      `json:"since_step,omitempty"`
}

// AlertRuleSnapshot is one rule's row of an AlertsSnapshot.
type AlertRuleSnapshot struct {
	Rule        string          `json:"rule"`
	Firing      int             `json:"firing"`
	Pending     int             `json:"pending"`
	Transitions int64           `json:"transitions"`
	Cycles      int64           `json:"cycles"`
	Instances   []AlertInstance `json:"instances,omitempty"`
}

// AlertsSnapshot is the JSON shape served at /debug/alerts.
type AlertsSnapshot struct {
	Step        int64               `json:"step"`
	Transitions int64               `json:"transitions_total"`
	Rules       []AlertRuleSnapshot `json:"rules"`
	Timeline    []AlertTransition   `json:"timeline"`
}

// Snapshot returns the monitor's full state: per-rule instance tables
// (labels sorted) plus the retained timeline. Deterministic for a
// deterministic event stream.
func (m *Monitor) Snapshot() AlertsSnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	snap := AlertsSnapshot{
		Step:        m.now,
		Transitions: m.total,
		Timeline:    append([]AlertTransition(nil), m.timeline...),
	}
	for _, rs := range m.rules {
		r := AlertRuleSnapshot{
			Rule:        rs.rule.Name,
			Firing:      rs.firing,
			Pending:     rs.pending,
			Transitions: rs.transitions,
			Cycles:      rs.cycles,
		}
		labels := make([]string, 0, len(rs.instances))
		for l := range rs.instances {
			labels = append(labels, l)
		}
		sort.Strings(labels)
		for _, l := range labels {
			inst := rs.instances[l]
			row := AlertInstance{Label: l, State: inst.state, ValueMicro: inst.value}
			if inst.state == AlertPending || inst.state == AlertFiring {
				row.SinceStep = inst.since
			}
			r.Instances = append(r.Instances, row)
		}
		snap.Rules = append(snap.Rules, r)
	}
	return snap
}

// ---------------------------------------------------------------------
// Built-in detectors.

// BalanceConfig shapes the balance auditor — the paper's (1+ε) load
// bound as a runtime assertion over sliding step windows.
type BalanceConfig struct {
	// WindowSteps is the audit window width (<= 0 means 256).
	WindowSteps int64
	// MaxSkewMicro is the breach threshold on max/mean per-disk block
	// transfers, fixed-point micro-units (<= 0 means 1500000, i.e. a
	// (1+ε) bound with ε = 0.5).
	MaxSkewMicro int64
	// MinBlocks is the minimum transfers a window needs before its skew
	// is meaningful (<= 0 means 64).
	MinBlocks int64
}

func (c BalanceConfig) normalized() BalanceConfig {
	if c.WindowSteps <= 0 {
		c.WindowSteps = 256
	}
	if c.MaxSkewMicro <= 0 {
		c.MaxSkewMicro = 1_500_000
	}
	if c.MinBlocks <= 0 {
		c.MinBlocks = 64
	}
	return c
}

// BalanceRule builds the balance auditor: it tallies per-disk block
// transfers over consecutive windows of WindowSteps and breaches while
// the last full window's max/mean skew exceeded MaxSkewMicro.
func BalanceRule(cfg BalanceConfig) Rule {
	cfg = cfg.normalized()
	return Rule{
		Name:      "balance",
		EvalEvery: 64,
		newDetector: func() detector {
			return &balanceDetector{cfg: cfg}
		},
	}
}

type balanceDetector struct {
	cfg        BalanceConfig
	winStart   int64
	counts     []int64 // per-disk transfers in the open window; length = disks seen
	lastValue  int64
	lastBreach bool
}

// roll finalizes the open window once the clock has moved WindowSteps
// past its start: the window's skew becomes the detector's reported
// value, and the tallies reset.
func (d *balanceDetector) roll(now int64) {
	if now-d.winStart < d.cfg.WindowSteps {
		return
	}
	var total, max int64
	for _, c := range d.counts {
		total += c
		if c > max {
			max = c
		}
	}
	if total >= d.cfg.MinBlocks && len(d.counts) > 0 {
		d.lastValue = max * int64(len(d.counts)) * 1_000_000 / total
		d.lastBreach = d.lastValue > d.cfg.MaxSkewMicro
	} else {
		d.lastValue = 0
		d.lastBreach = false
	}
	for i := range d.counts {
		d.counts[i] = 0
	}
	d.winStart = now
}

func (d *balanceDetector) observe(e pdm.Event, now int64) {
	if e.Kind.IsSpan() || e.Kind.IsAnnotation() {
		return
	}
	d.roll(now)
	for _, a := range e.Addrs {
		for a.Disk >= len(d.counts) {
			d.counts = append(d.counts, 0)
		}
		d.counts[a.Disk]++
	}
}

func (d *balanceDetector) sample(now int64) []ruleSample {
	d.roll(now)
	return []ruleSample{{Value: d.lastValue, Breach: d.lastBreach}}
}

// BurnConfig shapes the SLO burn-rate rule: per-client (or per-tag)
// modeled-latency objectives with fast+slow dual windows.
type BurnConfig struct {
	// Target is the modeled-latency SLO per operation (<= 0 means
	// 200ms under the default cost model).
	Target time.Duration
	// ObjectiveMicro is the allowed bad-operation fraction, fixed-point
	// micro-units (<= 0 means 50000, i.e. 5%).
	ObjectiveMicro int64
	// Burn is the burn-rate multiplier: the rule breaches when the bad
	// fraction exceeds Burn × ObjectiveMicro in BOTH windows (<= 0
	// means 10 — with the defaults, >50% bad ops).
	Burn int64
	// FastSteps and SlowSteps are the dual window widths (<= 0 means
	// 512 and 2048).
	FastSteps int64
	SlowSteps int64
	// MinOps is the minimum completed operations each window needs
	// before the rate is meaningful (<= 0 means 8).
	MinOps int64
	// ByTag labels instances by the operation's root span tag instead
	// of by client.
	ByTag bool
	// Cost converts step/block counts to modeled latency; the zero
	// value means DefaultCostModel.
	Cost CostModel
}

func (c BurnConfig) normalized() BurnConfig {
	if c.Target <= 0 {
		c.Target = 200 * time.Millisecond
	}
	if c.ObjectiveMicro <= 0 {
		c.ObjectiveMicro = 50_000
	}
	if c.Burn <= 0 {
		c.Burn = 10
	}
	if c.FastSteps <= 0 {
		c.FastSteps = 512
	}
	if c.SlowSteps <= 0 {
		c.SlowSteps = 2048
	}
	if c.SlowSteps < c.FastSteps {
		c.SlowSteps = c.FastSteps
	}
	if c.MinOps <= 0 {
		c.MinOps = 8
	}
	return c
}

// BurnRateRule builds the SLO burn-rate detector: it watches root
// operation spans, computes each completed op's modeled latency from
// the cost model, and breaches while the fraction of ops over Target
// exceeds Burn × Objective in both the fast and the slow window.
func BurnRateRule(cfg BurnConfig) Rule {
	cfg = cfg.normalized()
	return Rule{
		Name:      "slo_burn",
		EvalEvery: 64,
		newDetector: func() detector {
			return &burnDetector{cfg: cfg, open: map[uint64]*burnOp{}, series: map[string][]burnFinish{}}
		},
	}
}

type burnOp struct {
	label     string
	beginStep int64
	blocks    int64
}

type burnFinish struct {
	step int64
	bad  bool
}

type burnDetector struct {
	cfg    BurnConfig
	open   map[uint64]*burnOp      // in-flight root ops by token ID
	series map[string][]burnFinish // completed ops per label, pruned to the slow window
}

func (d *burnDetector) observe(e pdm.Event, now int64) {
	switch e.Kind {
	case pdm.EventSpanBegin:
		if e.Parent != 0 || e.Op == 0 {
			return
		}
		label := "client=" + fmt.Sprint(e.Client)
		if d.cfg.ByTag {
			label = "tag=" + e.Tag
		}
		d.open[e.Op] = &burnOp{label: label, beginStep: e.Step}
	case pdm.EventSpanEnd:
		if e.Parent != 0 || e.Op == 0 {
			return
		}
		bo := d.open[e.Op]
		if bo == nil {
			return // end without begin (monitor attached mid-operation)
		}
		delete(d.open, e.Op)
		lat := d.cfg.Cost.Latency(e.Step-bo.beginStep, bo.blocks)
		d.series[bo.label] = append(d.series[bo.label], burnFinish{step: now, bad: lat > d.cfg.Target})
	default:
		if e.Kind.IsAnnotation() || strings.HasPrefix(e.Tag, pdm.FaultTagPrefix) {
			return // stall steps reach the op through the step counter
		}
		if bo := d.open[e.Op]; bo != nil {
			bo.blocks += int64(len(e.Addrs))
		}
		for _, id := range e.Ops {
			if bo := d.open[id]; bo != nil {
				bo.blocks += int64(len(e.Addrs))
			}
		}
	}
}

func (d *burnDetector) sample(now int64) []ruleSample {
	labels := make([]string, 0, len(d.series))
	for l := range d.series {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	out := make([]ruleSample, 0, len(labels))
	for _, l := range labels {
		fin := d.series[l]
		lo := 0
		for lo < len(fin) && fin[lo].step <= now-d.cfg.SlowSteps {
			lo++
		}
		if lo > 0 {
			fin = append(fin[:0], fin[lo:]...)
		}
		d.series[l] = fin
		var slowBad, slowTot, fastBad, fastTot int64
		for _, f := range fin {
			slowTot++
			if f.bad {
				slowBad++
			}
			if f.step > now-d.cfg.FastSteps {
				fastTot++
				if f.bad {
					fastBad++
				}
			}
		}
		var fastFrac, slowFrac int64
		if fastTot > 0 {
			fastFrac = fastBad * 1_000_000 / fastTot
		}
		if slowTot > 0 {
			slowFrac = slowBad * 1_000_000 / slowTot
		}
		threshold := d.cfg.Burn * d.cfg.ObjectiveMicro
		out = append(out, ruleSample{
			Label:  l,
			Value:  fastFrac,
			Breach: fastTot >= d.cfg.MinOps && slowTot >= d.cfg.MinOps && fastFrac > threshold && slowFrac > threshold,
		})
	}
	return out
}

// FlapConfig shapes health-flap detection: N health-state transitions
// on one disk within a step window.
type FlapConfig struct {
	// Flips is the transition count that breaches (<= 0 means 6).
	Flips int
	// WindowSteps is the flap window (<= 0 means 1024).
	WindowSteps int64
}

func (c FlapConfig) normalized() FlapConfig {
	if c.Flips <= 0 {
		c.Flips = 6
	}
	if c.WindowSteps <= 0 {
		c.WindowSteps = 1024
	}
	return c
}

// HealthFlapRule builds the flap detector over pdm.EventHealth
// annotations: a disk that changes health state Flips times within
// WindowSteps is flapping (e.g. failing, half-repairing, re-failing).
func HealthFlapRule(cfg FlapConfig) Rule {
	cfg = cfg.normalized()
	return Rule{
		Name:      "health_flap",
		EvalEvery: 64,
		newDetector: func() detector {
			return &flapDetector{cfg: cfg, disks: map[int][]int64{}}
		},
	}
}

type flapDetector struct {
	cfg   FlapConfig
	disks map[int][]int64 // disk → transition steps, pruned to the window
}

func (d *flapDetector) observe(e pdm.Event, now int64) {
	if e.Kind != pdm.EventHealth || len(e.Addrs) == 0 {
		return
	}
	d.disks[e.Addrs[0].Disk] = append(d.disks[e.Addrs[0].Disk], now)
}

func (d *flapDetector) sample(now int64) []ruleSample {
	disks := make([]int, 0, len(d.disks))
	for disk := range d.disks {
		disks = append(disks, disk)
	}
	sort.Ints(disks)
	out := make([]ruleSample, 0, len(disks))
	for _, disk := range disks {
		w := d.disks[disk]
		lo := 0
		for lo < len(w) && w[lo] <= now-d.cfg.WindowSteps {
			lo++
		}
		if lo > 0 {
			w = append(w[:0], w[lo:]...)
		}
		d.disks[disk] = w
		out = append(out, ruleSample{
			Label:  fmt.Sprintf("disk=%d", disk),
			Value:  int64(len(w)) * 1_000_000,
			Breach: len(w) >= d.cfg.Flips,
		})
	}
	return out
}

// DegradedConfig shapes the degraded-capacity rule.
type DegradedConfig struct {
	// MinDown is how many disks must be Failed or Repairing at once to
	// breach (<= 0 means 1).
	MinDown int
}

func (c DegradedConfig) normalized() DegradedConfig {
	if c.MinDown <= 0 {
		c.MinDown = 1
	}
	return c
}

// DegradedCapacityRule builds the degraded-capacity detector: it
// mirrors each disk's current health state from the EventHealth stream
// and breaches while at least MinDown disks are Failed or Repairing.
// Wire an AlertListener calling heal.Supervisor.Wake to have the firing
// edge nudge self-healing.
func DegradedCapacityRule(cfg DegradedConfig) Rule {
	cfg = cfg.normalized()
	return Rule{
		Name:      "degraded_capacity",
		EvalEvery: 16,
		newDetector: func() detector {
			return &degradedDetector{cfg: cfg, states: map[int]string{}}
		},
	}
}

type degradedDetector struct {
	cfg    DegradedConfig
	states map[int]string // disk → current health-state name
}

func (d *degradedDetector) observe(e pdm.Event, now int64) {
	if e.Kind != pdm.EventHealth || len(e.Addrs) == 0 {
		return
	}
	d.states[e.Addrs[0].Disk] = e.To
}

func (d *degradedDetector) sample(now int64) []ruleSample {
	down := 0
	for _, s := range d.states {
		if s == "failed" || s == "repairing" {
			down++
		}
	}
	return []ruleSample{{
		Value:  int64(down) * 1_000_000,
		Breach: down >= d.cfg.MinDown,
	}}
}

// DefaultRules returns the four built-in detectors with their default
// thresholds (see DESIGN.md §14 for the rule table).
func DefaultRules() []Rule {
	return []Rule{
		BalanceRule(BalanceConfig{}),
		BurnRateRule(BurnConfig{}),
		HealthFlapRule(FlapConfig{}),
		DegradedCapacityRule(DegradedConfig{}),
	}
}

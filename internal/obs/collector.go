package obs

import (
	"expvar"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"pdmdict/internal/pdm"
)

// TagStats accumulates I/O attributed to one span tag.
type TagStats struct {
	Batches int64 `json:"batches"`
	Steps   int64 `json:"steps"`  // parallel I/O steps
	Blocks  int64 `json:"blocks"` // block transfers
}

// Window is a per-disk transfer tally over a fixed span of parallel
// I/O steps, for watching skew evolve over time.
type Window struct {
	StartStep int64   `json:"start_step"` // cumulative step count at window open
	EndStep   int64   `json:"end_step"`
	PerDisk   []int64 `json:"per_disk"`
}

// OpAgg aggregates the completed operations (root spans) of one tag:
// counts, parallel-I/O-step and modeled-latency histograms, and exact
// sums for the /metrics histograms' _sum series.
type OpAgg struct {
	Count           int64 `json:"count"`
	StepSum         int64 `json:"step_sum"`
	BlockSum        int64 `json:"block_sum"`
	FaultSum        int64 `json:"fault_sum"`
	LatencySumNanos int64 `json:"latency_sum_ns"`
	WallSumNanos    int64 `json:"wall_sum_ns"`
	Steps           *Hist `json:"-"` // steps per operation
	LatencyMicros   *Hist `json:"-"` // modeled latency per operation, µs
}

// Collector aggregates hook events into metrics: global counters, a
// depth histogram, per-tag totals, per-disk transfer tallies both
// lifetime and over recent step windows, and — by folding the span
// events — per-operation records aggregated into per-tag step/latency
// histograms. It implements pdm.Hook and is safe for concurrent use.
type Collector struct {
	// WindowSteps is how many parallel I/O steps one skew window spans;
	// MaxWindows bounds how many closed windows are retained. Both must
	// be set before the first event (NewCollector picks defaults).
	WindowSteps int64
	MaxWindows  int

	// Cost converts per-operation step/block counts into the modeled
	// latency behind Ops and the /metrics latency histograms. The zero
	// value means DefaultCostModel. Set before the first event.
	Cost CostModel

	Depth Hist // batch depth (= parallel I/O steps per batch)

	mu       sync.Mutex
	events   int64
	reads    int64 // read batches
	writes   int64 // write batches
	steps    int64 // cumulative parallel I/O steps
	blocks   int64 // cumulative block transfers
	depthSum int64 // sum of per-batch depths (for the /metrics histogram's _sum)
	tags     map[string]*TagStats
	perDisk  []int64 // lifetime, grown on demand
	cur      Window  // open window
	windows  []Window
	folder   SpanFolder        // reconstructs operations from span events
	ops      map[string]*OpAgg // per-tag aggregates over root spans
}

// NewCollector returns a collector with default windowing (1024 steps
// per window, 64 windows retained).
func NewCollector() *Collector {
	return &Collector{
		WindowSteps: 1024,
		MaxWindows:  64,
		tags:        map[string]*TagStats{},
	}
}

// Event implements pdm.Hook.
func (c *Collector) Event(e pdm.Event) {
	if e.Kind.IsAnnotation() {
		return // health/alert transitions carry no I/O to aggregate
	}
	if e.Kind.IsSpan() {
		c.mu.Lock()
		c.foldLocked(e)
		c.mu.Unlock()
		return
	}
	c.Depth.Observe(int64(e.Depth))
	c.mu.Lock()
	c.foldLocked(e) // attribute the batch to its open span, if any
	c.events++
	if e.Kind == pdm.EventWrite {
		c.writes++
	} else {
		c.reads++
	}
	c.steps += int64(e.Steps)
	c.blocks += int64(len(e.Addrs))
	c.depthSum += int64(e.Depth)

	tag := e.Tag
	if tag == "" {
		tag = "(untagged)"
	}
	if c.tags == nil {
		c.tags = map[string]*TagStats{}
	}
	ts := c.tags[tag]
	if ts == nil {
		ts = &TagStats{}
		c.tags[tag] = ts
	}
	ts.Batches++
	ts.Steps += int64(e.Steps)
	ts.Blocks += int64(len(e.Addrs))

	for _, a := range e.Addrs {
		for a.Disk >= len(c.perDisk) {
			c.perDisk = append(c.perDisk, 0)
			c.cur.PerDisk = append(c.cur.PerDisk, 0)
		}
		c.perDisk[a.Disk]++
		c.cur.PerDisk[a.Disk]++
	}
	if c.steps-c.cur.StartStep >= c.WindowSteps {
		c.cur.EndStep = c.steps
		c.windows = append(c.windows, c.cur)
		if len(c.windows) > c.MaxWindows {
			c.windows = c.windows[len(c.windows)-c.MaxWindows:]
		}
		c.cur = Window{StartStep: c.steps, PerDisk: make([]int64, len(c.perDisk))}
	}
	c.mu.Unlock()
}

// foldLocked feeds one event to the span folder and, when a root span
// (one dictionary operation) completes, rolls it into the per-tag
// operation aggregates. Callers hold c.mu.
func (c *Collector) foldLocked(e pdm.Event) {
	c.folder.Cost = c.Cost
	rec := c.folder.Fold(e)
	if rec == nil || rec.Parent != 0 {
		return // nothing closed, or a nested phase rather than an operation
	}
	if c.ops == nil {
		c.ops = map[string]*OpAgg{}
	}
	agg := c.ops[rec.Tag]
	if agg == nil {
		agg = &OpAgg{Steps: &Hist{}, LatencyMicros: &Hist{}}
		c.ops[rec.Tag] = agg
	}
	agg.Count++
	agg.StepSum += rec.Steps
	agg.BlockSum += rec.Blocks
	agg.FaultSum += rec.Faults
	agg.LatencySumNanos += int64(rec.Latency)
	agg.WallSumNanos += rec.WallNanos
	agg.Steps.Observe(rec.Steps)
	agg.LatencyMicros.Observe(rec.Latency.Microseconds())
}

// Ops returns the per-tag operation aggregates (root spans only). The
// returned map is fresh but shares the histogram pointers, which are
// safe for concurrent use.
func (c *Collector) Ops() map[string]*OpAgg {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]*OpAgg, len(c.ops))
	for k, v := range c.ops {
		cp := *v
		out[k] = &cp
	}
	return out
}

// OpenSpans returns how many spans are currently open — a liveness
// diagnostic (a steadily growing value means unbalanced Span calls).
func (c *Collector) OpenSpans() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.folder.Open()
}

// DepthSum returns the sum of every observed batch depth — the exact
// _sum companion to the Depth histogram.
func (c *Collector) DepthSum() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.depthSum
}

// Tags returns a copy of the per-tag totals.
func (c *Collector) Tags() map[string]TagStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]TagStats, len(c.tags))
	for k, v := range c.tags {
		out[k] = *v
	}
	return out
}

// PerDisk returns the lifetime block-transfer tally per disk.
func (c *Collector) PerDisk() []int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]int64(nil), c.perDisk...)
}

// Windows returns the retained closed skew windows, oldest first.
func (c *Collector) Windows() []Window {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Window, len(c.windows))
	for i, w := range c.windows {
		w.PerDisk = append([]int64(nil), w.PerDisk...)
		out[i] = w
	}
	return out
}

// Totals returns (batches, reads, writes, steps, blocks).
func (c *Collector) Totals() (events, reads, writes, steps, blocks int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.events, c.reads, c.writes, c.steps, c.blocks
}

// RenderTags writes an aligned per-tag I/O breakdown, heaviest first.
func (c *Collector) RenderTags(sb *strings.Builder) {
	tags := c.Tags()
	names := make([]string, 0, len(tags))
	for name := range tags {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool {
		a, b := tags[names[i]], tags[names[j]]
		if a.Steps != b.Steps {
			return a.Steps > b.Steps
		}
		return names[i] < names[j]
	})
	_, _, _, steps, _ := c.Totals()
	fmt.Fprintf(sb, "%-24s %10s %10s %10s %7s\n", "tag", "batches", "pIOs", "blocks", "share")
	for _, name := range names {
		t := tags[name]
		share := 0.0
		if steps > 0 {
			share = 100 * float64(t.Steps) / float64(steps)
		}
		fmt.Fprintf(sb, "%-24s %10d %10d %10d %6.1f%%\n",
			name, t.Batches, t.Steps, t.Blocks, share)
	}
}

// RenderOps writes an aligned per-operation summary: for each tag with
// completed root spans, the operation count, average and p99 parallel
// I/O steps, and average modeled latency.
func (c *Collector) RenderOps(sb *strings.Builder) {
	ops := c.Ops()
	names := make([]string, 0, len(ops))
	for name := range ops {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Fprintf(sb, "%-24s %10s %10s %8s %12s\n", "op", "count", "avg pIOs", "p99", "avg latency")
	for _, name := range names {
		a := ops[name]
		if a.Count == 0 {
			continue
		}
		fmt.Fprintf(sb, "%-24s %10d %10.3f %8d %12s\n",
			name, a.Count,
			float64(a.StepSum)/float64(a.Count),
			a.Steps.Quantile(0.99),
			(time.Duration(a.LatencySumNanos) / time.Duration(a.Count)).Round(time.Microsecond))
	}
}

// RenderPerDisk writes the lifetime per-disk transfer tallies with a
// skew figure (max/mean; 1.00 = perfectly balanced).
func (c *Collector) RenderPerDisk(sb *strings.Builder) {
	perDisk := c.PerDisk()
	var total, max int64
	for _, v := range perDisk {
		total += v
		if v > max {
			max = v
		}
	}
	fmt.Fprintf(sb, "%-6s %12s %7s\n", "disk", "blocks", "share")
	for d, v := range perDisk {
		share := 0.0
		if total > 0 {
			share = 100 * float64(v) / float64(total)
		}
		fmt.Fprintf(sb, "%-6d %12d %6.1f%%\n", d, v, share)
	}
	if total > 0 && len(perDisk) > 0 {
		mean := float64(total) / float64(len(perDisk))
		fmt.Fprintf(sb, "skew (max/mean): %.2f\n", float64(max)/mean)
	}
}

// String renders the full collector state as text.
func (c *Collector) String() string {
	var sb strings.Builder
	events, reads, writes, steps, blocks := c.Totals()
	fmt.Fprintf(&sb, "batches=%d (reads=%d writes=%d) pIOs=%d blocks=%d\n",
		events, reads, writes, steps, blocks)
	c.RenderTags(&sb)
	c.RenderPerDisk(&sb)
	return sb.String()
}

// expvarState is the JSON shape exported by Publish.
type expvarState struct {
	Batches int64               `json:"batches"`
	Reads   int64               `json:"reads"`
	Writes  int64               `json:"writes"`
	Steps   int64               `json:"parallel_ios"`
	Blocks  int64               `json:"blocks"`
	Depth   Summary             `json:"depth"`
	Tags    map[string]TagStats `json:"tags"`
	PerDisk []int64             `json:"per_disk"`
}

// Publish registers the collector with expvar under the given name.
// expvar panics on duplicate names, so publish each name once per
// process.
func (c *Collector) Publish(name string) {
	expvar.Publish(name, expvar.Func(func() any {
		events, reads, writes, steps, blocks := c.Totals()
		return expvarState{
			Batches: events,
			Reads:   reads,
			Writes:  writes,
			Steps:   steps,
			Blocks:  blocks,
			Depth:   c.Depth.Summarize("batch_depth"),
			Tags:    c.Tags(),
			PerDisk: c.PerDisk(),
		}
	}))
}

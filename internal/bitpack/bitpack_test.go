package bitpack

import (
	"testing"
	"testing/quick"
)

func TestWriteReadFixedWidth(t *testing.T) {
	w := NewWriter()
	w.WriteBits(0b101, 3)
	w.WriteBits(0xFF, 8)
	w.WriteBits(0, 5)
	w.WriteBits(1, 1)
	r := NewReader(w.Words(), w.Len())
	if got := r.ReadBits(3); got != 0b101 {
		t.Errorf("ReadBits(3) = %b", got)
	}
	if got := r.ReadBits(8); got != 0xFF {
		t.Errorf("ReadBits(8) = %x", got)
	}
	if got := r.ReadBits(5); got != 0 {
		t.Errorf("ReadBits(5) = %d", got)
	}
	if got := r.ReadBits(1); got != 1 {
		t.Errorf("ReadBits(1) = %d", got)
	}
	if r.Remaining() != 0 {
		t.Errorf("Remaining = %d, want 0", r.Remaining())
	}
}

func TestWriteBitsMasksHighBits(t *testing.T) {
	w := NewWriter()
	w.WriteBits(^uint64(0), 4) // only the low 4 bits should land
	w.WriteBits(0, 4)
	r := NewReader(w.Words(), w.Len())
	if got := r.ReadBits(8); got != 0x0F {
		t.Errorf("masking failed: got %#x, want 0x0f", got)
	}
}

func TestCrossWordBoundary(t *testing.T) {
	w := NewWriter()
	w.WriteBits(0, 60)
	w.WriteBits(0b1011, 4) // straddles nothing
	w.WriteBits(0x3FF, 10) // now straddles the 64-bit boundary
	r := NewReader(w.Words(), w.Len())
	r.ReadBits(60)
	if got := r.ReadBits(4); got != 0b1011 {
		t.Errorf("pre-boundary = %b", got)
	}
	if got := r.ReadBits(10); got != 0x3FF {
		t.Errorf("straddling read = %#x, want 0x3ff", got)
	}
}

func TestFullWordWrites(t *testing.T) {
	w := NewWriter()
	w.WriteBits(0xdeadbeefcafef00d, 64)
	w.WriteBits(0x123456789abcdef0, 64)
	r := NewReader(w.Words(), w.Len())
	if got := r.ReadBits(64); got != 0xdeadbeefcafef00d {
		t.Errorf("word 0 = %#x", got)
	}
	if got := r.ReadBits(64); got != 0x123456789abcdef0 {
		t.Errorf("word 1 = %#x", got)
	}
}

func TestUnaryRoundTrip(t *testing.T) {
	w := NewWriter()
	values := []int{0, 1, 2, 7, 63, 100}
	for _, v := range values {
		w.WriteUnary(v)
	}
	r := NewReader(w.Words(), w.Len())
	for _, v := range values {
		if got := r.ReadUnary(); got != v {
			t.Errorf("ReadUnary = %d, want %d", got, v)
		}
	}
}

func TestUnaryCostMatchesPaper(t *testing.T) {
	// Theorem 6(a): pointer diffs over stripes 1..d sum to < d, and each
	// field adds one separating 0-bit, so pointer data is < 2d bits.
	d := 16
	diffs := []int{3, 1, 5, 2, 4} // a plausible chain over 16 stripes, sum 15 < d
	w := NewWriter()
	for _, df := range diffs {
		w.WriteUnary(df)
	}
	if w.Len() >= 2*d {
		t.Errorf("pointer data uses %d bits, want < 2d = %d", w.Len(), 2*d)
	}
}

func TestZeroWidthOps(t *testing.T) {
	w := NewWriter()
	w.WriteBits(123, 0) // no-op
	if w.Len() != 0 {
		t.Errorf("zero-width write advanced to %d bits", w.Len())
	}
	w.WriteBits(1, 1)
	r := NewReader(w.Words(), w.Len())
	if got := r.ReadBits(0); got != 0 {
		t.Errorf("zero-width read = %d", got)
	}
	if r.Pos() != 0 {
		t.Errorf("zero-width read advanced to %d", r.Pos())
	}
}

func TestPanics(t *testing.T) {
	cases := []struct {
		name string
		f    func()
	}{
		{"width>64 write", func() { NewWriter().WriteBits(0, 65) }},
		{"negative width write", func() { NewWriter().WriteBits(0, -1) }},
		{"negative unary", func() { NewWriter().WriteUnary(-1) }},
		{"read past end", func() { NewReader(nil, 0).ReadBits(1) }},
		{"bad limit", func() { NewReader(nil, 1) }},
		{"width>64 read", func() { NewReader(make([]uint64, 2), 128).ReadBits(65) }},
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", c.name)
				}
			}()
			c.f()
		}()
	}
}

// Property: any sequence of (value, width) writes reads back identically.
func TestPropertyFixedWidthRoundTrip(t *testing.T) {
	f := func(vals []uint64, widths []uint8) bool {
		n := len(vals)
		if len(widths) < n {
			n = len(widths)
		}
		w := NewWriter()
		want := make([]uint64, n)
		ws := make([]int, n)
		for i := 0; i < n; i++ {
			width := int(widths[i] % 65)
			ws[i] = width
			if width < 64 {
				want[i] = vals[i] & ((1 << width) - 1)
			} else {
				want[i] = vals[i]
			}
			w.WriteBits(vals[i], width)
		}
		r := NewReader(w.Words(), w.Len())
		for i := 0; i < n; i++ {
			if r.ReadBits(ws[i]) != want[i] {
				return false
			}
		}
		return r.Remaining() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: interleaved unary and fixed-width data round-trips; unary(n)
// occupies exactly n+1 bits.
func TestPropertyUnaryInterleaved(t *testing.T) {
	f := func(pairs []uint16) bool {
		w := NewWriter()
		type op struct {
			unary int
			fixed uint64
		}
		var ops []op
		for _, p := range pairs {
			o := op{unary: int(p % 40), fixed: uint64(p)}
			ops = append(ops, o)
			before := w.Len()
			w.WriteUnary(o.unary)
			if w.Len()-before != o.unary+1 {
				return false
			}
			w.WriteBits(o.fixed, 16)
		}
		r := NewReader(w.Words(), w.Len())
		for _, o := range ops {
			if r.ReadUnary() != o.unary {
				return false
			}
			if r.ReadBits(16) != o.fixed&0xFFFF {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

package bitpack

import "testing"

// FuzzReaderNeverOverruns feeds arbitrary word streams and read
// schedules to the bit reader: out-of-budget reads must panic in the
// controlled way (recovered here) and in-budget reads must never touch
// memory outside the stream.
func FuzzReaderNeverOverruns(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, []byte{3, 8, 5})
	f.Add([]byte{}, []byte{1})
	f.Fuzz(func(t *testing.T, words []byte, widths []byte) {
		// Assemble a word stream from the byte soup.
		var ws []uint64
		for i := 0; i+8 <= len(words); i += 8 {
			var w uint64
			for j := 0; j < 8; j++ {
				w |= uint64(words[i+j]) << (8 * j)
			}
			ws = append(ws, w)
		}
		limit := 64 * len(ws)
		r := NewReader(ws, limit)
		for _, raw := range widths {
			width := int(raw % 65)
			if width > r.Remaining() {
				func() {
					defer func() { recover() }()
					r.ReadBits(width)
					t.Fatal("overrun read did not panic")
				}()
				return
			}
			r.ReadBits(width)
		}
	})
}

// FuzzUnaryRoundTrip checks that any sequence of small unary values
// written then read returns the same values.
func FuzzUnaryRoundTrip(f *testing.F) {
	f.Add([]byte{0, 1, 5, 30})
	f.Fuzz(func(t *testing.T, vals []byte) {
		w := NewWriter()
		for _, v := range vals {
			w.WriteUnary(int(v))
		}
		r := NewReader(w.Words(), w.Len())
		for i, v := range vals {
			if got := r.ReadUnary(); got != int(v) {
				t.Fatalf("value %d: got %d, want %d", i, got, v)
			}
		}
	})
}

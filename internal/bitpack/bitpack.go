// Package bitpack provides bit-granular encoding over word arrays.
//
// Theorem 6(a) of the paper packs, into each array field, a run of
// unary-coded relative pointers terminated by a 0-bit, followed by record
// data ("The differences are stored in unary format, and a 0-bit
// separates this pointer data from the record data. The tail field just
// starts with a 0-bit."). This package supplies exactly the codecs that
// layout needs: fixed-width writes and the unary code
//
//	unary(n) = n 1-bits followed by one 0-bit,
//
// so a field whose pointer prefix encodes the stripe-index difference
// j−i spends j−i+1 bits on it, and the total pointer data per stored
// element is below 2d bits, as the paper claims.
package bitpack

import "fmt"

// Writer appends bit runs to a growing word array. Bits fill each word
// from the least significant position upward.
type Writer struct {
	words []uint64
	n     int // bits written
}

// NewWriter returns an empty writer.
func NewWriter() *Writer { return &Writer{} }

// Len returns the number of bits written so far.
func (w *Writer) Len() int { return w.n }

// Words returns the backing words; the final partial word is
// zero-padded. The slice is live until the next write.
func (w *Writer) Words() []uint64 { return w.words }

// WriteBits appends the low width bits of v, least significant first.
// width must be in [0, 64].
func (w *Writer) WriteBits(v uint64, width int) {
	if width < 0 || width > 64 {
		panic(fmt.Sprintf("bitpack: width %d outside [0,64]", width))
	}
	if width < 64 {
		v &= (1 << width) - 1
	}
	for width > 0 {
		if w.n%64 == 0 {
			w.words = append(w.words, 0)
		}
		word, off := w.n/64, w.n%64
		take := 64 - off
		if take > width {
			take = width
		}
		w.words[word] |= (v & ((1 << take) - 1)) << off
		v >>= take
		w.n += take
		width -= take
	}
}

// WriteUnary appends unary(v): v 1-bits then a terminating 0-bit.
func (w *Writer) WriteUnary(v int) {
	if v < 0 {
		panic("bitpack: negative unary value")
	}
	for i := 0; i < v; i++ {
		w.WriteBits(1, 1)
	}
	w.WriteBits(0, 1)
}

// Reader consumes bit runs from a word array.
type Reader struct {
	words []uint64
	pos   int
	limit int
}

// NewReader reads from words; the stream is limit bits long (pass
// 64*len(words) to read everything).
func NewReader(words []uint64, limit int) *Reader {
	if limit < 0 || limit > 64*len(words) {
		panic(fmt.Sprintf("bitpack: limit %d outside stream of %d bits", limit, 64*len(words)))
	}
	return &Reader{words: words, limit: limit}
}

// Remaining returns how many bits are left.
func (r *Reader) Remaining() int { return r.limit - r.pos }

// Pos returns the current bit offset.
func (r *Reader) Pos() int { return r.pos }

// ReadBits consumes width bits and returns them, least significant
// first. It panics on underflow: callers track their own framing.
func (r *Reader) ReadBits(width int) uint64 {
	if width < 0 || width > 64 {
		panic(fmt.Sprintf("bitpack: width %d outside [0,64]", width))
	}
	if width > r.Remaining() {
		panic("bitpack: read past end of stream")
	}
	var v uint64
	got := 0
	for got < width {
		word, off := r.pos/64, r.pos%64
		take := 64 - off
		if take > width-got {
			take = width - got
		}
		chunk := (r.words[word] >> off) & ((1 << take) - 1)
		v |= chunk << got
		got += take
		r.pos += take
	}
	return v
}

// ReadUnary consumes one unary code and returns its value.
func (r *Reader) ReadUnary() int {
	n := 0
	for {
		if r.ReadBits(1) == 0 {
			return n
		}
		n++
	}
}

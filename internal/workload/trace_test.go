package workload

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestTraceRoundTrip(t *testing.T) {
	ops := []Op{
		{Kind: OpInsert, Key: 1},
		{Kind: OpLookup, Key: 0xDEADBEEF},
		{Kind: OpDelete, Key: 1},
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, ops); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ops) {
		t.Fatalf("got %d ops", len(got))
	}
	for i := range ops {
		if got[i] != ops[i] {
			t.Errorf("op %d = %+v, want %+v", i, got[i], ops[i])
		}
	}
}

func TestTraceCommentsAndBlanks(t *testing.T) {
	in := `
# a comment
insert 5

lookup 0x10
# another
delete 5
`
	ops, err := ReadTrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 3 {
		t.Fatalf("got %d ops", len(ops))
	}
	if ops[1].Kind != OpLookup || ops[1].Key != 16 {
		t.Errorf("hex key parsed as %+v", ops[1])
	}
}

func TestTraceErrors(t *testing.T) {
	for _, bad := range []string{
		"frobnicate 5",
		"insert",
		"insert five",
		"insert 5 extra",
	} {
		if _, err := ReadTrace(strings.NewReader(bad)); err == nil {
			t.Errorf("%q parsed without error", bad)
		}
	}
}

// Property: any generated op stream round-trips through the text
// format.
func TestPropertyTraceRoundTrip(t *testing.T) {
	f := func(seed int16, n uint8) bool {
		keys := Uniform(20, 1<<30, int64(seed))
		ops := Ops(keys, int(n)+1, Mix{Lookup: 3, Insert: 3, Delete: 2}, 0.1, int64(seed)+1)
		var buf bytes.Buffer
		if err := WriteTrace(&buf, ops); err != nil {
			return false
		}
		got, err := ReadTrace(&buf)
		if err != nil || len(got) != len(ops) {
			return false
		}
		for i := range ops {
			if got[i] != ops[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

package workload

import (
	"bytes"
	"testing"
)

// FuzzReadTrace exercises the trace parser with arbitrary input: it
// must never panic, and anything it accepts must round-trip through
// WriteTrace and parse back identically.
func FuzzReadTrace(f *testing.F) {
	f.Add("insert 5\nlookup 6\ndelete 5\n")
	f.Add("# comment\n\nlookup 0xff\n")
	f.Add("insert")
	f.Add("frobnicate 9")
	f.Add("insert 99999999999999999999999")
	f.Fuzz(func(t *testing.T, input string) {
		ops, err := ReadTrace(bytes.NewReader([]byte(input)))
		if err != nil {
			return // rejected is fine; panicking is not
		}
		var buf bytes.Buffer
		if err := WriteTrace(&buf, ops); err != nil {
			t.Fatalf("accepted ops failed to serialize: %v", err)
		}
		again, err := ReadTrace(&buf)
		if err != nil {
			t.Fatalf("canonical form failed to parse: %v", err)
		}
		if len(again) != len(ops) {
			t.Fatalf("round trip changed length: %d vs %d", len(again), len(ops))
		}
		for i := range ops {
			if again[i] != ops[i] {
				t.Fatalf("round trip changed op %d: %+v vs %+v", i, again[i], ops[i])
			}
		}
	})
}

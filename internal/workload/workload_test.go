package workload

import (
	"testing"
	"testing/quick"

	"pdmdict/internal/pdm"
)

func TestUniformDistinctAndDeterministic(t *testing.T) {
	a := Uniform(500, 1<<40, 1)
	b := Uniform(500, 1<<40, 1)
	c := Uniform(500, 1<<40, 2)
	seen := map[pdm.Word]bool{}
	diff := false
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed, different keys")
		}
		if a[i] != c[i] {
			diff = true
		}
		if seen[a[i]] {
			t.Fatalf("duplicate key %d", a[i])
		}
		if a[i] >= 1<<40 {
			t.Fatalf("key %d outside universe", a[i])
		}
		seen[a[i]] = true
	}
	if !diff {
		t.Error("different seeds produced identical keys")
	}
}

func TestSequential(t *testing.T) {
	keys := Sequential(5, 100)
	for i, k := range keys {
		if k != pdm.Word(100+i) {
			t.Errorf("key %d = %d", i, k)
		}
	}
}

func TestZipfAccessesSkewed(t *testing.T) {
	keys := Uniform(1000, 1<<40, 3)
	accesses := ZipfAccesses(keys, 20000, 1.2, 4)
	if len(accesses) != 20000 {
		t.Fatalf("got %d accesses", len(accesses))
	}
	counts := map[pdm.Word]int{}
	for _, a := range accesses {
		counts[a]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	// Zipf with s=1.2 over 1000 keys: the head key must dominate far
	// beyond the uniform share of 20.
	if max < 100 {
		t.Errorf("hottest key accessed %d times; distribution not skewed", max)
	}
}

func TestFileSystemKeys(t *testing.T) {
	keys := FileSystemKeys(3, 4)
	if len(keys) != 12 {
		t.Fatalf("got %d keys", len(keys))
	}
	if keys[0] != 0 || keys[4] != 1<<32 || keys[11] != 2<<32|3 {
		t.Errorf("encoding wrong: %v", keys[:5])
	}
	seen := map[pdm.Word]bool{}
	for _, k := range keys {
		if seen[k] {
			t.Fatalf("duplicate key %d", k)
		}
		seen[k] = true
	}
}

func TestOpsRespectInvariants(t *testing.T) {
	keys := Uniform(200, 1<<40, 5)
	ops := Ops(keys, 1000, ReadMostly, 0.1, 6)
	if len(ops) != 1000 {
		t.Fatalf("got %d ops", len(ops))
	}
	inserted := map[pdm.Word]bool{}
	for i, op := range ops {
		switch op.Kind {
		case OpInsert:
			inserted[op.Key] = true
		case OpDelete:
			if !inserted[op.Key] {
				t.Fatalf("op %d deletes never-inserted key %d", i, op.Key)
			}
			delete(inserted, op.Key)
		case OpLookup:
			// Lookups may miss (missRate); hits must target live keys.
			if op.Key&(1<<62) == 0 && !inserted[op.Key] {
				t.Fatalf("op %d looks up dead key %d", i, op.Key)
			}
		}
	}
	// ReadMostly must actually be read-mostly.
	counts := map[OpKind]int{}
	for _, op := range ops {
		counts[op.Kind]++
	}
	if counts[OpLookup] < counts[OpInsert] {
		t.Errorf("ReadMostly produced %d lookups vs %d inserts", counts[OpLookup], counts[OpInsert])
	}
}

func TestOpsPanicsOnEmptyMix(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty mix did not panic")
		}
	}()
	Ops(Sequential(4, 0), 10, Mix{}, 0, 1)
}

func TestCollidingKeys(t *testing.T) {
	bucketOf := func(x pdm.Word) int { return int(x % 97) }
	keys := CollidingKeys(bucketOf, 5, 50, 1<<30, 7)
	if len(keys) != 50 {
		t.Fatalf("got %d keys", len(keys))
	}
	seen := map[pdm.Word]bool{}
	for _, k := range keys {
		if bucketOf(k) != bucketOf(5) {
			t.Fatalf("key %d does not collide", k)
		}
		if seen[k] {
			t.Fatalf("duplicate key %d", k)
		}
		seen[k] = true
	}
}

// Property: Ops never deletes or looks up (at missRate 0) a key that is
// not live, for arbitrary mixes.
func TestPropertyOpsLiveness(t *testing.T) {
	f := func(l, i, d uint8, seed int16) bool {
		mix := Mix{Lookup: int(l%8) + 1, Insert: int(i%8) + 1, Delete: int(d % 8)}
		keys := Uniform(50, 1<<30, int64(seed))
		ops := Ops(keys, 300, mix, 0, int64(seed)+1)
		live := map[pdm.Word]bool{}
		for _, op := range ops {
			switch op.Kind {
			case OpInsert:
				live[op.Key] = true
			case OpDelete:
				if !live[op.Key] {
					return false
				}
				delete(live, op.Key)
			case OpLookup:
				if !live[op.Key] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

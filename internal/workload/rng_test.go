package workload

import (
	"math/rand"
	"reflect"
	"testing"
)

// The seed-taking generators are thin wrappers over the RNG-threading
// variants; both spellings must produce identical streams so existing
// experiment configs keep their byte-identical traces.
func TestSeedWrappersMatchRNGVariants(t *testing.T) {
	const seed = 42
	rng := func() *rand.Rand { return rand.New(rand.NewSource(seed)) }

	keys := Uniform(100, 1<<20, seed)
	if got := UniformRNG(100, 1<<20, rng()); !reflect.DeepEqual(keys, got) {
		t.Error("UniformRNG diverges from Uniform")
	}
	if a, b := ZipfAccesses(keys, 50, 1.2, seed), ZipfAccessesRNG(keys, 50, 1.2, rng()); !reflect.DeepEqual(a, b) {
		t.Error("ZipfAccessesRNG diverges from ZipfAccesses")
	}
	if a, b := Ops(keys, 200, ReadMostly, 0.1, seed), OpsRNG(keys, 200, ReadMostly, 0.1, rng()); !reflect.DeepEqual(a, b) {
		t.Error("OpsRNG diverges from Ops")
	}
	bucketOf := func(k uint64) int { return int(k % 7) }
	if a, b := CollidingKeys(bucketOf, 3, 20, 1<<16, seed), CollidingKeysRNG(bucketOf, 3, 20, 1<<16, rng()); !reflect.DeepEqual(a, b) {
		t.Error("CollidingKeysRNG diverges from CollidingKeys")
	}
}

package workload

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Trace files: a line-oriented text format for operation streams, so
// workloads can be captured, shared, and replayed (cmd/pdmtrace).
//
//	lookup <key>
//	insert <key>
//	delete <key>
//	# comment
//
// Keys are decimal or 0x-prefixed hex.

// WriteTrace serializes ops, one per line.
func WriteTrace(w io.Writer, ops []Op) error {
	bw := bufio.NewWriter(w)
	for _, op := range ops {
		var verb string
		switch op.Kind {
		case OpLookup:
			verb = "lookup"
		case OpInsert:
			verb = "insert"
		case OpDelete:
			verb = "delete"
		default:
			return fmt.Errorf("workload: unknown op kind %d", op.Kind)
		}
		if _, err := fmt.Fprintf(bw, "%s %d\n", verb, op.Key); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTrace parses a trace stream. Blank lines and #-comments are
// skipped; malformed lines are reported with their line number.
func ReadTrace(r io.Reader) ([]Op, error) {
	var ops []Op
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 2 {
			return nil, fmt.Errorf("workload: trace line %d: want \"<op> <key>\", got %q", line, text)
		}
		key, err := strconv.ParseUint(fields[1], 0, 64)
		if err != nil {
			return nil, fmt.Errorf("workload: trace line %d: bad key %q: %v", line, fields[1], err)
		}
		var kind OpKind
		switch fields[0] {
		case "lookup":
			kind = OpLookup
		case "insert":
			kind = OpInsert
		case "delete":
			kind = OpDelete
		default:
			return nil, fmt.Errorf("workload: trace line %d: unknown op %q", line, fields[0])
		}
		ops = append(ops, Op{Kind: kind, Key: key})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return ops, nil
}
